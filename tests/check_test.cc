#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "check/invariants.h"
#include "check/oracle.h"
#include "common/random.h"
#include "pack/pack.h"
#include "psql/executor.h"
#include "rel/catalog.h"
#include "rtree/metrics.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/quarantine.h"
#include "workload/generators.h"
#include "workload/us_catalog.h"

#include "lint_guard.h"

namespace pictdb::check {
namespace {

using geom::Point;
using geom::Rect;
using rtree::Entry;
using rtree::LeafHit;
using rtree::Neighbor;
using rtree::RTree;
using rtree::RTreeOptions;
using storage::PageId;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 8192) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

std::vector<Entry> UniformPointEntries(uint64_t seed, size_t n) {
  Random rng(seed);
  const auto pts = workload::UniformPoints(&rng, n, workload::PaperFrame());
  std::vector<Rid> rids;
  rids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rids.push_back(Rid{static_cast<PageId>(i), 0});
  }
  return pack::MakeLeafEntries(pts, rids);
}

RTree BuildPacked(Env* env, const std::vector<Entry>& entries,
                  size_t max_entries = 0) {
  RTreeOptions opts;
  opts.max_entries = max_entries;
  auto tree = RTree::Create(&env->pool, opts);
  PICTDB_CHECK(tree.ok());
  RTree t = std::move(tree).value();
  PICTDB_CHECK_OK(pack::PackNearestNeighbor(&t, entries));
  return t;
}

bool HasViolation(const ValidationReport& report, ViolationKind kind) {
  return std::any_of(
      report.violations.begin(), report.violations.end(),
      [kind](const Violation& v) { return v.kind == kind; });
}

// Teardown guard shared by the validator/diff suites: the checkers can
// only vouch for the tree if they themselves pass every analysis
// unassisted, so each test re-asserts src/check/ carries no
// suppression comments.
class TreeValidatorTest : public ::testing::Test {
 protected:
  void TearDown() override {
    testing_support::AssertNoLintSuppressionsInCheckSubsystem();
  }
};

class DiffRunnerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    testing_support::AssertNoLintSuppressionsInCheckSubsystem();
  }
};

// --- TreeValidator ----------------------------------------------------------

TEST_F(TreeValidatorTest, AcceptsHealthyPackedTree) {
  Env env;
  const auto entries = UniformPointEntries(7, 1000);
  const RTree tree = BuildPacked(&env, entries);

  const ValidationReport report = TreeValidator().Check(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.leaf_entries, 1000u);
  EXPECT_EQ(report.depth, tree.Height() - 1);
  EXPECT_GT(report.nodes, 0u);
  EXPECT_GT(report.coverage, 0.0);
  EXPECT_EQ(env.pool.pinned_frames(), 0u);
}

TEST_F(TreeValidatorTest, AcceptsHealthyGuttmanTree) {
  Env env;
  auto created = RTree::Create(&env.pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  for (const Entry& e : UniformPointEntries(11, 600)) {
    PICTDB_CHECK_OK(tree.Insert(e.mbr, e.AsRid()));
  }
  const ValidationReport report = TreeValidator().Check(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.leaf_entries, 600u);
}

TEST_F(TreeValidatorTest, QualityNumbersAgreeWithMetricsModule) {
  Env env;
  const RTree tree = BuildPacked(&env, UniformPointEntries(3, 500), 8);

  const ValidationReport report = TreeValidator().Check(tree);
  ASSERT_TRUE(report.ok()) << report.ToString();

  auto quality = rtree::MeasureTree(tree);
  ASSERT_TRUE(quality.ok());
  EXPECT_DOUBLE_EQ(report.coverage, quality->coverage);
  EXPECT_DOUBLE_EQ(report.overlap, quality->overlap);
  EXPECT_EQ(report.depth, quality->depth);
  EXPECT_EQ(report.nodes, quality->nodes);
  EXPECT_EQ(report.leaf_entries, quality->size);
}

TEST_F(TreeValidatorTest, CatchesCorruptedInnerMbr) {
  Env env;
  RTree tree = BuildPacked(&env, UniformPointEntries(5, 1000), 8);
  ASSERT_GE(tree.Height(), 2u) << "need an inner node to corrupt";

  // Shrink the root's first child entry to a degenerate rect, rewriting
  // the page through the pool so its checksum is restamped: the damage
  // is purely structural and only the invariant walk can see it.
  {
    auto guard = env.pool.FetchPage(tree.root());
    PICTDB_CHECK(guard.ok());
    rtree::Node node =
        rtree::ReadNode(guard->data(), env.pool.page_size());
    ASSERT_FALSE(node.entries.empty());
    const Point c = node.entries[0].mbr.Center();
    node.entries[0].mbr = Rect::FromPoint(c);
    rtree::WriteNode(node, guard->mutable_data(), env.pool.page_size());
  }

  const ValidationReport report = TreeValidator().Check(tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, ViolationKind::kParentMbrMismatch))
      << report.ToString();
}

TEST_F(TreeValidatorTest, CatchesOnDiskChecksumRot) {
  Env env;
  RTree tree = BuildPacked(&env, UniformPointEntries(9, 300));
  PICTDB_CHECK_OK(env.pool.FlushAll());

  // Flip a payload byte directly on the medium, behind the pool's back.
  // The cached copy stays clean, so only the raw CRC scan can tell.
  std::vector<char> raw(env.disk.page_size());
  PICTDB_CHECK_OK(env.disk.ReadPage(tree.root(), raw.data()));
  raw[40] = static_cast<char>(~raw[40]);
  PICTDB_CHECK_OK(env.disk.WritePage(tree.root(), raw.data()));

  const ValidationReport report = TreeValidator().Check(tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, ViolationKind::kChecksumMismatch))
      << report.ToString();
}

TEST_F(TreeValidatorTest, FlagsReachableQuarantinedPage) {
  Env env;
  const RTree tree = BuildPacked(&env, UniformPointEntries(13, 200));

  storage::PageQuarantine quarantine;
  quarantine.Add(tree.root());
  ValidatorOptions opts;
  opts.quarantine = &quarantine;
  const ValidationReport report = TreeValidator(opts).Check(tree);
  EXPECT_TRUE(
      HasViolation(report, ViolationKind::kQuarantinedPageReachable))
      << report.ToString();
}

// --- Oracle and comparators -------------------------------------------------

TEST(OracleTest, AnswersHandCheckedQueries) {
  Oracle oracle;
  oracle.Insert(Rect(0, 0, 10, 10), Rid{1, 0});
  oracle.Insert(Rect(5, 5, 15, 15), Rid{2, 0});
  oracle.Insert(Rect(100, 100, 110, 110), Rid{3, 0});

  EXPECT_EQ(oracle.Intersects(Rect(0, 0, 20, 20)).size(), 2u);
  EXPECT_EQ(oracle.ContainedIn(Rect(0, 0, 12, 12)).size(), 1u);
  EXPECT_EQ(oracle.AtPoint(Point{7, 7}).size(), 2u);

  const auto nn = oracle.Nearest(Point{0, 0}, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].hit.rid.page_id, 1u);
  EXPECT_DOUBLE_EQ(nn[0].distance, 0.0);
  EXPECT_EQ(nn[1].hit.rid.page_id, 2u);

  EXPECT_TRUE(oracle.Delete(Rect(0, 0, 10, 10), Rid{1, 0}));
  EXPECT_FALSE(oracle.Delete(Rect(0, 0, 10, 10), Rid{1, 0}));
  EXPECT_EQ(oracle.size(), 2u);
}

TEST(OracleTest, JoinPairCountIsExhaustive) {
  Oracle a, b;
  a.Insert(Rect(0, 0, 10, 10), Rid{1, 0});
  a.Insert(Rect(20, 20, 30, 30), Rid{2, 0});
  b.Insert(Rect(5, 5, 25, 25), Rid{10, 0});  // intersects both
  b.Insert(Rect(50, 50, 60, 60), Rid{11, 0});
  EXPECT_EQ(a.CountJoinPairs(b), 2u);
}

TEST(CompareHitsTest, ClassifiesAllThreeVerdicts) {
  const std::vector<LeafHit> full = {
      LeafHit{Rect(0, 0, 1, 1), Rid{1, 0}},
      LeafHit{Rect(2, 2, 3, 3), Rid{2, 0}},
  };
  std::vector<LeafHit> reordered = {full[1], full[0]};
  std::vector<LeafHit> subset = {full[0]};
  std::vector<LeafHit> alien = {LeafHit{Rect(9, 9, 9, 9), Rid{7, 0}}};

  EXPECT_EQ(CompareHits(reordered, full, false), DiffVerdict::kMatch);
  EXPECT_EQ(CompareHits(subset, full, true), DiffVerdict::kDegradedSubset);
  EXPECT_EQ(CompareHits(subset, full, false), DiffVerdict::kWrongAnswer);
  EXPECT_EQ(CompareHits(alien, full, true), DiffVerdict::kWrongAnswer);
}

TEST(CompareNeighborsTest, ClassifiesAllThreeVerdicts) {
  Oracle oracle;
  oracle.Insert(Rect::FromPoint(Point{1, 0}), Rid{1, 0});
  oracle.Insert(Rect::FromPoint(Point{2, 0}), Rid{2, 0});
  oracle.Insert(Rect::FromPoint(Point{3, 0}), Rid{3, 0});
  const Point q{0, 0};

  const auto exact = oracle.Nearest(q, 2);
  EXPECT_EQ(CompareNeighbors(exact, oracle, q, 2, false),
            DiffVerdict::kMatch);

  // Missing the closest entry: admissible only when flagged degraded.
  std::vector<Neighbor> skipped = {exact[1]};
  EXPECT_EQ(CompareNeighbors(skipped, oracle, q, 2, true),
            DiffVerdict::kDegradedSubset);
  EXPECT_EQ(CompareNeighbors(skipped, oracle, q, 2, false),
            DiffVerdict::kWrongAnswer);

  // A distance that appears nowhere in the ranking is wrong regardless.
  std::vector<Neighbor> bogus = {
      Neighbor{LeafHit{Rect(0, 0, 1, 1), Rid{9, 0}}, 0.123}};
  EXPECT_EQ(CompareNeighbors(bogus, oracle, q, 1, true),
            DiffVerdict::kWrongAnswer);
}

// --- DiffRunner -------------------------------------------------------------

Oracle OracleOf(const std::vector<Entry>& entries) { return Oracle(entries); }

TEST_F(DiffRunnerTest, CleanTreeMatchesOracleExactly) {
  Env env;
  const auto entries = UniformPointEntries(21, 2000);
  const RTree tree = BuildPacked(&env, entries);
  const Oracle oracle = OracleOf(entries);

  DiffRunner runner(&tree, &oracle);
  DiffConfig config;
  config.seed = 42;
  config.queries = 2000;
  auto report = runner.Run(config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
  EXPECT_EQ(report->matches, report->queries) << report->Summary();
}

TEST_F(DiffRunnerTest, ServiceReplayMatchesOracle) {
  Env env;
  const auto entries = UniformPointEntries(23, 1500);
  const RTree tree = BuildPacked(&env, entries);
  const Oracle oracle = OracleOf(entries);

  DiffRunner runner(&tree, &oracle);
  DiffConfig config;
  config.seed = 7;
  config.queries = 1000;
  config.use_service = true;
  auto report = runner.Run(config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
  EXPECT_EQ(report->matches, report->queries);
  EXPECT_EQ(env.pool.pinned_frames(), 0u);
}

TEST_F(DiffRunnerTest, JoinQueriesMatchBruteForcePairCount) {
  Env env;
  const auto left_entries = UniformPointEntries(31, 800);
  const auto right_entries = UniformPointEntries(37, 800);
  const RTree left = BuildPacked(&env, left_entries);
  const RTree right = BuildPacked(&env, right_entries);
  const Oracle left_oracle = OracleOf(left_entries);
  const Oracle right_oracle = OracleOf(right_entries);

  DiffRunner runner(&left, &left_oracle);
  runner.BindJoin(&right, &right_oracle);
  DiffConfig config;
  config.seed = 3;
  config.queries = 200;
  config.w_join = 0.5;
  auto report = runner.Run(config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

TEST_F(DiffRunnerTest, PsqlWhereQueriesMatchRelationScan) {
  storage::InMemoryDiskManager disk(1024);
  storage::BufferPool pool(&disk, 1 << 12);
  rel::Catalog catalog(&pool);
  PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog, 4));
  psql::Executor executor(&catalog);

  // Reference for the PSQL path: every city row's loc MBR keyed by its
  // heap Rid, assembled by sequential scan (no index involved).
  auto cities = catalog.GetRelation("cities");
  PICTDB_CHECK(cities.ok());
  auto loc_idx = (*cities)->schema().IndexOf("loc");
  PICTDB_CHECK(loc_idx.ok());
  Oracle psql_oracle;
  auto rid = (*cities)->FirstRid();
  PICTDB_CHECK(rid.ok());
  while (rid->IsValid()) {
    auto tuple = (*cities)->Get(*rid);
    PICTDB_CHECK(tuple.ok());
    psql_oracle.Insert(tuple->at(*loc_idx).as_geometry().Mbr(), *rid);
    rid = (*cities)->NextRid(*rid);
    PICTDB_CHECK(rid.ok());
  }
  ASSERT_GT(psql_oracle.size(), 0u);

  // The spatial side of the diff runs over the same index the executor
  // uses, so bind the tree+oracle pair to it as well.
  auto index = (*cities)->SpatialIndex("loc");
  PICTDB_CHECK(index.ok());
  auto us_map = catalog.GetPicture("us-map");
  PICTDB_CHECK(us_map.ok());

  DiffRunner runner(*index, &psql_oracle);
  runner.BindPsql(&executor, "cities", "us-map", "loc", &psql_oracle);
  runner.SetPsqlFrame((*us_map)->frame);
  DiffConfig config;
  config.seed = 5;
  config.queries = 300;
  config.frame = (*us_map)->frame;
  config.max_half_extent = 10.0;
  config.min_half_extent = 1.0;
  auto report = runner.Run(config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

TEST_F(DiffRunnerTest, FaultyDiskYieldsNoWrongAnswers) {
  storage::InMemoryDiskManager mem(512);
  storage::FaultPlan quiet;  // build cleanly, then arm
  storage::FaultInjectionDiskManager faulty(&mem, quiet);
  storage::BufferPoolOptions popts;
  popts.max_read_retries = 10;
  popts.retry_backoff_base = std::chrono::microseconds(0);
  storage::BufferPool pool(&faulty, 64, /*shards=*/1, popts);

  const auto entries = UniformPointEntries(41, 2000);
  auto created = RTree::Create(&pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  PICTDB_CHECK_OK(pack::PackNearestNeighbor(&tree, entries));
  const Oracle oracle = OracleOf(entries);

  // 1% transient faults on every read, tiny pool so reads actually hit
  // the disk. Retries and degraded mode must keep every answer honest.
  storage::FaultPlan plan;
  plan.seed = 99;
  plan.transient_read_error_rate = 0.01;
  plan.read_bit_flip_rate = 0.01;
  faulty.SetPlan(plan);

  DiffRunner runner(&tree, &oracle);
  DiffConfig config;
  config.seed = 17;
  config.queries = 2000;
  config.degraded_ok = true;
  auto report = runner.Run(config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->wrong_answers, 0u) << report->Summary();
  EXPECT_EQ(report->failures, 0u) << report->Summary();
}

TEST_F(DiffRunnerTest, CatchesPlantedWrongAnswers) {
  Env env;
  const auto entries = UniformPointEntries(43, 2000);
  RTree tree = BuildPacked(&env, entries, 8);
  ASSERT_GE(tree.Height(), 2u);
  const Oracle oracle = OracleOf(entries);

  // Shrink one root entry so its whole subtree is wrongly pruned; the
  // checksum is restamped, so only the oracle diff can see the lie.
  {
    auto guard = env.pool.FetchPage(tree.root());
    PICTDB_CHECK(guard.ok());
    rtree::Node node =
        rtree::ReadNode(guard->data(), env.pool.page_size());
    ASSERT_FALSE(node.entries.empty());
    node.entries[0].mbr = Rect::FromPoint(node.entries[0].mbr.Center());
    rtree::WriteNode(node, guard->mutable_data(), env.pool.page_size());
  }

  DiffRunner runner(&tree, &oracle);
  DiffConfig config;
  config.seed = 19;
  config.queries = 2000;
  auto report = runner.Run(config);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->wrong_answers, 0u) << report->Summary();
  EXPECT_FALSE(report->mismatches.empty());
}

}  // namespace
}  // namespace pictdb::check
