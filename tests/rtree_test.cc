#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "check/invariants.h"
#include "common/random.h"
#include "rtree/metrics.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "rtree/split.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::Rid;

struct Env {
  explicit Env(uint32_t page_size = 512)
      : disk(page_size), pool(&disk, 4096) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

Rid MakeRid(size_t i) {
  return Rid{static_cast<storage::PageId>(i), 0};
}

/// Teardown-style deep check: full invariant walk (parent MBRs, levels,
/// fill factors, CRCs, pin leaks), stricter than tree.Validate().
void ExpectValidTree(const rtree::RTree& tree) {
  const check::ValidationReport report = check::TreeValidator().Check(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- Node serialization --------------------------------------------------------

TEST(NodeTest, RoundTrip) {
  Node node;
  node.level = 3;
  for (int i = 0; i < 5; ++i) {
    Entry e;
    e.mbr = Rect(i, i, i + 1, i + 2);
    e.payload = static_cast<uint64_t>(i) * 1000;
    node.entries.push_back(e);
  }
  std::vector<char> page(512, 0);
  WriteNode(node, page.data(), 512);
  const Node loaded = ReadNode(page.data(), 512);
  EXPECT_EQ(loaded.level, 3);
  ASSERT_EQ(loaded.entries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(loaded.entries[i].mbr, node.entries[i].mbr);
    EXPECT_EQ(loaded.entries[i].payload, node.entries[i].payload);
  }
}

TEST(NodeTest, PayloadEncodings) {
  const Rid rid{123456, 789};
  Entry e;
  e.payload = Entry::PayloadFromRid(rid);
  EXPECT_TRUE(e.AsRid() == rid);
  e.payload = Entry::PayloadFromChild(424242);
  EXPECT_EQ(e.AsChild(), 424242u);
}

TEST(NodeTest, CapacityScalesWithPageSize) {
  EXPECT_GT(NodePageCapacity(4096), NodePageCapacity(512));
  EXPECT_GE(NodePageCapacity(256), 4u);  // paper's branching factor fits
}

TEST(NodeTest, MbrOfEntries) {
  Node node;
  Entry a, b;
  a.mbr = Rect(0, 0, 2, 2);
  b.mbr = Rect(5, 1, 6, 8);
  node.entries = {a, b};
  EXPECT_EQ(node.Mbr(), Rect(0, 0, 6, 8));
  EXPECT_TRUE(Node{}.Mbr().IsEmpty());
}

// --- Split heuristics -----------------------------------------------------------

std::vector<Entry> EntriesFor(const std::vector<Rect>& rects) {
  std::vector<Entry> out;
  for (size_t i = 0; i < rects.size(); ++i) {
    Entry e;
    e.mbr = rects[i];
    e.payload = i;
    out.push_back(e);
  }
  return out;
}

TEST(SplitTest, QuadraticSeedsPickWastefulPair) {
  // Two far corners waste the most area together.
  const auto entries = EntriesFor({Rect(0, 0, 1, 1), Rect(9, 9, 10, 10),
                                   Rect(0.5, 0.5, 1.5, 1.5)});
  const auto [i, j] = QuadraticPickSeeds(entries);
  const std::set<size_t> seeds = {i, j};
  EXPECT_TRUE(seeds.count(1) == 1);
  EXPECT_TRUE(seeds.count(0) == 1 || seeds.count(2) == 1);
}

TEST(SplitTest, AllAlgorithmsRespectMinimum) {
  Random rng(5);
  for (const auto algo : {SplitAlgorithm::kQuadratic,
                          SplitAlgorithm::kLinear,
                          SplitAlgorithm::kRStar}) {
    std::vector<Rect> rects;
    for (int i = 0; i < 9; ++i) {
      const double x = rng.UniformDouble(0, 100);
      const double y = rng.UniformDouble(0, 100);
      rects.push_back(Rect(x, y, x + 5, y + 5));
    }
    const auto [g1, g2] = SplitEntries(EntriesFor(rects), 4, algo);
    EXPECT_GE(g1.size(), 4u);
    EXPECT_GE(g2.size(), 4u);
    EXPECT_EQ(g1.size() + g2.size(), 9u);
  }
}

TEST(SplitTest, PartitionsPreserveAllEntries) {
  Random rng(6);
  std::vector<Rect> rects;
  for (int i = 0; i < 11; ++i) {
    const double x = rng.UniformDouble(0, 100);
    rects.push_back(Rect(x, x, x + 3, x + 3));
  }
  const auto [g1, g2] =
      SplitEntries(EntriesFor(rects), 2, SplitAlgorithm::kQuadratic);
  std::set<uint64_t> payloads;
  for (const Entry& e : g1) payloads.insert(e.payload);
  for (const Entry& e : g2) payloads.insert(e.payload);
  EXPECT_EQ(payloads.size(), 11u);
}

TEST(SplitTest, SeparatesTwoClusters) {
  // Quadratic and R* splits should cleanly separate two distant clusters.
  std::vector<Rect> rects;
  for (int i = 0; i < 4; ++i) {
    rects.push_back(Rect(i, 0, i + 0.5, 0.5));          // left cluster
    rects.push_back(Rect(100 + i, 0, 100.5 + i, 0.5));  // right cluster
  }
  for (const auto algo :
       {SplitAlgorithm::kQuadratic, SplitAlgorithm::kRStar}) {
    const auto [g1, g2] = SplitEntries(EntriesFor(rects), 2, algo);
    auto side_of = [](const Entry& e) { return e.mbr.lo.x < 50 ? 0 : 1; };
    for (const auto& group : {g1, g2}) {
      for (size_t i = 1; i < group.size(); ++i) {
        EXPECT_EQ(side_of(group[i]), side_of(group[0]));
      }
    }
  }
}

TEST(SplitTest, RStarProducesZeroOverlapWhenPossible) {
  // Two vertical bands of boxes: a y-axis cut would overlap, an x-axis
  // cut would not; R* must choose the x axis and an overlap-free cut.
  std::vector<Rect> rects;
  for (int i = 0; i < 5; ++i) {
    rects.push_back(Rect(0, i * 10.0, 5, i * 10.0 + 5));
    rects.push_back(Rect(50, i * 10.0 + 2, 55, i * 10.0 + 7));
  }
  const auto [g1, g2] =
      SplitEntries(EntriesFor(rects), 2, SplitAlgorithm::kRStar);
  Rect mbr1, mbr2;
  for (const Entry& e : g1) mbr1.ExpandToInclude(e.mbr);
  for (const Entry& e : g2) mbr2.ExpandToInclude(e.mbr);
  EXPECT_FALSE(mbr1.IntersectsInterior(mbr2));
}

// --- RTree create/options --------------------------------------------------------

TEST(RTreeTest, CreateValidatesOptions) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 10000;  // too large for the page
  EXPECT_FALSE(RTree::Create(&env.pool, opts).ok());
  opts.max_entries = 4;
  opts.min_entries = 3;  // violates m <= M/2
  EXPECT_FALSE(RTree::Create(&env.pool, opts).ok());
  opts.min_entries = 2;
  EXPECT_TRUE(RTree::Create(&env.pool, opts).ok());
}

TEST(RTreeTest, EmptyTree) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Size(), 0u);
  EXPECT_EQ(tree->Height(), 1u);
  auto hits = tree->SearchIntersects(Rect(0, 0, 100, 100));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(RTreeTest, InsertRejectsEmptyRect) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Insert(Rect(), MakeRid(0)).IsInvalidArgument());
}

TEST(RTreeTest, SingleInsertAndSearch) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(10, 10, 20, 20), MakeRid(7)).ok());
  EXPECT_EQ(tree->Size(), 1u);

  auto hit = tree->SearchIntersects(Rect(15, 15, 16, 16));
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_TRUE((*hit)[0].rid == MakeRid(7));

  auto miss = tree->SearchIntersects(Rect(30, 30, 40, 40));
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
}

TEST(RTreeTest, SearchSemanticsDiffer) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 10, 10), MakeRid(1)).ok());
  const Rect window(5, 5, 15, 15);
  // Intersects: yes; ContainedIn: no (object pokes out of the window).
  EXPECT_EQ(tree->SearchIntersects(window)->size(), 1u);
  EXPECT_EQ(tree->SearchContainedIn(window)->size(), 0u);
  EXPECT_EQ(tree->SearchContainedIn(Rect(0, 0, 10, 10))->size(), 1u);
  EXPECT_EQ(tree->SearchPoint(Point{3, 3})->size(), 1u);
  EXPECT_EQ(tree->SearchPoint(Point{13, 3})->size(), 0u);
}

TEST(RTreeTest, GrowsAndValidates) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(17);
  const auto pts = workload::UniformPoints(&rng, 200,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
    if (i % 25 == 0) {
      ASSERT_TRUE(tree->Validate().ok());
    }
  }
  EXPECT_EQ(tree->Size(), 200u);
  EXPECT_GE(tree->Height(), 3u);
  ASSERT_TRUE(tree->Validate().ok());
  ExpectValidTree(*tree);
}

TEST(RTreeTest, SearchMatchesBruteForce) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(23);
  std::vector<Rect> objects;
  for (int i = 0; i < 150; ++i) {
    const double x = rng.UniformDouble(0, 900);
    const double y = rng.UniformDouble(0, 900);
    objects.push_back(
        Rect(x, y, x + rng.UniformDouble(1, 80), y + rng.UniformDouble(1, 80)));
    ASSERT_TRUE(tree->Insert(objects.back(), MakeRid(i)).ok());
  }
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.UniformDouble(0, 900);
    const double y = rng.UniformDouble(0, 900);
    const Rect window(x, y, x + 120, y + 120);
    auto hits = tree->SearchIntersects(window);
    ASSERT_TRUE(hits.ok());
    std::set<storage::PageId> got;
    for (const LeafHit& h : *hits) got.insert(h.rid.page_id);
    std::set<storage::PageId> expected;
    for (size_t i = 0; i < objects.size(); ++i) {
      if (objects[i].Intersects(window)) {
        expected.insert(static_cast<storage::PageId>(i));
      }
    }
    EXPECT_EQ(got, expected) << "window " << geom::ToString(window);
  }
  ExpectValidTree(*tree);
}

TEST(RTreeTest, DeleteRemovesAndCondenses) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(31);
  const auto pts = workload::UniformPoints(&rng, 120,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  // Delete half, validating as we go.
  for (size_t i = 0; i < pts.size(); i += 2) {
    ASSERT_TRUE(tree->Delete(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
    if (i % 20 == 0) {
      ASSERT_TRUE(tree->Validate().ok());
    }
  }
  EXPECT_EQ(tree->Size(), 60u);
  ASSERT_TRUE(tree->Validate().ok());
  // Survivors still findable; deleted not.
  for (size_t i = 0; i < pts.size(); ++i) {
    auto hits = tree->SearchPoint(pts[i]);
    ASSERT_TRUE(hits.ok());
    bool found = false;
    for (const LeafHit& h : *hits) {
      if (h.rid == MakeRid(i)) found = true;
    }
    EXPECT_EQ(found, i % 2 == 1) << i;
  }
  ExpectValidTree(*tree);
}

TEST(RTreeTest, DeleteMissingEntry) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 1, 1), MakeRid(1)).ok());
  EXPECT_TRUE(tree->Delete(Rect(0, 0, 1, 1), MakeRid(2)).IsNotFound());
  EXPECT_TRUE(tree->Delete(Rect(5, 5, 6, 6), MakeRid(1)).IsNotFound());
}

TEST(RTreeTest, DeleteEverythingLeavesEmptyValidTree) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(37);
  const auto pts = workload::UniformPoints(&rng, 80, workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Delete(Rect::FromPoint(pts[i]), MakeRid(i)).ok()) << i;
  }
  EXPECT_EQ(tree->Size(), 0u);
  EXPECT_EQ(tree->Height(), 1u);
  ASSERT_TRUE(tree->Validate().ok());
  ExpectValidTree(*tree);
}

TEST(RTreeTest, DeleteClusterUnderflowsNonLeafLevels) {
  // Two well-separated clusters in a tall tree (small fanout): wiping
  // out one whole cluster underflows nodes ABOVE the leaf level, so
  // CondenseTree must re-insert orphaned subtrees at their original
  // height, not as leaf entries. The survivors and the invariants tell
  // us whether it did.
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  constexpr size_t kPerCluster = 150;
  Random rng(41);
  for (size_t i = 0; i < kPerCluster; ++i) {  // cluster A near origin
    const Point p(rng.UniformDouble(0.0, 100.0), rng.UniformDouble(0.0, 100.0));
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(p), MakeRid(i)).ok());
  }
  std::vector<Point> far;
  for (size_t i = 0; i < kPerCluster; ++i) {  // cluster B far away
    const Point p(rng.UniformDouble(5000.0, 5100.0), rng.UniformDouble(5000.0, 5100.0));
    far.push_back(p);
    ASSERT_TRUE(
        tree->Insert(Rect::FromPoint(p), MakeRid(kPerCluster + i)).ok());
  }
  const uint32_t tall = tree->Height();
  ASSERT_GE(tall, 3u) << "workload too small to exercise inner levels";

  // Delete every cluster-B entry; inner nodes over that region drain.
  for (size_t i = 0; i < kPerCluster; ++i) {
    ASSERT_TRUE(
        tree->Delete(Rect::FromPoint(far[i]), MakeRid(kPerCluster + i)).ok())
        << i;
    if (i % 16 == 0) {
      ASSERT_TRUE(tree->Validate().ok());
    }
  }
  EXPECT_EQ(tree->Size(), kPerCluster);
  EXPECT_LE(tree->Height(), tall);  // root collapses as levels empty
  ExpectValidTree(*tree);
  // Cluster A intact, cluster B gone.
  auto a = tree->SearchIntersects(Rect(0, 0, 100, 100));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), kPerCluster);
  auto b = tree->SearchIntersects(Rect(5000, 5000, 5100, 5100));
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->empty());
}

TEST(RTreeTest, UpdateMovesEntry) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(43);
  const auto pts = workload::UniformPoints(&rng, 100, workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  // Move entry 7 to a spot far outside the frame.
  const Rect old_mbr = Rect::FromPoint(pts[7]);
  const Rect new_mbr(9000, 9000, 9001, 9001);
  ASSERT_TRUE(tree->Update(old_mbr, MakeRid(7), new_mbr, MakeRid(7)).ok());
  EXPECT_EQ(tree->Size(), pts.size());
  auto at_old = tree->Contains(old_mbr, MakeRid(7));
  ASSERT_TRUE(at_old.ok());
  EXPECT_FALSE(*at_old);
  auto at_new = tree->Contains(new_mbr, MakeRid(7));
  ASSERT_TRUE(at_new.ok());
  EXPECT_TRUE(*at_new);
  ExpectValidTree(*tree);

  // Updating a non-existent entry is NotFound and changes nothing.
  EXPECT_TRUE(tree->Update(old_mbr, MakeRid(7), new_mbr, MakeRid(7))
                  .IsNotFound());
  EXPECT_EQ(tree->Size(), pts.size());
  ExpectValidTree(*tree);
}

TEST(RTreeTest, ContainsIsExactMatch) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 10, 10), MakeRid(1)).ok());
  auto hit = tree->Contains(Rect(0, 0, 10, 10), MakeRid(1));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  // Same rid, different mbr — and a sub-rect that intersects but does
  // not equal — are both misses: the probe is exact, not spatial.
  auto wrong_mbr = tree->Contains(Rect(0, 0, 5, 5), MakeRid(1));
  ASSERT_TRUE(wrong_mbr.ok());
  EXPECT_FALSE(*wrong_mbr);
  auto wrong_rid = tree->Contains(Rect(0, 0, 10, 10), MakeRid(2));
  ASSERT_TRUE(wrong_rid.ok());
  EXPECT_FALSE(*wrong_rid);
}

TEST(RTreeTest, SearchStatsCountNodes) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(41);
  const auto pts = workload::UniformPoints(&rng, 100,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  SearchStats stats;
  ASSERT_TRUE(tree->SearchPoint(Point{500, 500}, &stats).ok());
  EXPECT_GE(stats.nodes_visited, 1u);
  auto total = tree->CountNodes();
  ASSERT_TRUE(total.ok());
  EXPECT_LE(stats.nodes_visited, *total);
}

TEST(RTreeTest, OpenFromMetaPage) {
  Env env(256);
  storage::PageId meta;
  {
    RTreeOptions opts;
    opts.max_entries = 4;
    auto tree = RTree::Create(&env.pool, opts);
    ASSERT_TRUE(tree.ok());
    meta = tree->meta_page();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          tree->Insert(Rect(i, i, i + 1, i + 1), MakeRid(i)).ok());
    }
  }
  auto reopened = RTree::Open(&env.pool, meta);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Size(), 50u);
  EXPECT_EQ(reopened->options().max_entries, 4u);
  ASSERT_TRUE(reopened->Validate().ok());
  EXPECT_EQ(reopened->SearchPoint(Point{10.5, 10.5})->size(), 1u);
}

TEST(RTreeTest, LinearSplitAlsoWorks) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.split = SplitAlgorithm::kLinear;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(43);
  const auto pts = workload::UniformPoints(&rng, 150,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->CollectAllEntries()->size(), 150u);
}

TEST(RTreeTest, CollectNodeMbrsAtLevels) {
  Env env(256);
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(47);
  const auto pts = workload::UniformPoints(&rng, 100,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  size_t total_from_levels = 0;
  for (uint16_t level = 0; level < tree->Height(); ++level) {
    auto mbrs = tree->CollectNodeMbrsAtLevel(level);
    ASSERT_TRUE(mbrs.ok());
    EXPECT_FALSE(mbrs->empty());
    total_from_levels += mbrs->size();
    // Level counts shrink toward the root.
    if (level + 1u == tree->Height()) {
      EXPECT_EQ(mbrs->size(), 1u);
    }
  }
  auto nodes = tree->CountNodes();
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(total_from_levels, *nodes);
}

TEST(MetricsTest, MeasuresSimpleTree) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 10, 10), MakeRid(1)).ok());
  ASSERT_TRUE(tree->Insert(Rect(20, 20, 30, 30), MakeRid(2)).ok());
  auto q = MeasureTree(*tree);
  ASSERT_TRUE(q.ok());
  // Single leaf node: coverage = MBR of both objects.
  EXPECT_DOUBLE_EQ(q->coverage, 900.0);
  EXPECT_DOUBLE_EQ(q->overlap, 0.0);
  EXPECT_EQ(q->depth, 0u);
  EXPECT_EQ(q->nodes, 1u);
  EXPECT_EQ(q->size, 2u);
}

TEST(MetricsTest, AverageNodesVisited) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 1, 1), MakeRid(1)).ok());
  auto avg = AverageNodesVisited(*tree, {{0.5, 0.5}, {50, 50}});
  ASSERT_TRUE(avg.ok());
  // Height-1 tree: the root itself is read by every query.
  EXPECT_DOUBLE_EQ(*avg, 1.0);
}

}  // namespace
}  // namespace pictdb::rtree
