// Deterministic fuzz-lite: every text/byte-level entry point must either
// succeed or return a clean error Status on random input — never crash,
// never corrupt state. Seeds are pinned, so failures reproduce.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "geom/wkt.h"
#include "psql/executor.h"
#include "psql/lexer.h"
#include "psql/parser.h"
#include "rel/catalog.h"
#include "rel/tuple.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "workload/us_catalog.h"

namespace pictdb {
namespace {

std::string RandomText(Random* rng, size_t max_len,
                       const std::string& alphabet) {
  const size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng->Uniform(alphabet.size())]);
  }
  return out;
}

const std::string kQueryAlphabet =
    "abcdefghijklmnopqrstuvwxyz0123456789 .,'(){}<>=+-*_";

TEST(FuzzLiteTest, LexerNeverCrashes) {
  Random rng(1);
  for (int i = 0; i < 3000; ++i) {
    const std::string text = RandomText(&rng, 60, kQueryAlphabet);
    auto tokens = psql::Tokenize(text);
    if (tokens.ok()) {
      EXPECT_FALSE(tokens->empty());  // always at least kEnd
      EXPECT_EQ(tokens->back().kind, psql::TokenKind::kEnd);
    }
  }
}

TEST(FuzzLiteTest, ParserNeverCrashes) {
  Random rng(2);
  for (int i = 0; i < 3000; ++i) {
    // Bias toward query-shaped text so the parser gets past token 0.
    std::string text = "select ";
    text += RandomText(&rng, 50, kQueryAlphabet);
    (void)psql::Parse(text);          // either ok or clean error
    (void)psql::ParseStatement(text);
  }
}

TEST(FuzzLiteTest, MutatedValidQueriesNeverCrashTheExecutor) {
  storage::InMemoryDiskManager disk(1024);
  storage::BufferPool pool(&disk, 1 << 14);
  rel::Catalog catalog(&pool);
  PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog, 4));
  psql::Executor exec(&catalog);

  const std::string base =
      "select city,population,loc from cities on us-map "
      "at loc covered-by {-77 +- 8, 39 +- 4} where population > 450000 "
      "order by population desc limit 5";
  Random rng(3);
  for (int i = 0; i < 400; ++i) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // replace
          mutated[pos] = kQueryAlphabet[rng.Uniform(kQueryAlphabet.size())];
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // insert
          mutated.insert(pos, 1,
                         kQueryAlphabet[rng.Uniform(kQueryAlphabet.size())]);
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    (void)exec.Run(mutated);  // must not crash; errors are fine
  }
  // The catalog must still be fully functional afterwards.
  auto rs = exec.Query("select count(*) from cities");
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs->rows[0][0].as_int(), 0);
}

TEST(FuzzLiteTest, WktParserNeverCrashes) {
  Random rng(4);
  const std::string alphabet = "POINTSEGMNBXLYG(),.0123456789- ";
  for (int i = 0; i < 5000; ++i) {
    (void)geom::ParseWkt(RandomText(&rng, 40, alphabet));
  }
}

TEST(FuzzLiteTest, TupleDeserializeNeverCrashesOnRandomBytes) {
  Random rng(5);
  for (int i = 0; i < 5000; ++i) {
    std::string bytes;
    const size_t len = rng.Uniform(100);
    for (size_t b = 0; b < len; ++b) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)rel::Tuple::Deserialize(bytes);  // error or garbage-free tuple
  }
}

TEST(FuzzLiteTest, TupleDeserializeMutatedValidBytes) {
  const rel::Tuple original({rel::Value(std::string("Chicago")),
                             rel::Value(int64_t{2693976}),
                             rel::Value(geom::Geometry(
                                 geom::Point{-87.6, 41.9}))});
  const std::string valid = original.Serialize();
  Random rng(6);
  for (int i = 0; i < 3000; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    (void)rel::Tuple::Deserialize(mutated);
  }
}

TEST(FuzzLiteTest, PageTrailerVerifyNeverCrashesOnRandomBytes) {
  constexpr uint32_t kPageSize = 256;
  Random rng(7);
  std::vector<char> page(kPageSize);
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    for (char& c : page) c = static_cast<char>(rng.Uniform(256));
    if (storage::VerifyPageTrailer(page.data(), kPageSize, i).ok()) {
      ++accepted;
    }
  }
  // Random bytes essentially never carry a valid magic+CRC trailer (and
  // are essentially never all-zero).
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzLiteTest, PageTrailerStampVerifyRoundTrip) {
  constexpr uint32_t kPageSize = 256;
  Random rng(8);
  std::vector<char> page(kPageSize);
  for (int i = 0; i < 2000; ++i) {
    for (char& c : page) c = static_cast<char>(rng.Uniform(256));
    storage::StampPageTrailer(page.data(), kPageSize);
    EXPECT_TRUE(storage::VerifyPageTrailer(page.data(), kPageSize).ok());
  }
}

TEST(FuzzLiteTest, PageTrailerDetectsSingleByteMutations) {
  constexpr uint32_t kPageSize = 256;
  Random rng(9);
  std::vector<char> page(kPageSize);
  for (int i = 0; i < 2000; ++i) {
    for (char& c : page) c = static_cast<char>(rng.Uniform(256));
    storage::StampPageTrailer(page.data(), kPageSize);
    const size_t pos = rng.Uniform(kPageSize);
    const char flip = static_cast<char>(1u << rng.Uniform(8));
    page[pos] = static_cast<char>(page[pos] ^ flip);
    const Status st = storage::VerifyPageTrailer(page.data(), kPageSize, i);
    EXPECT_FALSE(st.ok()) << "undetected mutation at byte " << pos;
    EXPECT_TRUE(st.IsDataLoss());
  }
}

TEST(FuzzLiteTest, PageTrailerAcceptsAllZeroPages) {
  // Freshly allocated, never-flushed pages are all zeros and must verify
  // clean (they carry no trailer yet).
  constexpr uint32_t kPageSize = 512;
  std::vector<char> page(kPageSize, 0);
  EXPECT_TRUE(storage::VerifyPageTrailer(page.data(), kPageSize).ok());
}

}  // namespace
}  // namespace pictdb
