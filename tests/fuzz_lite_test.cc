// Deterministic fuzz-lite: every text/byte-level entry point must either
// succeed or return a clean error Status on random input — never crash,
// never corrupt state. Seeds are pinned, so failures reproduce.

#include <gtest/gtest.h>
#include <unistd.h>

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "geom/wkt.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "pack/pack.h"
#include "psql/executor.h"
#include "psql/lexer.h"
#include "psql/parser.h"
#include "rel/catalog.h"
#include "rel/tuple.h"
#include "rtree/rtree.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "workload/generators.h"
#include "workload/us_catalog.h"

namespace pictdb {
namespace {

std::string RandomText(Random* rng, size_t max_len,
                       const std::string& alphabet) {
  const size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng->Uniform(alphabet.size())]);
  }
  return out;
}

const std::string kQueryAlphabet =
    "abcdefghijklmnopqrstuvwxyz0123456789 .,'(){}<>=+-*_";

TEST(FuzzLiteTest, LexerNeverCrashes) {
  Random rng(1);
  for (int i = 0; i < 3000; ++i) {
    const std::string text = RandomText(&rng, 60, kQueryAlphabet);
    auto tokens = psql::Tokenize(text);
    if (tokens.ok()) {
      EXPECT_FALSE(tokens->empty());  // always at least kEnd
      EXPECT_EQ(tokens->back().kind, psql::TokenKind::kEnd);
    }
  }
}

TEST(FuzzLiteTest, ParserNeverCrashes) {
  Random rng(2);
  for (int i = 0; i < 3000; ++i) {
    // Bias toward query-shaped text so the parser gets past token 0.
    std::string text = "select ";
    text += RandomText(&rng, 50, kQueryAlphabet);
    (void)psql::Parse(text);          // either ok or clean error
    (void)psql::ParseStatement(text);
  }
}

TEST(FuzzLiteTest, MutatedValidQueriesNeverCrashTheExecutor) {
  storage::InMemoryDiskManager disk(1024);
  storage::BufferPool pool(&disk, 1 << 14);
  rel::Catalog catalog(&pool);
  PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog, 4));
  psql::Executor exec(&catalog);

  const std::string base =
      "select city,population,loc from cities on us-map "
      "at loc covered-by {-77 +- 8, 39 +- 4} where population > 450000 "
      "order by population desc limit 5";
  Random rng(3);
  for (int i = 0; i < 400; ++i) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // replace
          mutated[pos] = kQueryAlphabet[rng.Uniform(kQueryAlphabet.size())];
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // insert
          mutated.insert(pos, 1,
                         kQueryAlphabet[rng.Uniform(kQueryAlphabet.size())]);
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    (void)exec.Run(mutated);  // must not crash; errors are fine
  }
  // The catalog must still be fully functional afterwards.
  auto rs = exec.Query("select count(*) from cities");
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs->rows[0][0].as_int(), 0);
}

TEST(FuzzLiteTest, WktParserNeverCrashes) {
  Random rng(4);
  const std::string alphabet = "POINTSEGMNBXLYG(),.0123456789- ";
  for (int i = 0; i < 5000; ++i) {
    (void)geom::ParseWkt(RandomText(&rng, 40, alphabet));
  }
}

TEST(FuzzLiteTest, TupleDeserializeNeverCrashesOnRandomBytes) {
  Random rng(5);
  for (int i = 0; i < 5000; ++i) {
    std::string bytes;
    const size_t len = rng.Uniform(100);
    for (size_t b = 0; b < len; ++b) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)rel::Tuple::Deserialize(bytes);  // error or garbage-free tuple
  }
}

TEST(FuzzLiteTest, TupleDeserializeMutatedValidBytes) {
  const rel::Tuple original({rel::Value(std::string("Chicago")),
                             rel::Value(int64_t{2693976}),
                             rel::Value(geom::Geometry(
                                 geom::Point{-87.6, 41.9}))});
  const std::string valid = original.Serialize();
  Random rng(6);
  for (int i = 0; i < 3000; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    (void)rel::Tuple::Deserialize(mutated);
  }
}

TEST(FuzzLiteTest, PageTrailerVerifyNeverCrashesOnRandomBytes) {
  constexpr uint32_t kPageSize = 256;
  Random rng(7);
  std::vector<char> page(kPageSize);
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    for (char& c : page) c = static_cast<char>(rng.Uniform(256));
    if (storage::VerifyPageTrailer(page.data(), kPageSize, i).ok()) {
      ++accepted;
    }
  }
  // Random bytes essentially never carry a valid magic+CRC trailer (and
  // are essentially never all-zero).
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzLiteTest, PageTrailerStampVerifyRoundTrip) {
  constexpr uint32_t kPageSize = 256;
  Random rng(8);
  std::vector<char> page(kPageSize);
  for (int i = 0; i < 2000; ++i) {
    for (char& c : page) c = static_cast<char>(rng.Uniform(256));
    storage::StampPageTrailer(page.data(), kPageSize);
    EXPECT_TRUE(storage::VerifyPageTrailer(page.data(), kPageSize).ok());
  }
}

TEST(FuzzLiteTest, PageTrailerDetectsSingleByteMutations) {
  constexpr uint32_t kPageSize = 256;
  Random rng(9);
  std::vector<char> page(kPageSize);
  for (int i = 0; i < 2000; ++i) {
    for (char& c : page) c = static_cast<char>(rng.Uniform(256));
    storage::StampPageTrailer(page.data(), kPageSize);
    const size_t pos = rng.Uniform(kPageSize);
    const char flip = static_cast<char>(1u << rng.Uniform(8));
    page[pos] = static_cast<char>(page[pos] ^ flip);
    const Status st = storage::VerifyPageTrailer(page.data(), kPageSize, i);
    EXPECT_FALSE(st.ok()) << "undetected mutation at byte " << pos;
    EXPECT_TRUE(st.IsDataLoss());
  }
}

TEST(FuzzLiteTest, PageTrailerAcceptsAllZeroPages) {
  // Freshly allocated, never-flushed pages are all zeros and must verify
  // clean (they carry no trailer yet).
  constexpr uint32_t kPageSize = 512;
  std::vector<char> page(kPageSize, 0);
  EXPECT_TRUE(storage::VerifyPageTrailer(page.data(), kPageSize).ok());
}

// ---------------------------------------------------------------------
// Network protocol fuzzing.

std::string RandomBytes(Random* rng, size_t max_len) {
  const size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

net::Request RandomValidRequest(Random* rng) {
  net::Request request;
  switch (rng->Uniform(5)) {
    case 0:
      request.body = net::WindowRequest{
          geom::Rect(rng->UniformDouble(0, 500), rng->UniformDouble(0, 500),
                     rng->UniformDouble(500, 1000),
                     rng->UniformDouble(500, 1000)),
          rng->Uniform(2) == 1};
      break;
    case 1:
      request.body = net::KnnRequest{
          geom::Point{rng->UniformDouble(0, 1000),
                      rng->UniformDouble(0, 1000)},
          static_cast<uint32_t>(1 + rng->Uniform(8))};
      break;
    case 2:
      request.body = net::PsqlRequest{
          RandomText(rng, 40, kQueryAlphabet)};
      break;
    case 3:
      request.body = net::PingRequest{};
      break;
    default:
      request.body = net::StatsRequest{};
      break;
  }
  request.options.timeout_us = rng->Uniform(2) ? 1'000'000 : 0;
  return request;
}

TEST(FuzzLiteTest, RequestDecoderNeverCrashesOnRandomBytes) {
  Random rng(41);
  constexpr uint8_t kRequestTypes[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (int i = 0; i < 4000; ++i) {
    const std::string bytes = RandomBytes(&rng, 96);
    const auto type = static_cast<net::MsgType>(
        kRequestTypes[rng.Uniform(sizeof(kRequestTypes))]);
    (void)net::DecodeRequestPayload(type, bytes);  // ok or clean error
  }
}

TEST(FuzzLiteTest, ResponseDecoderNeverCrashesOnRandomBytes) {
  Random rng(42);
  constexpr uint8_t kResponseTypes[] = {32, 33, 34, 35, 36, 37, 38, 39};
  for (int i = 0; i < 4000; ++i) {
    const std::string bytes = RandomBytes(&rng, 128);
    const auto type = static_cast<net::MsgType>(
        kResponseTypes[rng.Uniform(sizeof(kResponseTypes))]);
    (void)net::DecodeResponsePayload(type, bytes);
  }
}

/// Seeded frame fuzzer against a LIVE server: random bytes, random-header
/// frames, bit-flipped valid frames, and truncated frames, interleaved
/// over reconnecting sockets. The server must reply with a structured
/// error or close the connection — and afterwards it must still answer a
/// correct window query. Run under ASan in CI like every other test.
TEST(FuzzLiteTest, SeededFrameFuzzerNeverCrashesTheServer) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, /*capacity=*/64, /*shards=*/2);
  Random data_rng(77);
  const auto points =
      workload::UniformPoints(&data_rng, 500, workload::PaperFrame());
  std::vector<storage::Rid> rids;
  rids.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
  }
  auto tree_or = rtree::RTree::Create(&pool);
  ASSERT_TRUE(tree_or.ok());
  rtree::RTree tree = std::move(tree_or).value();
  ASSERT_TRUE(
      pack::PackNearestNeighbor(&tree, pack::MakeLeafEntries(points, rids))
          .ok());
  service::QueryService service(&tree, /*executor=*/nullptr);

  net::ServerOptions options;
  options.unix_path = ::testing::TempDir() + "pictdb_fuzz_" +
                      std::to_string(getpid()) + ".sock";
  net::Server::Bindings bindings;
  bindings.service = &service;
  net::Server server(bindings, options);
  ASSERT_TRUE(server.Start().ok());

  Random rng(4242);
  std::optional<net::Client> client;
  for (int i = 0; i < 400; ++i) {
    if (!client.has_value()) {
      auto connected = net::Client::ConnectUnix(options.unix_path);
      ASSERT_TRUE(connected.ok()) << connected.status().ToString();
      client.emplace(std::move(connected).value());
    }
    std::string bytes;
    switch (i % 4) {
      case 0:  // raw garbage
        bytes = RandomBytes(&rng, 64);
        break;
      case 1: {  // well-formed header, random payload
        const auto type = static_cast<net::MsgType>(1 + rng.Uniform(9));
        bytes = net::EncodeFrame(type, rng.Uniform(4),
                                 static_cast<uint32_t>(i),
                                 RandomBytes(&rng, 48));
        break;
      }
      case 2: {  // valid request frame with 1..4 bit flips
        const net::Request request = RandomValidRequest(&rng);
        bytes = net::EncodeFrame(net::RequestMsgType(request), 0,
                                 static_cast<uint32_t>(i),
                                 net::EncodeRequestPayload(request));
        const size_t flips = 1 + rng.Uniform(4);
        for (size_t f = 0; f < flips; ++f) {
          const size_t pos = rng.Uniform(bytes.size());
          bytes[pos] = static_cast<char>(
              bytes[pos] ^ static_cast<char>(1u << rng.Uniform(8)));
        }
        break;
      }
      default: {  // truncated valid frame
        const net::Request request = RandomValidRequest(&rng);
        const std::string full =
            net::EncodeFrame(net::RequestMsgType(request), 0,
                             static_cast<uint32_t>(i),
                             net::EncodeRequestPayload(request));
        bytes = full.substr(0, rng.Uniform(full.size()));
        break;
      }
    }
    if (!client->SendRaw(bytes).ok()) {
      client.reset();  // server closed the poisoned stream: reconnect
    }
  }
  client.reset();

  // Liveness + correctness after the bombardment.
  auto fresh = net::Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_TRUE(fresh->Ping().ok());
  const geom::Rect window(200, 200, 600, 600);
  size_t expected = 0;
  for (const geom::Point& p : points) {
    if (window.Contains(p)) ++expected;
  }
  auto result = fresh->Window(window, false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(std::get<net::HitsResponse>(result->response.body).hits.size(),
            expected);
  EXPECT_GT(server.Stats().protocol_errors, 0u);
  server.Stop();
}

}  // namespace
}  // namespace pictdb
