#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "viz/ascii_canvas.h"
#include "viz/svg.h"

namespace pictdb::viz {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Segment;

TEST(AsciiCanvasTest, BlankRender) {
  AsciiCanvas canvas(Rect(0, 0, 10, 10), 10, 5);
  const std::string out = canvas.Render();
  // 5 rows of 10 spaces.
  EXPECT_EQ(out, std::string(10, ' ') + "\n" + std::string(10, ' ') + "\n" +
                     std::string(10, ' ') + "\n" + std::string(10, ' ') +
                     "\n" + std::string(10, ' ') + "\n");
}

TEST(AsciiCanvasTest, PointLandsInExpectedCell) {
  AsciiCanvas canvas(Rect(0, 0, 10, 10), 10, 10);
  canvas.DrawPoint(Point{0.5, 9.5}, '*');  // top-left area
  const std::string out = canvas.Render();
  std::istringstream is(out);
  std::string first_row;
  std::getline(is, first_row);
  EXPECT_EQ(first_row[0], '*');
}

TEST(AsciiCanvasTest, PointsOutsideFrameIgnored) {
  AsciiCanvas canvas(Rect(0, 0, 10, 10), 8, 8);
  canvas.DrawPoint(Point{20, 20});
  canvas.DrawPoint(Point{-1, 5});
  EXPECT_EQ(canvas.Render().find('*'), std::string::npos);
}

TEST(AsciiCanvasTest, RectDrawsBorder) {
  AsciiCanvas canvas(Rect(0, 0, 100, 100), 20, 20);
  canvas.DrawRect(Rect(10, 10, 90, 90));
  const std::string out = canvas.Render();
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(AsciiCanvasTest, RectPartiallyOutsideIsClipped) {
  AsciiCanvas canvas(Rect(0, 0, 100, 100), 20, 20);
  canvas.DrawRect(Rect(50, 50, 200, 200));
  EXPECT_NE(canvas.Render().find('+'), std::string::npos);
}

TEST(AsciiCanvasTest, SegmentConnectsEndpoints) {
  AsciiCanvas canvas(Rect(0, 0, 10, 10), 10, 10);
  canvas.DrawSegment(Segment{{0.5, 0.5}, {9.5, 9.5}}, '.');
  const std::string out = canvas.Render();
  // Diagonal of dots: one per row.
  size_t dots = 0;
  for (char c : out) {
    if (c == '.') ++dots;
  }
  EXPECT_GE(dots, 10u);
}

TEST(AsciiCanvasTest, LabelTruncatesAtEdge) {
  AsciiCanvas canvas(Rect(0, 0, 10, 10), 10, 10);
  canvas.DrawLabel(Point{8.5, 5}, "Chicago");
  const std::string out = canvas.Render();
  EXPECT_NE(out.find("Ch"), std::string::npos);
  EXPECT_EQ(out.find("Chicago"), std::string::npos);  // clipped
}

TEST(SvgTest, DocumentStructure) {
  SvgWriter svg(Rect(0, 0, 100, 50), 400);
  svg.AddPoint(Point{50, 25}, "red", 3);
  svg.AddRect(Rect(10, 10, 40, 30), "blue", 2);
  svg.AddSegment(Segment{{0, 0}, {100, 50}});
  svg.AddPolygon(Polygon({{10, 10}, {20, 10}, {15, 20}}));
  svg.AddLabel(Point{5, 5}, "origin");
  const std::string doc = svg.Finish();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("<rect"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
  EXPECT_NE(doc.find(">origin</text>"), std::string::npos);
  // Aspect ratio preserved: 100x50 world -> 400x200 pixels.
  EXPECT_NE(doc.find("height=\"200\""), std::string::npos);
}

TEST(SvgTest, YAxisFlipped) {
  SvgWriter svg(Rect(0, 0, 100, 100), 100);
  svg.AddPoint(Point{0, 100});  // top-left in world
  const std::string doc = svg.Finish();
  // Should map to pixel (0, 0).
  EXPECT_NE(doc.find("cx=\"0\" cy=\"0\""), std::string::npos);
}

TEST(SvgTest, WritesFile) {
  const std::string path =
      std::string(::testing::TempDir()) + "/pictdb_viz_test.svg";
  SvgWriter svg(Rect(0, 0, 10, 10), 100);
  svg.AddPoint(Point{5, 5});
  ASSERT_TRUE(svg.WriteFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), svg.Finish());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pictdb::viz
