// Tests for the static-analysis layer itself: the annotated mutex
// wrappers behave like the std primitives they wrap, the repo-wide
// lock-wrapper discipline holds (no bare std::mutex outside
// common/mutex.h), the project lint is clean, and the verification
// subsystem carries no suppression comments. The negative-compile
// probes in tests/negative_compile/ cover the compile-time half (a
// discarded Status and an unlocked GUARDED_BY access must not build).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "lint_guard.h"

namespace pictdb {
namespace {

namespace fs = std::filesystem;

TEST(MutexWrapperTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{false};
  std::thread contender([&] {
    acquired.store(mu.TryLock());
    if (acquired.load()) mu.Unlock();
  });
  contender.join();
  EXPECT_FALSE(acquired.load()) << "TryLock succeeded on a held mutex";
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexWrapperTest, MutexLockIsExclusive) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, 40000);
}

TEST(MutexWrapperTest, CondVarWaitAndNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    mu.Lock();
    while (!ready) {
      cv.Wait(&mu);
    }
    mu.Unlock();
  }
  signaller.join();
  MutexLock lock(&mu);
  EXPECT_TRUE(ready);
}

TEST(MutexWrapperTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  // Deterministic overlap: both readers take the shared lock and then
  // rendezvous *while holding it*. If ReaderMutexLock were secretly
  // exclusive, the second reader could never enter and the first would
  // spin on the rendezvous forever — so time-box the wait and fail.
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  auto reader = [&] {
    ReaderMutexLock lock(&mu);
    inside.fetch_add(1);
    for (int spin = 0; spin < 2000; ++spin) {
      if (inside.load() >= 2) {
        overlapped.store(true);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::thread a(reader), b(reader);
  a.join();
  b.join();
  EXPECT_TRUE(overlapped.load())
      << "two ReaderMutexLock holders never coexisted";
  WriterMutexLock lock(&mu);
  EXPECT_EQ(inside.load(), 2);
}

/// Repo-wide lock-wrapper discipline, mirrored from pictdb_lint.py's
/// MUTEX-WRAPPER rule so it also runs as part of ctest: production code
/// must lock through the annotated pictdb wrappers, never the bare std
/// types the thread safety analysis cannot see.
TEST(LockDisciplineTest, NoBareStdMutexOutsideWrapperHeader) {
  const fs::path src = fs::path(PICTDB_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::is_directory(src));
  const std::regex forbidden(
      "std::(mutex|shared_mutex|condition_variable|lock_guard|"
      "unique_lock|shared_lock|scoped_lock)\\b");
  size_t scanned = 0;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cc" && ext != ".h") continue;
    if (entry.path().filename() == "mutex.h") continue;  // the wrapper
    ++scanned;
    std::ifstream in(entry.path());
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      // Comments may mention the std types; code must not use them.
      const auto comment = line.find("//");
      const std::string code =
          comment == std::string::npos ? line : line.substr(0, comment);
      EXPECT_FALSE(std::regex_search(code, forbidden))
          << entry.path() << ":" << lineno << ": " << line;
    }
  }
  ASSERT_GT(scanned, 50u) << "source scan matched too few files";
}

TEST(LintGuardTest, CheckSubsystemHasNoSuppressions) {
  testing_support::AssertNoLintSuppressionsInCheckSubsystem();
}

/// Run the repo lint as a test so `ctest` alone reproduces the CI lint
/// gate (no Python available => skipped, not failed).
TEST(ProjectLintTest, PictdbLintIsClean) {
  const fs::path script =
      fs::path(PICTDB_SOURCE_DIR) / "tools" / "pictdb_lint.py";
  ASSERT_TRUE(fs::exists(script));
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const std::string cmd = "python3 \"" + script.string() + "\" > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "tools/pictdb_lint.py reported "
                                            "findings; run it for details";
}

}  // namespace
}  // namespace pictdb
