#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "geom/distance.h"
#include "pack/pack.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 8192) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

Rid MakeRid(size_t i) {
  return Rid{static_cast<storage::PageId>(i), 0};
}

RTree MakeTree(Env* env, const std::vector<Point>& pts, bool packed) {
  RTreeOptions opts;
  opts.max_entries = 6;
  opts.min_entries = 3;
  auto tree = RTree::Create(&env->pool, opts);
  PICTDB_CHECK(tree.ok());
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
  }
  if (packed) {
    PICTDB_CHECK_OK(pack::PackNearestNeighbor(
        &*tree, pack::MakeLeafEntries(pts, rids)));
  } else {
    for (size_t i = 0; i < pts.size(); ++i) {
      PICTDB_CHECK_OK(tree->Insert(Rect::FromPoint(pts[i]), rids[i]));
    }
  }
  return std::move(tree).value();
}

TEST(KnnTest, EmptyTreeAndZeroK) {
  Env env;
  RTree tree = MakeTree(&env, {}, false);
  auto none = SearchNearest(tree, Point{0, 0}, 5);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  RTree one = MakeTree(&env, {{1, 1}}, false);
  auto zero = SearchNearest(one, Point{0, 0}, 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->empty());
}

TEST(KnnTest, SingleNearest) {
  Env env;
  RTree tree = MakeTree(&env, {{0, 0}, {10, 0}, {0, 10}, {50, 50}}, false);
  auto nn = SearchNearest(tree, Point{9, 1}, 1);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->size(), 1u);
  EXPECT_EQ((*nn)[0].hit.rid.page_id, 1u);  // (10, 0)
  EXPECT_NEAR((*nn)[0].distance, std::sqrt(2.0), 1e-12);
}

TEST(KnnTest, KLargerThanTreeReturnsEverything) {
  Env env;
  RTree tree = MakeTree(&env, {{0, 0}, {1, 1}, {2, 2}}, false);
  auto nn = SearchNearest(tree, Point{0, 0}, 10);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->size(), 3u);
}

TEST(KnnTest, ResultsOrderedByDistance) {
  Env env;
  Random rng(5);
  const auto pts = workload::UniformPoints(&rng, 200,
                                           workload::PaperFrame());
  RTree tree = MakeTree(&env, pts, true);
  auto nn = SearchNearest(tree, Point{500, 500}, 20);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->size(), 20u);
  for (size_t i = 1; i < nn->size(); ++i) {
    EXPECT_LE((*nn)[i - 1].distance, (*nn)[i].distance);
  }
}

/// Differential sweep: exact agreement with brute force across seeds, k,
/// and construction paths.
class KnnDifferential
    : public ::testing::TestWithParam<std::tuple<int, size_t, bool>> {};

TEST_P(KnnDifferential, MatchesBruteForce) {
  const auto [seed, k, packed] = GetParam();
  Env env;
  Random rng(static_cast<uint64_t>(seed));
  const auto pts = workload::UniformPoints(&rng, 300,
                                           workload::PaperFrame());
  RTree tree = MakeTree(&env, pts, packed);

  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)};
    SearchStats stats;
    auto nn = SearchNearest(tree, q, k, &stats);
    ASSERT_TRUE(nn.ok());
    ASSERT_EQ(nn->size(), std::min(k, pts.size()));

    // Brute-force distances, sorted.
    std::vector<double> expected;
    for (const Point& p : pts) expected.push_back(geom::Distance(p, q));
    std::sort(expected.begin(), expected.end());
    for (size_t i = 0; i < nn->size(); ++i) {
      EXPECT_NEAR((*nn)[i].distance, expected[i], 1e-9)
          << "k-th neighbour mismatch at " << i;
    }
    // Best-first search must not scan the whole tree for small k.
    if (k <= 5) {
      auto total = tree.CountNodes();
      ASSERT_TRUE(total.ok());
      EXPECT_LT(stats.nodes_visited, *total);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnDifferential,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(size_t{1}, size_t{5}, size_t{32}),
                       ::testing::Bool()));

TEST(KnnExactTest, RefinesBeyondMbrOrdering) {
  // Two diagonal segments: the query sits near segment B's line but
  // inside segment A's (empty) MBR corner, so MBR MINDIST prefers A while
  // the exact distance prefers B.
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());

  std::vector<geom::Geometry> geometries = {
      geom::Geometry(geom::Segment{{0, 0}, {100, 100}}),   // A: diagonal
      geom::Geometry(geom::Segment{{80, 0}, {100, 20}}),   // B: near corner
  };
  for (size_t i = 0; i < geometries.size(); ++i) {
    ASSERT_TRUE(tree->Insert(geometries[i].Mbr(), MakeRid(i)).ok());
  }
  const Point query{95, 2};
  // Sanity: MBR distance says A (distance 0, query inside A's MBR), but
  // the exact nearest object is B.
  ASSERT_EQ(geom::MinDistance(geometries[0].Mbr(), query), 0.0);
  ASSERT_GT(geom::DistanceTo(geometries[0], query),
            geom::DistanceTo(geometries[1], query));

  auto mbr_level = SearchNearest(*tree, query, 1);
  ASSERT_TRUE(mbr_level.ok());
  EXPECT_EQ((*mbr_level)[0].hit.rid.page_id, 0u);  // fooled by the MBR

  auto resolver = [&geometries](const Rid& rid) -> StatusOr<geom::Geometry> {
    return geometries[rid.page_id];
  };
  auto exact = SearchNearestExact(*tree, query, 2, resolver);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(exact->size(), 2u);
  EXPECT_EQ((*exact)[0].hit.rid.page_id, 1u);  // B first
  EXPECT_NEAR((*exact)[0].distance,
              geom::DistanceTo(geometries[1], query), 1e-12);
  EXPECT_LE((*exact)[0].distance, (*exact)[1].distance);
}

TEST(KnnExactTest, MatchesBruteForceOnMixedObjects) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 6;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());

  Random rng(21);
  std::vector<geom::Geometry> geometries;
  for (int i = 0; i < 150; ++i) {
    const double x = rng.UniformDouble(0, 900);
    const double y = rng.UniformDouble(0, 900);
    switch (rng.Uniform(3)) {
      case 0:
        geometries.push_back(geom::Geometry(Point{x, y}));
        break;
      case 1:
        geometries.push_back(geom::Geometry(
            geom::Segment{{x, y},
                          {x + rng.UniformDouble(5, 80),
                           y + rng.UniformDouble(5, 80)}}));
        break;
      default:
        geometries.push_back(geom::Geometry(
            geom::Polygon({{x, y},
                           {x + rng.UniformDouble(5, 40), y},
                           {x, y + rng.UniformDouble(5, 40)}})));
        break;
    }
  }
  for (size_t i = 0; i < geometries.size(); ++i) {
    ASSERT_TRUE(tree->Insert(geometries[i].Mbr(), MakeRid(i)).ok());
  }
  auto resolver = [&geometries](const Rid& rid) -> StatusOr<geom::Geometry> {
    return geometries[rid.page_id];
  };

  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)};
    auto exact = SearchNearestExact(*tree, q, 5, resolver);
    ASSERT_TRUE(exact.ok());
    ASSERT_EQ(exact->size(), 5u);
    std::vector<double> expected;
    for (const auto& g : geometries) {
      expected.push_back(geom::DistanceTo(g, q));
    }
    std::sort(expected.begin(), expected.end());
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR((*exact)[i].distance, expected[i], 1e-9) << i;
    }
  }
}

TEST(KnnTest, WorksOnRectObjects) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 10, 10), Rid{1, 0}).ok());
  ASSERT_TRUE(tree->Insert(Rect(20, 20, 30, 30), Rid{2, 0}).ok());
  // Query inside the first rect: distance 0.
  auto nn = SearchNearest(*tree, Point{5, 5}, 2);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->size(), 2u);
  EXPECT_EQ((*nn)[0].hit.rid.page_id, 1u);
  EXPECT_EQ((*nn)[0].distance, 0.0);
  EXPECT_NEAR((*nn)[1].distance, std::hypot(15, 15), 1e-12);
}

}  // namespace
}  // namespace pictdb::rtree
