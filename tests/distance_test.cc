#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/distance.h"

namespace pictdb::geom {
namespace {

Polygon UnitSquareAt(double x, double y) {
  return Polygon({{x, y}, {x + 1, y}, {x + 1, y + 1}, {x, y + 1}});
}

TEST(DistanceTest, PointToEachType) {
  EXPECT_DOUBLE_EQ(DistanceTo(Geometry(Point{0, 0}), Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(
      DistanceTo(Geometry(Segment{{0, 0}, {10, 0}}), Point{5, 2}), 2.0);
  EXPECT_DOUBLE_EQ(DistanceTo(Geometry(Rect(0, 0, 2, 2)), Point{5, 2}), 3.0);
  EXPECT_DOUBLE_EQ(DistanceTo(Geometry(UnitSquareAt(0, 0)), Point{4, 1}),
                   3.0);
}

TEST(DistanceTest, InsideMeansZero) {
  EXPECT_EQ(DistanceTo(Geometry(Rect(0, 0, 10, 10)), Point{5, 5}), 0.0);
  EXPECT_EQ(DistanceTo(Geometry(UnitSquareAt(0, 0)), Point{0.5, 0.5}), 0.0);
  EXPECT_EQ(DistanceTo(Geometry(Segment{{0, 0}, {4, 4}}), Point{2, 2}), 0.0);
}

TEST(DistanceTest, SegmentSegment) {
  // Crossing.
  EXPECT_EQ(Distance(Segment{{0, 0}, {2, 2}}, Segment{{0, 2}, {2, 0}}), 0.0);
  // Parallel horizontal.
  EXPECT_DOUBLE_EQ(
      Distance(Segment{{0, 0}, {10, 0}}, Segment{{0, 3}, {10, 3}}), 3.0);
  // Endpoint to interior.
  EXPECT_DOUBLE_EQ(
      Distance(Segment{{0, 0}, {10, 0}}, Segment{{5, 2}, {5, 9}}), 2.0);
  // Skew, nearest at endpoints.
  EXPECT_DOUBLE_EQ(
      Distance(Segment{{0, 0}, {1, 0}}, Segment{{4, 4}, {9, 9}}),
      Distance(Point{1, 0}, Point{4, 4}));
}

TEST(DistanceTest, RectRect) {
  EXPECT_EQ(DistanceBetween(Geometry(Rect(0, 0, 2, 2)),
                            Geometry(Rect(1, 1, 3, 3))),
            0.0);
  EXPECT_DOUBLE_EQ(DistanceBetween(Geometry(Rect(0, 0, 1, 1)),
                                   Geometry(Rect(4, 5, 6, 7))),
                   5.0);
}

TEST(DistanceTest, SegmentRect) {
  const Geometry rect(Rect(0, 0, 4, 4));
  EXPECT_EQ(DistanceBetween(Geometry(Segment{{-2, 2}, {6, 2}}), rect), 0.0);
  EXPECT_DOUBLE_EQ(
      DistanceBetween(Geometry(Segment{{6, 0}, {6, 4}}), rect), 2.0);
  // Symmetric call order.
  EXPECT_DOUBLE_EQ(
      DistanceBetween(rect, Geometry(Segment{{6, 0}, {6, 4}})), 2.0);
}

TEST(DistanceTest, PolygonCombinations) {
  const Geometry a(UnitSquareAt(0, 0));
  const Geometry b(UnitSquareAt(4, 0));
  EXPECT_DOUBLE_EQ(DistanceBetween(a, b), 3.0);
  EXPECT_EQ(DistanceBetween(a, Geometry(UnitSquareAt(0.5, 0.5))), 0.0);
  EXPECT_DOUBLE_EQ(
      DistanceBetween(a, Geometry(Rect(3, 0, 5, 1))), 2.0);
  EXPECT_DOUBLE_EQ(
      DistanceBetween(a, Geometry(Segment{{1, 3}, {2, 3}})),
      Distance(Point{1, 1}, Point{1, 3}));
  // Polygon containing a rect.
  const Geometry big(
      Polygon({{-5, -5}, {10, -5}, {10, 10}, {-5, 10}}));
  EXPECT_EQ(DistanceBetween(big, Geometry(Rect(0, 0, 1, 1))), 0.0);
}

TEST(DistanceTest, ConsistentWithMbrLowerBound) {
  // DistanceTo(g, p) >= MinDistance(g.Mbr(), p) always — the R-tree
  // MINDIST really is a lower bound for exact refinement.
  Random rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    const Point p{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
    const double x = rng.UniformDouble(0, 90);
    const double y = rng.UniformDouble(0, 90);
    const Geometry objects[] = {
        Geometry(Point{x, y}),
        Geometry(Segment{{x, y},
                         {x + rng.UniformDouble(0, 10),
                          y + rng.UniformDouble(0, 10)}}),
        Geometry(Rect(x, y, x + rng.UniformDouble(0.1, 10),
                      y + rng.UniformDouble(0.1, 10))),
        Geometry(Polygon({{x, y},
                          {x + 5, y + 1},
                          {x + 3, y + 6}})),
    };
    for (const Geometry& g : objects) {
      const double exact = DistanceTo(g, p);
      const double bound = MinDistance(g.Mbr(), p);
      EXPECT_GE(exact + 1e-9, bound);
    }
  }
}

TEST(DistanceTest, SymmetryProperty) {
  Random rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_geometry = [&rng]() {
      const double x = rng.UniformDouble(0, 80);
      const double y = rng.UniformDouble(0, 80);
      switch (rng.Uniform(4)) {
        case 0:
          return Geometry(Point{x, y});
        case 1:
          return Geometry(Segment{{x, y}, {x + 7, y + 3}});
        case 2:
          return Geometry(Rect(x, y, x + 5, y + 4));
        default:
          return Geometry(Polygon({{x, y}, {x + 6, y}, {x + 3, y + 5}}));
      }
    };
    const Geometry a = random_geometry();
    const Geometry b = random_geometry();
    EXPECT_NEAR(DistanceBetween(a, b), DistanceBetween(b, a), 1e-9);
    // Zero distance iff they overlap (share a point).
    if (Overlapping(a, b)) {
      EXPECT_EQ(DistanceBetween(a, b), 0.0);
    } else {
      EXPECT_GT(DistanceBetween(a, b), 0.0);
    }
  }
}

}  // namespace
}  // namespace pictdb::geom
