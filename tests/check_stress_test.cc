#include <gtest/gtest.h>

#include <vector>

#include "check/oracle.h"
#include "check/stress.h"
#include "common/random.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "workload/generators.h"

namespace pictdb::check {
namespace {

using rtree::Entry;
using rtree::RTree;
using storage::Rid;

StressConfig SmallConfig() {
  StressConfig config;
  config.seed = 1234;
  config.ops = 400;
  config.initial_entries = 256;
  config.validate_every = 64;
  config.fault_plan.seed = 77;
  config.fault_plan.transient_read_error_rate = 0.01;
  config.fault_plan.transient_write_error_rate = 0.005;
  config.fault_plan.read_bit_flip_rate = 0.01;
  return config;
}

TEST(StressTraceTest, RoundTripsThroughText) {
  const StressConfig config = SmallConfig();
  const std::vector<Op> trace = GenerateTrace(config);
  ASSERT_FALSE(trace.empty());

  auto parsed = ParseTrace(TraceToText(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    const Op& a = trace[i];
    const Op& b = (*parsed)[i];
    EXPECT_EQ(a.kind, b.kind) << "op " << i;
    EXPECT_EQ(a.a, b.a) << "op " << i;
    // %.17g round-trips doubles exactly.
    EXPECT_EQ(a.rect.lo.x, b.rect.lo.x) << "op " << i;
    EXPECT_EQ(a.rect.hi.y, b.rect.hi.y) << "op " << i;
    EXPECT_EQ(a.point.x, b.point.x) << "op " << i;
  }
}

TEST(StressTraceTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(ParseTrace("insert 1 2 3").ok());
  EXPECT_FALSE(ParseTrace("frobnicate").ok());
  EXPECT_FALSE(ParseTrace("knn 1 2").ok());
  // Comments and blank lines are fine.
  auto ok = ParseTrace("# repro 42\n\nrepack\nvalidate\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
}

TEST(StressRunTest, GenerationAndExecutionAreDeterministic) {
  const StressConfig config = SmallConfig();
  const std::vector<Op> a = GenerateTrace(config);
  const std::vector<Op> b = GenerateTrace(config);
  ASSERT_EQ(TraceToText(a), TraceToText(b));

  const StressOutcome first = RunTrace(a, config);
  const StressOutcome second = RunTrace(a, config);
  EXPECT_FALSE(first.failed) << first.Summary();
  EXPECT_EQ(first.Summary(), second.Summary());
  EXPECT_EQ(first.queries, second.queries);
  EXPECT_EQ(first.degraded_subsets, second.degraded_subsets);
}

TEST(StressRunTest, CleanRunHasNoWrongAnswersAndValidates) {
  StressConfig config = SmallConfig();
  config.fault_plan = {};  // fault flips arm a plan with all-zero rates
  config.ops = 800;
  const StressOutcome outcome = RunTrace(GenerateTrace(config), config);
  EXPECT_FALSE(outcome.failed) << outcome.Summary();
  EXPECT_GT(outcome.queries, 0u);
  EXPECT_GT(outcome.mutations, 0u);
  EXPECT_GT(outcome.validations, 0u);
  EXPECT_EQ(outcome.wrong_answers, 0u);
  EXPECT_EQ(outcome.degraded_subsets, 0u);  // nothing was ever degraded
}

TEST(StressRunTest, FaultEpisodesStayHonest) {
  StressConfig config = SmallConfig();
  config.ops = 1200;
  config.pool_frames = 64;  // small pool: reads really hit the flaky disk
  const StressOutcome outcome = RunTrace(GenerateTrace(config), config);
  EXPECT_FALSE(outcome.failed) << outcome.Summary();
  EXPECT_EQ(outcome.wrong_answers, 0u);
  EXPECT_GT(outcome.queries, 0u);
}

TEST(StressRunTest, ServiceModeIsDeterministicToo) {
  StressConfig config = SmallConfig();
  config.use_service = true;
  config.ops = 300;
  const std::vector<Op> trace = GenerateTrace(config);
  const StressOutcome first = RunTrace(trace, config);
  const StressOutcome second = RunTrace(trace, config);
  EXPECT_FALSE(first.failed) << first.Summary();
  EXPECT_EQ(first.Summary(), second.Summary());
}

// The search-batch op diffs SearchBatch against the oracle AND the
// single-window path (bit-identical hit order when no faults are
// armed). Weight defaults to 0 so existing seed traces stay stable;
// turn it up here — fault-free so the strict equivalence arm runs,
// then under faults for the degraded bookkeeping, in both the plain
// and service harnesses.
TEST(StressRunTest, SearchBatchOpMatchesOracleAndSinglePath) {
  StressConfig config = SmallConfig();
  config.fault_plan = {};
  config.ops = 600;
  config.w_search_batch = 25.0;
  const std::vector<Op> trace = GenerateTrace(config);
  // The weight actually produced batch ops (not a vacuous run).
  size_t batch_ops = 0;
  for (const Op& op : trace) {
    if (op.kind == OpKind::kSearchBatch) ++batch_ops;
  }
  ASSERT_GT(batch_ops, 10u);

  const StressOutcome plain = RunTrace(trace, config);
  EXPECT_FALSE(plain.failed) << plain.Summary();
  EXPECT_EQ(plain.wrong_answers, 0u);

  config.use_service = true;
  const StressOutcome service = RunTrace(trace, config);
  EXPECT_FALSE(service.failed) << service.Summary();
  EXPECT_EQ(service.wrong_answers, 0u);
}

TEST(StressRunTest, SearchBatchOpStaysHonestUnderFaults) {
  StressConfig config = SmallConfig();
  config.ops = 800;
  config.w_search_batch = 25.0;
  config.pool_frames = 64;  // small pool: reads really hit the flaky disk
  const StressOutcome outcome = RunTrace(GenerateTrace(config), config);
  EXPECT_FALSE(outcome.failed) << outcome.Summary();
  EXPECT_EQ(outcome.wrong_answers, 0u);
}

TEST(StressShrinkTest, CorruptionIsCaughtAndMinimized) {
  StressConfig config = SmallConfig();
  config.fault_plan = {};
  config.ops = 120;
  std::vector<Op> trace = GenerateTrace(config);
  // Plant the seeded corruption the harness exists to catch: one flipped
  // mantissa bit in an inner-node entry MBR, mid-trace.
  Op corrupt;
  corrupt.kind = OpKind::kCorruptMbr;
  corrupt.a = 17;
  trace.insert(trace.begin() + trace.size() / 2, corrupt);

  const StressOutcome outcome = RunTrace(trace, config);
  ASSERT_TRUE(outcome.failed) << outcome.Summary();
  EXPECT_NE(outcome.message.find("validator"), std::string::npos)
      << outcome.message;

  const std::vector<Op> shrunk = ShrinkTrace(trace, FailsUnder(config));
  EXPECT_LE(shrunk.size(), 10u) << TraceToText(shrunk);
  EXPECT_TRUE(RunTrace(shrunk, config).failed);

  // The minimized trace is a replayable text reproducer.
  auto reparsed = ParseTrace(TraceToText(shrunk));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(RunTrace(*reparsed, config).failed);
}

TEST(StressShrinkTest, PassingTraceIsReturnedUntouched) {
  StressConfig config = SmallConfig();
  config.fault_plan = {};
  config.ops = 50;
  const std::vector<Op> trace = GenerateTrace(config);
  ASSERT_FALSE(RunTrace(trace, config).failed);
  EXPECT_EQ(ShrinkTrace(trace, FailsUnder(config)).size(), trace.size());
}

// The ISSUE's acceptance bar: >= 10k mixed queries replayed against the
// oracle across clean, faulty, and degraded regimes, zero wrong answers.
TEST(AcceptanceTest, TenThousandMixedQueriesZeroWrongAnswers) {
  Random rng(2026);
  const auto pts =
      workload::UniformPoints(&rng, 2000, workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
  }
  const std::vector<Entry> entries = pack::MakeLeafEntries(pts, rids);
  const Oracle oracle(entries);

  storage::InMemoryDiskManager mem(512);
  storage::FaultInjectionDiskManager faulty(&mem, {});
  faulty.ClearFaults();
  storage::BufferPoolOptions popts;
  popts.max_read_retries = 10;
  popts.retry_backoff_base = std::chrono::microseconds(0);
  storage::BufferPool pool(&faulty, 128, /*shards=*/4, popts);
  auto created = RTree::Create(&pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  PICTDB_CHECK_OK(pack::PackNearestNeighbor(&tree, entries));

  DiffRunner runner(&tree, &oracle);
  uint64_t total = 0, wrong = 0, failed = 0, degraded = 0;
  auto accumulate = [&](const StatusOr<DiffReport>& report) {
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    total += report->queries;
    wrong += report->wrong_answers;
    failed += report->failures;
    degraded += report->degraded_subsets;
  };

  {  // Clean, direct.
    DiffConfig config;
    config.seed = 1;
    config.queries = 4000;
    accumulate(runner.Run(config));
  }
  {  // Clean, through the concurrent service.
    DiffConfig config;
    config.seed = 2;
    config.queries = 2000;
    config.use_service = true;
    accumulate(runner.Run(config));
  }
  {  // 1% transient faults + bit flips, degraded mode admissible.
    storage::FaultPlan plan;
    plan.seed = 3;
    plan.transient_read_error_rate = 0.01;
    plan.read_bit_flip_rate = 0.01;
    faulty.SetPlan(plan);
    DiffConfig config;
    config.seed = 4;
    config.queries = 4000;
    config.degraded_ok = true;
    accumulate(runner.Run(config));
    faulty.ClearFaults();
  }

  EXPECT_GE(total, 10000u);
  EXPECT_EQ(wrong, 0u);
  EXPECT_EQ(failed, 0u);
  // Degraded subsets are allowed (and expected to be rare), wrong
  // answers never.
  SUCCEED() << total << " queries, " << degraded << " degraded subsets";
}

}  // namespace
}  // namespace pictdb::check
