// R*-style forced reinsertion: correctness under churn, persistence of
// the option, and the quality improvement it exists for.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace pictdb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 8192) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

Rid MakeRid(size_t i) {
  return Rid{static_cast<storage::PageId>(i), 0};
}

RTreeOptions Options(bool reinsert, SplitAlgorithm split =
                                        SplitAlgorithm::kQuadratic) {
  RTreeOptions opts;
  opts.max_entries = 8;
  opts.min_entries = 3;
  opts.split = split;
  opts.forced_reinsert = reinsert;
  return opts;
}

TEST(ReinsertTest, TreeStaysValidAndComplete) {
  Env env;
  auto tree = RTree::Create(&env.pool, Options(true));
  ASSERT_TRUE(tree.ok());
  Random rng(91);
  const auto pts = workload::UniformPoints(&rng, 400,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
    if (i % 50 == 0) {
      ASSERT_TRUE(tree->Validate().ok()) << "after insert " << i;
    }
  }
  EXPECT_EQ(tree->Size(), pts.size());
  ASSERT_TRUE(tree->Validate().ok());
  // Everything findable.
  for (size_t i = 0; i < pts.size(); ++i) {
    auto hits = tree->SearchPoint(pts[i]);
    ASSERT_TRUE(hits.ok());
    bool found = false;
    for (const auto& h : *hits) {
      if (h.rid == MakeRid(i)) found = true;
    }
    ASSERT_TRUE(found) << i;
  }
}

TEST(ReinsertTest, DeletesStillWork) {
  Env env;
  auto tree = RTree::Create(&env.pool, Options(true));
  ASSERT_TRUE(tree.ok());
  Random rng(92);
  const auto pts = workload::UniformPoints(&rng, 200,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  for (size_t i = 0; i < pts.size(); i += 2) {
    ASSERT_TRUE(tree->Delete(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  EXPECT_EQ(tree->Size(), pts.size() / 2);
  ASSERT_TRUE(tree->Validate().ok());
}

TEST(ReinsertTest, OptionPersistsAcrossOpen) {
  Env env;
  storage::PageId meta;
  {
    auto tree = RTree::Create(&env.pool, Options(true));
    ASSERT_TRUE(tree.ok());
    meta = tree->meta_page();
  }
  auto reopened = RTree::Open(&env.pool, meta);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->options().forced_reinsert);
}

TEST(ReinsertTest, ImprovesDynamicTreeQuality) {
  // On clustered arrivals, forced reinsertion should reduce window-query
  // node visits relative to plain quadratic INSERT (seed-pinned).
  Random rng(93);
  const auto frame = workload::PaperFrame();
  auto pts = workload::ClusteredPoints(&rng, 2000, 10, 30.0, frame);
  const auto windows = workload::RandomWindowQueries(&rng, 300, 0.01, frame);

  auto window_cost = [&windows](const RTree& tree) {
    uint64_t visits = 0;
    for (const Rect& w : windows) {
      SearchStats stats;
      PICTDB_CHECK_OK(tree.SearchIntersects(w, &stats).status());
      visits += stats.nodes_visited;
    }
    return visits;
  };

  Env env;
  auto plain = RTree::Create(&env.pool, Options(false));
  auto reinserting = RTree::Create(&env.pool, Options(true));
  ASSERT_TRUE(plain.ok() && reinserting.ok());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(plain->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
    ASSERT_TRUE(
        reinserting->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  ASSERT_TRUE(reinserting->Validate().ok());
  EXPECT_LT(window_cost(*reinserting), window_cost(*plain));
}

TEST(ReinsertTest, CombinesWithRStarSplit) {
  Env env;
  auto tree = RTree::Create(&env.pool,
                            Options(true, SplitAlgorithm::kRStar));
  ASSERT_TRUE(tree.ok());
  Random rng(94);
  const auto pts = workload::UniformPoints(&rng, 300,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->CollectAllEntries()->size(), 300u);
}

}  // namespace
}  // namespace pictdb::rtree
