#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "workload/generators.h"
#include "workload/queries.h"
#include "workload/us_cities.h"

namespace pictdb::workload {
namespace {

using geom::Point;
using geom::Rect;

TEST(GeneratorsTest, UniformPointsInFrame) {
  Random rng(1);
  const Rect frame(10, 20, 110, 220);
  const auto pts = UniformPoints(&rng, 500, frame);
  ASSERT_EQ(pts.size(), 500u);
  for (const Point& p : pts) {
    EXPECT_TRUE(frame.Contains(p));
  }
}

TEST(GeneratorsTest, UniformPointsDeterministic) {
  Random a(7), b(7);
  const auto pa = UniformPoints(&a, 50, PaperFrame());
  const auto pb = UniformPoints(&b, 50, PaperFrame());
  EXPECT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(GeneratorsTest, UniformPointsCoverTheFrame) {
  Random rng(3);
  const auto pts = UniformPoints(&rng, 2000, PaperFrame());
  // Every quadrant receives a decent share.
  int quadrant_counts[4] = {0, 0, 0, 0};
  for (const Point& p : pts) {
    const int q = (p.x > 500 ? 1 : 0) + (p.y > 500 ? 2 : 0);
    ++quadrant_counts[q];
  }
  for (int c : quadrant_counts) {
    EXPECT_GT(c, 350);
  }
}

TEST(GeneratorsTest, ClusteredPointsClampedAndClumped) {
  Random rng(9);
  const auto pts = ClusteredPoints(&rng, 800, 3, 15.0, PaperFrame());
  ASSERT_EQ(pts.size(), 800u);
  for (const Point& p : pts) EXPECT_TRUE(PaperFrame().Contains(p));
  // Clustered data occupies less of the frame than uniform data: compare
  // mean nearest-cluster spread via a crude bounding test — at sigma 15,
  // at least half the points lie within 3 small boxes of ~90x90.
  // (Statistical smoke test, seed-pinned.)
  size_t tight = 0;
  for (const Point& p : pts) {
    for (const Point& q : pts) {
      if (&p != &q && geom::DistanceSquared(p, q) < 25) {
        ++tight;
        break;
      }
    }
  }
  EXPECT_GT(tight, pts.size() / 2);
}

TEST(GeneratorsTest, SkewedPointsLeanLeft) {
  Random rng(11);
  const auto pts = SkewedPoints(&rng, 1000, 3.0, PaperFrame());
  size_t left = 0;
  for (const Point& p : pts) {
    EXPECT_TRUE(PaperFrame().Contains(p));
    if (p.x < 500) ++left;
  }
  EXPECT_GT(left, 700u);
}

TEST(GeneratorsTest, GridPointsCountAndJitterBounds) {
  Random rng(13);
  const auto pts = GridPoints(&rng, 10, 12, 0.4, PaperFrame());
  EXPECT_EQ(pts.size(), 120u);
  for (const Point& p : pts) EXPECT_TRUE(PaperFrame().Contains(p));
}

TEST(GeneratorsTest, DisjointRegionsReallyDisjoint) {
  Random rng(17);
  const auto rects = DisjointRegions(&rng, 60, PaperFrame());
  ASSERT_EQ(rects.size(), 60u);
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_FALSE(rects[i].IsEmpty());
    EXPECT_TRUE(PaperFrame().Contains(rects[i]));
    for (size_t j = i + 1; j < rects.size(); ++j) {
      EXPECT_FALSE(rects[i].Intersects(rects[j])) << i << "," << j;
    }
  }
}

TEST(GeneratorsTest, SegmentsRespectLengthCap) {
  Random rng(19);
  const auto segs = RandomSegments(&rng, 200, 50.0, PaperFrame());
  ASSERT_EQ(segs.size(), 200u);
  for (const auto& s : segs) {
    EXPECT_TRUE(PaperFrame().Contains(s.a));
    EXPECT_TRUE(PaperFrame().Contains(s.b));
    EXPECT_LE(s.Length(), 50.0 * 1.001);
  }
}

TEST(QueriesTest, PointQueriesInFrame) {
  Random rng(23);
  const auto qs = RandomPointQueries(&rng, 100, PaperFrame());
  EXPECT_EQ(qs.size(), 100u);
  for (const Point& p : qs) EXPECT_TRUE(PaperFrame().Contains(p));
}

TEST(QueriesTest, WindowSelectivityAreas) {
  Random rng(29);
  const auto ws = RandomWindowQueries(&rng, 50, 0.01, PaperFrame());
  for (const Rect& w : ws) {
    EXPECT_TRUE(PaperFrame().Contains(w));
    EXPECT_NEAR(w.Area(), 0.01 * PaperFrame().Area(),
                0.01 * PaperFrame().Area() * 0.01);
  }
}

TEST(UsCitiesTest, DatasetShape) {
  const auto& cities = UsCities();
  EXPECT_GE(cities.size(), 120u);
  std::set<std::string_view> names;
  for (const auto& c : cities) {
    EXPECT_GT(c.population, 0);
    EXPECT_LT(c.lon, 0);  // western hemisphere
    EXPECT_GT(c.lat, 15);
    names.insert(c.name);
  }
  // New York is the largest.
  int64_t max_pop = 0;
  for (const auto& c : cities) max_pop = std::max(max_pop, c.population);
  EXPECT_EQ(max_pop, 8336817);
}

TEST(UsCitiesTest, ContinentalFilterDropsAlaskaHawaii) {
  const auto continental = ContinentalUsCities();
  EXPECT_LT(continental.size(), UsCities().size());
  for (const auto& c : continental) {
    EXPECT_TRUE(ContinentalUsFrame().Contains(c.loc()));
    EXPECT_NE(c.state, "AK");
    EXPECT_NE(c.state, "HI");
  }
}

TEST(UsCitiesTest, TimeZonesTileTheContinent) {
  const auto& zones = UsTimeZones();
  ASSERT_EQ(zones.size(), 4u);
  // Every continental city falls in exactly one zone band.
  for (const auto& c : ContinentalUsCities()) {
    int hits = 0;
    for (const auto& z : zones) {
      if (z.band.Contains(c.loc())) ++hits;
    }
    EXPECT_GE(hits, 1) << c.name;
  }
}

}  // namespace
}  // namespace pictdb::workload
