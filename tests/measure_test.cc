#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/measure.h"

namespace pictdb::geom {
namespace {

TEST(MeasureTest, EmptyInput) {
  EXPECT_EQ(TotalArea({}), 0.0);
  EXPECT_EQ(UnionArea({}), 0.0);
  EXPECT_EQ(AreaCoveredAtLeast({}, 2), 0.0);
}

TEST(MeasureTest, SingleRect) {
  const std::vector<Rect> rects = {Rect(0, 0, 4, 3)};
  EXPECT_DOUBLE_EQ(TotalArea(rects), 12.0);
  EXPECT_DOUBLE_EQ(UnionArea(rects), 12.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeast(rects, 2), 0.0);
}

TEST(MeasureTest, DisjointRects) {
  const std::vector<Rect> rects = {Rect(0, 0, 1, 1), Rect(2, 2, 3, 3),
                                   Rect(5, 0, 6, 4)};
  EXPECT_DOUBLE_EQ(TotalArea(rects), 1 + 1 + 4);
  EXPECT_DOUBLE_EQ(UnionArea(rects), 6.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeast(rects, 2), 0.0);
}

TEST(MeasureTest, TwoOverlappingRects) {
  const std::vector<Rect> rects = {Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)};
  EXPECT_DOUBLE_EQ(TotalArea(rects), 8.0);
  EXPECT_DOUBLE_EQ(UnionArea(rects), 7.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeast(rects, 2), 1.0);
}

TEST(MeasureTest, IdenticalRectsStackDepth) {
  const std::vector<Rect> rects = {Rect(0, 0, 2, 2), Rect(0, 0, 2, 2),
                                   Rect(0, 0, 2, 2)};
  EXPECT_DOUBLE_EQ(UnionArea(rects), 4.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeast(rects, 2), 4.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeast(rects, 3), 4.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeast(rects, 4), 0.0);
}

TEST(MeasureTest, CrossShape) {
  // Horizontal and vertical bar crossing in a 1x1 square.
  const std::vector<Rect> rects = {Rect(0, 1, 3, 2), Rect(1, 0, 2, 3)};
  EXPECT_DOUBLE_EQ(UnionArea(rects), 5.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeast(rects, 2), 1.0);
}

TEST(MeasureTest, TouchingRectsHaveZeroOverlapArea) {
  const std::vector<Rect> rects = {Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)};
  EXPECT_DOUBLE_EQ(UnionArea(rects), 2.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeast(rects, 2), 0.0);
}

TEST(MeasureTest, DegenerateRectsIgnored) {
  const std::vector<Rect> rects = {Rect(0, 0, 0, 5), Rect(0, 0, 5, 0),
                                   Rect(1, 1, 2, 2)};
  EXPECT_DOUBLE_EQ(UnionArea(rects), 1.0);
  EXPECT_DOUBLE_EQ(TotalArea(rects), 1.0);
}

TEST(MeasureTest, BruteMatchesHandComputed) {
  const std::vector<Rect> rects = {Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)};
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeastBrute(rects, 1), 7.0);
  EXPECT_DOUBLE_EQ(AreaCoveredAtLeastBrute(rects, 2), 1.0);
}

/// Sweep vs brute-force cross-validation over random rect sets.
class MeasureCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(MeasureCrossValidation, SweepMatchesBrute) {
  Random rng(GetParam());
  const size_t n = 5 + rng.Uniform(60);
  std::vector<Rect> rects;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 90);
    const double y = rng.UniformDouble(0, 90);
    rects.push_back(Rect(x, y, x + rng.UniformDouble(0.1, 25),
                         y + rng.UniformDouble(0.1, 25)));
  }
  for (int k = 1; k <= 4; ++k) {
    const double sweep = AreaCoveredAtLeast(rects, k);
    const double brute = AreaCoveredAtLeastBrute(rects, k);
    EXPECT_NEAR(sweep, brute, 1e-6 * std::max(1.0, brute))
        << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasureCrossValidation,
                         ::testing::Range(1, 26));

TEST(MeasureTest, MonotoneInK) {
  Random rng(77);
  std::vector<Rect> rects;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.UniformDouble(0, 50);
    const double y = rng.UniformDouble(0, 50);
    rects.push_back(Rect(x, y, x + 20, y + 20));
  }
  double prev = UnionArea(rects);
  for (int k = 2; k <= 6; ++k) {
    const double cur = AreaCoveredAtLeast(rects, k);
    EXPECT_LE(cur, prev + 1e-9) << "k=" << k;
    prev = cur;
  }
}

TEST(MeasureTest, UnionBoundedByTotal) {
  Random rng(123);
  std::vector<Rect> rects;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.UniformDouble(0, 100);
    const double y = rng.UniformDouble(0, 100);
    rects.push_back(
        Rect(x, y, x + rng.UniformDouble(1, 30), y + rng.UniformDouble(1, 30)));
  }
  EXPECT_LE(UnionArea(rects), TotalArea(rects) + 1e-9);
}

TEST(MeasureTest, InclusionExclusionIdentityForTwoRects) {
  // area(a)+area(b) = union + covered>=2 for any two rects.
  Random rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const double x1 = rng.UniformDouble(0, 50), y1 = rng.UniformDouble(0, 50);
    const double x2 = rng.UniformDouble(0, 50), y2 = rng.UniformDouble(0, 50);
    const Rect a(x1, y1, x1 + rng.UniformDouble(1, 40),
                 y1 + rng.UniformDouble(1, 40));
    const Rect b(x2, y2, x2 + rng.UniformDouble(1, 40),
                 y2 + rng.UniformDouble(1, 40));
    const std::vector<Rect> rects = {a, b};
    EXPECT_NEAR(TotalArea(rects),
                UnionArea(rects) + AreaCoveredAtLeast(rects, 2), 1e-7);
  }
}

}  // namespace
}  // namespace pictdb::geom
