#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "quadtree/quadtree.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace pictdb::quadtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::Rid;

Rid MakeRid(size_t i) {
  return Rid{static_cast<storage::PageId>(i), 0};
}

TEST(QuadTreeTest, EmptyTree) {
  QuadTree tree(Rect(0, 0, 100, 100));
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.CellCount(), 1u);
  EXPECT_TRUE(tree.SearchIntersects(Rect(0, 0, 100, 100)).empty());
}

TEST(QuadTreeTest, InsertValidation) {
  QuadTree tree(Rect(0, 0, 100, 100));
  EXPECT_TRUE(tree.Insert(Rect(), MakeRid(0)).IsInvalidArgument());
  EXPECT_TRUE(
      tree.Insert(Rect(90, 90, 110, 110), MakeRid(0)).IsInvalidArgument());
  EXPECT_TRUE(tree.Insert(Rect(1, 1, 2, 2), MakeRid(0)).ok());
}

TEST(QuadTreeTest, SplitsAfterThreshold) {
  QuadTree tree(Rect(0, 0, 100, 100), /*max_depth=*/8,
                /*split_threshold=*/4);
  for (size_t i = 0; i < 20; ++i) {
    const double x = 2.0 + static_cast<double>(i * 4 % 90);
    const double y = 2.0 + static_cast<double>(i * 7 % 90);
    ASSERT_TRUE(tree.Insert(Rect(x, y, x + 1, y + 1), MakeRid(i)).ok());
  }
  EXPECT_GT(tree.CellCount(), 1u);
  EXPECT_GT(tree.DepthInUse(), 0);
}

TEST(QuadTreeTest, StraddlingObjectsStayHigh) {
  QuadTree tree(Rect(0, 0, 100, 100), 8, 1);
  // A rect crossing the center can never descend.
  ASSERT_TRUE(tree.Insert(Rect(40, 40, 60, 60), MakeRid(1)).ok());
  ASSERT_TRUE(tree.Insert(Rect(1, 1, 2, 2), MakeRid(2)).ok());
  ASSERT_TRUE(tree.Insert(Rect(3, 3, 4, 4), MakeRid(3)).ok());
  // All searches that touch the center find the straddler.
  auto hits = tree.SearchPoint(Point{50, 50});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].rid == MakeRid(1));
}

TEST(QuadTreeTest, DeleteRemovesExactEntry) {
  QuadTree tree(Rect(0, 0, 100, 100), 8, 2);
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        tree.Insert(Rect(i * 9.0, i * 9.0, i * 9.0 + 1, i * 9.0 + 1),
                    MakeRid(i))
            .ok());
  }
  EXPECT_TRUE(tree.Delete(Rect(0, 0, 1, 1), MakeRid(0)).ok());
  EXPECT_EQ(tree.Size(), 9u);
  EXPECT_TRUE(tree.Delete(Rect(0, 0, 1, 1), MakeRid(0)).IsNotFound());
  EXPECT_TRUE(tree.SearchPoint(Point{0.5, 0.5}).empty());
}

/// Differential sweep vs brute force across datasets and parameters.
class QuadTreeDifferential
    : public ::testing::TestWithParam<std::tuple<int, size_t /*thresh*/>> {};

TEST_P(QuadTreeDifferential, MatchesBruteForce) {
  const auto [seed, threshold] = GetParam();
  Random rng(static_cast<uint64_t>(seed));
  const Rect frame = workload::PaperFrame();
  QuadTree tree(frame, 12, threshold);

  std::vector<Rect> objects;
  // Points and rects mixed.
  for (const Point& p : workload::UniformPoints(&rng, 150, frame)) {
    objects.push_back(Rect::FromPoint(p));
  }
  for (int i = 0; i < 80; ++i) {
    const double x = rng.UniformDouble(0, 900);
    const double y = rng.UniformDouble(0, 900);
    objects.push_back(Rect(x, y, x + rng.UniformDouble(1, 90),
                           y + rng.UniformDouble(1, 90)));
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    ASSERT_TRUE(tree.Insert(objects[i], MakeRid(i)).ok());
  }

  const auto windows = workload::RandomWindowQueries(&rng, 30, 0.02, frame);
  for (const Rect& w : windows) {
    QuadStats stats;
    const auto hits = tree.SearchIntersects(w, &stats);
    std::set<storage::PageId> got;
    for (const auto& h : hits) got.insert(h.rid.page_id);
    std::set<storage::PageId> expected;
    for (size_t i = 0; i < objects.size(); ++i) {
      if (objects[i].Intersects(w)) {
        expected.insert(static_cast<storage::PageId>(i));
      }
    }
    EXPECT_EQ(got, expected);
    EXPECT_GT(stats.cells_visited, 0u);
  }

  // Delete half, verify again.
  for (size_t i = 0; i < objects.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(objects[i], MakeRid(i)).ok());
  }
  for (const Rect& w : windows) {
    const auto hits = tree.SearchIntersects(w);
    std::set<storage::PageId> got;
    for (const auto& h : hits) got.insert(h.rid.page_id);
    std::set<storage::PageId> expected;
    for (size_t i = 1; i < objects.size(); i += 2) {
      if (objects[i].Intersects(w)) {
        expected.insert(static_cast<storage::PageId>(i));
      }
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuadTreeDifferential,
    ::testing::Combine(::testing::Range(1, 5),
                       ::testing::Values(size_t{2}, size_t{8},
                                         size_t{32})));

TEST(QuadTreeTest, DepthCapHoldsForCoincidentPoints) {
  QuadTree tree(Rect(0, 0, 100, 100), /*max_depth=*/5,
                /*split_threshold=*/2);
  // 50 identical points can never separate; the depth cap must stop the
  // recursion rather than splitting forever.
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(Rect(10, 10, 10.1, 10.1), MakeRid(i)).ok());
  }
  EXPECT_LE(tree.DepthInUse(), 5);
  EXPECT_EQ(tree.SearchPoint(Point{10.05, 10.05}).size(), 50u);
}

}  // namespace
}  // namespace pictdb::quadtree
