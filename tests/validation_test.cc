// Failure-injection tests: Validate() must detect hand-built structural
// corruption in R-trees, and the CHECK machinery must abort on invariant
// violations (death tests).

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace pictdb::rtree {
namespace {

using geom::Rect;
using storage::PageId;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 1024) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

Entry LeafEntry(const Rect& r, uint32_t id) {
  Entry e;
  e.mbr = r;
  e.payload = Entry::PayloadFromRid(Rid{id, 0});
  return e;
}

Entry ChildEntry(const Rect& r, PageId child) {
  Entry e;
  e.mbr = r;
  e.payload = Entry::PayloadFromChild(child);
  return e;
}

TEST(ValidationTest, DetectsNonMinimalParentMbr) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());

  auto leaf = tree->BulkWriteNode(
      0, {LeafEntry(Rect(0, 0, 1, 1), 1), LeafEntry(Rect(2, 2, 3, 3), 2)});
  ASSERT_TRUE(leaf.ok());
  // Parent claims a *larger* MBR than the leaf's minimal bound.
  auto root = tree->BulkWriteNode(
      1, {ChildEntry(Rect(0, 0, 10, 10), *leaf)});
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(tree->BulkSetRoot(*root, 2, 2).ok());

  const Status st = tree->Validate();
  ASSERT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("minimal"), std::string::npos);
}

TEST(ValidationTest, DetectsWrongLevel) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());

  // Child written at level 1 but hung one level above a level-1 parent's
  // expectation (parent at level 1 expects level-0 children).
  auto child = tree->BulkWriteNode(1, {LeafEntry(Rect(0, 0, 1, 1), 1)});
  ASSERT_TRUE(child.ok());
  auto root = tree->BulkWriteNode(1, {ChildEntry(Rect(0, 0, 1, 1), *child)});
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(tree->BulkSetRoot(*root, 2, 1).ok());

  EXPECT_TRUE(tree->Validate().IsCorruption());
}

TEST(ValidationTest, DetectsSizeMismatch) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  auto leaf = tree->BulkWriteNode(0, {LeafEntry(Rect(0, 0, 1, 1), 1)});
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(tree->BulkSetRoot(*leaf, 1, /*size=*/99).ok());
  const Status st = tree->Validate();
  ASSERT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("size"), std::string::npos);
}

TEST(ValidationTest, BulkWriteRejectsOverfullAndEmptyNodes) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  std::vector<Entry> five;
  for (uint32_t i = 0; i < 5; ++i) {
    five.push_back(LeafEntry(Rect(i, i, i + 1, i + 1), i));
  }
  EXPECT_TRUE(tree->BulkWriteNode(0, five).status().IsInvalidArgument());
  EXPECT_TRUE(tree->BulkWriteNode(0, {}).status().IsInvalidArgument());
}

TEST(ValidationTest, CleanTreeValidates) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  auto leaf1 = tree->BulkWriteNode(
      0, {LeafEntry(Rect(0, 0, 1, 1), 1), LeafEntry(Rect(2, 2, 3, 3), 2)});
  auto leaf2 = tree->BulkWriteNode(
      0, {LeafEntry(Rect(5, 5, 6, 6), 3), LeafEntry(Rect(7, 7, 8, 8), 4)});
  ASSERT_TRUE(leaf1.ok() && leaf2.ok());
  auto root = tree->BulkWriteNode(
      1, {ChildEntry(Rect(0, 0, 3, 3), *leaf1),
          ChildEntry(Rect(5, 5, 8, 8), *leaf2)});
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(tree->BulkSetRoot(*root, 2, 4).ok());
  EXPECT_TRUE(tree->Validate().ok());
}

// --- CHECK machinery ---------------------------------------------------------

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ PICTDB_CHECK(1 == 2) << "impossible arithmetic"; },
               "CHECK failed: 1 == 2.*impossible arithmetic");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(PICTDB_CHECK_OK(Status::IOError("disk gone")),
               "IOError: disk gone");
}

TEST(CheckDeathTest, PassingChecksAreSilent) {
  PICTDB_CHECK(true) << "never evaluated";
  PICTDB_CHECK_OK(Status::OK());
  PICTDB_DCHECK(true);
  SUCCEED();
}

TEST(CheckDeathTest, CorruptNodePageAborts) {
  // A node page with an impossible entry count must trip the decode
  // CHECK rather than read out of bounds.
  std::vector<char> page(512, 0);
  const uint16_t bogus_count = 9999;
  std::memcpy(page.data() + 2, &bogus_count, 2);
  EXPECT_DEATH(ReadNode(page.data(), 512), "corrupt R-tree node");
}

}  // namespace
}  // namespace pictdb::rtree
