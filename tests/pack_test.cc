#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <limits>
#include <set>

#include "check/invariants.h"
#include "common/random.h"
#include "pack/hilbert.h"
#include "pack/nn_grid.h"
#include "pack/pack.h"
#include "pack/str.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace pictdb::pack {
namespace {

using geom::Point;
using geom::Rect;
using rtree::Entry;
using rtree::RTree;
using rtree::RTreeOptions;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 8192) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

/// Teardown-style deep check: full invariant walk plus CRC scan and
/// pin-leak detection, stricter than tree.Validate().
void ExpectValidTree(const RTree& tree) {
  const check::ValidationReport report =
      check::TreeValidator().Check(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

std::vector<Entry> PointItems(const std::vector<Point>& pts) {
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
  }
  return MakeLeafEntries(pts, rids);
}

// --- NearestNeighborGrid -------------------------------------------------------

TEST(NnGridTest, FindsExactNearest) {
  Random rng(3);
  const auto pts =
      workload::UniformPoints(&rng, 300, workload::PaperFrame());
  NearestNeighborGrid grid(pts);
  for (int trial = 0; trial < 100; ++trial) {
    const Point q{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)};
    const auto got = grid.Nearest(q);
    ASSERT_TRUE(got.has_value());
    // Brute-force reference.
    size_t best = 0;
    for (size_t i = 1; i < pts.size(); ++i) {
      if (geom::DistanceSquared(pts[i], q) <
          geom::DistanceSquared(pts[best], q)) {
        best = i;
      }
    }
    EXPECT_EQ(geom::DistanceSquared(pts[*got], q),
              geom::DistanceSquared(pts[best], q));
  }
}

TEST(NnGridTest, RespectsRemovals) {
  const std::vector<Point> pts = {{0, 0}, {1, 0}, {5, 0}, {9, 0}};
  NearestNeighborGrid grid(pts);
  EXPECT_EQ(*grid.Nearest(Point{0.4, 0}), 0u);
  grid.Remove(0);
  EXPECT_EQ(*grid.Nearest(Point{0.4, 0}), 1u);
  grid.Remove(1);
  EXPECT_EQ(*grid.Nearest(Point{0.4, 0}), 2u);
  grid.Remove(2);
  grid.Remove(3);
  EXPECT_FALSE(grid.Nearest(Point{0.4, 0}).has_value());
  EXPECT_EQ(grid.remaining(), 0u);
}

TEST(NnGridTest, DrainMatchesBruteForceSequence) {
  Random rng(5);
  const auto pts =
      workload::UniformPoints(&rng, 120, workload::PaperFrame());
  NearestNeighborGrid grid(pts);
  std::vector<bool> alive(pts.size(), true);
  const Point q{500, 500};
  while (grid.remaining() > 0) {
    const auto got = grid.Nearest(q);
    ASSERT_TRUE(got.has_value());
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < pts.size(); ++i) {
      if (alive[i]) best_d2 = std::min(best_d2,
                                       geom::DistanceSquared(pts[i], q));
    }
    EXPECT_EQ(geom::DistanceSquared(pts[*got], q), best_d2);
    alive[*got] = false;
    grid.Remove(*got);
  }
}

TEST(NnGridTest, IdenticalPointsHandled) {
  const std::vector<Point> pts(10, Point{3, 3});
  NearestNeighborGrid grid(pts);
  std::set<size_t> seen;
  for (int i = 0; i < 10; ++i) {
    const auto got = grid.Nearest(Point{3, 3});
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(seen.insert(*got).second);
    grid.Remove(*got);
  }
}

// --- Grouping functions ----------------------------------------------------------

TEST(GroupingTest, NearestNeighborGroupsAreFullExceptLast) {
  Random rng(7);
  const auto pts = workload::UniformPoints(&rng, 103,
                                           workload::PaperFrame());
  const auto groups = GroupNearestNeighbor(PointItems(pts), 4,
                                           SortCriterion::kAscendingX);
  ASSERT_EQ(groups.size(), 26u);  // ceil(103/4)
  size_t total = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    total += groups[i].size();
    EXPECT_LE(groups[i].size(), 4u);
    EXPECT_GE(groups[i].size(), 1u);
  }
  EXPECT_EQ(total, 103u);
}

TEST(GroupingTest, AllGroupersPartitionTheInput) {
  Random rng(11);
  const auto pts = workload::UniformPoints(&rng, 97,
                                           workload::PaperFrame());
  const auto items = PointItems(pts);
  const std::vector<std::vector<std::vector<Entry>>> all = {
      GroupNearestNeighbor(items, 8, SortCriterion::kAscendingX),
      GroupSortChunk(items, 8, SortCriterion::kAscendingX),
      GroupSortChunk(items, 8, SortCriterion::kHilbert),
      GroupStr(items, 8),
  };
  for (const auto& groups : all) {
    std::set<uint64_t> payloads;
    for (const auto& g : groups) {
      for (const Entry& e : g) payloads.insert(e.payload);
    }
    EXPECT_EQ(payloads.size(), 97u);
  }
}

TEST(GroupingTest, SortChunkRespectsXOrder) {
  const std::vector<Point> pts = {{9, 0}, {1, 0}, {5, 0}, {3, 0},
                                  {7, 0}, {2, 0}, {8, 0}, {4, 0}};
  const auto groups =
      GroupSortChunk(PointItems(pts), 4, SortCriterion::kAscendingX);
  ASSERT_EQ(groups.size(), 2u);
  // First group holds the 4 lowest x values.
  double max_first = 0;
  double min_second = 100;
  for (const Entry& e : groups[0]) max_first = std::max(max_first,
                                                        e.mbr.lo.x);
  for (const Entry& e : groups[1]) min_second = std::min(min_second,
                                                         e.mbr.lo.x);
  EXPECT_LT(max_first, min_second);
}

// --- Builders produce valid, complete, searchable trees --------------------------

using Builder = Status (*)(RTree*, std::vector<Entry>);

Status BuildNN(RTree* t, std::vector<Entry> items) {
  return PackNearestNeighbor(t, std::move(items));
}
Status BuildLowX(RTree* t, std::vector<Entry> items) {
  return PackSortChunk(t, std::move(items));
}
Status BuildStr(RTree* t, std::vector<Entry> items) {
  return PackStr(t, std::move(items));
}
Status BuildHilbert(RTree* t, std::vector<Entry> items) {
  return PackHilbert(t, std::move(items));
}

class PackBuilders : public ::testing::TestWithParam<int> {
 protected:
  Builder builder() const {
    switch (GetParam()) {
      case 0:
        return BuildNN;
      case 1:
        return BuildLowX;
      case 2:
        return BuildStr;
      default:
        return BuildHilbert;
    }
  }
};

TEST_P(PackBuilders, BuildsValidTreeWithAllEntries) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(97);
  const auto pts = workload::UniformPoints(&rng, 217,
                                           workload::PaperFrame());
  ASSERT_TRUE(builder()(&*tree, PointItems(pts)).ok());
  EXPECT_EQ(tree->Size(), 217u);
  ASSERT_TRUE(tree->Validate().ok());
  ExpectValidTree(*tree);
  auto all = tree->CollectAllEntries();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 217u);
  // Every point individually findable.
  for (size_t i = 0; i < pts.size(); ++i) {
    auto hits = tree->SearchPoint(pts[i]);
    ASSERT_TRUE(hits.ok());
    bool found = false;
    for (const auto& h : *hits) {
      if (h.rid.page_id == i) found = true;
    }
    EXPECT_TRUE(found) << "point " << i;
  }
}

TEST_P(PackBuilders, HandlesTinyInputs) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5}}) {
    Env env;
    RTreeOptions opts;
    opts.max_entries = 4;
    auto tree = RTree::Create(&env.pool, opts);
    ASSERT_TRUE(tree.ok());
    Random rng(1234 + n);
    const auto pts =
        workload::UniformPoints(&rng, n, workload::PaperFrame());
    ASSERT_TRUE(builder()(&*tree, PointItems(pts)).ok()) << "n=" << n;
    EXPECT_EQ(tree->Size(), n);
    ASSERT_TRUE(tree->Validate().ok()) << "n=" << n;
    ExpectValidTree(*tree);
  }
}

TEST_P(PackBuilders, RejectsNonEmptyTarget) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 1, 1), Rid{0, 0}).ok());
  Random rng(7);
  const auto pts = workload::UniformPoints(&rng, 10,
                                           workload::PaperFrame());
  EXPECT_FALSE(builder()(&*tree, PointItems(pts)).ok());
}

TEST_P(PackBuilders, PackedTreeSupportsLaterUpdates) {
  // §3.4: INSERT and DELETE still work on a PACKed tree.
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(55);
  const auto pts = workload::UniformPoints(&rng, 100,
                                           workload::PaperFrame());
  ASSERT_TRUE(builder()(&*tree, PointItems(pts)).ok());

  // Insert 30 new points.
  const auto extra = workload::UniformPoints(&rng, 30,
                                             workload::PaperFrame());
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(extra[i]),
                             Rid{static_cast<storage::PageId>(1000 + i), 0})
                    .ok());
  }
  // Delete 30 old points.
  for (size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(tree->Delete(Rect::FromPoint(pts[i]),
                             Rid{static_cast<storage::PageId>(i), 0})
                    .ok());
  }
  EXPECT_EQ(tree->Size(), 100u);
  ASSERT_TRUE(tree->Validate().ok());
  ExpectValidTree(*tree);
}

std::string BuilderName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"PackNN", "LowX", "STR", "Hilbert"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllBuilders, PackBuilders,
                         ::testing::Values(0, 1, 2, 3), BuilderName);

// --- The paper's headline claim ---------------------------------------------------

TEST(PackQualityTest, PackBeatsInsertOnUniformPoints) {
  // The reproducible part of Table 1's shape (see EXPERIMENTS.md for why
  // the paper's absolute C/O columns are not geometrically attainable):
  // the packed tree has strictly fewer nodes, no greater depth, and
  // answers window queries and data-point membership queries with fewer
  // node visits than the dynamically grown tree.
  Env env;
  Random rng(500);
  const auto pts = workload::UniformPoints(&rng, 900,
                                           workload::PaperFrame());

  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;

  auto packed = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(PackNearestNeighbor(&*packed, PointItems(pts)).ok());

  auto dynamic = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(dynamic.ok());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(dynamic
                    ->Insert(Rect::FromPoint(pts[i]),
                             Rid{static_cast<storage::PageId>(i), 0})
                    .ok());
  }

  auto pq = rtree::MeasureTree(*packed);
  auto dq = rtree::MeasureTree(*dynamic);
  ASSERT_TRUE(pq.ok() && dq.ok());
  ExpectValidTree(*packed);
  ExpectValidTree(*dynamic);
  EXPECT_LT(pq->nodes, dq->nodes);
  EXPECT_LE(pq->depth, dq->depth);

  // Fewer nodes visited on 1%-selectivity window queries.
  const auto windows = workload::RandomWindowQueries(
      &rng, 300, 0.01, workload::PaperFrame());
  uint64_t packed_visits = 0, dynamic_visits = 0;
  for (const Rect& w : windows) {
    rtree::SearchStats ps, ds;
    ASSERT_TRUE(packed->SearchIntersects(w, &ps).ok());
    ASSERT_TRUE(dynamic->SearchIntersects(w, &ds).ok());
    packed_visits += ps.nodes_visited;
    dynamic_visits += ds.nodes_visited;
  }
  EXPECT_LT(packed_visits, dynamic_visits);

  // Fewer nodes visited on membership queries for the data points.
  std::vector<geom::Point> members(pts.begin(), pts.end());
  auto pa = rtree::AverageNodesVisited(*packed, members);
  auto da = rtree::AverageNodesVisited(*dynamic, members);
  ASSERT_TRUE(pa.ok() && da.ok());
  EXPECT_LT(*pa, *da);
}

TEST(PackQualityTest, PackedNodesAreFull) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(600);
  const auto pts = workload::UniformPoints(&rng, 256,
                                           workload::PaperFrame());
  ASSERT_TRUE(PackNearestNeighbor(&*tree, PointItems(pts)).ok());
  // 256 = 4^4: every node is exactly full and the tree is a perfect
  // 4-ary tree of height 4 with 64+16+4+1 = 85 nodes.
  EXPECT_EQ(tree->Height(), 4u);
  auto nodes = tree->CountNodes();
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(*nodes, 85u);
}

// --- Hilbert curve ------------------------------------------------------------------

TEST(HilbertTest, BijectiveOnSmallOrder) {
  const uint32_t order = 4;  // 16x16
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const uint64_t d = HilbertXyToD(order, x, y);
      EXPECT_LT(d, 256u);
      EXPECT_TRUE(seen.insert(d).second);
      uint32_t rx, ry;
      HilbertDToXy(order, d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

TEST(HilbertTest, ConsecutiveValuesAreAdjacentCells) {
  const uint32_t order = 5;  // 32x32
  for (uint64_t d = 0; d + 1 < 1024; ++d) {
    uint32_t x1, y1, x2, y2;
    HilbertDToXy(order, d, &x1, &y1);
    HilbertDToXy(order, d + 1, &x2, &y2);
    const uint32_t manhattan =
        (x1 > x2 ? x1 - x2 : x2 - x1) + (y1 > y2 ? y1 - y2 : y2 - y1);
    EXPECT_EQ(manhattan, 1u) << "d=" << d;
  }
}

// --- adversarial inputs (mirrors the SIMD kernel suite) -----------------------

using BuilderFn = Status (*)(RTree*, std::vector<Entry>);

const BuilderFn kAllBuilders[] = {
    [](RTree* t, std::vector<Entry> items) {
      return PackNearestNeighbor(t, std::move(items));
    },
    [](RTree* t, std::vector<Entry> items) {
      return PackSortChunk(t, std::move(items));
    },
    [](RTree* t, std::vector<Entry> items) {
      return PackStr(t, std::move(items));
    },
    [](RTree* t, std::vector<Entry> items) {
      return PackHilbert(t, std::move(items));
    },
};

std::vector<Entry> ValidItems(size_t n) {
  Random rng(99);
  return PointItems(workload::UniformPoints(&rng, n, workload::PaperFrame()));
}

TEST(PackValidationTest, EveryBuilderRejectsNonFiniteAndEmptyMbrs) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Built by direct field assignment: the Rect(x1,y1,x2,y2) constructor
  // min/max-normalizes its arguments, which silently swallows NaNs and
  // un-inverts corners — exactly the raw states that arrive from a
  // corrupted heap scan or a buggy caller.
  const auto raw = [](double lox, double loy, double hix, double hiy) {
    Rect r;
    r.lo.x = lox;
    r.lo.y = loy;
    r.hi.x = hix;
    r.hi.y = hiy;
    return r;
  };
  const struct {
    const char* name;
    Rect mbr;
  } kBad[] = {
      {"nan_lo_x", raw(kNaN, 0, 1, 1)},
      {"nan_hi_y", raw(0, 0, 1, kNaN)},
      {"inf_hi_x", raw(0, 0, kInf, 1)},
      {"neg_inf_lo_y", raw(0, -kInf, 1, 1)},
      {"inverted", raw(5, 5, 1, 1)},
      {"default_empty", Rect()},
  };
  for (size_t b = 0; b < std::size(kAllBuilders); ++b) {
    for (const auto& bad : kBad) {
      Env env;
      auto tree = RTree::Create(&env.pool);
      ASSERT_TRUE(tree.ok());
      std::vector<Entry> items = ValidItems(20);
      items[7].mbr = bad.mbr;
      const Status status = kAllBuilders[b](&*tree, std::move(items));
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
          << "builder " << b << " input " << bad.name << ": "
          << status.ToString();
      // Rejected before any mutation: the tree is still empty and packs
      // cleanly afterwards.
      EXPECT_EQ(tree->Size(), 0u);
      ASSERT_TRUE(kAllBuilders[b](&*tree, ValidItems(20)).ok());
      ExpectValidTree(*tree);
    }
  }
}

TEST(PackValidationTest, AllEmptyRectsRejectedNotUndefined) {
  // Before validation existed, an all-empty input left the Hilbert frame
  // inverted: HilbertValue computed inf - inf = NaN and fed an undefined
  // NaN→uint32 cast inside std::clamp.
  for (size_t b = 0; b < std::size(kAllBuilders); ++b) {
    Env env;
    auto tree = RTree::Create(&env.pool);
    ASSERT_TRUE(tree.ok());
    std::vector<Entry> items(10);  // default Entry: empty (inverted) Rect
    const Status status = kAllBuilders[b](&*tree, std::move(items));
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << "builder " << b;
  }
}

TEST(PackValidationTest, DenormalCoordinatesPackFine) {
  constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
  for (size_t b = 0; b < std::size(kAllBuilders); ++b) {
    Env env;
    auto tree = RTree::Create(&env.pool);
    ASSERT_TRUE(tree.ok());
    std::vector<Entry> items = ValidItems(30);
    items[3].mbr = Rect(-kDenorm, -kDenorm, kDenorm, kDenorm);
    items[4].mbr = Rect(kDenorm, kDenorm, 2 * kDenorm, 2 * kDenorm);
    ASSERT_TRUE(kAllBuilders[b](&*tree, std::move(items)).ok())
        << "builder " << b;
    EXPECT_EQ(tree->Size(), 30u);
    ExpectValidTree(*tree);
  }
}

TEST(PackValidationTest, MonotoneBitsIsOrderPreserving) {
  const double values[] = {-std::numeric_limits<double>::infinity(),
                           -1e308,
                           -1.0,
                           -std::numeric_limits<double>::denorm_min(),
                           -0.0,
                           0.0,
                           std::numeric_limits<double>::denorm_min(),
                           1.0,
                           1e308,
                           std::numeric_limits<double>::infinity()};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    if (values[i] < values[i + 1]) {
      EXPECT_LT(MonotoneBits(values[i]), MonotoneBits(values[i + 1]))
          << values[i] << " vs " << values[i + 1];
    } else {
      // -0.0 / +0.0: equal as doubles, bit transform keeps -0 below +0.
      EXPECT_LE(MonotoneBits(values[i]), MonotoneBits(values[i + 1]));
    }
  }
}

// Keys must be materialized once per entry, not recomputed inside the
// sort comparator (the old PackHilbert paid O(n log n) curve walks).
TEST(PackKeyMaterializationTest, HilbertValueComputedAtMostTwicePerEntry) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  const size_t n = 2000;
  std::vector<Entry> items = ValidItems(n);
  const uint64_t before = HilbertValueComputeCountForTesting();
  ASSERT_TRUE(PackHilbert(&*tree, std::move(items)).ok());
  const uint64_t computes = HilbertValueComputeCountForTesting() - before;
  // One key per leaf entry plus one per upper-level entry (a geometric
  // tail of n/B); 2n is a generous ceiling, n log n is far above it.
  EXPECT_LE(computes, 2 * n) << "keys recomputed during the sort";
  EXPECT_GE(computes, n);
}

// --- the Pack() dispatcher ----------------------------------------------------

TEST(PackDispatcherTest, StrategySelectsPacker) {
  const auto strategies = {
      PackStrategy::kNearestNeighbor,
      PackStrategy::kSortChunk,
      PackStrategy::kStr,
      PackStrategy::kHilbert,
  };
  for (const PackStrategy s : strategies) {
    Env env;
    auto tree = RTree::Create(&env.pool);
    ASSERT_TRUE(tree.ok());
    PackOptions options;
    options.strategy = s;
    ASSERT_TRUE(Pack(&*tree, ValidItems(150), options).ok());
    EXPECT_EQ(tree->Size(), 150u);
    ExpectValidTree(*tree);
  }
}

TEST(PackDispatcherTest, HilbertStrategyMatchesPackHilbert) {
  Env a_env, b_env;
  auto a = RTree::Create(&a_env.pool);
  auto b = RTree::Create(&b_env.pool);
  ASSERT_TRUE(a.ok() && b.ok());
  PackOptions options;
  options.strategy = PackStrategy::kHilbert;
  ASSERT_TRUE(Pack(&*a, ValidItems(300), options).ok());
  ASSERT_TRUE(PackHilbert(&*b, ValidItems(300)).ok());
  EXPECT_EQ(a->Size(), b->Size());
  EXPECT_EQ(a->Height(), b->Height());
  auto na = a->CountNodes();
  auto nb = b->CountNodes();
  ASSERT_TRUE(na.ok() && nb.ok());
  EXPECT_EQ(*na, *nb);
}

TEST(HilbertTest, ValueMapsFrameCorners) {
  const Rect frame(0, 0, 100, 100);
  // The curve starts at the lower-left corner for this orientation.
  EXPECT_EQ(HilbertValue(Point{0, 0}, frame), 0u);
  // All corner values are within range and distinct.
  std::set<uint64_t> corners = {
      HilbertValue(Point{0, 0}, frame), HilbertValue(Point{100, 0}, frame),
      HilbertValue(Point{0, 100}, frame),
      HilbertValue(Point{100, 100}, frame)};
  EXPECT_EQ(corners.size(), 4u);
}

}  // namespace
}  // namespace pictdb::pack
