#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "pack/pack.h"
#include "rtree/cursor.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 8192) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

RTree MakeTree(Env* env, const std::vector<Point>& pts) {
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env->pool, opts);
  PICTDB_CHECK(tree.ok());
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
  }
  PICTDB_CHECK_OK(pack::PackNearestNeighbor(
      &*tree, pack::MakeLeafEntries(pts, rids)));
  return std::move(tree).value();
}

TEST(SearchCursorTest, EmptyTreeYieldsNothing) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  SearchCursor cursor = SearchCursor::Intersects(&*tree, Rect(0, 0, 10, 10));
  auto next = cursor.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  // Repeated Next at end stays at end.
  next = cursor.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

TEST(SearchCursorTest, StreamsSameResultsAsBatchSearch) {
  Env env;
  Random rng(13);
  const auto pts = workload::UniformPoints(&rng, 300,
                                           workload::PaperFrame());
  RTree tree = MakeTree(&env, pts);
  const Rect window(200, 200, 700, 700);

  auto batch = tree.SearchIntersects(window);
  ASSERT_TRUE(batch.ok());
  std::set<storage::PageId> expected;
  for (const auto& h : *batch) expected.insert(h.rid.page_id);

  SearchCursor cursor = SearchCursor::Intersects(&tree, window);
  std::set<storage::PageId> streamed;
  for (;;) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    EXPECT_TRUE(streamed.insert((**next).rid.page_id).second)
        << "duplicate hit";
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_EQ(cursor.stats().results, expected.size());
}

TEST(SearchCursorTest, EarlyTerminationVisitsFewerNodes) {
  Env env;
  Random rng(17);
  const auto pts = workload::UniformPoints(&rng, 1000,
                                           workload::PaperFrame());
  RTree tree = MakeTree(&env, pts);

  // LIMIT 5 over a query matching everything.
  SearchCursor cursor =
      SearchCursor::Intersects(&tree, workload::PaperFrame());
  for (int i = 0; i < 5; ++i) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
  }
  auto total = tree.CountNodes();
  ASSERT_TRUE(total.ok());
  EXPECT_LT(cursor.stats().nodes_visited, *total / 10)
      << "early-terminated cursor should not touch most of the tree";
}

TEST(SearchCursorTest, ContainedInSemantics) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 10, 10), Rid{1, 0}).ok());
  ASSERT_TRUE(tree->Insert(Rect(5, 5, 25, 25), Rid{2, 0}).ok());

  SearchCursor cursor =
      SearchCursor::ContainedIn(&*tree, Rect(-1, -1, 12, 12));
  auto first = cursor.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((**first).rid.page_id, 1u);
  auto end = cursor.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(SearchCursorTest, CustomPredicates) {
  Env env;
  Random rng(19);
  const auto pts = workload::UniformPoints(&rng, 100,
                                           workload::PaperFrame());
  RTree tree = MakeTree(&env, pts);
  // Accept everything left of x=300 (prune uses MBR lo).
  SearchCursor cursor(
      &tree, [](const Rect& r) { return r.lo.x < 300; },
      [](const Rect& r) { return r.hi.x < 300; });
  size_t streamed = 0;
  for (;;) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ++streamed;
  }
  size_t expected = 0;
  for (const Point& p : pts) {
    if (p.x < 300) ++expected;
  }
  EXPECT_EQ(streamed, expected);
}

}  // namespace
}  // namespace pictdb::rtree
