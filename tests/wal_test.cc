// Physical write-ahead-log tests: record codec round trips, chain
// append/scan, torn-tail truncation, rotation, and anchor-slot
// corruption. Crash-point coverage at the DurableRTree level lives in
// wal_crash_test.cc; these tests poke the log layer directly.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "rtree/node.h"
#include "storage/disk_manager.h"
#include "storage/write_cache.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace pictdb::wal {
namespace {

using geom::Rect;
using storage::InMemoryDiskManager;
using storage::PageId;
using storage::Rid;

Record MakeInsert(uint64_t lsn) {
  Record r;
  r.type = RecordType::kInsert;
  r.lsn = lsn;
  const double x = static_cast<double>(lsn);
  r.a = Rect(x, x, x + 1, x + 1);
  r.rid_a = rtree::Entry::PayloadFromRid(
      Rid{static_cast<PageId>(lsn), static_cast<uint16_t>(lsn % 7)});
  return r;
}

// White-box anchor parsing (layout from wal.cc): two 24-byte slots at
// offsets 0 and 64, [magic][crc][generation u64][head u32][pad].
constexpr uint32_t kAnchorMagic = 0x57414C41u;

PageId AnchorHead(InMemoryDiskManager* disk, PageId anchor) {
  std::vector<char> page(disk->page_size());
  EXPECT_TRUE(disk->ReadPage(anchor, page.data()).ok());
  PageId head = storage::kInvalidPageId;
  uint64_t best_gen = 0;
  bool found = false;
  for (size_t off : {size_t{0}, size_t{64}}) {
    uint32_t magic;
    std::memcpy(&magic, page.data() + off, 4);
    if (magic != kAnchorMagic) continue;
    uint64_t gen;
    uint32_t slot_head;
    std::memcpy(&gen, page.data() + off + 8, 8);
    std::memcpy(&slot_head, page.data() + off + 16, 4);
    if (!found || gen > best_gen) {
      best_gen = gen;
      head = slot_head;
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no valid anchor slot";
  return head;
}

PageId NthChainPage(InMemoryDiskManager* disk, PageId head, size_t n) {
  std::vector<char> page(disk->page_size());
  PageId id = head;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(disk->ReadPage(id, page.data()).ok());
    std::memcpy(&id, page.data() + 4, 4);
  }
  return id;
}

// --- Record codec -----------------------------------------------------------

TEST(WalRecordTest, OpRecordsRoundTrip) {
  for (const RecordType type :
       {RecordType::kInsert, RecordType::kDelete, RecordType::kUpdate}) {
    Record r = MakeInsert(42);
    r.type = type;
    if (type == RecordType::kUpdate) {
      r.b = Rect(9, 9, 10, 10);
      r.rid_b = rtree::Entry::PayloadFromRid(Rid{99, 3});
    }
    const std::string payload = EncodeRecordPayload(r);
    auto decoded = DecodeRecordPayload(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->lsn, 42u);
    EXPECT_EQ(decoded->a, r.a);
    EXPECT_EQ(decoded->rid_a, r.rid_a);
    if (type == RecordType::kUpdate) {
      EXPECT_EQ(decoded->b, r.b);
      EXPECT_EQ(decoded->rid_b, r.rid_b);
    }
  }
}

TEST(WalRecordTest, SnapshotGroupRoundTrip) {
  std::vector<rtree::Entry> entries;
  for (size_t i = 0; i < 150; ++i) {  // spans 3 chunks of 64
    rtree::Entry e;
    const double x = static_cast<double>(i);
    e.mbr = Rect(x, x, x + 1, x + 1);
    e.payload = rtree::Entry::PayloadFromRid(Rid{static_cast<PageId>(i), 0});
    entries.push_back(e);
  }
  rtree::RTreeOptions opts;
  opts.max_entries = 25;
  opts.min_entries = 10;
  const std::vector<Record> group = BuildSnapshotRecords(entries, opts, 7);
  ASSERT_GE(group.size(), 5u);  // begin + 3 chunks + end
  EXPECT_EQ(group.front().type, RecordType::kSnapshotBegin);
  EXPECT_EQ(group.front().count, entries.size());
  EXPECT_EQ(group.front().tree_max_entries, 25u);
  EXPECT_EQ(group.back().type, RecordType::kSnapshotEnd);

  size_t total = 0;
  for (const Record& rec : group) {
    const std::string payload = EncodeRecordPayload(rec);
    auto decoded = DecodeRecordPayload(payload);
    ASSERT_TRUE(decoded.ok());
    if (decoded->type == RecordType::kSnapshotChunk) {
      for (const rtree::Entry& e : decoded->entries) {
        EXPECT_EQ(e.mbr, entries[total].mbr);
        EXPECT_EQ(e.payload, entries[total].payload);
        ++total;
      }
    }
  }
  EXPECT_EQ(total, entries.size());
}

TEST(WalRecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeRecordPayload("").ok());
  EXPECT_FALSE(DecodeRecordPayload("\x00tooshort").ok());
  // Unknown type byte.
  std::string bogus = EncodeRecordPayload(MakeInsert(1));
  bogus[0] = 99;
  EXPECT_FALSE(DecodeRecordPayload(bogus).ok());
  // Truncated insert.
  std::string trunc = EncodeRecordPayload(MakeInsert(1));
  trunc.resize(trunc.size() - 1);
  EXPECT_FALSE(DecodeRecordPayload(trunc).ok());
}

TEST(WalRecordTest, PaddingCarriesOnlyLength) {
  Record pad;
  pad.type = RecordType::kPadding;
  pad.lsn = 0;
  pad.count = 37;
  const std::string payload = EncodeRecordPayload(pad);
  EXPECT_EQ(payload.size(), 9u + 37u);
  auto decoded = DecodeRecordPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, RecordType::kPadding);
  EXPECT_EQ(decoded->count, 37u);
}

// --- Chain append / scan ----------------------------------------------------

TEST(WalTest, AppendSyncReopenRoundTrip) {
  InMemoryDiskManager disk(512);
  auto created = Wal::Create(&disk);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  Wal wal = std::move(created).value();
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(wal.Append(MakeInsert(i)).ok());
  }
  ASSERT_TRUE(wal.Sync().ok());

  ScanResult scan;
  auto reopened = Wal::Open(&disk, wal.anchor_page(), &scan);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(scan.tail_torn);
  EXPECT_EQ(scan.discarded_bytes, 0u);
  ASSERT_EQ(scan.records.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.records[i].lsn, i + 1);
    EXPECT_EQ(scan.records[i].rid_a, MakeInsert(i + 1).rid_a);
  }
}

TEST(WalTest, RecordsSpanSmallPages) {
  // 64-byte pages leave 56 payload bytes per chain page; a 57-byte
  // insert frame never fits in one page, so every record spans.
  InMemoryDiskManager disk(64);
  auto created = Wal::Create(&disk);
  ASSERT_TRUE(created.ok());
  Wal wal = std::move(created).value();
  for (uint64_t i = 1; i <= 40; ++i) {
    ASSERT_TRUE(wal.Append(MakeInsert(i)).ok());
  }
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_GT(wal.chain_pages(), 40u);

  ScanResult scan;
  auto reopened = Wal::Open(&disk, wal.anchor_page(), &scan);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(scan.records.size(), 40u);
  for (uint64_t i = 0; i < 40; ++i) EXPECT_EQ(scan.records[i].lsn, i + 1);
}

TEST(WalTest, ReopenThenAppendExtendsCommittedPrefix) {
  InMemoryDiskManager disk(512);
  auto created = Wal::Create(&disk);
  ASSERT_TRUE(created.ok());
  Wal wal = std::move(created).value();
  ASSERT_TRUE(wal.Append(MakeInsert(1)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  const PageId anchor = wal.anchor_page();

  ScanResult scan;
  auto second = Wal::Open(&disk, anchor, &scan);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(scan.records.size(), 1u);
  ASSERT_TRUE(second->Append(MakeInsert(2)).ok());
  ASSERT_TRUE(second->Sync().ok());

  ScanResult scan2;
  auto third = Wal::Open(&disk, anchor, &scan2);
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(scan2.records.size(), 2u);
  EXPECT_EQ(scan2.records[1].lsn, 2u);
}

TEST(WalTest, UnsyncedAppendsVanishOnCrash) {
  InMemoryDiskManager base(512);
  storage::WriteCacheDiskManager disk(&base);
  auto created = Wal::Create(&disk);
  ASSERT_TRUE(created.ok());
  Wal wal = std::move(created).value();
  ASSERT_TRUE(wal.Append(MakeInsert(1)).ok());
  ASSERT_TRUE(wal.Append(MakeInsert(2)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Append(MakeInsert(3)).ok());  // acked=false: no sync

  disk.DropUnsynced();  // power loss

  ScanResult scan;
  auto reopened = Wal::Open(&disk, wal.anchor_page(), &scan);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records.back().lsn, 2u);
}

TEST(WalTest, TornTailIsTruncatedAndAppendable) {
  InMemoryDiskManager disk(512);
  auto created = Wal::Create(&disk);
  ASSERT_TRUE(created.ok());
  Wal wal = std::move(created).value();
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(wal.Append(MakeInsert(i)).ok());
  }
  ASSERT_TRUE(wal.Sync().ok());
  const PageId anchor = wal.anchor_page();
  const uint64_t committed = wal.chain_bytes();

  // Flip the last committed byte (inside record 3's frame) — a torn
  // write the CRC must catch.
  const uint32_t payload_per_page = disk.page_size() - 8;
  const PageId head = AnchorHead(&disk, anchor);
  const PageId tail =
      NthChainPage(&disk, head, (committed - 1) / payload_per_page);
  std::vector<char> page(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(tail, page.data()).ok());
  page[8 + (committed - 1) % payload_per_page] ^= 0x40;
  ASSERT_TRUE(disk.WritePage(tail, page.data()).ok());

  ScanResult scan;
  auto reopened = Wal::Open(&disk, anchor, &scan);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(scan.tail_torn);
  EXPECT_GT(scan.discarded_bytes, 0u);
  ASSERT_EQ(scan.records.size(), 2u);  // the committed prefix

  // The tear was physically truncated: appending now extends record 2,
  // and a further reopen sees a clean three-record log.
  ASSERT_TRUE(reopened->Append(MakeInsert(7)).ok());
  ASSERT_TRUE(reopened->Sync().ok());
  ScanResult scan2;
  auto third = Wal::Open(&disk, anchor, &scan2);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(scan2.tail_torn);
  ASSERT_EQ(scan2.records.size(), 3u);
  EXPECT_EQ(scan2.records.back().lsn, 7u);
}

// --- Rotation ---------------------------------------------------------------

TEST(WalTest, RotateReplacesChainWithSnapshot) {
  InMemoryDiskManager disk(512);
  auto created = Wal::Create(&disk);
  ASSERT_TRUE(created.ok());
  Wal wal = std::move(created).value();
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(wal.Append(MakeInsert(i)).ok());
  }
  ASSERT_TRUE(wal.Sync().ok());

  std::vector<rtree::Entry> entries(3);
  for (size_t i = 0; i < entries.size(); ++i) {
    const double x = static_cast<double>(i);
    entries[i].mbr = Rect(x, x, x + 1, x + 1);
    entries[i].payload =
        rtree::Entry::PayloadFromRid(Rid{static_cast<PageId>(i), 0});
  }
  ASSERT_TRUE(
      wal.Rotate(BuildSnapshotRecords(entries, rtree::RTreeOptions{}, 11))
          .ok());
  EXPECT_EQ(wal.stats().rotations, 1u);

  ScanResult scan;
  auto reopened = Wal::Open(&disk, wal.anchor_page(), &scan);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(scan.tail_torn);
  // Old op records are gone; the new chain is snapshot + padding only.
  ASSERT_GE(scan.records.size(), 3u);
  EXPECT_EQ(scan.records.front().type, RecordType::kSnapshotBegin);
  bool saw_end = false;
  for (const Record& r : scan.records) {
    EXPECT_NE(r.type, RecordType::kInsert);
    if (r.type == RecordType::kSnapshotEnd) saw_end = true;
  }
  EXPECT_TRUE(saw_end);
}

TEST(WalTest, RotationPageAlignsSnapshot) {
  InMemoryDiskManager disk(512);
  auto created = Wal::Create(&disk);
  ASSERT_TRUE(created.ok());
  Wal wal = std::move(created).value();
  std::vector<rtree::Entry> entries(5);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].mbr = Rect(0, 0, 1, 1);
    entries[i].payload =
        rtree::Entry::PayloadFromRid(Rid{static_cast<PageId>(i), 0});
  }
  ASSERT_TRUE(
      wal.Rotate(BuildSnapshotRecords(entries, rtree::RTreeOptions{}, 1))
          .ok());
  // Padding rounds the snapshot stream up to a whole number of chain
  // pages, so later torn appends can never reach back into it.
  const uint32_t payload_per_page = disk.page_size() - 8;
  EXPECT_EQ(wal.chain_bytes() % payload_per_page, 0u);

  // Appends after rotation land on the pre-linked empty tail page and
  // replay fine.
  ASSERT_TRUE(wal.Append(MakeInsert(2)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ScanResult scan;
  auto reopened = Wal::Open(&disk, wal.anchor_page(), &scan);
  ASSERT_TRUE(reopened.ok());
  ASSERT_FALSE(scan.records.empty());
  EXPECT_EQ(scan.records.back().type, RecordType::kInsert);
  EXPECT_EQ(scan.records.back().lsn, 2u);
}

// --- Anchor -----------------------------------------------------------------

TEST(WalTest, StaleAnchorSlotCorruptionIsTolerated) {
  InMemoryDiskManager disk(512);
  auto created = Wal::Create(&disk);
  ASSERT_TRUE(created.ok());
  Wal wal = std::move(created).value();
  std::vector<rtree::Entry> none;
  // Two rotations so both slots have been written at least once.
  ASSERT_TRUE(
      wal.Rotate(BuildSnapshotRecords(none, rtree::RTreeOptions{}, 1)).ok());
  ASSERT_TRUE(wal.Append(MakeInsert(2)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(
      wal.Rotate(BuildSnapshotRecords(none, rtree::RTreeOptions{}, 3)).ok());
  const PageId anchor = wal.anchor_page();
  const PageId live_head = AnchorHead(&disk, anchor);

  // Trash the STALE slot (the one not naming live_head): open must keep
  // working off the surviving slot.
  std::vector<char> page(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(anchor, page.data()).ok());
  for (size_t off : {size_t{0}, size_t{64}}) {
    uint32_t slot_head;
    std::memcpy(&slot_head, page.data() + off + 16, 4);
    if (slot_head != live_head) {
      std::memset(page.data() + off, 0xAB, 24);
    }
  }
  ASSERT_TRUE(disk.WritePage(anchor, page.data()).ok());

  ScanResult scan;
  auto reopened = Wal::Open(&disk, anchor, &scan);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(scan.tail_torn);

  // Trash BOTH slots: now the log is unrecoverable and open must say so.
  std::memset(page.data(), 0xCD, disk.page_size());
  ASSERT_TRUE(disk.WritePage(anchor, page.data()).ok());
  ScanResult scan2;
  auto broken = Wal::Open(&disk, anchor, &scan2);
  EXPECT_FALSE(broken.ok());
  EXPECT_TRUE(broken.status().IsCorruption());
}

}  // namespace
}  // namespace pictdb::wal
