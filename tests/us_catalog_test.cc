// Invariants of the packaged §2 example database (workload/us_catalog):
// every relation populated, every picture associated, every index valid,
// and the geometry classes match the paper's point/segment/region story.

#include <gtest/gtest.h>

#include "rel/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/us_catalog.h"
#include "workload/us_cities.h"

namespace pictdb::workload {
namespace {

class UsCatalogTest : public ::testing::Test {
 protected:
  UsCatalogTest() : disk_(1024), pool_(&disk_, 1 << 14), catalog_(&pool_) {
    PICTDB_CHECK_OK(BuildUsCatalog(&catalog_, 4));
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
  rel::Catalog catalog_;
};

TEST_F(UsCatalogTest, AllRelationsPresentAndPopulated) {
  const std::vector<std::string> expected = {"cities", "highways", "lakes",
                                             "states", "time-zones"};
  EXPECT_EQ(catalog_.RelationNames(), expected);
  for (const std::string& name : expected) {
    auto rel = catalog_.GetRelation(name);
    ASSERT_TRUE(rel.ok());
    auto count = (*rel)->Count();
    ASSERT_TRUE(count.ok());
    EXPECT_GT(*count, 0u) << name;
  }
}

TEST_F(UsCatalogTest, EverySpatialIndexIsValidAndComplete) {
  for (const std::string& name : catalog_.RelationNames()) {
    auto rel = catalog_.GetRelation(name);
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE((*rel)->HasSpatialIndex("loc")) << name;
    auto index = (*rel)->SpatialIndex("loc");
    ASSERT_TRUE(index.ok());
    EXPECT_TRUE((*index)->Validate().ok()) << name;
    EXPECT_EQ((*index)->Size(), *(*rel)->Count()) << name;
  }
}

TEST_F(UsCatalogTest, PicturesCoverEveryRelation) {
  const std::pair<const char*, const char*> associations[] = {
      {"us-map", "cities"},       {"us-map", "highways"},
      {"state-map", "states"},    {"time-zone-map", "time-zones"},
      {"lake-map", "lakes"},
  };
  for (const auto& [picture, relation] : associations) {
    auto column = catalog_.AssociationColumn(picture, relation);
    ASSERT_TRUE(column.ok()) << picture << "/" << relation;
    EXPECT_EQ(*column, "loc");
  }
  // Every picture frame is the continental US.
  for (const rel::Picture* pic : catalog_.Pictures()) {
    EXPECT_EQ(pic->frame, ContinentalUsFrame()) << pic->name;
  }
}

TEST_F(UsCatalogTest, GeometryClassesMatchThePaper) {
  // cities are points, highways segments, the rest regions/rects.
  const std::pair<const char*, geom::GeometryType> expectations[] = {
      {"cities", geom::GeometryType::kPoint},
      {"highways", geom::GeometryType::kSegment},
      {"states", geom::GeometryType::kRegion},
      {"time-zones", geom::GeometryType::kRect},
      {"lakes", geom::GeometryType::kRect},
  };
  for (const auto& [name, type] : expectations) {
    auto rel = catalog_.GetRelation(name);
    ASSERT_TRUE(rel.ok());
    auto rid = (*rel)->FirstRid();
    ASSERT_TRUE(rid.ok());
    const size_t loc = *(*rel)->schema().IndexOf("loc");
    while (rid->IsValid()) {
      auto tuple = (*rel)->Get(*rid);
      ASSERT_TRUE(tuple.ok());
      EXPECT_EQ(tuple->at(loc).as_geometry().type(), type) << name;
      rid = (*rel)->NextRid(*rid);
      ASSERT_TRUE(rid.ok());
    }
  }
}

TEST_F(UsCatalogTest, AllGeometriesInsideTheFrame) {
  const geom::Rect frame = ContinentalUsFrame();
  for (const std::string& name : catalog_.RelationNames()) {
    auto rel = catalog_.GetRelation(name);
    ASSERT_TRUE(rel.ok());
    const size_t loc = *(*rel)->schema().IndexOf("loc");
    auto rid = (*rel)->FirstRid();
    ASSERT_TRUE(rid.ok());
    while (rid->IsValid()) {
      auto tuple = (*rel)->Get(*rid);
      ASSERT_TRUE(tuple.ok());
      EXPECT_TRUE(frame.Contains(tuple->at(loc).as_geometry().Mbr()))
          << name << " " << tuple->ToString();
      rid = (*rel)->NextRid(*rid);
      ASSERT_TRUE(rid.ok());
    }
  }
}

TEST_F(UsCatalogTest, HighwaySectionsChainThroughSharedCities) {
  // Consecutive sections of the same highway share an endpoint.
  auto highways = catalog_.GetRelation("highways");
  ASSERT_TRUE(highways.ok());
  std::map<std::string, std::map<int64_t, geom::Segment>> routes;
  auto rid = (*highways)->FirstRid();
  ASSERT_TRUE(rid.ok());
  while (rid->IsValid()) {
    auto tuple = (*highways)->Get(*rid);
    ASSERT_TRUE(tuple.ok());
    routes[tuple->at(0).as_string()][tuple->at(1).as_int()] =
        tuple->at(2).as_geometry().segment();
    rid = (*highways)->NextRid(*rid);
    ASSERT_TRUE(rid.ok());
  }
  EXPECT_GE(routes.size(), 5u);
  for (const auto& [name, sections] : routes) {
    int64_t prev_section = -1;
    geom::Segment prev{};
    for (const auto& [section, segment] : sections) {
      if (prev_section >= 0 && section == prev_section + 1) {
        EXPECT_EQ(prev.b, segment.a)
            << name << " section " << section << " does not chain";
      }
      prev_section = section;
      prev = segment;
    }
  }
}

TEST_F(UsCatalogTest, BranchingFactorIsHonored) {
  storage::InMemoryDiskManager disk(1024);
  storage::BufferPool pool(&disk, 1 << 14);
  rel::Catalog catalog(&pool);
  PICTDB_CHECK_OK(BuildUsCatalog(&catalog, 6));
  auto cities = catalog.GetRelation("cities");
  ASSERT_TRUE(cities.ok());
  auto index = (*cities)->SpatialIndex("loc");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->options().max_entries, 6u);
}

}  // namespace
}  // namespace pictdb::workload
