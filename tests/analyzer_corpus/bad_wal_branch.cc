// Seeded bug: the WAL append happens on only one branch, but the
// mutation runs on every path — the non-durable branch mutates the
// tree with no log record.
#include "corpus_stubs.h"

namespace pictdb {

class DurableEngine {
 public:
  Status Apply(int rec, bool durable);

 private:
  rtree::RTree tree_;
  wal::Wal log_;
};

Status DurableEngine::Apply(int rec, bool durable) {
  if (durable) {
    Status st = log_.Append(rec);
    if (!st.ok()) return st;
  }
  return tree_.Update(rec);  // BUG: WAL-ORDER
}

}  // namespace pictdb
