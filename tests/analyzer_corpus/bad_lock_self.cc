// Seeded bug: a public entry point re-enters another method of the
// same class that takes the same (non-recursive) mutex — a guaranteed
// self-deadlock, visible only interprocedurally.
#include "corpus_stubs.h"

namespace pictdb {

class Registry {
 public:
  int Count();
  void Add(int v);

 private:
  common::Mutex mu_;
  int n_ = 0;
};

int Registry::Count() {
  mu_.Lock();
  const int n = n_;
  mu_.Unlock();
  return n;
}

void Registry::Add(int v) {
  mu_.Lock();
  n_ += v;
  Count();  // BUG: LOCK-ORDER
  mu_.Unlock();
}

}  // namespace pictdb
