// Seeded bug: a mutex that nests under another lock but was never
// registered in the hierarchy file. The DAG check cannot rank it, so
// the analyzer demands it be added (or the nesting removed).
#include "corpus_stubs.h"

namespace pictdb {

class Engine {
 public:
  common::Mutex mu_;
};

class Sampler {
 public:
  void Observe(Engine* engine);

 private:
  common::Mutex histogram_mu_;
};

void Sampler::Observe(Engine* engine) {
  common::MutexLock lock(&engine->mu_);
  common::MutexLock sample(&histogram_mu_);  // BUG: LOCK-ORDER
}

}  // namespace pictdb
