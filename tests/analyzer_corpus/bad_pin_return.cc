// Seeded bug: a pointer into a pinned page is returned to the caller.
// The guard unpins at end of scope, so the pointer dangles the moment
// the buffer pool recycles the frame.
#include "corpus_stubs.h"

namespace pictdb {

const char* PeekRecord(storage::BufferPool* pool, storage::PageId id) {
  storage::PageGuard guard = pool->FetchPage(id).value();
  const char* bytes = guard.data();
  return bytes;  // BUG: PIN-ESCAPE
}

rtree::SoaNode DecodeNode(const char* bytes);

const float* FirstRectColumn(storage::BufferPool* pool) {
  storage::PageGuard guard = pool->FetchPage(0).value();
  rtree::SoaNode node = DecodeNode(guard.data());
  rtree::RectSoa view = node.rects();
  return view.xmin;  // BUG: PIN-ESCAPE
}

}  // namespace pictdb
