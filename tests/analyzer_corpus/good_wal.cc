// Clean unit: every mutation is dominated by a WAL append — directly,
// through the C++17 if-init idiom, or via a helper that appends — and
// replay is exempt by construction. WAL-ORDER must stay silent.
#include "corpus_stubs.h"

namespace pictdb {

#define PICTDB_RETURN_IF_ERROR(expr) \
  do {                               \
    Status _st = (expr);             \
    if (!_st.ok()) return _st;       \
  } while (0)

class DurableEngine {
 public:
  Status Apply(int rec);
  Status ApplyViaHelper(int rec);
  Status Replay(int rec);

 private:
  Status LogRecord(int rec);
  rtree::RTree tree_;
  wal::Wal log_;
};

Status DurableEngine::Apply(int rec) {
  if (Status st = log_.Append(rec); !st.ok()) return st;
  return tree_.Insert(rec);
}

Status DurableEngine::LogRecord(int rec) { return log_.Append(rec); }

Status DurableEngine::ApplyViaHelper(int rec) {
  PICTDB_RETURN_IF_ERROR(LogRecord(rec));
  return tree_.Update(rec);
}

// Recovery applies records that are already in the log.
Status DurableEngine::Replay(int rec) { return tree_.Insert(rec); }

}  // namespace pictdb
