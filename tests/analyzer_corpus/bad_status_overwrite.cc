// Seeded bug: the prepare status is clobbered by the commit status
// before anyone looked at it — a failed prepare would be committed
// anyway.
#include "corpus_stubs.h"

namespace pictdb {

class Committer {
 public:
  Status Prepare();
  Status Commit();
  Status Run();
};

Status Committer::Run() {
  Status st = Prepare();
  st = Commit();  // BUG: STATUS-DROP
  return st;
}

}  // namespace pictdb
