// Seeded bugs: tree mutations on the write path that are not dominated
// by a WAL append — a crash between the mutation and any later logging
// loses the operation (or replays it against the wrong state).
#include "corpus_stubs.h"

namespace pictdb {

#define PICTDB_RETURN_IF_ERROR(expr) \
  do {                               \
    Status _st = (expr);             \
    if (!_st.ok()) return _st;       \
  } while (0)

class DurableEngine {
 public:
  Status Apply(int rec);
  Status Backwards(int rec);

 private:
  rtree::RTree tree_;
  wal::Wal log_;
};

Status DurableEngine::Apply(int rec) {
  return tree_.Insert(rec);  // BUG: WAL-ORDER
}

// Log-after-apply is as wrong as not logging: the mutation precedes
// its own durability record.
Status DurableEngine::Backwards(int rec) {
  Status applied = tree_.Delete(rec);  // BUG: WAL-ORDER
  PICTDB_RETURN_IF_ERROR(log_.Append(rec));
  return applied;
}

}  // namespace pictdb
