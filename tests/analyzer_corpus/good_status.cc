// Clean unit: every Status is examined, consumed by a macro, or
// discarded with an explicit justification. STATUS-DROP must stay
// silent.
#include "corpus_stubs.h"

namespace pictdb {

#define PICTDB_RETURN_IF_ERROR(expr) \
  do {                               \
    Status _st = (expr);             \
    if (!_st.ok()) return _st;       \
  } while (0)

class Flusher {
 public:
  Status FlushOne();
  void Shutdown();
  Status Careful();
  Status Macroed();
};

void Flusher::Shutdown() {
  (void)FlushOne();  // best-effort: the store is read-only after this
}

Status Flusher::Careful() {
  Status st = FlushOne();
  if (!st.ok()) return st;
  st = FlushOne();
  return st;
}

Status Flusher::Macroed() {
  PICTDB_RETURN_IF_ERROR(FlushOne());
  if (Status st = FlushOne(); !st.ok()) return st;
  return Status::OK();
}

}  // namespace pictdb
