// Seeded bugs: a status parked in a local that falls off the end of
// the function unexamined, and an immediately-invoked lambda whose
// Status return value evaporates.
#include "corpus_stubs.h"

namespace pictdb {

class Archiver {
 public:
  Status CopyOut();
  void BestEffort();
  void RunBatch();

 private:
  int attempts_ = 0;
};

void Archiver::BestEffort() {
  Status st = CopyOut();  // BUG: STATUS-DROP
  ++attempts_;
}

void Archiver::RunBatch() {
  // BUG: STATUS-DROP
  [&]() -> Status { return CopyOut(); }();
  ++attempts_;
}

}  // namespace pictdb
