#!/usr/bin/env python3
"""Seeded-bug corpus self-test for the semantic analyzer.

Each bad_*.cc unit seeds known violations, marked in the source:

    hot_.push_back(bytes);  // BUG: PIN-ESCAPE      <- that line
    // BUG: STATUS-DROP                             <- the NEXT code line
    (void)FlushOne();

The whole-line form exists because a trailing comment would read as a
(void)-justification to the STATUS-DROP checker itself. The analyzer
must report exactly the marked (line, rule) pairs for every bad unit —
nothing more, nothing less — and zero findings on every good_*.cc.
Each unit is analyzed in isolation (own model, stubs as --context), so
units may reuse class names.
"""

import argparse
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
ANALYZE = os.path.join(REPO, "tools", "analyzer", "analyze.py")
STUBS = os.path.join(HERE, "corpus_stubs.h")
HIERARCHY = os.path.join(HERE, "corpus_hierarchy.txt")

MARK = re.compile(r"//\s*BUG:\s*([A-Z][A-Z-]+)")
FINDING = re.compile(r"^.*?:(\d+): ([A-Z][A-Z-]+): (.*)$")
RULES = ("PIN-ESCAPE", "LOCK-ORDER", "STATUS-DROP", "WAL-ORDER")


def expected_findings(path):
    """(line, rule) pairs from the BUG markers in one corpus unit."""
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    marks = set()
    for i, text in enumerate(lines):
        m = MARK.search(text)
        if not m:
            continue
        rule = m.group(1)
        if text.strip().startswith("//"):
            # whole-line marker: names the next non-comment line
            j = i + 1
            while j < len(lines) and lines[j].strip().startswith("//"):
                j += 1
            marks.add((j + 1, rule))
        else:
            marks.add((i + 1, rule))
    return marks


def analyze(path, frontend):
    cmd = [sys.executable, ANALYZE, path,
           "--context", STUBS,
           "--hierarchy", HIERARCHY,
           "--wal-scope", "analyzer_corpus",
           "--frontend", frontend]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 2:
        raise RuntimeError(f"analyzer setup error on {path}:\n{proc.stderr}")
    got = set()
    for line in proc.stdout.splitlines():
        m = FINDING.match(line)
        if m:
            got.add((int(m.group(1)), m.group(2)))
    return got, proc.stdout


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--frontend", default="native",
                    choices=("native", "clang", "auto"))
    args = ap.parse_args()

    bad = sorted(f for f in os.listdir(HERE) if f.startswith("bad_")
                 and f.endswith(".cc"))
    good = sorted(f for f in os.listdir(HERE) if f.startswith("good_")
                  and f.endswith(".cc"))
    if not bad or not good:
        print("run_corpus.py: corpus units missing", file=sys.stderr)
        return 2

    failures = []
    fired = set()
    for name in bad:
        path = os.path.join(HERE, name)
        want = expected_findings(path)
        if not want:
            failures.append(f"{name}: no BUG markers in a bad unit")
            continue
        got, raw = analyze(path, args.frontend)
        fired |= {rule for (_line, rule) in got}
        missing = want - got
        surprise = got - want
        if missing:
            failures.append(f"{name}: expected findings not reported: "
                            + ", ".join(f"line {l} {r}"
                                        for l, r in sorted(missing)))
        if surprise:
            failures.append(f"{name}: unexpected findings: "
                            + ", ".join(f"line {l} {r}"
                                        for l, r in sorted(surprise)))
        if (missing or surprise) and raw:
            failures.append(f"  analyzer output:\n" + "\n".join(
                "    " + ln for ln in raw.splitlines()))

    for name in good:
        got, raw = analyze(os.path.join(HERE, name), args.frontend)
        if got:
            failures.append(f"{name}: clean unit produced findings:\n"
                            + "\n".join("    " + ln
                                        for ln in raw.splitlines()))

    silent = [r for r in RULES if r not in fired]
    if silent:
        failures.append("rules never fired on the corpus: "
                        + ", ".join(silent))

    if failures:
        print(f"run_corpus.py: FAIL ({len(bad)} bad, {len(good)} good "
              f"units, frontend={args.frontend})")
        for f in failures:
            print(f)
        return 1
    print(f"run_corpus.py: OK — {len(bad)} bad units fired exactly as "
          f"marked, {len(good)} good units clean, all {len(RULES)} rules "
          f"exercised (frontend={args.frontend})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
