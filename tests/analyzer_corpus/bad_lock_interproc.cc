// Seeded bug: the inversion only exists across a call boundary — the
// caller holds Engine::mu_ (level 20) while the callee takes
// WriteService::mu_ (level 10). Neither function is wrong in
// isolation; the acquire summary of Drain() exposes the back-edge.
#include "corpus_stubs.h"

namespace pictdb {

class WriteService {
 public:
  void Drain();

 private:
  void FlushOne();
  common::Mutex mu_;
};

void WriteService::FlushOne() {}

void WriteService::Drain() {
  common::MutexLock lock(&mu_);
  FlushOne();
}

class Engine {
 public:
  void Apply(WriteService* svc);

 private:
  common::Mutex mu_;
};

void Engine::Apply(WriteService* svc) {
  common::MutexLock lock(&mu_);
  svc->Drain();  // BUG: LOCK-ORDER
}

}  // namespace pictdb
