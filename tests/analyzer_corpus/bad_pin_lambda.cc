// Seeded bugs: pinned-page pointers smuggled out through a member
// container and through a lambda handed to the thread pool — both
// outlive the guard that pins the page.
#include "corpus_stubs.h"

#include <vector>

namespace pictdb {

void Consume(const char* bytes);

class Indexer {
 public:
  void Enqueue(storage::BufferPool* pool, ThreadPool* tasks);

 private:
  std::vector<const char*> hot_;
};

void Indexer::Enqueue(storage::BufferPool* pool, ThreadPool* tasks) {
  storage::PageGuard guard = pool->FetchPage(3).value();
  const char* bytes = guard.data();
  hot_.push_back(bytes);  // BUG: PIN-ESCAPE
  tasks->Submit([bytes] { Consume(bytes); });  // BUG: PIN-ESCAPE
}

}  // namespace pictdb
