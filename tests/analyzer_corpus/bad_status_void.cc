// Seeded bugs: error statuses thrown away. A (void) cast is only
// acceptable with a trailing justification comment; a bare call
// statement silently drops the result either way.
#include "corpus_stubs.h"

namespace pictdb {

class Flusher {
 public:
  Status FlushOne();
  void FlushAll();
};

void Flusher::FlushAll() {
  // BUG: STATUS-DROP
  (void)FlushOne();
  FlushOne();  // BUG: STATUS-DROP
}

}  // namespace pictdb
