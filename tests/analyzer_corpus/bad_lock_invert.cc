// Seeded bugs: direct lock-order inversions. Engine::mu_ sits at level
// 20 and WriteService::mu_ at level 10, so service-then-engine is the
// only legal nesting; equal-level leaves must never nest at all.
#include "corpus_stubs.h"

namespace pictdb {

class WriteService {
 public:
  common::Mutex mu_;
};

class Engine {
 public:
  void Apply(WriteService* svc);

 private:
  common::Mutex mu_;
};

void Engine::Apply(WriteService* svc) {
  common::MutexLock outer(&mu_);
  common::MutexLock inner(&svc->mu_);  // BUG: LOCK-ORDER
}

class Cache {
 public:
  common::Mutex stats_mu_;
};

class Journal {
 public:
  common::Mutex mu_;
};

void TouchBoth(Cache* cache, Journal* journal) {
  common::MutexLock stats(&cache->stats_mu_);
  common::MutexLock log(&journal->mu_);  // BUG: LOCK-ORDER
}

}  // namespace pictdb
