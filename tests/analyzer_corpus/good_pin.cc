// Clean unit: pointers into pinned pages are used strictly within the
// guard's scope; only VALUES computed from the page bytes escape.
// PIN-ESCAPE must stay silent on all of it.
#include "corpus_stubs.h"

#include <string>

namespace pictdb {

storage::PageId DecodeChild(const char* bytes);

storage::PageId NextChild(storage::BufferPool* pool, storage::PageId id) {
  storage::PageGuard guard = pool->FetchPage(id).value();
  const char* bytes = guard.data();
  storage::PageId child = DecodeChild(bytes);
  return child;
}

std::string CopyRecord(storage::BufferPool* pool, storage::PageId id) {
  storage::PageGuard guard = pool->FetchPage(id).value();
  return std::string(guard.data(), 16);
}

int SumWithinScope(storage::BufferPool* pool) {
  int sum = 0;
  {
    storage::PageGuard guard = pool->FetchPage(0).value();
    const char* bytes = guard.data();
    for (int i = 0; i < 16; ++i) sum += bytes[i];
  }
  return sum;
}

}  // namespace pictdb
