// Seeded bug: a pointer derived from a pinned page is parked in a
// variable that outlives the guard's scope, then dereferenced after
// the unpin.
#include "corpus_stubs.h"

namespace pictdb {

int FirstByteAfterUnpin(storage::BufferPool* pool) {
  const char* first = nullptr;
  {
    storage::PageGuard guard = pool->FetchPage(0).value();
    first = guard.data();  // BUG: PIN-ESCAPE
  }
  return first == nullptr ? 0 : first[0];
}

class RecordCursor {
 public:
  void Position(storage::BufferPool* pool, storage::PageId id);

 private:
  const char* current_ = nullptr;
};

void RecordCursor::Position(storage::BufferPool* pool, storage::PageId id) {
  storage::PageGuard guard = pool->FetchPage(id).value();
  current_ = guard.mutable_data();  // BUG: PIN-ESCAPE
}

}  // namespace pictdb
