// Minimal stand-ins for the pictdb types the semantic analyzer reasons
// about (DESIGN.md §15). The corpus units are parsed with this header as
// --context only: it supplies type information, but findings are never
// reported against it. Kept self-contained so the corpus exercises the
// analyzer, not the real headers.
#ifndef PICTDB_TESTS_ANALYZER_CORPUS_STUBS_H_
#define PICTDB_TESTS_ANALYZER_CORPUS_STUBS_H_

namespace pictdb {

class Status {
 public:
  static Status OK();
  bool ok() const;
};

template <typename T>
class StatusOr {
 public:
  bool ok() const;
  T& value();
};

namespace common {

class Mutex {
 public:
  void Lock();
  void Unlock();
  bool TryLock();
};

class SharedMutex {
 public:
  void Lock();
  void Unlock();
  void LockShared();
  void UnlockShared();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu);
};

class ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu);
};

}  // namespace common

namespace storage {

using PageId = unsigned long long;

class PageGuard {
 public:
  PageId id() const;
  const char* data() const;
  char* mutable_data();
  void Release();
};

class BufferPool {
 public:
  StatusOr<PageGuard> FetchPage(PageId id);
  StatusOr<PageGuard> NewPage();
};

}  // namespace storage

namespace rtree {

struct RectSoa {
  const float* xmin;
  const float* ymin;
};

class SoaNode {
 public:
  RectSoa rects() const;
  const char* data() const;
};

class RTree {
 public:
  Status Insert(int record);
  Status Delete(int record);
  Status Update(int record);
};

}  // namespace rtree

namespace wal {

class Wal {
 public:
  Status Append(int record);
  Status Sync();
};

}  // namespace wal

class ThreadPool {
 public:
  void Submit(void (*fn)());
};

}  // namespace pictdb

#endif  // PICTDB_TESTS_ANALYZER_CORPUS_STUBS_H_
