// Clean unit: every nesting descends the hierarchy — Engine::mu_
// (level 20) over Cache::Shard::mu (level 40), including across the
// call boundary. LOCK-ORDER must stay silent.
#include "corpus_stubs.h"

namespace pictdb {

class Cache {
 public:
  void Touch(int i);

  struct Shard {
    common::Mutex mu;
    int hits = 0;
  };

 private:
  Shard shards_[4];
};

void Cache::Touch(int i) {
  Shard& shard = shards_[i];
  common::MutexLock lock(&shard.mu);
  shard.hits = shard.hits + 1;
}

class Engine {
 public:
  void Tick(Cache* cache);
  int DrainCount();

 private:
  common::Mutex mu_;
  int ticks_ = 0;
};

void Engine::Tick(Cache* cache) {
  common::MutexLock lock(&mu_);
  ticks_ = ticks_ + 1;
  cache->Touch(0);
}

// Sequential (non-nested) use of the same lock is not an acquisition
// edge: the first guard is released before the second is taken.
int Engine::DrainCount() {
  int n = 0;
  {
    common::MutexLock lock(&mu_);
    n = ticks_;
  }
  {
    common::MutexLock lock(&mu_);
    ticks_ = 0;
  }
  return n;
}

}  // namespace pictdb
