// Tests for the Theorem 3.2 machinery: a rotation with distinct
// x-coordinates exists (Lemma 3.1), and x-sorted chunking of the rotated
// points yields pairwise-disjoint leaf MBRs (zero overlap).

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/measure.h"
#include "pack/rotation.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::pack {
namespace {

using geom::Point;
using geom::Rect;
using storage::Rid;

TEST(RotationPackingTest, EmptyAndTinyInputs) {
  auto empty = ComputeRotationPacking({}, 4);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->leaf_mbrs.empty());

  auto one = ComputeRotationPacking({{3, 4}}, 4);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->leaf_mbrs.size(), 1u);

  EXPECT_FALSE(ComputeRotationPacking({{0, 0}}, 0).ok());
}

TEST(RotationPackingTest, GroupCountIsCeilNOverB) {
  Random rng(1);
  const auto pts = workload::UniformPoints(&rng, 23,
                                           workload::PaperFrame());
  auto packing = ComputeRotationPacking(pts, 4);
  ASSERT_TRUE(packing.ok());
  EXPECT_EQ(packing->leaf_mbrs.size(), 6u);  // ceil(23/4)
}

/// Theorem 3.2 across seeds and group sizes: zero overlap always.
class ZeroOverlapTheorem
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(ZeroOverlapTheorem, LeafMbrsAreDisjoint) {
  const auto [seed, group_size] = GetParam();
  Random rng(static_cast<uint64_t>(seed));
  const auto pts = workload::UniformPoints(&rng, 64 + rng.Uniform(200),
                                           workload::PaperFrame());
  auto packing = ComputeRotationPacking(pts, group_size);
  ASSERT_TRUE(packing.ok());

  // Pairwise interior-disjoint (the theorem's guarantee: the strips are
  // separated in x, so no common interior area).
  const double overlap = geom::AreaCoveredAtLeast(packing->leaf_mbrs, 2);
  EXPECT_EQ(overlap, 0.0);
  for (size_t i = 0; i < packing->leaf_mbrs.size(); ++i) {
    for (size_t j = i + 1; j < packing->leaf_mbrs.size(); ++j) {
      EXPECT_FALSE(packing->leaf_mbrs[i].IntersectsInterior(
          packing->leaf_mbrs[j]))
          << i << " vs " << j;
    }
  }
  // The rotation really separated the x-coordinates.
  EXPECT_TRUE(geom::AllXDistinct(packing->rotated));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZeroOverlapTheorem,
    ::testing::Combine(::testing::Range(1, 9),
                       ::testing::Values(size_t{2}, size_t{4}, size_t{7})));

TEST(RotationPackingTest, LatticeInputNeedsRealRotation) {
  // Integer lattice: unrotated x-sorted chunking would produce massive
  // vertical-strip ties; the rotation must still give zero overlap.
  std::vector<Point> pts;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      pts.push_back(Point{static_cast<double>(x), static_cast<double>(y)});
    }
  }
  auto packing = ComputeRotationPacking(pts, 4);
  ASSERT_TRUE(packing.ok());
  EXPECT_NE(packing->angle, 0.0);
  EXPECT_EQ(geom::AreaCoveredAtLeast(packing->leaf_mbrs, 2), 0.0);
}

TEST(PackWithRotationTest, BuildsQueryableTreeInRotatedFrame) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 4096);
  rtree::RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = rtree::RTree::Create(&pool, opts);
  ASSERT_TRUE(tree.ok());

  Random rng(5);
  const auto pts = workload::UniformPoints(&rng, 120,
                                           workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
  }
  geom::Transform transform;
  ASSERT_TRUE(PackWithRotation(&*tree, pts, rids, &transform).ok());
  ASSERT_TRUE(tree->Validate().ok());

  // Zero leaf overlap in the rotated frame.
  auto q = rtree::MeasureTree(*tree);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->overlap, 0.0);

  // Queries work after applying the same transform.
  for (size_t i = 0; i < pts.size(); i += 10) {
    const Point rotated = transform.Apply(pts[i]);
    auto hits = tree->SearchPoint(rotated);
    ASSERT_TRUE(hits.ok());
    bool found = false;
    for (const auto& h : *hits) {
      if (h.rid.page_id == i) found = true;
    }
    EXPECT_TRUE(found) << i;
  }
}

}  // namespace
}  // namespace pictdb::pack
