// Crash-robustness matrix for the durable tree: simulated power loss
// (WriteCacheDiskManager::DropUnsynced) at every WAL record boundary
// and inside the last record, followed by recovery, a TreeValidator
// pass, and an exact differential check against the brute-force
// oracle. The invariant under test: an acknowledged mutation is synced
// before the ack, so the recovered state equals the oracle EXACTLY —
// never a lossy approximation, never a wrong answer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "check/oracle.h"
#include "common/logging.h"
#include "check/invariants.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/write_cache.h"
#include "wal/durable_tree.h"

namespace pictdb::wal {
namespace {

using check::CompareHits;
using check::DiffVerdict;
using check::Oracle;
using geom::Point;
using geom::Rect;
using storage::BufferPool;
using storage::InMemoryDiskManager;
using storage::PageId;
using storage::Rid;
using storage::WriteCacheDiskManager;

const Rect kEverything(-1e18, -1e18, 1e18, 1e18);

void ExpectValid(const rtree::RTree& tree) {
  const check::ValidationReport report = check::TreeValidator().Check(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Full-state differential: the recovered tree must answer the
// everything-window identically to the oracle (same multiset).
void ExpectMatchesOracle(const rtree::RTree& tree, const Oracle& oracle) {
  auto all = tree.SearchIntersects(kEverything);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(CompareHits(*all, oracle.Intersects(kEverything),
                        /*degraded=*/false),
            DiffVerdict::kMatch)
      << "recovered tree diverges from oracle (" << all->size() << " vs "
      << oracle.size() << " hits)";
}

Rect SeededRect(std::mt19937_64* rng) {
  std::uniform_real_distribution<double> pos(0.0, 1000.0);
  std::uniform_real_distribution<double> ext(0.5, 20.0);
  const double x = pos(*rng), y = pos(*rng);
  return Rect(x, y, x + ext(*rng), y + ext(*rng));
}

// A crash-prone durable environment: buffer pool over a volatile write
// cache over the real (in-memory) disk. Crash() simulates power loss
// and reopens from what was fsynced.
struct CrashEnv {
  explicit CrashEnv(uint32_t page_size = 512, uint64_t checkpoint_every = 64)
      : base(page_size), wcache(&base) {
    opts.checkpoint_every = checkpoint_every;
    pool = std::make_unique<BufferPool>(&wcache, 4096);
    auto created = DurableRTree::Create(pool.get(), {}, opts);
    PICTDB_CHECK(created.ok());
    durable = std::move(created).value();
    meta = durable->meta_page();
    anchor = durable->anchor_page();
  }

  /// Power loss + recovery. Returns the RecoveryInfo of the reopen.
  RecoveryInfo Crash() {
    durable.reset();
    pool.reset();
    wcache.DropUnsynced();
    pool = std::make_unique<BufferPool>(&wcache, 4096);
    auto reopened = DurableRTree::Open(pool.get(), meta, anchor, opts);
    EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
    durable = std::move(reopened).value();
    return durable->recovery_info();
  }

  InMemoryDiskManager base;
  WriteCacheDiskManager wcache;
  DurableOptions opts;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<DurableRTree> durable;
  PageId meta = storage::kInvalidPageId;
  PageId anchor = storage::kInvalidPageId;
};

// --- The crash-point matrix -------------------------------------------------

// Kill the writer after EVERY record boundary of a mixed workload and
// recover each time. The oracle tracks exactly the acked mutations, so
// every recovery must reproduce it bit-for-bit.
TEST(WalCrashTest, CrashAfterEveryRecordBoundary) {
  CrashEnv env(/*page_size=*/512, /*checkpoint_every=*/16);
  Oracle oracle;
  std::mt19937_64 rng(7);
  std::vector<std::pair<Rect, Rid>> live;

  for (uint32_t i = 0; i < 60; ++i) {
    // Mixed op: mostly inserts, some deletes/updates once populated.
    const uint32_t roll = static_cast<uint32_t>(rng() % 10);
    if (live.size() > 8 && roll < 2) {
      const size_t victim = rng() % live.size();
      auto [mbr, rid] = live[victim];
      ASSERT_TRUE(env.durable->Delete(mbr, rid).ok());
      ASSERT_TRUE(oracle.Delete(mbr, rid));
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    } else if (live.size() > 8 && roll < 4) {
      const size_t victim = rng() % live.size();
      auto& [mbr, rid] = live[victim];
      const Rect moved = SeededRect(&rng);
      ASSERT_TRUE(env.durable->Update(mbr, rid, moved, rid).ok());
      ASSERT_TRUE(oracle.Delete(mbr, rid));
      oracle.Insert(moved, rid);
      mbr = moved;
    } else {
      const Rect mbr = SeededRect(&rng);
      const Rid rid{i + 1, 0};
      ASSERT_TRUE(env.durable->Insert(mbr, rid).ok());
      oracle.Insert(mbr, rid);
      live.emplace_back(mbr, rid);
    }

    // Power loss at this record boundary; recovery must reproduce every
    // acked op (the one above included — its commit fsynced before ok).
    const RecoveryInfo info = env.Crash();
    EXPECT_TRUE(info.opened);
    ExpectValid(env.durable->tree());
    ExpectMatchesOracle(env.durable->tree(), oracle);
  }
}

// Torn write: the last record's bytes are corrupted on disk (a partial
// sector write at the moment of power loss). Recovery must detect the
// tear via the CRC, discard exactly that record, and land on the
// longest committed prefix.
TEST(WalCrashTest, TornLastRecordRecoversPrefix) {
  CrashEnv env;
  Oracle oracle;
  std::mt19937_64 rng(11);
  std::vector<uint64_t> boundaries;
  Rect last_mbr;
  Rid last_rid{};
  for (uint32_t i = 0; i < 12; ++i) {
    last_mbr = SeededRect(&rng);
    last_rid = Rid{i + 1, 0};
    ASSERT_TRUE(env.durable->Insert(last_mbr, last_rid).ok());
    oracle.Insert(last_mbr, last_rid);
    boundaries.push_back(env.durable->wal_chain_bytes());
  }
  const uint64_t before_last = boundaries[boundaries.size() - 2];
  const uint64_t after_last = boundaries.back();
  env.durable.reset();
  env.pool.reset();
  // Everything was synced; now tear the final record by flipping a byte
  // inside its frame, on the REAL disk (walking the chain from the
  // anchor: slots at 0/64, head at slot+16, next pointer at page+4).
  std::vector<char> page(env.base.page_size());
  ASSERT_TRUE(env.base.ReadPage(env.anchor, page.data()).ok());
  PageId head = storage::kInvalidPageId;
  uint64_t best_gen = 0;
  for (size_t off : {size_t{0}, size_t{64}}) {
    uint32_t magic;
    std::memcpy(&magic, page.data() + off, 4);
    if (magic != 0x57414C41u) continue;
    uint64_t gen;
    std::memcpy(&gen, page.data() + off + 8, 8);
    if (head == storage::kInvalidPageId || gen > best_gen) {
      best_gen = gen;
      std::memcpy(&head, page.data() + off + 16, 4);
    }
  }
  ASSERT_NE(head, storage::kInvalidPageId);
  const uint64_t payload_per_page = env.base.page_size() - 8;
  const uint64_t target = before_last;  // first byte of the last frame
  PageId id = head;
  for (uint64_t hops = target / payload_per_page; hops > 0; --hops) {
    ASSERT_TRUE(env.base.ReadPage(id, page.data()).ok());
    std::memcpy(&id, page.data() + 4, 4);
  }
  ASSERT_TRUE(env.base.ReadPage(id, page.data()).ok());
  page[8 + target % payload_per_page] ^= 0x01;
  ASSERT_TRUE(env.base.WritePage(id, page.data()).ok());

  env.pool = std::make_unique<BufferPool>(&env.wcache, 4096);
  auto reopened = DurableRTree::Open(env.pool.get(), env.meta, env.anchor,
                                     env.opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  env.durable = std::move(reopened).value();
  const RecoveryInfo& info = env.durable->recovery_info();
  EXPECT_TRUE(info.tail_torn);
  // Exactly the final frame is gone (the scanner stops at the failed
  // CRC, so its count may exclude the frame header it already read).
  EXPECT_GT(info.discarded_bytes, 0u);
  EXPECT_LE(info.discarded_bytes, after_last - before_last);
  // The recovered state is the committed prefix: everything except the
  // torn final insert.
  ASSERT_TRUE(oracle.Delete(last_mbr, last_rid));
  ExpectValid(env.durable->tree());
  ExpectMatchesOracle(env.durable->tree(), oracle);
}

// Recovery is idempotent: crash → recover → crash (no new writes) →
// recover lands on the same state, and keeps the log replayable.
TEST(WalCrashTest, RecoveryIsIdempotent) {
  CrashEnv env;
  Oracle oracle;
  std::mt19937_64 rng(13);
  for (uint32_t i = 0; i < 20; ++i) {
    const Rect mbr = SeededRect(&rng);
    ASSERT_TRUE(env.durable->Insert(mbr, Rid{i + 1, 0}).ok());
    oracle.Insert(mbr, Rid{i + 1, 0});
  }
  for (int round = 0; round < 3; ++round) {
    const RecoveryInfo info = env.Crash();
    EXPECT_TRUE(info.opened);
    ExpectValid(env.durable->tree());
    ExpectMatchesOracle(env.durable->tree(), oracle);
  }
  // And the recovered tree still accepts writes.
  ASSERT_TRUE(env.durable->Insert(Rect(1, 1, 2, 2), Rid{999, 0}).ok());
  oracle.Insert(Rect(1, 1, 2, 2), Rid{999, 0});
  env.Crash();
  ExpectMatchesOracle(env.durable->tree(), oracle);
}

// Clean shutdown takes the fast path: no rebuild, no replay — reattach
// to the validated on-disk tree.
TEST(WalCrashTest, CleanShutdownSkipsRebuild) {
  CrashEnv env;
  Oracle oracle;
  std::mt19937_64 rng(17);
  for (uint32_t i = 0; i < 30; ++i) {
    const Rect mbr = SeededRect(&rng);
    ASSERT_TRUE(env.durable->Insert(mbr, Rid{i + 1, 0}).ok());
    oracle.Insert(mbr, Rid{i + 1, 0});
  }
  ASSERT_TRUE(env.durable->Close().ok());
  // Mutations after Close are refused.
  EXPECT_FALSE(env.durable->Insert(Rect(0, 0, 1, 1), Rid{500, 0}).ok());
  env.durable.reset();
  env.pool.reset();
  // No DropUnsynced: Close flushed and synced everything.
  env.pool = std::make_unique<BufferPool>(&env.wcache, 4096);
  auto reopened = DurableRTree::Open(env.pool.get(), env.meta, env.anchor,
                                     env.opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  env.durable = std::move(reopened).value();
  EXPECT_TRUE(env.durable->recovery_info().clean_shutdown);
  EXPECT_FALSE(env.durable->recovery_info().recovered);
  ExpectValid(env.durable->tree());
  ExpectMatchesOracle(env.durable->tree(), oracle);
}

// Checkpoints bound replay work: with a small cadence, recovery after
// many mutations replays at most ~cadence ops off the latest snapshot.
TEST(WalCrashTest, CheckpointBoundsReplay) {
  CrashEnv env(/*page_size=*/512, /*checkpoint_every=*/8);
  Oracle oracle;
  std::mt19937_64 rng(19);
  for (uint32_t i = 0; i < 100; ++i) {
    const Rect mbr = SeededRect(&rng);
    ASSERT_TRUE(env.durable->Insert(mbr, Rid{i + 1, 0}).ok());
    oracle.Insert(mbr, Rid{i + 1, 0});
  }
  EXPECT_GE(env.durable->stats().checkpoints, 10u);
  const RecoveryInfo info = env.Crash();
  EXPECT_TRUE(info.recovered);
  EXPECT_LE(info.replayed_ops, 8u);
  EXPECT_GT(info.snapshot_entries, 0u);
  ExpectMatchesOracle(env.durable->tree(), oracle);
}

// A commit-path write failure poisons the tree (no further mutations)
// but never corrupts durable state: reopening recovers exactly the
// acked prefix.
TEST(WalCrashTest, PoisonedCommitRecoversAckedPrefix) {
  InMemoryDiskManager base(512);
  storage::FaultInjectionDiskManager faulty(&base, storage::FaultPlan{});
  WriteCacheDiskManager wcache(&faulty);
  DurableOptions opts;
  auto pool = std::make_unique<BufferPool>(&wcache, 4096);
  auto created = DurableRTree::Create(pool.get(), {}, opts);
  ASSERT_TRUE(created.ok());
  auto durable = std::move(created).value();
  const PageId meta = durable->meta_page();
  const PageId anchor = durable->anchor_page();

  Oracle oracle;
  std::mt19937_64 rng(23);
  for (uint32_t i = 0; i < 10; ++i) {
    const Rect mbr = SeededRect(&rng);
    ASSERT_TRUE(durable->Insert(mbr, Rid{i + 1, 0}).ok());
    oracle.Insert(mbr, Rid{i + 1, 0});
  }

  storage::FaultPlan plan;
  plan.seed = 99;
  plan.transient_write_error_rate = 1.0;  // every write fails
  faulty.SetPlan(plan);
  EXPECT_FALSE(durable->Insert(Rect(0, 0, 1, 1), Rid{100, 0}).ok());
  EXPECT_TRUE(durable->poisoned());
  // Poisoned: even with the fault gone, mutations stay refused.
  faulty.ClearFaults();
  EXPECT_FALSE(durable->Insert(Rect(0, 0, 1, 1), Rid{101, 0}).ok());

  durable.reset();
  pool.reset();
  wcache.DropUnsynced();
  pool = std::make_unique<BufferPool>(&wcache, 4096);
  auto reopened = DurableRTree::Open(pool.get(), meta, anchor, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  durable = std::move(reopened).value();
  EXPECT_FALSE(durable->poisoned());
  ExpectValid(durable->tree());
  ExpectMatchesOracle(durable->tree(), oracle);
  // Writable again after recovery.
  ASSERT_TRUE(durable->Insert(Rect(0, 0, 1, 1), Rid{100, 0}).ok());
}

// BulkLoad seeds an empty durable tree and is immediately
// crash-durable (it checkpoints as a snapshot).
TEST(WalCrashTest, BulkLoadSurvivesCrash) {
  CrashEnv env;
  Oracle oracle;
  std::vector<rtree::Entry> entries;
  std::mt19937_64 rng(29);
  for (uint32_t i = 0; i < 200; ++i) {
    rtree::Entry e;
    e.mbr = SeededRect(&rng);
    e.payload = rtree::Entry::PayloadFromRid(Rid{i + 1, 0});
    entries.push_back(e);
    oracle.Insert(e.mbr, Rid{i + 1, 0});
  }
  ASSERT_TRUE(env.durable->BulkLoad(entries).ok());
  const RecoveryInfo info = env.Crash();
  EXPECT_TRUE(info.recovered);
  EXPECT_EQ(info.snapshot_entries, 200u);
  ExpectValid(env.durable->tree());
  ExpectMatchesOracle(env.durable->tree(), oracle);
}

// --- Latched concurrency (the TSan target) ----------------------------------

// Readers hammer the service with window/point/knn queries while the
// main thread streams logged mutations through the service write path.
// Epoch guards + frame latches must keep every traversal safe; the
// final state must match the oracle and validate.
TEST(WalCrashTest, ConcurrentReadersVsWriter) {
  CrashEnv env;
  // Seed so queries have something to chew on from the start.
  std::vector<rtree::Entry> seed;
  std::mt19937_64 rng(31);
  for (uint32_t i = 0; i < 300; ++i) {
    rtree::Entry e;
    e.mbr = SeededRect(&rng);
    e.payload = rtree::Entry::PayloadFromRid(Rid{i + 1, 0});
    seed.push_back(e);
  }
  ASSERT_TRUE(env.durable->BulkLoad(seed).ok());

  service::ServiceOptions sopts;
  sopts.num_threads = 4;
  sopts.queue_capacity = 1024;
  service::QueryService svc(&env.durable->tree(), nullptr, sopts);
  svc.BindWriter(env.durable.get());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::thread reader([&] {
    std::mt19937_64 qrng(37);
    while (!stop.load(std::memory_order_relaxed)) {
      std::uniform_real_distribution<double> pos(0.0, 1000.0);
      const double x = pos(qrng), y = pos(qrng);
      auto make_query = [&]() -> service::Query {
        switch (qrng() % 3) {
          case 0:
            return service::WindowQuery{Rect(x, y, x + 60, y + 60), false};
          case 1:
            return service::PointQuery{Point(x, y)};
          default:
            return service::KnnQuery{Point(x, y), 4};
        }
      };
      auto submitted = svc.Submit(make_query());
      if (!submitted.ok()) continue;  // queue full: shed and retry
      auto result = submitted->get();
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      completed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Oracle oracle;
  for (const rtree::Entry& e : seed) {
    oracle.Insert(e.mbr, Rid{static_cast<PageId>(e.payload >> 16),
                             static_cast<uint16_t>(e.payload & 0xFFFF)});
  }
  // Make sure the race is real: readers in flight before the first
  // write, and still querying after the last one.
  while (completed.load(std::memory_order_relaxed) < 1) {
    std::this_thread::yield();
  }
  const uint64_t before_writes = completed.load(std::memory_order_relaxed);
  std::vector<std::pair<Rect, Rid>> live;
  for (uint32_t i = 0; i < 400; ++i) {
    const uint32_t roll = static_cast<uint32_t>(rng() % 10);
    if (live.size() > 4 && roll < 3) {
      auto [mbr, rid] = live.back();
      live.pop_back();
      ASSERT_TRUE(
          svc.ExecuteWrite(service::DeleteOp{mbr, rid}).ok());
      ASSERT_TRUE(oracle.Delete(mbr, rid));
    } else {
      const Rect mbr = SeededRect(&rng);
      const Rid rid{1000 + i, 0};
      ASSERT_TRUE(svc.ExecuteWrite(service::InsertOp{mbr, rid}).ok());
      oracle.Insert(mbr, rid);
      live.emplace_back(mbr, rid);
    }
  }
  while (completed.load(std::memory_order_relaxed) < before_writes + 20) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  svc.Shutdown();
  EXPECT_GT(completed.load(), before_writes);
  const service::WriteMetricsSnapshot wm = svc.write_metrics();
  EXPECT_EQ(wm.committed(), 400u);
  EXPECT_EQ(wm.failed, 0u);
  ExpectValid(env.durable->tree());
  ExpectMatchesOracle(env.durable->tree(), oracle);

  // And the whole thing survives one more power loss.
  const RecoveryInfo info = env.Crash();
  EXPECT_TRUE(info.opened);
  ExpectMatchesOracle(env.durable->tree(), oracle);
}

}  // namespace
}  // namespace pictdb::wal
