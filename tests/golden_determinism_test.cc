#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "pack/pack.h"
#include "pack/repack.h"
#include "pack/str.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "simd/dispatch.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::pack {
namespace {

using rtree::Entry;
using rtree::RTree;
using storage::PageId;
using storage::Rid;

/// One fully built database image: every page the build touched,
/// flushed and read back raw (checksum trailer included).
struct DiskImage {
  uint32_t page_size = 0;
  std::vector<std::vector<char>> pages;

  bool operator==(const DiskImage& other) const {
    if (page_size != other.page_size || pages.size() != other.pages.size()) {
      return false;
    }
    for (size_t i = 0; i < pages.size(); ++i) {
      if (pages[i] != other.pages[i]) return false;
    }
    return true;
  }
};

std::vector<Entry> SeededEntries(uint64_t seed, size_t n) {
  Random rng(seed);
  const auto pts = workload::UniformPoints(&rng, n, workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < n; ++i) {
    rids.push_back(Rid{static_cast<PageId>(i), 0});
  }
  return MakeLeafEntries(pts, rids);
}

template <typename BuildFn>
DiskImage BuildImage(uint64_t seed, size_t n, const BuildFn& build) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  auto created = RTree::Create(&pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  build(&tree, SeededEntries(seed, n));
  PICTDB_CHECK_OK(pool.FlushAll());

  DiskImage image;
  image.page_size = disk.page_size();
  image.pages.resize(disk.page_count());
  for (PageId id = 0; id < disk.page_count(); ++id) {
    image.pages[id].resize(disk.page_size());
    PICTDB_CHECK_OK(disk.ReadPage(id, image.pages[id].data()));
  }
  return image;
}

// Determinism is a load-bearing property here: the stress harness's
// replayable reproducers and the fault injector's seeded schedules both
// assume that the same build sequence yields the same bytes on disk.

TEST(GoldenDeterminismTest, PackNearestNeighborIsByteIdentical) {
  auto build = [](RTree* tree, const std::vector<Entry>& entries) {
    PICTDB_CHECK_OK(PackNearestNeighbor(tree, entries));
  };
  const DiskImage a = BuildImage(71, 1000, build);
  const DiskImage b = BuildImage(71, 1000, build);
  ASSERT_GT(a.pages.size(), 1u);
  EXPECT_TRUE(a == b);

  // Different seed, different bytes — the comparison is not vacuous.
  const DiskImage c = BuildImage(72, 1000, build);
  EXPECT_FALSE(a == c);
}

TEST(GoldenDeterminismTest, PackSortChunkIsByteIdentical) {
  auto build = [](RTree* tree, const std::vector<Entry>& entries) {
    PICTDB_CHECK_OK(PackSortChunk(tree, entries));
  };
  EXPECT_TRUE(BuildImage(73, 800, build) == BuildImage(73, 800, build));
}

TEST(GoldenDeterminismTest, InsertThenRepackIsByteIdentical) {
  auto build = [](RTree* tree, const std::vector<Entry>& entries) {
    for (const Entry& e : entries) {
      PICTDB_CHECK_OK(tree->Insert(e.mbr, e.AsRid()));
    }
    PICTDB_CHECK_OK(Repack(tree));
  };
  EXPECT_TRUE(BuildImage(74, 500, build) == BuildImage(74, 500, build));
}

// --- Query-path determinism across kernel families -------------------------
//
// The SoA decode and SIMD kernels must not change a single answer:
// every query below is replayed through the scalar reference and the
// runtime-selected vector family and compared hit for hit, in order.
// The disk image is also rebuilt to prove the SoA refactor left the
// on-disk layout untouched.

std::vector<geom::Rect> SeededWindows(uint64_t seed, size_t n) {
  Random rng(seed);
  const geom::Rect frame = workload::PaperFrame();
  std::vector<geom::Rect> windows;
  for (size_t i = 0; i < n; ++i) {
    const double cx = rng.UniformDouble(frame.lo.x, frame.hi.x);
    const double cy = rng.UniformDouble(frame.lo.y, frame.hi.y);
    windows.push_back(geom::Rect::FromCenterHalfExtent(
        cx, rng.UniformDouble(1.0, 60.0), cy,
        rng.UniformDouble(1.0, 60.0)));
  }
  return windows;
}

bool SameHits(const std::vector<rtree::LeafHit>& a,
              const std::vector<rtree::LeafHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].mbr == b[i].mbr) || !(a[i].rid == b[i].rid)) return false;
  }
  return true;
}

TEST(GoldenDeterminismTest, SimdAndScalarSearchesAreIdentical) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  auto created = RTree::Create(&pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  PICTDB_CHECK_OK(PackNearestNeighbor(&tree, SeededEntries(81, 2000)));

  const std::vector<geom::Rect> windows = SeededWindows(82, 64);
  for (const geom::Rect& window : windows) {
    std::vector<rtree::LeafHit> scalar_hits, simd_hits;
    {
      simd::ScopedKernelOverride force(&simd::ScalarKernels());
      auto r = tree.SearchIntersects(window);
      PICTDB_CHECK(r.ok());
      scalar_hits = std::move(r).value();
    }
    auto r = tree.SearchIntersects(window);
    PICTDB_CHECK(r.ok());
    simd_hits = std::move(r).value();
    EXPECT_TRUE(SameHits(scalar_hits, simd_hits))
        << "scalar and runtime kernels disagree";

    {
      simd::ScopedKernelOverride force(&simd::ScalarKernels());
      auto c = tree.SearchContainedIn(window);
      PICTDB_CHECK(c.ok());
      scalar_hits = std::move(c).value();
    }
    auto c = tree.SearchContainedIn(window);
    PICTDB_CHECK(c.ok());
    EXPECT_TRUE(SameHits(scalar_hits, c.value()))
        << "contained-in diverges between kernel families";
  }
}

TEST(GoldenDeterminismTest, BatchSearchMatchesSingleWindowSearches) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  auto created = RTree::Create(&pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  PICTDB_CHECK_OK(PackNearestNeighbor(&tree, SeededEntries(83, 2000)));

  const std::vector<geom::Rect> windows = SeededWindows(84, 48);
  for (const bool contained : {false, true}) {
    auto batch = tree.SearchBatch(windows, contained);
    PICTDB_CHECK(batch.ok());
    ASSERT_EQ(batch->size(), windows.size());
    size_t nonempty = 0;
    for (size_t i = 0; i < windows.size(); ++i) {
      auto single = contained ? tree.SearchContainedIn(windows[i])
                              : tree.SearchIntersects(windows[i]);
      PICTDB_CHECK(single.ok());
      EXPECT_TRUE(SameHits((*batch)[i].hits, single.value()))
          << "batch window " << i << " (contained=" << contained
          << ") diverges from the single-window search";
      EXPECT_FALSE((*batch)[i].degraded);
      if (!single.value().empty()) ++nonempty;
    }
    EXPECT_GT(nonempty, 0u) << "vacuous batch comparison";
  }
}

TEST(GoldenDeterminismTest, SoaDecodeLeavesDiskImageUnchanged) {
  // Build + query, then rebuild without querying: reads must never
  // write. Also the stronger cross-property: the image equals the one
  // BuildImage produces for the identical build sequence.
  auto build = [](RTree* tree, const std::vector<Entry>& entries) {
    PICTDB_CHECK_OK(PackNearestNeighbor(tree, entries));
  };
  auto build_and_query = [](RTree* tree, const std::vector<Entry>& entries) {
    PICTDB_CHECK_OK(PackNearestNeighbor(tree, entries));
    for (const geom::Rect& window : SeededWindows(86, 32)) {
      PICTDB_CHECK(tree->SearchIntersects(window).ok());
      PICTDB_CHECK(tree->SearchBatch({&window, 1}, false).ok());
    }
  };
  EXPECT_TRUE(BuildImage(85, 1200, build) ==
              BuildImage(85, 1200, build_and_query));
}

// Node::Mbr() is documented as recompute-per-call; traversal hot paths
// must hoist it. The counter catches a regression that reintroduces a
// per-entry or per-use recomputation (see join.cc, invariants.cc).
TEST(GoldenDeterminismTest, SearchPathsDoNotRecomputeNodeMbrs) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  auto created = RTree::Create(&pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  PICTDB_CHECK_OK(PackNearestNeighbor(&tree, SeededEntries(87, 2000)));

  const uint64_t before = rtree::MbrComputeCountForTesting();
  for (const geom::Rect& window : SeededWindows(88, 32)) {
    PICTDB_CHECK(tree.SearchIntersects(window).ok());
    PICTDB_CHECK(tree.SearchBatch({&window, 1}, false).ok());
  }
  // The kernel-driven window searches never need a node-level MBR at
  // all: the per-entry lanes carry everything.
  EXPECT_EQ(rtree::MbrComputeCountForTesting(), before);
}

}  // namespace
}  // namespace pictdb::pack
