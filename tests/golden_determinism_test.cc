#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "pack/pack.h"
#include "pack/repack.h"
#include "pack/str.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::pack {
namespace {

using rtree::Entry;
using rtree::RTree;
using storage::PageId;
using storage::Rid;

/// One fully built database image: every page the build touched,
/// flushed and read back raw (checksum trailer included).
struct DiskImage {
  uint32_t page_size = 0;
  std::vector<std::vector<char>> pages;

  bool operator==(const DiskImage& other) const {
    if (page_size != other.page_size || pages.size() != other.pages.size()) {
      return false;
    }
    for (size_t i = 0; i < pages.size(); ++i) {
      if (pages[i] != other.pages[i]) return false;
    }
    return true;
  }
};

std::vector<Entry> SeededEntries(uint64_t seed, size_t n) {
  Random rng(seed);
  const auto pts = workload::UniformPoints(&rng, n, workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < n; ++i) {
    rids.push_back(Rid{static_cast<PageId>(i), 0});
  }
  return MakeLeafEntries(pts, rids);
}

template <typename BuildFn>
DiskImage BuildImage(uint64_t seed, size_t n, const BuildFn& build) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  auto created = RTree::Create(&pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  build(&tree, SeededEntries(seed, n));
  PICTDB_CHECK_OK(pool.FlushAll());

  DiskImage image;
  image.page_size = disk.page_size();
  image.pages.resize(disk.page_count());
  for (PageId id = 0; id < disk.page_count(); ++id) {
    image.pages[id].resize(disk.page_size());
    PICTDB_CHECK_OK(disk.ReadPage(id, image.pages[id].data()));
  }
  return image;
}

// Determinism is a load-bearing property here: the stress harness's
// replayable reproducers and the fault injector's seeded schedules both
// assume that the same build sequence yields the same bytes on disk.

TEST(GoldenDeterminismTest, PackNearestNeighborIsByteIdentical) {
  auto build = [](RTree* tree, const std::vector<Entry>& entries) {
    PICTDB_CHECK_OK(PackNearestNeighbor(tree, entries));
  };
  const DiskImage a = BuildImage(71, 1000, build);
  const DiskImage b = BuildImage(71, 1000, build);
  ASSERT_GT(a.pages.size(), 1u);
  EXPECT_TRUE(a == b);

  // Different seed, different bytes — the comparison is not vacuous.
  const DiskImage c = BuildImage(72, 1000, build);
  EXPECT_FALSE(a == c);
}

TEST(GoldenDeterminismTest, PackSortChunkIsByteIdentical) {
  auto build = [](RTree* tree, const std::vector<Entry>& entries) {
    PICTDB_CHECK_OK(PackSortChunk(tree, entries));
  };
  EXPECT_TRUE(BuildImage(73, 800, build) == BuildImage(73, 800, build));
}

TEST(GoldenDeterminismTest, InsertThenRepackIsByteIdentical) {
  auto build = [](RTree* tree, const std::vector<Entry>& entries) {
    for (const Entry& e : entries) {
      PICTDB_CHECK_OK(tree->Insert(e.mbr, e.AsRid()));
    }
    PICTDB_CHECK_OK(Repack(tree));
  };
  EXPECT_TRUE(BuildImage(74, 500, build) == BuildImage(74, 500, build));
}

}  // namespace
}  // namespace pictdb::pack
