// Negative-compile probe: a bare call to a Status-returning function
// with the result discarded. Because pictdb::Status is [[nodiscard]],
// this translation unit MUST fail to compile with -Werror (GCC:
// -Werror=unused-result; clang: -Werror=unused-result) — the
// configure-time harness in cmake/NegativeCompileTests.cmake verifies
// that it does, so a future accidental removal of the attribute breaks
// the build instead of silently re-legalising swallowed errors.

#include "common/status.h"

namespace {

pictdb::Status MightFail() {
  return pictdb::Status::IOError("synthetic failure");
}

}  // namespace

int main() {
  MightFail();  // discarded Status: must be rejected by the compiler
  return 0;
}
