// Negative-compile probe: reads and writes a GUARDED_BY field without
// holding its mutex. Under clang with -Wthread-safety -Werror this MUST
// fail to compile — the configure-time harness verifies that it does,
// proving the annotation layer (common/thread_annotations.h +
// common/mutex.h) is actually armed and not macro-expanding to nothing.
//
// On compilers without the analysis (GCC) the probe compiles clean and
// the harness skips the expectation.

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {  // missing MutexLock: a seeded lock-discipline bug
    ++value_;
  }

 private:
  pictdb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
