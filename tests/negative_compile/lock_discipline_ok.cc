// Positive control for the negative-compile harness: the same shape of
// code as guarded_by_violation.cc but with correct lock discipline (and
// a consumed Status). This MUST compile under the exact flags the
// negative probes are compiled with — otherwise a broken include path
// or flag typo would make the negative probes "fail" for the wrong
// reason and the harness would vacuously pass.

#include "common/mutex.h"
#include "common/status.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    pictdb::MutexLock lock(&mu_);
    ++value_;
  }

  int Get() const EXCLUDES(mu_) {
    pictdb::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable pictdb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

pictdb::Status MightFail() { return pictdb::Status::OK(); }

}  // namespace

int main() {
  Counter c;
  c.Increment();
  const pictdb::Status st = MightFail();
  return st.ok() && c.Get() == 1 ? 0 : 1;
}
