// Property sweeps over the bulk loaders: every builder × dataset ×
// branching factor must produce a structurally valid tree that answers
// window queries exactly like a brute-force scan, and packed trees must
// never have worse coverage than the dynamically-built tree on uniform
// data (the paper's central claim).

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/random.h"
#include "pack/hilbert.h"
#include "pack/pack.h"
#include "pack/str.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace pictdb::pack {
namespace {

using geom::Point;
using geom::Rect;
using rtree::Entry;
using rtree::RTree;
using rtree::RTreeOptions;
using storage::Rid;

enum class BuilderKind { kNN, kLowX, kStr, kHilbert, kNNHilbertOrder };
enum class DataKind { kUniform, kClustered, kSkewed, kRects };

Status Build(BuilderKind kind, RTree* tree, std::vector<Entry> items) {
  switch (kind) {
    case BuilderKind::kNN:
      return PackNearestNeighbor(tree, std::move(items));
    case BuilderKind::kLowX:
      return PackSortChunk(tree, std::move(items));
    case BuilderKind::kStr:
      return PackStr(tree, std::move(items));
    case BuilderKind::kHilbert:
      return PackHilbert(tree, std::move(items));
    case BuilderKind::kNNHilbertOrder: {
      PackOptions options;
      options.criterion = SortCriterion::kHilbert;
      return PackNearestNeighbor(tree, std::move(items), options);
    }
  }
  return Status::Internal("unreachable");
}

std::vector<Rect> MakeData(DataKind kind, Random* rng, size_t n) {
  const Rect frame = workload::PaperFrame();
  std::vector<Rect> out;
  switch (kind) {
    case DataKind::kUniform:
      for (const Point& p : workload::UniformPoints(rng, n, frame)) {
        out.push_back(Rect::FromPoint(p));
      }
      break;
    case DataKind::kClustered:
      for (const Point& p :
           workload::ClusteredPoints(rng, n, 6, 25.0, frame)) {
        out.push_back(Rect::FromPoint(p));
      }
      break;
    case DataKind::kSkewed:
      for (const Point& p : workload::SkewedPoints(rng, n, 2.5, frame)) {
        out.push_back(Rect::FromPoint(p));
      }
      break;
    case DataKind::kRects:
      out = workload::DisjointRegions(rng, n, frame);
      break;
  }
  return out;
}

class PackProperty
    : public ::testing::TestWithParam<
          std::tuple<BuilderKind, DataKind, size_t /*max_entries*/>> {};

TEST_P(PackProperty, ValidCompleteAndExact) {
  const auto [builder, data, max_entries] = GetParam();
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  RTreeOptions opts;
  opts.max_entries = max_entries;
  auto tree = RTree::Create(&pool, opts);
  ASSERT_TRUE(tree.ok());

  Random rng(9000 + static_cast<uint64_t>(builder) * 100 +
             static_cast<uint64_t>(data) * 10 + max_entries);
  const size_t n = 150 + rng.Uniform(150);
  const auto rects = MakeData(data, &rng, n);
  std::vector<Rid> rids;
  for (size_t i = 0; i < rects.size(); ++i) {
    rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
  }
  ASSERT_TRUE(Build(builder, &*tree, MakeLeafEntries(rects, rids)).ok());

  // Structure.
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->Size(), rects.size());

  // Packed trees should be near-minimal in node count: every level is
  // chunked into full nodes, so nodes <= twice the perfect count.
  auto node_count = tree->CountNodes();
  ASSERT_TRUE(node_count.ok());
  uint64_t perfect = 0;
  for (size_t remaining = rects.size(); remaining > 1;
       remaining = (remaining + max_entries - 1) / max_entries) {
    perfect += (remaining + max_entries - 1) / max_entries;
  }
  EXPECT_LE(*node_count, 2 * perfect + 1);

  // Exactness on window queries.
  const auto windows =
      workload::RandomWindowQueries(&rng, 15, 0.03, workload::PaperFrame());
  for (const Rect& w : windows) {
    auto hits = tree->SearchIntersects(w);
    ASSERT_TRUE(hits.ok());
    std::set<storage::PageId> got;
    for (const auto& h : *hits) got.insert(h.rid.page_id);
    std::set<storage::PageId> expected;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Intersects(w)) {
        expected.insert(static_cast<storage::PageId>(i));
      }
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackProperty,
    ::testing::Combine(
        ::testing::Values(BuilderKind::kNN, BuilderKind::kLowX,
                          BuilderKind::kStr, BuilderKind::kHilbert,
                          BuilderKind::kNNHilbertOrder),
        ::testing::Values(DataKind::kUniform, DataKind::kClustered,
                          DataKind::kSkewed, DataKind::kRects),
        ::testing::Values(size_t{4}, size_t{10})));

/// BulkLoad accepts ANY legal grouping function: random groupings with
/// random (valid) group sizes must still yield structurally valid,
/// complete, exactly-searchable trees.
class BulkLoadAnyGrouping : public ::testing::TestWithParam<int> {};

TEST_P(BulkLoadAnyGrouping, RandomGroupingsProduceValidTrees) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  RTreeOptions opts;
  opts.max_entries = 5;
  auto tree = RTree::Create(&pool, opts);
  ASSERT_TRUE(tree.ok());

  Random data_rng(GetParam());
  const auto pts =
      workload::UniformPoints(&data_rng, 120 + data_rng.Uniform(200),
                              workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
  }

  // Seeded RNG captured by the grouping lambda: shuffle, then cut into
  // random-size groups in [1, max].
  auto rng = std::make_shared<Random>(GetParam() * 7919);
  auto grouping = [rng](const std::vector<Entry>& items, size_t max) {
    std::vector<Entry> shuffled = items;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng->Uniform(i)]);
    }
    std::vector<std::vector<Entry>> groups;
    size_t i = 0;
    while (i < shuffled.size()) {
      const size_t take =
          std::min(shuffled.size() - i, 1 + rng->Uniform(max));
      groups.emplace_back(shuffled.begin() + i, shuffled.begin() + i + take);
      i += take;
    }
    // Guarantee progress: if everything landed in one group, split it.
    if (groups.size() == 1 && groups[0].size() > max) {
      std::vector<Entry> second(groups[0].begin() + max, groups[0].end());
      groups[0].resize(max);
      groups.push_back(std::move(second));
    }
    return groups;
  };

  ASSERT_TRUE(
      pack::BulkLoad(&*tree, MakeLeafEntries(pts, rids), grouping).ok());
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->Size(), pts.size());

  // Exactness spot check.
  Random query_rng(GetParam() + 1);
  const auto windows = workload::RandomWindowQueries(
      &query_rng, 10, 0.05, workload::PaperFrame());
  for (const Rect& w : windows) {
    auto hits = tree->SearchIntersects(w);
    ASSERT_TRUE(hits.ok());
    size_t expected = 0;
    for (const Point& p : pts) {
      if (w.Contains(p)) ++expected;
    }
    EXPECT_EQ(hits->size(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BulkLoadAnyGrouping, ::testing::Range(1, 9));

/// Size/shape claim sweep: across seeds, the packed tree is strictly
/// smaller (node count) and no deeper than the dynamically built tree,
/// and PACK's spatial grouping beats arbitrary (input-order) grouping on
/// coverage — the actual content of the paper's Figure 3.4 dead-space
/// argument. (The paper's absolute C columns are not geometrically
/// attainable for full nodes of uniform points; see EXPERIMENTS.md.)
class CoverageClaim : public ::testing::TestWithParam<int> {};

TEST_P(CoverageClaim, PackSmallerShallowterAndTighterThanNaive) {
  storage::InMemoryDiskManager disk(256);
  storage::BufferPool pool(&disk, 8192);
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;

  Random rng(GetParam());
  const auto pts =
      workload::UniformPoints(&rng, 300, workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
  }

  auto packed = RTree::Create(&pool, opts);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(
      PackNearestNeighbor(&*packed, MakeLeafEntries(pts, rids)).ok());

  auto dynamic = RTree::Create(&pool, opts);
  ASSERT_TRUE(dynamic.ok());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(dynamic->Insert(Rect::FromPoint(pts[i]), rids[i]).ok());
  }

  auto pq = rtree::MeasureTree(*packed);
  auto dq = rtree::MeasureTree(*dynamic);
  ASSERT_TRUE(pq.ok() && dq.ok());
  EXPECT_LT(pq->nodes, dq->nodes) << "seed " << GetParam();
  EXPECT_LE(pq->depth, dq->depth) << "seed " << GetParam();

  // Spatial grouping must beat arbitrary grouping: bulk-load the same
  // points chunked in (shuffled) input order and compare coverage.
  auto naive = RTree::Create(&pool, opts);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(pack::BulkLoad(
                  &*naive, MakeLeafEntries(pts, rids),
                  [](const std::vector<Entry>& items, size_t max) {
                    std::vector<std::vector<Entry>> groups;
                    for (size_t i = 0; i < items.size(); i += max) {
                      const size_t end = std::min(items.size(), i + max);
                      groups.emplace_back(items.begin() + i,
                                          items.begin() + end);
                    }
                    return groups;
                  })
                  .ok());
  auto nq = rtree::MeasureTree(*naive);
  ASSERT_TRUE(nq.ok());
  EXPECT_LT(pq->coverage, nq->coverage / 3) << "seed " << GetParam();
  EXPECT_LT(pq->overlap, nq->overlap / 3) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageClaim, ::testing::Range(1, 11));

}  // namespace
}  // namespace pictdb::pack
