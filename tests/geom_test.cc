#include <gtest/gtest.h>

#include "geom/geometry.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "geom/segment.h"
#include "geom/transform.h"
#include "geom/wkt.h"

namespace pictdb::geom {
namespace {

// --- Rect ------------------------------------------------------------------

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Width(), 0.0);
}

TEST(RectTest, NormalizesCorners) {
  const Rect r(10, 20, 2, 4);
  EXPECT_EQ(r.lo.x, 2);
  EXPECT_EQ(r.lo.y, 4);
  EXPECT_EQ(r.hi.x, 10);
  EXPECT_EQ(r.hi.y, 20);
}

TEST(RectTest, AreaMarginCenter) {
  const Rect r(0, 0, 4, 3);
  EXPECT_EQ(r.Area(), 12.0);
  EXPECT_EQ(r.Margin(), 7.0);
  EXPECT_EQ(r.Center(), (Point{2.0, 1.5}));
}

TEST(RectTest, FromCenterHalfExtentMatchesPaperSyntax) {
  // The paper's {4±4, 11±9} window.
  const Rect r = Rect::FromCenterHalfExtent(4, 4, 11, 9);
  EXPECT_EQ(r, Rect(0, 2, 8, 20));
}

TEST(RectTest, IntersectsSharedEdgeCounts) {
  EXPECT_TRUE(Rect(0, 0, 1, 1).Intersects(Rect(1, 0, 2, 1)));
  EXPECT_FALSE(Rect(0, 0, 1, 1).IntersectsInterior(Rect(1, 0, 2, 1)));
  EXPECT_FALSE(Rect(0, 0, 1, 1).Intersects(Rect(1.01, 0, 2, 1)));
}

TEST(RectTest, ContainsRectAndPoint) {
  const Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Rect(2, 2, 8, 8)));
  EXPECT_TRUE(outer.Contains(outer));  // boundaries may coincide
  EXPECT_FALSE(outer.Contains(Rect(2, 2, 11, 8)));
  EXPECT_TRUE(outer.Contains(Point{0, 0}));
  EXPECT_FALSE(outer.Contains(Point{10.5, 3}));
}

TEST(RectTest, OverlapsExcludesContainmentAndTouching) {
  const Rect a(0, 0, 4, 4);
  EXPECT_TRUE(a.Overlaps(Rect(2, 2, 6, 6)));
  EXPECT_FALSE(a.Overlaps(Rect(1, 1, 2, 2)));  // contained
  EXPECT_FALSE(a.Overlaps(Rect(4, 0, 6, 4)));  // touching edge only
  EXPECT_FALSE(a.Overlaps(Rect(9, 9, 10, 10)));
}

TEST(RectTest, DisjointIsNegationOfIntersects) {
  const Rect a(0, 0, 1, 1);
  const Rect b(2, 2, 3, 3);
  EXPECT_TRUE(a.Disjoint(b));
  EXPECT_FALSE(a.Disjoint(Rect(0.5, 0.5, 3, 3)));
}

TEST(RectTest, ExpandToInclude) {
  Rect r;
  r.ExpandToInclude(Point{3, 4});
  EXPECT_EQ(r, Rect(3, 4, 3, 4));
  r.ExpandToInclude(Rect(0, 0, 1, 1));
  EXPECT_EQ(r, Rect(0, 0, 3, 4));
  r.ExpandToInclude(Rect());  // empty: no-op
  EXPECT_EQ(r, Rect(0, 0, 3, 4));
}

TEST(RectTest, UnionAndIntersection) {
  const Rect a(0, 0, 2, 2);
  const Rect b(1, 1, 3, 3);
  EXPECT_EQ(UnionOf(a, b), Rect(0, 0, 3, 3));
  EXPECT_EQ(IntersectionOf(a, b), Rect(1, 1, 2, 2));
  EXPECT_TRUE(IntersectionOf(a, Rect(5, 5, 6, 6)).IsEmpty());
}

TEST(RectTest, Enlargement) {
  const Rect base(0, 0, 2, 2);
  EXPECT_EQ(Enlargement(base, Rect(1, 1, 2, 2)), 0.0);
  EXPECT_EQ(Enlargement(base, Rect(0, 0, 4, 2)), 4.0);
}

TEST(RectTest, MinDistance) {
  const Rect a(0, 0, 1, 1);
  EXPECT_EQ(MinDistance(a, Rect(0.5, 0.5, 2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(a, Rect(4, 1, 5, 2)), 3.0);   // pure x gap
  EXPECT_DOUBLE_EQ(MinDistance(a, Rect(4, 5, 6, 7)), 5.0);   // 3-4-5 diagonal
  EXPECT_DOUBLE_EQ(MinDistance(a, Point{1, 3}), 2.0);
  EXPECT_EQ(MinDistance(a, Point{0.5, 0.5}), 0.0);
}

// --- Segment ----------------------------------------------------------------

TEST(SegmentTest, MbrAndLength) {
  const Segment s{{0, 0}, {3, 4}};
  EXPECT_EQ(s.Mbr(), Rect(0, 0, 3, 4));
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
}

TEST(SegmentTest, ProperCrossing) {
  EXPECT_TRUE(Intersects(Segment{{0, 0}, {2, 2}}, Segment{{0, 2}, {2, 0}}));
  EXPECT_FALSE(Intersects(Segment{{0, 0}, {1, 1}}, Segment{{2, 0}, {3, 1}}));
}

TEST(SegmentTest, TouchingEndpointsIntersect) {
  EXPECT_TRUE(Intersects(Segment{{0, 0}, {1, 1}}, Segment{{1, 1}, {2, 0}}));
}

TEST(SegmentTest, CollinearOverlapIntersects) {
  EXPECT_TRUE(Intersects(Segment{{0, 0}, {2, 0}}, Segment{{1, 0}, {3, 0}}));
  EXPECT_FALSE(Intersects(Segment{{0, 0}, {1, 0}}, Segment{{2, 0}, {3, 0}}));
}

TEST(SegmentTest, ParallelNonIntersecting) {
  EXPECT_FALSE(Intersects(Segment{{0, 0}, {2, 0}}, Segment{{0, 1}, {2, 1}}));
}

TEST(SegmentTest, SegmentRectIntersection) {
  const Rect r(0, 0, 2, 2);
  // Endpoint inside.
  EXPECT_TRUE(Intersects(Segment{{1, 1}, {5, 5}}, r));
  // Passes through without endpoints inside.
  EXPECT_TRUE(Intersects(Segment{{-1, 1}, {3, 1}}, r));
  // Diagonal miss.
  EXPECT_FALSE(Intersects(Segment{{3, 0}, {5, 2}}, r));
}

TEST(SegmentTest, ContainedIn) {
  const Rect r(0, 0, 2, 2);
  EXPECT_TRUE(ContainedIn(Segment{{0.5, 0.5}, {1.5, 1.5}}, r));
  EXPECT_FALSE(ContainedIn(Segment{{0.5, 0.5}, {2.5, 1.5}}, r));
}

TEST(SegmentTest, PointDistance) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(Distance(s, Point{5, 3}), 3.0);   // interior projection
  EXPECT_DOUBLE_EQ(Distance(s, Point{-3, 4}), 5.0);  // clamps to endpoint
  EXPECT_EQ(Distance(s, Point{7, 0}), 0.0);
}

TEST(SegmentTest, DegenerateSegmentDistance) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(Distance(s, Point{4, 5}), 5.0);
}

// --- Polygon ----------------------------------------------------------------

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(PolygonTest, AreaAndPerimeter) {
  EXPECT_DOUBLE_EQ(UnitSquare().Area(), 1.0);
  EXPECT_DOUBLE_EQ(UnitSquare().Perimeter(), 4.0);
  // Clockwise ring: negative signed area, same absolute area.
  const Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_LT(cw.SignedArea(), 0.0);
  EXPECT_DOUBLE_EQ(cw.Area(), 1.0);
}

TEST(PolygonTest, TriangleArea) {
  const Polygon tri({{0, 0}, {4, 0}, {0, 3}});
  EXPECT_DOUBLE_EQ(tri.Area(), 6.0);
}

TEST(PolygonTest, Mbr) {
  const Polygon tri({{0, 1}, {4, 0}, {2, 5}});
  EXPECT_EQ(tri.Mbr(), Rect(0, 0, 4, 5));
}

TEST(PolygonTest, ContainsInteriorBoundaryExterior) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.Contains(Point{0.5, 0.5}));
  EXPECT_TRUE(sq.Contains(Point{0, 0.5}));   // boundary
  EXPECT_TRUE(sq.Contains(Point{1, 1}));     // vertex
  EXPECT_FALSE(sq.Contains(Point{1.5, 0.5}));
  EXPECT_FALSE(sq.Contains(Point{-0.1, 0}));
}

TEST(PolygonTest, ContainsConcave) {
  // A "C" shape: the notch is outside.
  const Polygon c({{0, 0}, {4, 0}, {4, 1}, {1, 1}, {1, 3},
                   {4, 3}, {4, 4}, {0, 4}});
  EXPECT_TRUE(c.Contains(Point{0.5, 2}));
  EXPECT_FALSE(c.Contains(Point{2.5, 2}));  // inside the notch
}

TEST(PolygonTest, PolygonPolygonIntersects) {
  const Polygon a = UnitSquare();
  const Polygon b({{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {0.5, 1.5}});
  const Polygon c({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Intersects(a, c));
  // One fully inside the other (no edge crossings).
  const Polygon inner({{0.25, 0.25}, {0.75, 0.25}, {0.75, 0.75},
                       {0.25, 0.75}});
  EXPECT_TRUE(Intersects(a, inner));
}

TEST(PolygonTest, PolygonRectIntersects) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(Intersects(sq, Rect(0.5, 0.5, 2, 2)));
  EXPECT_FALSE(Intersects(sq, Rect(2, 2, 3, 3)));
  // Rect completely inside the polygon.
  EXPECT_TRUE(Intersects(sq, Rect(0.4, 0.4, 0.6, 0.6)));
  // Polygon completely inside the rect.
  EXPECT_TRUE(Intersects(sq, Rect(-1, -1, 2, 2)));
}

TEST(PolygonTest, ContainedInRect) {
  EXPECT_TRUE(ContainedIn(UnitSquare(), Rect(0, 0, 1, 1)));
  EXPECT_TRUE(ContainedIn(UnitSquare(), Rect(-1, -1, 2, 2)));
  EXPECT_FALSE(ContainedIn(UnitSquare(), Rect(0.5, 0, 2, 2)));
}

TEST(PolygonTest, PolygonContainsPolygon) {
  const Polygon big({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Polygon small({{2, 2}, {4, 2}, {4, 4}, {2, 4}});
  EXPECT_TRUE(Contains(big, small));
  EXPECT_FALSE(Contains(small, big));
  const Polygon crossing({{8, 8}, {12, 8}, {12, 12}, {8, 12}});
  EXPECT_FALSE(Contains(big, crossing));
}

// --- Geometry variant + PSQL operators --------------------------------------

TEST(GeometryTest, TypesAndMbr) {
  EXPECT_TRUE(Geometry(Point{1, 2}).is_point());
  EXPECT_TRUE(Geometry(Segment{{0, 0}, {1, 1}}).is_segment());
  EXPECT_TRUE(Geometry(Rect(0, 0, 1, 1)).is_rect());
  EXPECT_TRUE(Geometry(UnitSquare()).is_region());
  EXPECT_EQ(Geometry(Point{1, 2}).Mbr(), Rect(1, 2, 1, 2));
  EXPECT_EQ(Geometry(UnitSquare()).Mbr(), Rect(0, 0, 1, 1));
}

TEST(GeometryTest, AreaFunction) {
  EXPECT_EQ(Geometry(Point{1, 2}).Area(), 0.0);
  EXPECT_EQ(Geometry(Segment{{0, 0}, {3, 4}}).Area(), 0.0);
  EXPECT_EQ(Geometry(Rect(0, 0, 2, 3)).Area(), 6.0);
  EXPECT_EQ(Geometry(UnitSquare()).Area(), 1.0);
}

TEST(GeometryTest, CoveredByWindow) {
  const Geometry window(Rect(0, 0, 10, 10));
  EXPECT_TRUE(CoveredBy(Geometry(Point{5, 5}), window));
  EXPECT_FALSE(CoveredBy(Geometry(Point{15, 5}), window));
  EXPECT_TRUE(CoveredBy(Geometry(Segment{{1, 1}, {9, 9}}), window));
  EXPECT_FALSE(CoveredBy(Geometry(Segment{{1, 1}, {11, 9}}), window));
  EXPECT_TRUE(CoveredBy(Geometry(Rect(2, 2, 8, 8)), window));
  EXPECT_TRUE(CoveredBy(Geometry(UnitSquare()), window));
}

TEST(GeometryTest, CoveredByRegion) {
  const Geometry region(Polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  EXPECT_TRUE(CoveredBy(Geometry(Point{5, 5}), region));
  EXPECT_TRUE(CoveredBy(Geometry(Rect(1, 1, 3, 3)), region));
  EXPECT_FALSE(CoveredBy(Geometry(Rect(8, 8, 12, 12)), region));
}

TEST(GeometryTest, CoveringIsInverse) {
  const Geometry window(Rect(0, 0, 10, 10));
  const Geometry p(Point{5, 5});
  EXPECT_TRUE(Covering(window, p));
  EXPECT_FALSE(Covering(p, window));
}

TEST(GeometryTest, OverlappingSymmetric) {
  const Geometry a(Rect(0, 0, 4, 4));
  const Geometry b(Rect(2, 2, 6, 6));
  const Geometry c(Rect(5, 5, 6, 6));
  EXPECT_TRUE(Overlapping(a, b));
  EXPECT_TRUE(Overlapping(b, a));
  EXPECT_FALSE(Overlapping(a, c));
  EXPECT_TRUE(Disjoined(a, c));
  // Mixed types both directions.
  const Geometry p(Point{3, 3});
  EXPECT_TRUE(Overlapping(p, a));
  EXPECT_TRUE(Overlapping(a, p));
}

TEST(GeometryTest, SegmentRegionOverlap) {
  const Geometry region(Polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}}));
  EXPECT_TRUE(Overlapping(Geometry(Segment{{-1, 2}, {5, 2}}), region));
  EXPECT_FALSE(Overlapping(Geometry(Segment{{5, 5}, {6, 6}}), region));
}

TEST(GeometryTest, ZeroAreaCovers) {
  const Geometry seg(Segment{{0, 0}, {4, 4}});
  EXPECT_TRUE(CoveredBy(Geometry(Point{2, 2}), seg));
  EXPECT_FALSE(CoveredBy(Geometry(Point{2, 3}), seg));
  EXPECT_TRUE(CoveredBy(Geometry(Segment{{1, 1}, {2, 2}}), seg));
  EXPECT_TRUE(CoveredBy(Geometry(Point{1, 1}), Geometry(Point{1, 1})));
  EXPECT_FALSE(CoveredBy(Geometry(Rect(0, 0, 1, 1)), seg));
}

TEST(GeometryTest, TypeNames) {
  EXPECT_EQ(TypeName(GeometryType::kPoint), "point");
  EXPECT_EQ(TypeName(GeometryType::kSegment), "segment");
  EXPECT_EQ(TypeName(GeometryType::kRect), "rect");
  EXPECT_EQ(TypeName(GeometryType::kRegion), "region");
}

// --- Transform / Lemma 3.1 ---------------------------------------------------

TEST(TransformTest, RotationPreservesDistances) {
  const Transform rot = Transform::Rotation(0.7);
  const Point a{1, 2}, b{5, -3};
  EXPECT_NEAR(Distance(rot.Apply(a), rot.Apply(b)), Distance(a, b), 1e-12);
}

TEST(TransformTest, QuarterTurn) {
  const Transform rot = Transform::Rotation(M_PI / 2);
  const Point p = rot.Apply(Point{1, 0});
  EXPECT_NEAR(p.x, 0, 1e-12);
  EXPECT_NEAR(p.y, 1, 1e-12);
}

TEST(TransformTest, ComposeAndInverse) {
  const Transform t =
      Transform::Rotation(0.3).Then(Transform::Translation(5, -2));
  const Point p{3, 4};
  const Point q = t.Apply(p);
  const Point back = t.Inverse().Apply(q);
  EXPECT_NEAR(back.x, p.x, 1e-10);
  EXPECT_NEAR(back.y, p.y, 1e-10);
}

TEST(TransformTest, ScaleTransform) {
  const Point p = Transform::Scale(3).Apply(Point{2, -1});
  EXPECT_EQ(p.x, 6);
  EXPECT_EQ(p.y, -3);
}

TEST(TransformTest, AllXDistinct) {
  EXPECT_TRUE(AllXDistinct({{0, 0}, {1, 5}, {2, 2}}));
  EXPECT_FALSE(AllXDistinct({{1, 0}, {1, 5}, {2, 2}}));
}

TEST(TransformTest, FindDistinctXRotationOnVerticalLine) {
  // All points share x; any nonzero rotation separates them.
  const std::vector<Point> pts = {{1, 0}, {1, 1}, {1, 2}, {1, 3}};
  const double alpha = FindDistinctXRotation(pts);
  const auto rotated = Transform::Rotation(alpha).Apply(pts);
  EXPECT_TRUE(AllXDistinct(rotated));
}

TEST(TransformTest, FindDistinctXRotationOnGrid) {
  // Lattice points: many coincident x and many "bad" pair directions.
  std::vector<Point> pts;
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 6; ++y) pts.push_back(Point{double(x), double(y)});
  }
  const double alpha = FindDistinctXRotation(pts);
  const auto rotated = Transform::Rotation(alpha).Apply(pts);
  EXPECT_TRUE(AllXDistinct(rotated));
}

// --- WKT ----------------------------------------------------------------------

TEST(WktTest, ParsePoint) {
  const auto g = ParseWkt("POINT(3 4)");
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->is_point());
  EXPECT_EQ(g->point(), (Point{3, 4}));
}

TEST(WktTest, ParseSegmentAndLinestring) {
  const auto g = ParseWkt("SEGMENT(0 0, 2 3)");
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->is_segment());
  const auto g2 = ParseWkt("LINESTRING(0 0, 2 3)");
  ASSERT_TRUE(g2.ok());
  EXPECT_TRUE(g2->is_segment());
}

TEST(WktTest, ParseBox) {
  const auto g = ParseWkt("BOX(0 0, 5 5)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->rect(), Rect(0, 0, 5, 5));
}

TEST(WktTest, ParsePolygonDropsClosingVertex) {
  const auto g = ParseWkt("POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->region().size(), 4u);
  EXPECT_DOUBLE_EQ(g->region().Area(), 16.0);
}

TEST(WktTest, ParseNegativeAndFractional) {
  const auto g = ParseWkt("POINT(-74.006 40.7128)");
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->point().x, -74.006, 1e-9);
}

TEST(WktTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseWkt("").ok());
  EXPECT_FALSE(ParseWkt("CIRCLE(0 0, 1)").ok());
  EXPECT_FALSE(ParseWkt("POINT(1)").ok());
  EXPECT_FALSE(ParseWkt("POINT(1 2").ok());
  EXPECT_FALSE(ParseWkt("POINT(1 2) extra").ok());
  EXPECT_FALSE(ParseWkt("SEGMENT(0 0, 1 1, 2 2)").ok());
  EXPECT_FALSE(ParseWkt("POLYGON((0 0, 1 1))").ok());
}

TEST(WktTest, RoundTripIsExactForFullPrecisionDoubles) {
  // WKT doubles back tuple storage, so serialization must not round.
  const Geometry g(Point{-123.0351, 45.52306112});
  const auto back = ParseWkt(ToWkt(g));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->point().x, -123.0351);
  EXPECT_EQ(back->point().y, 45.52306112);
  const Geometry tiny(Point{1.0000000000000002, 1e-300});
  const auto tiny_back = ParseWkt(ToWkt(tiny));
  ASSERT_TRUE(tiny_back.ok());
  EXPECT_EQ(tiny_back->point().x, 1.0000000000000002);
  EXPECT_EQ(tiny_back->point().y, 1e-300);
}

TEST(WktTest, RoundTripAllTypes) {
  const char* inputs[] = {
      "POINT(3 4)",
      "SEGMENT(0 0, 2 3)",
      "BOX(0 0, 5 5)",
      "POLYGON((0 0, 4 0, 4 4))",
  };
  for (const char* in : inputs) {
    const auto g = ParseWkt(in);
    ASSERT_TRUE(g.ok()) << in;
    const auto again = ParseWkt(ToWkt(*g));
    ASSERT_TRUE(again.ok()) << ToWkt(*g);
    EXPECT_EQ(again->Mbr(), g->Mbr());
    EXPECT_EQ(again->type(), g->type());
  }
}

}  // namespace
}  // namespace pictdb::geom
