// order by / limit — the SQL-base features PSQL inherits.

#include <gtest/gtest.h>

#include "psql/executor.h"
#include "rel/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/us_catalog.h"
#include "workload/us_cities.h"

namespace pictdb::psql {
namespace {

class PsqlOrderByTest : public ::testing::Test {
 protected:
  PsqlOrderByTest() : disk_(1024), pool_(&disk_, 1 << 14),
                      catalog_(&pool_) {
    PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog_, 4));
  }

  ResultSet MustQuery(const std::string& text) {
    Executor exec(&catalog_);
    auto result = exec.Query(text);
    PICTDB_CHECK(result.ok()) << text << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
  rel::Catalog catalog_;
};

TEST_F(PsqlOrderByTest, AscendingNumeric) {
  const ResultSet rs = MustQuery(
      "select city, population from cities order by population");
  ASSERT_GT(rs.rows.size(), 2u);
  for (size_t i = 1; i < rs.rows.size(); ++i) {
    EXPECT_LE(rs.rows[i - 1][1].as_int(), rs.rows[i][1].as_int());
  }
}

TEST_F(PsqlOrderByTest, DescendingWithLimit) {
  const ResultSet rs = MustQuery(
      "select city, population from cities "
      "order by population desc limit 3");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].ToString(), "New York");
  EXPECT_EQ(rs.rows[1][0].ToString(), "Los Angeles");
  EXPECT_EQ(rs.rows[2][0].ToString(), "Chicago");
}

TEST_F(PsqlOrderByTest, StringOrder) {
  const ResultSet rs =
      MustQuery("select city from cities order by city limit 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  std::string smallest = "zzz";
  for (const auto& c : workload::ContinentalUsCities()) {
    smallest = std::min(smallest, std::string(c.name));
  }
  EXPECT_EQ(rs.rows[0][0].ToString(), smallest);
}

TEST_F(PsqlOrderByTest, MultipleKeys) {
  const ResultSet rs = MustQuery(
      "select state, city from cities order by state, city desc");
  for (size_t i = 1; i < rs.rows.size(); ++i) {
    const std::string prev_state = rs.rows[i - 1][0].ToString();
    const std::string cur_state = rs.rows[i][0].ToString();
    EXPECT_LE(prev_state, cur_state);
    if (prev_state == cur_state) {
      EXPECT_GE(rs.rows[i - 1][1].ToString(), rs.rows[i][1].ToString());
    }
  }
}

TEST_F(PsqlOrderByTest, OrderByFunctionOfGeometry) {
  const ResultSet rs = MustQuery(
      "select lake, area(loc) from lakes order by area(loc) desc limit 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_GE(rs.rows[0][1].as_double(), rs.rows[1][1].as_double());
  EXPECT_EQ(rs.rows[0][0].ToString(), "Lake Superior");
}

TEST_F(PsqlOrderByTest, OrderByUnprojectedColumn) {
  // The key need not appear in the targets.
  const ResultSet rs = MustQuery(
      "select city from cities order by population desc limit 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].ToString(), "New York");
}

TEST_F(PsqlOrderByTest, CombinesWithSpatialSearch) {
  const ResultSet rs = MustQuery(
      "select city, population, loc from cities on us-map "
      "at loc covered-by {-77 +- 8, 39 +- 4} "
      "order by population desc limit 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].ToString(), "New York");
  // Pictorial output follows the sorted+limited rows.
  EXPECT_EQ(rs.pictorial.size(), 2u);
}

TEST_F(PsqlOrderByTest, LimitZeroAndOversized) {
  EXPECT_TRUE(
      MustQuery("select city from cities limit 0").rows.empty());
  const ResultSet all =
      MustQuery("select city from cities limit 1000000");
  EXPECT_EQ(all.rows.size(), workload::ContinentalUsCities().size());
}

TEST_F(PsqlOrderByTest, LimitWithoutOrder) {
  const ResultSet rs = MustQuery("select city from cities limit 5");
  EXPECT_EQ(rs.rows.size(), 5u);
}

TEST_F(PsqlOrderByTest, Errors) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Query("select city from cities order population").ok());
  EXPECT_FALSE(exec.Query("select city from cities limit -3").ok());
  EXPECT_FALSE(exec.Query("select city from cities limit 2.5").ok());
  // Incomparable order key (string vs geometry across rows impossible
  // here, but ordering by a geometry column is not comparable at all).
  EXPECT_FALSE(exec.Query("select city from cities order by loc").ok());
  // Aggregates cannot be ordered.
  EXPECT_FALSE(
      exec.Query("select count(*) from cities order by city").ok());
}

}  // namespace
}  // namespace pictdb::psql
