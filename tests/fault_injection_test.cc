// Fault-tolerance tests: injected disk faults (transient errors, torn
// writes, bit flips, dead sectors) against the page-checksum + retry +
// degraded-search + scrub-and-repack machinery. All fault sequences are
// seeded, so failures reproduce.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "pack/pack.h"
#include "pack/repack.h"
#include "rtree/cursor.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/quarantine.h"
#include "workload/generators.h"

namespace pictdb {
namespace {

using geom::Point;
using geom::Rect;
using rtree::RTree;
using rtree::SearchOptions;
using storage::BufferPool;
using storage::BufferPoolOptions;
using storage::FaultInjectionDiskManager;
using storage::FaultPlan;
using storage::InMemoryDiskManager;
using storage::PageId;

/// Backoff sleeps disabled: fault tests retry a lot and must stay fast.
BufferPoolOptions FastRetryOptions(int retries = 8) {
  BufferPoolOptions opts;
  opts.max_read_retries = retries;
  opts.max_write_retries = retries;
  opts.retry_backoff_base = std::chrono::microseconds(0);
  return opts;
}

/// PACK-build a tree over `n` uniform points (rid i = {page i, slot 0}).
std::unique_ptr<RTree> BuildTree(BufferPool* pool, size_t n,
                                 std::vector<Point>* points) {
  Random rng(42);
  *points = workload::UniformPoints(&rng, n, workload::PaperFrame());
  std::vector<storage::Rid> rids;
  rids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rids.push_back(storage::Rid{static_cast<PageId>(i), 0});
  }
  auto tree = RTree::Create(pool);
  PICTDB_CHECK(tree.ok());
  auto owned = std::make_unique<RTree>(std::move(tree).value());
  PICTDB_CHECK_OK(
      pack::PackNearestNeighbor(owned.get(), pack::MakeLeafEntries(*points, rids)));
  return owned;
}

std::set<PageId> OracleRids(const std::vector<Point>& points,
                            const Rect& window) {
  std::set<PageId> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (window.Contains(points[i])) out.insert(static_cast<PageId>(i));
  }
  return out;
}

std::set<PageId> HitRids(const std::vector<rtree::LeafHit>& hits) {
  std::set<PageId> out;
  for (const auto& h : hits) out.insert(h.rid.page_id);
  return out;
}

// --- Checksum round trip through the buffer pool ---------------------------

TEST(FaultInjectionTest, ChecksumSurvivesEvictionRoundTrip) {
  InMemoryDiskManager disk(256);
  BufferPool pool(&disk, /*capacity=*/2);
  const uint32_t usable = pool.page_size();
  ASSERT_EQ(usable, 256u - storage::kPageTrailerSize);

  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {  // 4x capacity: forces evict+reload
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    std::memset(guard->mutable_data(), 0x40 + i, usable);
    ids.push_back(guard->id());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    auto guard = pool.FetchPage(ids[i]);
    ASSERT_TRUE(guard.ok());
    for (uint32_t b = 0; b < usable; ++b) {
      ASSERT_EQ(guard->data()[b], static_cast<char>(0x40 + i));
    }
  }
  EXPECT_EQ(pool.StatsSnapshot().checksum_failures, 0u);
}

// --- Torn writes -----------------------------------------------------------

TEST(FaultInjectionTest, TornWriteIsDetectedByChecksum) {
  constexpr uint32_t kPageSize = 256;
  InMemoryDiskManager base(kPageSize);
  FaultPlan plan;
  plan.torn_write_rate = 1.0;  // every write persists only a prefix
  FaultInjectionDiskManager faulty(&base, plan);

  std::vector<char> page(kPageSize);
  std::vector<char> readback(kPageSize);
  int detected = 0;
  constexpr int kPages = 50;
  for (int i = 0; i < kPages; ++i) {
    const PageId id = faulty.AllocatePage();
    for (uint32_t b = 0; b + storage::kPageTrailerSize < kPageSize; ++b) {
      page[b] = static_cast<char>(0xA0 + i + b);
    }
    storage::StampPageTrailer(page.data(), kPageSize);
    ASSERT_TRUE(faulty.WritePage(id, page.data()).ok());  // lies: torn
    ASSERT_TRUE(faulty.ReadPage(id, readback.data()).ok());
    const Status st =
        storage::VerifyPageTrailer(readback.data(), kPageSize, id);
    if (!st.ok()) {
      EXPECT_TRUE(st.IsDataLoss());
      ++detected;
    }
  }
  EXPECT_EQ(faulty.fault_stats().torn_writes, static_cast<uint64_t>(kPages));
  // A torn write can only sneak past the CRC if the unwritten tail
  // happens to byte-match; with distinct content that is essentially
  // impossible.
  EXPECT_GE(detected, kPages - 1);
}

// --- Transient faults absorbed by retry ------------------------------------

TEST(FaultInjectionTest, TransientReadErrorsAreAbsorbedByRetry) {
  InMemoryDiskManager base(512);
  FaultPlan plan;
  plan.seed = 99;
  plan.transient_read_error_rate = 0.25;
  FaultInjectionDiskManager faulty(&base, plan);
  BufferPool pool(&faulty, /*capacity=*/16, /*shards=*/1,
                  FastRetryOptions());

  std::vector<Point> points;
  auto tree = BuildTree(&pool, 1000, &points);

  const Rect everything = Rect{{-1e9, -1e9}, {1e9, 1e9}};
  auto hits = tree->SearchIntersects(everything);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), points.size());

  EXPECT_GT(faulty.fault_stats().transient_read_errors, 0u);
  EXPECT_GT(pool.StatsSnapshot().read_retries, 0u);
}

TEST(FaultInjectionTest, TransientBitFlipsAreAbsorbedByChecksumRetry) {
  InMemoryDiskManager base(512);
  FaultPlan plan;
  plan.seed = 7;
  plan.read_bit_flip_rate = 0.2;
  FaultInjectionDiskManager faulty(&base, plan);
  BufferPool pool(&faulty, /*capacity=*/16, /*shards=*/1,
                  FastRetryOptions());

  std::vector<Point> points;
  auto tree = BuildTree(&pool, 1000, &points);

  const Rect everything = Rect{{-1e9, -1e9}, {1e9, 1e9}};
  auto hits = tree->SearchIntersects(everything);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), points.size());

  EXPECT_GT(faulty.fault_stats().bit_flips, 0u);
  EXPECT_GT(pool.StatsSnapshot().checksum_failures, 0u);
  EXPECT_GT(pool.StatsSnapshot().read_retries, 0u);
}

// --- Permanent faults ------------------------------------------------------

/// Fixture for dead-sector scenarios: a packed tree reopened through a
/// cold cache so every node read hits the (faulty) disk.
class PermanentFaultTest : public ::testing::Test {
 protected:
  static constexpr size_t kObjects = 2000;

  PermanentFaultTest() : base_(512), faulty_(&base_, FaultPlan{}) {
    storage::PageId meta;
    {
      BufferPool build_pool(&faulty_, 256, 1, FastRetryOptions(2));
      auto tree = BuildTree(&build_pool, kObjects, &points_);
      meta = tree->meta_page();
      // build_pool flushes everything on destruction.
    }
    pool_ = std::make_unique<BufferPool>(&faulty_, 256, 1,
                                         FastRetryOptions(2));
    auto reopened = RTree::Open(pool_.get(), meta);
    PICTDB_CHECK(reopened.ok());
    tree_ = std::make_unique<RTree>(std::move(reopened).value());
  }

  /// Page id of the root's first child (an internal subtree with a few
  /// hundred points under it).
  PageId FirstChildOfRoot() {
    PICTDB_CHECK(tree_->Height() >= 2);
    auto root = tree_->ReadNodePage(tree_->root());
    PICTDB_CHECK(root.ok());
    return root->entries.front().AsChild();
  }

  InMemoryDiskManager base_;
  FaultInjectionDiskManager faulty_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<RTree> tree_;
  std::vector<Point> points_;
  const Rect everything_ = Rect{{-1e9, -1e9}, {1e9, 1e9}};
};

TEST_F(PermanentFaultTest, PermanentErrorPropagatesAsDataLoss) {
  faulty_.AddPermanentReadFault(FirstChildOfRoot());
  auto hits = tree_->SearchIntersects(everything_);
  ASSERT_FALSE(hits.ok());
  EXPECT_TRUE(hits.status().IsDataLoss()) << hits.status().ToString();
  EXPECT_GT(faulty_.fault_stats().permanent_read_errors, 0u);
}

TEST_F(PermanentFaultTest, DegradedSearchReturnsPartialFlaggedResults) {
  const PageId bad = FirstChildOfRoot();
  faulty_.AddPermanentReadFault(bad);

  storage::PageQuarantine quarantine;
  SearchOptions options;
  options.degraded_ok = true;
  options.quarantine = &quarantine;
  rtree::SearchStats stats;
  auto hits = tree_->SearchIntersects(everything_, &stats, options);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();

  EXPECT_TRUE(stats.degraded);
  EXPECT_GE(stats.skipped_subtrees, 1u);
  EXPECT_TRUE(quarantine.Contains(bad));

  // Partial, and a strict subset of the oracle: no wrong answers.
  const std::set<PageId> oracle = OracleRids(points_, everything_);
  const std::set<PageId> got = HitRids(*hits);
  EXPECT_LT(got.size(), oracle.size());
  EXPECT_GT(got.size(), 0u);
  for (const PageId rid : got) EXPECT_TRUE(oracle.count(rid) > 0);
}

TEST_F(PermanentFaultTest, DegradedCursorSkipsBadSubtrees) {
  const PageId bad = FirstChildOfRoot();
  faulty_.AddPermanentReadFault(bad);

  SearchOptions options;
  options.degraded_ok = true;
  rtree::SearchCursor cursor =
      rtree::SearchCursor::Intersects(tree_.get(), everything_, options);
  size_t streamed = 0;
  for (;;) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    ++streamed;
  }
  EXPECT_TRUE(cursor.stats().degraded);
  EXPECT_GE(cursor.stats().skipped_subtrees, 1u);
  EXPECT_LT(streamed, points_.size());
  EXPECT_GT(streamed, 0u);
}

TEST_F(PermanentFaultTest, DegradedKnnSkipsBadSubtrees) {
  faulty_.AddPermanentReadFault(FirstChildOfRoot());

  // Without degradation the full-tree scan hits the dead page.
  rtree::SearchStats stats;
  SearchOptions options;
  options.degraded_ok = true;
  auto neighbors = rtree::SearchNearest(*tree_, Point{500, 500},
                                        points_.size(), &stats, options);
  ASSERT_TRUE(neighbors.ok()) << neighbors.status().ToString();
  EXPECT_TRUE(stats.degraded);
  EXPECT_LT(neighbors->size(), points_.size());
  EXPECT_GT(neighbors->size(), 0u);
}

TEST_F(PermanentFaultTest, ScrubAndRepackRestoresPreCorruptionOracle) {
  const PageId bad = FirstChildOfRoot();
  faulty_.AddPermanentReadFault(bad);

  // A few degraded windows first, to populate the quarantine the way a
  // live service would.
  storage::PageQuarantine quarantine;
  SearchOptions options;
  options.degraded_ok = true;
  options.quarantine = &quarantine;
  auto partial = tree_->SearchIntersects(everything_, nullptr, options);
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(quarantine.Contains(bad));

  // Recover from base data (the authoritative entry list, as re-derived
  // from the heap file in a real deployment).
  std::vector<storage::Rid> rids;
  for (size_t i = 0; i < points_.size(); ++i) {
    rids.push_back(storage::Rid{static_cast<PageId>(i), 0});
  }
  const std::vector<rtree::Entry> base_entries =
      pack::MakeLeafEntries(points_, rids);
  auto report = pack::ScrubAndRepack(tree_.get(), &quarantine,
                                     &base_entries);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->rebuilt_from_base);
  EXPECT_GE(report->pages_quarantined, 1u);
  EXPECT_GT(report->pages_freed, 0u);

  // The rebuilt tree answers the full oracle with no degradation, and
  // never touches the quarantined page again.
  PICTDB_CHECK_OK(tree_->Validate());
  rtree::SearchStats stats;
  auto hits = tree_->SearchIntersects(everything_, &stats);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(HitRids(*hits), OracleRids(points_, everything_));

  // Spot windows must also match exactly.
  Random qrng(11);
  for (int i = 0; i < 50; ++i) {
    const Rect w = Rect::FromCenterHalfExtent(qrng.UniformDouble(0, 1000),
                                              25,
                                              qrng.UniformDouble(0, 1000),
                                              25);
    auto wh = tree_->SearchIntersects(w);
    ASSERT_TRUE(wh.ok());
    EXPECT_EQ(HitRids(*wh), OracleRids(points_, w));
  }
}

TEST_F(PermanentFaultTest, ScrubAndRepackFromSalvageKeepsReadableEntries) {
  const PageId bad = FirstChildOfRoot();
  faulty_.AddPermanentReadFault(bad);

  storage::PageQuarantine quarantine;
  auto report = pack::ScrubAndRepack(tree_.get(), &quarantine,
                                     /*base_entries=*/nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->rebuilt_from_base);
  EXPECT_LT(report->entries_recovered, kObjects);  // the dead subtree
  EXPECT_GT(report->entries_recovered, 0u);

  PICTDB_CHECK_OK(tree_->Validate());
  auto hits = tree_->SearchIntersects(everything_);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), report->entries_recovered);
  // Everything salvaged is a true pre-corruption entry.
  const std::set<PageId> oracle = OracleRids(points_, everything_);
  for (const PageId rid : HitRids(*hits)) EXPECT_TRUE(oracle.count(rid));
}

// --- Deadlines and cancellation --------------------------------------------

TEST(FaultDeadlineTest, ExpiredDeadlineFailsSearchBeforeAnyWork) {
  InMemoryDiskManager disk(512);
  BufferPool pool(&disk, 64);
  std::vector<Point> points;
  auto tree = BuildTree(&pool, 500, &points);

  SearchOptions options;
  options.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  auto hits = tree->SearchIntersects(Rect{{0, 0}, {1000, 1000}}, nullptr,
                                     options);
  ASSERT_FALSE(hits.ok());
  EXPECT_TRUE(hits.status().IsDeadlineExceeded());
}

TEST(FaultDeadlineTest, DeadlineExpiresMidScanOnSlowDisk) {
  InMemoryDiskManager base(512);
  storage::PageId meta;
  std::vector<Point> points;
  {
    BufferPool build_pool(&base, 256);
    auto tree = BuildTree(&build_pool, 2000, &points);
    meta = tree->meta_page();
  }
  // 200us per cold page read: a full scan (~hundreds of pages) cannot
  // finish inside 3ms, but gets past the first few nodes.
  storage::LatencyDiskManager slow(&base,
                                   std::chrono::microseconds(200),
                                   std::chrono::microseconds(0));
  BufferPool pool(&slow, 256);
  auto tree = RTree::Open(&pool, meta);
  ASSERT_TRUE(tree.ok());

  SearchOptions options;
  options.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(3);
  rtree::SearchStats stats;
  auto hits = tree->SearchIntersects(Rect{{-1e9, -1e9}, {1e9, 1e9}},
                                     &stats, options);
  ASSERT_FALSE(hits.ok());
  EXPECT_TRUE(hits.status().IsDeadlineExceeded());
  EXPECT_GT(stats.nodes_visited, 0u);  // it really started
}

TEST(FaultDeadlineTest, CancelFlagStopsKnnAndJoin) {
  InMemoryDiskManager disk(512);
  BufferPool pool(&disk, 64);
  std::vector<Point> points;
  auto tree = BuildTree(&pool, 500, &points);

  std::atomic<bool> cancel{true};
  SearchOptions options;
  options.cancel = &cancel;

  auto nn = rtree::SearchNearest(*tree, Point{1, 2}, 5, nullptr, options);
  ASSERT_FALSE(nn.ok());
  EXPECT_TRUE(nn.status().IsDeadlineExceeded());

  const Status join = rtree::SpatialJoin(
      *tree, *tree, [](const rtree::LeafHit&, const rtree::LeafHit&) {},
      nullptr, options);
  EXPECT_TRUE(join.IsDeadlineExceeded());
}

// --- Service-level integration ---------------------------------------------

TEST(FaultServiceTest, QueryTimeoutSurfacesThroughTheService) {
  InMemoryDiskManager base(512);
  storage::PageId meta;
  std::vector<Point> points;
  {
    BufferPool build_pool(&base, 256);
    auto tree = BuildTree(&build_pool, 2000, &points);
    meta = tree->meta_page();
  }
  storage::LatencyDiskManager slow(&base,
                                   std::chrono::microseconds(200),
                                   std::chrono::microseconds(0));
  BufferPool pool(&slow, 256);
  auto tree = RTree::Open(&pool, meta);
  ASSERT_TRUE(tree.ok());

  service::ServiceOptions sopts;
  sopts.num_threads = 1;
  service::QueryService svc(&*tree, nullptr, sopts);

  service::QueryOptions qopts;
  qopts.timeout = std::chrono::microseconds(3000);
  auto outcome = svc.RunSync(
      service::WindowQuery{Rect{{-1e9, -1e9}, {1e9, 1e9}}, false}, qopts);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsDeadlineExceeded());
  EXPECT_EQ(svc.Metrics().deadline_exceeded, 1u);

  // Without a timeout the same query completes.
  auto full = svc.RunSync(
      service::WindowQuery{Rect{{-1e9, -1e9}, {1e9, 1e9}}, false});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->hits.size(), points.size());
}

TEST(FaultServiceTest, CancelAllFailsInFlightQueries) {
  InMemoryDiskManager disk(512);
  BufferPool pool(&disk, 64);
  std::vector<Point> points;
  auto tree = BuildTree(&pool, 500, &points);

  service::QueryService svc(tree.get(), nullptr);
  svc.CancelAll();
  auto outcome =
      svc.RunSync(service::WindowQuery{Rect{{0, 0}, {1000, 1000}}, false});
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsDeadlineExceeded());

  svc.ClearCancel();
  auto ok = svc.RunSync(
      service::WindowQuery{Rect{{-1e9, -1e9}, {1e9, 1e9}}, false});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->hits.size(), points.size());
}

TEST(FaultServiceTest, DegradedQueriesQuarantineThroughTheService) {
  InMemoryDiskManager base(512);
  FaultInjectionDiskManager faulty(&base, FaultPlan{});
  storage::PageId meta;
  std::vector<Point> points;
  {
    BufferPool build_pool(&faulty, 256, 1, FastRetryOptions(2));
    auto tree = BuildTree(&build_pool, 2000, &points);
    meta = tree->meta_page();
  }
  BufferPool pool(&faulty, 256, 1, FastRetryOptions(2));
  auto tree = RTree::Open(&pool, meta);
  ASSERT_TRUE(tree.ok());
  auto root = tree->ReadNodePage(tree->root());
  ASSERT_TRUE(root.ok());
  const PageId bad = root->entries.front().AsChild();
  faulty.AddPermanentReadFault(bad);

  service::QueryService svc(&*tree, nullptr);
  service::QueryOptions qopts;
  qopts.degraded_ok = true;
  auto outcome = svc.RunSync(
      service::WindowQuery{Rect{{-1e9, -1e9}, {1e9, 1e9}}, false}, qopts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->degraded);
  EXPECT_GE(outcome->skipped_subtrees, 1u);
  EXPECT_LT(outcome->hits.size(), points.size());
  EXPECT_TRUE(svc.quarantine()->Contains(bad));
  EXPECT_EQ(svc.Metrics().degraded, 1u);

  // Without degraded_ok the same query fails loudly instead of lying.
  auto strict = svc.RunSync(
      service::WindowQuery{Rect{{-1e9, -1e9}, {1e9, 1e9}}, false});
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsDataLoss());
}

// --- Acceptance: mixed workload under 1% transient faults ------------------

TEST(FaultAcceptanceTest, MixedWorkloadUnderTransientFaultsHasZeroWrongAnswers) {
  InMemoryDiskManager base(512);
  // Compose the full decorator stack: faults over latency over memory.
  storage::LatencyDiskManager slow(&base, std::chrono::microseconds(1),
                                   std::chrono::microseconds(0));
  FaultPlan plan;
  plan.seed = 0xFau;
  plan.transient_read_error_rate = 0.01;
  plan.read_bit_flip_rate = 0.005;
  FaultInjectionDiskManager faulty(&slow, plan);
  BufferPool pool(&faulty, /*capacity=*/64, /*shards=*/4,
                  FastRetryOptions());

  std::vector<Point> points;
  auto tree = BuildTree(&pool, 5000, &points);

  service::ServiceOptions sopts;
  sopts.num_threads = 4;
  sopts.queue_capacity = 1024;
  service::QueryService svc(tree.get(), nullptr, sopts);

  Random qrng(13);
  size_t wrong = 0;
  std::vector<std::future<StatusOr<service::QueryResult>>> futures;
  std::vector<size_t> kind;   // 0 window, 1 point, 2 knn
  std::vector<Rect> windows;
  std::vector<Point> qpoints;
  std::vector<size_t> ks;
  constexpr int kQueries = 600;
  for (int i = 0; i < kQueries; ++i) {
    if (i % 3 == 0) {
      const Rect w = Rect::FromCenterHalfExtent(
          qrng.UniformDouble(0, 1000), 20, qrng.UniformDouble(0, 1000), 20);
      auto f = svc.Submit(service::WindowQuery{w, false});
      ASSERT_TRUE(f.ok());
      futures.push_back(std::move(f).value());
      kind.push_back(0);
      windows.push_back(w);
      qpoints.push_back(Point{});
      ks.push_back(0);
    } else if (i % 3 == 1) {
      const Point p{qrng.UniformDouble(0, 1000), qrng.UniformDouble(0, 1000)};
      auto f = svc.Submit(service::PointQuery{p});
      ASSERT_TRUE(f.ok());
      futures.push_back(std::move(f).value());
      kind.push_back(1);
      windows.push_back(Rect{});
      qpoints.push_back(p);
      ks.push_back(0);
    } else {
      const Point p{qrng.UniformDouble(0, 1000), qrng.UniformDouble(0, 1000)};
      const size_t k = 1 + qrng.Uniform(10);
      auto f = svc.Submit(service::KnnQuery{p, k});
      ASSERT_TRUE(f.ok());
      futures.push_back(std::move(f).value());
      kind.push_back(2);
      windows.push_back(Rect{});
      qpoints.push_back(p);
      ks.push_back(k);
    }
  }

  for (size_t i = 0; i < futures.size(); ++i) {
    auto outcome = futures[i].get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_FALSE(outcome->degraded);
    if (kind[i] == 0) {
      if (HitRids(outcome->hits) != OracleRids(points, windows[i])) ++wrong;
    } else if (kind[i] == 1) {
      // Point containment over point objects: hit iff an identical point
      // exists. Compare counts.
      size_t expect = 0;
      for (const Point& p : points) {
        if (p.x == qpoints[i].x && p.y == qpoints[i].y) ++expect;
      }
      if (outcome->hits.size() != expect) ++wrong;
    } else {
      // Brute-force k-th smallest distance must match.
      std::vector<double> d;
      d.reserve(points.size());
      for (const Point& p : points) {
        const double dx = p.x - qpoints[i].x;
        const double dy = p.y - qpoints[i].y;
        d.push_back(dx * dx + dy * dy);
      }
      std::sort(d.begin(), d.end());
      if (outcome->neighbors.size() != ks[i]) {
        ++wrong;
      } else {
        for (size_t j = 0; j < ks[i]; ++j) {
          const double got = outcome->neighbors[j].distance;
          if (std::abs(got * got - d[j]) > 1e-6 * (1.0 + d[j])) {
            ++wrong;
            break;
          }
        }
      }
    }
  }
  EXPECT_EQ(wrong, 0u);
  // The faults really fired; the retry layer really absorbed them.
  EXPECT_GT(faulty.fault_stats().transient_read_errors, 0u);
  EXPECT_GT(pool.StatsSnapshot().read_retries, 0u);
  EXPECT_EQ(svc.Metrics().failed, 0u);
}

}  // namespace
}  // namespace pictdb
