// End-to-end tests of the network serving tier: a real poll-loop server
// over a PACK-built tree, exercised through the blocking client. Covers
// query round trips on Unix and TCP sockets, the result cache's
// byte-identical replay, quota / in-flight / connection-limit
// backpressure, admin fault episodes, cache invalidation, protocol-error
// handling on a live socket, and the SIGTERM graceful-drain path.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "wal/durable_tree.h"
#include "workload/generators.h"

namespace pictdb::net {
namespace {

using geom::Point;
using geom::Rect;

constexpr size_t kObjects = 4000;

std::string SockPath(const std::string& name) {
  return ::testing::TempDir() + "pictdb_" + name + "_" +
         std::to_string(getpid()) + ".sock";
}

/// PACK-built tree (behind a fault-injection disk armed with rate 0) and
/// a small overlay tree, served by a QueryService. Each test constructs
/// its own Server so it can pick quota/cache/admin options.
class NetServerTest : public ::testing::Test {
 protected:
  NetServerTest()
      : disk_(512),
        fault_disk_(&disk_, storage::FaultPlan{}),
        pool_(&fault_disk_, /*capacity=*/256, /*shards=*/4) {
    Random rng(101);
    points_ =
        workload::UniformPoints(&rng, kObjects, workload::PaperFrame());
    std::vector<storage::Rid> rids;
    rids.reserve(points_.size());
    for (size_t i = 0; i < points_.size(); ++i) {
      rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
    }
    auto tree = rtree::RTree::Create(&pool_);
    PICTDB_CHECK(tree.ok());
    tree_ = std::make_unique<rtree::RTree>(std::move(tree).value());
    PICTDB_CHECK_OK(pack::PackNearestNeighbor(
        tree_.get(), pack::MakeLeafEntries(points_, rids)));

    // Overlay tree of small regions (not points — a point-point join
    // would find no intersecting pairs).
    Random overlay_rng(202);
    overlay_points_ =
        workload::UniformPoints(&overlay_rng, 400, workload::PaperFrame());
    std::vector<Rect> overlay_rects;
    overlay_rects.reserve(overlay_points_.size());
    for (const Point& p : overlay_points_) {
      overlay_rects.push_back(Rect::FromCenterHalfExtent(p.x, 4, p.y, 4));
    }
    std::vector<storage::Rid> overlay_rids;
    overlay_rids.reserve(overlay_rects.size());
    for (size_t i = 0; i < overlay_rects.size(); ++i) {
      overlay_rids.push_back(
          storage::Rid{static_cast<storage::PageId>(i), 1});
    }
    auto overlay = rtree::RTree::Create(&pool_);
    PICTDB_CHECK(overlay.ok());
    overlay_ = std::make_unique<rtree::RTree>(std::move(overlay).value());
    PICTDB_CHECK_OK(pack::PackNearestNeighbor(
        overlay_.get(),
        pack::MakeLeafEntries(overlay_rects, overlay_rids)));

    service::ServiceOptions service_options;
    service_options.num_threads = 4;
    service_options.queue_capacity = 128;
    service_ = std::make_unique<service::QueryService>(
        tree_.get(), /*executor=*/nullptr, service_options);
  }

  Server::Bindings Bindings() {
    Server::Bindings b;
    b.service = service_.get();
    b.overlay = overlay_.get();
    b.fault_disk = &fault_disk_;
    return b;
  }

  size_t BruteForceWindowCount(const Rect& window) const {
    size_t count = 0;
    for (const Point& p : points_) {
      if (window.Contains(p)) ++count;
    }
    return count;
  }

  storage::InMemoryDiskManager disk_;
  storage::FaultInjectionDiskManager fault_disk_;
  storage::BufferPool pool_;
  std::unique_ptr<rtree::RTree> tree_;
  std::unique_ptr<rtree::RTree> overlay_;
  std::vector<Point> points_;
  std::vector<Point> overlay_points_;
  std::unique_ptr<service::QueryService> service_;
};

TEST_F(NetServerTest, PingAndQueriesOverUnixSocket) {
  ServerOptions options;
  options.unix_path = SockPath("basic");
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  const Rect window = Rect::FromCenterHalfExtent(500, 80, 500, 80);
  auto window_result = client->Window(window, /*contained_only=*/false);
  ASSERT_TRUE(window_result.ok()) << window_result.status().ToString();
  const auto& hits = std::get<HitsResponse>(window_result->response.body);
  EXPECT_EQ(hits.hits.size(), BruteForceWindowCount(window));
  EXPECT_FALSE(window_result->cached());
  EXPECT_FALSE(window_result->degraded());
  EXPECT_GT(hits.stats.nodes_visited, 0u);

  // Point containment: an existing point is found, a far-away one is not.
  auto present = client->Point(points_[7]);
  ASSERT_TRUE(present.ok());
  EXPECT_GE(std::get<HitsResponse>(present->response.body).hits.size(), 1u);
  auto absent = client->Point(Point{-5000.0, -5000.0});
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(std::get<HitsResponse>(absent->response.body).hits.size(), 0u);

  // kNN: k results, sorted by distance.
  auto knn = client->Knn(Point{400.0, 600.0}, 5);
  ASSERT_TRUE(knn.ok());
  const auto& neighbors = std::get<NeighborsResponse>(knn->response.body);
  ASSERT_EQ(neighbors.neighbors.size(), 5u);
  for (size_t i = 1; i < neighbors.neighbors.size(); ++i) {
    EXPECT_LE(neighbors.neighbors[i - 1].distance,
              neighbors.neighbors[i].distance);
  }

  // Join against the server-hosted overlay tree.
  auto join = client->Join(/*overlay=*/0);
  ASSERT_TRUE(join.ok());
  EXPECT_GT(std::get<JoinResponse>(join->response.body).pairs, 0u);
  auto missing_overlay = client->Join(/*overlay=*/3);
  EXPECT_FALSE(missing_overlay.ok());
  EXPECT_TRUE(missing_overlay.status().IsNotFound())
      << missing_overlay.status().ToString();

  // PSQL without an executor surfaces the service's error over the wire.
  auto psql = client->Psql("select * from cities");
  EXPECT_FALSE(psql.ok());

  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_GT(stats.frames_received, 0u);
  server.Stop();
}

TEST_F(NetServerTest, TcpLoopbackListenerWorks) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.tcp_port(), 0);

  auto client = Client::ConnectTcp("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const Rect window = Rect::FromCenterHalfExtent(300, 50, 700, 50);
  auto result = client->Window(window, false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(std::get<HitsResponse>(result->response.body).hits.size(),
            BruteForceWindowCount(window));
  server.Stop();
}

TEST_F(NetServerTest, RepeatedWindowIsServedFromCacheByteIdentically) {
  ServerOptions options;
  options.unix_path = SockPath("cache");
  options.cache_bytes = 1 << 20;
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const Rect window = Rect::FromCenterHalfExtent(250, 60, 250, 60);

  auto first = client->Window(window, false);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cached());

  // Different deadline, same canonical question: still a hit.
  WireOptions wire_options;
  wire_options.timeout_us = 5'000'000;
  auto second = client->Window(window, false, wire_options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cached());

  const auto& hits1 = std::get<HitsResponse>(first->response.body);
  const auto& hits2 = std::get<HitsResponse>(second->response.body);
  // Byte-identical replay: even the execution stats (latency included)
  // are the original response's, verbatim.
  EXPECT_EQ(hits1.stats, hits2.stats);
  ASSERT_EQ(hits1.hits.size(), hits2.hits.size());
  for (size_t i = 0; i < hits1.hits.size(); ++i) {
    EXPECT_EQ(hits1.hits[i].rid, hits2.hits[i].rid);
  }

  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->cache_hits, 1u);
  EXPECT_GE(stats->cache_insertions, 1u);
  EXPECT_EQ(server.Stats().cache_hits, stats->cache_hits);
  server.Stop();
}

TEST_F(NetServerTest, AdminInvalidateBumpsEpochAndDropsCachedEntries) {
  ServerOptions options;
  options.unix_path = SockPath("invalidate");
  options.cache_bytes = 1 << 20;
  options.allow_admin = true;
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const Rect window = Rect::FromCenterHalfExtent(600, 40, 400, 40);
  ASSERT_TRUE(client->Window(window, false).ok());
  auto warm = client->Window(window, false);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cached());

  ASSERT_TRUE(client->InvalidateCache().ok());

  auto after = client->Window(window, false);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cached());  // epoch bump made the entry stale
  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->cache_invalidations, 1u);
  server.Stop();
}

TEST_F(NetServerTest, QuotaRejectsBeyondBurstWithResourceExhausted) {
  ServerOptions options;
  options.unix_path = SockPath("quota");
  options.quota_qps = 0.001;  // effectively no refill within the test
  options.quota_burst = 3;
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  size_t ok_count = 0, rejected = 0;
  for (int i = 0; i < 8; ++i) {
    // Distinct windows so the (disabled anyway) cache cannot interfere.
    const Rect window = Rect::FromCenterHalfExtent(100 + 10 * i, 5, 100, 5);
    auto result = client->Window(window, false);
    if (result.ok()) {
      ++ok_count;
    } else {
      EXPECT_TRUE(result.status().IsResourceExhausted())
          << result.status().ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(ok_count, 3u);
  EXPECT_EQ(rejected, 5u);
  EXPECT_EQ(server.Stats().quota_rejections, 5u);
  // Ping is not a query: it bypasses the quota entirely.
  EXPECT_TRUE(client->Ping().ok());
  server.Stop();
}

TEST_F(NetServerTest, InflightBoundRejectsWithResourceExhausted) {
  ServerOptions options;
  options.unix_path = SockPath("inflight");
  options.max_inflight_per_conn = 0;  // degenerate bound: reject all
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  auto result = client->Window(Rect(0, 0, 10, 10), false);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(server.Stats().backpressure_rejections, 1u);
  server.Stop();
}

TEST_F(NetServerTest, ConnectionLimitRejectsExtraClients) {
  ServerOptions options;
  options.unix_path = SockPath("connlimit");
  options.max_connections = 1;
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto first = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Ping().ok());  // fully admitted

  auto second = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(second.ok());  // accept() succeeds, then the server rejects
  FrameHeader header;
  auto greeting = second->ReadFrameRaw(&header);
  if (greeting.ok()) {
    EXPECT_EQ(header.type, MsgType::kError);
    auto decoded = DecodeResponsePayload(header.type, *greeting);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(std::get<ErrorResponse>(decoded->body)
                    .ToStatus()
                    .IsResourceExhausted());
  }
  // Either way the rejected socket is closed and counted.
  EXPECT_FALSE(second->Ping().ok());
  EXPECT_EQ(server.Stats().connections_rejected, 1u);

  // The admitted client is unaffected.
  EXPECT_TRUE(first->Ping().ok());
  server.Stop();
}

TEST_F(NetServerTest, AdminFaultEpisodeDegradesThenRecovers) {
  ServerOptions options;
  options.unix_path = SockPath("faults");
  options.allow_admin = true;
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  // Full-frame window: touches every leaf page, far more than the pool
  // can hold, so disk reads (and injected faults) are guaranteed.
  const Rect window = workload::PaperFrame();
  const size_t exact = BruteForceWindowCount(window);

  ASSERT_TRUE(client->SetFaults(/*transient_read_error_rate=*/0.5,
                                /*read_bit_flip_rate=*/0.0)
                  .ok());
  WireOptions degraded_ok;
  degraded_ok.degraded_ok = true;
  bool saw_trouble = false;
  for (int i = 0; i < 20; ++i) {
    auto result = client->Window(window, false, degraded_ok);
    if (!result.ok()) {
      saw_trouble = true;  // fault before degraded mode could engage
      continue;
    }
    const auto& hits = std::get<HitsResponse>(result->response.body);
    if (result->degraded()) {
      saw_trouble = true;
      EXPECT_TRUE(hits.stats.degraded);
      EXPECT_LE(hits.hits.size(), exact);  // subset, never invention
    } else {
      EXPECT_EQ(hits.hits.size(), exact);
    }
  }
  EXPECT_TRUE(saw_trouble);  // 40% read faults cannot pass unnoticed

  // End the episode: back to exact answers.
  ASSERT_TRUE(client->SetFaults(0.0, 0.0).ok());
  auto healed = client->Window(window, false);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_FALSE(healed->degraded());
  EXPECT_EQ(std::get<HitsResponse>(healed->response.body).hits.size(),
            exact);
  server.Stop();
}

TEST_F(NetServerTest, AdminCommandsDisabledByDefault) {
  ServerOptions options;
  options.unix_path = SockPath("noadmin");
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const Status faults = client->SetFaults(0.5, 0.0);
  EXPECT_FALSE(faults.ok());
  const Status invalidate = client->InvalidateCache();
  EXPECT_FALSE(invalidate.ok());
  server.Stop();
}

TEST_F(NetServerTest, GarbageBytesGetStructuredErrorThenClose) {
  ServerOptions options;
  options.unix_path = SockPath("garbage");
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("this is definitely not a frame--").ok());
  FrameHeader header;
  auto reply = client->ReadFrameRaw(&header);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(header.type, MsgType::kError);
  // After the structured error the server closes the unsyncable stream.
  EXPECT_FALSE(client->Ping().ok());
  EXPECT_GE(server.Stats().protocol_errors, 1u);

  // The server itself is fine: a fresh client works.
  auto fresh = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->Ping().ok());
  server.Stop();
}

TEST_F(NetServerTest, TruncatedFrameThenDisconnectLeavesServerAlive) {
  ServerOptions options;
  options.unix_path = SockPath("truncated");
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  {
    auto client = Client::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    Request ping;
    ping.body = PingRequest{};
    const std::string frame =
        EncodeFrame(MsgType::kWindow, 0, 9, EncodeRequestPayload(ping));
    // Ship only half the frame, then vanish mid-message.
    ASSERT_TRUE(client->SendRaw(
                          std::string_view(frame).substr(0, frame.size() / 2))
                    .ok());
  }  // destructor closes the socket

  auto fresh = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->Ping().ok());
  server.Stop();
}

TEST_F(NetServerTest, MalformedPayloadGetsErrorButKeepsConnection) {
  ServerOptions options;
  options.unix_path = SockPath("badpayload");
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  // Well-formed frame, garbage payload: the stream stays in sync, so the
  // server answers with an error and keeps serving this connection.
  const std::string frame = EncodeFrame(MsgType::kWindow, 0, 11, "junk");
  ASSERT_TRUE(client->SendRaw(frame).ok());
  FrameHeader header;
  auto reply = client->ReadFrameRaw(&header);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(header.type, MsgType::kError);
  EXPECT_EQ(header.request_id, 11u);
  EXPECT_TRUE(client->Ping().ok());  // same connection still serves
  EXPECT_GE(server.Stats().protocol_errors, 1u);
  server.Stop();
}

TEST_F(NetServerTest, SigtermTriggersGracefulDrain) {
  ServerOptions options;
  options.unix_path = SockPath("sigterm");
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());
  Server::InstallSignalHandlers(&server);

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  auto before = client->Window(Rect(0, 0, 100, 100), false);
  ASSERT_TRUE(before.ok());

  ASSERT_EQ(raise(SIGTERM), 0);
  server.Join();  // the drain path exits the serving thread
  EXPECT_FALSE(server.running());

  // Served work was answered; new work finds the listener gone.
  ASSERT_TRUE(client->SetRecvTimeout(std::chrono::milliseconds(500)).ok());
  EXPECT_FALSE(client->Ping().ok());
  auto late = Client::ConnectUnix(options.unix_path);
  EXPECT_FALSE(late.ok());

  // Stats survive the drain for the shutdown report.
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_GT(stats.frames_received, 0u);
  Server::InstallSignalHandlers(nullptr);
}

TEST_F(NetServerTest, ProgrammaticDrainAnswersInflightBeforeExit) {
  ServerOptions options;
  options.unix_path = SockPath("drain");
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 5; ++i) {
    auto result = client->Knn(Point{10.0 * i, 20.0 * i}, 3);
    ASSERT_TRUE(result.ok());
  }
  server.RequestDrain();
  server.Join();
  EXPECT_FALSE(server.running());
  // Drain is idempotent.
  server.Stop();
}

TEST_F(NetServerTest, WritesAreDisabledByDefault) {
  ServerOptions options;
  options.unix_path = SockPath("nowrites");
  Server server(Bindings(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const Status status =
      client->Insert(Rect(10, 10, 11, 11), WireRid{9999, 0});
  EXPECT_TRUE(status.IsNotSupported()) << status.ToString();
  // The connection survives the refusal.
  EXPECT_TRUE(client->Ping().ok());
  server.Stop();
}

TEST_F(NetServerTest, WritesCommitAndInvalidateCachedResults) {
  // A server over a WAL-backed durable tree: committed writes must both
  // change query results and (through the commit hook) drop every
  // cached response — a stale cache replay here would be a wrong
  // answer, not a performance bug.
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 1024);
  auto created = wal::DurableRTree::Create(&pool);
  ASSERT_TRUE(created.ok());
  auto durable = std::move(created).value();
  std::vector<rtree::Entry> seed;
  for (size_t i = 0; i < 100; ++i) {
    rtree::Entry e;
    const double x = 10.0 * static_cast<double>(i);
    e.mbr = Rect(x, x, x + 1, x + 1);
    e.payload = rtree::Entry::PayloadFromRid(
        storage::Rid{static_cast<storage::PageId>(i), 0});
    seed.push_back(e);
  }
  ASSERT_TRUE(durable->BulkLoad(seed).ok());

  service::ServiceOptions service_options;
  service_options.num_threads = 2;
  service::QueryService svc(&durable->tree(), nullptr, service_options);
  svc.BindWriter(durable.get());

  ServerOptions options;
  options.unix_path = SockPath("writes");
  options.cache_bytes = 1 << 20;
  options.allow_writes = true;
  Server::Bindings bindings;
  bindings.service = &svc;
  Server server(bindings, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const Rect window(0, 0, 55, 55);  // covers seed entries 0..5
  auto first = client->Window(window, false);
  ASSERT_TRUE(first.ok());
  const size_t before =
      std::get<HitsResponse>(first->response.body).hits.size();
  EXPECT_EQ(before, 6u);
  auto warm = client->Window(window, false);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cached());

  // Insert into the window: the ack means the WAL record is fsynced.
  const WireRid new_rid{5000, 0};
  ASSERT_TRUE(client->Insert(Rect(20, 30, 21, 31), new_rid).ok());

  auto after = client->Window(window, false);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cached());  // commit hook bumped the epoch
  EXPECT_EQ(std::get<HitsResponse>(after->response.body).hits.size(),
            before + 1);

  // Delete it again; a further query drops back to the original count.
  ASSERT_TRUE(client->Delete(Rect(20, 30, 21, 31), new_rid).ok());
  auto gone = client->Window(window, false);
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(std::get<HitsResponse>(gone->response.body).hits.size(), before);

  // Update moves seed entry 0 (at [0,0]x[1,1]) out of the window.
  ASSERT_TRUE(client
                  ->Update(Rect(0, 0, 1, 1), WireRid{0, 0},
                           Rect(9000, 9000, 9001, 9001), WireRid{0, 0})
                  .ok());
  auto moved = client->Window(window, false);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(std::get<HitsResponse>(moved->response.body).hits.size(),
            before - 1);

  // Precondition misses surface as NotFound over the wire, and do NOT
  // invalidate the cache (nothing committed).
  auto cached_again = client->Window(window, false);
  ASSERT_TRUE(cached_again.ok());
  EXPECT_TRUE(cached_again->cached());
  const Status miss =
      client->Delete(Rect(1, 2, 3, 4), WireRid{12345, 0});
  EXPECT_TRUE(miss.IsNotFound()) << miss.ToString();
  auto still_cached = client->Window(window, false);
  ASSERT_TRUE(still_cached.ok());
  EXPECT_TRUE(still_cached->cached());

  server.Stop();
  svc.Shutdown();
  // Everything acked above is durable: reopen after a simulated crash
  // is covered in wal_crash_test; here we just close cleanly.
  EXPECT_TRUE(durable->Close().ok());
}

}  // namespace
}  // namespace pictdb::net
