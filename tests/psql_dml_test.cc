// §2.3 database updates through PSQL: insert/delete statements with full
// index maintenance (B+-tree and packed R-tree alike).

#include <gtest/gtest.h>

#include "psql/executor.h"
#include "psql/parser.h"
#include "rel/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/us_catalog.h"
#include "workload/us_cities.h"

namespace pictdb::psql {
namespace {

class PsqlDmlTest : public ::testing::Test {
 protected:
  PsqlDmlTest() : disk_(1024), pool_(&disk_, 1 << 14), catalog_(&pool_) {
    PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog_, 4));
  }

  ResultSet MustRun(const std::string& text) {
    Executor exec(&catalog_);
    auto result = exec.Run(text);
    PICTDB_CHECK(result.ok()) << text << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  int64_t Count(const std::string& rel) {
    return MustRun("select count(*) from " + rel).rows[0][0].as_int();
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
  rel::Catalog catalog_;
};

// --- Parser level --------------------------------------------------------------

TEST(DmlParserTest, ParsesInsert) {
  auto stmt = ParseStatement(
      "insert into cities values ('Springfield', 'IL', 116250, "
      "'POINT(-89.65 39.78)')");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_NE(stmt->insert, nullptr);
  EXPECT_EQ(stmt->insert->relation, "cities");
  EXPECT_EQ(stmt->insert->values.size(), 4u);
}

TEST(DmlParserTest, ParsesDeleteVariants) {
  auto plain = ParseStatement("delete from cities where population < 10");
  ASSERT_TRUE(plain.ok());
  ASSERT_NE(plain->del, nullptr);
  EXPECT_FALSE(plain->del->at.has_value());

  auto spatial = ParseStatement(
      "delete from cities on us-map at loc covered-by {0 +- 1, 0 +- 1}");
  ASSERT_TRUE(spatial.ok()) << spatial.status().ToString();
  ASSERT_NE(spatial->del, nullptr);
  EXPECT_TRUE(spatial->del->at.has_value());
  EXPECT_EQ(spatial->del->on, std::vector<std::string>{"us-map"});
}

TEST(DmlParserTest, SelectStillParsesThroughStatementEntry) {
  auto stmt = ParseStatement("select city from cities");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->select, nullptr);
}

TEST(DmlParserTest, RejectsMalformedDml) {
  EXPECT_FALSE(ParseStatement("insert cities values (1)").ok());
  EXPECT_FALSE(ParseStatement("insert into cities (1, 2)").ok());
  EXPECT_FALSE(ParseStatement("insert into cities values (city)").ok());
  EXPECT_FALSE(ParseStatement("delete cities").ok());
  EXPECT_FALSE(
      ParseStatement("insert into cities values (1, 2) extra").ok());
}

// --- Executor level ----------------------------------------------------------------

TEST_F(PsqlDmlTest, InsertAddsRowAndIndexes) {
  const int64_t before = Count("cities");
  const ResultSet rs = MustRun(
      "insert into cities values ('Springfield', 'IL', 116250, "
      "'POINT(-89.65 39.78)')");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  EXPECT_EQ(Count("cities"), before + 1);

  // Reachable through the B+-tree...
  const ResultSet by_pop = MustRun(
      "select city from cities where population = 116250");
  ASSERT_EQ(by_pop.rows.size(), 1u);
  EXPECT_EQ(by_pop.rows[0][0].ToString(), "Springfield");
  EXPECT_TRUE(by_pop.stats.used_btree_index);

  // ...and through the packed R-tree.
  const ResultSet by_loc = MustRun(
      "select city from cities on us-map "
      "at loc covered-by {-89.65 +- 0.1, 39.78 +- 0.1}");
  ASSERT_EQ(by_loc.rows.size(), 1u);
  EXPECT_EQ(by_loc.rows[0][0].ToString(), "Springfield");
  EXPECT_TRUE(by_loc.stats.used_spatial_index);
}

TEST_F(PsqlDmlTest, InsertCoercesTypes) {
  // Int literal into double column; window literal into geometry.
  const ResultSet rs = MustRun(
      "insert into lakes values ('Square Lake', 42, 1, "
      "{-100 +- 1, 40 +- 1})");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  const ResultSet found = MustRun(
      "select lake, area(loc) from lakes where lake = 'Square Lake'");
  ASSERT_EQ(found.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(found.rows[0][1].as_double(), 4.0);
}

TEST_F(PsqlDmlTest, InsertNulls) {
  const ResultSet rs = MustRun(
      "insert into cities values ('Nowhere', null, null, null)");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  const ResultSet found = MustRun(
      "select city, population from cities where city = 'Nowhere'");
  ASSERT_EQ(found.rows.size(), 1u);
  EXPECT_TRUE(found.rows[0][1].is_null());
}

TEST_F(PsqlDmlTest, InsertErrors) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Run("insert into nowhere values (1)").ok());
  // Wrong arity.
  EXPECT_FALSE(exec.Run("insert into cities values ('X', 'Y')").ok());
  // Type mismatch: string into int column.
  EXPECT_FALSE(
      exec.Run("insert into cities values ('X', 'Y', 'lots', null)").ok());
  // Bad WKT into geometry column.
  EXPECT_FALSE(
      exec.Run("insert into cities values ('X', 'Y', 5, 'CIRCLE(1)')").ok());
  // Fractional into int column.
  EXPECT_FALSE(
      exec.Run("insert into cities values ('X', 'Y', 5.5, null)").ok());
}

TEST_F(PsqlDmlTest, DeleteByAlphanumericPredicate) {
  const int64_t before = Count("cities");
  int64_t small = 0;
  for (const auto& c : workload::ContinentalUsCities()) {
    if (c.population < 100000) ++small;
  }
  const ResultSet rs =
      MustRun("delete from cities where population < 100000");
  EXPECT_EQ(rs.rows[0][0].as_int(), small);
  EXPECT_EQ(Count("cities"), before - small);
  // The survivors' indexes are intact.
  auto cities = catalog_.GetRelation("cities");
  ASSERT_TRUE(cities.ok());
  auto index = (*cities)->SpatialIndex("loc");
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->Validate().ok());
  EXPECT_EQ((*index)->Size(), static_cast<uint64_t>(before - small));
}

TEST_F(PsqlDmlTest, DeleteBySpatialQualification) {
  // Remove everything in the north-east window.
  const geom::Rect window =
      geom::Rect::FromCenterHalfExtent(-74, 4, 41, 3);
  int64_t in_window = 0;
  for (const auto& c : workload::ContinentalUsCities()) {
    if (window.Contains(c.loc())) ++in_window;
  }
  const ResultSet rs = MustRun(
      "delete from cities on us-map at loc covered-by {-74 +- 4, 41 +- 3}");
  EXPECT_EQ(rs.rows[0][0].as_int(), in_window);

  const ResultSet after = MustRun(
      "select count(*) from cities on us-map "
      "at loc covered-by {-74 +- 4, 41 +- 3}");
  EXPECT_EQ(after.rows[0][0].as_int(), 0);
}

TEST_F(PsqlDmlTest, DeleteCombinedQualification) {
  // Only the big north-eastern cities go.
  const ResultSet rs = MustRun(
      "delete from cities on us-map at loc covered-by {-74 +- 4, 41 +- 3} "
      "where population > 1000000");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);  // New York + Philadelphia
  const ResultSet boston = MustRun(
      "select city from cities where city = 'Boston'");
  EXPECT_EQ(boston.rows.size(), 1u);  // in the window but only 692k
  const ResultSet nyc =
      MustRun("select city from cities where city = 'New York'");
  EXPECT_TRUE(nyc.rows.empty());
}

TEST_F(PsqlDmlTest, DeleteMatchingNothing) {
  const ResultSet rs =
      MustRun("delete from cities where population > 999999999");
  EXPECT_EQ(rs.rows[0][0].as_int(), 0);
}

TEST(DmlParserTest, ParsesUpdate) {
  auto stmt = ParseStatement(
      "update cities set population = 99, state = 'XX' "
      "where city = 'Boston'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_NE(stmt->update, nullptr);
  EXPECT_EQ(stmt->update->relation, "cities");
  EXPECT_EQ(stmt->update->assignments.size(), 2u);
  EXPECT_EQ(stmt->update->assignments[0].first, "population");
  EXPECT_FALSE(ParseStatement("update cities population = 5").ok());
  EXPECT_FALSE(ParseStatement("update cities set population 5").ok());
}

TEST_F(PsqlDmlTest, UpdateAlphanumericColumn) {
  const ResultSet rs = MustRun(
      "update cities set population = 700000 where city = 'Boston'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  const ResultSet after =
      MustRun("select population from cities where city = 'Boston'");
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_EQ(after.rows[0][0].as_int(), 700000);
  // The B+-tree follows: searchable under the new value, gone from the old.
  const ResultSet by_new =
      MustRun("select city from cities where population = 700000");
  EXPECT_EQ(by_new.rows.size(), 1u);
  const ResultSet by_old =
      MustRun("select city from cities where population = 692600");
  EXPECT_TRUE(by_old.rows.empty());
}

TEST_F(PsqlDmlTest, UpdateGeometryMovesTheObjectInTheRTree) {
  // Move Boston to the middle of Kansas.
  const ResultSet rs = MustRun(
      "update cities set loc = 'POINT(-98.0 38.5)' "
      "where city = 'Boston'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  // Old location no longer finds it; new location does.
  const ResultSet old_loc = MustRun(
      "select city from cities on us-map "
      "at loc covered-by {-71.06 +- 0.2, 42.36 +- 0.2}");
  for (const auto& row : old_loc.rows) {
    EXPECT_NE(row[0].ToString(), "Boston");
  }
  const ResultSet new_loc = MustRun(
      "select city from cities on us-map "
      "at loc covered-by {-98 +- 0.5, 38.5 +- 0.5}");
  ASSERT_EQ(new_loc.rows.size(), 1u);
  EXPECT_EQ(new_loc.rows[0][0].ToString(), "Boston");
  // Index structurally sound afterwards.
  auto cities = catalog_.GetRelation("cities");
  ASSERT_TRUE(cities.ok());
  auto index = (*cities)->SpatialIndex("loc");
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->Validate().ok());
}

TEST_F(PsqlDmlTest, UpdateWithSpatialQualification) {
  // Tag every city in the mountain west with a sentinel population.
  const ResultSet rs = MustRun(
      "update cities set population = 1 "
      "on us-map at loc covered-by {-110 +- 5, 42 +- 8}");
  EXPECT_GT(rs.rows[0][0].as_int(), 0);
  const ResultSet tagged =
      MustRun("select count(*) from cities where population = 1");
  EXPECT_EQ(tagged.rows[0][0].as_int(), rs.rows[0][0].as_int());
}

TEST_F(PsqlDmlTest, UpdateErrors) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Run("update nowhere set x = 1").ok());
  EXPECT_FALSE(exec.Run("update cities set nope = 1").ok());
  EXPECT_FALSE(
      exec.Run("update cities set population = 'many'").ok());
}

TEST_F(PsqlDmlTest, InsertThenDeleteRoundTrip) {
  const int64_t before = Count("highways");
  MustRun("insert into highways values ('I-99', 1, "
          "'SEGMENT(-78.2 40.5, -77.8 41.0)')");
  EXPECT_EQ(Count("highways"), before + 1);
  const ResultSet rs =
      MustRun("delete from highways where hwy-name = 'I-99'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  EXPECT_EQ(Count("highways"), before);
}

}  // namespace
}  // namespace pictdb::psql
