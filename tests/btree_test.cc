#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "btree/cursor.h"
#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace pictdb::btree {
namespace {

using storage::BufferPool;
using storage::InMemoryDiskManager;
using storage::Rid;

Rid MakeRid(uint32_t page, uint16_t slot) { return Rid{page, slot}; }

struct Env {
  // Small pages force deep trees quickly (leaf cap 3 at 128 bytes).
  explicit Env(uint32_t page_size = 128)
      : disk(page_size), pool(&disk, 512) {}
  InMemoryDiskManager disk;
  BufferPool pool;
};

// --- KeyEncoder ---------------------------------------------------------------

TEST(KeyEncoderTest, Int64Order) {
  const int64_t values[] = {INT64_MIN, -100, -1, 0, 1, 42, INT64_MAX};
  const Rid rid = MakeRid(0, 0);
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(KeyEncoder::FromInt64(values[i], rid),
              KeyEncoder::FromInt64(values[i + 1], rid))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(KeyEncoderTest, DoubleOrder) {
  const double values[] = {-1e300, -5.5, -1.0, -0.25, 0.0,
                           0.25,   1.0,  5.5,  1e300};
  const Rid rid = MakeRid(0, 0);
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(KeyEncoder::FromDouble(values[i], rid),
              KeyEncoder::FromDouble(values[i + 1], rid))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(KeyEncoderTest, StringOrder) {
  const Rid rid = MakeRid(0, 0);
  EXPECT_LT(KeyEncoder::FromString("abc", rid),
            KeyEncoder::FromString("abd", rid));
  EXPECT_LT(KeyEncoder::FromString("ab", rid),
            KeyEncoder::FromString("abc", rid));
  EXPECT_LT(KeyEncoder::FromString("", rid),
            KeyEncoder::FromString("a", rid));
}

TEST(KeyEncoderTest, RidBreaksTies) {
  EXPECT_LT(KeyEncoder::FromInt64(7, MakeRid(1, 2)),
            KeyEncoder::FromInt64(7, MakeRid(1, 3)));
  EXPECT_LT(KeyEncoder::FromInt64(7, MakeRid(1, 9)),
            KeyEncoder::FromInt64(7, MakeRid(2, 0)));
}

TEST(KeyEncoderTest, BoundsSpanAllRids) {
  const Rid lo_rid = MakeRid(0, 0);
  const Rid hi_rid = MakeRid(0xFFFFFFFE, 0xFFFF);
  // The scan range [LowerBound(k), UpperBound(k)] is inclusive, so the
  // lower bound may equal (but never exceed) the smallest real key.
  EXPECT_FALSE(KeyEncoder::FromInt64(7, lo_rid) <
               KeyEncoder::Int64LowerBound(7));
  EXPECT_LT(KeyEncoder::FromInt64(7, hi_rid), KeyEncoder::Int64UpperBound(7));
  EXPECT_LT(KeyEncoder::Int64UpperBound(7), KeyEncoder::Int64LowerBound(8));
}

// --- BTree ---------------------------------------------------------------------

TEST(BTreeTest, InsertAndGet) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  const Rid rid = MakeRid(3, 1);
  ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(42, rid), rid).ok());
  auto found = tree->Get(KeyEncoder::FromInt64(42, rid));
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found == rid);
}

TEST(BTreeTest, GetMissing) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Get(KeyEncoder::FromInt64(1, MakeRid(0, 0))).status()
                  .IsNotFound());
}

TEST(BTreeTest, DuplicateInsertRejected) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  const Rid rid = MakeRid(1, 1);
  const Key k = KeyEncoder::FromInt64(5, rid);
  ASSERT_TRUE(tree->Insert(k, rid).ok());
  EXPECT_TRUE(tree->Insert(k, rid).IsAlreadyExists());
}

TEST(BTreeTest, DuplicateUserKeysDifferentRids) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  for (uint16_t i = 0; i < 50; ++i) {
    const Rid rid = MakeRid(7, i);
    ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(99, rid), rid).ok());
  }
  auto rids = tree->Scan(KeyEncoder::Int64LowerBound(99),
                         KeyEncoder::Int64UpperBound(99));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 50u);
}

TEST(BTreeTest, SplitsGrowTheTree) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 200; ++i) {
    const Rid rid = MakeRid(0, static_cast<uint16_t>(i));
    ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(i, rid), rid).ok());
  }
  auto height = tree->Height();
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 3);
  EXPECT_EQ(*tree->Count(), 200u);
  ASSERT_TRUE(tree->Validate().ok());
}

TEST(BTreeTest, ScanRange) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 100; ++i) {
    const Rid rid = MakeRid(0, static_cast<uint16_t>(i));
    ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(i * 2, rid), rid).ok());
  }
  // Keys 20..40 even -> 11 entries.
  auto rids = tree->Scan(KeyEncoder::Int64LowerBound(20),
                         KeyEncoder::Int64UpperBound(40));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 11u);
  // Scan returns key order: slots 10..20.
  for (size_t i = 0; i < rids->size(); ++i) {
    EXPECT_EQ((*rids)[i].slot, 10 + i);
  }
}

TEST(BTreeTest, ScanEmptyRange) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  const Rid rid = MakeRid(0, 0);
  ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(5, rid), rid).ok());
  auto rids = tree->Scan(KeyEncoder::Int64LowerBound(100),
                         KeyEncoder::Int64UpperBound(200));
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty());
}

TEST(BTreeTest, DeleteSimple) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  const Rid rid = MakeRid(2, 2);
  const Key k = KeyEncoder::FromInt64(11, rid);
  ASSERT_TRUE(tree->Insert(k, rid).ok());
  ASSERT_TRUE(tree->Delete(k).ok());
  EXPECT_TRUE(tree->Get(k).status().IsNotFound());
  EXPECT_TRUE(tree->Delete(k).IsNotFound());
  EXPECT_EQ(*tree->Count(), 0u);
}

TEST(BTreeTest, DeleteEverythingCollapsesTree) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  std::vector<Key> keys;
  for (int i = 0; i < 300; ++i) {
    const Rid rid = MakeRid(0, static_cast<uint16_t>(i));
    keys.push_back(KeyEncoder::FromInt64(i, rid));
    ASSERT_TRUE(tree->Insert(keys.back(), rid).ok());
  }
  ASSERT_TRUE(tree->Validate().ok());
  for (const Key& k : keys) {
    ASSERT_TRUE(tree->Delete(k).ok());
  }
  EXPECT_EQ(*tree->Count(), 0u);
  EXPECT_EQ(*tree->Height(), 1);
  ASSERT_TRUE(tree->Validate().ok());
}

TEST(BTreeTest, DescendingInsertion) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  for (int i = 300; i > 0; --i) {
    const Rid rid = MakeRid(0, static_cast<uint16_t>(i));
    ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(i, rid), rid).ok());
  }
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(*tree->Count(), 300u);
  // Full scan comes back sorted by key -> slots ascending.
  auto rids = tree->Scan(KeyEncoder::Int64LowerBound(INT64_MIN),
                         KeyEncoder::Int64UpperBound(INT64_MAX));
  ASSERT_TRUE(rids.ok());
  ASSERT_EQ(rids->size(), 300u);
  for (size_t i = 1; i < rids->size(); ++i) {
    EXPECT_LT((*rids)[i - 1].slot, (*rids)[i].slot);
  }
}

TEST(BTreeTest, PersistsViaMetaPage) {
  Env env;
  storage::PageId meta;
  {
    auto tree = BTree::Create(&env.pool);
    ASSERT_TRUE(tree.ok());
    meta = tree->meta_page();
    for (int i = 0; i < 50; ++i) {
      const Rid rid = MakeRid(0, static_cast<uint16_t>(i));
      ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(i, rid), rid).ok());
    }
  }
  BTree reopened = BTree::Open(&env.pool, meta);
  EXPECT_EQ(*reopened.Count(), 50u);
  const Rid rid7 = MakeRid(0, 7);
  auto found = reopened.Get(KeyEncoder::FromInt64(7, rid7));
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found == rid7);
}

TEST(BTreeCursorTest, StreamsRangeInOrder) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 200; ++i) {
    const Rid rid = MakeRid(0, static_cast<uint16_t>(i));
    ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(i, rid), rid).ok());
  }
  BTreeCursor cursor(&*tree, KeyEncoder::Int64LowerBound(50),
                     KeyEncoder::Int64UpperBound(120));
  int expected = 50;
  for (;;) {
    auto item = cursor.Next();
    ASSERT_TRUE(item.ok());
    if (!item->has_value()) break;
    EXPECT_EQ((**item).rid.slot, expected);
    ++expected;
  }
  EXPECT_EQ(expected, 121);
  // Exhausted cursors stay exhausted.
  auto after = cursor.Next();
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->has_value());
}

TEST(BTreeCursorTest, EmptyRangeAndEmptyTree) {
  Env env;
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  BTreeCursor empty_tree(&*tree, KeyEncoder::Int64LowerBound(0),
                         KeyEncoder::Int64UpperBound(100));
  auto item = empty_tree.Next();
  ASSERT_TRUE(item.ok());
  EXPECT_FALSE(item->has_value());

  const Rid rid = MakeRid(0, 1);
  ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(5, rid), rid).ok());
  BTreeCursor empty_range(&*tree, KeyEncoder::Int64LowerBound(50),
                          KeyEncoder::Int64UpperBound(60));
  item = empty_range.Next();
  ASSERT_TRUE(item.ok());
  EXPECT_FALSE(item->has_value());
}

TEST(BTreeCursorTest, AgreesWithScanAcrossLeafBoundaries) {
  Env env(128);  // leaf capacity 3: ranges span many leaves
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  Random rng(71);
  std::set<int64_t> keys;
  while (keys.size() < 300) {
    keys.insert(static_cast<int64_t>(rng.Uniform(10000)));
  }
  for (const int64_t k : keys) {
    const Rid rid = MakeRid(static_cast<uint32_t>(k), 0);
    ASSERT_TRUE(tree->Insert(KeyEncoder::FromInt64(k, rid), rid).ok());
  }
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(10000));
    int64_t hi = static_cast<int64_t>(rng.Uniform(10000));
    if (lo > hi) std::swap(lo, hi);
    auto batch = tree->Scan(KeyEncoder::Int64LowerBound(lo),
                            KeyEncoder::Int64UpperBound(hi));
    ASSERT_TRUE(batch.ok());
    BTreeCursor cursor(&*tree, KeyEncoder::Int64LowerBound(lo),
                       KeyEncoder::Int64UpperBound(hi));
    std::vector<Rid> streamed;
    for (;;) {
      auto item = cursor.Next();
      ASSERT_TRUE(item.ok());
      if (!item->has_value()) break;
      streamed.push_back((**item).rid);
    }
    ASSERT_EQ(streamed.size(), batch->size());
    for (size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_TRUE(streamed[i] == (*batch)[i]);
    }
  }
}

/// Randomized differential test against std::map across page sizes.
class BTreeRandomized : public ::testing::TestWithParam<
                            std::tuple<uint32_t /*page*/, int /*seed*/>> {};

TEST_P(BTreeRandomized, MatchesReferenceMap) {
  const auto [page_size, seed] = GetParam();
  Env env(page_size);
  auto tree = BTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());

  Random rng(static_cast<uint64_t>(seed));
  std::map<int64_t, Rid> reference;

  for (int step = 0; step < 2000; ++step) {
    const int64_t user_key = static_cast<int64_t>(rng.Uniform(500));
    const auto it = reference.find(user_key);
    if (rng.Bernoulli(0.6)) {
      if (it == reference.end()) {
        const Rid rid = MakeRid(static_cast<uint32_t>(user_key), 0);
        ASSERT_TRUE(
            tree->Insert(KeyEncoder::FromInt64(user_key, rid), rid).ok());
        reference[user_key] = rid;
      }
    } else if (it != reference.end()) {
      ASSERT_TRUE(
          tree->Delete(KeyEncoder::FromInt64(user_key, it->second)).ok());
      reference.erase(it);
    }
  }

  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(*tree->Count(), reference.size());
  for (const auto& [user_key, rid] : reference) {
    auto found = tree->Get(KeyEncoder::FromInt64(user_key, rid));
    ASSERT_TRUE(found.ok()) << user_key;
    EXPECT_TRUE(*found == rid);
  }
  // Range scans agree with the reference on 20 random ranges.
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(500));
    int64_t hi = static_cast<int64_t>(rng.Uniform(500));
    if (lo > hi) std::swap(lo, hi);
    auto rids = tree->Scan(KeyEncoder::Int64LowerBound(lo),
                           KeyEncoder::Int64UpperBound(hi));
    ASSERT_TRUE(rids.ok());
    size_t expected = 0;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      ++expected;
    }
    EXPECT_EQ(rids->size(), expected) << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    PageSizesAndSeeds, BTreeRandomized,
    ::testing::Combine(::testing::Values(128u, 256u, 512u),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace pictdb::btree
