// Differential property test for the SIMD rect kernels: every vector
// family must produce bit-identical verdict masks to the scalar
// reference (which is itself phrased directly on the geom::Rect
// predicates) over an adversarial rect corpus — touching edges,
// zero-area rects, infinities, denormals, NaNs, inverted (empty) rects
// — at every lane count from 0 through several vector widths and a
// full 64-bit mask word.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "simd/dispatch.h"
#include "simd/rect_kernels.h"

namespace pictdb::simd {
namespace {

using geom::Point;
using geom::Rect;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
constexpr double kMax = std::numeric_limits<double>::max();

/// Build a Rect without the normalizing constructor so inverted
/// (empty) and NaN rects survive verbatim.
Rect MakeRaw(double lox, double loy, double hix, double hiy) {
  Rect r;
  r.lo.x = lox;
  r.lo.y = loy;
  r.hi.x = hix;
  r.hi.y = hiy;
  return r;
}

/// Adversarial corpus: every pairing of these as (entry rect, window)
/// exercises the closed-boundary, empty-rect, and NaN edge cases the
/// kernels must replicate exactly.
std::vector<Rect> Corpus() {
  return {
      MakeRaw(0, 0, 10, 10),          // plain box
      MakeRaw(10, 10, 20, 20),        // touches the plain box at a corner
      MakeRaw(10, 0, 20, 10),         // shares an edge with the plain box
      MakeRaw(5, 5, 5, 5),            // zero-area point rect
      MakeRaw(3, 3, 3, 12),           // zero-width line rect
      MakeRaw(2, 2, 1, 1),            // inverted: empty
      MakeRaw(0, 0, -1, 5),           // inverted on x only: empty
      MakeRaw(-kInf, -kInf, kInf, kInf),    // everything
      MakeRaw(kInf, kInf, -kInf, -kInf),    // inverted infinities: empty
      MakeRaw(0, 0, kInf, kInf),            // half-open to +inf
      MakeRaw(kNan, 0, 10, 10),             // NaN lo.x
      MakeRaw(0, 0, kNan, kNan),            // NaN hi
      MakeRaw(kNan, kNan, kNan, kNan),      // all NaN
      MakeRaw(-kDenorm, -kDenorm, kDenorm, kDenorm),  // denormal box
      MakeRaw(0, 0, kDenorm, kDenorm),                // denormal corner
      MakeRaw(-kMax, -kMax, kMax, kMax),              // extreme finite
      MakeRaw(-7.25, -3.5, -1.125, -0.25),            // negative box
      MakeRaw(1e-300, 1e-300, 2e-300, 2e-300),        // tiny magnitudes
  };
}

std::vector<Point> PointCorpus() {
  return {
      Point{5, 5},         Point{10, 10},     Point{0, 0},
      Point{-1, -1},       Point{kInf, 0},    Point{kNan, 5},
      Point{kDenorm, 0},   Point{1e-300, 2e-300},
      Point{20, 0},        Point{3, 7},
  };
}

/// SoA arena for a lane set drawn cyclically from the corpus.
struct Lanes {
  std::vector<double> xmin, ymin, xmax, ymax;

  explicit Lanes(size_t count) {
    const std::vector<Rect> corpus = Corpus();
    for (size_t i = 0; i < count; ++i) {
      const Rect& r = corpus[i % corpus.size()];
      xmin.push_back(r.lo.x);
      ymin.push_back(r.lo.y);
      xmax.push_back(r.hi.x);
      ymax.push_back(r.hi.y);
    }
  }

  RectSoa View() const {
    return RectSoa{xmin.data(), ymin.data(), xmax.data(), ymax.data(),
                   xmin.size()};
  }
};

std::vector<const RectKernels*> VectorFamilies() {
  std::vector<const RectKernels*> families;
  if (Avx2Kernels() != nullptr) families.push_back(Avx2Kernels());
  if (Sse2Kernels() != nullptr) families.push_back(Sse2Kernels());
  return families;
}

void ExpectMasksEqual(const std::vector<uint64_t>& want,
                      const std::vector<uint64_t>& got, size_t count,
                      const char* family, const char* op, size_t window) {
  for (size_t w = 0; w < MaskWords(count); ++w) {
    EXPECT_EQ(want[w], got[w])
        << family << " " << op << " diverges from scalar at mask word "
        << w << " (count=" << count << ", window #" << window << ")";
  }
}

// Every vector family, every operation, every window from the corpus,
// every lane count 0..67 (crosses the SSE2 2-lane width, the AVX2
// 4-lane width, their tails, and a full 64-bit mask word boundary).
TEST(SimdKernelDifferential, BitIdenticalToScalarOnAdversarialRects) {
  const RectKernels& scalar = ScalarKernels();
  const std::vector<const RectKernels*> families = VectorFamilies();
  if (families.empty()) {
    GTEST_SKIP() << "no vector kernel family available on this build/CPU";
  }
  const std::vector<Rect> windows = Corpus();
  const std::vector<Point> points = PointCorpus();

  for (size_t count = 0; count <= 67; ++count) {
    const Lanes lanes(count);
    const RectSoa soa = lanes.View();
    const size_t words = MaskWords(count);
    std::vector<uint64_t> want(words + 1), got(words + 1);
    for (const RectKernels* family : families) {
      for (size_t wi = 0; wi < windows.size(); ++wi) {
        scalar.intersects(soa, windows[wi], want.data());
        family->intersects(soa, windows[wi], got.data());
        ExpectMasksEqual(want, got, count, family->name, "intersects", wi);

        scalar.contained_in(soa, windows[wi], want.data());
        family->contained_in(soa, windows[wi], got.data());
        ExpectMasksEqual(want, got, count, family->name, "contained_in",
                         wi);
      }
      for (size_t pi = 0; pi < points.size(); ++pi) {
        scalar.contains_point(soa, points[pi], want.data());
        family->contains_point(soa, points[pi], got.data());
        ExpectMasksEqual(want, got, count, family->name, "contains_point",
                         pi);
      }
    }
  }
}

// The scalar kernels ARE the geom::Rect predicates, lane by lane — the
// anchor that makes the differential test above meaningful.
TEST(SimdKernelDifferential, ScalarMatchesRectPredicates) {
  const RectKernels& scalar = ScalarKernels();
  const std::vector<Rect> windows = Corpus();
  const std::vector<Point> points = PointCorpus();
  const size_t count = 2 * Corpus().size();  // two full corpus cycles
  const Lanes lanes(count);
  const RectSoa soa = lanes.View();
  std::vector<uint64_t> mask(MaskWords(count));

  for (const Rect& window : windows) {
    scalar.intersects(soa, window, mask.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ((mask[i / 64] >> (i % 64)) & 1u,
                LaneRect(soa, i).Intersects(window) ? 1u : 0u)
          << "intersects lane " << i;
    }
    scalar.contained_in(soa, window, mask.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ((mask[i / 64] >> (i % 64)) & 1u,
                window.Contains(LaneRect(soa, i)) ? 1u : 0u)
          << "contained_in lane " << i;
    }
  }
  for (const Point& p : points) {
    scalar.contains_point(soa, p, mask.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ((mask[i / 64] >> (i % 64)) & 1u,
                LaneRect(soa, i).Contains(p) ? 1u : 0u)
          << "contains_point lane " << i;
    }
  }
}

// The transpose kernel is pure data movement; every family must
// reproduce the scalar lanes bit for bit — NaN payload bit patterns,
// denormals and infinities included — at every tail length.
TEST(SimdKernelDifferential, TransposeIsBitIdenticalAcrossFamilies) {
  const std::vector<Rect> corpus = Corpus();
  for (size_t count = 0; count <= 67; ++count) {
    // Packed on-disk entry image: 40-byte stride, corpus rects,
    // payloads with high and low bits exercised.
    std::vector<char> entries(count * 40);
    for (size_t i = 0; i < count; ++i) {
      const Rect& r = corpus[i % corpus.size()];
      char* p = entries.data() + i * 40;
      std::memcpy(p, &r.lo.x, 8);
      std::memcpy(p + 8, &r.lo.y, 8);
      std::memcpy(p + 16, &r.hi.x, 8);
      std::memcpy(p + 24, &r.hi.y, 8);
      const uint64_t payload = ~(uint64_t{i} * 0x9E3779B97F4A7C15ull);
      std::memcpy(p + 32, &payload, 8);
    }
    Lanes want(count), got(count);
    std::vector<uint64_t> want_pay(count), got_pay(count);
    ScalarKernels().transpose(entries.data(), count, want.xmin.data(),
                              want.ymin.data(), want.xmax.data(),
                              want.ymax.data(), want_pay.data());
    for (const RectKernels* family : VectorFamilies()) {
      family->transpose(entries.data(), count, got.xmin.data(),
                        got.ymin.data(), got.xmax.data(), got.ymax.data(),
                        got_pay.data());
      const size_t bytes = count * sizeof(double);
      EXPECT_EQ(std::memcmp(want.xmin.data(), got.xmin.data(), bytes), 0)
          << family->name << " xmin, count=" << count;
      EXPECT_EQ(std::memcmp(want.ymin.data(), got.ymin.data(), bytes), 0)
          << family->name << " ymin, count=" << count;
      EXPECT_EQ(std::memcmp(want.xmax.data(), got.xmax.data(), bytes), 0)
          << family->name << " xmax, count=" << count;
      EXPECT_EQ(std::memcmp(want.ymax.data(), got.ymax.data(), bytes), 0)
          << family->name << " ymax, count=" << count;
      EXPECT_EQ(want_pay, got_pay) << family->name << " count=" << count;
    }
  }
}

// Trailing bits of the last mask word must be zero (traversals iterate
// set bits; garbage past `count` would fabricate hits).
TEST(SimdKernelDifferential, TailBitsAreZero) {
  std::vector<const RectKernels*> families = VectorFamilies();
  families.push_back(&ScalarKernels());
  const Rect everything = MakeRaw(-kInf, -kInf, kInf, kInf);
  for (const RectKernels* family : families) {
    for (size_t count : {1u, 3u, 5u, 63u, 65u}) {
      const Lanes lanes(count);
      std::vector<uint64_t> mask(MaskWords(count), ~uint64_t{0});
      family->intersects(lanes.View(), everything, mask.data());
      const size_t tail = count % 64;
      if (tail != 0) {
        EXPECT_EQ(mask.back() >> tail, 0u)
            << family->name << " left garbage past lane " << count;
      }
    }
  }
}

// Ascending set-bit iteration must visit lanes in index order — the
// property that keeps kernel-driven traversals ordered identically to
// scalar entry loops.
TEST(ForEachSetBitTest, VisitsAscendingAcrossWords) {
  std::vector<uint64_t> mask = {0, 0, 0};
  const std::vector<size_t> set = {0, 1, 63, 64, 70, 127, 128, 150};
  for (size_t i : set) mask[i / 64] |= uint64_t{1} << (i % 64);
  std::vector<size_t> visited;
  ForEachSetBit(mask.data(), 151, [&](size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, set);
}

TEST(MaskWordsTest, RoundsUp) {
  EXPECT_EQ(MaskWords(0), 0u);
  EXPECT_EQ(MaskWords(1), 1u);
  EXPECT_EQ(MaskWords(64), 1u);
  EXPECT_EQ(MaskWords(65), 2u);
  EXPECT_EQ(MaskWords(128), 2u);
}

// The override is how tests pin a family; make sure it takes effect and
// restores the runtime choice on scope exit.
TEST(DispatchTest, ScopedOverrideForcesFamily) {
  const RectKernels& runtime = ActiveKernels();
  {
    ScopedKernelOverride force_scalar(&ScalarKernels());
    EXPECT_EQ(&ActiveKernels(), &ScalarKernels());
    EXPECT_FALSE(SimdActive());
  }
  EXPECT_EQ(&ActiveKernels(), &runtime);
}

// LaneRect must not normalize: an inverted lane comes back inverted.
TEST(LaneRectTest, PreservesInvertedRects) {
  const Lanes lanes(Corpus().size());
  const RectSoa soa = lanes.View();
  const Rect inverted = LaneRect(soa, 5);  // MakeRaw(2, 2, 1, 1) above
  EXPECT_EQ(inverted.lo.x, 2);
  EXPECT_EQ(inverted.hi.x, 1);
  EXPECT_TRUE(inverted.IsEmpty());
}

}  // namespace
}  // namespace pictdb::simd
