// Concurrency tests for the query service: 8 worker threads x 1k mixed
// window/kNN queries over one shared PACK-built tree, validated against
// a single-threaded oracle; plus admission control, graceful shutdown,
// metrics aggregation, and concurrent PSQL execution over a shared
// catalog. Run these under -fsanitize=thread as well as plain (see
// README: cmake -B build-tsan -S . -DPICTDB_SANITIZE=thread).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <latch>
#include <vector>

#include "check/invariants.h"
#include "common/random.h"
#include "pack/pack.h"
#include "psql/executor.h"
#include "rel/catalog.h"
#include "rtree/rtree.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "wal/durable_tree.h"
#include "workload/generators.h"
#include "workload/us_catalog.h"

namespace pictdb::service {
namespace {

using geom::Point;
using geom::Rect;
using rtree::Entry;
using rtree::RTree;

constexpr size_t kThreads = 8;
constexpr size_t kQueriesPerThread = 1000;
constexpr size_t kDistinct = 2000;
constexpr size_t kObjects = 20000;

/// Shared fixture: a PACK-built tree over kObjects uniform points,
/// behind a deliberately small sharded pool so concurrent traversals
/// continuously evict and reload pages.
class ServiceStressTest : public ::testing::Test {
 protected:
  ServiceStressTest()
      : disk_(512), pool_(&disk_, /*capacity=*/64, /*shards=*/4) {
    Random rng(42);
    points_ = workload::UniformPoints(&rng, kObjects, workload::PaperFrame());
    std::vector<storage::Rid> rids;
    rids.reserve(points_.size());
    for (size_t i = 0; i < points_.size(); ++i) {
      rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
    }
    auto tree = RTree::Create(&pool_);
    PICTDB_CHECK(tree.ok());
    tree_ = std::make_unique<RTree>(std::move(tree).value());
    PICTDB_CHECK_OK(pack::PackNearestNeighbor(
        tree_.get(), pack::MakeLeafEntries(points_, rids)));

    // Query mix and single-threaded oracle. kDistinct distinct queries;
    // the stress test submits each several times to reach the full
    // 8x1000 volume without paying the brute-force oracle 8000 times.
    Random qrng(7);
    const size_t n = kDistinct;
    queries_.reserve(n);
    expected_.reserve(n);
    // GCC 12 falsely flags the Query variant's inactive-alternative
    // bytes as "maybe uninitialized" when a temporary is moved into the
    // vector (same known false positive as net/protocol.cc).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
    for (size_t i = 0; i < n; ++i) {
      if (i % 2 == 0) {
        const double cx = qrng.UniformDouble(0, 1000);
        const double cy = qrng.UniformDouble(0, 1000);
        const Rect w = Rect::FromCenterHalfExtent(cx, 15, cy, 15);
        queries_.push_back(WindowQuery{w, /*contained_only=*/false});
        size_t count = 0;
        for (const Point& p : points_) {
          if (w.Contains(p)) ++count;
        }
        expected_.push_back(count);
      } else {
        const Point q{qrng.UniformDouble(0, 1000),
                      qrng.UniformDouble(0, 1000)};
        queries_.push_back(KnnQuery{q, /*k=*/5});
        expected_.push_back(5);
      }
    }
#pragma GCC diagnostic pop
  }

  /// Teardown: the shared tree must survive the concurrent battering
  /// with every structural invariant intact (parent MBRs, levels, CRCs,
  /// no leaked pins).
  void TearDown() override {
    const check::ValidationReport report =
        check::TreeValidator().Check(*tree_);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
  std::unique_ptr<RTree> tree_;
  std::vector<Point> points_;
  std::vector<Query> queries_;
  std::vector<size_t> expected_;
};

TEST_F(ServiceStressTest, EightThreadsMatchSingleThreadedOracle) {
  const size_t total = kThreads * kQueriesPerThread;
  ServiceOptions options;
  options.num_threads = kThreads;
  options.queue_capacity = total;  // no rejects in this test
  QueryService service(tree_.get(), /*executor=*/nullptr, options);

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  futures.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    auto submitted = service.Submit(queries_[i % kDistinct]);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted).value());
  }

  for (size_t i = 0; i < futures.size(); ++i) {
    StatusOr<QueryResult> outcome = futures[i].get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    const QueryResult& r = outcome.value();
    const size_t qi = i % kDistinct;
    if (qi % 2 == 0) {
      EXPECT_EQ(r.hits.size(), expected_[qi]) << "window query " << i;
    } else {
      ASSERT_EQ(r.neighbors.size(), expected_[qi]) << "knn query " << i;
      for (size_t j = 1; j < r.neighbors.size(); ++j) {
        EXPECT_LE(r.neighbors[j - 1].distance, r.neighbors[j].distance);
      }
    }
    EXPECT_GT(r.stats.nodes_visited, 0u);
  }

  service.Shutdown();
  const ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.submitted, total);
  EXPECT_EQ(m.completed, total);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GT(m.total_nodes_visited, 0u);
  EXPECT_GE(m.max_latency_us, 1u);
  // No pins may leak across eight thousand concurrent traversals.
  EXPECT_EQ(pool_.pinned_frames(), 0u);
}

TEST_F(ServiceStressTest, GracefulShutdownDrainsEveryAdmittedQuery) {
  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 1024;
  QueryService service(tree_.get(), nullptr, options);

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (size_t i = 0; i < 300; ++i) {
    auto submitted = service.Submit(queries_[i]);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  service.Shutdown();

  // After Shutdown returns, every admitted query has a ready result.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
  const ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.completed + m.failed, 300u);

  // New submissions are refused once shut down.
  auto late = service.Submit(queries_[0]);
  EXPECT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsInvalidArgument());
}

TEST_F(ServiceStressTest, AdmissionControlRejectsWhenQueueIsFull) {
  // One worker stalled on simulated disk latency; a 2-deep queue must
  // reject most of a 30-query burst instead of growing unboundedly.
  ASSERT_TRUE(pool_.FlushAll().ok());  // make the tree visible to disk_
  storage::LatencyDiskManager slow_disk(&disk_,
                                        std::chrono::microseconds(20000),
                                        std::chrono::microseconds(0));
  storage::BufferPool slow_pool(&slow_disk, 8, /*shards=*/1);
  auto tree = RTree::Open(&slow_pool, tree_->meta_page());
  ASSERT_TRUE(tree.ok());

  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  QueryService service(&tree.value(), nullptr, options);

  size_t rejected = 0;
  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (size_t i = 0; i < 30; ++i) {
    auto submitted = service.Submit(queries_[0]);
    if (submitted.ok()) {
      futures.push_back(std::move(submitted).value());
    } else {
      EXPECT_TRUE(submitted.status().IsResourceExhausted());
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
  const ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.submitted + m.rejected, 30u);
  EXPECT_EQ(m.rejected, rejected);
  EXPECT_EQ(m.completed, m.submitted);
}

TEST(ThreadPoolTest, BoundedQueueAndGracefulDrain) {
  ThreadPool pool(2, 2);
  std::latch started(2);
  std::latch release(1);
  std::atomic<int> done{0};

  // Two blockers occupy both workers...
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&] {
                      started.count_down();
                      release.wait();
                      done.fetch_add(1);
                    })
                    .ok());
  }
  started.wait();  // both workers now busy, queue empty
  // ...two more fill the queue; the next is deterministically rejected.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&] { done.fetch_add(1); }).ok());
  }
  const Status overflow = pool.TrySubmit([&] { done.fetch_add(1); });
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.IsResourceExhausted());

  release.count_down();
  pool.Shutdown();  // must drain every admitted task
  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(pool.queue_depth(), 0u);

  // Submissions after shutdown are refused.
  EXPECT_FALSE(pool.TrySubmit([] {}).ok());
}

TEST(ServicePsqlTest, ConcurrentSelectsOverSharedCatalog) {
  storage::InMemoryDiskManager disk(1024);
  storage::BufferPool pool(&disk, 1 << 12, /*shards=*/8);
  rel::Catalog catalog(&pool);
  PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog, 4));
  psql::Executor executor(&catalog);

  // Single-threaded reference.
  const auto oracle = executor.Query(
      "select city, population, loc from cities on us-map "
      "at loc covered-by {-74 +- 4, 41 +- 3}");
  ASSERT_TRUE(oracle.ok());
  const size_t expected_rows = oracle.value().rows.size();
  ASSERT_GT(expected_rows, 0u);

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 1024;
  QueryService service(nullptr, &executor, options);

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (size_t i = 0; i < 400; ++i) {
    auto submitted = service.Submit(PsqlQuery{
        "select city, population, loc from cities on us-map "
        "at loc covered-by {-74 +- 4, 41 +- 3}"});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& f : futures) {
    StatusOr<QueryResult> outcome = f.get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome.value().table.has_value());
    EXPECT_EQ(outcome.value().table->rows.size(), expected_rows);
    EXPECT_TRUE(outcome.value().table->stats.used_spatial_index);
  }
  service.Shutdown();
  EXPECT_EQ(service.Metrics().completed, 400u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(ServiceJoinTest, JoinQueryCountsIntersectingPairs) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 256, /*shards=*/2);

  auto make_tree = [&](uint64_t seed) {
    Random r(seed);
    const auto pts =
        workload::UniformPoints(&r, 2000, workload::PaperFrame());
    std::vector<storage::Rid> rids;
    for (size_t i = 0; i < pts.size(); ++i) {
      rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
    }
    auto tree = RTree::Create(&pool);
    PICTDB_CHECK(tree.ok());
    auto owned = std::make_unique<RTree>(std::move(tree).value());
    PICTDB_CHECK_OK(pack::PackSortChunk(
        owned.get(), pack::MakeLeafEntries(pts, rids)));
    return owned;
  };
  auto left = make_tree(1);
  auto right = make_tree(2);

  // Oracle join count, single-threaded.
  rtree::JoinStats oracle;
  uint64_t oracle_pairs = 0;
  PICTDB_CHECK_OK(rtree::SpatialJoin(
      *left, *right,
      [&oracle_pairs](const rtree::LeafHit&, const rtree::LeafHit&) {
        ++oracle_pairs;
      },
      &oracle));

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 64;
  QueryService service(left.get(), nullptr, options);
  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (int i = 0; i < 16; ++i) {
    auto submitted = service.Submit(JoinQuery{right.get()});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& f : futures) {
    StatusOr<QueryResult> outcome = f.get();
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().join_pairs, oracle_pairs);
  }
}

// --- Write path ---------------------------------------------------------

TEST(ServiceWriteTest, ExecuteWriteRequiresABoundWriter) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 256);
  auto tree = RTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  QueryService svc(&*tree, /*executor=*/nullptr, {});
  const Status status = svc.ExecuteWrite(
      InsertOp{Rect(0, 0, 1, 1), storage::Rid{1, 0}});
  EXPECT_TRUE(status.IsNotSupported()) << status.ToString();
  EXPECT_EQ(svc.write_metrics().committed(), 0u);
}

TEST(ServiceWriteTest, WritesCommitCountAndFireHook) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 1024);
  auto created = wal::DurableRTree::Create(&pool);
  ASSERT_TRUE(created.ok());
  auto durable = std::move(created).value();

  QueryService svc(&durable->tree(), /*executor=*/nullptr, {});
  svc.BindWriter(durable.get());
  std::atomic<uint64_t> hook_calls{0};
  svc.SetCommitHook([&] { hook_calls.fetch_add(1); });

  ASSERT_TRUE(
      svc.ExecuteWrite(InsertOp{Rect(0, 0, 1, 1), storage::Rid{1, 0}}).ok());
  ASSERT_TRUE(
      svc.ExecuteWrite(InsertOp{Rect(5, 5, 6, 6), storage::Rid{2, 0}}).ok());
  ASSERT_TRUE(svc.ExecuteWrite(UpdateOp{Rect(0, 0, 1, 1), storage::Rid{1, 0},
                                        Rect(9, 9, 10, 10),
                                        storage::Rid{1, 0}})
                  .ok());
  ASSERT_TRUE(
      svc.ExecuteWrite(DeleteOp{Rect(5, 5, 6, 6), storage::Rid{2, 0}}).ok());
  EXPECT_EQ(hook_calls.load(), 4u);

  // A precondition miss commits nothing and must NOT fire the hook
  // (the server relies on this: no invalidation without a commit).
  const Status miss =
      svc.ExecuteWrite(DeleteOp{Rect(5, 5, 6, 6), storage::Rid{2, 0}});
  EXPECT_TRUE(miss.IsNotFound()) << miss.ToString();
  EXPECT_EQ(hook_calls.load(), 4u);

  const WriteMetricsSnapshot wm = svc.write_metrics();
  EXPECT_EQ(wm.inserts, 2u);
  EXPECT_EQ(wm.updates, 1u);
  EXPECT_EQ(wm.deletes, 1u);
  EXPECT_EQ(wm.not_found, 1u);
  EXPECT_EQ(wm.failed, 0u);
  EXPECT_EQ(wm.commit_latency.count(), 4u);
  EXPECT_EQ(durable->tree().Size(), 1u);
}

TEST(ServiceWriteTest, AsyncWritesCompleteThroughTheWorkerPool) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 1024);
  auto created = wal::DurableRTree::Create(&pool);
  ASSERT_TRUE(created.ok());
  auto durable = std::move(created).value();
  QueryService svc(&durable->tree(), /*executor=*/nullptr, {});
  svc.BindWriter(durable.get());

  constexpr size_t kWrites = 64;
  std::latch done(kWrites);
  std::atomic<uint64_t> ok_count{0};
  for (size_t i = 0; i < kWrites; ++i) {
    const double x = static_cast<double>(i);
    const Status admitted = svc.SubmitWriteWithCallback(
        InsertOp{Rect(x, x, x + 1, x + 1),
                 storage::Rid{static_cast<storage::PageId>(i + 1), 0}},
        [&](Status status) {
          if (status.ok()) ok_count.fetch_add(1);
          done.count_down();
        });
    ASSERT_TRUE(admitted.ok()) << admitted.ToString();
  }
  done.wait();
  EXPECT_EQ(ok_count.load(), kWrites);
  EXPECT_EQ(durable->tree().Size(), kWrites);
  svc.Shutdown();
}

// Batched traversals share one DFS across all windows of a request;
// this must stay safe (and TSan-clean) while a writer commits latched
// mutations underneath. Each in-flight batch sees some epoch-consistent
// tree, so every hit must intersect its window and carry a rid the
// writer actually inserted; once the writer quiesces, the batch answer
// must equal the single-window answers exactly.
TEST(ServiceWriteTest, BatchedQueriesStayConsistentUnderConcurrentWriter) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 1024);
  auto created = wal::DurableRTree::Create(&pool);
  ASSERT_TRUE(created.ok());
  auto durable = std::move(created).value();

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 4096;
  QueryService svc(&durable->tree(), /*executor=*/nullptr, options);
  svc.BindWriter(durable.get());

  constexpr size_t kSeedInserts = 256;
  constexpr size_t kRacingInserts = 512;
  constexpr size_t kBatches = 200;

  auto rect_for = [](size_t i) {
    const double x = static_cast<double>(i % 100) * 10.0;
    const double y = static_cast<double>(i / 100) * 10.0;
    return Rect(x, y, x + 4, y + 4);
  };
  for (size_t i = 0; i < kSeedInserts; ++i) {
    ASSERT_TRUE(
        svc.ExecuteWrite(
               InsertOp{rect_for(i),
                        storage::Rid{static_cast<storage::PageId>(i + 1), 0}})
            .ok());
  }

  // Fixed window set reused by every batch; generous extents so most
  // windows are nonempty from the seed inserts alone.
  Random qrng(29);
  std::vector<Rect> windows;
  for (size_t i = 0; i < 6; ++i) {
    windows.push_back(Rect::FromCenterHalfExtent(
        qrng.UniformDouble(0, 1000), qrng.UniformDouble(20, 120),
        qrng.UniformDouble(0, 100), qrng.UniformDouble(20, 120)));
  }

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  futures.reserve(kBatches);
  for (size_t b = 0; b < kBatches; ++b) {
    auto submitted =
        svc.Submit(BatchWindowQuery{windows, /*contained_only=*/false});
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted).value());
    // Interleave commits with admissions so traversals race mutations.
    if (b < kRacingInserts) {
      const size_t i = kSeedInserts + b;
      ASSERT_TRUE(svc.ExecuteWrite(
                         InsertOp{rect_for(i),
                                  storage::Rid{
                                      static_cast<storage::PageId>(i + 1), 0}})
                      .ok());
    }
  }
  const size_t total_inserts = kSeedInserts + std::min(kBatches, kRacingInserts);

  for (auto& f : futures) {
    StatusOr<QueryResult> outcome = f.get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    const QueryResult& r = outcome.value();
    ASSERT_EQ(r.batch.size(), windows.size());
    for (size_t w = 0; w < windows.size(); ++w) {
      EXPECT_FALSE(r.batch[w].degraded);
      for (const rtree::LeafHit& hit : r.batch[w].hits) {
        EXPECT_TRUE(hit.mbr.Intersects(windows[w]));
        const size_t id = hit.rid.page_id;
        ASSERT_GE(id, 1u);
        ASSERT_LE(id, total_inserts);
        EXPECT_TRUE(hit.mbr == rect_for(id - 1));
      }
    }
  }

  // Quiesced: the batch answer must now be exactly the single-window
  // answers, hit for hit.
  auto settled = svc.Submit(BatchWindowQuery{windows, false});
  ASSERT_TRUE(settled.ok());
  StatusOr<QueryResult> outcome = std::move(settled).value().get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->batch.size(), windows.size());
  for (size_t w = 0; w < windows.size(); ++w) {
    auto single = durable->tree().SearchIntersects(windows[w]);
    ASSERT_TRUE(single.ok());
    const auto& hits = outcome->batch[w].hits;
    ASSERT_EQ(hits.size(), single->size()) << "window " << w;
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_TRUE(hits[i].mbr == (*single)[i].mbr);
      EXPECT_TRUE(hits[i].rid == (*single)[i].rid);
    }
    EXPECT_GT(hits.size(), 0u) << "vacuous window " << w;
  }
  svc.Shutdown();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

}  // namespace
}  // namespace pictdb::service
