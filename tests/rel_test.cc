#include <gtest/gtest.h>

#include <set>

#include "rel/catalog.h"
#include "rel/relation.h"
#include "rel/schema.h"
#include "rel/tuple.h"
#include "rel/value.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace pictdb::rel {
namespace {

using geom::Geometry;
using geom::Point;
using geom::Rect;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 4096) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

Schema CitySchema() {
  return Schema({{"city", ValueType::kString},
                 {"population", ValueType::kInt},
                 {"loc", ValueType::kGeometry}});
}

Tuple CityTuple(const std::string& name, int64_t pop, double x, double y) {
  return Tuple({Value(name), Value(pop), Value(Geometry(Point{x, y}))});
}

// --- Value ---------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{42}).as_int(), 42);
  EXPECT_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value(std::string("hi")).as_string(), "hi");
  EXPECT_TRUE(Value(Geometry(Point{1, 2})).as_geometry().is_point());
}

TEST(ValueTest, NumericComparisonsCrossType) {
  EXPECT_EQ(*Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(*Value(int64_t{2}).Compare(Value(2.5)), 0);
  EXPECT_GT(*Value(3.5).Compare(Value(int64_t{3})), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(*Value(std::string("abc")).Compare(Value(std::string("abd"))), 0);
  EXPECT_EQ(*Value(std::string("x")).Compare(Value(std::string("x"))), 0);
}

TEST(ValueTest, NullsCompareFirst) {
  EXPECT_EQ(*Value().Compare(Value()), 0);
  EXPECT_LT(*Value().Compare(Value(int64_t{0})), 0);
  EXPECT_GT(*Value(int64_t{0}).Compare(Value()), 0);
}

TEST(ValueTest, IncomparableTypesError) {
  EXPECT_FALSE(Value(std::string("a")).Compare(Value(int64_t{1})).ok());
  EXPECT_FALSE(
      Value(Geometry(Point{0, 0})).Compare(Value(int64_t{1})).ok());
}

TEST(ValueTest, SerializeRoundTripAllTypes) {
  const std::vector<Value> values = {
      Value(), Value(int64_t{-7}), Value(3.25), Value(std::string("hello")),
      Value(Geometry(Rect(0, 0, 5, 5)))};
  for (const Value& v : values) {
    std::string bytes;
    v.SerializeTo(&bytes);
    size_t offset = 0;
    auto back = Value::DeserializeFrom(bytes, &offset);
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(offset, bytes.size());
    EXPECT_EQ(back->type(), v.type());
    EXPECT_EQ(back->ToString(), v.ToString());
  }
}

TEST(ValueTest, DeserializeRejectsTruncation) {
  Value v(std::string("hello world"));
  std::string bytes;
  v.SerializeTo(&bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t offset = 0;
    const std::string prefix = bytes.substr(0, cut);
    EXPECT_FALSE(Value::DeserializeFrom(prefix, &offset).ok()) << cut;
  }
}

// --- Schema / Tuple ----------------------------------------------------------------

TEST(SchemaTest, LookupAndDisplay) {
  const Schema s = CitySchema();
  EXPECT_EQ(*s.IndexOf("population"), 1u);
  EXPECT_FALSE(s.IndexOf("nope").ok());
  EXPECT_TRUE(s.HasColumn("loc"));
  EXPECT_EQ(s.ToString("cities"),
            "cities(city string, population int, loc geometry)");
}

TEST(TupleTest, ConformanceChecks) {
  const Schema s = CitySchema();
  EXPECT_TRUE(CityTuple("A", 1, 0, 0).ConformsTo(s).ok());
  // Wrong arity.
  EXPECT_FALSE(Tuple({Value(int64_t{1})}).ConformsTo(s).ok());
  // Wrong type.
  EXPECT_FALSE(Tuple({Value(int64_t{1}), Value(int64_t{2}),
                      Value(Geometry(Point{0, 0}))})
                   .ConformsTo(s)
                   .ok());
  // Nulls conform to any column.
  EXPECT_TRUE(
      Tuple({Value(), Value(), Value()}).ConformsTo(s).ok());
}

TEST(TupleTest, SerializeRoundTrip) {
  const Tuple t = CityTuple("Chicago", 2693976, -87.6, 41.9);
  auto back = Tuple::Deserialize(t.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), t.ToString());
}

// --- Relation ------------------------------------------------------------------------

TEST(RelationTest, InsertGetDelete) {
  Env env;
  auto rel = Relation::Create(&env.pool, "cities", CitySchema());
  ASSERT_TRUE(rel.ok());
  auto rid = rel->Insert(CityTuple("Chicago", 2693976, -87.6, 41.9));
  ASSERT_TRUE(rid.ok());
  auto tuple = rel->Get(*rid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(0).as_string(), "Chicago");
  ASSERT_TRUE(rel->Delete(*rid).ok());
  EXPECT_FALSE(rel->Get(*rid).ok());
  EXPECT_EQ(*rel->Count(), 0u);
}

TEST(RelationTest, RejectsNonConformingTuple) {
  Env env;
  auto rel = Relation::Create(&env.pool, "cities", CitySchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(rel->Insert(Tuple({Value(int64_t{5})})).ok());
}

TEST(RelationTest, BTreeIndexBackfillsAndMaintains) {
  Env env;
  auto rel = Relation::Create(&env.pool, "cities", CitySchema());
  ASSERT_TRUE(rel.ok());
  // Pre-index rows.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        rel->Insert(CityTuple("c" + std::to_string(i), i * 100, i, i)).ok());
  }
  ASSERT_TRUE(rel->CreateBTreeIndex("population").ok());
  EXPECT_TRUE(rel->HasBTreeIndex("population"));
  // Post-index rows.
  std::vector<Rid> extra;
  for (int i = 20; i < 30; ++i) {
    auto rid =
        rel->Insert(CityTuple("c" + std::to_string(i), i * 100, i, i));
    ASSERT_TRUE(rid.ok());
    extra.push_back(*rid);
  }
  // Range [500, 1500]: populations 500,600,...,1500 -> 11 rows.
  auto rids = rel->IndexRange("population", Value(int64_t{500}),
                              Value(int64_t{1500}));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 11u);
  // Deletion removes index entries.
  ASSERT_TRUE(rel->Delete(extra[0]).ok());  // population 2000
  auto after = rel->IndexRange("population", Value(int64_t{2000}),
                               Value(int64_t{2000}));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty());
}

TEST(RelationTest, IndexRangeOpenEnds) {
  Env env;
  auto rel = Relation::Create(&env.pool, "cities", CitySchema());
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        rel->Insert(CityTuple("c" + std::to_string(i), i, i, i)).ok());
  }
  ASSERT_TRUE(rel->CreateBTreeIndex("population").ok());
  auto below = rel->IndexRange("population", Value(), Value(int64_t{4}));
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(below->size(), 5u);
  auto above = rel->IndexRange("population", Value(int64_t{7}), Value());
  ASSERT_TRUE(above.ok());
  EXPECT_EQ(above->size(), 3u);
}

TEST(RelationTest, BTreeIndexRejectsGeometryColumn) {
  Env env;
  auto rel = Relation::Create(&env.pool, "cities", CitySchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->CreateBTreeIndex("loc").IsInvalidArgument());
  EXPECT_TRUE(rel->CreateBTreeIndex("nope").IsNotFound());
}

TEST(RelationTest, SpatialIndexPackedAndMaintained) {
  Env env;
  auto rel = Relation::Create(&env.pool, "cities", CitySchema());
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rel->Insert(CityTuple("c" + std::to_string(i), i,
                                      i * 10.0, (i % 7) * 10.0))
                    .ok());
  }
  rtree::RTreeOptions opts;
  opts.max_entries = 4;
  ASSERT_TRUE(rel->CreateSpatialIndex("loc", opts).ok());
  EXPECT_TRUE(rel->HasSpatialIndex("loc"));
  auto index = rel->SpatialIndex("loc");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Size(), 40u);
  ASSERT_TRUE((*index)->Validate().ok());

  // Insert after indexing: the R-tree follows.
  auto rid = rel->Insert(CityTuple("new", 1, 555, 5));
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ((*index)->Size(), 41u);
  auto hits = (*index)->SearchPoint(Point{555, 5});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_TRUE((*hits)[0].rid == *rid);

  // Delete removes from the R-tree.
  ASSERT_TRUE(rel->Delete(*rid).ok());
  EXPECT_EQ((*index)->Size(), 40u);
  EXPECT_TRUE((*index)->SearchPoint(Point{555, 5})->empty());
}

TEST(RelationTest, SpatialLoaderVariants) {
  for (const auto loader :
       {Relation::SpatialLoader::kPack, Relation::SpatialLoader::kStr,
        Relation::SpatialLoader::kHilbert,
        Relation::SpatialLoader::kInsert}) {
    Env env;
    auto rel = Relation::Create(&env.pool, "cities", CitySchema());
    ASSERT_TRUE(rel.ok());
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(rel->Insert(CityTuple("c" + std::to_string(i), i,
                                        i * 7.0, i * 3.0))
                      .ok());
    }
    rtree::RTreeOptions opts;
    opts.max_entries = 4;
    opts.min_entries = 2;
    ASSERT_TRUE(rel->CreateSpatialIndex("loc", opts, loader).ok());
    auto index = rel->SpatialIndex("loc");
    ASSERT_TRUE(index.ok());
    EXPECT_EQ((*index)->Size(), 25u);
    ASSERT_TRUE((*index)->Validate().ok());
  }
}

// --- Catalog -----------------------------------------------------------------------------

TEST(CatalogTest, RelationLifecycle) {
  Env env;
  Catalog catalog(&env.pool);
  ASSERT_TRUE(catalog.CreateRelation("cities", CitySchema()).ok());
  EXPECT_TRUE(
      catalog.CreateRelation("cities", CitySchema()).IsAlreadyExists());
  EXPECT_TRUE(catalog.GetRelation("cities").ok());
  EXPECT_TRUE(catalog.GetRelation("nope").status().IsNotFound());
  EXPECT_EQ(catalog.RelationNames().size(), 1u);
}

TEST(CatalogTest, PicturesAndAssociations) {
  Env env;
  Catalog catalog(&env.pool);
  ASSERT_TRUE(catalog.CreateRelation("cities", CitySchema()).ok());
  auto cities = catalog.GetRelation("cities");
  ASSERT_TRUE(cities.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*cities)
                    ->Insert(CityTuple("c" + std::to_string(i), i, i, i))
                    .ok());
  }
  ASSERT_TRUE(catalog.CreatePicture("us-map", Rect(0, 0, 100, 100)).ok());
  EXPECT_TRUE(catalog.CreatePicture("us-map", Rect(0, 0, 1, 1))
                  .IsAlreadyExists());
  EXPECT_FALSE(catalog.CreatePicture("bad", Rect()).ok());

  rtree::RTreeOptions opts;
  opts.max_entries = 4;
  ASSERT_TRUE(catalog.Associate("us-map", "cities", "loc", opts).ok());
  auto column = catalog.AssociationColumn("us-map", "cities");
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(*column, "loc");
  EXPECT_TRUE((*cities)->HasSpatialIndex("loc"));
  EXPECT_TRUE(
      catalog.AssociationColumn("us-map", "lakes").status().IsNotFound());
}

TEST(CatalogTest, RelationOnMultiplePictures) {
  Env env;
  Catalog catalog(&env.pool);
  ASSERT_TRUE(catalog.CreateRelation("cities", CitySchema()).ok());
  ASSERT_TRUE(catalog.CreatePicture("a", Rect(0, 0, 10, 10)).ok());
  ASSERT_TRUE(catalog.CreatePicture("b", Rect(0, 0, 10, 10)).ok());
  ASSERT_TRUE(catalog.Associate("a", "cities", "loc").ok());
  // Second association reuses the existing index.
  ASSERT_TRUE(catalog.Associate("b", "cities", "loc").ok());
  EXPECT_TRUE(catalog.AssociationColumn("a", "cities").ok());
  EXPECT_TRUE(catalog.AssociationColumn("b", "cities").ok());
}

}  // namespace
}  // namespace pictdb::rel
