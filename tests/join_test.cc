#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/random.h"
#include "pack/pack.h"
#include "rtree/join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::rtree {
namespace {

using geom::Rect;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 8192) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

RTree MakeTree(Env* env, const std::vector<Rect>& rects, bool packed,
               size_t max_entries = 8) {
  RTreeOptions opts;
  opts.max_entries = max_entries;
  auto tree = RTree::Create(&env->pool, opts);
  PICTDB_CHECK(tree.ok());
  if (packed) {
    std::vector<Rid> rids;
    for (size_t i = 0; i < rects.size(); ++i) {
      rids.push_back(Rid{static_cast<storage::PageId>(i), 0});
    }
    PICTDB_CHECK_OK(pack::PackNearestNeighbor(
        &*tree, pack::MakeLeafEntries(rects, rids)));
  } else {
    for (size_t i = 0; i < rects.size(); ++i) {
      PICTDB_CHECK_OK(
          tree->Insert(rects[i], Rid{static_cast<storage::PageId>(i), 0}));
    }
  }
  return std::move(tree).value();
}

using PairSet = std::set<std::pair<storage::PageId, storage::PageId>>;

PairSet RunJoin(const RTree& a, const RTree& b, bool nested,
                JoinStats* stats = nullptr) {
  PairSet out;
  const auto cb = [&out](const LeafHit& l, const LeafHit& r) {
    out.insert({l.rid.page_id, r.rid.page_id});
  };
  if (nested) {
    PICTDB_CHECK_OK(NestedLoopJoin(a, b, cb, stats));
  } else {
    PICTDB_CHECK_OK(SpatialJoin(a, b, cb, stats));
  }
  return out;
}

TEST(JoinTest, EmptyTrees) {
  Env env;
  RTree a = MakeTree(&env, {}, false);
  RTree b = MakeTree(&env, {Rect(0, 0, 1, 1)}, false);
  EXPECT_TRUE(RunJoin(a, b, false).empty());
  EXPECT_TRUE(RunJoin(b, a, false).empty());
}

TEST(JoinTest, SimplePairs) {
  Env env;
  RTree a = MakeTree(&env, {Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)}, false);
  RTree b = MakeTree(&env, {Rect(1, 1, 3, 3), Rect(20, 20, 21, 21)}, false);
  const PairSet got = RunJoin(a, b, false);
  const PairSet expected = {{0, 0}};
  EXPECT_EQ(got, expected);
}

TEST(JoinTest, MatchesNestedLoopOnRandomData) {
  Env env;
  Random rng(71);
  std::vector<Rect> lhs, rhs;
  for (int i = 0; i < 120; ++i) {
    const double x = rng.UniformDouble(0, 950);
    const double y = rng.UniformDouble(0, 950);
    lhs.push_back(Rect(x, y, x + rng.UniformDouble(1, 50),
                       y + rng.UniformDouble(1, 50)));
  }
  for (int i = 0; i < 90; ++i) {
    const double x = rng.UniformDouble(0, 950);
    const double y = rng.UniformDouble(0, 950);
    rhs.push_back(Rect(x, y, x + rng.UniformDouble(1, 50),
                       y + rng.UniformDouble(1, 50)));
  }
  RTree a = MakeTree(&env, lhs, true);
  RTree b = MakeTree(&env, rhs, false);  // mixed construction paths
  EXPECT_EQ(RunJoin(a, b, false), RunJoin(a, b, true));
}

TEST(JoinTest, HandlesDifferentHeights) {
  Env env;
  Random rng(73);
  // Big tree vs tiny tree: heights differ by several levels.
  std::vector<Rect> big;
  for (const auto& p :
       workload::UniformPoints(&rng, 400, workload::PaperFrame())) {
    big.push_back(Rect(p.x, p.y, p.x + 5, p.y + 5));
  }
  const std::vector<Rect> small = {Rect(100, 100, 300, 300),
                                   Rect(700, 700, 800, 800)};
  RTree a = MakeTree(&env, big, true, 4);
  RTree b = MakeTree(&env, small, false, 4);
  ASSERT_GT(a.Height(), b.Height());
  EXPECT_EQ(RunJoin(a, b, false), RunJoin(a, b, true));
  EXPECT_EQ(RunJoin(b, a, false), RunJoin(b, a, true));
}

TEST(JoinTest, SpatialJoinPrunesPairs) {
  Env env;
  Random rng(79);
  std::vector<Rect> lhs, rhs;
  // Two spatially separated populations: the join result is empty and the
  // simultaneous traversal should test far fewer pairs than |L|*|R|.
  for (const auto& p :
       workload::UniformPoints(&rng, 300, Rect(0, 0, 400, 400))) {
    lhs.push_back(Rect::FromPoint(p));
  }
  for (const auto& p :
       workload::UniformPoints(&rng, 300, Rect(600, 600, 1000, 1000))) {
    rhs.push_back(Rect::FromPoint(p));
  }
  RTree a = MakeTree(&env, lhs, true);
  RTree b = MakeTree(&env, rhs, true);
  JoinStats tree_stats, nested_stats;
  EXPECT_TRUE(RunJoin(a, b, false, &tree_stats).empty());
  EXPECT_TRUE(RunJoin(a, b, true, &nested_stats).empty());
  EXPECT_LT(tree_stats.pairs_tested, nested_stats.pairs_tested / 10);
}

TEST(JoinTest, SelfJoinContainsDiagonal) {
  Env env;
  Random rng(83);
  std::vector<Rect> rects;
  for (const auto& p :
       workload::UniformPoints(&rng, 60, workload::PaperFrame())) {
    rects.push_back(Rect(p.x, p.y, p.x + 2, p.y + 2));
  }
  RTree a = MakeTree(&env, rects, true);
  const PairSet got = RunJoin(a, a, false);
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_TRUE(got.count({static_cast<storage::PageId>(i),
                           static_cast<storage::PageId>(i)}) == 1);
  }
}

}  // namespace
}  // namespace pictdb::rtree
