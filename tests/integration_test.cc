// Cross-module integration tests: file-backed persistence across
// process-style reopen (heap + B+-tree + R-tree sharing one file), mixed
// index workloads, and a miniature end-to-end pictorial database flow on
// top of a FileDiskManager.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "btree/btree.h"
#include "common/random.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "workload/generators.h"

namespace pictdb {
namespace {

using btree::BTree;
using btree::KeyEncoder;
using geom::Point;
using geom::Rect;
using rtree::RTree;
using storage::BufferPool;
using storage::FileDiskManager;
using storage::HeapFile;
using storage::PageId;
using storage::Rid;

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/pictdb_integration_" + tag +
         ".db";
}

TEST(IntegrationTest, AllStructuresShareOneFileAndSurviveReopen) {
  const std::string path = TempPath("shared");
  PageId heap_first = 0, btree_meta = 0, rtree_meta = 0;
  std::vector<Rid> record_rids;
  std::vector<Point> points;

  // --- Session 1: create everything -------------------------------------
  {
    auto disk = FileDiskManager::Open(path, 512, /*truncate=*/true);
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 64);

    auto heap = HeapFile::Create(&pool);
    ASSERT_TRUE(heap.ok());
    heap_first = heap->first_page();

    auto index = BTree::Create(&pool);
    ASSERT_TRUE(index.ok());
    btree_meta = index->meta_page();

    rtree::RTreeOptions opts;
    opts.max_entries = 4;
    auto tree = RTree::Create(&pool, opts);
    ASSERT_TRUE(tree.ok());
    rtree_meta = tree->meta_page();

    Random rng(77);
    points = workload::UniformPoints(&rng, 60, workload::PaperFrame());
    for (size_t i = 0; i < points.size(); ++i) {
      const std::string payload = "object-" + std::to_string(i);
      auto rid = heap->Insert(Slice(payload));
      ASSERT_TRUE(rid.ok());
      record_rids.push_back(*rid);
      ASSERT_TRUE(
          index
              ->Insert(KeyEncoder::FromInt64(static_cast<int64_t>(i), *rid),
                       *rid)
              .ok());
      ASSERT_TRUE(tree->Insert(Rect::FromPoint(points[i]), *rid).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  // --- Session 2: reopen and verify -------------------------------------
  {
    auto disk = FileDiskManager::Open(path, 512, /*truncate=*/false);
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 64);

    HeapFile heap = HeapFile::Open(&pool, heap_first);
    BTree index = BTree::Open(&pool, btree_meta);
    auto tree = RTree::Open(&pool, rtree_meta);
    ASSERT_TRUE(tree.ok());

    EXPECT_EQ(*heap.Count(), points.size());
    EXPECT_EQ(*index.Count(), points.size());
    EXPECT_EQ(tree->Size(), points.size());
    ASSERT_TRUE(index.Validate().ok());
    ASSERT_TRUE(tree->Validate().ok());

    // Every object reachable three ways: by rid, by key, by location.
    for (size_t i = 0; i < points.size(); ++i) {
      auto rec = heap.Get(record_rids[i]);
      ASSERT_TRUE(rec.ok());
      EXPECT_EQ(*rec, "object-" + std::to_string(i));

      auto by_key = index.Get(
          KeyEncoder::FromInt64(static_cast<int64_t>(i), record_rids[i]));
      ASSERT_TRUE(by_key.ok());
      EXPECT_TRUE(*by_key == record_rids[i]);

      auto hits = tree->SearchPoint(points[i]);
      ASSERT_TRUE(hits.ok());
      bool found = false;
      for (const auto& h : *hits) {
        if (h.rid == record_rids[i]) found = true;
      }
      EXPECT_TRUE(found) << i;
    }
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, PackedTreePersistsAcrossReopen) {
  const std::string path = TempPath("packed");
  PageId meta = 0;
  Random rng(88);
  const auto pts = workload::UniformPoints(&rng, 200,
                                           workload::PaperFrame());
  {
    auto disk = FileDiskManager::Open(path, 512, /*truncate=*/true);
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 256);
    rtree::RTreeOptions opts;
    opts.max_entries = 8;
    auto tree = RTree::Create(&pool, opts);
    ASSERT_TRUE(tree.ok());
    meta = tree->meta_page();
    std::vector<Rid> rids;
    for (size_t i = 0; i < pts.size(); ++i) {
      rids.push_back(Rid{static_cast<PageId>(i), 0});
    }
    ASSERT_TRUE(pack::PackNearestNeighbor(
                    &*tree, pack::MakeLeafEntries(pts, rids))
                    .ok());
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  {
    auto disk = FileDiskManager::Open(path, 512, /*truncate=*/false);
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 256);
    auto tree = RTree::Open(&pool, meta);
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ(tree->Size(), pts.size());
    EXPECT_EQ(tree->options().max_entries, 8u);
    ASSERT_TRUE(tree->Validate().ok());
    // Updates on the reopened packed tree still work.
    ASSERT_TRUE(tree->Insert(Rect(1, 1, 2, 2), Rid{9999, 0}).ok());
    ASSERT_TRUE(tree->Delete(Rect(1, 1, 2, 2), Rid{9999, 0}).ok());
    ASSERT_TRUE(tree->Validate().ok());
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, TinyBufferPoolStillCorrect) {
  // 8 frames for a tree of hundreds of nodes: every operation churns the
  // pool; results must be identical to the in-memory reference.
  storage::InMemoryDiskManager disk(256);
  BufferPool pool(&disk, 8);
  rtree::RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  auto tree = RTree::Create(&pool, opts);
  ASSERT_TRUE(tree.ok());

  Random rng(99);
  const auto pts = workload::UniformPoints(&rng, 250,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]),
                             Rid{static_cast<PageId>(i), 0})
                    .ok());
  }
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_GT(pool.stats().evictions, 0u);

  const Rect window(250, 250, 750, 750);
  auto hits = tree->SearchIntersects(window);
  ASSERT_TRUE(hits.ok());
  size_t expected = 0;
  for (const Point& p : pts) {
    if (window.Contains(p)) ++expected;
  }
  EXPECT_EQ(hits->size(), expected);
}

TEST(IntegrationTest, HeapAndIndexStayConsistentUnderChurn) {
  storage::InMemoryDiskManager disk(512);
  BufferPool pool(&disk, 128);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  auto index = BTree::Create(&pool);
  ASSERT_TRUE(index.ok());

  Random rng(111);
  std::vector<std::pair<int64_t, Rid>> live;
  int64_t next_key = 0;
  for (int step = 0; step < 1000; ++step) {
    if (rng.Bernoulli(0.6) || live.empty()) {
      const int64_t key = next_key++;
      auto rid = heap->Insert(Slice("k" + std::to_string(key)));
      ASSERT_TRUE(rid.ok());
      ASSERT_TRUE(index->Insert(KeyEncoder::FromInt64(key, *rid), *rid).ok());
      live.emplace_back(key, *rid);
    } else {
      const size_t pick = rng.Uniform(live.size());
      const auto [key, rid] = live[pick];
      ASSERT_TRUE(index->Delete(KeyEncoder::FromInt64(key, rid)).ok());
      ASSERT_TRUE(heap->Delete(rid).ok());
      live.erase(live.begin() + pick);
    }
  }
  ASSERT_TRUE(index->Validate().ok());
  EXPECT_EQ(*index->Count(), live.size());
  EXPECT_EQ(*heap->Count(), live.size());
  for (const auto& [key, rid] : live) {
    auto found = index->Get(KeyEncoder::FromInt64(key, rid));
    ASSERT_TRUE(found.ok());
    auto rec = heap->Get(*found);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, "k" + std::to_string(key));
  }
}

}  // namespace
}  // namespace pictdb
