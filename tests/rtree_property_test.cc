// Property sweeps over the dynamic R-tree: for every combination of
// branching factor, split algorithm, and dataset shape, the tree must
// keep its structural invariants and answer exactly like a brute-force
// scan, through interleaved inserts and deletes.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace pictdb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::Rid;

enum class Dataset { kUniform, kClustered, kSkewed, kRegions, kGrid };

std::vector<Rect> MakeDataset(Dataset kind, Random* rng, size_t n) {
  const Rect frame = workload::PaperFrame();
  std::vector<Rect> out;
  switch (kind) {
    case Dataset::kUniform:
      for (const Point& p : workload::UniformPoints(rng, n, frame)) {
        out.push_back(Rect::FromPoint(p));
      }
      break;
    case Dataset::kClustered:
      for (const Point& p :
           workload::ClusteredPoints(rng, n, 5, 30.0, frame)) {
        out.push_back(Rect::FromPoint(p));
      }
      break;
    case Dataset::kSkewed:
      for (const Point& p : workload::SkewedPoints(rng, n, 3.0, frame)) {
        out.push_back(Rect::FromPoint(p));
      }
      break;
    case Dataset::kRegions:
      out = workload::DisjointRegions(rng, n, frame);
      break;
    case Dataset::kGrid: {
      const size_t side = static_cast<size_t>(std::sqrt(double(n))) + 1;
      const auto pts = workload::GridPoints(rng, side, side, 0.3, frame);
      for (size_t i = 0; i < n && i < pts.size(); ++i) {
        out.push_back(Rect::FromPoint(pts[i]));
      }
      break;
    }
  }
  return out;
}

class RTreeProperty
    : public ::testing::TestWithParam<
          std::tuple<size_t /*max_entries*/, SplitAlgorithm, Dataset>> {};

TEST_P(RTreeProperty, InvariantsAndExactAnswers) {
  const auto [max_entries, split, dataset] = GetParam();
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  RTreeOptions opts;
  opts.max_entries = max_entries;
  opts.split = split;
  auto tree = RTree::Create(&pool, opts);
  ASSERT_TRUE(tree.ok());

  Random rng(1000 + static_cast<uint64_t>(max_entries) * 10 +
             static_cast<uint64_t>(dataset));
  const auto rects = MakeDataset(dataset, &rng, 180);

  // Insert everything.
  std::map<size_t, Rect> live;
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(
        tree->Insert(rects[i], Rid{static_cast<storage::PageId>(i), 0}).ok());
    live[i] = rects[i];
  }
  ASSERT_TRUE(tree->Validate().ok());

  // Interleave deletes with queries.
  for (int round = 0; round < 4; ++round) {
    // Delete a random 20%.
    std::vector<size_t> keys;
    for (const auto& [k, r] : live) keys.push_back(k);
    for (size_t d = 0; d < keys.size() / 5; ++d) {
      const size_t pick = keys[rng.Uniform(keys.size())];
      const auto it = live.find(pick);
      if (it == live.end()) continue;
      ASSERT_TRUE(
          tree->Delete(it->second, Rid{static_cast<storage::PageId>(pick), 0})
              .ok());
      live.erase(it);
    }
    ASSERT_TRUE(tree->Validate().ok());
    EXPECT_EQ(tree->Size(), live.size());

    // Window queries agree with brute force.
    const auto windows =
        workload::RandomWindowQueries(&rng, 10, 0.05, workload::PaperFrame());
    for (const Rect& w : windows) {
      auto hits = tree->SearchIntersects(w);
      ASSERT_TRUE(hits.ok());
      std::set<storage::PageId> got;
      for (const LeafHit& h : *hits) got.insert(h.rid.page_id);
      std::set<storage::PageId> expected;
      for (const auto& [k, r] : live) {
        if (r.Intersects(w)) {
          expected.insert(static_cast<storage::PageId>(k));
        }
      }
      EXPECT_EQ(got, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeProperty,
    ::testing::Combine(
        ::testing::Values(size_t{4}, size_t{8}),
        ::testing::Values(SplitAlgorithm::kQuadratic, SplitAlgorithm::kLinear,
                          SplitAlgorithm::kRStar),
        ::testing::Values(Dataset::kUniform, Dataset::kClustered,
                          Dataset::kSkewed, Dataset::kRegions,
                          Dataset::kGrid)));

}  // namespace
}  // namespace pictdb::rtree
