// ResultCache: hit/miss semantics, byte-identical replay, LRU eviction
// under capacity pressure, epoch-bump invalidation, sharding, and
// concurrent access; plus TokenBucket quota mechanics with an injected
// clock.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/result_cache.h"
#include "net/token_bucket.h"

namespace pictdb::net {
namespace {

std::string KeyFor(double x1, double y1, double x2, double y2) {
  Request req;
  req.body = WindowRequest{geom::Rect(x1, y1, x2, y2), false};
  return CacheKey(req);
}

TEST(ResultCacheTest, HitReturnsByteIdenticalPayload) {
  ResultCache cache(1 << 20, 4);
  const std::string key = KeyFor(0, 0, 10, 10);
  const std::string payload = "\x00\x01\x02 arbitrary response bytes \xff";
  cache.Insert(key, payload);

  std::string got;
  ASSERT_TRUE(cache.Lookup(key, &got));
  EXPECT_EQ(got, payload);  // byte-identical, not just equal-length

  const ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCacheTest, MissOnAbsentAndEmptyKey) {
  ResultCache cache(1 << 20, 4);
  std::string got;
  EXPECT_FALSE(cache.Lookup(KeyFor(1, 1, 2, 2), &got));
  EXPECT_EQ(cache.Stats().misses, 1u);
  // Empty keys (non-cacheable requests) never hit and never insert.
  cache.Insert("", "payload");
  EXPECT_FALSE(cache.Lookup("", &got));
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0, 4);
  const std::string key = KeyFor(0, 0, 1, 1);
  cache.Insert(key, "data");
  std::string got;
  EXPECT_FALSE(cache.Lookup(key, &got));
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  // Single shard so the LRU order is fully observable.
  ResultCache cache(4096, 1);
  const std::string payload(700, 'x');
  std::vector<std::string> keys;
  for (int i = 0; i < 5; ++i) {
    keys.push_back(KeyFor(i, i, i + 1, i + 1));
    cache.Insert(keys.back(), payload);
  }
  // Touch key 0 so it is recent; insert one more to force eviction.
  std::string got;
  if (cache.Lookup(keys[0], &got)) {
    keys.push_back(KeyFor(99, 99, 100, 100));
    cache.Insert(keys.back(), payload);
    // Key 0 was refreshed, so it should still be resident if anything is.
    const ResultCacheStats s = cache.Stats();
    EXPECT_GT(s.evictions, 0u);
    EXPECT_LE(s.bytes, 4096u);
    EXPECT_TRUE(cache.Lookup(keys[0], &got));
  } else {
    // Key 0 itself was evicted during warm-up (capacity < 5 entries):
    // eviction pressure is still the thing under test.
    EXPECT_GT(cache.Stats().evictions, 0u);
  }
}

TEST(ResultCacheTest, OversizedPayloadIsNotCached) {
  ResultCache cache(1024, 1);
  const std::string key = KeyFor(0, 0, 1, 1);
  cache.Insert(key, std::string(4096, 'y'));
  std::string got;
  EXPECT_FALSE(cache.Lookup(key, &got));
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, EpochBumpInvalidatesEverything) {
  ResultCache cache(1 << 20, 4);
  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) {
    keys.push_back(KeyFor(i, 0, i + 1, 1));
    cache.Insert(keys.back(), "resp" + std::to_string(i));
  }
  std::string got;
  ASSERT_TRUE(cache.Lookup(keys[3], &got));

  cache.BumpEpoch();

  for (const std::string& key : keys) {
    EXPECT_FALSE(cache.Lookup(key, &got));
  }
  const ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.entries, 0u);  // stale entries reclaimed on the miss path
  EXPECT_EQ(s.bytes, 0u);

  // Fresh inserts after the bump hit normally.
  cache.Insert(keys[0], "new answer");
  ASSERT_TRUE(cache.Lookup(keys[0], &got));
  EXPECT_EQ(got, "new answer");
}

TEST(ResultCacheTest, InsertOverwritesSameKey) {
  ResultCache cache(1 << 20, 2);
  const std::string key = KeyFor(5, 5, 6, 6);
  cache.Insert(key, "v1");
  cache.Insert(key, "v2-longer-payload");
  std::string got;
  ASSERT_TRUE(cache.Lookup(key, &got));
  EXPECT_EQ(got, "v2-longer-payload");
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(ResultCacheTest, ConcurrentMixedTrafficIsSafe) {
  ResultCache cache(1 << 16, 8);
  constexpr int kThreads = 8, kOps = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = KeyFor(i % 37, t, i % 37 + 1, t + 1);
        if (i % 3 == 0) {
          cache.Insert(key, std::string(64, static_cast<char>('a' + t)));
        } else if (i % 97 == 0) {
          cache.BumpEpoch();
        } else {
          std::string got;
          (void)cache.Lookup(key, &got);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const ResultCacheStats s = cache.Stats();
  EXPECT_GT(s.insertions, 0u);
  EXPECT_LE(s.bytes, uint64_t{1} << 16);
}

// ---------------------------------------------------------------------
// Token bucket.

TEST(TokenBucketTest, BurstThenThrottleThenRefill) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0{};
  TokenBucket bucket(10.0, 5.0, t0);  // 10 qps, burst 5

  // The full burst is available immediately.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_FALSE(bucket.TryAcquire(t0));

  // 100ms refills exactly one token at 10 qps.
  const auto t1 = t0 + std::chrono::milliseconds(100);
  EXPECT_TRUE(bucket.TryAcquire(t1));
  EXPECT_FALSE(bucket.TryAcquire(t1));

  // A long idle period caps at the burst, not unbounded credit.
  const auto t2 = t1 + std::chrono::hours(1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(t2));
  EXPECT_FALSE(bucket.TryAcquire(t2));
}

TEST(TokenBucketTest, NonPositiveRateMeansUnlimited) {
  const std::chrono::steady_clock::time_point t0{};
  TokenBucket bucket(0.0, 1.0, t0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.TryAcquire(t0));
}

TEST(TokenBucketTest, ClockGoingBackwardsIsHarmless) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0{std::chrono::seconds(100)};
  TokenBucket bucket(1.0, 2.0, t0);
  EXPECT_TRUE(bucket.TryAcquire(t0));
  // An earlier timestamp neither refills nor crashes.
  EXPECT_TRUE(bucket.TryAcquire(t0 - std::chrono::seconds(50)));
  EXPECT_FALSE(bucket.TryAcquire(t0 - std::chrono::seconds(50)));
}

}  // namespace
}  // namespace pictdb::net
