#ifndef PICTDB_TESTS_LINT_GUARD_H_
#define PICTDB_TESTS_LINT_GUARD_H_

// Grep-style source guard shared by the verification-subsystem tests:
// asserts that src/check/ carries zero lint / thread-safety-analysis
// suppression comments. The check subsystem is the code that vouches
// for everything else, so it must pass every analysis unassisted — a
// NOLINT sneaking in there weakens the whole verification story. Wired
// into the TreeValidator and DiffRunner test teardowns (and the
// standalone static_analysis_test) so any suite touching the checkers
// re-verifies the bar.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace pictdb::testing_support {

inline void AssertNoLintSuppressionsInCheckSubsystem() {
  const std::filesystem::path check_dir =
      std::filesystem::path(PICTDB_SOURCE_DIR) / "src" / "check";
  ASSERT_TRUE(std::filesystem::is_directory(check_dir))
      << "source tree not found at " << check_dir
      << " (PICTDB_SOURCE_DIR misconfigured?)";
  size_t files_scanned = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(check_dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cc" && ext != ".h") continue;
    ++files_scanned;
    std::ifstream in(entry.path());
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      EXPECT_EQ(line.find("NOLINT"), std::string::npos)
          << entry.path() << ":" << lineno
          << ": lint suppression in src/check/";
      EXPECT_EQ(line.find("NO_THREAD_SAFETY_ANALYSIS"), std::string::npos)
          << entry.path() << ":" << lineno
          << ": thread-safety-analysis suppression in src/check/";
    }
  }
  // Guard the guard: if the glob ever matches nothing, the assertion
  // above would pass vacuously.
  ASSERT_GE(files_scanned, 6u)
      << "expected the six src/check/ sources; layout changed?";
}

}  // namespace pictdb::testing_support

#endif  // PICTDB_TESTS_LINT_GUARD_H_
