// End-to-end PSQL tests over the paper's US-map example database: direct
// spatial search, indirect (alphanumeric) search, juxtaposition, and
// nested mappings, checked against independently computed answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "psql/executor.h"
#include "rel/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/us_catalog.h"
#include "workload/us_cities.h"

namespace pictdb::psql {
namespace {

using geom::Rect;

class PsqlTest : public ::testing::Test {
 protected:
  PsqlTest() : disk_(1024), pool_(&disk_, 1 << 14), catalog_(&pool_) {
    PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog_, 4));
  }

  ResultSet MustQuery(const std::string& text) {
    Executor exec(&catalog_);
    auto result = exec.Query(text);
    PICTDB_CHECK(result.ok()) << text << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  std::set<std::string> FirstColumnValues(const ResultSet& rs) {
    std::set<std::string> out;
    for (const auto& row : rs.rows) out.insert(row[0].ToString());
    return out;
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
  rel::Catalog catalog_;
};

TEST_F(PsqlTest, DirectSpatialSearchUsesTheRTree) {
  // Eastern-seaboard window around (-74, 41).
  const ResultSet rs = MustQuery(
      "select city, population, loc from cities on us-map "
      "at loc covered-by {-74 +- 4, 41 +- 3}");
  EXPECT_TRUE(rs.stats.used_spatial_index);
  const auto names = FirstColumnValues(rs);
  EXPECT_TRUE(names.count("New York") == 1);
  EXPECT_TRUE(names.count("Philadelphia") == 1);
  EXPECT_TRUE(names.count("Los Angeles") == 0);

  // Matches an independent filter over the raw data.
  const Rect window = Rect::FromCenterHalfExtent(-74, 4, 41, 3);
  size_t expected = 0;
  for (const auto& c : workload::ContinentalUsCities()) {
    if (window.Contains(c.loc())) ++expected;
  }
  EXPECT_EQ(rs.rows.size(), expected);
  // Every row contributed its loc to the pictorial output.
  EXPECT_EQ(rs.pictorial.size(), rs.rows.size());
}

TEST_F(PsqlTest, PaperQueryPopulationFilter) {
  // The §2.2 query: cities in the east with population > 450,000.
  const ResultSet rs = MustQuery(
      "select city,state,population,loc from cities on us-map "
      "at loc covered-by {-77 +- 8, 39 +- 4} "
      "where population > 450000");
  for (const auto& row : rs.rows) {
    EXPECT_GT(row[2].as_int(), 450000);
  }
  const auto names = FirstColumnValues(rs);
  EXPECT_TRUE(names.count("New York") == 1);
  EXPECT_TRUE(names.count("Philadelphia") == 1);
}

TEST_F(PsqlTest, IndirectSearchUsesBTreeIndex) {
  const ResultSet rs = MustQuery(
      "select city, population from cities where population > 2000000");
  EXPECT_TRUE(rs.stats.used_btree_index);
  const auto names = FirstColumnValues(rs);
  const std::set<std::string> expected = {"New York", "Los Angeles",
                                          "Chicago", "Houston"};
  EXPECT_EQ(names, expected);
}

TEST_F(PsqlTest, IndexIntersectionForMultipleConjuncts) {
  // Both population and city are indexed: the executor intersects the
  // two rid sets ("intersection of the indices speeds up the search").
  const ResultSet rs = MustQuery(
      "select city, population from cities "
      "where population > 2000000 and city = 'Chicago'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].ToString(), "Chicago");
  EXPECT_TRUE(rs.stats.used_btree_index);

  // Contradictory conjuncts intersect to nothing.
  const ResultSet none = MustQuery(
      "select city from cities "
      "where population > 5000000 and city = 'Boise'");
  EXPECT_TRUE(none.rows.empty());

  // Range + range on the same column.
  const ResultSet band = MustQuery(
      "select city from cities "
      "where population > 1000000 and population < 2000000");
  for (const auto& row : band.rows) {
    (void)row;
  }
  size_t expected = 0;
  for (const auto& c : workload::ContinentalUsCities()) {
    if (c.population > 1000000 && c.population < 2000000) ++expected;
  }
  EXPECT_EQ(band.rows.size(), expected);
}

TEST_F(PsqlTest, StringEqualityViaIndex) {
  const ResultSet rs =
      MustQuery("select city, state from cities where city = 'Chicago'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].ToString(), "IL");
  EXPECT_TRUE(rs.stats.used_btree_index);
}

TEST_F(PsqlTest, SelectStarExpandsColumns) {
  const ResultSet rs =
      MustQuery("select * from time-zones");
  EXPECT_EQ(rs.columns,
            (std::vector<std::string>{"zone", "hour-diff", "loc"}));
  EXPECT_EQ(rs.rows.size(), 4u);
}

TEST_F(PsqlTest, JuxtapositionCitiesWithTimeZones) {
  // §2.2: every city joined with its time zone.
  const ResultSet rs = MustQuery(
      "select city,zone from cities,time-zones "
      "on us-map,time-zone-map "
      "at cities.loc covered-by time-zones.loc");
  EXPECT_TRUE(rs.stats.used_spatial_join);

  // Independent check: every continental city covered by >= 1 band keeps
  // exactly its bands.
  size_t expected = 0;
  for (const auto& c : workload::ContinentalUsCities()) {
    for (const auto& z : workload::UsTimeZones()) {
      if (z.band.Contains(c.loc())) ++expected;
    }
  }
  EXPECT_EQ(rs.rows.size(), expected);

  // Spot checks.
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& row : rs.rows) {
    pairs.insert({row[0].ToString(), row[1].ToString()});
  }
  EXPECT_TRUE(pairs.count({"New York", "Eastern"}) == 1);
  EXPECT_TRUE(pairs.count({"Chicago", "Central"}) == 1);
  EXPECT_TRUE(pairs.count({"Denver", "Mountain"}) == 1);
  EXPECT_TRUE(pairs.count({"Seattle", "Pacific"}) == 1);
  EXPECT_TRUE(pairs.count({"Seattle", "Eastern"}) == 0);
}

TEST_F(PsqlTest, JuxtapositionHighwaysThroughStates) {
  const ResultSet rs = MustQuery(
      "select hwy-name, hwy-section, state from highways, states "
      "on us-map, state-map "
      "at highways.loc overlapping states.loc");
  EXPECT_TRUE(rs.stats.used_spatial_join);
  EXPECT_GT(rs.rows.size(), 0u);
  // I-5 never touches Texas; I-10 does.
  bool i5_texas = false, i10_texas = false;
  for (const auto& row : rs.rows) {
    if (row[2].ToString() == "Texas") {
      if (row[0].ToString() == "I-5") i5_texas = true;
      if (row[0].ToString() == "I-10") i10_texas = true;
    }
  }
  EXPECT_FALSE(i5_texas);
  EXPECT_TRUE(i10_texas);
}

TEST_F(PsqlTest, NestedMappingLakesInNortheasternStates) {
  // §2.2 nested example: lakes covered by some state in a window. The
  // inner mapping yields state regions in the north-east; the outer
  // mapping finds lakes inside those regions.
  const ResultSet rs = MustQuery(
      "select lake, area, lakes.loc from lakes on lake-map "
      "at lakes.loc covered-by "
      "select states.loc from states on state-map "
      "at states.loc overlapping {-75 +- 7, 43 +- 4}");
  const auto names = FirstColumnValues(rs);
  // Lake Champlain sits inside New York's box; Lake Tahoe is out west.
  EXPECT_TRUE(names.count("Lake Champlain") == 1);
  EXPECT_TRUE(names.count("Lake Tahoe") == 0);
  EXPECT_TRUE(names.count("Great Salt Lake") == 0);
}

TEST_F(PsqlTest, DoublyNestedMapping) {
  // "PSQL mappings can have several nested levels": cities inside lakes'
  // neighbourhoods inside north-eastern states. The innermost mapping
  // finds states, the middle one lakes overlapping those states, and the
  // outer one cities overlapping those lakes' boxes (none exist — cities
  // are points on land; so flip to overlapping the states directly).
  const ResultSet rs = MustQuery(
      "select city from cities on us-map "
      "at loc covered-by "
      "select states.loc from states on state-map "
      "at states.loc overlapping "
      "select lakes.loc from lakes on lake-map "
      "at lakes.loc overlapping {-88 +- 6, 45 +- 4}");
  // Great-Lakes states (MI/WI/MN/IL/...) contain these cities.
  const auto names = FirstColumnValues(rs);
  EXPECT_TRUE(names.count("Chicago") == 1);
  EXPECT_TRUE(names.count("Milwaukee") == 1);
  EXPECT_TRUE(names.count("Los Angeles") == 0);
}

TEST_F(PsqlTest, QualifiedTargetsInJoin) {
  const ResultSet rs = MustQuery(
      "select cities.city, time-zones.zone, cities.loc "
      "from cities,time-zones on us-map,time-zone-map "
      "at cities.loc covered-by time-zones.loc "
      "where cities.population > 3000000");
  EXPECT_EQ(rs.columns[0], "cities.city");
  for (const auto& row : rs.rows) {
    EXPECT_FALSE(row[0].ToString().empty());
    EXPECT_FALSE(row[1].ToString().empty());
  }
  // loc appears in both relations: unqualified use must error.
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Query("select loc from cities,time-zones "
                          "on us-map,time-zone-map "
                          "at cities.loc covered-by time-zones.loc")
                   .ok());
}

TEST_F(PsqlTest, NestedMappingEmptyInnerYieldsNothing) {
  const ResultSet rs = MustQuery(
      "select lake from lakes on lake-map "
      "at lakes.loc covered-by "
      "select states.loc from states on state-map "
      "at states.loc covered-by {0 +- 1, 0 +- 1}");
  EXPECT_TRUE(rs.rows.empty());
}

TEST_F(PsqlTest, FunctionsInTargetsAndWhere) {
  const ResultSet rs = MustQuery(
      "select lake, area(loc), north(loc) from lakes "
      "where area(loc) > 10");
  // Box areas in squared degrees: the Great Lakes qualify easily.
  const auto names = FirstColumnValues(rs);
  EXPECT_TRUE(names.count("Lake Superior") == 1);
  EXPECT_TRUE(names.count("Lake Tahoe") == 0);
  for (const auto& row : rs.rows) {
    EXPECT_GT(row[1].as_double(), 10.0);
    EXPECT_GT(row[2].as_double(), 25.0);  // all are north of 25°N
  }
}

TEST_F(PsqlTest, DisjoinedOperator) {
  const ResultSet rs = MustQuery(
      "select city from cities on us-map "
      "at loc disjoined {-74 +- 10, 41 +- 10}");
  const auto names = FirstColumnValues(rs);
  EXPECT_TRUE(names.count("Los Angeles") == 1);
  EXPECT_TRUE(names.count("New York") == 0);
}

TEST_F(PsqlTest, CoveringOperator) {
  // Which time zone band covers Denver's location window?
  const ResultSet rs = MustQuery(
      "select zone from time-zones on time-zone-map "
      "at loc covering {-105 +- 1, 39.7 +- 0.2}");
  const auto names = FirstColumnValues(rs);
  EXPECT_EQ(names, std::set<std::string>{"Mountain"});
}

TEST_F(PsqlTest, WindowOnLeftNormalizes) {
  const ResultSet rs1 = MustQuery(
      "select city from cities on us-map "
      "at {-74 +- 4, 41 +- 3} covering loc");
  const ResultSet rs2 = MustQuery(
      "select city from cities on us-map "
      "at loc covered-by {-74 +- 4, 41 +- 3}");
  EXPECT_EQ(FirstColumnValues(rs1), FirstColumnValues(rs2));
}

TEST_F(PsqlTest, ErrorsSurfaceCleanly) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Query("select city from nowhere").ok());
  EXPECT_FALSE(exec.Query("select nope from cities").ok());
  EXPECT_FALSE(
      exec.Query("select city from cities on not-a-map at loc covered-by "
                 "{0 +- 1, 0 +- 1}")
          .ok());
  // Two relations without a joining at-clause.
  EXPECT_FALSE(exec.Query("select city from cities, lakes").ok());
  // Three relations.
  EXPECT_FALSE(
      exec.Query("select city from cities, lakes, states").ok());
  // Non-boolean where.
  EXPECT_FALSE(exec.Query("select city from cities where city").ok());
}

TEST_F(PsqlTest, SpatialOperatorsInWhereClause) {
  // §2.2: spatial operators are callable procedures inside the
  // qualification. Constant geometries are written as WKT strings.
  const ResultSet via_where = MustQuery(
      "select city from cities "
      "where covered-by(loc, 'BOX(-78 38, -70 44)')");
  const ResultSet via_at = MustQuery(
      "select city from cities on us-map "
      "at loc covered-by {-74 +- 4, 41 +- 3}");
  EXPECT_EQ(FirstColumnValues(via_where), FirstColumnValues(via_at));
  // The where-clause form cannot use the index (it is a black-box
  // procedure to the planner) — that asymmetry is the paper's argument
  // for the dedicated at-clause.
  EXPECT_FALSE(via_where.stats.used_spatial_index);
  EXPECT_TRUE(via_at.stats.used_spatial_index);
}

TEST_F(PsqlTest, DistanceFunction) {
  // Cities within 2 degrees of Chicago's location, via distance().
  const ResultSet rs = MustQuery(
      "select city, distance(loc, 'POINT(-87.6298 41.8781)') from cities "
      "where distance(loc, 'POINT(-87.6298 41.8781)') < 2 "
      "order by distance(loc, 'POINT(-87.6298 41.8781)')");
  ASSERT_GE(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].ToString(), "Chicago");
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 0.0);
  for (size_t i = 1; i < rs.rows.size(); ++i) {
    EXPECT_LE(rs.rows[i - 1][1].as_double(), rs.rows[i][1].as_double());
    EXPECT_LT(rs.rows[i][1].as_double(), 2.0);
  }
}

TEST_F(PsqlTest, OverlappingFunctionBetweenColumns) {
  // Two-relation where-clause spatial predicate (juxtaposition handles
  // the candidate generation; the function re-checks exactly).
  const ResultSet rs = MustQuery(
      "select hwy-name, state from highways, states "
      "on us-map, state-map "
      "at highways.loc overlapping states.loc "
      "where overlapping(highways.loc, states.loc)");
  EXPECT_GT(rs.rows.size(), 0u);
}

TEST_F(PsqlTest, NamedLocations) {
  // The paper: "The location variable may just be a name of a location
  // predefined outside the retrieve mapping."
  ASSERT_TRUE(catalog_
                  .DefineLocation("eastern-us",
                                  geom::Geometry(Rect(-82, 35, -66, 45)))
                  .ok());
  const ResultSet named = MustQuery(
      "select city from cities on us-map at loc covered-by eastern-us");
  const ResultSet inline_window = MustQuery(
      "select city from cities on us-map "
      "at loc covered-by {-74 +- 8, 40 +- 5}");
  EXPECT_EQ(FirstColumnValues(named), FirstColumnValues(inline_window));
  EXPECT_TRUE(named.stats.used_spatial_index);
}

TEST_F(PsqlTest, NamedLocationOnLeftSide) {
  ASSERT_TRUE(catalog_
                  .DefineLocation("eastern-us",
                                  geom::Geometry(Rect(-82, 35, -66, 45)))
                  .ok());
  const ResultSet rs = MustQuery(
      "select city from cities on us-map at eastern-us covering loc");
  EXPECT_TRUE(rs.rows.size() > 0);
  const ResultSet same = MustQuery(
      "select city from cities on us-map at loc covered-by eastern-us");
  EXPECT_EQ(FirstColumnValues(rs), FirstColumnValues(same));
}

TEST_F(PsqlTest, NamedLocationCanBeRegion) {
  // Named locations are full geometries, not just boxes.
  ASSERT_TRUE(
      catalog_
          .DefineLocation(
              "florida-wedge",
              geom::Geometry(geom::Polygon(
                  {{-88, 24}, {-79, 24}, {-79, 31}, {-88, 31}})))
          .ok());
  const ResultSet rs = MustQuery(
      "select city from cities on us-map "
      "at loc covered-by florida-wedge");
  const auto names = FirstColumnValues(rs);
  EXPECT_TRUE(names.count("Miami") == 1);
  EXPECT_TRUE(names.count("Seattle") == 0);
}

TEST_F(PsqlTest, UnknownBareNameStillErrors) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Query("select city from cities on us-map "
                          "at loc covered-by no-such-place")
                   .ok());
}

TEST_F(PsqlTest, ResultSetRendering) {
  const ResultSet rs =
      MustQuery("select city, population from cities where city = 'Boston'");
  const std::string table = rs.ToString();
  EXPECT_NE(table.find("city"), std::string::npos);
  EXPECT_NE(table.find("Boston"), std::string::npos);
  EXPECT_NE(table.find("(1 row)"), std::string::npos);
}

TEST_F(PsqlTest, DirectSearchVisitsFewNodes) {
  const ResultSet rs = MustQuery(
      "select city from cities on us-map "
      "at loc covered-by {-74 +- 2, 41 +- 2}");
  // The packed R-tree over ~150 cities has a handful of nodes; a small
  // window must not visit them all.
  auto cities = catalog_.GetRelation("cities");
  ASSERT_TRUE(cities.ok());
  auto index = (*cities)->SpatialIndex("loc");
  ASSERT_TRUE(index.ok());
  auto total = (*index)->CountNodes();
  ASSERT_TRUE(total.ok());
  EXPECT_LT(rs.stats.rtree_nodes_visited, *total);
  EXPECT_GT(rs.stats.rtree_nodes_visited, 0u);
}

}  // namespace
}  // namespace pictdb::psql
