#include <gtest/gtest.h>

#include <set>

#include "check/invariants.h"
#include "common/random.h"
#include "pack/pack.h"
#include "pack/repack.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::pack {
namespace {

using geom::Point;
using geom::Rect;
using rtree::RTree;
using rtree::RTreeOptions;
using storage::Rid;

struct Env {
  Env() : disk(512), pool(&disk, 8192) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

Rid MakeRid(size_t i) {
  return Rid{static_cast<storage::PageId>(i), 0};
}


/// Teardown-style deep check: full invariant walk (parent MBRs, levels,
/// fill factors, CRCs, pin leaks), stricter than tree.Validate().
void ExpectValidTree(const RTree& tree) {
  const check::ValidationReport report = check::TreeValidator().Check(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

std::set<storage::PageId> AllRidPages(const RTree& tree) {
  auto hits = tree.CollectAllEntries();
  PICTDB_CHECK(hits.ok());
  std::set<storage::PageId> out;
  for (const auto& h : *hits) out.insert(h.rid.page_id);
  return out;
}

TEST(ClearTest, ResetsToEmptyAndReleasesPages) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(1);
  const auto pts = workload::UniformPoints(&rng, 100,
                                           workload::PaperFrame());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  const storage::PageId pages_before = env.disk.page_count();
  ASSERT_TRUE(tree->Clear().ok());
  EXPECT_EQ(tree->Size(), 0u);
  EXPECT_EQ(tree->Height(), 1u);
  ASSERT_TRUE(tree->Validate().ok());
  // The freed pages are recycled: inserting again should not grow the
  // file much beyond its previous size.
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  EXPECT_LE(env.disk.page_count(), pages_before + 2);
}

TEST(RepackTest, RestoresPackedQualityAfterChurn) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 8;
  opts.min_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());

  Random rng(2);
  const auto frame = workload::PaperFrame();
  auto pts = workload::UniformPoints(&rng, 1000, frame);
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) rids.push_back(MakeRid(i));
  ASSERT_TRUE(
      PackNearestNeighbor(&*tree, MakeLeafEntries(pts, rids)).ok());
  auto packed_quality = rtree::MeasureTree(*tree);
  ASSERT_TRUE(packed_quality.ok());

  // Churn: delete 400, insert 400 new.
  for (size_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(tree->Delete(Rect::FromPoint(pts[i]), rids[i]).ok());
  }
  const auto fresh = workload::UniformPoints(&rng, 400, frame);
  for (size_t i = 0; i < fresh.size(); ++i) {
    ASSERT_TRUE(
        tree->Insert(Rect::FromPoint(fresh[i]), MakeRid(5000 + i)).ok());
  }
  auto churned_quality = rtree::MeasureTree(*tree);
  ASSERT_TRUE(churned_quality.ok());
  EXPECT_GT(churned_quality->nodes, packed_quality->nodes);

  const auto before = AllRidPages(*tree);
  ASSERT_TRUE(Repack(&*tree).ok());
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(AllRidPages(*tree), before);  // same content
  auto repacked_quality = rtree::MeasureTree(*tree);
  ASSERT_TRUE(repacked_quality.ok());
  // Node count back to the packed optimum for 1000 entries.
  EXPECT_EQ(repacked_quality->size, 1000u);
  EXPECT_LT(repacked_quality->nodes, churned_quality->nodes);
  ExpectValidTree(*tree);
}

TEST(RepackTest, RepackEmptyTreeIsNoop) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(Repack(&*tree).ok());
  EXPECT_EQ(tree->Size(), 0u);
  ASSERT_TRUE(tree->Validate().ok());
}

TEST(RepackRegionTest, LocalReorganizationPreservesContent) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(3);
  const auto pts = workload::UniformPoints(&rng, 300,
                                           workload::PaperFrame());
  // Insert dynamically (so the region is badly organized).
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(pts[i]), MakeRid(i)).ok());
  }
  const auto before = AllRidPages(*tree);

  const Rect region(200, 200, 600, 600);
  auto repacked = RepackRegion(&*tree, region);
  ASSERT_TRUE(repacked.ok()) << repacked.status().ToString();
  EXPECT_GT(*repacked, 0u);

  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(AllRidPages(*tree), before);
  EXPECT_EQ(tree->Size(), 300u);

  // Every point still individually findable.
  for (size_t i = 0; i < pts.size(); ++i) {
    auto hits = tree->SearchPoint(pts[i]);
    ASSERT_TRUE(hits.ok());
    bool found = false;
    for (const auto& h : *hits) {
      if (h.rid == MakeRid(i)) found = true;
    }
    EXPECT_TRUE(found) << i;
  }
  ExpectValidTree(*tree);
}

TEST(RepackRegionTest, ImprovesLocalQuality) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(4);
  // Interleave two regions so dynamic insertion mixes them badly.
  const auto left = workload::UniformPoints(&rng, 150,
                                            Rect(0, 0, 300, 1000));
  const auto right = workload::UniformPoints(&rng, 150,
                                             Rect(700, 0, 1000, 1000));
  for (size_t i = 0; i < left.size(); ++i) {
    ASSERT_TRUE(tree->Insert(Rect::FromPoint(left[i]), MakeRid(i)).ok());
    ASSERT_TRUE(
        tree->Insert(Rect::FromPoint(right[i]), MakeRid(1000 + i)).ok());
  }
  auto before = rtree::MeasureTree(*tree);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(RepackRegion(&*tree, Rect(0, 0, 300, 1000)).ok());
  ASSERT_TRUE(RepackRegion(&*tree, Rect(700, 0, 1000, 1000)).ok());
  ASSERT_TRUE(tree->Validate().ok());

  auto after = rtree::MeasureTree(*tree);
  ASSERT_TRUE(after.ok());
  EXPECT_LE(after->nodes, before->nodes);
  ExpectValidTree(*tree);
}

TEST(RepackRegionTest, EmptyRegionRepacksNothing) {
  Env env;
  auto tree = RTree::Create(&env.pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 1, 1), MakeRid(1)).ok());
  auto n = RepackRegion(&*tree, Rect(500, 500, 600, 600));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(RepackPolicyTest, TriggersAtThreshold) {
  Env env;
  RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = RTree::Create(&env.pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(5);
  const auto pts = workload::UniformPoints(&rng, 100,
                                           workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) rids.push_back(MakeRid(i));
  ASSERT_TRUE(
      PackNearestNeighbor(&*tree, MakeLeafEntries(pts, rids)).ok());

  RepackPolicy policy(/*threshold_fraction=*/0.25);
  EXPECT_FALSE(policy.ShouldRepack(*tree));
  policy.RecordUpdate(10);
  auto fired = policy.MaybeRepack(&*tree);
  ASSERT_TRUE(fired.ok());
  EXPECT_FALSE(*fired);  // 10 < 25
  policy.RecordUpdate(20);
  fired = policy.MaybeRepack(&*tree);
  ASSERT_TRUE(fired.ok());
  EXPECT_TRUE(*fired);  // 30 >= 25
  EXPECT_EQ(policy.updates(), 0u);  // counter reset
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->Size(), 100u);
}

}  // namespace
}  // namespace pictdb::pack
