#include <gtest/gtest.h>

#include "psql/executor.h"
#include "rel/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/us_catalog.h"

namespace pictdb::psql {
namespace {

class PsqlExplainTest : public ::testing::Test {
 protected:
  PsqlExplainTest() : disk_(1024), pool_(&disk_, 1 << 14),
                      catalog_(&pool_) {
    PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog_, 4));
  }

  std::string MustExplain(const std::string& text) {
    Executor exec(&catalog_);
    auto plan = exec.ExplainQuery(text);
    PICTDB_CHECK(plan.ok()) << text << " -> " << plan.status().ToString();
    return std::move(plan).value();
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
  rel::Catalog catalog_;
};

TEST_F(PsqlExplainTest, DirectSearchUsesRTree) {
  const std::string plan = MustExplain(
      "select city from cities on us-map "
      "at loc covered-by {-74 +- 4, 41 +- 3}");
  EXPECT_NE(plan.find("direct spatial search"), std::string::npos);
  EXPECT_NE(plan.find("packed R-tree"), std::string::npos);
  EXPECT_NE(plan.find("covered-by"), std::string::npos);
}

TEST_F(PsqlExplainTest, DisjoinedCannotPrune) {
  const std::string plan = MustExplain(
      "select city from cities on us-map "
      "at loc disjoined {-74 +- 4, 41 +- 3}");
  EXPECT_NE(plan.find("cannot prune"), std::string::npos);
}

TEST_F(PsqlExplainTest, IndirectSearchUsesBTree) {
  const std::string plan = MustExplain(
      "select city from cities where population > 1000000");
  EXPECT_NE(plan.find("B+-tree index range scan"), std::string::npos);
  EXPECT_NE(plan.find("population"), std::string::npos);
  EXPECT_NE(plan.find("filter: population > 1000000"), std::string::npos);
}

TEST_F(PsqlExplainTest, IndexIntersectionShown) {
  const std::string plan = MustExplain(
      "select city from cities "
      "where population > 2000000 and city = 'Chicago'");
  EXPECT_NE(plan.find("intersect"), std::string::npos);
  EXPECT_NE(plan.find("cities.population"), std::string::npos);
  EXPECT_NE(plan.find("cities.city"), std::string::npos);
}

TEST_F(PsqlExplainTest, UnindexedWhereFallsBackToScan) {
  // `state` has no B+-tree index.
  const std::string plan = MustExplain(
      "select city from cities where state = 'TX'");
  EXPECT_NE(plan.find("sequential scan"), std::string::npos);
}

TEST_F(PsqlExplainTest, JuxtapositionUsesSimultaneousTraversal) {
  const std::string plan = MustExplain(
      "select city,zone from cities,time-zones "
      "on us-map,time-zone-map "
      "at cities.loc covered-by time-zones.loc");
  EXPECT_NE(plan.find("juxtaposition"), std::string::npos);
  EXPECT_NE(plan.find("simultaneous R-tree traversal"), std::string::npos);
}

TEST_F(PsqlExplainTest, NestedMappingShowsInnerPlan) {
  const std::string plan = MustExplain(
      "select lake from lakes on lake-map "
      "at lakes.loc covered-by "
      "select states.loc from states on state-map "
      "at states.loc overlapping {-75 +- 7, 43 +- 4}");
  EXPECT_NE(plan.find("nested mapping"), std::string::npos);
  EXPECT_NE(plan.find("inner>"), std::string::npos);
  EXPECT_NE(plan.find("overlapping"), std::string::npos);
}

TEST_F(PsqlExplainTest, ProjectionLine) {
  EXPECT_NE(MustExplain("select * from cities").find("project: *"),
            std::string::npos);
  EXPECT_NE(MustExplain("select city, area(loc) from lakes")
                .find("project: city, area(loc)"),
            std::string::npos);
}

TEST_F(PsqlExplainTest, ErrorsOnUnknownRelation) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.ExplainQuery("select x from nowhere").ok());
}

}  // namespace
}  // namespace pictdb::psql
