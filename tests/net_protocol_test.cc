// Wire protocol: primitive codec, request/response round-trips for all
// five query variants, golden byte vectors (the wire format is a
// compatibility contract — these bytes must never change within a
// protocol version), header validation, and malformed-payload rejection.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/wire.h"

namespace pictdb::net {
namespace {

std::string Hex(std::string_view bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

TEST(WireTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(-1234.5);
  w.PutString("hello");
  const std::string bytes = w.Take();

  ByteReader r(bytes);
  EXPECT_EQ(r.U8().value(), 0xAB);
  EXPECT_EQ(r.U16().value(), 0x1234);
  EXPECT_EQ(r.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.Double().value(), -1234.5);
  EXPECT_EQ(r.String(100).value(), "hello");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireTest, PrimitivesAreLittleEndian) {
  ByteWriter w;
  w.PutU16(0x1234);
  w.PutU32(0xA1B2C3D4);
  EXPECT_EQ(Hex(w.str()), "3412" "d4c3b2a1");
}

TEST(WireTest, ReaderRejectsTruncation) {
  ByteReader r("\x01");
  EXPECT_FALSE(r.U32().ok());
  ByteReader r2("\x05\x00\x00\x00ab");  // declares 5 bytes, has 2
  EXPECT_FALSE(r2.String(100).ok());
  ByteReader r3("\xff\xff\xff\x7f");  // huge declared length
  EXPECT_FALSE(r3.String(100).ok());
}

TEST(WireTest, TrailingBytesAreAnError) {
  ByteReader r("\x01\x02");
  EXPECT_TRUE(r.U8().ok());
  EXPECT_FALSE(r.ExpectEnd().ok());
}

// ---------------------------------------------------------------------
// Frame header.

TEST(ProtocolTest, FrameHeaderRoundTrip) {
  const std::string frame =
      EncodeFrame(MsgType::kWindow, kFlagCached, 42, "abc");
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 3);
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
  EXPECT_EQ(h.magic, kMagic);
  EXPECT_EQ(h.version, kProtocolVersion);
  EXPECT_EQ(h.type, MsgType::kWindow);
  EXPECT_EQ(h.flags, kFlagCached);
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(h.payload_len, 3u);
}

TEST(ProtocolTest, GoldenFrameHeaderBytes) {
  // magic 85 db | version 01 | type 06 (ping) | flags 0 | id 7 | len 0.
  const std::string frame = EncodeFrame(MsgType::kPing, 0, 7, "");
  EXPECT_EQ(Hex(frame), "85db0106" "00000000" "07000000" "00000000");
}

TEST(ProtocolTest, HeaderRejectsBadMagicVersionTypeAndSize) {
  std::string good = EncodeFrame(MsgType::kPing, 0, 0, "");
  FrameHeader h;

  std::string bad_magic = good;
  bad_magic[0] = 0x00;
  EXPECT_FALSE(DecodeFrameHeader(bad_magic, &h).ok());

  std::string bad_version = good;
  bad_version[2] = 99;
  EXPECT_FALSE(DecodeFrameHeader(bad_version, &h).ok());

  std::string bad_type = good;
  bad_type[3] = static_cast<char>(200);
  EXPECT_FALSE(DecodeFrameHeader(bad_type, &h).ok());

  std::string bad_type2 = good;
  bad_type2[3] = 0;  // type 0 is reserved / unknown
  EXPECT_FALSE(DecodeFrameHeader(bad_type2, &h).ok());

  // Oversized declared payload.
  std::string oversized = good;
  oversized[12] = static_cast<char>(0xFF);
  oversized[13] = static_cast<char>(0xFF);
  oversized[14] = static_cast<char>(0xFF);
  oversized[15] = static_cast<char>(0x7F);
  EXPECT_FALSE(DecodeFrameHeader(oversized, &h).ok());

  EXPECT_FALSE(DecodeFrameHeader("short", &h).ok());
}

// ---------------------------------------------------------------------
// Request codecs.

TEST(ProtocolTest, WindowRequestRoundTrip) {
  Request req;
  req.options = {.timeout_us = 250000, .degraded_ok = true};
  req.body = WindowRequest{geom::Rect(1.5, -2.5, 10.0, 20.0), true};
  EXPECT_EQ(RequestMsgType(req), MsgType::kWindow);

  const std::string payload = EncodeRequestPayload(req);
  auto decoded = DecodeRequestPayload(MsgType::kWindow, payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->options, req.options);
  const auto& q = std::get<WindowRequest>(decoded->body);
  EXPECT_EQ(q.window.lo.x, 1.5);
  EXPECT_EQ(q.window.hi.y, 20.0);
  EXPECT_TRUE(q.contained_only);
}

TEST(ProtocolTest, GoldenWindowRequestBytes) {
  // The golden vector locks the v1 window-request layout:
  //   timeout_us u64 | degraded u8 | 4 doubles | contained u8.
  Request req;
  req.options = {.timeout_us = 1000, .degraded_ok = false};
  req.body = WindowRequest{geom::Rect(1.0, 2.0, 3.0, 4.0), false};
  EXPECT_EQ(Hex(EncodeRequestPayload(req)),
            "e803000000000000"          // timeout 1000
            "00"                        // degraded_ok
            "000000000000f03f"          // 1.0
            "0000000000000040"          // 2.0
            "0000000000000840"          // 3.0
            "0000000000001040"          // 4.0
            "00");                      // contained
}

TEST(ProtocolTest, PointAndKnnAndJoinAndPsqlRoundTrip) {
  Request point;
  point.body = PointRequest{geom::Point{3.25, -7.75}};
  auto p2 = DecodeRequestPayload(MsgType::kPoint,
                                 EncodeRequestPayload(point));
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(std::get<PointRequest>(p2->body).point.x, 3.25);

  Request knn;
  knn.options.timeout_us = 5;
  knn.body = KnnRequest{geom::Point{0.5, 0.25}, 17};
  auto k2 = DecodeRequestPayload(MsgType::kKnn, EncodeRequestPayload(knn));
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(std::get<KnnRequest>(k2->body).k, 17u);
  EXPECT_EQ(k2->options.timeout_us, 5u);

  Request join;
  join.body = JoinRequest{3};
  auto j2 = DecodeRequestPayload(MsgType::kJoin,
                                 EncodeRequestPayload(join));
  ASSERT_TRUE(j2.ok());
  EXPECT_EQ(std::get<JoinRequest>(j2->body).overlay, 3u);

  Request psql;
  psql.body = PsqlRequest{"select city from cities on us-map"};
  auto q2 = DecodeRequestPayload(MsgType::kPsql,
                                 EncodeRequestPayload(psql));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(std::get<PsqlRequest>(q2->body).text,
            "select city from cities on us-map");
}

TEST(ProtocolTest, AdminRequestsRoundTrip) {
  Request faults;
  faults.body = SetFaultsRequest{0.01, 0.001};
  auto f2 = DecodeRequestPayload(MsgType::kSetFaults,
                                 EncodeRequestPayload(faults));
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(std::get<SetFaultsRequest>(f2->body).transient_read_error_rate,
            0.01);

  for (const MsgType t :
       {MsgType::kPing, MsgType::kStats, MsgType::kInvalidate}) {
    auto decoded = DecodeRequestPayload(t, "");
    EXPECT_TRUE(decoded.ok()) << static_cast<int>(t);
  }
}

TEST(ProtocolTest, WriteRequestsRoundTrip) {
  const WireRid rid{123456, 7};
  Request insert;
  insert.body = InsertRequest{geom::Rect(1, 2, 3, 4), rid};
  EXPECT_EQ(RequestMsgType(insert), MsgType::kInsert);
  auto i2 =
      DecodeRequestPayload(MsgType::kInsert, EncodeRequestPayload(insert));
  ASSERT_TRUE(i2.ok()) << i2.status().ToString();
  EXPECT_EQ(std::get<InsertRequest>(i2->body).mbr, geom::Rect(1, 2, 3, 4));
  EXPECT_EQ(std::get<InsertRequest>(i2->body).rid, rid);

  Request del;
  del.body = DeleteRequest{geom::Rect(1, 2, 3, 4), rid};
  EXPECT_EQ(RequestMsgType(del), MsgType::kDelete);
  auto d2 = DecodeRequestPayload(MsgType::kDelete, EncodeRequestPayload(del));
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(std::get<DeleteRequest>(d2->body).rid, rid);

  Request update;
  update.body = UpdateRequest{geom::Rect(1, 2, 3, 4), rid,
                              geom::Rect(5, 6, 7, 8), WireRid{9, 1}};
  EXPECT_EQ(RequestMsgType(update), MsgType::kUpdate);
  auto u2 =
      DecodeRequestPayload(MsgType::kUpdate, EncodeRequestPayload(update));
  ASSERT_TRUE(u2.ok());
  const auto& up = std::get<UpdateRequest>(u2->body);
  EXPECT_EQ(up.old_mbr, geom::Rect(1, 2, 3, 4));
  EXPECT_EQ(up.new_mbr, geom::Rect(5, 6, 7, 8));
  EXPECT_EQ(up.new_rid, (WireRid{9, 1}));
}

TEST(ProtocolTest, WriteTypePredicates) {
  for (const MsgType t :
       {MsgType::kInsert, MsgType::kDelete, MsgType::kUpdate}) {
    EXPECT_TRUE(IsKnownMsgType(static_cast<uint8_t>(t))) << static_cast<int>(t);
    EXPECT_TRUE(IsRequestType(t)) << static_cast<int>(t);
    EXPECT_TRUE(IsWriteRequestType(t)) << static_cast<int>(t);
    // Writes are NOT query requests: they bypass cache key derivation.
    EXPECT_FALSE(IsQueryRequestType(t)) << static_cast<int>(t);
  }
  for (const MsgType t : {MsgType::kWindow, MsgType::kPing, MsgType::kStats,
                          MsgType::kHits, MsgType::kOk}) {
    EXPECT_FALSE(IsWriteRequestType(t)) << static_cast<int>(t);
  }
}

TEST(ProtocolTest, WriteRequestDecodeRejectsMalformedPayloads) {
  Request insert;
  insert.body = InsertRequest{geom::Rect(1, 2, 3, 4), WireRid{5, 6}};
  const std::string payload = EncodeRequestPayload(insert);
  EXPECT_FALSE(
      DecodeRequestPayload(MsgType::kInsert, payload.substr(0, 8)).ok());
  EXPECT_FALSE(DecodeRequestPayload(MsgType::kInsert, payload + "x").ok());
  // Non-finite MBR coordinates are rejected before they reach the tree.
  Request nan_insert;
  nan_insert.body = InsertRequest{
      geom::Rect(std::numeric_limits<double>::infinity(), 0, 1, 1),
      WireRid{5, 6}};
  EXPECT_FALSE(DecodeRequestPayload(MsgType::kInsert,
                                    EncodeRequestPayload(nan_insert))
                   .ok());
}

TEST(ProtocolTest, RequestDecodeRejectsMalformedPayloads) {
  // Truncated window payload.
  Request req;
  req.body = WindowRequest{geom::Rect(0, 0, 1, 1), false};
  std::string payload = EncodeRequestPayload(req);
  for (const size_t cut : {size_t{0}, size_t{4}, payload.size() - 1}) {
    EXPECT_FALSE(
        DecodeRequestPayload(MsgType::kWindow, payload.substr(0, cut)).ok());
  }
  // Trailing garbage.
  EXPECT_FALSE(DecodeRequestPayload(MsgType::kWindow, payload + "x").ok());
  // Non-finite coordinates.
  Request nan_req;
  nan_req.body = WindowRequest{
      geom::Rect(std::numeric_limits<double>::quiet_NaN(), 0, 1, 1), false};
  EXPECT_FALSE(DecodeRequestPayload(MsgType::kWindow,
                                    EncodeRequestPayload(nan_req))
                   .ok());
  // Fault rates out of range.
  Request faults;
  faults.body = SetFaultsRequest{1.5, 0.0};
  EXPECT_FALSE(DecodeRequestPayload(MsgType::kSetFaults,
                                    EncodeRequestPayload(faults))
                   .ok());
  // Ping with a body.
  EXPECT_FALSE(DecodeRequestPayload(MsgType::kPing, "junk").ok());
  // Response type fed to the request decoder.
  EXPECT_FALSE(DecodeRequestPayload(MsgType::kHits, "").ok());
}

// ---------------------------------------------------------------------
// Response codecs.

WireStats SampleStats() {
  WireStats s;
  s.latency_us = 123;
  s.nodes_visited = 45;
  s.entries_tested = 200;
  s.results = 7;
  s.skipped_subtrees = 1;
  s.degraded = true;
  return s;
}

TEST(ProtocolTest, HitsResponseRoundTrip) {
  HitsResponse resp;
  resp.stats = SampleStats();
  resp.hits.push_back(WireHit{geom::Rect(1, 2, 3, 4), WireRid{9, 2}});
  resp.hits.push_back(WireHit{geom::Rect(-1, -2, 0, 0), WireRid{77, 0}});
  const Response response{resp};
  EXPECT_EQ(ResponseMsgType(response), MsgType::kHits);

  const std::string payload = EncodeResponsePayload(response);
  auto decoded = DecodeResponsePayload(MsgType::kHits, payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const auto& got = std::get<HitsResponse>(decoded->body);
  EXPECT_EQ(got.stats, resp.stats);
  ASSERT_EQ(got.hits.size(), 2u);
  EXPECT_EQ(got.hits[0].rid, (WireRid{9, 2}));
  EXPECT_EQ(got.hits[1].mbr.lo.x, -1.0);
}

TEST(ProtocolTest, NeighborsAndJoinResponseRoundTrip) {
  NeighborsResponse nresp;
  nresp.stats = SampleStats();
  nresp.neighbors.push_back(
      WireNeighbor{WireHit{geom::Rect(5, 5, 6, 6), WireRid{1, 1}}, 2.5});
  auto n2 = DecodeResponsePayload(
      MsgType::kNeighbors, EncodeResponsePayload(Response{nresp}));
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(std::get<NeighborsResponse>(n2->body).neighbors[0].distance,
            2.5);

  JoinResponse jresp;
  jresp.stats = SampleStats();
  jresp.pairs = 987654321;
  auto j2 = DecodeResponsePayload(MsgType::kJoinResult,
                                  EncodeResponsePayload(Response{jresp}));
  ASSERT_TRUE(j2.ok());
  EXPECT_EQ(std::get<JoinResponse>(j2->body).pairs, 987654321u);
}

TEST(ProtocolTest, TableResponseRoundTrip) {
  TableResponse resp;
  resp.stats.results = 2;
  resp.columns = {"city", "population"};
  resp.rows = {{"Washington", "638000"}, {"Baltimore", "621000"}};
  resp.row_rids = {{WireRid{4, 0}}, {WireRid{4, 1}}};
  auto decoded = DecodeResponsePayload(
      MsgType::kTable, EncodeResponsePayload(Response{resp}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const auto& got = std::get<TableResponse>(decoded->body);
  EXPECT_EQ(got.columns, resp.columns);
  EXPECT_EQ(got.rows, resp.rows);
  EXPECT_EQ(got.row_rids[1][0], (WireRid{4, 1}));
}

TEST(ProtocolTest, ErrorResponseRoundTripAndStatusMapping) {
  const Status original = Status::ResourceExhausted("quota exceeded");
  ErrorResponse e = ErrorResponse::FromStatus(original);
  auto decoded = DecodeResponsePayload(MsgType::kError,
                                       EncodeResponsePayload(Response{e}));
  ASSERT_TRUE(decoded.ok());
  const Status back = std::get<ErrorResponse>(decoded->body).ToStatus();
  EXPECT_TRUE(back.IsResourceExhausted());
  EXPECT_EQ(back.message(), "quota exceeded");
}

TEST(ProtocolTest, StatsResponseRoundTrip) {
  StatsResponse resp;
  resp.submitted = 100;
  resp.completed = 98;
  resp.cache_hits = 40;
  resp.protocol_errors = 3;
  resp.variant_latency[0].counts[10] = 5;
  resp.variant_latency[0].sum = 999;
  resp.variant_latency[4].max = 777;
  auto decoded = DecodeResponsePayload(
      MsgType::kStatsResult, EncodeResponsePayload(Response{resp}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const auto& got = std::get<StatsResponse>(decoded->body);
  EXPECT_EQ(got.submitted, 100u);
  EXPECT_EQ(got.cache_hits, 40u);
  EXPECT_EQ(got.variant_latency[0].counts[10], 5u);
  EXPECT_EQ(got.variant_latency[0].sum, 999u);
  EXPECT_EQ(got.variant_latency[4].max, 777u);
}

TEST(ProtocolTest, ResponseDecodeRejectsMalformedPayloads) {
  HitsResponse resp;
  resp.hits.push_back(WireHit{geom::Rect(0, 0, 1, 1), WireRid{1, 0}});
  std::string payload = EncodeResponsePayload(Response{resp});
  EXPECT_FALSE(
      DecodeResponsePayload(MsgType::kHits, payload.substr(0, 10)).ok());
  EXPECT_FALSE(DecodeResponsePayload(MsgType::kHits, payload + "z").ok());
  // A count that promises more elements than the payload can hold.
  ByteWriter w;
  for (int i = 0; i < 41; ++i) w.PutU8(0);  // stats block
  w.PutU32(1000000);                        // 1M hits in 0 bytes
  EXPECT_FALSE(DecodeResponsePayload(MsgType::kHits, w.str()).ok());
}

// ---------------------------------------------------------------------
// Cache keys.

TEST(ProtocolTest, CacheKeyCanonicalizesTimeout) {
  Request a, b;
  a.body = WindowRequest{geom::Rect(0, 0, 10, 10), false};
  a.options.timeout_us = 1000;
  b.body = WindowRequest{geom::Rect(0, 0, 10, 10), false};
  b.options.timeout_us = 999999;  // different deadline, same question
  EXPECT_EQ(CacheKey(a), CacheKey(b));
  EXPECT_FALSE(CacheKey(a).empty());

  // Different window => different key.
  Request c;
  c.body = WindowRequest{geom::Rect(0, 0, 10, 11), false};
  EXPECT_NE(CacheKey(a), CacheKey(c));

  // Same window, different kind => different key.
  Request d;
  d.body = WindowRequest{geom::Rect(0, 0, 10, 10), true};
  EXPECT_NE(CacheKey(a), CacheKey(d));

  // degraded_ok is part of the key (conservative).
  Request e = a;
  e.options.degraded_ok = true;
  EXPECT_NE(CacheKey(a), CacheKey(e));

  // Non-query requests are never cached.
  Request ping;
  ping.body = PingRequest{};
  EXPECT_TRUE(CacheKey(ping).empty());
}

}  // namespace
}  // namespace pictdb::net
