// LatencyHistogram / HistogramSnapshot: bucket math, quantiles, merge,
// concurrent recording, and the per-variant wiring in QueryService.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "pack/pack.h"
#include "rtree/rtree.h"
#include "service/metrics.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::service {
namespace {

TEST(HistogramTest, BucketIndexIsMonotoneAndBounded) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 100000; ++v) {
    const size_t idx = HistogramSnapshot::BucketIndex(v);
    ASSERT_LT(idx, HistogramSnapshot::kBuckets);
    ASSERT_GE(idx, prev);
    prev = idx;
  }
  // Huge values clamp to the last bucket instead of overflowing.
  EXPECT_EQ(HistogramSnapshot::BucketIndex(~uint64_t{0}),
            HistogramSnapshot::kBuckets - 1);
}

TEST(HistogramTest, BucketLowerBoundInvertsIndex) {
  for (size_t i = 0; i + 1 < HistogramSnapshot::kBuckets; ++i) {
    const uint64_t lo = HistogramSnapshot::BucketLowerBound(i);
    EXPECT_EQ(HistogramSnapshot::BucketIndex(lo), i) << "bucket " << i;
    // The value just below the next bound still lands in bucket i.
    const uint64_t next = HistogramSnapshot::BucketLowerBound(i + 1);
    EXPECT_EQ(HistogramSnapshot::BucketIndex(next - 1), i) << "bucket " << i;
  }
}

TEST(HistogramTest, QuantileErrorIsBounded) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_EQ(s.max, 10000u);
  EXPECT_EQ(s.ValueAtQuantile(1.0), 10000u);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = q * 10000.0;
    const auto got = static_cast<double>(s.ValueAtQuantile(q));
    // Log-linear buckets with 8 sub-buckets: <=12.5% relative error,
    // always from below (lower bucket bound).
    EXPECT_LE(got, exact + 1.0) << "q=" << q;
    EXPECT_GE(got, exact * 0.875 - 1.0) << "q=" << q;
  }
}

TEST(HistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v : {0, 1, 2, 3, 4, 5, 6, 7}) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  for (uint64_t v = 0; v < 8; ++v) EXPECT_EQ(s.counts[v], 1u);
  EXPECT_EQ(s.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(s.sum, 28u);
}

TEST(HistogramTest, MergeEqualsUnion) {
  LatencyHistogram a, b, both;
  for (uint64_t v = 1; v <= 500; ++v) {
    (v % 2 == 0 ? a : b).Record(v * 3);
    both.Record(v * 3);
  }
  HistogramSnapshot sa = a.Snapshot();
  sa.Merge(b.Snapshot());
  const HistogramSnapshot sb = both.Snapshot();
  EXPECT_EQ(sa.counts, sb.counts);
  EXPECT_EQ(sa.sum, sb.sum);
  EXPECT_EQ(sa.max, sb.max);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8, kPer = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPer; ++i) {
        h.Record(static_cast<uint64_t>(t * kPer + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().count(),
            static_cast<uint64_t>(kThreads) * kPer);
}

TEST(HistogramTest, SummaryMentionsEveryField) {
  LatencyHistogram h;
  h.Record(100);
  const std::string s = h.Snapshot().Summary();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(HistogramTest, ServiceRecordsPerVariantLatency) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 1 << 12);
  auto tree = rtree::RTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Random rng(7);
  const auto points = workload::UniformPoints(&rng, 500,
                                              workload::PaperFrame());
  std::vector<storage::Rid> rids;
  for (size_t i = 0; i < points.size(); ++i) {
    rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
  }
  ASSERT_TRUE(pack::PackSortChunk(&tree.value(),
                                  pack::MakeLeafEntries(points, rids))
                  .ok());

  QueryService svc(&tree.value(), nullptr);
  ASSERT_TRUE(
      svc.RunSync(WindowQuery{geom::Rect(0, 0, 100, 100), false}).ok());
  ASSERT_TRUE(svc.RunSync(PointQuery{geom::Point{10, 10}}).ok());
  ASSERT_TRUE(svc.RunSync(KnnQuery{geom::Point{1, 2}, 3}).ok());
  // Join without a right tree fails — but still records knn-vs-join
  // variant latency under "join".
  ASSERT_FALSE(svc.RunSync(JoinQuery{nullptr}).ok());

  const ServiceMetricsSnapshot m = svc.Metrics();
  EXPECT_EQ(m.variant_latency[0].count(), 1u);  // window
  EXPECT_EQ(m.variant_latency[1].count(), 1u);  // point
  EXPECT_EQ(m.variant_latency[2].count(), 1u);  // knn
  EXPECT_EQ(m.variant_latency[3].count(), 1u);  // join (failed)
  EXPECT_EQ(m.variant_latency[4].count(), 0u);  // psql: never submitted
  EXPECT_EQ(m.TotalLatency().count(), 4u);
  EXPECT_EQ(m.TotalLatency().count(),
            m.completed + m.failed);
}

}  // namespace
}  // namespace pictdb::service
