#include <gtest/gtest.h>

#include <vector>

#include "check/invariants.h"
#include "common/random.h"
#include "geom/transform.h"
#include "pack/pack.h"
#include "pack/rotation.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb::check {
namespace {

using geom::Point;
using rtree::Entry;
using rtree::RTree;
using rtree::RTreeOptions;
using storage::PageId;
using storage::Rid;

// Table 1 regression: for each experiment size J the packed tree must be
// no worse than the dynamically grown (Guttman INSERT) tree on the
// measures that are geometrically reproducible — depth D, node count N,
// and nodes visited per query A (EXPERIMENTS.md records why the paper's
// absolute C/O columns are not attainable: NN packing trades coverage
// for fullness). All structural numbers come from TreeValidator, so the
// regression also re-certifies that both trees satisfy every invariant
// and that C/O/D/N are measured (not assumed) on every run.

struct Env {
  Env() : disk(512), pool(&disk, 8192) {}
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool;
};

RTreeOptions PaperOptions() {
  RTreeOptions opts;
  opts.max_entries = 4;  // the paper's experiments use tiny fanout
  opts.min_entries = 2;
  return opts;
}

std::vector<Entry> ExperimentEntries(size_t j) {
  Random rng(500);  // one fixed stream; J prefixes of it nest
  const auto pts = workload::UniformPoints(&rng, j, workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < j; ++i) {
    rids.push_back(Rid{static_cast<PageId>(i), 0});
  }
  return pack::MakeLeafEntries(pts, rids);
}

class Table1RegressionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Table1RegressionTest, PackedBeatsInsertOnEveryMeasure) {
  const size_t j = GetParam();
  const std::vector<Entry> entries = ExperimentEntries(j);

  Env env;
  auto packed_created = RTree::Create(&env.pool, PaperOptions());
  PICTDB_CHECK(packed_created.ok());
  RTree packed = std::move(packed_created).value();
  PICTDB_CHECK_OK(pack::PackNearestNeighbor(&packed, entries));

  auto insert_created = RTree::Create(&env.pool, PaperOptions());
  PICTDB_CHECK(insert_created.ok());
  RTree inserted = std::move(insert_created).value();
  for (const Entry& e : entries) {
    PICTDB_CHECK_OK(inserted.Insert(e.mbr, e.AsRid()));
  }

  const TreeValidator validator;
  const ValidationReport p = validator.Check(packed);
  const ValidationReport g = validator.Check(inserted);
  ASSERT_TRUE(p.ok()) << p.ToString();
  ASSERT_TRUE(g.ok()) << g.ToString();
  ASSERT_EQ(p.leaf_entries, j);
  ASSERT_EQ(g.leaf_entries, j);

  // C and O are measured (and must be finite and positive at any
  // non-trivial size); D and N must not regress past the INSERT tree.
  EXPECT_GT(p.coverage, 0.0);
  EXPECT_GE(p.overlap, 0.0);
  EXPECT_LE(p.depth, g.depth) << "packed " << p.ToString() << "\ninsert "
                              << g.ToString();
  EXPECT_LE(p.nodes, g.nodes);
  if (j >= 100) {
    // At experiment scale packing strictly wins on node count and on the
    // paper's A column (average nodes visited per membership query).
    EXPECT_LT(p.nodes, g.nodes);
  }
  if (j >= 500) {
    // Membership probes, as in Table 1: query the data points themselves.
    // (Below a few hundred entries the A ordering is seed noise.)
    Random prng(500);
    const auto probes =
        workload::UniformPoints(&prng, j, workload::PaperFrame());
    auto pa = rtree::AverageNodesVisited(packed, probes);
    auto ga = rtree::AverageNodesVisited(inserted, probes);
    ASSERT_TRUE(pa.ok() && ga.ok());
    EXPECT_LT(*pa, *ga);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, Table1RegressionTest,
                         ::testing::Values(10, 100, 500, 900));

// Theorem 3.2: point data admits a packing with zero leaf overlap. The
// rotation construction realizes it; the validator must measure O = 0.
TEST(Theorem32Test, RotationPackingHasZeroMeasuredOverlap) {
  Random rng(900);
  const auto pts =
      workload::UniformPoints(&rng, 900, workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(Rid{static_cast<PageId>(i), 0});
  }

  Env env;
  auto created = RTree::Create(&env.pool, PaperOptions());
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  geom::Transform rotation;
  PICTDB_CHECK_OK(pack::PackWithRotation(&tree, pts, rids, &rotation));

  const ValidationReport report = TreeValidator().Check(tree);
  ASSERT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.leaf_entries, 900u);
  EXPECT_EQ(report.overlap, 0.0) << report.ToString();
  EXPECT_GT(report.coverage, 0.0);
}

}  // namespace
}  // namespace pictdb::check
