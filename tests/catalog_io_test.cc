// Catalog persistence: save a full pictorial database (relations,
// indexes, pictures, named locations) into the page file and reopen it
// in a fresh Catalog — including a real file on disk across "restarts".

#include <gtest/gtest.h>

#include <cstdio>

#include "psql/executor.h"
#include "rel/catalog.h"
#include "rel/catalog_io.h"
#include "storage/blob.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/us_catalog.h"

namespace pictdb::rel {
namespace {

using storage::BufferPool;
using storage::FileDiskManager;
using storage::InMemoryDiskManager;
using storage::PageId;

// --- Blob substrate -----------------------------------------------------------

TEST(BlobTest, RoundTripSmall) {
  InMemoryDiskManager disk(256);
  BufferPool pool(&disk, 64);
  auto first = storage::WriteBlob(&pool, Slice("hello catalog"));
  ASSERT_TRUE(first.ok());
  auto back = storage::ReadBlob(&pool, *first);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello catalog");
}

TEST(BlobTest, RoundTripMultiPage) {
  InMemoryDiskManager disk(256);
  BufferPool pool(&disk, 64);
  std::string big;
  for (int i = 0; i < 5000; ++i) big.push_back(static_cast<char>(i % 251));
  auto first = storage::WriteBlob(&pool, Slice(big));
  ASSERT_TRUE(first.ok());
  auto back = storage::ReadBlob(&pool, *first);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, big);
  EXPECT_GT(disk.page_count(), 20u);  // really chained across pages
}

TEST(BlobTest, EmptyBlob) {
  InMemoryDiskManager disk(256);
  BufferPool pool(&disk, 64);
  auto first = storage::WriteBlob(&pool, Slice(""));
  ASSERT_TRUE(first.ok());
  auto back = storage::ReadBlob(&pool, *first);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(BlobTest, FreeReturnsPages) {
  InMemoryDiskManager disk(256);
  BufferPool pool(&disk, 64);
  std::string big(3000, 'x');
  auto first = storage::WriteBlob(&pool, Slice(big));
  ASSERT_TRUE(first.ok());
  const PageId count_before = disk.page_count();
  ASSERT_TRUE(storage::FreeBlob(&pool, *first).ok());
  // Writing again reuses the freed chain.
  auto second = storage::WriteBlob(&pool, Slice(big));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(disk.page_count(), count_before);
}

// --- Catalog save/load -----------------------------------------------------------

TEST(CatalogIoTest, RoundTripInMemory) {
  InMemoryDiskManager disk(1024);
  BufferPool pool(&disk, 1 << 14);
  Catalog original(&pool);
  PICTDB_CHECK_OK(workload::BuildUsCatalog(&original, 4));
  ASSERT_TRUE(original
                  .DefineLocation("eastern-us",
                                  geom::Geometry(geom::Rect(-82, 35, -66, 45)))
                  .ok());

  auto root = SaveCatalog(original, &pool);
  ASSERT_TRUE(root.ok());

  Catalog reloaded(&pool);
  ASSERT_TRUE(LoadCatalog(&pool, *root, &reloaded).ok());

  // Same relations with same schemas and contents.
  EXPECT_EQ(reloaded.RelationNames(), original.RelationNames());
  for (const std::string& name : original.RelationNames()) {
    auto orig_rel = original.GetRelation(name);
    auto new_rel = reloaded.GetRelation(name);
    ASSERT_TRUE(orig_rel.ok() && new_rel.ok());
    EXPECT_EQ((*new_rel)->schema().ToString(name),
              (*orig_rel)->schema().ToString(name));
    EXPECT_EQ(*(*new_rel)->Count(), *(*orig_rel)->Count());
  }
  // Indexes survive.
  auto cities = reloaded.GetRelation("cities");
  ASSERT_TRUE(cities.ok());
  EXPECT_TRUE((*cities)->HasBTreeIndex("population"));
  EXPECT_TRUE((*cities)->HasSpatialIndex("loc"));
  auto index = (*cities)->SpatialIndex("loc");
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Validate().ok());
  // Pictures and locations survive.
  EXPECT_TRUE(reloaded.AssociationColumn("us-map", "cities").ok());
  EXPECT_TRUE(reloaded.GetLocation("eastern-us").ok());
}

TEST(CatalogIoTest, QueriesIdenticalAfterReload) {
  InMemoryDiskManager disk(1024);
  BufferPool pool(&disk, 1 << 14);
  Catalog original(&pool);
  PICTDB_CHECK_OK(workload::BuildUsCatalog(&original, 4));
  auto root = SaveCatalog(original, &pool);
  ASSERT_TRUE(root.ok());
  Catalog reloaded(&pool);
  ASSERT_TRUE(LoadCatalog(&pool, *root, &reloaded).ok());

  const char* queries[] = {
      "select city from cities on us-map at loc covered-by "
      "{-74 +- 4, 41 +- 3}",
      "select city,zone from cities,time-zones on us-map,time-zone-map "
      "at cities.loc covered-by time-zones.loc",
      "select count(*) from cities where population > 1000000",
  };
  for (const char* q : queries) {
    psql::Executor exec_a(&original), exec_b(&reloaded);
    auto a = exec_a.Query(q);
    auto b = exec_b.Query(q);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    EXPECT_EQ(a->rows.size(), b->rows.size()) << q;
  }
}

TEST(CatalogIoTest, SurvivesProcessRestartOnDisk) {
  const std::string path =
      std::string(::testing::TempDir()) + "/pictdb_catalog_restart.db";
  PageId root = 0;
  size_t expected_rows = 0;
  // Session 1: build + save.
  {
    auto dm = FileDiskManager::Open(path, 1024, /*truncate=*/true);
    ASSERT_TRUE(dm.ok());
    BufferPool pool(dm->get(), 1 << 14);
    Catalog catalog(&pool);
    PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog, 4));
    psql::Executor exec(&catalog);
    auto rs = exec.Query("select city from cities on us-map "
                         "at loc covered-by {-74 +- 8, 40 +- 5}");
    ASSERT_TRUE(rs.ok());
    expected_rows = rs->rows.size();
    ASSERT_GT(expected_rows, 0u);
    auto saved = SaveCatalog(catalog, &pool);
    ASSERT_TRUE(saved.ok());
    root = *saved;
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // Session 2: reopen + query.
  {
    auto dm = FileDiskManager::Open(path, 1024, /*truncate=*/false);
    ASSERT_TRUE(dm.ok());
    BufferPool pool(dm->get(), 1 << 14);
    Catalog catalog(&pool);
    ASSERT_TRUE(LoadCatalog(&pool, root, &catalog).ok());
    psql::Executor exec(&catalog);
    auto rs = exec.Query("select city from cities on us-map "
                         "at loc covered-by {-74 +- 8, 40 +- 5}");
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs->rows.size(), expected_rows);
    EXPECT_TRUE(rs->stats.used_spatial_index);
    // The reopened database is still writable.
    auto cities = catalog.GetRelation("cities");
    ASSERT_TRUE(cities.ok());
    auto rid = (*cities)->Insert(Tuple(
        {Value(std::string("Testville")), Value(std::string("TS")),
         Value(int64_t{123}),
         Value(geom::Geometry(geom::Point{-74.0, 40.9}))}));
    ASSERT_TRUE(rid.ok());
    auto again = exec.Query("select city from cities on us-map "
                            "at loc covered-by {-74 +- 8, 40 +- 5}");
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->rows.size(), expected_rows + 1);
  }
  std::remove(path.c_str());
}

TEST(CatalogIoTest, LoadRejectsGarbage) {
  InMemoryDiskManager disk(256);
  BufferPool pool(&disk, 64);
  auto blob = storage::WriteBlob(&pool, Slice("this is not a catalog"));
  ASSERT_TRUE(blob.ok());
  Catalog catalog(&pool);
  EXPECT_TRUE(LoadCatalog(&pool, *blob, &catalog).IsCorruption());
}

TEST(CatalogIoTest, LoadRejectsTruncatedImage) {
  InMemoryDiskManager disk(1024);
  BufferPool pool(&disk, 1 << 14);
  Catalog original(&pool);
  PICTDB_CHECK_OK(workload::BuildUsCatalog(&original, 4));
  auto root = SaveCatalog(original, &pool);
  ASSERT_TRUE(root.ok());
  // Truncate the image blob: chop the first page's chunk length.
  {
    auto page = pool.FetchPage(*root);
    ASSERT_TRUE(page.ok());
    const uint32_t short_len = 10;
    const storage::PageId no_next = storage::kInvalidPageId;
    std::memcpy(page->mutable_data(), &no_next, 4);
    std::memcpy(page->mutable_data() + 4, &short_len, 4);
  }
  Catalog reloaded(&pool);
  EXPECT_TRUE(LoadCatalog(&pool, *root, &reloaded).IsCorruption());
}

}  // namespace
}  // namespace pictdb::rel
