#include <gtest/gtest.h>

#include "psql/lexer.h"
#include "psql/parser.h"

namespace pictdb::psql {
namespace {

// --- Lexer -----------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("select city, population from cities");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 7u);  // incl. kEnd
  EXPECT_TRUE(IdentEquals((*tokens)[0], "select"));
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kComma);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kEnd);
}

TEST(LexerTest, HyphenatedIdentifiers) {
  auto tokens = Tokenize("time-zones covered-by us-map hwy-name");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].text, "time-zones");
  EXPECT_EQ((*tokens)[1].text, "covered-by");
  EXPECT_EQ((*tokens)[2].text, "us-map");
  EXPECT_EQ((*tokens)[3].text, "hwy-name");
}

TEST(LexerTest, NumbersIncludingNegatives) {
  auto tokens = Tokenize("42 -7.5 .25 -87");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 42);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, -7.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 0.25);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, -87);
}

TEST(LexerTest, WindowLiteralTokens) {
  auto tokens = Tokenize("{4 +- 4, 11 +- 9}");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLBrace);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kPlusMinus);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kComma);
  EXPECT_EQ((*tokens)[8].kind, TokenKind::kRBrace);
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("< <= > >= = <> !=");
  ASSERT_TRUE(tokens.ok());
  const TokenKind expected[] = {TokenKind::kLt, TokenKind::kLe,
                                TokenKind::kGt, TokenKind::kGe,
                                TokenKind::kEq, TokenKind::kNe,
                                TokenKind::kNe};
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ((*tokens)[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, StringLiterals) {
  auto tokens = Tokenize("city = 'New York'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[2].text, "New York");
  EXPECT_FALSE(Tokenize("'unterminated").ok());
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("select #").ok());
  EXPECT_FALSE(Tokenize("a + b").ok());  // no arithmetic in PSQL
}

// --- Parser -----------------------------------------------------------------

TEST(ParserTest, PaperQueryOne) {
  // §2.2 first example, modulo ASCII ± and comma-free numbers.
  auto stmt = Parse(
      "select city,state,population,loc "
      "from cities "
      "on us-map "
      "at loc covered-by {4 +- 4, 11 +- 9} "
      "where population > 450000");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->targets.size(), 4u);
  EXPECT_EQ((*stmt)->from, std::vector<std::string>{"cities"});
  EXPECT_EQ((*stmt)->on, std::vector<std::string>{"us-map"});
  ASSERT_TRUE((*stmt)->at.has_value());
  EXPECT_EQ((*stmt)->at->op, SpatialOp::kCoveredBy);
  EXPECT_EQ((*stmt)->at->lhs.kind, LocExpr::Kind::kColumn);
  EXPECT_EQ((*stmt)->at->lhs.column, "loc");
  EXPECT_EQ((*stmt)->at->rhs.kind, LocExpr::Kind::kWindow);
  EXPECT_EQ((*stmt)->at->rhs.window, geom::Rect(0, 2, 8, 20));
  ASSERT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->where->kind, Expr::Kind::kCompare);
}

TEST(ParserTest, JuxtapositionQuery) {
  // §2.2 juxtaposition example.
  auto stmt = Parse(
      "select city,zone "
      "from cities,time-zones "
      "on us-map,time-zone-map "
      "at cities.loc covered-by time-zones.loc");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->from,
            (std::vector<std::string>{"cities", "time-zones"}));
  ASSERT_TRUE((*stmt)->at.has_value());
  EXPECT_EQ((*stmt)->at->lhs.rel, "cities");
  EXPECT_EQ((*stmt)->at->rhs.rel, "time-zones");
  EXPECT_EQ((*stmt)->at->rhs.column, "loc");
}

TEST(ParserTest, PaperSpaceQualifiedColumns) {
  // The paper writes "cities loc" with a space instead of a dot.
  auto stmt = Parse(
      "select city,zone from cities,time-zones "
      "on us-map,time-zone-map "
      "at cities loc covered-by time-zones loc");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->at->lhs.rel, "cities");
  EXPECT_EQ((*stmt)->at->lhs.column, "loc");
  EXPECT_EQ((*stmt)->at->rhs.rel, "time-zones");
}

TEST(ParserTest, NestedMapping) {
  // §2.2 nested lakes example.
  auto stmt = Parse(
      "select lake,area,lakes.loc from lakes on lake-map "
      "at lakes.loc covered-by "
      "select states.loc from states on state-map "
      "at states.loc covered-by {4 +- 4, 11 +- 9}");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE((*stmt)->at.has_value());
  ASSERT_EQ((*stmt)->at->rhs.kind, LocExpr::Kind::kSubquery);
  const SelectStmt& inner = *(*stmt)->at->rhs.subquery;
  EXPECT_EQ(inner.from, std::vector<std::string>{"states"});
  ASSERT_TRUE(inner.at.has_value());
  EXPECT_EQ(inner.at->rhs.kind, LocExpr::Kind::kWindow);
}

TEST(ParserTest, ParenthesizedNestedMapping) {
  auto stmt = Parse(
      "select lake from lakes on lake-map "
      "at loc covered-by (select loc from states on state-map)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->at->rhs.kind, LocExpr::Kind::kSubquery);
}

TEST(ParserTest, StarTargets) {
  auto stmt = Parse("select * from cities");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->star);
  EXPECT_FALSE((*stmt)->at.has_value());
  EXPECT_EQ((*stmt)->where, nullptr);
}

TEST(ParserTest, FunctionTargetsAndCalls) {
  auto stmt = Parse("select lake, area(loc) from lakes where area(loc) > 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->targets[1].expr->kind, Expr::Kind::kCall);
  EXPECT_EQ((*stmt)->targets[1].display, "area(loc)");
}

TEST(ParserTest, BooleanConnectives) {
  auto stmt = Parse(
      "select city from cities "
      "where population > 100 and (state = 'TX' or not population < 50)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->where->kind, Expr::Kind::kAnd);
  EXPECT_EQ((*stmt)->where->args[1]->kind, Expr::Kind::kOr);
  EXPECT_EQ((*stmt)->where->args[1]->args[1]->kind, Expr::Kind::kNot);
}

TEST(ParserTest, AllSpatialOperators) {
  const std::pair<const char*, SpatialOp> cases[] = {
      {"covered-by", SpatialOp::kCoveredBy},
      {"covering", SpatialOp::kCovering},
      {"overlapping", SpatialOp::kOverlapping},
      {"disjoined", SpatialOp::kDisjoined},
  };
  for (const auto& [name, op] : cases) {
    const std::string q = std::string("select city from cities at loc ") +
                          name + " {0 +- 1, 0 +- 1}";
    auto stmt = Parse(q);
    ASSERT_TRUE(stmt.ok()) << q;
    EXPECT_EQ((*stmt)->at->op, op) << name;
  }
}

TEST(ParserTest, WindowOnLeftSide) {
  auto stmt = Parse(
      "select city from cities at {0 +- 5, 0 +- 5} covering loc");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->at->lhs.kind, LocExpr::Kind::kWindow);
  EXPECT_EQ((*stmt)->at->rhs.kind, LocExpr::Kind::kColumn);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("selec city from cities").ok());
  EXPECT_FALSE(Parse("select city").ok());                  // missing from
  EXPECT_FALSE(Parse("select from cities").ok());           // missing targets
  EXPECT_FALSE(Parse("select city from cities extra").ok());
  EXPECT_FALSE(Parse("select city from cities at loc {0 +- 1, 0 +- 1}").ok());
  EXPECT_FALSE(
      Parse("select city from cities at loc covered-by {1, 2}").ok());
  EXPECT_FALSE(
      Parse("select city from cities at loc covered-by {1 +- -2, 0 +- 1}")
          .ok());
  EXPECT_FALSE(Parse("select city from cities where population >").ok());
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto stmt = Parse("SELECT city FROM cities WHERE population > 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->targets.size(), 1u);
}

}  // namespace
}  // namespace pictdb::psql
