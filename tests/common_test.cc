#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/status_or.h"

namespace pictdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

StatusOr<int> DoubleIfPositive(int v) {
  PICTDB_ASSIGN_OR_RETURN(const int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(21);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 21);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-3);
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoubleIfPositive(5), 10);
  EXPECT_TRUE(DoubleIfPositive(-5).status().IsInvalidArgument());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(SliceTest, BasicAccessors) {
  const std::string data = "hello";
  Slice s(data);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  // Shorter prefix sorts first.
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
}

TEST(SliceTest, RemovePrefix) {
  Slice s("database");
  s.RemovePrefix(4);
  EXPECT_EQ(s.ToString(), "base");
}

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RandomTest, UniformCoversAllValues) {
  Random rng(7);
  std::map<uint64_t, int> histogram;
  for (int i = 0; i < 10000; ++i) ++histogram[rng.Uniform(8)];
  ASSERT_EQ(histogram.size(), 8u);
  for (const auto& [value, count] : histogram) {
    // Expected 1250 per bucket; allow wide slack.
    EXPECT_GT(count, 1000) << "value " << value;
    EXPECT_LT(count, 1500) << "value " << value;
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace pictdb
