// Aggregate mappings: count/min/max/sum/avg plus the paper's geometric
// aggregates (northest & friends), over the US-map example database.

#include <gtest/gtest.h>

#include "psql/executor.h"
#include "rel/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/us_catalog.h"
#include "workload/us_cities.h"

namespace pictdb::psql {
namespace {

class PsqlAggregateTest : public ::testing::Test {
 protected:
  PsqlAggregateTest() : disk_(1024), pool_(&disk_, 1 << 14),
                        catalog_(&pool_) {
    PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog_, 4));
  }

  ResultSet MustQuery(const std::string& text) {
    Executor exec(&catalog_);
    auto result = exec.Query(text);
    PICTDB_CHECK(result.ok()) << text << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
  rel::Catalog catalog_;
};

TEST_F(PsqlAggregateTest, CountStar) {
  const ResultSet rs = MustQuery("select count(*) from cities");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(),
            static_cast<int64_t>(workload::ContinentalUsCities().size()));
  EXPECT_EQ(rs.columns[0], "count(*)");
}

TEST_F(PsqlAggregateTest, CountWithWhere) {
  const ResultSet rs = MustQuery(
      "select count(*) from cities where population > 1000000");
  ASSERT_EQ(rs.rows.size(), 1u);
  int64_t expected = 0;
  for (const auto& c : workload::ContinentalUsCities()) {
    if (c.population > 1000000) ++expected;
  }
  EXPECT_EQ(rs.rows[0][0].as_int(), expected);
}

TEST_F(PsqlAggregateTest, CountWithSpatialQualification) {
  const ResultSet rs = MustQuery(
      "select count(*) from cities on us-map "
      "at loc covered-by {-74 +- 4, 41 +- 3}");
  ASSERT_EQ(rs.rows.size(), 1u);
  int64_t expected = 0;
  const geom::Rect window = geom::Rect::FromCenterHalfExtent(-74, 4, 41, 3);
  for (const auto& c : workload::ContinentalUsCities()) {
    if (window.Contains(c.loc())) ++expected;
  }
  EXPECT_EQ(rs.rows[0][0].as_int(), expected);
  EXPECT_TRUE(rs.stats.used_spatial_index);
}

TEST_F(PsqlAggregateTest, MinMaxSumAvg) {
  const ResultSet rs = MustQuery(
      "select min(population), max(population), sum(population), "
      "avg(population) from cities");
  ASSERT_EQ(rs.rows.size(), 1u);
  int64_t min_pop = INT64_MAX, max_pop = 0, sum = 0, n = 0;
  for (const auto& c : workload::ContinentalUsCities()) {
    min_pop = std::min(min_pop, c.population);
    max_pop = std::max(max_pop, c.population);
    sum += c.population;
    ++n;
  }
  EXPECT_EQ(rs.rows[0][0].as_int(), min_pop);
  EXPECT_EQ(rs.rows[0][1].as_int(), max_pop);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].as_double(),
                   static_cast<double>(sum));
  EXPECT_NEAR(rs.rows[0][3].as_double(),
              static_cast<double>(sum) / static_cast<double>(n), 1e-6);
}

TEST_F(PsqlAggregateTest, MinMaxOnStrings) {
  const ResultSet rs = MustQuery(
      "select min(city), max(city) from cities");
  ASSERT_EQ(rs.rows.size(), 1u);
  std::string lo = "zzzz", hi = "";
  for (const auto& c : workload::ContinentalUsCities()) {
    lo = std::min(lo, std::string(c.name));
    hi = std::max(hi, std::string(c.name));
  }
  EXPECT_EQ(rs.rows[0][0].ToString(), lo);
  EXPECT_EQ(rs.rows[0][1].ToString(), hi);
}

TEST_F(PsqlAggregateTest, NorthestOfHighway) {
  // The paper's example: "an aggregate function on a set of highway
  // segments is northest".
  const ResultSet rs = MustQuery(
      "select northest(loc) from highways where hwy-name = 'I-95'");
  ASSERT_EQ(rs.rows.size(), 1u);
  // I-95's northernmost point in our data is Boston.
  EXPECT_NEAR(rs.rows[0][0].as_double(), 42.3601, 1e-3);
}

TEST_F(PsqlAggregateTest, ExtentAggregatesOverCities) {
  const ResultSet rs = MustQuery(
      "select northest(loc), southest(loc), eastest(loc), westest(loc) "
      "from cities");
  ASSERT_EQ(rs.rows.size(), 1u);
  double north = -90, south = 90, east = -180, west = 180;
  for (const auto& c : workload::ContinentalUsCities()) {
    north = std::max(north, c.lat);
    south = std::min(south, c.lat);
    east = std::max(east, c.lon);
    west = std::min(west, c.lon);
  }
  EXPECT_NEAR(rs.rows[0][0].as_double(), north, 1e-9);
  EXPECT_NEAR(rs.rows[0][1].as_double(), south, 1e-9);
  EXPECT_NEAR(rs.rows[0][2].as_double(), east, 1e-9);
  EXPECT_NEAR(rs.rows[0][3].as_double(), west, 1e-9);
}

TEST_F(PsqlAggregateTest, AggregatesOverEmptySelection) {
  const ResultSet rs = MustQuery(
      "select count(*), max(population), avg(population) from cities "
      "where population > 999999999");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
  EXPECT_TRUE(rs.rows[0][2].is_null());
}

TEST_F(PsqlAggregateTest, CountColumnSkipsNulls) {
  // Build a tiny relation with a null population.
  PICTDB_CHECK_OK(catalog_.CreateRelation(
      "sparse", rel::Schema({{"name", rel::ValueType::kString},
                             {"v", rel::ValueType::kInt}})));
  auto sparse = catalog_.GetRelation("sparse");
  ASSERT_TRUE(sparse.ok());
  ASSERT_TRUE((*sparse)
                  ->Insert(rel::Tuple({rel::Value(std::string("a")),
                                       rel::Value(int64_t{1})}))
                  .ok());
  ASSERT_TRUE((*sparse)
                  ->Insert(rel::Tuple({rel::Value(std::string("b")),
                                       rel::Value()}))
                  .ok());
  const ResultSet rs = MustQuery("select count(*), count(v) from sparse");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
  EXPECT_EQ(rs.rows[0][1].as_int(), 1);
}

TEST_F(PsqlAggregateTest, MixedAggregateAndPlainTargetsRejected) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Query("select city, count(*) from cities").ok());
}

TEST_F(PsqlAggregateTest, JuxtapositionWithAggregate) {
  // How many (city, zone) pairs does the geographic join produce?
  const ResultSet rs = MustQuery(
      "select count(*) from cities,time-zones "
      "on us-map,time-zone-map "
      "at cities.loc covered-by time-zones.loc");
  ASSERT_EQ(rs.rows.size(), 1u);
  int64_t expected = 0;
  for (const auto& c : workload::ContinentalUsCities()) {
    for (const auto& z : workload::UsTimeZones()) {
      if (z.band.Contains(c.loc())) ++expected;
    }
  }
  EXPECT_EQ(rs.rows[0][0].as_int(), expected);
}

}  // namespace
}  // namespace pictdb::psql
