// The external-sort bulk loader's contract: same criterion, same entry
// stream → a disk image byte-identical to the in-memory pack, across
// run counts 1 / 2 / many (cascaded); spill corruption surfaces as a
// clean error with the tree left empty and usable.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "common/random.h"
#include "pack/external.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/spill_file.h"
#include "workload/generators.h"

namespace pictdb::pack {
namespace {

using rtree::Entry;
using rtree::RTree;
using storage::PageId;
using storage::Rid;

std::string SpillDir() { return std::string(::testing::TempDir()); }

void ExpectValidTree(const RTree& tree) {
  const check::ValidationReport report = check::TreeValidator().Check(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

std::vector<Entry> SeededEntries(uint64_t seed, size_t n) {
  Random rng(seed);
  const auto pts = workload::UniformPoints(&rng, n, workload::PaperFrame());
  std::vector<Rid> rids;
  for (size_t i = 0; i < n; ++i) {
    rids.push_back(Rid{static_cast<PageId>(i), 0});
  }
  return MakeLeafEntries(pts, rids);
}

/// Entries with heavy key collisions for every criterion: centers snap
/// to a coarse grid, so the stable tie-break is what the merge must
/// reproduce.
std::vector<Entry> GriddedEntries(uint64_t seed, size_t n) {
  Random rng(seed);
  std::vector<Entry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Entry e;
    const double x = static_cast<double>(rng.Uniform(8)) * 10.0;
    const double y = static_cast<double>(rng.Uniform(8)) * 10.0;
    e.mbr = geom::Rect(x, y, x + 1.0, y + 1.0);
    e.payload = Entry::PayloadFromRid(Rid{static_cast<PageId>(i), 0});
    out.push_back(e);
  }
  return out;
}

/// One fully built database image: every page the build touched,
/// flushed and read back raw (checksum trailer included).
struct DiskImage {
  uint32_t page_size = 0;
  std::vector<std::vector<char>> pages;

  bool operator==(const DiskImage& other) const {
    if (page_size != other.page_size || pages.size() != other.pages.size()) {
      return false;
    }
    for (size_t i = 0; i < pages.size(); ++i) {
      if (pages[i] != other.pages[i]) return false;
    }
    return true;
  }
};

template <typename BuildFn>
DiskImage BuildImage(const std::vector<Entry>& entries, const BuildFn& build) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  auto created = RTree::Create(&pool);
  PICTDB_CHECK(created.ok());
  RTree tree = std::move(created).value();
  build(&tree, entries);
  ExpectValidTree(tree);
  PICTDB_CHECK_OK(pool.FlushAll());

  DiskImage image;
  image.page_size = disk.page_size();
  image.pages.resize(disk.page_count());
  for (PageId id = 0; id < disk.page_count(); ++id) {
    image.pages[id].resize(disk.page_size());
    PICTDB_CHECK_OK(disk.ReadPage(id, image.pages[id].data()));
  }
  return image;
}

PackOptions ExternalOptions(PackStrategy strategy, uint64_t budget,
                            SortCriterion criterion =
                                SortCriterion::kAscendingX) {
  PackOptions o;
  o.strategy = strategy;
  o.criterion = criterion;
  o.memory_budget_bytes = budget;
  o.spill_dir = SpillDir();
  return o;
}

struct CriterionCase {
  const char* name;
  PackStrategy strategy;
  SortCriterion criterion;
};

const CriterionCase kCriteria[] = {
    {"lowx", PackStrategy::kSortChunk, SortCriterion::kAscendingX},
    {"lowy", PackStrategy::kSortChunk, SortCriterion::kAscendingY},
    {"hilbert", PackStrategy::kHilbert, SortCriterion::kHilbert},
};

// --- byte-identity across run counts --------------------------------------

class ExternalPackEquivalence
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ExternalPackEquivalence, MatchesInMemoryPackByteForByte) {
  const CriterionCase& c = kCriteria[std::get<0>(GetParam())];
  const uint64_t seed = std::get<1>(GetParam());
  const size_t n = 3000;
  const std::vector<Entry> entries = seed % 2 == 0
                                         ? SeededEntries(seed, n)
                                         : GriddedEntries(seed, n);

  PackOptions in_memory;
  in_memory.strategy = c.strategy;
  in_memory.criterion = c.criterion;
  const DiskImage reference =
      BuildImage(entries, [&](RTree* tree, const std::vector<Entry>& e) {
        PICTDB_CHECK_OK(Pack(tree, e, in_memory));
      });

  // Budgets chosen (in units of the 48-byte keyed entry) to force run
  // counts of 1, 2, and enough to overflow the merge fan-in (cascade).
  const struct {
    uint64_t budget;
    uint64_t expect_runs;
  } kBudgets[] = {
      {48 * uint64_t{n}, 1},
      {48 * uint64_t{n} / 2, 2},
      {48 * 20, (n + 19) / 20},  // 150 runs > kSpillMergeMaxFanIn
  };
  for (const auto& b : kBudgets) {
    ExternalPackStats stats;
    const DiskImage external =
        BuildImage(entries, [&](RTree* tree, const std::vector<Entry>& e) {
          VectorEntrySource source(&e);
          PICTDB_CHECK_OK(PackExternal(
              tree, &source,
              ExternalOptions(c.strategy, b.budget, c.criterion), &stats));
        });
    EXPECT_TRUE(external == reference)
        << c.name << " budget=" << b.budget << " runs=" << stats.spill_runs;
    EXPECT_EQ(stats.entries, n);
    EXPECT_EQ(stats.spill_runs, b.expect_runs);
    EXPECT_GE(stats.merge_passes, 1u);
    if (b.expect_runs > kSpillMergeMaxFanIn) {
      EXPECT_GT(stats.merge_passes, 1u) << "cascade must have run";
    }
    EXPECT_GT(stats.spill_pages_written, 0u);
    EXPECT_GE(stats.spill_pages_read, stats.spill_pages_written);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Criteria, ExternalPackEquivalence,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values<uint64_t>(11, 12)),
    [](const auto& info) {
      return std::string(kCriteria[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// The Pack() dispatcher reaches the same external path.
TEST(ExternalPackTest, PackDispatcherRoutesBudgetedSortChunk) {
  const std::vector<Entry> entries = SeededEntries(5, 500);
  PackOptions in_memory;
  in_memory.strategy = PackStrategy::kSortChunk;
  const DiskImage reference =
      BuildImage(entries, [&](RTree* tree, const std::vector<Entry>& e) {
        PICTDB_CHECK_OK(Pack(tree, e, in_memory));
      });
  PackOptions budgeted = in_memory;
  budgeted.memory_budget_bytes = 48 * 100;
  budgeted.spill_dir = SpillDir();
  const DiskImage external =
      BuildImage(entries, [&](RTree* tree, const std::vector<Entry>& e) {
        PICTDB_CHECK_OK(Pack(tree, e, budgeted));
      });
  EXPECT_TRUE(external == reference);
}

// --- edges ----------------------------------------------------------------

TEST(ExternalPackTest, EmptySourceBuildsEmptyTree) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 64);
  auto tree = RTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  const std::vector<Entry> none;
  VectorEntrySource source(&none);
  ExternalPackStats stats;
  ASSERT_TRUE(PackExternal(&*tree, &source,
                           ExternalOptions(PackStrategy::kSortChunk, 1 << 16),
                           &stats)
                  .ok());
  EXPECT_EQ(tree->Size(), 0u);
  EXPECT_EQ(stats.spill_runs, 0u);
}

TEST(ExternalPackTest, BoundarySizesAroundOneNode) {
  storage::InMemoryDiskManager probe(512);
  storage::BufferPool probe_pool(&probe, 64);
  auto probe_tree = RTree::Create(&probe_pool);
  ASSERT_TRUE(probe_tree.ok());
  const size_t max = probe_tree->options().max_entries;

  for (const size_t n : {size_t{1}, max, max + 1, 2 * max + 3}) {
    const std::vector<Entry> entries = SeededEntries(77, n);
    PackOptions in_memory;
    in_memory.strategy = PackStrategy::kSortChunk;
    const DiskImage reference =
        BuildImage(entries, [&](RTree* tree, const std::vector<Entry>& e) {
          PICTDB_CHECK_OK(Pack(tree, e, in_memory));
        });
    const DiskImage external =
        BuildImage(entries, [&](RTree* tree, const std::vector<Entry>& e) {
          VectorEntrySource source(&e);
          PICTDB_CHECK_OK(PackExternal(
              tree, &source, ExternalOptions(PackStrategy::kSortChunk, 48 * 2),
              nullptr));
        });
    EXPECT_TRUE(external == reference) << "n=" << n;
  }
}

TEST(ExternalPackTest, RejectsUnsupportedStrategies) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 64);
  auto tree = RTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  const std::vector<Entry> entries = SeededEntries(9, 10);
  for (const PackStrategy s :
       {PackStrategy::kNearestNeighbor, PackStrategy::kStr}) {
    VectorEntrySource source(&entries);
    const Status status =
        PackExternal(&*tree, &source, ExternalOptions(s, 1 << 16));
    EXPECT_EQ(status.code(), StatusCode::kNotSupported) << status.ToString();
  }
  EXPECT_EQ(tree->Size(), 0u);
}

TEST(ExternalPackTest, RejectsNonFiniteEntriesBeforeSpilling) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 64);
  auto tree = RTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  std::vector<Entry> entries = SeededEntries(13, 50);
  entries[17].mbr.lo.x = std::numeric_limits<double>::quiet_NaN();
  VectorEntrySource source(&entries);
  const Status status = PackExternal(
      &*tree, &source, ExternalOptions(PackStrategy::kSortChunk, 48 * 8));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  EXPECT_EQ(tree->Size(), 0u);
}

// --- fault injection on the spill path ------------------------------------

TEST(ExternalPackTest, TornSpillWriteFailsCleanlyAndTreeStaysUsable) {
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 8192);
  auto tree = RTree::Create(&pool);
  ASSERT_TRUE(tree.ok());

  storage::SpillFileManager manager(SpillDir());
  manager.SetDiskWrapperForTesting([](storage::DiskManager* base) {
    storage::FaultPlan plan;
    plan.seed = 42;
    plan.torn_write_rate = 1.0;  // every spill page silently torn
    return std::make_unique<storage::FaultInjectionDiskManager>(base, plan);
  });

  const std::vector<Entry> entries = SeededEntries(21, 400);
  VectorEntrySource source(&entries);
  const Status status =
      PackExternal(&*tree, &source,
                   ExternalOptions(PackStrategy::kSortChunk, 48 * 50), nullptr,
                   &manager);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();

  // No partial tree: the root was never set, and the same tree object
  // accepts a clean in-memory pack afterwards.
  EXPECT_EQ(tree->Size(), 0u);
  PackOptions in_memory;
  in_memory.strategy = PackStrategy::kSortChunk;
  ASSERT_TRUE(Pack(&*tree, entries, in_memory).ok());
  EXPECT_EQ(tree->Size(), entries.size());
  ExpectValidTree(*tree);
}

TEST(ExternalPackTest, TransientSpillFaultsAreAbsorbedByRetry) {
  const std::vector<Entry> entries = SeededEntries(33, 1200);
  PackOptions in_memory;
  in_memory.strategy = PackStrategy::kSortChunk;
  const DiskImage reference =
      BuildImage(entries, [&](RTree* tree, const std::vector<Entry>& e) {
        PICTDB_CHECK_OK(Pack(tree, e, in_memory));
      });

  storage::SpillFileManager manager(SpillDir());
  manager.SetDiskWrapperForTesting([](storage::DiskManager* base) {
    storage::FaultPlan plan;
    plan.seed = 7;
    plan.transient_read_error_rate = 0.2;
    plan.transient_write_error_rate = 0.2;
    return std::make_unique<storage::FaultInjectionDiskManager>(base, plan);
  });

  ExternalPackStats stats;
  const DiskImage external =
      BuildImage(entries, [&](RTree* tree, const std::vector<Entry>& e) {
        VectorEntrySource source(&e);
        PICTDB_CHECK_OK(
            PackExternal(tree, &source,
                         ExternalOptions(PackStrategy::kSortChunk, 48 * 200),
                         &stats, &manager));
      });
  EXPECT_TRUE(external == reference);
  EXPECT_EQ(stats.spill_runs, 6u);
}

// --- spill framing unit coverage ------------------------------------------

TEST(SpillFileTest, RoundTripsRecordsAcrossPages) {
  storage::SpillFileManager manager(SpillDir(), /*page_size=*/256);
  auto spill = manager.Create();
  ASSERT_TRUE(spill.ok());

  constexpr uint32_t kRecordSize = 48;
  const uint32_t per_page = storage::SpillRecordsPerPage(256, kRecordSize);
  ASSERT_GT(per_page, 1u);

  storage::SpillRunWriter writer(spill->get(), kRecordSize);
  const size_t kRecords = per_page * 3 + 1;  // exercises a partial tail page
  char rec[kRecordSize];
  for (size_t i = 0; i < kRecords; ++i) {
    std::memset(rec, static_cast<int>(i % 251), sizeof(rec));
    PICTDB_CHECK_OK(writer.Append(rec));
  }
  auto run = writer.Finish();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->records, kRecords);
  EXPECT_EQ(run->page_count, 4u);

  storage::SpillRunReader reader(spill->get(), *run, kRecordSize);
  for (size_t i = 0; i < kRecords; ++i) {
    auto more = reader.Next(rec);
    ASSERT_TRUE(more.ok() && *more) << i;
    EXPECT_EQ(static_cast<unsigned char>(rec[0]), i % 251);
  }
  auto done = reader.Next(rec);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);
}

TEST(SpillFileTest, FileIsRemovedWithHandle) {
  std::string path;
  {
    storage::SpillFileManager manager(SpillDir());
    auto spill = manager.Create();
    ASSERT_TRUE(spill.ok());
    path = (*spill)->path();
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::fclose(f);
  }
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr) << path;
}

}  // namespace
}  // namespace pictdb::pack
