// RAW-NEW must stay silent: smart pointers, deleted members, and the
// leaky-singleton idiom are all allowed.
class Table {
 public:
  Table(const Table&) = delete;
  static Table& Instance() {
    static Table& t = *new Table{};
    return t;
  }
};
void Fine() { auto node = std::make_unique<Node>(); }
