// SEEDED-RANDOM must stay silent: the project PRNG with an explicit
// seed is the sanctioned randomness source.
#include "common/random.h"
void Roll(uint64_t seed) {
  pictdb::Random rng(seed);
  (void)rng.Uniform(6);
}
