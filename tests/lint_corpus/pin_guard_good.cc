// PIN-GUARD must stay silent: every pin is bound or returned.
pictdb::Status Use(pictdb::storage::BufferPool* pool) {
  PICTDB_ASSIGN_OR_RETURN(pictdb::storage::PageGuard guard,
                          pool->FetchPage(7));
  auto fresh = pool->NewPage();
  if (!fresh.ok()) return fresh.status();
  return pool->FetchPage(8).status();
}
