// SEEDED-RANDOM must fire (when placed under src/check/): unseeded or
// wall-clock entropy breaks byte-identical trace replay.
#include <random>
void Roll() {
  std::mt19937 gen(std::random_device{}());
  srand(42);
  int r = rand();
  (void)r;
}
