// MUTEX-WRAPPER must stay silent: the annotated wrappers are used.
#include "common/mutex.h"
class Counter {
  pictdb::Mutex mu_;
  int n_ = 0;
 public:
  void Add() {
    pictdb::MutexLock lock(&mu_);
    ++n_;
  }
};
