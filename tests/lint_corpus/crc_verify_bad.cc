// CRC-VERIFY must fire: the trailer helper exists, but FetchPage's
// miss path bypasses it and reads the raw disk manager.
Status BufferPool::ReadPageWithRetry(PageId id, char* out) {
  PICTDB_RETURN_IF_ERROR(disk_->ReadPage(id, out));
  return VerifyPageTrailer(out, disk_->page_size());
}

StatusOr<PageGuard> BufferPool::FetchPage(PageId id) {
  PICTDB_RETURN_IF_ERROR(disk_->ReadPage(id, frame.data.get()));
  return PinFrame(shard, idx);
}
