// NO-SUPPRESS must fire (when placed under src/check/).
void Hack() {
  int unused = 0;  // NOLINT(clang-diagnostic-unused-variable)
}
void Sneaky() NO_THREAD_SAFETY_ANALYSIS {}
