// SPILL-TEMP must stay silent: scratch files go through the manager.
#include "storage/spill_file.h"
pictdb::Status Scratch(pictdb::storage::SpillFileManager* spill) {
  PICTDB_ASSIGN_OR_RETURN(auto handle, spill->Create("sort-run"));
  return handle->Append("bytes", 5);
}
