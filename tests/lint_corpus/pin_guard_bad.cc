// PIN-GUARD must fire: naked pins with no guard bound.
void Touch(pictdb::storage::BufferPool* pool) {
  pool->FetchPage(7);
  pool->NewPage();
}
