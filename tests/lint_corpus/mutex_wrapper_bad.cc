// MUTEX-WRAPPER must fire: std lock types outside common/mutex.h.
#include <mutex>
class Counter {
  std::mutex mu_;
  int n_ = 0;
 public:
  void Add() {
    std::lock_guard<std::mutex> lock(mu_);
    ++n_;
  }
};
