// SPILL-TEMP must fire: ad-hoc temp files outside spill_file.{h,cc}.
#include <cstdio>
void Scratch() {
  std::FILE* f = tmpfile();
  char tmpl[] = "/tmp/pictdb_XXXXXX";
  int fd = mkstemp(tmpl);
  (void)f;
  (void)fd;
}
