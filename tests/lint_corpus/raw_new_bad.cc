// RAW-NEW must fire: raw new and delete outside src/storage/.
void Leaky() {
  int* scratch = new int[16];
  delete[] scratch;
  auto* node = new Node();
  delete node;
}
