// NO-SUPPRESS must stay silent: no suppression markers anywhere.
void Honest() {
  int used = 0;
  ++used;
}
