// CRC-VERIFY must stay silent: miss reads go through the retrying,
// trailer-verifying helper.
Status BufferPool::ReadPageWithRetry(PageId id, char* out) {
  PICTDB_RETURN_IF_ERROR(disk_->ReadPage(id, out));
  return VerifyPageTrailer(out, disk_->page_size());
}

StatusOr<PageGuard> BufferPool::FetchPage(PageId id) {
  PICTDB_RETURN_IF_ERROR(ReadPageWithRetry(id, frame.data.get()));
  return PinFrame(shard, idx);
}
