#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/write_cache.h"

namespace pictdb::storage {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/pictdb_" + tag + ".db";
}

// --- DiskManager -------------------------------------------------------------

template <typename T>
std::unique_ptr<DiskManager> MakeDisk(uint32_t page_size);

template <>
std::unique_ptr<DiskManager> MakeDisk<InMemoryDiskManager>(
    uint32_t page_size) {
  return std::make_unique<InMemoryDiskManager>(page_size);
}

template <>
std::unique_ptr<DiskManager> MakeDisk<FileDiskManager>(uint32_t page_size) {
  auto dm = FileDiskManager::Open(TempPath("disk"), page_size);
  PICTDB_CHECK(dm.ok());
  return std::move(dm).value();
}

template <typename T>
class DiskManagerTest : public ::testing::Test {};

using DiskManagerTypes = ::testing::Types<InMemoryDiskManager,
                                          FileDiskManager>;
TYPED_TEST_SUITE(DiskManagerTest, DiskManagerTypes);

TYPED_TEST(DiskManagerTest, AllocateReadWrite) {
  auto disk = MakeDisk<TypeParam>(128);
  EXPECT_EQ(disk->page_count(), 0u);
  const PageId a = disk->AllocatePage();
  const PageId b = disk->AllocatePage();
  EXPECT_NE(a, b);
  EXPECT_EQ(disk->page_count(), 2u);

  char buf[128];
  std::memset(buf, 0xAB, sizeof(buf));
  ASSERT_TRUE(disk->WritePage(a, buf).ok());

  char out[128];
  ASSERT_TRUE(disk->ReadPage(a, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, sizeof(buf)), 0);

  // Fresh page is zeroed.
  ASSERT_TRUE(disk->ReadPage(b, out).ok());
  for (char c : out) EXPECT_EQ(c, 0);
}

TYPED_TEST(DiskManagerTest, OutOfRangeAccess) {
  auto disk = MakeDisk<TypeParam>(128);
  char buf[128] = {};
  EXPECT_TRUE(disk->ReadPage(5, buf).IsOutOfRange());
  EXPECT_TRUE(disk->WritePage(5, buf).IsOutOfRange());
}

TYPED_TEST(DiskManagerTest, DeallocateRecyclesIds) {
  auto disk = MakeDisk<TypeParam>(128);
  const PageId a = disk->AllocatePage();
  disk->AllocatePage();
  disk->DeallocatePage(a);
  EXPECT_EQ(disk->AllocatePage(), a);
}

TYPED_TEST(DiskManagerTest, StatsCount) {
  auto disk = MakeDisk<TypeParam>(128);
  const PageId a = disk->AllocatePage();
  char buf[128] = {};
  ASSERT_TRUE(disk->WritePage(a, buf).ok());
  ASSERT_TRUE(disk->ReadPage(a, buf).ok());
  ASSERT_TRUE(disk->ReadPage(a, buf).ok());
  EXPECT_EQ(disk->stats().writes, 1u);
  EXPECT_EQ(disk->stats().reads, 2u);
  disk->ResetStats();
  EXPECT_EQ(disk->stats().reads, 0u);
}

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  const std::string path = TempPath("persist");
  {
    auto dm = FileDiskManager::Open(path, 128, /*truncate=*/true);
    ASSERT_TRUE(dm.ok());
    const PageId a = (*dm)->AllocatePage();
    char buf[128];
    std::memset(buf, 0x5C, sizeof(buf));
    ASSERT_TRUE((*dm)->WritePage(a, buf).ok());
  }
  {
    auto dm = FileDiskManager::Open(path, 128, /*truncate=*/false);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ((*dm)->page_count(), 1u);
    char out[128];
    ASSERT_TRUE((*dm)->ReadPage(0, out).ok());
    EXPECT_EQ(out[17], 0x5C);
  }
}

// --- BufferPool ---------------------------------------------------------------

TEST(BufferPoolTest, FetchCachesPages) {
  InMemoryDiskManager disk(128);
  BufferPool pool(&disk, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  const PageId id = page->id();
  page->Release();

  ASSERT_TRUE(pool.FetchPage(id).ok());
  ASSERT_TRUE(pool.FetchPage(id).ok());
  EXPECT_EQ(pool.stats().fetches, 2u);
  EXPECT_EQ(pool.stats().misses, 0u);  // NewPage left it resident
}

TEST(BufferPoolTest, DirtyPagesSurviveEviction) {
  InMemoryDiskManager disk(128);
  BufferPool pool(&disk, 2);
  PageId first;
  {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    first = page->id();
    page->mutable_data()[0] = 'Z';
  }
  // Evict `first` by filling the pool.
  for (int i = 0; i < 4; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
  }
  auto again = pool.FetchPage(first);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 'Z');
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  InMemoryDiskManager disk(128);
  BufferPool pool(&disk, 2);
  auto pinned1 = pool.NewPage();
  auto pinned2 = pool.NewPage();
  ASSERT_TRUE(pinned1.ok() && pinned2.ok());
  // Both frames pinned: the next allocation cannot find a victim.
  auto third = pool.NewPage();
  EXPECT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsResourceExhausted());

  pinned1->Release();
  auto fourth = pool.NewPage();
  EXPECT_TRUE(fourth.ok());
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  InMemoryDiskManager disk(128);
  BufferPool pool(&disk, 2);
  PageId a, b;
  {
    auto pa = pool.NewPage();
    a = pa->id();
  }
  {
    auto pb = pool.NewPage();
    b = pb->id();
  }
  // Touch a so b becomes LRU.
  { auto pa = pool.FetchPage(a); }
  { auto pc = pool.NewPage(); }  // must evict b

  disk.ResetStats();
  { auto pa = pool.FetchPage(a); }  // hit
  EXPECT_EQ(disk.stats().reads, 0u);
  { auto pb = pool.FetchPage(b); }  // miss -> disk read
  EXPECT_EQ(disk.stats().reads, 1u);
}

TEST(BufferPoolTest, PinCounting) {
  InMemoryDiskManager disk(128);
  BufferPool pool(&disk, 4);
  auto p1 = pool.NewPage();
  ASSERT_TRUE(p1.ok());
  auto p2 = pool.FetchPage(p1->id());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(pool.pinned_frames(), 1u);  // same frame pinned twice
  p1->Release();
  EXPECT_EQ(pool.pinned_frames(), 1u);
  p2->Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, MoveSemanticsOfGuard) {
  InMemoryDiskManager disk(128);
  BufferPool pool(&disk, 4);
  auto p1 = pool.NewPage();
  ASSERT_TRUE(p1.ok());
  PageGuard moved = std::move(*p1);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, FlushAllWritesDirtyPages) {
  InMemoryDiskManager disk(128);
  BufferPool pool(&disk, 4);
  PageId id;
  {
    auto page = pool.NewPage();
    id = page->id();
    page->mutable_data()[3] = 'Q';
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  char out[128];
  ASSERT_TRUE(disk.ReadPage(id, out).ok());
  EXPECT_EQ(out[3], 'Q');
}

TEST(BufferPoolTest, FreePageRejectsPinned) {
  InMemoryDiskManager disk(128);
  BufferPool pool(&disk, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(pool.FreePage(page->id()).IsInvalidArgument());
  const PageId id = page->id();
  page->Release();
  EXPECT_TRUE(pool.FreePage(id).ok());
  // Freed id comes back from the allocator.
  auto fresh = pool.NewPage();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->id(), id);
}

// --- HeapFile ------------------------------------------------------------------

struct HeapEnv {
  InMemoryDiskManager disk{256};
  BufferPool pool{&disk, 64};
};

TEST(DiskManagerTest, DeallocateOutOfRangeIsIgnored) {
  InMemoryDiskManager disk(256);
  const PageId a = disk.AllocatePage();
  // Bogus ids must not corrupt the free list: subsequent allocations
  // stay fresh instead of handing out an unallocated id.
  disk.DeallocatePage(a + 100);
  const PageId b = disk.AllocatePage();
  EXPECT_EQ(b, a + 1);
}

TEST(DiskManagerTest, DoubleFreeIsIgnored) {
  InMemoryDiskManager disk(256);
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();
  disk.DeallocatePage(a);
  disk.DeallocatePage(a);  // double free: logged and dropped
  // Only one recycled slot may exist; the second allocation after
  // draining it must be a brand-new page, not `a` again.
  EXPECT_EQ(disk.AllocatePage(), a);
  EXPECT_EQ(disk.AllocatePage(), b + 1);
}

TEST(DiskManagerTest, FileDiskManagerDoubleFreeIsIgnored) {
  const std::string path = "/tmp/pictdb_double_free_test.db";
  std::remove(path.c_str());
  auto disk = FileDiskManager::Open(path, 256, /*truncate=*/true);
  ASSERT_TRUE(disk.ok());
  const PageId a = (*disk)->AllocatePage();
  const PageId b = (*disk)->AllocatePage();
  (*disk)->DeallocatePage(a);
  (*disk)->DeallocatePage(a);
  (*disk)->DeallocatePage(b + 50);  // out of range
  EXPECT_EQ((*disk)->AllocatePage(), a);
  EXPECT_EQ((*disk)->AllocatePage(), b + 1);
  std::remove(path.c_str());
}

TEST(DiskManagerTest, FreedPageCanBeFreedAgainAfterReuse) {
  InMemoryDiskManager disk(256);
  const PageId a = disk.AllocatePage();
  disk.DeallocatePage(a);
  EXPECT_EQ(disk.AllocatePage(), a);  // recycled
  disk.DeallocatePage(a);             // legitimate second free
  EXPECT_EQ(disk.AllocatePage(), a);  // recycled again
}

// --- WriteCacheDiskManager flush/race behavior -------------------------------
// Regression tests for Sync() releasing mu_ across base I/O: a write or
// dealloc that lands mid-flush must neither be lost nor corrupt the base.

TEST(WriteCacheTest, RewriteDuringFlushStaysBufferedForNextBarrier) {
  InMemoryDiskManager base(128);
  WriteCacheDiskManager wcache(&base);
  const PageId a = wcache.AllocatePage();
  char v1[128], v2[128];
  std::memset(v1, 'x', sizeof v1);
  std::memset(v2, 'y', sizeof v2);
  ASSERT_TRUE(wcache.WritePage(a, v1).ok());
  // Re-write the page after its old bytes were copied out for the base
  // write but before that write lands.
  wcache.SetFlushHookForTest([&](PageId id) {
    if (id == a) {
      ASSERT_TRUE(wcache.WritePage(a, v2).ok());
    }
  });
  ASSERT_TRUE(wcache.Sync().ok());
  wcache.SetFlushHookForTest(nullptr);
  // The barrier flushed the pre-barrier bytes; the racing write is
  // still buffered (not silently dropped by the post-write erase).
  char out[128];
  ASSERT_TRUE(base.ReadPage(a, out).ok());
  EXPECT_EQ(out[0], 'x');
  EXPECT_EQ(wcache.unsynced_pages(), 1u);
  ASSERT_TRUE(wcache.Sync().ok());
  ASSERT_TRUE(base.ReadPage(a, out).ok());
  EXPECT_EQ(out[0], 'y');
  EXPECT_EQ(wcache.unsynced_pages(), 0u);
}

TEST(WriteCacheTest, DeallocateDuringFlushDoesNotCorruptFreeList) {
  InMemoryDiskManager base(128);
  WriteCacheDiskManager wcache(&base);
  const PageId a = wcache.AllocatePage();
  const PageId b = wcache.AllocatePage();
  char buf[128];
  std::memset(buf, 'z', sizeof buf);
  ASSERT_TRUE(wcache.WritePage(a, buf).ok());
  ASSERT_TRUE(wcache.WritePage(b, buf).ok());
  // Free page `a` while the flush is between copying its bytes and
  // writing them to the base: the stale write may land on the freed
  // slot, but the free list must stay intact and reallocation must
  // hand the page back zeroed.
  wcache.SetFlushHookForTest([&](PageId id) {
    if (id == a) wcache.DeallocatePage(a);
  });
  ASSERT_TRUE(wcache.Sync().ok());
  wcache.SetFlushHookForTest(nullptr);
  EXPECT_EQ(wcache.unsynced_pages(), 0u);
  EXPECT_EQ(wcache.AllocatePage(), a);  // recycled, not lost
  char out[128];
  ASSERT_TRUE(base.ReadPage(a, out).ok());
  EXPECT_EQ(out[0], '\0');  // re-zeroed on reuse, stale bytes invisible
  ASSERT_TRUE(base.ReadPage(b, out).ok());
  EXPECT_EQ(out[0], 'z');
}

TEST(WriteCacheTest, ConcurrentWritersDuringSyncConverge) {
  InMemoryDiskManager base(128);
  WriteCacheDiskManager wcache(&base);
  constexpr int kPages = 16;
  std::vector<PageId> ids(kPages);
  for (int i = 0; i < kPages; ++i) ids[i] = wcache.AllocatePage();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    char buf[128];
    Random rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const PageId id = ids[rng.Uniform(kPages)];
      std::memset(buf, static_cast<char>('a' + rng.Uniform(26)), sizeof buf);
      ASSERT_TRUE(wcache.WritePage(id, buf).ok());
    }
  });
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(wcache.Sync().ok());
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  // Quiesced: one final barrier drains everything and base == cache view.
  ASSERT_TRUE(wcache.Sync().ok());
  EXPECT_EQ(wcache.unsynced_pages(), 0u);
  for (int i = 0; i < kPages; ++i) {
    char via_cache[128], via_base[128];
    ASSERT_TRUE(wcache.ReadPage(ids[i], via_cache).ok());
    ASSERT_TRUE(base.ReadPage(ids[i], via_base).ok());
    EXPECT_EQ(std::memcmp(via_cache, via_base, sizeof via_cache), 0);
  }
}

TEST(BufferPoolTest, PinLeakIsDetectedAtDestruction) {
  InMemoryDiskManager disk(256);
  std::atomic<uint64_t> leak_gauge{0};
  {
    BufferPoolOptions opts;
    opts.tolerate_pin_leaks = true;  // observe, don't abort
    opts.pin_leak_gauge = &leak_gauge;
    BufferPool pool(&disk, 4, 1, opts);
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(pool.pinned_frames(), 1u);
    // Abandon the pin: the guard must not touch the pool after this.
    guard->Leak();
  }
  EXPECT_EQ(leak_gauge.load(), 1u);
}

TEST(BufferPoolTest, CleanDestructionReportsNoPinLeaks) {
  InMemoryDiskManager disk(256);
  std::atomic<uint64_t> leak_gauge{0};
  {
    BufferPoolOptions opts;
    opts.pin_leak_gauge = &leak_gauge;
    BufferPool pool(&disk, 4, 1, opts);
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
  }
  EXPECT_EQ(leak_gauge.load(), 0u);
}

TEST(HeapFileTest, InsertAndGet) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  auto rid = hf->Insert(Slice("hello world"));
  ASSERT_TRUE(rid.ok());
  auto rec = hf->Get(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello world");
}

TEST(HeapFileTest, GetMissingSlot) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  EXPECT_TRUE(hf->Get(Rid{hf->first_page(), 9}).status().IsNotFound());
}

TEST(HeapFileTest, DeleteTombstones) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  auto rid = hf->Insert(Slice("doomed"));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(hf->Delete(*rid).ok());
  EXPECT_TRUE(hf->Get(*rid).status().IsNotFound());
  EXPECT_TRUE(hf->Delete(*rid).IsNotFound());
  // Deleted slots are not reused: Rids stay unambiguous.
  auto rid2 = hf->Insert(Slice("fresh"));
  ASSERT_TRUE(rid2.ok());
  EXPECT_FALSE(*rid2 == *rid);
}

TEST(HeapFileTest, SpillsAcrossPages) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  std::vector<Rid> rids;
  const std::string payload(100, 'x');  // few fit per 256-byte page
  for (int i = 0; i < 50; ++i) {
    auto rid = hf->Insert(Slice(payload));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  std::set<PageId> pages;
  for (const Rid& r : rids) pages.insert(r.page_id);
  EXPECT_GT(pages.size(), 1u);
  for (const Rid& r : rids) {
    auto rec = hf->Get(r);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->size(), payload.size());
  }
}

TEST(HeapFileTest, RejectsOversizedRecord) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  const std::string huge(10000, 'x');
  EXPECT_TRUE(hf->Insert(Slice(huge)).status().IsInvalidArgument());
}

TEST(HeapFileTest, ScanVisitsAllLiveRecords) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 30; ++i) {
    auto rid = hf->Insert(Slice("rec" + std::to_string(i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  // Delete every third record.
  std::set<Rid> deleted;
  for (size_t i = 0; i < rids.size(); i += 3) {
    ASSERT_TRUE(hf->Delete(rids[i]).ok());
    deleted.insert(rids[i]);
  }
  size_t seen = 0;
  auto rid = hf->First();
  ASSERT_TRUE(rid.ok());
  Rid cur = *rid;
  while (cur.IsValid()) {
    EXPECT_EQ(deleted.count(cur), 0u);
    ++seen;
    auto next = hf->Next(cur);
    ASSERT_TRUE(next.ok());
    cur = *next;
  }
  EXPECT_EQ(seen, rids.size() - deleted.size());
  auto count = hf->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, seen);
}

TEST(HeapFileTest, UpdateInPlaceWhenSmaller) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  auto rid = hf->Insert(Slice("0123456789"));
  ASSERT_TRUE(rid.ok());
  auto updated = hf->Update(*rid, Slice("abc"));
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(*updated == *rid);  // in place
  EXPECT_EQ(*hf->Get(*rid), "abc");
}

TEST(HeapFileTest, UpdateRelocatesWhenLarger) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  auto rid = hf->Insert(Slice("abc"));
  ASSERT_TRUE(rid.ok());
  const std::string bigger(50, 'y');
  auto updated = hf->Update(*rid, Slice(bigger));
  ASSERT_TRUE(updated.ok());
  EXPECT_FALSE(*updated == *rid);
  EXPECT_TRUE(hf->Get(*rid).status().IsNotFound());
  EXPECT_EQ(*hf->Get(*updated), bigger);
}

TEST(HeapFileTest, EmptyFileScan) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  auto rid = hf->First();
  ASSERT_TRUE(rid.ok());
  EXPECT_FALSE(rid->IsValid());
  EXPECT_EQ(*hf->Count(), 0u);
}

TEST(HeapFileTest, RandomizedAgainstReference) {
  HeapEnv env;
  auto hf = HeapFile::Create(&env.pool);
  ASSERT_TRUE(hf.ok());
  Random rng(404);
  std::map<Rid, std::string> reference;
  std::vector<Rid> live;
  for (int step = 0; step < 500; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 6 || live.empty()) {
      const std::string payload(1 + rng.Uniform(60),
                                static_cast<char>('a' + rng.Uniform(26)));
      auto rid = hf->Insert(Slice(payload));
      ASSERT_TRUE(rid.ok());
      reference[*rid] = payload;
      live.push_back(*rid);
    } else if (action < 8) {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(hf->Delete(live[idx]).ok());
      reference.erase(live[idx]);
      live.erase(live.begin() + idx);
    } else {
      const size_t idx = rng.Uniform(live.size());
      const std::string payload(1 + rng.Uniform(60), 'z');
      auto rid = hf->Update(live[idx], Slice(payload));
      ASSERT_TRUE(rid.ok());
      reference.erase(live[idx]);
      reference[*rid] = payload;
      live[idx] = *rid;
    }
  }
  for (const auto& [rid, expected] : reference) {
    auto rec = hf->Get(rid);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, expected);
  }
  EXPECT_EQ(*hf->Count(), reference.size());
}

}  // namespace
}  // namespace pictdb::storage
