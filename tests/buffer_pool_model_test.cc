// Differential test of the buffer pool against an in-test reference
// model: random fetch/new/modify/free sequences must produce byte-exact
// page contents and LRU-consistent miss behaviour.

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace pictdb::storage {
namespace {

/// Reference model: page contents plus an exact LRU list of resident
/// unpinned pages.
class PoolModel {
 public:
  explicit PoolModel(size_t capacity, uint32_t page_size)
      : capacity_(capacity), page_size_(page_size) {}

  PageId New() {
    const PageId id = free_ids_.empty()
                          ? static_cast<PageId>(contents_.size())
                          : free_ids_.back();
    if (free_ids_.empty()) {
      contents_.emplace_back(page_size_, 0);
    } else {
      free_ids_.pop_back();
      std::fill(contents_[id].begin(), contents_[id].end(), 0);
    }
    Touch(id);
    return id;
  }

  /// Returns true if this fetch must be a miss in the real pool.
  bool Fetch(PageId id) {
    const bool resident =
        std::find(lru_.begin(), lru_.end(), id) != lru_.end();
    Touch(id);
    return !resident;
  }

  void Write(PageId id, size_t offset, char value) {
    contents_[id][offset] = value;
  }

  char Read(PageId id, size_t offset) const { return contents_[id][offset]; }

  void Free(PageId id) {
    lru_.remove(id);
    free_ids_.push_back(id);
  }

  size_t LivePages() const { return contents_.size() - free_ids_.size(); }

 private:
  void Touch(PageId id) {
    lru_.remove(id);
    lru_.push_back(id);
    while (lru_.size() > capacity_) lru_.pop_front();  // evicted
  }

  size_t capacity_;
  uint32_t page_size_;
  std::vector<std::vector<char>> contents_;
  std::list<PageId> lru_;  // resident pages, LRU first
  std::vector<PageId> free_ids_;
};

class BufferPoolModelTest : public ::testing::TestWithParam<int> {};

TEST_P(BufferPoolModelTest, MatchesReferenceModel) {
  constexpr size_t kCapacity = 8;
  constexpr uint32_t kPageSize = 128;
  InMemoryDiskManager disk(kPageSize);
  BufferPool pool(&disk, kCapacity);
  // Only the usable (pre-trailer) bytes belong to the consumer; the
  // checksum trailer at the end of each disk page is the pool's.
  const uint32_t usable = pool.page_size();
  PoolModel model(kCapacity, usable);

  Random rng(static_cast<uint64_t>(GetParam()));
  std::vector<PageId> live;

  for (int step = 0; step < 4000; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 2 || live.empty()) {
      // New page + write a byte.
      auto guard = pool.NewPage();
      ASSERT_TRUE(guard.ok());
      const PageId model_id = model.New();
      ASSERT_EQ(guard->id(), model_id) << "allocation order diverged";
      const size_t offset = rng.Uniform(usable);
      const char value = static_cast<char>(rng.Uniform(256));
      guard->mutable_data()[offset] = value;
      model.Write(model_id, offset, value);
      live.push_back(model_id);
    } else if (action < 8) {
      // Fetch, verify a random byte, maybe write one.
      const PageId id = live[rng.Uniform(live.size())];
      const uint64_t misses_before = pool.stats().misses;
      auto guard = pool.FetchPage(id);
      ASSERT_TRUE(guard.ok());
      const bool expect_miss = model.Fetch(id);
      EXPECT_EQ(pool.stats().misses > misses_before, expect_miss)
          << "step " << step << " page " << id;
      const size_t check = rng.Uniform(usable);
      EXPECT_EQ(guard->data()[check], model.Read(id, check))
          << "content diverged at step " << step;
      if (rng.Bernoulli(0.5)) {
        const size_t offset = rng.Uniform(usable);
        const char value = static_cast<char>(rng.Uniform(256));
        guard->mutable_data()[offset] = value;
        model.Write(id, offset, value);
      }
    } else if (live.size() > 1) {
      // Free a page.
      const size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(pool.FreePage(live[pick]).ok());
      model.Free(live[pick]);
      live.erase(live.begin() + pick);
    }
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_EQ(model.LivePages(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPoolModelTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace pictdb::storage
