# Empty dependencies file for psql_dml_test.
# This may be replaced when dependencies are built.
