file(REMOVE_RECURSE
  "CMakeFiles/psql_dml_test.dir/psql_dml_test.cc.o"
  "CMakeFiles/psql_dml_test.dir/psql_dml_test.cc.o.d"
  "psql_dml_test"
  "psql_dml_test.pdb"
  "psql_dml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psql_dml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
