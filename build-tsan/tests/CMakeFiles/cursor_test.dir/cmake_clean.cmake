file(REMOVE_RECURSE
  "CMakeFiles/cursor_test.dir/cursor_test.cc.o"
  "CMakeFiles/cursor_test.dir/cursor_test.cc.o.d"
  "cursor_test"
  "cursor_test.pdb"
  "cursor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
