# Empty dependencies file for cursor_test.
# This may be replaced when dependencies are built.
