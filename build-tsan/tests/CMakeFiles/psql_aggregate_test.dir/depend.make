# Empty dependencies file for psql_aggregate_test.
# This may be replaced when dependencies are built.
