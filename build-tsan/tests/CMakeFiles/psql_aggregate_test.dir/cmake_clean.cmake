file(REMOVE_RECURSE
  "CMakeFiles/psql_aggregate_test.dir/psql_aggregate_test.cc.o"
  "CMakeFiles/psql_aggregate_test.dir/psql_aggregate_test.cc.o.d"
  "psql_aggregate_test"
  "psql_aggregate_test.pdb"
  "psql_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psql_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
