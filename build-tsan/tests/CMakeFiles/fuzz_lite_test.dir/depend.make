# Empty dependencies file for fuzz_lite_test.
# This may be replaced when dependencies are built.
