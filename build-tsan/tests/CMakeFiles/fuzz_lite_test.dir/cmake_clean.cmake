file(REMOVE_RECURSE
  "CMakeFiles/fuzz_lite_test.dir/fuzz_lite_test.cc.o"
  "CMakeFiles/fuzz_lite_test.dir/fuzz_lite_test.cc.o.d"
  "fuzz_lite_test"
  "fuzz_lite_test.pdb"
  "fuzz_lite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_lite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
