# Empty dependencies file for psql_orderby_test.
# This may be replaced when dependencies are built.
