file(REMOVE_RECURSE
  "CMakeFiles/psql_orderby_test.dir/psql_orderby_test.cc.o"
  "CMakeFiles/psql_orderby_test.dir/psql_orderby_test.cc.o.d"
  "psql_orderby_test"
  "psql_orderby_test.pdb"
  "psql_orderby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psql_orderby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
