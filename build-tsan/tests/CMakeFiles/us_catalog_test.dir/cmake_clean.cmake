file(REMOVE_RECURSE
  "CMakeFiles/us_catalog_test.dir/us_catalog_test.cc.o"
  "CMakeFiles/us_catalog_test.dir/us_catalog_test.cc.o.d"
  "us_catalog_test"
  "us_catalog_test.pdb"
  "us_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
