# Empty compiler generated dependencies file for us_catalog_test.
# This may be replaced when dependencies are built.
