# Empty compiler generated dependencies file for quadtree_test.
# This may be replaced when dependencies are built.
