file(REMOVE_RECURSE
  "CMakeFiles/quadtree_test.dir/quadtree_test.cc.o"
  "CMakeFiles/quadtree_test.dir/quadtree_test.cc.o.d"
  "quadtree_test"
  "quadtree_test.pdb"
  "quadtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
