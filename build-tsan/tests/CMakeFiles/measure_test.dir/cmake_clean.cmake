file(REMOVE_RECURSE
  "CMakeFiles/measure_test.dir/measure_test.cc.o"
  "CMakeFiles/measure_test.dir/measure_test.cc.o.d"
  "measure_test"
  "measure_test.pdb"
  "measure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
