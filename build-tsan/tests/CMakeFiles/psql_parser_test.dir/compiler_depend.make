# Empty compiler generated dependencies file for psql_parser_test.
# This may be replaced when dependencies are built.
