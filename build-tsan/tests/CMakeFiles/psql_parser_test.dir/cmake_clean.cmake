file(REMOVE_RECURSE
  "CMakeFiles/psql_parser_test.dir/psql_parser_test.cc.o"
  "CMakeFiles/psql_parser_test.dir/psql_parser_test.cc.o.d"
  "psql_parser_test"
  "psql_parser_test.pdb"
  "psql_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
