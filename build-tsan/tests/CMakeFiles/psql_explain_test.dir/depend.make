# Empty dependencies file for psql_explain_test.
# This may be replaced when dependencies are built.
