file(REMOVE_RECURSE
  "CMakeFiles/psql_explain_test.dir/psql_explain_test.cc.o"
  "CMakeFiles/psql_explain_test.dir/psql_explain_test.cc.o.d"
  "psql_explain_test"
  "psql_explain_test.pdb"
  "psql_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psql_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
