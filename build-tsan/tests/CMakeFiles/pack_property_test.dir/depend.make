# Empty dependencies file for pack_property_test.
# This may be replaced when dependencies are built.
