file(REMOVE_RECURSE
  "CMakeFiles/pack_property_test.dir/pack_property_test.cc.o"
  "CMakeFiles/pack_property_test.dir/pack_property_test.cc.o.d"
  "pack_property_test"
  "pack_property_test.pdb"
  "pack_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
