# Empty dependencies file for reinsert_test.
# This may be replaced when dependencies are built.
