file(REMOVE_RECURSE
  "CMakeFiles/reinsert_test.dir/reinsert_test.cc.o"
  "CMakeFiles/reinsert_test.dir/reinsert_test.cc.o.d"
  "reinsert_test"
  "reinsert_test.pdb"
  "reinsert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reinsert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
