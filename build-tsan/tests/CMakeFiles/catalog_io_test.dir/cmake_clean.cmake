file(REMOVE_RECURSE
  "CMakeFiles/catalog_io_test.dir/catalog_io_test.cc.o"
  "CMakeFiles/catalog_io_test.dir/catalog_io_test.cc.o.d"
  "catalog_io_test"
  "catalog_io_test.pdb"
  "catalog_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
