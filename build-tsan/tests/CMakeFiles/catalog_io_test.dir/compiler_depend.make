# Empty compiler generated dependencies file for catalog_io_test.
# This may be replaced when dependencies are built.
