file(REMOVE_RECURSE
  "CMakeFiles/rtree_property_test.dir/rtree_property_test.cc.o"
  "CMakeFiles/rtree_property_test.dir/rtree_property_test.cc.o.d"
  "rtree_property_test"
  "rtree_property_test.pdb"
  "rtree_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
