# Empty dependencies file for rotation_test.
# This may be replaced when dependencies are built.
