file(REMOVE_RECURSE
  "CMakeFiles/rotation_test.dir/rotation_test.cc.o"
  "CMakeFiles/rotation_test.dir/rotation_test.cc.o.d"
  "rotation_test"
  "rotation_test.pdb"
  "rotation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
