file(REMOVE_RECURSE
  "CMakeFiles/psql_executor_test.dir/psql_executor_test.cc.o"
  "CMakeFiles/psql_executor_test.dir/psql_executor_test.cc.o.d"
  "psql_executor_test"
  "psql_executor_test.pdb"
  "psql_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psql_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
