# Empty compiler generated dependencies file for psql_executor_test.
# This may be replaced when dependencies are built.
