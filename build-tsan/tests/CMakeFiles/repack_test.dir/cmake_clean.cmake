file(REMOVE_RECURSE
  "CMakeFiles/repack_test.dir/repack_test.cc.o"
  "CMakeFiles/repack_test.dir/repack_test.cc.o.d"
  "repack_test"
  "repack_test.pdb"
  "repack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
