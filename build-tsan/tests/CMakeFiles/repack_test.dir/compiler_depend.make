# Empty compiler generated dependencies file for repack_test.
# This may be replaced when dependencies are built.
