file(REMOVE_RECURSE
  "CMakeFiles/table1.dir/table1.cc.o"
  "CMakeFiles/table1.dir/table1.cc.o.d"
  "table1"
  "table1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
