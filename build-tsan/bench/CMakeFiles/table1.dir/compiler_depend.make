# Empty compiler generated dependencies file for table1.
# This may be replaced when dependencies are built.
