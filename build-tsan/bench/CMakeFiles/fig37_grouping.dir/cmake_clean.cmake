file(REMOVE_RECURSE
  "CMakeFiles/fig37_grouping.dir/fig37_grouping.cc.o"
  "CMakeFiles/fig37_grouping.dir/fig37_grouping.cc.o.d"
  "fig37_grouping"
  "fig37_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig37_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
