# Empty dependencies file for fig37_grouping.
# This may be replaced when dependencies are built.
