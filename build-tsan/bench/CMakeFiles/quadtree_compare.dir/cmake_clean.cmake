file(REMOVE_RECURSE
  "CMakeFiles/quadtree_compare.dir/quadtree_compare.cc.o"
  "CMakeFiles/quadtree_compare.dir/quadtree_compare.cc.o.d"
  "quadtree_compare"
  "quadtree_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadtree_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
