# Empty dependencies file for quadtree_compare.
# This may be replaced when dependencies are built.
