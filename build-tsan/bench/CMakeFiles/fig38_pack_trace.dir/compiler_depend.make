# Empty compiler generated dependencies file for fig38_pack_trace.
# This may be replaced when dependencies are built.
