file(REMOVE_RECURSE
  "CMakeFiles/fig38_pack_trace.dir/fig38_pack_trace.cc.o"
  "CMakeFiles/fig38_pack_trace.dir/fig38_pack_trace.cc.o.d"
  "fig38_pack_trace"
  "fig38_pack_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig38_pack_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
