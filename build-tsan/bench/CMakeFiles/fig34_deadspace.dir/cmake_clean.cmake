file(REMOVE_RECURSE
  "CMakeFiles/fig34_deadspace.dir/fig34_deadspace.cc.o"
  "CMakeFiles/fig34_deadspace.dir/fig34_deadspace.cc.o.d"
  "fig34_deadspace"
  "fig34_deadspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig34_deadspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
