# Empty compiler generated dependencies file for fig34_deadspace.
# This may be replaced when dependencies are built.
