# Empty compiler generated dependencies file for juxtaposition.
# This may be replaced when dependencies are built.
