file(REMOVE_RECURSE
  "CMakeFiles/juxtaposition.dir/juxtaposition.cc.o"
  "CMakeFiles/juxtaposition.dir/juxtaposition.cc.o.d"
  "juxtaposition"
  "juxtaposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juxtaposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
