# Empty compiler generated dependencies file for search_micro.
# This may be replaced when dependencies are built.
