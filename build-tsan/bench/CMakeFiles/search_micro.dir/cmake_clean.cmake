file(REMOVE_RECURSE
  "CMakeFiles/search_micro.dir/search_micro.cc.o"
  "CMakeFiles/search_micro.dir/search_micro.cc.o.d"
  "search_micro"
  "search_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
