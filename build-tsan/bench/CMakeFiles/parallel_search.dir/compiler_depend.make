# Empty compiler generated dependencies file for parallel_search.
# This may be replaced when dependencies are built.
