file(REMOVE_RECURSE
  "CMakeFiles/parallel_search.dir/parallel_search.cc.o"
  "CMakeFiles/parallel_search.dir/parallel_search.cc.o.d"
  "parallel_search"
  "parallel_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
