# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for thm32_zero_overlap.
