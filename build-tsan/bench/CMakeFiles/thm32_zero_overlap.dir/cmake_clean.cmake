file(REMOVE_RECURSE
  "CMakeFiles/thm32_zero_overlap.dir/thm32_zero_overlap.cc.o"
  "CMakeFiles/thm32_zero_overlap.dir/thm32_zero_overlap.cc.o.d"
  "thm32_zero_overlap"
  "thm32_zero_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm32_zero_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
