# Empty dependencies file for thm32_zero_overlap.
# This may be replaced when dependencies are built.
