file(REMOVE_RECURSE
  "CMakeFiles/update_degradation.dir/update_degradation.cc.o"
  "CMakeFiles/update_degradation.dir/update_degradation.cc.o.d"
  "update_degradation"
  "update_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
