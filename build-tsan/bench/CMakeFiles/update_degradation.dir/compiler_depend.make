# Empty compiler generated dependencies file for update_degradation.
# This may be replaced when dependencies are built.
