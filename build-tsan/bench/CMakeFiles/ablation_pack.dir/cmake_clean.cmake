file(REMOVE_RECURSE
  "CMakeFiles/ablation_pack.dir/ablation_pack.cc.o"
  "CMakeFiles/ablation_pack.dir/ablation_pack.cc.o.d"
  "ablation_pack"
  "ablation_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
