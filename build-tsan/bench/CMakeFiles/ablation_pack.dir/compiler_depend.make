# Empty compiler generated dependencies file for ablation_pack.
# This may be replaced when dependencies are built.
