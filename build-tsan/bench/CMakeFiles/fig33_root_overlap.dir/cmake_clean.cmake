file(REMOVE_RECURSE
  "CMakeFiles/fig33_root_overlap.dir/fig33_root_overlap.cc.o"
  "CMakeFiles/fig33_root_overlap.dir/fig33_root_overlap.cc.o.d"
  "fig33_root_overlap"
  "fig33_root_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig33_root_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
