# Empty dependencies file for fig33_root_overlap.
# This may be replaced when dependencies are built.
