file(REMOVE_RECURSE
  "CMakeFiles/build_micro.dir/build_micro.cc.o"
  "CMakeFiles/build_micro.dir/build_micro.cc.o.d"
  "build_micro"
  "build_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
