# Empty compiler generated dependencies file for build_micro.
# This may be replaced when dependencies are built.
