# Empty compiler generated dependencies file for pictdb.
# This may be replaced when dependencies are built.
