
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/pictdb.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/btree/btree.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/pictdb.dir/common/random.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pictdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/common/status.cc.o.d"
  "/root/repo/src/geom/distance.cc" "src/CMakeFiles/pictdb.dir/geom/distance.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/geom/distance.cc.o.d"
  "/root/repo/src/geom/geometry.cc" "src/CMakeFiles/pictdb.dir/geom/geometry.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/geom/geometry.cc.o.d"
  "/root/repo/src/geom/measure.cc" "src/CMakeFiles/pictdb.dir/geom/measure.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/geom/measure.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/CMakeFiles/pictdb.dir/geom/polygon.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/geom/polygon.cc.o.d"
  "/root/repo/src/geom/rect.cc" "src/CMakeFiles/pictdb.dir/geom/rect.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/geom/rect.cc.o.d"
  "/root/repo/src/geom/segment.cc" "src/CMakeFiles/pictdb.dir/geom/segment.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/geom/segment.cc.o.d"
  "/root/repo/src/geom/transform.cc" "src/CMakeFiles/pictdb.dir/geom/transform.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/geom/transform.cc.o.d"
  "/root/repo/src/geom/wkt.cc" "src/CMakeFiles/pictdb.dir/geom/wkt.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/geom/wkt.cc.o.d"
  "/root/repo/src/pack/hilbert.cc" "src/CMakeFiles/pictdb.dir/pack/hilbert.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/pack/hilbert.cc.o.d"
  "/root/repo/src/pack/nn_grid.cc" "src/CMakeFiles/pictdb.dir/pack/nn_grid.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/pack/nn_grid.cc.o.d"
  "/root/repo/src/pack/pack.cc" "src/CMakeFiles/pictdb.dir/pack/pack.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/pack/pack.cc.o.d"
  "/root/repo/src/pack/repack.cc" "src/CMakeFiles/pictdb.dir/pack/repack.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/pack/repack.cc.o.d"
  "/root/repo/src/pack/rotation.cc" "src/CMakeFiles/pictdb.dir/pack/rotation.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/pack/rotation.cc.o.d"
  "/root/repo/src/pack/str.cc" "src/CMakeFiles/pictdb.dir/pack/str.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/pack/str.cc.o.d"
  "/root/repo/src/psql/executor.cc" "src/CMakeFiles/pictdb.dir/psql/executor.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/psql/executor.cc.o.d"
  "/root/repo/src/psql/lexer.cc" "src/CMakeFiles/pictdb.dir/psql/lexer.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/psql/lexer.cc.o.d"
  "/root/repo/src/psql/parser.cc" "src/CMakeFiles/pictdb.dir/psql/parser.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/psql/parser.cc.o.d"
  "/root/repo/src/quadtree/quadtree.cc" "src/CMakeFiles/pictdb.dir/quadtree/quadtree.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/quadtree/quadtree.cc.o.d"
  "/root/repo/src/rel/catalog.cc" "src/CMakeFiles/pictdb.dir/rel/catalog.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rel/catalog.cc.o.d"
  "/root/repo/src/rel/catalog_io.cc" "src/CMakeFiles/pictdb.dir/rel/catalog_io.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rel/catalog_io.cc.o.d"
  "/root/repo/src/rel/relation.cc" "src/CMakeFiles/pictdb.dir/rel/relation.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rel/relation.cc.o.d"
  "/root/repo/src/rel/schema.cc" "src/CMakeFiles/pictdb.dir/rel/schema.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rel/schema.cc.o.d"
  "/root/repo/src/rel/tuple.cc" "src/CMakeFiles/pictdb.dir/rel/tuple.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rel/tuple.cc.o.d"
  "/root/repo/src/rel/value.cc" "src/CMakeFiles/pictdb.dir/rel/value.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rel/value.cc.o.d"
  "/root/repo/src/rtree/cursor.cc" "src/CMakeFiles/pictdb.dir/rtree/cursor.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rtree/cursor.cc.o.d"
  "/root/repo/src/rtree/join.cc" "src/CMakeFiles/pictdb.dir/rtree/join.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rtree/join.cc.o.d"
  "/root/repo/src/rtree/knn.cc" "src/CMakeFiles/pictdb.dir/rtree/knn.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rtree/knn.cc.o.d"
  "/root/repo/src/rtree/metrics.cc" "src/CMakeFiles/pictdb.dir/rtree/metrics.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rtree/metrics.cc.o.d"
  "/root/repo/src/rtree/node.cc" "src/CMakeFiles/pictdb.dir/rtree/node.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rtree/node.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/pictdb.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rtree/rtree.cc.o.d"
  "/root/repo/src/rtree/split.cc" "src/CMakeFiles/pictdb.dir/rtree/split.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/rtree/split.cc.o.d"
  "/root/repo/src/service/query_service.cc" "src/CMakeFiles/pictdb.dir/service/query_service.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/service/query_service.cc.o.d"
  "/root/repo/src/service/thread_pool.cc" "src/CMakeFiles/pictdb.dir/service/thread_pool.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/service/thread_pool.cc.o.d"
  "/root/repo/src/storage/blob.cc" "src/CMakeFiles/pictdb.dir/storage/blob.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/storage/blob.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/pictdb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/pictdb.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/pictdb.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/viz/ascii_canvas.cc" "src/CMakeFiles/pictdb.dir/viz/ascii_canvas.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/viz/ascii_canvas.cc.o.d"
  "/root/repo/src/viz/svg.cc" "src/CMakeFiles/pictdb.dir/viz/svg.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/viz/svg.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/pictdb.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/workload/generators.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/pictdb.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/workload/queries.cc.o.d"
  "/root/repo/src/workload/us_catalog.cc" "src/CMakeFiles/pictdb.dir/workload/us_catalog.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/workload/us_catalog.cc.o.d"
  "/root/repo/src/workload/us_cities.cc" "src/CMakeFiles/pictdb.dir/workload/us_cities.cc.o" "gcc" "src/CMakeFiles/pictdb.dir/workload/us_cities.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
