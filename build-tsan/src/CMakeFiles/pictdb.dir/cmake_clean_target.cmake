file(REMOVE_RECURSE
  "libpictdb.a"
)
