# Empty dependencies file for cartography.
# This may be replaced when dependencies are built.
