file(REMOVE_RECURSE
  "CMakeFiles/cartography.dir/cartography.cpp.o"
  "CMakeFiles/cartography.dir/cartography.cpp.o.d"
  "cartography"
  "cartography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cartography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
