file(REMOVE_RECURSE
  "CMakeFiles/psql_usmap.dir/psql_usmap.cpp.o"
  "CMakeFiles/psql_usmap.dir/psql_usmap.cpp.o.d"
  "psql_usmap"
  "psql_usmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psql_usmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
