# Empty compiler generated dependencies file for psql_usmap.
# This may be replaced when dependencies are built.
