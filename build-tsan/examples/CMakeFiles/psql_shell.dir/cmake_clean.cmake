file(REMOVE_RECURSE
  "CMakeFiles/psql_shell.dir/psql_shell.cpp.o"
  "CMakeFiles/psql_shell.dir/psql_shell.cpp.o.d"
  "psql_shell"
  "psql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
