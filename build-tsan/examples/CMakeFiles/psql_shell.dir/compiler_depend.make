# Empty compiler generated dependencies file for psql_shell.
# This may be replaced when dependencies are built.
