# Empty dependencies file for zero_overlap.
# This may be replaced when dependencies are built.
