file(REMOVE_RECURSE
  "CMakeFiles/zero_overlap.dir/zero_overlap.cpp.o"
  "CMakeFiles/zero_overlap.dir/zero_overlap.cpp.o.d"
  "zero_overlap"
  "zero_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
