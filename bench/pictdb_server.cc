// pictdb_server: standalone serving binary over the binary protocol.
//
// Builds (or reopens) a packed R-tree plus a rect overlay for joins,
// stands a net::Server over a QueryService, and serves until SIGINT /
// SIGTERM triggers a graceful drain. With --file the tree lives in a
// FileDiskManager-backed page file and a `<file>.meta` sidecar records
// the meta pages, so several replica processes can serve one immutable
// packed tree:
//
//   pictdb_server --file=/tmp/db.pages --build --objects=100000
//       --unix=/tmp/pictdb.sock
//   pictdb_server --file=/tmp/db.pages --unix=/tmp/pictdb-r2.sock  # replica
//
// The dataset is fully determined by (seed, objects, overlay), so a
// load generator given the same parameters can rebuild it locally and
// check every wire answer against a brute-force oracle.

#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "geom/rect.h"
#include "net/server.h"
#include "pack/pack.h"
#include "psql/executor.h"
#include "rel/catalog.h"
#include "rtree/rtree.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/heap_file.h"
#include "workload/generators.h"
#include "workload/us_catalog.h"

namespace {

using namespace pictdb;  // NOLINT(build/namespaces) — bench binary

struct Flags {
  std::string unix_path;
  int tcp_port = -1;
  std::string file;   // empty = in-memory
  bool build = false;  // with --file: build + persist instead of reopening
  size_t objects = 100000;
  size_t overlay = 1000;
  uint64_t seed = 4242;
  uint32_t page_size = 512;
  size_t pool_pages = 4096;
  size_t threads = 4;
  size_t queue = 256;
  size_t cache_bytes = 0;
  double quota_qps = 0.0;
  double quota_burst = 16.0;
  size_t max_conns = 64;
  size_t max_inflight = 64;
  bool allow_admin = false;
  bool no_catalog = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--unix=PATH] [--port=N] [--file=PATH [--build]]\n"
      "          [--objects=N] [--overlay=N] [--seed=S] [--page-size=B]\n"
      "          [--pool-pages=N] [--threads=N] [--queue=N]\n"
      "          [--cache-bytes=N] [--quota-qps=Q] [--quota-burst=B]\n"
      "          [--max-conns=N] [--max-inflight=N] [--allow-admin]\n"
      "          [--no-catalog]\n",
      argv0);
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--build") {
      flags->build = true;
    } else if (arg == "--allow-admin") {
      flags->allow_admin = true;
    } else if (arg == "--no-catalog") {
      flags->no_catalog = true;
    } else if (ParseFlag(arg, "unix", &value)) {
      flags->unix_path = value;
    } else if (ParseFlag(arg, "port", &value)) {
      flags->tcp_port = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "file", &value)) {
      flags->file = value;
    } else if (ParseFlag(arg, "objects", &value)) {
      flags->objects = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "overlay", &value)) {
      flags->overlay = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "page-size", &value)) {
      flags->page_size = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "pool-pages", &value)) {
      flags->pool_pages = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "threads", &value)) {
      flags->threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "queue", &value)) {
      flags->queue = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "cache-bytes", &value)) {
      flags->cache_bytes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "quota-qps", &value)) {
      flags->quota_qps = std::atof(value.c_str());
    } else if (ParseFlag(arg, "quota-burst", &value)) {
      flags->quota_burst = std::atof(value.c_str());
    } else if (ParseFlag(arg, "max-conns", &value)) {
      flags->max_conns = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "max-inflight", &value)) {
      flags->max_inflight = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->unix_path.empty() && flags->tcp_port < 0) {
    std::fprintf(stderr, "need at least one of --unix / --port\n");
    return false;
  }
  return true;
}

/// The sidecar that makes a page file self-describing: the two meta
/// pages plus the dataset parameters a replica (or the load generator's
/// oracle) needs to reconstruct context.
struct Sidecar {
  storage::PageId tree_meta = 0;
  storage::PageId overlay_meta = 0;
  size_t objects = 0;
  size_t overlay = 0;
  uint64_t seed = 0;
  uint32_t page_size = 0;
};

std::string SidecarPath(const std::string& file) { return file + ".meta"; }

bool WriteSidecar(const std::string& file, const Sidecar& meta) {
  std::FILE* f = std::fopen(SidecarPath(file).c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "pictdb-meta v1\n"
               "page_size %u\n"
               "objects %zu\n"
               "seed %llu\n"
               "overlay %zu\n"
               "tree_meta %u\n"
               "overlay_meta %u\n",
               meta.page_size, meta.objects,
               static_cast<unsigned long long>(meta.seed), meta.overlay,
               meta.tree_meta, meta.overlay_meta);
  std::fclose(f);
  return true;
}

bool ReadSidecar(const std::string& file, Sidecar* meta) {
  std::FILE* f = std::fopen(SidecarPath(file).c_str(), "r");
  if (f == nullptr) return false;
  char key[64];
  unsigned long long value = 0;
  char header[32];
  int version = 0;
  bool ok = std::fscanf(f, "%31s v%d", header, &version) == 2 &&
            std::string(header) == "pictdb-meta" && version == 1;
  while (ok && std::fscanf(f, "%63s %llu", key, &value) == 2) {
    const std::string k = key;
    if (k == "page_size") {
      meta->page_size = static_cast<uint32_t>(value);
    } else if (k == "objects") {
      meta->objects = static_cast<size_t>(value);
    } else if (k == "seed") {
      meta->seed = value;
    } else if (k == "overlay") {
      meta->overlay = static_cast<size_t>(value);
    } else if (k == "tree_meta") {
      meta->tree_meta = static_cast<storage::PageId>(value);
    } else if (k == "overlay_meta") {
      meta->overlay_meta = static_cast<storage::PageId>(value);
    }
  }
  std::fclose(f);
  return ok;
}

/// The canonical serving dataset: `objects` uniform points (seed) and
/// `overlay` 8x8 rects (seed+1), both Hilbert sort-chunk packed. Kept
/// deliberately tiny and parameter-determined so bench/loadgen can
/// regenerate the identical dataset for its oracle.
Status BuildTrees(storage::BufferPool* pool, const Flags& flags,
                  std::optional<rtree::RTree>* tree,
                  std::optional<rtree::RTree>* overlay) {
  Random rng(flags.seed);
  const std::vector<geom::Point> points =
      workload::UniformPoints(&rng, flags.objects, workload::PaperFrame());
  std::vector<storage::Rid> rids(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    rids[i] = storage::Rid{static_cast<storage::PageId>(i + 1), 0};
  }
  PICTDB_ASSIGN_OR_RETURN(rtree::RTree t, rtree::RTree::Create(pool));
  PICTDB_RETURN_IF_ERROR(
      pack::PackSortChunk(&t, pack::MakeLeafEntries(points, rids),
                          pack::PackOptions{pack::SortCriterion::kHilbert}));
  tree->emplace(std::move(t));

  Random overlay_rng(flags.seed + 1);
  const std::vector<geom::Point> centers = workload::UniformPoints(
      &overlay_rng, flags.overlay, workload::PaperFrame());
  std::vector<geom::Rect> rects;
  rects.reserve(centers.size());
  std::vector<storage::Rid> overlay_rids(centers.size());
  for (size_t i = 0; i < centers.size(); ++i) {
    rects.push_back(
        geom::Rect::FromCenterHalfExtent(centers[i].x, 4.0, centers[i].y, 4.0));
    overlay_rids[i] = storage::Rid{static_cast<storage::PageId>(i + 1), 1};
  }
  PICTDB_ASSIGN_OR_RETURN(rtree::RTree o, rtree::RTree::Create(pool));
  PICTDB_RETURN_IF_ERROR(
      pack::PackSortChunk(&o, pack::MakeLeafEntries(rects, overlay_rids),
                          pack::PackOptions{pack::SortCriterion::kHilbert}));
  overlay->emplace(std::move(o));
  return Status::OK();
}

int Run(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage(argv[0]);
    return 2;
  }

  // Storage stack: (file | memory) -> fault injection (armed only via
  // admin frames) -> buffer pool. The fault layer is always present so
  // --allow-admin servers can run wire-driven fault episodes.
  std::unique_ptr<storage::DiskManager> base;
  const bool reopen = !flags.file.empty() && !flags.build;
  Sidecar sidecar;
  if (reopen) {
    if (!ReadSidecar(flags.file, &sidecar)) {
      std::fprintf(stderr, "cannot read sidecar %s (need --build first?)\n",
                   SidecarPath(flags.file).c_str());
      return 1;
    }
    // The page file is authoritative for dataset parameters: replicas
    // and the loadgen oracle must agree on what was packed.
    flags.page_size = sidecar.page_size;
    flags.objects = sidecar.objects;
    flags.overlay = sidecar.overlay;
    flags.seed = sidecar.seed;
  }
  if (!flags.file.empty()) {
    auto opened = storage::FileDiskManager::Open(flags.file, flags.page_size,
                                                 /*truncate=*/flags.build);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", flags.file.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    base = std::move(opened).value();
  } else {
    base = std::make_unique<storage::InMemoryDiskManager>(flags.page_size);
  }
  storage::FaultInjectionDiskManager fault_disk(base.get(),
                                                storage::FaultPlan{});
  storage::BufferPool pool(&fault_disk, flags.pool_pages, 8);

  std::optional<rtree::RTree> tree;
  std::optional<rtree::RTree> overlay;
  if (reopen) {
    auto t = rtree::RTree::Open(&pool, sidecar.tree_meta);
    auto o = rtree::RTree::Open(&pool, sidecar.overlay_meta);
    if (!t.ok() || !o.ok()) {
      std::fprintf(stderr, "reopen failed: %s\n",
                   (t.ok() ? o.status() : t.status()).ToString().c_str());
      return 1;
    }
    tree.emplace(std::move(t).value());
    overlay.emplace(std::move(o).value());
  } else {
    const Status built = BuildTrees(&pool, flags, &tree, &overlay);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
      return 1;
    }
    if (!flags.file.empty()) {
      // FlushAll empties the pool into the disk manager; Sync pushes it
      // past stdio buffering so replica processes opening the same file
      // see every page (a zero allocation image would silently read as
      // an empty node).
      Status flushed = pool.FlushAll();
      if (flushed.ok()) flushed = base->Sync();
      if (!flushed.ok()) {
        std::fprintf(stderr, "flush failed: %s\n", flushed.ToString().c_str());
        return 1;
      }
      Sidecar out;
      out.tree_meta = tree->meta_page();
      out.overlay_meta = overlay->meta_page();
      out.objects = flags.objects;
      out.overlay = flags.overlay;
      out.seed = flags.seed;
      out.page_size = flags.page_size;
      if (!WriteSidecar(flags.file, out)) {
        std::fprintf(stderr, "cannot write sidecar %s\n",
                     SidecarPath(flags.file).c_str());
        return 1;
      }
    }
  }

  // The relational catalog lives in its own private in-memory pool:
  // replicas must not append tuple pages to the shared page file, and
  // fault episodes target the pictorial store, not the relations.
  storage::InMemoryDiskManager catalog_disk(512);
  storage::BufferPool catalog_pool(&catalog_disk, 512, 2);
  rel::Catalog catalog(&catalog_pool);
  std::optional<psql::Executor> executor;
  if (!flags.no_catalog) {
    const Status built = workload::BuildUsCatalog(&catalog);
    if (!built.ok()) {
      std::fprintf(stderr, "catalog build failed: %s\n",
                   built.ToString().c_str());
      return 1;
    }
    executor.emplace(&catalog);
  }

  service::ServiceOptions service_options;
  service_options.num_threads = flags.threads;
  service_options.queue_capacity = flags.queue;
  service::QueryService service(&*tree,
                                executor.has_value() ? &*executor : nullptr,
                                service_options);

  net::ServerOptions server_options;
  server_options.unix_path = flags.unix_path;
  server_options.tcp_port = flags.tcp_port;
  server_options.max_connections = flags.max_conns;
  server_options.quota_qps = flags.quota_qps;
  server_options.quota_burst = flags.quota_burst;
  server_options.max_inflight_per_conn = flags.max_inflight;
  server_options.cache_bytes = flags.cache_bytes;
  server_options.allow_admin = flags.allow_admin;

  net::Server::Bindings bindings;
  bindings.service = &service;
  bindings.overlay = &*overlay;
  bindings.fault_disk = &fault_disk;
  net::Server server(bindings, server_options);

  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  net::Server::InstallSignalHandlers(&server);

  std::printf("READY unix=%s tcp_port=%d objects=%zu overlay=%zu seed=%llu\n",
              flags.unix_path.empty() ? "-" : flags.unix_path.c_str(),
              server.tcp_port(), flags.objects, flags.overlay,
              static_cast<unsigned long long>(flags.seed));
  std::fflush(stdout);

  server.Join();  // returns after a drain (signal or RequestDrain)
  net::Server::InstallSignalHandlers(nullptr);
  service.Shutdown();
  std::fprintf(stderr, "drained; final stats:\n");
  server.DumpStats(stderr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
