// §3.4 "The Update Problem": Guttman's INSERT and DELETE keep working on
// a PACKed R-tree. This experiment measures how tree quality degrades as
// an initially packed tree absorbs update batches (insert new objects +
// delete old ones), compared against (a) the freshly packed tree over the
// same final data and (b) a tree grown purely dynamically.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "pack/pack.h"
#include "rtree/metrics.h"
#include "wal/durable_tree.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace {

using pictdb::Random;
using pictdb::bench::FakeRid;
using pictdb::bench::TreeEnv;
using pictdb::geom::Point;
using pictdb::geom::Rect;
using pictdb::rtree::RTreeOptions;

RTreeOptions Options() {
  RTreeOptions opts;
  opts.max_entries = 8;
  opts.min_entries = 4;
  return opts;
}

double WindowVisits(const pictdb::rtree::RTree& tree,
                    const std::vector<Rect>& windows) {
  uint64_t total = 0;
  for (const Rect& w : windows) {
    pictdb::rtree::SearchStats stats;
    PICTDB_CHECK_OK(tree.SearchIntersects(w, &stats).status());
    total += stats.nodes_visited;
  }
  return static_cast<double>(total) / windows.size();
}

}  // namespace

int main() {
  constexpr size_t kInitial = 4000;
  constexpr size_t kBatch = 400;     // per round: 400 inserts + 400 deletes
  constexpr int kRounds = 10;

  Random rng(31415);
  const auto frame = pictdb::workload::PaperFrame();
  auto live = pictdb::workload::UniformPoints(&rng, kInitial, frame);
  std::vector<size_t> ids(live.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  size_t next_id = live.size();

  TreeEnv packed = TreeEnv::Make(Options());
  {
    std::vector<pictdb::storage::Rid> rids;
    for (size_t id : ids) rids.push_back(FakeRid(id));
    PICTDB_CHECK_OK(pictdb::pack::PackNearestNeighbor(
        packed.tree.get(), pictdb::pack::MakeLeafEntries(live, rids)));
  }

  const auto windows =
      pictdb::workload::RandomWindowQueries(&rng, 400, 0.005, frame);

  std::printf("initially packed tree under churn (%zu objects, "
              "%zu ins + %zu del per round)\n\n",
              kInitial, kBatch, kBatch);
  std::printf("%6s %10s %10s %6s %7s %10s\n", "round", "coverage",
              "overlap", "depth", "nodes", "win-nodes");

  auto report = [&](int round) {
    auto q = pictdb::rtree::MeasureTree(*packed.tree);
    PICTDB_CHECK(q.ok());
    std::printf("%6d %10.0f %10.1f %6u %7llu %10.2f\n", round, q->coverage,
                q->overlap, q->depth,
                static_cast<unsigned long long>(q->nodes),
                WindowVisits(*packed.tree, windows));
  };
  report(0);

  for (int round = 1; round <= kRounds; ++round) {
    // Delete a random batch.
    for (size_t d = 0; d < kBatch; ++d) {
      const size_t pick = rng.Uniform(live.size());
      PICTDB_CHECK_OK(packed.tree->Delete(Rect::FromPoint(live[pick]),
                                          FakeRid(ids[pick])));
      live[pick] = live.back();
      ids[pick] = ids.back();
      live.pop_back();
      ids.pop_back();
    }
    // Insert a fresh batch.
    const auto fresh = pictdb::workload::UniformPoints(&rng, kBatch, frame);
    for (const Point& p : fresh) {
      PICTDB_CHECK_OK(
          packed.tree->Insert(Rect::FromPoint(p), FakeRid(next_id)));
      live.push_back(p);
      ids.push_back(next_id++);
    }
    PICTDB_CHECK_OK(packed.tree->Validate());
    report(round);
  }

  // Baselines over the final data.
  {
    TreeEnv repacked = TreeEnv::Make(Options());
    std::vector<pictdb::storage::Rid> rids;
    for (size_t id : ids) rids.push_back(FakeRid(id));
    PICTDB_CHECK_OK(pictdb::pack::PackNearestNeighbor(
        repacked.tree.get(), pictdb::pack::MakeLeafEntries(live, rids)));
    auto q = pictdb::rtree::MeasureTree(*repacked.tree);
    PICTDB_CHECK(q.ok());
    std::printf("\nfresh PACK of the final data:   coverage=%.0f nodes=%llu "
                "win-nodes=%.2f\n",
                q->coverage, static_cast<unsigned long long>(q->nodes),
                WindowVisits(*repacked.tree, windows));
  }
  {
    TreeEnv dynamic = TreeEnv::Make(Options());
    for (size_t i = 0; i < live.size(); ++i) {
      PICTDB_CHECK_OK(
          dynamic.tree->Insert(Rect::FromPoint(live[i]), FakeRid(ids[i])));
    }
    auto q = pictdb::rtree::MeasureTree(*dynamic.tree);
    PICTDB_CHECK(q.ok());
    std::printf("pure dynamic tree, same data:   coverage=%.0f nodes=%llu "
                "win-nodes=%.2f\n",
                q->coverage, static_cast<unsigned long long>(q->nodes),
                WindowVisits(*dynamic.tree, windows));
  }
  std::printf(
      "\n§3.4's claim: packed trees absorb updates gracefully — quality "
      "drifts toward the\ndynamic tree's but a periodic re-PACK restores "
      "the initial state.\n");

  // --- WAL'd online path ------------------------------------------------
  // The same churn with every mutation logged and fsynced through
  // wal::DurableRTree: what does durability cost, and how does recovery
  // time scale with the log length between checkpoints?
  std::printf("\nWAL'd online path (log + fsync per mutation, "
              "in-memory disk)\n\n");
  {
    pictdb::storage::InMemoryDiskManager disk(512);
    pictdb::storage::BufferPool pool(&disk, 1 << 14);
    pictdb::wal::DurableOptions dopts;
    dopts.checkpoint_every = 1u << 30;  // sweep controls rotation itself
    auto created =
        pictdb::wal::DurableRTree::Create(&pool, Options(), dopts);
    PICTDB_CHECK(created.ok());
    auto durable = std::move(created).value();
    std::vector<pictdb::storage::Rid> rids;
    for (size_t id : ids) rids.push_back(FakeRid(id));
    PICTDB_CHECK_OK(durable->BulkLoad(
        pictdb::pack::MakeLeafEntries(live, rids)));
    const pictdb::storage::PageId meta = durable->meta_page();
    const pictdb::storage::PageId anchor = durable->anchor_page();

    // Throughput: one churn round (kBatch deletes + kBatch inserts),
    // each commit paying append + fsync + apply.
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t d = 0; d < kBatch; ++d) {
      const size_t pick = rng.Uniform(live.size());
      PICTDB_CHECK_OK(durable->Delete(Rect::FromPoint(live[pick]),
                                      FakeRid(ids[pick])));
      live[pick] = live.back();
      ids[pick] = ids.back();
      live.pop_back();
      ids.pop_back();
    }
    const auto fresh =
        pictdb::workload::UniformPoints(&rng, kBatch, frame);
    for (const Point& p : fresh) {
      PICTDB_CHECK_OK(
          durable->Insert(Rect::FromPoint(p), FakeRid(next_id)));
      live.push_back(p);
      ids.push_back(next_id++);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    std::printf("update throughput: %zu logged commits in %.1f ms "
                "(%.0f commits/s)\n\n",
                2 * kBatch, secs * 1e3, 2 * kBatch / secs);

    // Recovery time vs WAL length: checkpoint (empty log), append N more
    // mutations, then reopen after a simulated unclean shutdown and let
    // recovery_info() report the rebuild cost.
    std::printf("%10s %12s %12s %14s\n", "wal-ops", "wal-bytes",
                "replayed", "recovery-ms");
    for (const size_t wal_ops : {size_t{0}, size_t{500}, size_t{1000},
                                 size_t{2000}, size_t{4000}}) {
      PICTDB_CHECK_OK(durable->Checkpoint());
      for (size_t i = 0; i < wal_ops; ++i) {
        const auto p = pictdb::workload::UniformPoints(&rng, 1, frame);
        PICTDB_CHECK_OK(
            durable->Insert(Rect::FromPoint(p[0]), FakeRid(next_id++)));
      }
      const uint64_t bytes = durable->wal_chain_bytes();
      durable.reset();  // no Close(): unclean shutdown, forces a rebuild
      auto reopened = pictdb::wal::DurableRTree::Open(&pool, meta, anchor,
                                                      dopts);
      PICTDB_CHECK(reopened.ok()) << reopened.status().ToString();
      durable = std::move(reopened).value();
      const auto& info = durable->recovery_info();
      std::printf("%10zu %12llu %12llu %14.2f\n", wal_ops,
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(info.replayed_ops),
                  info.elapsed.count() / 1e3);
    }
    std::printf(
        "\nrecovery = snapshot PACK + redo of the post-checkpoint tail: "
        "cost is linear in\nthe log length, so the checkpoint cadence is "
        "the recovery-time budget knob.\n");
  }
  return 0;
}
