// Figure 3.7 reproduction: zero overlap alone is not enough — a grouping
// can be overlap-free yet have "unacceptably high" coverage (3.7a), while
// a spatially-aware grouping of the same objects has both zero overlap
// and low coverage (3.7b). Coverage and overlap must be minimized
// simultaneously, which is what PACK attempts.
//
// Construction: a 2-column × N-row lattice of small boxes. Grouping each
// ROW (one box from each distant column) gives disjoint but very wide
// leaves (3.7a); grouping within COLUMNS gives tight leaves (3.7b).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "geom/measure.h"
#include "pack/pack.h"

namespace {

using pictdb::geom::Rect;
using pictdb::rtree::Entry;

double Coverage(const std::vector<std::vector<Entry>>& groups) {
  double total = 0;
  for (const auto& g : groups) {
    Rect mbr;
    for (const Entry& e : g) mbr.ExpandToInclude(e.mbr);
    total += mbr.Area();
  }
  return total;
}

double Overlap(const std::vector<std::vector<Entry>>& groups) {
  std::vector<Rect> mbrs;
  for (const auto& g : groups) {
    Rect mbr;
    for (const Entry& e : g) mbr.ExpandToInclude(e.mbr);
    mbrs.push_back(mbr);
  }
  return pictdb::geom::AreaCoveredAtLeast(mbrs, 2);
}

}  // namespace

int main() {
  constexpr int kRows = 16;
  constexpr double kBox = 8.0;     // data box side
  constexpr double kGapY = 20.0;   // vertical spacing
  constexpr double kGapX = 900.0;  // the two columns are far apart

  std::vector<Entry> items;
  for (int row = 0; row < kRows; ++row) {
    for (int col = 0; col < 2; ++col) {
      Entry e;
      const double x = col * kGapX;
      const double y = row * kGapY;
      e.mbr = Rect(x, y, x + kBox, y + kBox);
      e.payload = static_cast<uint64_t>(row * 2 + col);
      items.push_back(e);
    }
  }

  // Fig 3.7a: row-wise pairs — zero overlap, huge coverage.
  std::vector<std::vector<Entry>> rows;
  for (int row = 0; row < kRows; ++row) {
    rows.push_back({items[row * 2], items[row * 2 + 1]});
  }

  // Fig 3.7b: column-wise pairs — zero overlap, tight coverage.
  std::vector<std::vector<Entry>> columns;
  for (int row = 0; row + 1 < kRows; row += 2) {
    columns.push_back({items[row * 2], items[(row + 1) * 2]});
    columns.push_back({items[row * 2 + 1], items[(row + 1) * 2 + 1]});
  }

  // What PACK actually produces on this input.
  const auto packed = pictdb::pack::GroupNearestNeighbor(
      items, 2, pictdb::pack::SortCriterion::kAscendingX);

  std::printf("%-28s %10s %10s\n", "grouping", "coverage", "overlap");
  std::printf("%-28s %10.1f %10.1f\n", "row pairs      (Fig 3.7a)",
              Coverage(rows), Overlap(rows));
  std::printf("%-28s %10.1f %10.1f\n", "column pairs   (Fig 3.7b)",
              Coverage(columns), Overlap(columns));
  std::printf("%-28s %10.1f %10.1f\n", "algorithm PACK", Coverage(packed),
              Overlap(packed));

  PICTDB_CHECK(Overlap(rows) == 0.0);
  PICTDB_CHECK(Coverage(columns) < Coverage(rows) / 10);
  PICTDB_CHECK(Coverage(packed) <= Coverage(columns) * 1.01);
  std::printf("\nPACK matches the good grouping: zero overlap is necessary "
              "but not sufficient;\ncoverage must be minimized at the same "
              "time (the paper's simultaneous-minimization point).\n");
  return 0;
}
