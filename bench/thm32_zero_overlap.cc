// Theorem 3.2 / Lemma 3.1 experimental sweep: for point sets of growing
// size (including adversarial lattices), a rotation with all-distinct
// x-coordinates is found and x-chunking after it yields *zero* leaf
// overlap, while unrotated chunking of lattice data does not even manage
// distinct x. Also measures the cost of finding the rotation.

#include <chrono>
#include <cstdio>

#include "common/random.h"
#include "geom/measure.h"
#include "geom/transform.h"
#include "pack/rotation.h"
#include "workload/generators.h"

namespace {

using pictdb::Random;
using pictdb::geom::Point;

size_t IntersectingPairs(const std::vector<pictdb::geom::Rect>& mbrs) {
  size_t pairs = 0;
  for (size_t i = 0; i < mbrs.size(); ++i) {
    for (size_t j = i + 1; j < mbrs.size(); ++j) {
      if (mbrs[i].Intersects(mbrs[j])) ++pairs;
    }
  }
  return pairs;
}

}  // namespace

int main() {
  std::printf("%-22s %6s %9s %14s %13s %10s\n", "dataset", "n", "angle",
              "overlap-area", "touch-pairs", "find(ms)");

  const auto run = [](const char* label, const std::vector<Point>& pts) {
    const auto start = std::chrono::steady_clock::now();
    auto packing = pictdb::pack::ComputeRotationPacking(pts, 4);
    const auto end = std::chrono::steady_clock::now();
    PICTDB_CHECK(packing.ok());
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    const double overlap =
        pictdb::geom::AreaCoveredAtLeast(packing->leaf_mbrs, 2);
    std::printf("%-22s %6zu %9.5f %14.2f %13zu %10.2f\n", label, pts.size(),
                packing->angle, overlap,
                IntersectingPairs(packing->leaf_mbrs), ms);
    PICTDB_CHECK(overlap == 0.0);
    PICTDB_CHECK(IntersectingPairs(packing->leaf_mbrs) == 0);
  };

  for (const size_t n : {64u, 256u, 1024u, 4096u}) {
    Random rng(100 + n);
    run("uniform", pictdb::workload::UniformPoints(
                       &rng, n, pictdb::workload::PaperFrame()));
  }
  for (const size_t side : {8u, 16u, 32u}) {
    std::vector<Point> lattice;
    for (size_t x = 0; x < side; ++x) {
      for (size_t y = 0; y < side; ++y) {
        lattice.push_back(Point{static_cast<double>(x) * 10,
                                static_cast<double>(y) * 10});
      }
    }
    PICTDB_CHECK(!pictdb::geom::AllXDistinct(lattice));
    run("lattice (ties in x)", lattice);
  }
  {
    // Collinear points on a diagonal: every pair defines the same "bad"
    // direction, a stress case for Lemma 3.1's finiteness argument.
    std::vector<Point> diag;
    for (int i = 0; i < 512; ++i) {
      diag.push_back(Point{static_cast<double>(i), static_cast<double>(i)});
    }
    run("collinear diagonal", diag);
  }
  std::printf("\nTheorem 3.2 holds on every input: after rotation the leaf "
              "MBRs are pairwise\ndisjoint (zero overlap area, zero "
              "touching pairs).\n");
  return 0;
}
