// google-benchmark microbenchmarks: point/window search latency across
// builders (INSERT vs the packers) and dataset sizes — the wall-clock
// companion to Table 1's "nodes visited" column.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "pack/hilbert.h"
#include "pack/pack.h"
#include "pack/str.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace {

using pictdb::Random;
using pictdb::bench::FakeRid;
using pictdb::bench::PointEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Point;
using pictdb::geom::Rect;

enum BuilderId : int64_t {
  kInsert = 0,
  kPackNN = 1,
  kLowX = 2,
  kStr = 3,
  kHilbert = 4,
};

TreeEnv BuildTree(int64_t builder, size_t n) {
  Random rng(7000 + n);
  const auto pts =
      pictdb::workload::UniformPoints(&rng, n, pictdb::workload::PaperFrame());
  pictdb::rtree::RTreeOptions opts;  // page-derived branching (~101)
  TreeEnv env = TreeEnv::Make(opts, 4096);
  auto items = PointEntries(pts);
  switch (builder) {
    case kInsert:
      for (size_t i = 0; i < pts.size(); ++i) {
        PICTDB_CHECK_OK(
            env.tree->Insert(Rect::FromPoint(pts[i]), FakeRid(i)));
      }
      break;
    case kPackNN:
      PICTDB_CHECK_OK(
          pictdb::pack::PackNearestNeighbor(env.tree.get(), std::move(items)));
      break;
    case kLowX:
      PICTDB_CHECK_OK(
          pictdb::pack::PackSortChunk(env.tree.get(), std::move(items)));
      break;
    case kStr:
      PICTDB_CHECK_OK(pictdb::pack::PackStr(env.tree.get(), std::move(items)));
      break;
    case kHilbert:
      PICTDB_CHECK_OK(
          pictdb::pack::PackHilbert(env.tree.get(), std::move(items)));
      break;
  }
  return env;
}

const char* BuilderName(int64_t builder) {
  static const char* const kNames[] = {"insert", "pack-nn", "lowx", "str",
                                       "hilbert"};
  return kNames[builder];
}

void BM_WindowSearch(benchmark::State& state) {
  const int64_t builder = state.range(0);
  const size_t n = static_cast<size_t>(state.range(1));
  TreeEnv env = BuildTree(builder, n);
  Random rng(1);
  const auto windows = pictdb::workload::RandomWindowQueries(
      &rng, 512, 0.01, pictdb::workload::PaperFrame());
  size_t i = 0;
  uint64_t results = 0;
  for (auto _ : state) {
    auto hits = env.tree->SearchIntersects(windows[i++ & 511]);
    PICTDB_CHECK(hits.ok());
    results += hits->size();
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(BuilderName(builder));
  state.counters["results/query"] =
      static_cast<double>(results) / state.iterations();
}

void BM_PointSearch(benchmark::State& state) {
  const int64_t builder = state.range(0);
  const size_t n = static_cast<size_t>(state.range(1));
  TreeEnv env = BuildTree(builder, n);
  Random rng(2);
  const auto queries = pictdb::workload::RandomPointQueries(
      &rng, 512, pictdb::workload::PaperFrame());
  size_t i = 0;
  for (auto _ : state) {
    auto hits = env.tree->SearchPoint(queries[i++ & 511]);
    PICTDB_CHECK(hits.ok());
    benchmark::DoNotOptimize(hits->size());
  }
  state.SetLabel(BuilderName(builder));
}

void SearchArgs(benchmark::internal::Benchmark* b) {
  for (int64_t builder : {kInsert, kPackNN, kLowX, kStr, kHilbert}) {
    for (int64_t n : {10000, 100000}) {
      b->Args({builder, n});
    }
  }
}

BENCHMARK(BM_WindowSearch)->Apply(SearchArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PointSearch)->Apply(SearchArgs)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
