// google-benchmark microbenchmarks: point/window search latency across
// builders (INSERT vs the packers) and dataset sizes — the wall-clock
// companion to Table 1's "nodes visited" column.
//
// `search_micro --json [objects]` bypasses google-benchmark and emits a
// single JSON object on stdout measuring the SIMD hot path: window
// throughput under the scalar reference vs the runtime-selected kernel
// family, batched-search throughput, and per-node SoA decode cost.
// tools/bench_diff.py compares two such dumps (EXPERIMENTS.md records
// the before/after for the SoA + kernel change).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "pack/hilbert.h"
#include "pack/pack.h"
#include "pack/str.h"
#include "simd/dispatch.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace {

using pictdb::Random;
using pictdb::bench::FakeRid;
using pictdb::bench::PointEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Point;
using pictdb::geom::Rect;

enum BuilderId : int64_t {
  kInsert = 0,
  kPackNN = 1,
  kLowX = 2,
  kStr = 3,
  kHilbert = 4,
};

TreeEnv BuildTree(int64_t builder, size_t n) {
  Random rng(7000 + n);
  const auto pts =
      pictdb::workload::UniformPoints(&rng, n, pictdb::workload::PaperFrame());
  pictdb::rtree::RTreeOptions opts;  // page-derived branching (~101)
  TreeEnv env = TreeEnv::Make(opts, 4096);
  auto items = PointEntries(pts);
  switch (builder) {
    case kInsert:
      for (size_t i = 0; i < pts.size(); ++i) {
        PICTDB_CHECK_OK(
            env.tree->Insert(Rect::FromPoint(pts[i]), FakeRid(i)));
      }
      break;
    case kPackNN:
      PICTDB_CHECK_OK(
          pictdb::pack::PackNearestNeighbor(env.tree.get(), std::move(items)));
      break;
    case kLowX:
      PICTDB_CHECK_OK(
          pictdb::pack::PackSortChunk(env.tree.get(), std::move(items)));
      break;
    case kStr:
      PICTDB_CHECK_OK(pictdb::pack::PackStr(env.tree.get(), std::move(items)));
      break;
    case kHilbert:
      PICTDB_CHECK_OK(
          pictdb::pack::PackHilbert(env.tree.get(), std::move(items)));
      break;
  }
  return env;
}

const char* BuilderName(int64_t builder) {
  static const char* const kNames[] = {"insert", "pack-nn", "lowx", "str",
                                       "hilbert"};
  return kNames[builder];
}

void BM_WindowSearch(benchmark::State& state) {
  const int64_t builder = state.range(0);
  const size_t n = static_cast<size_t>(state.range(1));
  TreeEnv env = BuildTree(builder, n);
  Random rng(1);
  const auto windows = pictdb::workload::RandomWindowQueries(
      &rng, 512, 0.01, pictdb::workload::PaperFrame());
  size_t i = 0;
  uint64_t results = 0;
  for (auto _ : state) {
    auto hits = env.tree->SearchIntersects(windows[i++ & 511]);
    PICTDB_CHECK(hits.ok());
    results += hits->size();
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(BuilderName(builder));
  state.counters["results/query"] =
      static_cast<double>(results) / state.iterations();
}

void BM_PointSearch(benchmark::State& state) {
  const int64_t builder = state.range(0);
  const size_t n = static_cast<size_t>(state.range(1));
  TreeEnv env = BuildTree(builder, n);
  Random rng(2);
  const auto queries = pictdb::workload::RandomPointQueries(
      &rng, 512, pictdb::workload::PaperFrame());
  size_t i = 0;
  for (auto _ : state) {
    auto hits = env.tree->SearchPoint(queries[i++ & 511]);
    PICTDB_CHECK(hits.ok());
    benchmark::DoNotOptimize(hits->size());
  }
  state.SetLabel(BuilderName(builder));
}

void SearchArgs(benchmark::internal::Benchmark* b) {
  for (int64_t builder : {kInsert, kPackNN, kLowX, kStr, kHilbert}) {
    for (int64_t n : {10000, 100000}) {
      b->Args({builder, n});
    }
  }
}

BENCHMARK(BM_WindowSearch)->Apply(SearchArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PointSearch)->Apply(SearchArgs)->Unit(benchmark::kMicrosecond);

// --- `--json` mode: the SoA/SIMD hot-path numbers -------------------------

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Queries/second for one full pass set over `windows` under whatever
/// kernel family is currently active. `passes` chosen so the timed
/// region is long enough to swamp clock resolution.
double WindowQps(const pictdb::rtree::RTree& tree,
                 const std::vector<Rect>& windows, size_t passes,
                 uint64_t* results_out) {
  uint64_t results = 0;
  const auto start = Clock::now();
  for (size_t p = 0; p < passes; ++p) {
    for (const Rect& w : windows) {
      auto hits = tree.SearchIntersects(w);
      PICTDB_CHECK(hits.ok());
      results += hits->size();
    }
  }
  const double secs = SecondsSince(start);
  benchmark::DoNotOptimize(results);
  if (results_out != nullptr) *results_out = results;
  return static_cast<double>(passes * windows.size()) / secs;
}

/// Windows/second through SearchBatch in groups of `batch_size`.
double BatchQps(const pictdb::rtree::RTree& tree,
                const std::vector<Rect>& windows, size_t batch_size,
                size_t passes) {
  uint64_t results = 0;
  const auto start = Clock::now();
  for (size_t p = 0; p < passes; ++p) {
    for (size_t i = 0; i < windows.size(); i += batch_size) {
      const size_t n = std::min(batch_size, windows.size() - i);
      auto batch = tree.SearchBatch(
          std::span<const Rect>(windows.data() + i, n));
      PICTDB_CHECK(batch.ok());
      for (const auto& bw : *batch) results += bw.hits.size();
    }
  }
  const double secs = SecondsSince(start);
  benchmark::DoNotOptimize(results);
  return static_cast<double>(passes * windows.size()) / secs;
}

/// Every node page id, gathered by a plain BFS over interior entries.
std::vector<pictdb::storage::PageId> CollectNodeIds(
    const pictdb::rtree::RTree& tree) {
  std::vector<pictdb::storage::PageId> ids, frontier = {tree.root()};
  while (!frontier.empty()) {
    std::vector<pictdb::storage::PageId> next;
    for (const auto id : frontier) {
      ids.push_back(id);
      auto node = tree.ReadNodePage(id);
      PICTDB_CHECK(node.ok());
      if (node->is_leaf()) continue;
      for (const auto& e : node->entries) next.push_back(e.AsChild());
    }
    frontier = std::move(next);
  }
  return ids;
}

/// Nanoseconds per SoA node decode, amortized over every node in the
/// tree (pages stay pool-resident, so this isolates the transpose).
double DecodeNsPerNode(const pictdb::rtree::RTree& tree,
                       const std::vector<pictdb::storage::PageId>& ids,
                       size_t passes) {
  pictdb::rtree::SoaNode scratch;
  uint64_t lanes = 0;
  const auto start = Clock::now();
  for (size_t p = 0; p < passes; ++p) {
    for (const auto id : ids) {
      PICTDB_CHECK_OK(tree.ReadNodePageSoa(id, &scratch));
      lanes += scratch.count();
    }
  }
  const double secs = SecondsSince(start);
  benchmark::DoNotOptimize(lanes);
  return secs * 1e9 / static_cast<double>(passes * ids.size());
}

int RunJsonMode(size_t objects) {
  constexpr size_t kWindows = 512;
  constexpr size_t kPasses = 8;
  constexpr size_t kBatchSize = 8;

  TreeEnv env = BuildTree(kPackNN, objects);
  Random rng(1);
  const auto windows = pictdb::workload::RandomWindowQueries(
      &rng, kWindows, 0.01, pictdb::workload::PaperFrame());
  const auto node_ids = CollectNodeIds(*env.tree);

  // Warm the pool and the allocator before any timed region.
  uint64_t results = 0;
  (void)WindowQps(*env.tree, windows, 1, &results);

  double scalar_qps = 0, active_qps = 0;
  {
    pictdb::simd::ScopedKernelOverride force(
        &pictdb::simd::ScalarKernels());
    scalar_qps = WindowQps(*env.tree, windows, kPasses, nullptr);
  }
  active_qps = WindowQps(*env.tree, windows, kPasses, &results);
  const double batch_qps = BatchQps(*env.tree, windows, kBatchSize, kPasses);
  const double decode_ns = DecodeNsPerNode(*env.tree, node_ids, kPasses * 4);

  std::printf(
      "{\n"
      "  \"objects\": %zu,\n"
      "  \"windows\": %zu,\n"
      "  \"passes\": %zu,\n"
      "  \"batch_size\": %zu,\n"
      "  \"kernel\": \"%s\",\n"
      "  \"simd_active\": %s,\n"
      "  \"nodes\": %zu,\n"
      "  \"results_per_query\": %.2f,\n"
      "  \"scalar_window_qps\": %.1f,\n"
      "  \"active_window_qps\": %.1f,\n"
      "  \"simd_speedup\": %.3f,\n"
      "  \"batch_window_qps\": %.1f,\n"
      "  \"batch_speedup_vs_scalar\": %.3f,\n"
      "  \"decode_ns_per_node\": %.1f\n"
      "}\n",
      objects, kWindows, kPasses, kBatchSize,
      pictdb::simd::ActiveKernels().name,
      pictdb::simd::SimdActive() ? "true" : "false", node_ids.size(),
      static_cast<double>(results) / (kPasses * kWindows),
      scalar_qps, active_qps, active_qps / scalar_qps, batch_qps,
      batch_qps / scalar_qps, decode_ns);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t objects = 100000;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (json && !arg.starts_with("--")) {
      objects = static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
    }
  }
  if (json) return RunJsonMode(objects);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
