// Window-query throughput of the concurrent query service at 1/2/4/8
// worker threads over one shared 100k-object packed R-tree.
//
// The tree sits behind a small sharded buffer pool on a simulated disk
// (LatencyDiskManager): every page miss costs a fixed seek, as in the
// paper's disk-resident setting. That is the regime the service is for —
// worker threads blocked on different page seeks overlap, so throughput
// scales with the thread count well past a single CPU. Emits one JSON
// line per thread count for the perf trajectory.

#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace pictdb {
namespace {

constexpr size_t kObjects = 100000;
constexpr size_t kQueries = 4096;
constexpr uint32_t kPageSize = 4096;
constexpr size_t kPoolFrames = 128;  // << leaf count: misses dominate
constexpr size_t kPoolShards = 8;
constexpr auto kReadLatency = std::chrono::microseconds(150);

double RunAtThreadCount(const rtree::RTree& tree,
                        const std::vector<geom::Rect>& windows,
                        size_t threads, uint64_t* hits_out,
                        double* avg_nodes_out) {
  service::ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = windows.size();
  service::QueryService svc(&tree, nullptr, options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<StatusOr<service::QueryResult>>> futures;
  futures.reserve(windows.size());
  for (const geom::Rect& w : windows) {
    auto submitted = svc.Submit(service::WindowQuery{w, false});
    PICTDB_CHECK(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted).value());
  }
  uint64_t hits = 0;
  for (auto& f : futures) {
    auto outcome = f.get();
    PICTDB_CHECK(outcome.ok()) << outcome.status().ToString();
    hits += outcome.value().hits.size();
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  svc.Shutdown();
  *hits_out = hits;
  *avg_nodes_out = svc.Metrics().avg_nodes_visited();
  return elapsed_ms;
}

void Main() {
  storage::InMemoryDiskManager disk(kPageSize);

  // Build phase: full-speed pool, no simulated latency.
  storage::PageId meta_page;
  {
    storage::BufferPool build_pool(&disk, 1 << 15);
    auto tree = rtree::RTree::Create(&build_pool);
    PICTDB_CHECK(tree.ok());
    Random rng(1985);
    const auto points =
        workload::UniformPoints(&rng, kObjects, workload::PaperFrame());
    std::vector<storage::Rid> rids;
    rids.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
    }
    pack::PackOptions pack_options;
    pack_options.criterion = pack::SortCriterion::kHilbert;
    PICTDB_CHECK_OK(pack::PackSortChunk(
        &tree.value(), pack::MakeLeafEntries(points, rids), pack_options));
    meta_page = tree.value().meta_page();
    PICTDB_CHECK_OK(build_pool.FlushAll());
  }

  // Query phase: every page touch pays a simulated seek.
  storage::LatencyDiskManager slow_disk(&disk, kReadLatency,
                                        kReadLatency);
  storage::BufferPool pool(&slow_disk, kPoolFrames, kPoolShards);
  auto tree = rtree::RTree::Open(&pool, meta_page);
  PICTDB_CHECK(tree.ok());

  Random qrng(7);
  std::vector<geom::Rect> windows;
  windows.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    const double cx = qrng.UniformDouble(0, 1000);
    const double cy = qrng.UniformDouble(0, 1000);
    windows.push_back(geom::Rect::FromCenterHalfExtent(cx, 8, cy, 8));
  }

  double base_ms = 0;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    uint64_t hits = 0;
    double avg_nodes = 0;
    const double elapsed_ms =
        RunAtThreadCount(tree.value(), windows, threads, &hits, &avg_nodes);
    if (threads == 1) base_ms = elapsed_ms;
    const double qps = 1000.0 * static_cast<double>(kQueries) / elapsed_ms;
    std::printf(
        "{\"bench\":\"parallel_search\",\"objects\":%zu,\"threads\":%zu,"
        "\"queries\":%zu,\"pool_frames\":%zu,\"pool_shards\":%zu,"
        "\"read_latency_us\":%lld,\"elapsed_ms\":%.1f,\"qps\":%.1f,"
        "\"avg_nodes_visited\":%.2f,\"hits\":%llu,"
        "\"speedup_vs_1t\":%.2f}\n",
        kObjects, threads, kQueries, kPoolFrames, kPoolShards,
        static_cast<long long>(kReadLatency.count()), elapsed_ms, qps,
        avg_nodes, static_cast<unsigned long long>(hits),
        base_ms / elapsed_ms);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace pictdb

int main() {
  pictdb::Main();
  return 0;
}
