// Figure 3.4 reproduction: a point set whose natural grouping packs into
// tight leaves with minimal coverage (3.4b), but where Guttman's INSERT —
// "new data objects must be added to pre-existing R-tree leaves"
// (requirement (2)) — creates leaves with "much useless space in the
// middle" (3.4c).
//
// Scenario: two outer clusters arrive first and fix the leaf structure;
// a middle cluster arrives last and must be absorbed by leaves anchored
// at the extremes, stretching them across the dead middle. PACK sees the
// complete set and keeps each cluster in its own leaf.

#include <cstdio>

#include "bench_util.h"
#include "geom/measure.h"
#include "pack/pack.h"
#include "rtree/metrics.h"

namespace {

using pictdb::bench::FakeRid;
using pictdb::bench::PointEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Point;
using pictdb::geom::Rect;

void Report(const char* label, const pictdb::rtree::RTree& tree) {
  auto leaves = tree.CollectLeafNodeMbrs();
  PICTDB_CHECK(leaves.ok());
  double coverage = 0;
  std::printf("%s: %zu leaves\n", label, leaves->size());
  for (const Rect& r : *leaves) {
    std::printf("  leaf MBR %-26s area=%8.1f\n",
                pictdb::geom::ToString(r).c_str(), r.Area());
    coverage += r.Area();
  }
  std::printf("  total coverage = %.1f\n\n", coverage);
}

std::vector<Point> Cluster(double cx, double cy) {
  return {{cx, cy}, {cx + 2, cy}, {cx, cy + 2}, {cx + 2, cy + 2}};
}

}  // namespace

int main() {
  // Figure 3.4a analogue: three clusters along a line. The middle
  // cluster's points arrive after the outer leaves already exist.
  std::vector<Point> arrival;
  for (const Point& p : Cluster(0, 0)) arrival.push_back(p);     // left
  for (const Point& p : Cluster(80, 24)) arrival.push_back(p);   // right
  for (const Point& p : Cluster(40, 12)) arrival.push_back(p);   // middle

  pictdb::rtree::RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;

  TreeEnv dynamic = TreeEnv::Make(opts, 256);
  for (size_t i = 0; i < arrival.size(); ++i) {
    PICTDB_CHECK_OK(dynamic.tree->Insert(Rect::FromPoint(arrival[i]),
                                         FakeRid(i)));
  }
  Report("Guttman INSERT, middle cluster last (Fig 3.4c)", *dynamic.tree);

  TreeEnv packed = TreeEnv::Make(opts, 256);
  PICTDB_CHECK_OK(pictdb::pack::PackNearestNeighbor(packed.tree.get(),
                                                    PointEntries(arrival)));
  Report("PACK over the full set (Fig 3.4b)", *packed.tree);

  auto dq = pictdb::rtree::MeasureTree(*dynamic.tree);
  auto pq = pictdb::rtree::MeasureTree(*packed.tree);
  PICTDB_CHECK(dq.ok() && pq.ok());
  std::printf("summary: INSERT coverage %.1f vs PACK coverage %.1f "
              "(%.1fx dead space)\n",
              dq->coverage, pq->coverage, dq->coverage / pq->coverage);
  PICTDB_CHECK(pq->coverage < dq->coverage)
      << "PACK must avoid the dead space INSERT manufactures here";
  std::printf("paper's point: insertion into pre-existing leaves stretches "
              "them across empty\nspace between clusters; packing the "
              "complete set keeps every cluster tight.\n");
  return 0;
}
