// Deterministic stress-harness driver. Generates a seeded workload
// trace, runs it against the R-tree (optionally through the concurrent
// query service) with every query diffed against the brute-force
// oracle and TreeValidator run on a cadence, and — when a run fails —
// shrinks the trace to a minimal text reproducer.
//
// Usage:
//   stress_harness [seed] [ops]             seeded run (default 1 1000)
//   stress_harness --service [seed] [ops]   route queries through the pool
//   stress_harness --faults [seed] [ops]    1% transient faults + bit flips
//   stress_harness --crash [seed] [ops]     WAL'd writes on a volatile
//                                           write cache with seeded power
//                                           losses: every crash recovers
//                                           and diffs the full state
//                                           against the oracle (combine
//                                           with --service to route the
//                                           mutations through the service
//                                           write path)
//   stress_harness --replay file.trace      re-run a saved reproducer
//   stress_harness --demo-shrink            plant a corruption, show ddmin
//   stress_harness --lint-env [seed]        short smoke over exactly the
//                                           lock-annotated paths (shard
//                                           mutexes, admission queue,
//                                           fault injector, quarantine) —
//                                           run under a TSan build so the
//                                           dynamic race detector checks
//                                           the same paths the static
//                                           analysis signed off on

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/stress.h"

namespace {

using pictdb::check::FailsUnder;
using pictdb::check::GenerateTrace;
using pictdb::check::Op;
using pictdb::check::OpKind;
using pictdb::check::ParseTrace;
using pictdb::check::RunTrace;
using pictdb::check::ShrinkTrace;
using pictdb::check::StressConfig;
using pictdb::check::StressOutcome;
using pictdb::check::TraceToText;

StressConfig BaseConfig(uint64_t seed, size_t ops) {
  StressConfig config;
  config.seed = seed;
  config.ops = ops;
  return config;
}

void EnableCrashes(StressConfig* config) {
  config->durable = true;
  config->w_update = 0.05;
  config->w_crash = 0.02;
  config->w_checkpoint = 0.01;
  // Re-PACK and fault episodes are the offline-era ops; a crash trace
  // spends its budget on logged mutations and recoveries instead.
  config->w_repack = 0.0;
  config->w_repack_region = 0.0;
  config->w_fault_flip = 0.0;
  config->checkpoint_every = 256;
}

void EnableFaults(StressConfig* config) {
  config->fault_plan.seed = config->seed * 2 + 1;
  config->fault_plan.transient_read_error_rate = 0.01;
  config->fault_plan.transient_write_error_rate = 0.005;
  config->fault_plan.read_bit_flip_rate = 0.01;
  config->pool_frames = 64;  // small pool so reads really hit the disk
}

int RunAndReport(const std::vector<Op>& trace, const StressConfig& config) {
  const StressOutcome outcome = RunTrace(trace, config);
  std::printf("%s\n", outcome.Summary().c_str());
  if (!outcome.failed) return 0;

  std::printf("shrinking %zu-op failing trace...\n", trace.size());
  const std::vector<Op> shrunk = ShrinkTrace(trace, FailsUnder(config));
  std::printf("minimal reproducer (%zu op(s)):\n%s", shrunk.size(),
              TraceToText(shrunk).c_str());
  const std::string path = "stress_repro.trace";
  std::ofstream out(path);
  out << "# seed " << config.seed << " ops " << config.ops << "\n"
      << TraceToText(shrunk);
  std::printf("written to %s (replay with --replay %s)\n", path.c_str(),
              path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool service = false, faults = false, crash = false, demo = false,
       lint_env = false;
  std::string replay_path;
  uint64_t seed = 1;
  size_t ops = 1000;

  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--service") {
      service = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--crash") {
      crash = true;
    } else if (arg == "--demo-shrink") {
      demo = true;
    } else if (arg == "--lint-env") {
      lint_env = true;
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (pos == 0) {
      seed = std::strtoull(arg.c_str(), nullptr, 10);
      ++pos;
    } else {
      ops = std::strtoull(arg.c_str(), nullptr, 10);
    }
  }

  if (lint_env) {
    // Belt and suspenders with the static analysis: a short
    // service-routed, fault-injected run touches every mutex the
    // annotation pass covers (buffer-pool shard + jitter PRNG, fault
    // injector plan, quarantine, thread-pool queue — all contended by
    // four workers), so a TSan build of this mode dynamically
    // re-checks the paths clang -Wthread-safety verified statically.
    // Keep it small enough for a CI smoke.
    StressConfig config = BaseConfig(seed, 400);
    config.use_service = true;
    config.service_threads = 4;
    config.pool_frames = 32;  // force eviction + miss traffic per shard
    EnableFaults(&config);
    const StressOutcome outcome = RunTrace(GenerateTrace(config), config);
    std::printf("lint-env smoke: %s\n", outcome.Summary().c_str());
    return outcome.failed ? 1 : 0;
  }

  StressConfig config = BaseConfig(seed, ops);
  config.use_service = service;
  if (faults) EnableFaults(&config);
  if (crash) EnableCrashes(&config);

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", replay_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto trace = ParseTrace(text.str());
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 2;
    }
    std::printf("replaying %zu op(s) from %s\n", trace->size(),
                replay_path.c_str());
    const StressOutcome outcome = RunTrace(*trace, config);
    std::printf("%s\n", outcome.Summary().c_str());
    return outcome.failed ? 1 : 0;
  }

  std::vector<Op> trace = GenerateTrace(config);
  if (demo) {
    // Plant the seeded corruption the harness exists to catch, then show
    // the shrinker reduce the failing trace to a minimal reproducer.
    // Planted at the tail so no later insert can innocently repair the
    // parent MBR before the closing validation sees it.
    Op corrupt;
    corrupt.kind = OpKind::kCorruptMbr;
    corrupt.a = 17;
    trace.push_back(corrupt);
    std::printf("planted corrupt-mbr as final op %zu\n", trace.size() - 1);
  }
  std::printf("seed=%llu ops=%zu%s%s%s\n",
              static_cast<unsigned long long>(seed), trace.size(),
              service ? " [service]" : "", faults ? " [faults]" : "",
              crash ? " [crash]" : "");
  const int rc = RunAndReport(trace, config);
  // The demo is *supposed* to fail and shrink; its exit code is success.
  return demo ? 0 : rc;
}
