// Reproduces Table 1 of Roussopoulos & Leifker (SIGMOD 1985): Guttman's
// INSERT vs algorithm PACK over J uniform random points in [0,1000]²,
// branching factor 4, reporting coverage (C), overlap (O), depth (D),
// node count (N) and average nodes visited (A) over random point queries.
//
// The paper's text says 1000 queries while the table caption says 100; we
// run 1000 (set --queries to change). Absolute C/O values depend on the
// random point sets, so expect the paper's *shape*: PACK's coverage about
// half of INSERT's, overlap smaller by orders of magnitude, fewer nodes,
// smaller depth, and A lower by 3-10x, growing with J much more slowly.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "pack/pack.h"
#include "rtree/metrics.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace {

using pictdb::Random;
using pictdb::bench::FakeRid;
using pictdb::bench::PointEntries;
using pictdb::bench::TreeEnv;
using pictdb::rtree::AverageNodesVisited;
using pictdb::rtree::MeasureTree;
using pictdb::rtree::RTreeOptions;
using pictdb::rtree::TreeQuality;

constexpr int kJValues[] = {10,  25,  50,  75,  100, 125, 150, 175, 200,
                            250, 300, 400, 500, 600, 700, 800, 900};

RTreeOptions PaperOptions() {
  RTreeOptions opts;
  opts.max_entries = 4;  // the paper's illustrative branching factor
  opts.min_entries = 2;
  return opts;
}

struct Row {
  TreeQuality q;
  double avg_visited = 0.0;        // A: random point queries (paper's text)
  double avg_visited_data = 0.0;   // A': membership queries on the data
  double avg_visited_window = 0.0; // A'': 1%-selectivity window queries
};

template <typename Tree>
double WindowVisits(const Tree& tree,
                    const std::vector<pictdb::geom::Rect>& windows) {
  uint64_t total = 0;
  for (const auto& w : windows) {
    pictdb::rtree::SearchStats stats;
    PICTDB_CHECK_OK(tree.SearchIntersects(w, &stats).status());
    total += stats.nodes_visited;
  }
  return windows.empty() ? 0.0
                         : static_cast<double>(total) / windows.size();
}

Row Measure(const pictdb::rtree::RTree& tree,
            const std::vector<pictdb::geom::Point>& pts,
            const std::vector<pictdb::geom::Point>& queries,
            const std::vector<pictdb::geom::Rect>& windows) {
  Row row;
  auto q = MeasureTree(tree);
  PICTDB_CHECK(q.ok()) << q.status().ToString();
  row.q = *q;
  auto a = AverageNodesVisited(tree, queries);
  PICTDB_CHECK(a.ok()) << a.status().ToString();
  row.avg_visited = *a;
  auto ad = AverageNodesVisited(tree, pts);
  PICTDB_CHECK(ad.ok()) << ad.status().ToString();
  row.avg_visited_data = *ad;
  row.avg_visited_window = WindowVisits(tree, windows);
  return row;
}

Row BuildWithInsert(const std::vector<pictdb::geom::Point>& pts,
                    const std::vector<pictdb::geom::Point>& queries,
                    const std::vector<pictdb::geom::Rect>& windows) {
  TreeEnv env = TreeEnv::Make(PaperOptions(), /*page_size=*/256);
  for (size_t i = 0; i < pts.size(); ++i) {
    PICTDB_CHECK_OK(
        env.tree->Insert(pictdb::geom::Rect::FromPoint(pts[i]), FakeRid(i)));
  }
  return Measure(*env.tree, pts, queries, windows);
}

Row BuildWithPack(const std::vector<pictdb::geom::Point>& pts,
                  const std::vector<pictdb::geom::Point>& queries,
                  const std::vector<pictdb::geom::Rect>& windows) {
  TreeEnv env = TreeEnv::Make(PaperOptions(), /*page_size=*/256);
  PICTDB_CHECK_OK(
      pictdb::pack::PackNearestNeighbor(env.tree.get(), PointEntries(pts)));
  return Measure(*env.tree, pts, queries, windows);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 19850528;  // SIGMOD'85 began May 28, 1985
  size_t num_queries = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = std::strtoull(argv[i] + 10, nullptr, 10);
    }
  }

  std::printf("Table 1 reproduction (seed=%llu, %zu point queries)\n",
              static_cast<unsigned long long>(seed), num_queries);
  std::printf(
      "A   = avg nodes visited, random uniform point queries (paper text)\n"
      "A'  = avg nodes visited, membership queries on the J data points\n"
      "A'' = avg nodes visited, 1%%-selectivity window queries\n\n");
  std::printf("%5s | %8s %8s %2s %4s %6s %6s %6s | %8s %8s %2s %4s %6s %6s %6s\n",
              "J", "C(ins)", "O(ins)", "D", "N", "A", "A'", "A''", "C(pack)",
              "O(pack)", "D", "N", "A", "A'", "A''");
  std::printf("------+---------------------------------------------------"
              "--+------------------------------------------------------\n");

  const auto frame = pictdb::workload::PaperFrame();
  for (const int j : kJValues) {
    // Same data and same queries for both algorithms, as in the paper.
    Random data_rng(seed + static_cast<uint64_t>(j));
    const auto pts = pictdb::workload::UniformPoints(
        &data_rng, static_cast<size_t>(j), frame);
    Random query_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    const auto queries =
        pictdb::workload::RandomPointQueries(&query_rng, num_queries, frame);
    const auto windows = pictdb::workload::RandomWindowQueries(
        &query_rng, num_queries, 0.01, frame);

    const Row ins = BuildWithInsert(pts, queries, windows);
    const Row pck = BuildWithPack(pts, queries, windows);

    std::printf(
        "%5d | %8.0f %8.0f %2u %4llu %6.2f %6.2f %6.2f | %8.0f %8.0f %2u "
        "%4llu %6.2f %6.2f %6.2f\n",
        j, ins.q.coverage, ins.q.overlap, ins.q.depth,
        static_cast<unsigned long long>(ins.q.nodes), ins.avg_visited,
        ins.avg_visited_data, ins.avg_visited_window, pck.q.coverage,
        pck.q.overlap, pck.q.depth,
        static_cast<unsigned long long>(pck.q.nodes), pck.avg_visited,
        pck.avg_visited_data, pck.avg_visited_window);
  }
  std::printf(
      "\nReproduction notes (full analysis in EXPERIMENTS.md):\n"
      "- D and N track the paper's Table 1 almost exactly (e.g. J=900:\n"
      "  paper N=573/302, D=6-ish/4; packed trees are smaller+shallower).\n"
      "- A favours PACK increasingly with J, most visibly for membership\n"
      "  (A') and window (A'') queries.\n"
      "- The paper's absolute C/O values are below the geometric lower\n"
      "  bound for full 4-entry leaves over uniform points and cannot be\n"
      "  matched by any packing; the C/O columns here are the exact\n"
      "  measure-theoretic values under the paper's stated definitions.\n");
  return 0;
}
