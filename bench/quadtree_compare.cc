// The paper's §1 argument quantified: R-trees vs quad-trees for direct
// spatial search. The quad-tree pins boundary-straddling objects high in
// the tree (its "decomposition into quadrants"), so window queries over
// extended objects wade through large upper-cell entry lists, while the
// packed R-tree keeps every object in exactly one full leaf.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "pack/pack.h"
#include "quadtree/quadtree.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace {

using pictdb::Random;
using pictdb::bench::RectEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Point;
using pictdb::geom::Rect;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const Rect frame = pictdb::workload::PaperFrame();

  std::printf("packed R-tree vs quad-tree (MX-CIF), window queries at 1%% "
              "selectivity\n\n");
  std::printf("%-8s %-8s | %10s %10s %10s | %10s %10s %10s\n", "objects",
              "kind", "rt-nodes", "rt-tested", "rt-ms", "qt-cells",
              "qt-tested", "qt-ms");

  for (const size_t n : {5000u, 20000u}) {
    for (const int kind : {0, 1}) {  // 0 = points, 1 = extended rects
      Random rng(600 + n + static_cast<size_t>(kind));
      std::vector<Rect> objects;
      if (kind == 0) {
        for (const Point& p :
             pictdb::workload::UniformPoints(&rng, n, frame)) {
          objects.push_back(Rect::FromPoint(p));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          const double x = rng.UniformDouble(0, 980);
          const double y = rng.UniformDouble(0, 980);
          objects.push_back(Rect(x, y, x + rng.UniformDouble(1, 20),
                                 y + rng.UniformDouble(1, 20)));
        }
      }

      TreeEnv rt = TreeEnv::Make({}, 4096);
      PICTDB_CHECK_OK(
          pictdb::pack::PackNearestNeighbor(rt.tree.get(),
                                            RectEntries(objects)));
      pictdb::quadtree::QuadTree qt(frame, 12, 16);
      for (size_t i = 0; i < objects.size(); ++i) {
        PICTDB_CHECK_OK(qt.Insert(objects[i], pictdb::bench::FakeRid(i)));
      }

      const auto windows =
          pictdb::workload::RandomWindowQueries(&rng, 500, 0.01, frame);

      uint64_t rt_nodes = 0, rt_tested = 0, rt_results = 0;
      auto start = std::chrono::steady_clock::now();
      for (const Rect& w : windows) {
        pictdb::rtree::SearchStats stats;
        auto hits = rt.tree->SearchIntersects(w, &stats);
        PICTDB_CHECK(hits.ok());
        rt_nodes += stats.nodes_visited;
        rt_tested += stats.entries_tested;
        rt_results += hits->size();
      }
      const double rt_ms = MsSince(start);

      uint64_t qt_cells = 0, qt_tested = 0, qt_results = 0;
      start = std::chrono::steady_clock::now();
      for (const Rect& w : windows) {
        pictdb::quadtree::QuadStats stats;
        const auto hits = qt.SearchIntersects(w, &stats);
        qt_cells += stats.cells_visited;
        qt_tested += stats.entries_tested;
        qt_results += hits.size();
      }
      const double qt_ms = MsSince(start);

      PICTDB_CHECK(rt_results == qt_results)
          << rt_results << " vs " << qt_results;
      const double q = static_cast<double>(windows.size());
      std::printf("%-8zu %-8s | %10.1f %10.1f %10.2f | %10.1f %10.1f "
                  "%10.2f\n",
                  n, kind == 0 ? "points" : "rects", rt_nodes / q,
                  rt_tested / q, rt_ms, qt_cells / q, qt_tested / q, qt_ms);
    }
  }
  std::printf(
      "\nBoth answer identically. The R-tree touches 3-7x fewer nodes — "
      "and R-tree nodes\nare fixed-size disk pages, which is the paper's "
      "actual argument (\"better in\ndealing with paging and disk I/O "
      "buffering\"); quad-tree cells are small pointer-\nchased "
      "allocations. On extended objects the quad-tree also tests more "
      "entries,\nbecause center-straddling objects are pinned to large "
      "upper cells that every\nquery in the quadrant must wade through.\n");
  return 0;
}
