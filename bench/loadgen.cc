// loadgen: SLO-reporting load generator for pictdb_server.
//
// Drives a mixed window / point / kNN / join / PSQL workload over the
// binary protocol in closed-loop (each client thread sends the next
// request when the previous answers) or open-loop mode (requests are
// scheduled at a fixed aggregate rate and latency is measured from the
// *scheduled* send time, so queueing delay is not hidden — no
// coordinated omission). Reports per-variant and total p50/p95/p99/max
// plus goodput, and checks them against optional SLO thresholds.
//
// Differential verification: the dataset served by pictdb_server is
// fully determined by (seed, objects, overlay), so loadgen regenerates
// it locally, answers every prepared query through check::Oracle (and a
// local PSQL executor over the same US catalog), and compares every
// wire response. Exact answers must match byte-for-byte on rids /
// distances / pair counts / rendered rows; responses flagged degraded
// must be subsets. Anything else is a wrong answer and fails the run.
//
//   loadgen --endpoint=unix:/tmp/pictdb.sock --objects=100000
//       --duration=10 --clients=8
//
// Exit codes: 0 ok, 1 wrong answers, 2 SLO breach, 3 setup failure.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/oracle.h"
#include "common/random.h"
#include "common/status.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "net/client.h"
#include "net/protocol.h"
#include "pack/pack.h"
#include "psql/executor.h"
#include "rel/catalog.h"
#include "service/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "workload/generators.h"
#include "workload/us_catalog.h"

namespace {

using namespace pictdb;  // NOLINT(build/namespaces) — bench binary
using Clock = std::chrono::steady_clock;

constexpr size_t kVariants =
    service::kQueryVariants;  // window point knn join psql batch

struct Endpoint {
  bool is_unix = true;
  std::string path_or_host;
  int port = 0;
};

struct Flags {
  std::vector<Endpoint> endpoints;
  size_t objects = 100000;
  size_t overlay = 1000;
  uint64_t seed = 4242;
  double duration_s = 10.0;
  size_t clients = 8;
  bool open_loop = false;
  double rate = 1000.0;  // aggregate target qps in open-loop mode
  size_t query_pool = 256;
  uint32_t knn_k = 10;
  uint64_t timeout_us = 0;
  bool degraded_ok = false;
  bool verify = true;
  std::array<uint64_t, kVariants> mix = {40, 15, 20, 5, 20};
  // SLO thresholds over the TOTAL latency distribution (0 = unchecked).
  uint64_t slo_p50_us = 0;
  uint64_t slo_p95_us = 0;
  uint64_t slo_p99_us = 0;
  double slo_goodput = 0.0;
  // Optional mid-run fault episode (server must run --allow-admin).
  double fault_start_s = -1.0;
  double fault_duration_s = 2.0;
  double fault_rate = 0.0;
};

bool ParseEndpoint(const std::string& spec, Endpoint* out) {
  if (spec.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->path_or_host = spec.substr(5);
    return !out->path_or_host.empty();
  }
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  out->is_unix = false;
  out->path_or_host = spec.substr(0, colon);
  out->port = std::atoi(spec.c_str() + colon + 1);
  return out->port > 0;
}

bool ParseMix(const std::string& spec, std::array<uint64_t, kVariants>* mix) {
  mix->fill(0);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    const std::string name = part.substr(0, colon);
    const uint64_t weight = std::strtoull(part.c_str() + colon + 1, nullptr, 10);
    size_t variant = kVariants;
    for (size_t v = 0; v < kVariants; ++v) {
      if (name == service::kQueryVariantNames[v]) variant = v;
    }
    if (variant == kVariants) return false;
    (*mix)[variant] = weight;
    pos = comma + 1;
  }
  uint64_t total = 0;
  for (uint64_t w : *mix) total += w;
  return total > 0;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--open-loop") {
      flags->open_loop = true;
    } else if (arg == "--degraded-ok") {
      flags->degraded_ok = true;
    } else if (arg == "--no-verify") {
      flags->verify = false;
    } else if (ParseFlag(arg, "endpoint", &value)) {
      size_t pos = 0;
      while (pos < value.size()) {
        size_t comma = value.find(',', pos);
        if (comma == std::string::npos) comma = value.size();
        Endpoint ep;
        if (!ParseEndpoint(value.substr(pos, comma - pos), &ep)) {
          std::fprintf(stderr, "bad endpoint: %s\n", value.c_str());
          return false;
        }
        flags->endpoints.push_back(ep);
        pos = comma + 1;
      }
    } else if (ParseFlag(arg, "objects", &value)) {
      flags->objects = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "overlay", &value)) {
      flags->overlay = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "duration", &value)) {
      flags->duration_s = std::atof(value.c_str());
    } else if (ParseFlag(arg, "clients", &value)) {
      flags->clients = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "rate", &value)) {
      flags->rate = std::atof(value.c_str());
    } else if (ParseFlag(arg, "query-pool", &value)) {
      flags->query_pool = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "knn-k", &value)) {
      flags->knn_k = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "timeout-us", &value)) {
      flags->timeout_us = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "mix", &value)) {
      if (!ParseMix(value, &flags->mix)) {
        std::fprintf(stderr, "bad mix: %s\n", value.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "slo-p50-us", &value)) {
      flags->slo_p50_us = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "slo-p95-us", &value)) {
      flags->slo_p95_us = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "slo-p99-us", &value)) {
      flags->slo_p99_us = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "slo-goodput", &value)) {
      flags->slo_goodput = std::atof(value.c_str());
    } else if (ParseFlag(arg, "fault-start", &value)) {
      flags->fault_start_s = std::atof(value.c_str());
    } else if (ParseFlag(arg, "fault-duration", &value)) {
      flags->fault_duration_s = std::atof(value.c_str());
    } else if (ParseFlag(arg, "fault-rate", &value)) {
      flags->fault_rate = std::atof(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->endpoints.empty()) {
    std::fprintf(stderr,
                 "usage: loadgen --endpoint=unix:PATH|HOST:PORT[,...]\n"
                 "  [--objects=N] [--overlay=N] [--seed=S] [--duration=SEC]\n"
                 "  [--clients=N] [--open-loop --rate=QPS] [--query-pool=N]\n"
                 "  [--knn-k=K] [--timeout-us=N] [--degraded-ok]\n"
                 "  [--mix=window:40,point:15,knn:20,join:5,psql:20"
                 ",batch:0]\n"
                 "  [--slo-p50-us=N] [--slo-p95-us=N] [--slo-p99-us=N]\n"
                 "  [--slo-goodput=F] [--no-verify]\n"
                 "  [--fault-start=SEC] [--fault-duration=SEC]"
                 " [--fault-rate=R]\n");
    return false;
  }
  return true;
}

/// One request from the pool plus its oracle-computed answer.
struct Prepared {
  net::Request request;
  size_t variant = 0;
  std::vector<net::WireRid> rids;  // window / point (sorted)
  std::vector<double> dists;       // knn (ascending)
  uint64_t pairs = 0;              // join
  std::vector<std::vector<std::string>> rows;  // psql (rendered)
  std::vector<std::vector<net::WireRid>> batch_rids;  // batch (sorted each)
};

net::WireRid ToWire(const storage::Rid& rid) {
  return net::WireRid{rid.page_id, rid.slot};
}

std::vector<net::WireRid> SortedRids(const std::vector<rtree::LeafHit>& hits) {
  std::vector<net::WireRid> rids;
  rids.reserve(hits.size());
  for (const auto& hit : hits) rids.push_back(ToWire(hit.rid));
  std::sort(rids.begin(), rids.end(), [](net::WireRid a, net::WireRid b) {
    return a.page_id != b.page_id ? a.page_id < b.page_id : a.slot < b.slot;
  });
  return rids;
}

/// Rebuild the server's dataset (same seeds, same generators) and
/// precompute every query's expected answer by linear scan.
struct QueryPool {
  std::array<std::vector<Prepared>, kVariants> by_variant;

  const Prepared* Pick(size_t variant, Random* rng) const {
    const auto& pool = by_variant[variant];
    if (pool.empty()) return nullptr;
    return &pool[rng->Uniform(pool.size())];
  }
};

bool BuildQueryPool(const Flags& flags, QueryPool* out) {
  Random rng(flags.seed);
  const std::vector<geom::Point> points =
      workload::UniformPoints(&rng, flags.objects, workload::PaperFrame());
  std::vector<storage::Rid> rids(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    rids[i] = storage::Rid{static_cast<storage::PageId>(i + 1), 0};
  }
  const check::Oracle base(pack::MakeLeafEntries(points, rids));

  Random overlay_rng(flags.seed + 1);
  const std::vector<geom::Point> centers = workload::UniformPoints(
      &overlay_rng, flags.overlay, workload::PaperFrame());
  std::vector<geom::Rect> rects;
  rects.reserve(centers.size());
  std::vector<storage::Rid> overlay_rids(centers.size());
  for (size_t i = 0; i < centers.size(); ++i) {
    rects.push_back(
        geom::Rect::FromCenterHalfExtent(centers[i].x, 4.0, centers[i].y, 4.0));
    overlay_rids[i] = storage::Rid{static_cast<storage::PageId>(i + 1), 1};
  }
  const check::Oracle overlay(pack::MakeLeafEntries(rects, overlay_rids));

  Random qrng(flags.seed * 7919 + 17);
  const geom::Rect frame = workload::PaperFrame();
  const net::WireOptions wire_options{flags.timeout_us, flags.degraded_ok};

  // Window queries: centers uniform, half extents in [2, 25] so
  // selectivity spans roughly 1e-5 .. 2e-3 of the frame.
  for (size_t i = 0; i < flags.query_pool; ++i) {
    const double cx = qrng.UniformDouble(frame.lo.x, frame.hi.x);
    const double cy = qrng.UniformDouble(frame.lo.y, frame.hi.y);
    const double hx = qrng.UniformDouble(2.0, 25.0);
    const double hy = qrng.UniformDouble(2.0, 25.0);
    Prepared p;
    const geom::Rect window = geom::Rect::FromCenterHalfExtent(cx, hx, cy, hy);
    p.request.body = net::WindowRequest{window, false};
    p.request.options = wire_options;
    p.variant = 0;
    if (flags.verify) p.rids = SortedRids(base.Intersects(window));
    out->by_variant[0].push_back(std::move(p));
  }

  // Point queries: half dataset points (hits), half random (misses).
  for (size_t i = 0; i < flags.query_pool; ++i) {
    geom::Point q;
    if (i % 2 == 0 && !points.empty()) {
      q = points[qrng.Uniform(points.size())];
    } else {
      q = geom::Point{qrng.UniformDouble(frame.lo.x, frame.hi.x),
                      qrng.UniformDouble(frame.lo.y, frame.hi.y)};
    }
    Prepared p;
    p.request.body = net::PointRequest{q};
    p.request.options = wire_options;
    p.variant = 1;
    if (flags.verify) p.rids = SortedRids(base.AtPoint(q));
    out->by_variant[1].push_back(std::move(p));
  }

  // kNN queries.
  for (size_t i = 0; i < flags.query_pool; ++i) {
    const geom::Point q{qrng.UniformDouble(frame.lo.x, frame.hi.x),
                        qrng.UniformDouble(frame.lo.y, frame.hi.y)};
    Prepared p;
    p.request.body = net::KnnRequest{q, flags.knn_k};
    p.request.options = wire_options;
    p.variant = 2;
    if (flags.verify) {
      for (const auto& n : base.Nearest(q, flags.knn_k)) {
        p.dists.push_back(n.distance);
      }
    }
    out->by_variant[2].push_back(std::move(p));
  }

  // Join: one canonical request (the server hosts exactly one overlay).
  {
    Prepared p;
    p.request.body = net::JoinRequest{0};
    p.request.options = wire_options;
    p.variant = 3;
    if (flags.verify) p.pairs = base.CountJoinPairs(overlay);
    out->by_variant[3].push_back(std::move(p));
  }

  // PSQL: population-threshold templates over the shared US catalog,
  // answered locally through the same executor and rendered the same
  // way the server renders TableResponse rows.
  storage::InMemoryDiskManager catalog_disk(512);
  storage::BufferPool catalog_pool(&catalog_disk, 512, 2);
  rel::Catalog catalog(&catalog_pool);
  const Status built = workload::BuildUsCatalog(&catalog);
  if (!built.ok()) {
    std::fprintf(stderr, "local catalog build failed: %s\n",
                 built.ToString().c_str());
    return false;
  }
  const psql::Executor executor(&catalog);
  std::vector<std::string> psql_texts = {
      "select count(*) from cities",
      "select min(population), max(population) from cities",
  };
  for (size_t i = 0; i < std::min<size_t>(flags.query_pool, 24); ++i) {
    psql_texts.push_back("select city, population from cities "
                         "where population > " +
                         std::to_string(50000 + 40000 * i));
  }
  // Batched windows: kBatchSize windows per request, answered by one
  // shared descent on the server. Expected answers are per-window.
  constexpr size_t kBatchSize = 8;
  for (size_t i = 0; i < flags.query_pool; ++i) {
    net::BatchWindowRequest req;
    Prepared p;
    for (size_t j = 0; j < kBatchSize; ++j) {
      const double cx = qrng.UniformDouble(frame.lo.x, frame.hi.x);
      const double cy = qrng.UniformDouble(frame.lo.y, frame.hi.y);
      const double hx = qrng.UniformDouble(2.0, 25.0);
      const double hy = qrng.UniformDouble(2.0, 25.0);
      const geom::Rect window =
          geom::Rect::FromCenterHalfExtent(cx, hx, cy, hy);
      req.windows.push_back(window);
      if (flags.verify) {
        p.batch_rids.push_back(SortedRids(base.Intersects(window)));
      }
    }
    p.request.body = std::move(req);
    p.request.options = wire_options;
    p.variant = 5;
    out->by_variant[5].push_back(std::move(p));
  }

  for (const std::string& text : psql_texts) {
    Prepared p;
    p.request.body = net::PsqlRequest{text};
    p.request.options = wire_options;
    p.variant = 4;
    if (flags.verify) {
      auto rs = executor.Query(text);
      if (!rs.ok()) {
        std::fprintf(stderr, "local psql failed (%s): %s\n", text.c_str(),
                     rs.status().ToString().c_str());
        return false;
      }
      for (const auto& row : rs.value().rows) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const rel::Value& value : row) cells.push_back(value.ToString());
        p.rows.push_back(std::move(cells));
      }
    }
    out->by_variant[4].push_back(std::move(p));
  }
  return true;
}

enum class Verdict { kExact, kDegradedSubset, kWrong };

bool IsSubset(const std::vector<net::WireRid>& got_sorted,
              const std::vector<net::WireRid>& want_sorted) {
  return std::includes(
      want_sorted.begin(), want_sorted.end(), got_sorted.begin(),
      got_sorted.end(), [](net::WireRid a, net::WireRid b) {
        return a.page_id != b.page_id ? a.page_id < b.page_id
                                      : a.slot < b.slot;
      });
}

Verdict CheckResponse(const Prepared& prepared, const net::Client::Result& r,
                      std::string* why) {
  const bool degraded = r.degraded();
  switch (prepared.variant) {
    case 0:
    case 1: {
      const auto* hits = std::get_if<net::HitsResponse>(&r.response.body);
      if (hits == nullptr) {
        *why = "wrong response body for window/point";
        return Verdict::kWrong;
      }
      std::vector<net::WireRid> got;
      got.reserve(hits->hits.size());
      for (const auto& hit : hits->hits) got.push_back(hit.rid);
      std::sort(got.begin(), got.end(), [](net::WireRid a, net::WireRid b) {
        return a.page_id != b.page_id ? a.page_id < b.page_id
                                      : a.slot < b.slot;
      });
      if (got == prepared.rids) return Verdict::kExact;
      if (degraded && IsSubset(got, prepared.rids)) {
        return Verdict::kDegradedSubset;
      }
      *why = "hits mismatch: got " + std::to_string(got.size()) + " want " +
             std::to_string(prepared.rids.size()) +
             (degraded ? " (degraded, not a subset)" : "");
      return Verdict::kWrong;
    }
    case 2: {
      const auto* nn = std::get_if<net::NeighborsResponse>(&r.response.body);
      if (nn == nullptr) {
        *why = "wrong response body for knn";
        return Verdict::kWrong;
      }
      if (degraded) {
        // A partial scan may miss true neighbours; distances are still
        // real object distances, so only the count bound is checkable.
        return nn->neighbors.size() <= prepared.dists.size()
                   ? Verdict::kDegradedSubset
                   : Verdict::kWrong;
      }
      if (nn->neighbors.size() != prepared.dists.size()) {
        *why = "knn count mismatch: got " +
               std::to_string(nn->neighbors.size()) + " want " +
               std::to_string(prepared.dists.size());
        return Verdict::kWrong;
      }
      for (size_t i = 0; i < prepared.dists.size(); ++i) {
        const double got = nn->neighbors[i].distance;
        const double want = prepared.dists[i];
        if (std::abs(got - want) > 1e-9 * std::max(1.0, want)) {
          *why = "knn distance mismatch at rank " + std::to_string(i);
          return Verdict::kWrong;
        }
      }
      return Verdict::kExact;
    }
    case 3: {
      const auto* join = std::get_if<net::JoinResponse>(&r.response.body);
      if (join == nullptr) {
        *why = "wrong response body for join";
        return Verdict::kWrong;
      }
      if (join->pairs == prepared.pairs) return Verdict::kExact;
      if (degraded && join->pairs <= prepared.pairs) {
        return Verdict::kDegradedSubset;
      }
      *why = "join pairs mismatch: got " + std::to_string(join->pairs) +
             " want " + std::to_string(prepared.pairs);
      return Verdict::kWrong;
    }
    case 4: {
      const auto* table = std::get_if<net::TableResponse>(&r.response.body);
      if (table == nullptr) {
        *why = "wrong response body for psql";
        return Verdict::kWrong;
      }
      // The catalog is in memory on the server, so PSQL answers never
      // degrade; exact row match is required.
      if (table->rows == prepared.rows) return Verdict::kExact;
      *why = "psql rows mismatch: got " + std::to_string(table->rows.size()) +
             " rows, want " + std::to_string(prepared.rows.size());
      return Verdict::kWrong;
    }
    case 5: {
      const auto* batch =
          std::get_if<net::BatchHitsResponse>(&r.response.body);
      if (batch == nullptr) {
        *why = "wrong response body for batch";
        return Verdict::kWrong;
      }
      if (batch->per_window.size() != prepared.batch_rids.size()) {
        *why = "batch window count mismatch";
        return Verdict::kWrong;
      }
      bool any_degraded = false;
      for (size_t i = 0; i < batch->per_window.size(); ++i) {
        const auto& bw = batch->per_window[i];
        std::vector<net::WireRid> got;
        got.reserve(bw.hits.size());
        for (const auto& hit : bw.hits) got.push_back(hit.rid);
        std::sort(got.begin(), got.end(),
                  [](net::WireRid a, net::WireRid b) {
                    return a.page_id != b.page_id ? a.page_id < b.page_id
                                                  : a.slot < b.slot;
                  });
        if (got == prepared.batch_rids[i]) continue;
        if ((degraded || bw.degraded) &&
            IsSubset(got, prepared.batch_rids[i])) {
          any_degraded = true;
          continue;
        }
        *why = "batch window " + std::to_string(i) + " hits mismatch";
        return Verdict::kWrong;
      }
      return any_degraded ? Verdict::kDegradedSubset : Verdict::kExact;
    }
    default:
      *why = "unknown variant";
      return Verdict::kWrong;
  }
}

struct Counters {
  std::atomic<uint64_t> attempted{0};
  std::atomic<uint64_t> exact{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> cached{0};
  std::atomic<uint64_t> wrong{0};
  std::atomic<uint64_t> rejected{0};  // quota/backpressure (ResourceExhausted)
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> errors{0};  // structured errors (e.g. fault episode)
  std::atomic<uint64_t> transport{0};  // connection drops + reconnects
};

struct Shared {
  const Flags* flags = nullptr;
  const QueryPool* pool = nullptr;
  Clock::time_point start;
  Clock::time_point deadline;
  Counters counters;
  std::array<service::LatencyHistogram, kVariants> variant_hist;
  service::LatencyHistogram cached_hist;
  service::LatencyHistogram uncached_hist;
  std::atomic<uint64_t> open_loop_slot{0};
  std::mutex wrong_mu;
  std::vector<std::string> wrong_examples;

  void RecordWrong(const std::string& why) {
    counters.wrong.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(wrong_mu);
    if (wrong_examples.size() < 8) wrong_examples.push_back(why);
  }
};

StatusOr<net::Client> Connect(const Endpoint& ep) {
  if (ep.is_unix) return net::Client::ConnectUnix(ep.path_or_host);
  return net::Client::ConnectTcp(ep.path_or_host, ep.port);
}

size_t PickVariant(const std::array<uint64_t, kVariants>& mix, Random* rng) {
  uint64_t total = 0;
  for (uint64_t w : mix) total += w;
  uint64_t roll = rng->Uniform(total);
  for (size_t v = 0; v < kVariants; ++v) {
    if (roll < mix[v]) return v;
    roll -= mix[v];
  }
  return 0;
}

void Worker(Shared* shared, size_t thread_index) {
  const Flags& flags = *shared->flags;
  const Endpoint& endpoint =
      flags.endpoints[thread_index % flags.endpoints.size()];
  Random rng(flags.seed * 104729 + thread_index * 31 + 7);

  std::optional<net::Client> client;
  auto ensure_connected = [&]() -> bool {
    if (client.has_value()) return true;
    auto connected = Connect(endpoint);
    if (!connected.ok()) return false;
    client.emplace(std::move(connected).value());
    (void)client->SetRecvTimeout(std::chrono::milliseconds(10000));
    return true;
  };

  while (Clock::now() < shared->deadline) {
    if (!ensure_connected()) {
      shared->counters.transport.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    const size_t variant = PickVariant(flags.mix, &rng);
    const Prepared* prepared = shared->pool->Pick(variant, &rng);
    if (prepared == nullptr) continue;

    // Open loop: latency clock starts at the slot's scheduled time, so
    // server queueing under overload is charged to the server.
    Clock::time_point latency_from = Clock::now();
    if (flags.open_loop) {
      const uint64_t slot =
          shared->open_loop_slot.fetch_add(1, std::memory_order_relaxed);
      const auto scheduled =
          shared->start + std::chrono::microseconds(static_cast<uint64_t>(
                              1e6 * static_cast<double>(slot) / flags.rate));
      if (scheduled > shared->deadline) return;
      std::this_thread::sleep_until(scheduled);
      latency_from = scheduled;
    }

    shared->counters.attempted.fetch_add(1, std::memory_order_relaxed);
    auto result = client->Call(prepared->request);
    const uint64_t latency_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              latency_from)
            .count());

    if (!result.ok()) {
      const Status& status = result.status();
      if (status.IsResourceExhausted()) {
        shared->counters.rejected.fetch_add(1, std::memory_order_relaxed);
      } else if (status.IsDeadlineExceeded()) {
        shared->counters.deadline.fetch_add(1, std::memory_order_relaxed);
        client.reset();  // response may still arrive; desynced, reconnect
      } else if (status.IsIOError() || status.IsInternal()) {
        shared->counters.transport.fetch_add(1, std::memory_order_relaxed);
        client.reset();
      } else {
        // Structured server-side error (fault episode exhausting
        // retries, quarantined subtree, ...): an allowed outcome —
        // the server said "no answer", it did not answer wrongly.
        shared->counters.errors.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }

    shared->variant_hist[variant].Record(latency_us);
    if (result.value().cached()) {
      shared->counters.cached.fetch_add(1, std::memory_order_relaxed);
      shared->cached_hist.Record(latency_us);
    } else {
      shared->uncached_hist.Record(latency_us);
    }

    if (!flags.verify) {
      shared->counters.exact.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::string why;
    switch (CheckResponse(*prepared, result.value(), &why)) {
      case Verdict::kExact:
        shared->counters.exact.fetch_add(1, std::memory_order_relaxed);
        break;
      case Verdict::kDegradedSubset:
        shared->counters.degraded.fetch_add(1, std::memory_order_relaxed);
        break;
      case Verdict::kWrong:
        shared->RecordWrong(std::string(service::kQueryVariantNames[variant]) +
                            ": " + why);
        break;
    }
  }
}

/// Arms the fault episode on every endpoint at --fault-start, clears it
/// --fault-duration later. Requires the server to run --allow-admin.
void FaultEpisode(const Flags& flags, Clock::time_point start) {
  std::this_thread::sleep_until(
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(flags.fault_start_s)));
  std::printf("# fault episode: rate=%.3g for %.1fs\n", flags.fault_rate,
              flags.fault_duration_s);
  std::fflush(stdout);
  for (const Endpoint& ep : flags.endpoints) {
    auto admin = Connect(ep);
    if (!admin.ok()) continue;
    const Status armed = admin.value().SetFaults(flags.fault_rate,
                                                 flags.fault_rate / 10.0);
    if (!armed.ok()) {
      std::fprintf(stderr, "SetFaults failed (server without --allow-admin?):"
                           " %s\n",
                   armed.ToString().c_str());
    }
  }
  std::this_thread::sleep_for(std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(flags.fault_duration_s)));
  for (const Endpoint& ep : flags.endpoints) {
    auto admin = Connect(ep);
    if (admin.ok()) (void)admin.value().SetFaults(0.0, 0.0);
  }
  std::printf("# fault episode cleared\n");
  std::fflush(stdout);
}

void PrintHistogramRow(const char* name,
                       const service::HistogramSnapshot& snapshot) {
  std::printf("  %-8s n=%-8llu p50=%-8llu p95=%-8llu p99=%-8llu max=%llu\n",
              name, static_cast<unsigned long long>(snapshot.count()),
              static_cast<unsigned long long>(snapshot.ValueAtQuantile(0.50)),
              static_cast<unsigned long long>(snapshot.ValueAtQuantile(0.95)),
              static_cast<unsigned long long>(snapshot.ValueAtQuantile(0.99)),
              static_cast<unsigned long long>(snapshot.max));
}

int Run(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 3;

  QueryPool pool;
  if (!BuildQueryPool(flags, &pool)) return 3;

  // Fail fast if no endpoint answers a ping before spawning the fleet.
  {
    auto probe = Connect(flags.endpoints[0]);
    if (!probe.ok() || !probe.value().Ping().ok()) {
      std::fprintf(stderr, "endpoint probe failed: %s\n",
                   probe.ok() ? "ping refused"
                              : probe.status().ToString().c_str());
      return 3;
    }
  }

  Shared shared;
  shared.flags = &flags;
  shared.pool = &pool;
  shared.start = Clock::now();
  shared.deadline =
      shared.start + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(flags.duration_s));

  std::vector<std::thread> workers;
  workers.reserve(flags.clients);
  for (size_t t = 0; t < flags.clients; ++t) {
    workers.emplace_back(Worker, &shared, t);
  }
  std::optional<std::thread> fault_thread;
  if (flags.fault_rate > 0.0 && flags.fault_start_s >= 0.0) {
    fault_thread.emplace(FaultEpisode, flags, shared.start);
  }
  for (auto& w : workers) w.join();
  if (fault_thread.has_value()) fault_thread->join();

  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - shared.start).count();
  const Counters& c = shared.counters;
  const uint64_t attempted = c.attempted.load();
  const uint64_t good = c.exact.load() + c.degraded.load();
  const double goodput =
      attempted == 0 ? 0.0
                     : static_cast<double>(good) / static_cast<double>(attempted);

  std::printf("== loadgen report ==\n");
  std::printf(
      "mode=%s clients=%zu endpoints=%zu elapsed=%.1fs throughput=%.0f qps\n",
      flags.open_loop ? "open" : "closed", flags.clients,
      flags.endpoints.size(), elapsed_s,
      static_cast<double>(attempted) / elapsed_s);
  std::printf("attempted=%llu exact=%llu degraded=%llu cached=%llu "
              "rejected=%llu deadline=%llu errors=%llu transport=%llu "
              "wrong=%llu\n",
              static_cast<unsigned long long>(attempted),
              static_cast<unsigned long long>(c.exact.load()),
              static_cast<unsigned long long>(c.degraded.load()),
              static_cast<unsigned long long>(c.cached.load()),
              static_cast<unsigned long long>(c.rejected.load()),
              static_cast<unsigned long long>(c.deadline.load()),
              static_cast<unsigned long long>(c.errors.load()),
              static_cast<unsigned long long>(c.transport.load()),
              static_cast<unsigned long long>(c.wrong.load()));
  std::printf("goodput=%.4f (correct answers / attempted)\n", goodput);

  std::printf("latency (us, client-side%s):\n",
              flags.open_loop ? ", from scheduled send time" : "");
  service::HistogramSnapshot total;
  for (size_t v = 0; v < kVariants; ++v) {
    const service::HistogramSnapshot snapshot =
        shared.variant_hist[v].Snapshot();
    total.Merge(snapshot);
    PrintHistogramRow(service::kQueryVariantNames[v], snapshot);
  }
  PrintHistogramRow("TOTAL", total);
  const service::HistogramSnapshot cached_snapshot =
      shared.cached_hist.Snapshot();
  const service::HistogramSnapshot uncached_snapshot =
      shared.uncached_hist.Snapshot();
  if (cached_snapshot.count() > 0) {
    std::printf("result-cache split:\n");
    PrintHistogramRow("hit", cached_snapshot);
    PrintHistogramRow("miss", uncached_snapshot);
  }

  // Server-side view (first endpoint): service metrics + cache counters.
  {
    auto stats_client = Connect(flags.endpoints[0]);
    if (stats_client.ok()) {
      auto stats = stats_client.value().ServerStats();
      if (stats.ok()) {
        const net::StatsResponse& s = stats.value();
        std::printf("server[0]: submitted=%llu completed=%llu failed=%llu "
                    "degraded=%llu cache_hits=%llu cache_evictions=%llu "
                    "quota_rej=%llu backpressure_rej=%llu\n",
                    static_cast<unsigned long long>(s.submitted),
                    static_cast<unsigned long long>(s.completed),
                    static_cast<unsigned long long>(s.failed),
                    static_cast<unsigned long long>(s.degraded),
                    static_cast<unsigned long long>(s.cache_hits),
                    static_cast<unsigned long long>(s.cache_evictions),
                    static_cast<unsigned long long>(s.quota_rejections),
                    static_cast<unsigned long long>(s.backpressure_rejections));
      }
    }
  }

  for (const std::string& example : shared.wrong_examples) {
    std::printf("WRONG: %s\n", example.c_str());
  }

  bool slo_ok = true;
  auto check_slo = [&](const char* name, uint64_t got, uint64_t limit) {
    if (limit == 0) return;
    const bool ok = got <= limit;
    slo_ok = slo_ok && ok;
    std::printf("SLO %-12s %8llu <= %8llu  %s\n", name,
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(limit), ok ? "OK" : "BREACH");
  };
  check_slo("p50_us", total.ValueAtQuantile(0.50), flags.slo_p50_us);
  check_slo("p95_us", total.ValueAtQuantile(0.95), flags.slo_p95_us);
  check_slo("p99_us", total.ValueAtQuantile(0.99), flags.slo_p99_us);
  if (flags.slo_goodput > 0.0) {
    const bool ok = goodput >= flags.slo_goodput;
    slo_ok = slo_ok && ok;
    std::printf("SLO goodput      %8.4f >= %8.4f  %s\n", goodput,
                flags.slo_goodput, ok ? "OK" : "BREACH");
  }

  if (c.wrong.load() > 0) return 1;
  if (!slo_ok) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
