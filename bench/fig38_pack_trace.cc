// Figure 3.8 reproduction: PACK run on the US-cities map, tracing each
// recursion level. 3.8a is the raw point set, 3.8b the leaf grouping by
// nearest neighbours, 3.8c the next level of MBRs. Emits one SVG per
// level plus an ASCII rendition of the leaf level, and prints the level
// structure.

#include <cstdio>

#include "bench_util.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "viz/ascii_canvas.h"
#include "viz/svg.h"
#include "workload/us_cities.h"

namespace {

using pictdb::bench::TreeEnv;
using pictdb::geom::Point;
using pictdb::geom::Rect;

}  // namespace

int main() {
  const auto cities = pictdb::workload::ContinentalUsCities();
  const Rect frame = pictdb::workload::ContinentalUsFrame();

  std::vector<Point> pts;
  std::vector<pictdb::storage::Rid> rids;
  for (size_t i = 0; i < cities.size(); ++i) {
    pts.push_back(cities[i].loc());
    rids.push_back(pictdb::storage::Rid{
        static_cast<pictdb::storage::PageId>(i), 0});
  }

  pictdb::rtree::RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  TreeEnv env = TreeEnv::Make(opts, 256);
  PICTDB_CHECK_OK(pictdb::pack::PackNearestNeighbor(
      env.tree.get(), pictdb::pack::MakeLeafEntries(pts, rids)));

  std::printf("PACK trace over %zu US cities (branching factor 4):\n",
              pts.size());
  for (uint16_t level = 0; level < env.tree->Height(); ++level) {
    auto mbrs = env.tree->CollectNodeMbrsAtLevel(level);
    PICTDB_CHECK(mbrs.ok());
    std::printf("  level %u: %zu nodes\n", level, mbrs->size());

    pictdb::viz::SvgWriter svg(frame, 900);
    for (const Point& p : pts) svg.AddPoint(p, "black", 1.5);
    for (const Rect& r : *mbrs) svg.AddRect(r, "crimson", 1.0);
    char name[64];
    std::snprintf(name, sizeof(name), "fig38_level%u.svg", level);
    PICTDB_CHECK_OK(svg.WriteFigure(name));
  }
  std::printf("SVGs written to %s (=Fig 3.8b), %s (=Fig 3.8c), ...\n\n",
              pictdb::viz::FigurePath("fig38_level0.svg").c_str(),
              pictdb::viz::FigurePath("fig38_level1.svg").c_str());

  // ASCII view of the leaf grouping (Fig 3.8b).
  pictdb::viz::AsciiCanvas canvas(frame, 100, 30);
  auto leaves = env.tree->CollectLeafNodeMbrs();
  PICTDB_CHECK(leaves.ok());
  for (const Rect& r : *leaves) canvas.DrawRect(r);
  for (const Point& p : pts) canvas.DrawPoint(p, '*');
  std::printf("%s\n", canvas.Render().c_str());
  return 0;
}
