// Query throughput and latency vs injected transient-fault rate (0%,
// 0.1%, 1%): how much does the checksum+retry envelope cost when the
// disk misbehaves? The tree sits behind a small pool on a simulated
// disk, so misses dominate and every injected read error forces a
// backoff+retry on the miss path. Emits one JSON line per fault rate.

#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "workload/generators.h"

namespace pictdb {
namespace {

constexpr size_t kObjects = 50000;
constexpr size_t kQueries = 2048;
constexpr uint32_t kPageSize = 4096;
constexpr size_t kPoolFrames = 64;  // << leaf count: misses dominate
constexpr size_t kPoolShards = 4;
constexpr size_t kThreads = 4;
constexpr auto kReadLatency = std::chrono::microseconds(50);

struct RunResult {
  double elapsed_ms = 0;
  double qps = 0;
  double avg_latency_us = 0;
  double max_latency_us = 0;
  uint64_t hits = 0;
  uint64_t injected_errors = 0;
  uint64_t retries = 0;
};

RunResult RunAtFaultRate(double fault_rate,
                         const std::vector<geom::Point>& points,
                         const std::vector<geom::Rect>& windows) {
  storage::InMemoryDiskManager base(kPageSize);
  storage::LatencyDiskManager slow(&base, kReadLatency,
                                   std::chrono::microseconds(0));
  storage::FaultPlan plan;
  plan.seed = 0xBEEF;
  plan.transient_read_error_rate = fault_rate;
  storage::FaultInjectionDiskManager faulty(&slow, plan);
  storage::BufferPoolOptions popts;
  popts.max_read_retries = 8;
  storage::BufferPool pool(&faulty, kPoolFrames, kPoolShards, popts);

  std::vector<storage::Rid> rids;
  rids.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
  }
  auto tree = rtree::RTree::Create(&pool);
  PICTDB_CHECK(tree.ok());
  PICTDB_CHECK_OK(pack::PackNearestNeighbor(
      &tree.value(), pack::MakeLeafEntries(points, rids)));

  service::ServiceOptions sopts;
  sopts.num_threads = kThreads;
  sopts.queue_capacity = windows.size();
  service::QueryService svc(&tree.value(), nullptr, sopts);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<StatusOr<service::QueryResult>>> futures;
  futures.reserve(windows.size());
  for (const geom::Rect& w : windows) {
    auto submitted = svc.Submit(service::WindowQuery{w, false});
    PICTDB_CHECK(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted).value());
  }
  RunResult r;
  for (auto& f : futures) {
    auto outcome = f.get();
    PICTDB_CHECK(outcome.ok()) << outcome.status().ToString();
    r.hits += outcome.value().hits.size();
  }
  r.elapsed_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  svc.Shutdown();
  r.qps = static_cast<double>(windows.size()) / (r.elapsed_ms / 1000.0);
  const auto metrics = svc.Metrics();
  r.avg_latency_us = metrics.avg_latency_us();
  r.max_latency_us = static_cast<double>(metrics.max_latency_us);
  r.injected_errors = faulty.fault_stats().transient_read_errors;
  r.retries = pool.StatsSnapshot().read_retries;
  return r;
}

void Main() {
  Random rng(42);
  const std::vector<geom::Point> points =
      workload::UniformPoints(&rng, kObjects, workload::PaperFrame());
  Random qrng(7);
  std::vector<geom::Rect> windows;
  windows.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    windows.push_back(geom::Rect::FromCenterHalfExtent(
        qrng.UniformDouble(0, 1000), 10, qrng.UniformDouble(0, 1000), 10));
  }

  std::printf("[\n");
  const double rates[] = {0.0, 0.001, 0.01};
  for (size_t i = 0; i < 3; ++i) {
    const RunResult r = RunAtFaultRate(rates[i], points, windows);
    std::printf("  {\"fault_rate\": %.4f, \"queries\": %zu, "
                "\"elapsed_ms\": %.1f, \"qps\": %.1f, "
                "\"avg_latency_us\": %.1f, \"max_latency_us\": %.0f, "
                "\"hits\": %llu, \"injected_errors\": %llu, "
                "\"retries\": %llu}%s\n",
                rates[i], kQueries, r.elapsed_ms, r.qps, r.avg_latency_us,
                r.max_latency_us,
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.injected_errors),
                static_cast<unsigned long long>(r.retries),
                i + 1 < 3 ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace pictdb

int main() {
  pictdb::Main();
  return 0;
}
