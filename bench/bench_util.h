#ifndef PICTDB_BENCH_BENCH_UTIL_H_
#define PICTDB_BENCH_BENCH_UTIL_H_

#include <memory>
#include <vector>

#include "common/logging.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace pictdb::bench {

/// Self-contained R-tree environment for benchmarks: memory-backed pages
/// plus a pool large enough that eviction never perturbs measurements
/// (unless a bench wants it to).
struct TreeEnv {
  std::unique_ptr<storage::InMemoryDiskManager> disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<rtree::RTree> tree;

  static TreeEnv Make(const rtree::RTreeOptions& options,
                      uint32_t page_size = 512, size_t pool_frames = 1 << 16) {
    TreeEnv env;
    env.disk = std::make_unique<storage::InMemoryDiskManager>(page_size);
    env.pool = std::make_unique<storage::BufferPool>(env.disk.get(),
                                                     pool_frames);
    auto tree = rtree::RTree::Create(env.pool.get(), options);
    PICTDB_CHECK(tree.ok()) << tree.status().ToString();
    env.tree = std::make_unique<rtree::RTree>(std::move(tree).value());
    return env;
  }
};

/// Synthetic Rid for the i-th object (benchmarks do not need a real heap).
inline storage::Rid FakeRid(size_t i) {
  return storage::Rid{static_cast<storage::PageId>(i / 1000),
                      static_cast<uint16_t>(i % 1000)};
}

/// Leaf entries for a point set with synthetic rids.
inline std::vector<rtree::Entry> PointEntries(
    const std::vector<geom::Point>& pts) {
  std::vector<storage::Rid> rids;
  rids.reserve(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) rids.push_back(FakeRid(i));
  return pack::MakeLeafEntries(pts, rids);
}

/// Leaf entries for a rect set with synthetic rids.
inline std::vector<rtree::Entry> RectEntries(
    const std::vector<geom::Rect>& rects) {
  std::vector<storage::Rid> rids;
  rids.reserve(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) rids.push_back(FakeRid(i));
  return pack::MakeLeafEntries(rects, rids);
}

}  // namespace pictdb::bench

#endif  // PICTDB_BENCH_BENCH_UTIL_H_
