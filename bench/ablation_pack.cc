// Ablations over PACK's design choices (DESIGN.md §5):
//   (1) the "spatial criterion" that orders DLIST — ascending x (the
//       paper's example) vs ascending y vs Hilbert order;
//   (2) nearest-neighbour grouping vs plain sort-chunking at equal
//       criterion (does NN actually buy anything?);
//   (3) branching factor (the paper's 4 vs page-realistic values);
//   (4) data distribution (uniform / clustered / skewed).
// Reported: coverage, overlap, and avg nodes visited by 1% windows.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "pack/pack.h"
#include "rtree/metrics.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace {

using pictdb::Random;
using pictdb::bench::PointEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Point;
using pictdb::geom::Rect;
using pictdb::pack::PackOptions;
using pictdb::pack::SortCriterion;
using pictdb::rtree::RTreeOptions;

std::vector<Point> MakeData(int kind, size_t n) {
  Random rng(400 + kind);
  const Rect frame = pictdb::workload::PaperFrame();
  switch (kind) {
    case 0:
      return pictdb::workload::UniformPoints(&rng, n, frame);
    case 1:
      return pictdb::workload::ClusteredPoints(&rng, n, 8, 30.0, frame);
    default:
      return pictdb::workload::SkewedPoints(&rng, n, 3.0, frame);
  }
}

struct Row {
  double coverage = 0.0;
  double overlap = 0.0;
  double window_visits = 0.0;
};

Row Evaluate(const std::vector<Point>& pts, size_t branching,
             bool nn_grouping, SortCriterion criterion) {
  RTreeOptions opts;
  opts.max_entries = branching;
  TreeEnv env = TreeEnv::Make(opts, 4096);
  PackOptions pack_opts;
  pack_opts.criterion = criterion;
  if (nn_grouping) {
    PICTDB_CHECK_OK(pictdb::pack::PackNearestNeighbor(
        env.tree.get(), PointEntries(pts), pack_opts));
  } else {
    PICTDB_CHECK_OK(pictdb::pack::PackSortChunk(
        env.tree.get(), PointEntries(pts), pack_opts));
  }
  Row row;
  auto quality = pictdb::rtree::MeasureTree(*env.tree);
  PICTDB_CHECK(quality.ok());
  row.coverage = quality->coverage;
  row.overlap = quality->overlap;

  Random rng(5);
  const auto windows = pictdb::workload::RandomWindowQueries(
      &rng, 300, 0.01, pictdb::workload::PaperFrame());
  uint64_t visits = 0;
  for (const Rect& w : windows) {
    pictdb::rtree::SearchStats stats;
    PICTDB_CHECK_OK(env.tree->SearchIntersects(w, &stats).status());
    visits += stats.nodes_visited;
  }
  row.window_visits = static_cast<double>(visits) / windows.size();
  return row;
}

}  // namespace

int main() {
  constexpr size_t kN = 20000;
  const char* data_names[] = {"uniform", "clustered", "skewed"};
  const char* criterion_names[] = {"asc-x", "asc-y", "hilbert"};

  std::printf("(1)+(2): grouping x ordering criterion, n=%zu, branching "
              "from page size\n\n", kN);
  std::printf("%-10s %-8s %-9s %10s %10s %10s\n", "data", "group",
              "criterion", "coverage", "overlap", "win-nodes");
  for (int data = 0; data < 3; ++data) {
    const auto pts = MakeData(data, kN);
    for (const bool nn : {true, false}) {
      for (int crit = 0; crit < 3; ++crit) {
        const Row row =
            Evaluate(pts, 0, nn, static_cast<SortCriterion>(crit));
        std::printf("%-10s %-8s %-9s %10.0f %10.1f %10.2f\n",
                    data_names[data], nn ? "nn" : "chunk",
                    criterion_names[crit], row.coverage, row.overlap,
                    row.window_visits);
      }
    }
  }

  std::printf("\n(3): branching factor sweep (uniform data, NN grouping, "
              "asc-x)\n\n");
  std::printf("%-10s %10s %10s %10s\n", "branching", "coverage", "overlap",
              "win-nodes");
  const auto pts = MakeData(0, kN);
  for (const size_t branching : {4u, 8u, 16u, 50u, 101u}) {
    const Row row = Evaluate(pts, branching, true,
                             SortCriterion::kAscendingX);
    std::printf("%-10zu %10.0f %10.1f %10.2f\n", branching, row.coverage,
                row.overlap, row.window_visits);
  }

  std::printf(
      "\nReading: plain x/y chunking minimizes coverage and overlap but "
      "produces strip-\nshaped leaves that answer window queries poorly "
      "(2-3x the node visits). PACK's\nNN grouping builds compact leaves "
      "and wins window search under the same x\nordering — the paper's "
      "design choice pays off for its target query. Hilbert-\nordered "
      "chunking reaches similar window cost without the NN machinery "
      "(the\ninsight behind the later Hilbert-packed R-trees). Larger "
      "branching factors cut\nnode visits roughly linearly until leaf "
      "scans dominate.\n");
  return 0;
}
