// google-benchmark microbenchmarks: construction cost per builder. The
// paper remarks that choosing groups by simultaneous MBR minimization
// "could be combinatorially explosive" — these numbers show what the
// practical loaders cost instead (NN packing with the grid accelerator is
// near-linear; sort-based loaders are n log n; dynamic INSERT pays per
// object).
//
// `build_micro --json [objects] [--budget-mb=N]` bypasses google-benchmark
// and runs the out-of-core loader end to end: a streaming point source is
// external-sorted under an N-MiB budget (default 64), spill runs are
// merged straight into packed leaves on a file-backed tree, and a single
// JSON object reports spill/merge stats, wall clock, peak RSS, and the
// TreeValidator verdict. CI's bulk-load-scale job parses this dump.

#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "bench_util.h"
#include "check/invariants.h"
#include "common/random.h"
#include "pack/external.h"
#include "pack/hilbert.h"
#include "pack/pack.h"
#include "pack/str.h"
#include "workload/generators.h"

namespace {

using pictdb::Random;
using pictdb::bench::FakeRid;
using pictdb::bench::PointEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Rect;

std::vector<pictdb::geom::Point> Points(size_t n) {
  Random rng(9000 + n);
  return pictdb::workload::UniformPoints(&rng, n,
                                         pictdb::workload::PaperFrame());
}

void BM_BuildInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = Points(n);
  for (auto _ : state) {
    TreeEnv env = TreeEnv::Make({}, 4096);
    for (size_t i = 0; i < pts.size(); ++i) {
      PICTDB_CHECK_OK(env.tree->Insert(Rect::FromPoint(pts[i]), FakeRid(i)));
    }
    benchmark::DoNotOptimize(env.tree->Size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

template <pictdb::Status (*Loader)(pictdb::rtree::RTree*,
                                   std::vector<pictdb::rtree::Entry>)>
void BM_BuildBulk(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = Points(n);
  for (auto _ : state) {
    TreeEnv env = TreeEnv::Make({}, 4096);
    PICTDB_CHECK_OK(Loader(env.tree.get(), PointEntries(pts)));
    benchmark::DoNotOptimize(env.tree->Size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

pictdb::Status LoadNN(pictdb::rtree::RTree* tree,
                      std::vector<pictdb::rtree::Entry> items) {
  return pictdb::pack::PackNearestNeighbor(tree, std::move(items));
}
pictdb::Status LoadLowX(pictdb::rtree::RTree* tree,
                        std::vector<pictdb::rtree::Entry> items) {
  return pictdb::pack::PackSortChunk(tree, std::move(items));
}
pictdb::Status LoadStr(pictdb::rtree::RTree* tree,
                       std::vector<pictdb::rtree::Entry> items) {
  return pictdb::pack::PackStr(tree, std::move(items));
}
pictdb::Status LoadHilbert(pictdb::rtree::RTree* tree,
                           std::vector<pictdb::rtree::Entry> items) {
  return pictdb::pack::PackHilbert(tree, std::move(items));
}

BENCHMARK(BM_BuildInsert)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBulk<LoadNN>)->Name("BM_BuildPackNN")
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBulk<LoadLowX>)->Name("BM_BuildLowX")
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBulk<LoadStr>)->Name("BM_BuildSTR")
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBulk<LoadHilbert>)->Name("BM_BuildHilbert")
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);

// --- `--json` mode: out-of-core bulk load at scale ------------------------

/// Streaming leaf-entry generator: uniform points in the paper frame,
/// never materialized as a vector — holding the full entry list would
/// defeat the point of measuring the bounded-memory path. Rewind
/// re-seeds the generator, so every pass yields the same stream (the
/// Hilbert pre-pass and any retry see identical data).
class UniformPointSource final : public pictdb::pack::EntrySource {
 public:
  UniformPointSource(uint64_t seed, size_t n)
      : seed_(seed), n_(n), rng_(seed) {}

  pictdb::StatusOr<bool> Next(pictdb::rtree::Entry* out) override {
    if (emitted_ == n_) return false;
    const double x = rng_.UniformDouble(0.0, 1000.0);
    const double y = rng_.UniformDouble(0.0, 1000.0);
    out->mbr = Rect::FromPoint({x, y});
    out->payload = pictdb::rtree::Entry::PayloadFromRid(FakeRid(emitted_));
    ++emitted_;
    return true;
  }

  pictdb::Status Rewind() override {
    rng_ = Random(seed_);
    emitted_ = 0;
    return pictdb::Status::OK();
  }

 private:
  uint64_t seed_;
  size_t n_;
  Random rng_;
  size_t emitted_ = 0;
};

/// Peak resident set of this process in bytes (Linux reports KiB).
int64_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

std::string ScratchDir() {
  const char* tmp = std::getenv("TMPDIR");
  return tmp != nullptr && *tmp != '\0' ? std::string(tmp) : std::string("/tmp");
}

int RunJsonMode(size_t objects, size_t budget_mb) {
  const std::string dir = ScratchDir();
  const std::string tree_path =
      dir + "/pictdb-build-micro-" + std::to_string(::getpid()) + ".tree";

  int exit_code = 0;
  {
    auto disk = pictdb::storage::FileDiskManager::Open(tree_path, 4096,
                                                       /*truncate=*/true);
    PICTDB_CHECK(disk.ok()) << disk.status().ToString();
    // A small pool (8 MiB) on purpose: leaf pages are written once and
    // never revisited, so the build must not depend on pool capacity.
    pictdb::storage::BufferPool pool(disk->get(), 2048);
    auto created = pictdb::rtree::RTree::Create(&pool, {});
    PICTDB_CHECK(created.ok()) << created.status().ToString();
    pictdb::rtree::RTree tree = std::move(created).value();

    UniformPointSource source(/*seed=*/1985, objects);
    pictdb::pack::PackOptions options;
    options.strategy = pictdb::pack::PackStrategy::kSortChunk;
    options.criterion = pictdb::pack::SortCriterion::kAscendingX;
    options.memory_budget_bytes = budget_mb << 20;
    options.spill_dir = dir;
    pictdb::pack::ExternalPackStats stats;

    const auto start = std::chrono::steady_clock::now();
    const pictdb::Status status =
        pictdb::pack::PackExternal(&tree, &source, options, &stats);
    const double build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    PICTDB_CHECK(status.ok()) << status.ToString();

    const pictdb::check::ValidationReport report =
        pictdb::check::TreeValidator().Check(tree);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.ToString().c_str());
      exit_code = 1;
    }

    const int64_t peak_rss = PeakRssBytes();
    std::printf(
        "{\n"
        "  \"objects\": %zu,\n"
        "  \"budget_bytes\": %zu,\n"
        "  \"run_capacity_entries\": %llu,\n"
        "  \"spill_runs\": %llu,\n"
        "  \"merge_passes\": %llu,\n"
        "  \"spill_pages_written\": %llu,\n"
        "  \"spill_pages_read\": %llu,\n"
        "  \"tree_size\": %llu,\n"
        "  \"tree_height\": %u,\n"
        "  \"build_seconds\": %.3f,\n"
        "  \"objects_per_second\": %.1f,\n"
        "  \"peak_rss_bytes\": %lld,\n"
        "  \"peak_rss_mib\": %.1f,\n"
        "  \"validator_ok\": %s\n"
        "}\n",
        objects, static_cast<size_t>(budget_mb << 20),
        static_cast<unsigned long long>(stats.run_capacity_entries),
        static_cast<unsigned long long>(stats.spill_runs),
        static_cast<unsigned long long>(stats.merge_passes),
        static_cast<unsigned long long>(stats.spill_pages_written),
        static_cast<unsigned long long>(stats.spill_pages_read),
        static_cast<unsigned long long>(tree.Size()),
        tree.Height(), build_seconds,
        static_cast<double>(objects) / build_seconds,
        static_cast<long long>(peak_rss),
        static_cast<double>(peak_rss) / (1024.0 * 1024.0),
        report.ok() ? "true" : "false");
  }
  std::remove(tree_path.c_str());
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  size_t objects = 2000000;
  size_t budget_mb = 64;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.starts_with("--budget-mb=")) {
      budget_mb = static_cast<size_t>(
          std::strtoull(arg.substr(12).data(), nullptr, 10));
    } else if (json && !arg.starts_with("--")) {
      objects = static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
    }
  }
  if (json) return RunJsonMode(objects, budget_mb);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
