// google-benchmark microbenchmarks: construction cost per builder. The
// paper remarks that choosing groups by simultaneous MBR minimization
// "could be combinatorially explosive" — these numbers show what the
// practical loaders cost instead (NN packing with the grid accelerator is
// near-linear; sort-based loaders are n log n; dynamic INSERT pays per
// object).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "pack/hilbert.h"
#include "pack/pack.h"
#include "pack/str.h"
#include "workload/generators.h"

namespace {

using pictdb::Random;
using pictdb::bench::FakeRid;
using pictdb::bench::PointEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Rect;

std::vector<pictdb::geom::Point> Points(size_t n) {
  Random rng(9000 + n);
  return pictdb::workload::UniformPoints(&rng, n,
                                         pictdb::workload::PaperFrame());
}

void BM_BuildInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = Points(n);
  for (auto _ : state) {
    TreeEnv env = TreeEnv::Make({}, 4096);
    for (size_t i = 0; i < pts.size(); ++i) {
      PICTDB_CHECK_OK(env.tree->Insert(Rect::FromPoint(pts[i]), FakeRid(i)));
    }
    benchmark::DoNotOptimize(env.tree->Size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

template <pictdb::Status (*Loader)(pictdb::rtree::RTree*,
                                   std::vector<pictdb::rtree::Entry>)>
void BM_BuildBulk(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = Points(n);
  for (auto _ : state) {
    TreeEnv env = TreeEnv::Make({}, 4096);
    PICTDB_CHECK_OK(Loader(env.tree.get(), PointEntries(pts)));
    benchmark::DoNotOptimize(env.tree->Size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

pictdb::Status LoadNN(pictdb::rtree::RTree* tree,
                      std::vector<pictdb::rtree::Entry> items) {
  return pictdb::pack::PackNearestNeighbor(tree, std::move(items));
}
pictdb::Status LoadLowX(pictdb::rtree::RTree* tree,
                        std::vector<pictdb::rtree::Entry> items) {
  return pictdb::pack::PackSortChunk(tree, std::move(items));
}
pictdb::Status LoadStr(pictdb::rtree::RTree* tree,
                       std::vector<pictdb::rtree::Entry> items) {
  return pictdb::pack::PackStr(tree, std::move(items));
}
pictdb::Status LoadHilbert(pictdb::rtree::RTree* tree,
                           std::vector<pictdb::rtree::Entry> items) {
  return pictdb::pack::PackHilbert(tree, std::move(items));
}

BENCHMARK(BM_BuildInsert)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBulk<LoadNN>)->Name("BM_BuildPackNN")
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBulk<LoadLowX>)->Name("BM_BuildLowX")
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBulk<LoadStr>)->Name("BM_BuildSTR")
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBulk<LoadHilbert>)->Name("BM_BuildHilbert")
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
