// Figure 3.3 reproduction: "Answering the query 'List all cities within
// region W' may require substantially more searching than is tolerable,
// because region W intersects all the root entries and the search cannot
// yet be pruned."
//
// We construct a tree whose root entries all overlap the middle of the
// picture (by bulk-building a deliberately bad grouping), put window W
// there, and compare against the PACKed tree over the same data.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "pack/pack.h"
#include "workload/generators.h"

namespace {

using pictdb::Random;
using pictdb::bench::PointEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Point;
using pictdb::geom::Rect;
using pictdb::rtree::Entry;

}  // namespace

int main() {
  Random rng(33);
  const Rect frame = pictdb::workload::PaperFrame();
  const auto pts = pictdb::workload::UniformPoints(&rng, 1024, frame);

  pictdb::rtree::RTreeOptions opts;
  opts.max_entries = 4;
  opts.min_entries = 2;

  // Bad tree: group entries round-robin so every node at every level
  // draws members from all over the picture — every MBR spans the whole
  // frame, which is exactly the root-overlap pathology of Fig 3.3.
  TreeEnv bad = TreeEnv::Make(opts, 256);
  PICTDB_CHECK_OK(pictdb::pack::BulkLoad(
      bad.tree.get(), PointEntries(pts),
      [](const std::vector<Entry>& items, size_t max) {
        const size_t groups_count = (items.size() + max - 1) / max;
        std::vector<std::vector<Entry>> groups(groups_count);
        for (size_t i = 0; i < items.size(); ++i) {
          groups[i % groups_count].push_back(items[i]);
        }
        return groups;
      }));

  TreeEnv good = TreeEnv::Make(opts, 256);
  PICTDB_CHECK_OK(
      pictdb::pack::PackNearestNeighbor(good.tree.get(), PointEntries(pts)));

  const Rect window = Rect::FromCenterHalfExtent(500, 50, 500, 50);
  pictdb::rtree::SearchStats bad_stats, good_stats;
  auto bad_hits = bad.tree->SearchIntersects(window, &bad_stats);
  auto good_hits = good.tree->SearchIntersects(window, &good_stats);
  PICTDB_CHECK(bad_hits.ok() && good_hits.ok());
  PICTDB_CHECK(bad_hits->size() == good_hits->size());

  auto bad_nodes = bad.tree->CountNodes();
  auto good_nodes = good.tree->CountNodes();
  PICTDB_CHECK(bad_nodes.ok() && good_nodes.ok());

  std::printf("query window W = %s, %zu qualifying cities\n\n",
              pictdb::geom::ToString(window).c_str(), bad_hits->size());
  std::printf("%-28s %12s %12s %14s\n", "tree", "total nodes",
              "visited", "entries tested");
  std::printf("%-28s %12llu %12llu %14llu\n",
              "overlapping root (Fig 3.3)",
              static_cast<unsigned long long>(*bad_nodes),
              static_cast<unsigned long long>(bad_stats.nodes_visited),
              static_cast<unsigned long long>(bad_stats.entries_tested));
  std::printf("%-28s %12llu %12llu %14llu\n", "PACKed tree",
              static_cast<unsigned long long>(*good_nodes),
              static_cast<unsigned long long>(good_stats.nodes_visited),
              static_cast<unsigned long long>(good_stats.nodes_visited
                                                  ? good_stats.entries_tested
                                                  : 0));

  PICTDB_CHECK(bad_stats.nodes_visited > 10 * good_stats.nodes_visited);
  std::printf(
      "\nWith every root/internal MBR overlapping W the search visits "
      "essentially the\nwhole tree (%llu of %llu nodes); the packed tree "
      "prunes all but %llu. This is\nwhy coverage and overlap are the "
      "paper's quality measures.\n",
      static_cast<unsigned long long>(bad_stats.nodes_visited),
      static_cast<unsigned long long>(*bad_nodes),
      static_cast<unsigned long long>(good_stats.nodes_visited));
  return 0;
}
