// Juxtaposition ("geographic join", §2.2) benchmark: simultaneous R-tree
// traversal vs the nested-loop baseline, swept over input sizes, plus the
// PSQL-level cities × time-zones join from the paper.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "pack/pack.h"
#include "pack/str.h"
#include "psql/executor.h"
#include "rel/catalog.h"
#include "rtree/join.h"
#include "workload/generators.h"
#include "workload/us_catalog.h"

namespace {

using pictdb::Random;
using pictdb::bench::RectEntries;
using pictdb::bench::TreeEnv;
using pictdb::geom::Rect;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("R-tree spatial join vs nested loop (rect objects, ~2%% "
              "pairwise intersection)\n\n");
  std::printf("%8s %8s | %12s %12s %10s | %12s %12s\n", "|L|", "|R|",
              "join-pairs", "tree-tested", "tree-ms", "nested-test",
              "nested-ms");

  for (const size_t n : {500u, 2000u, 8000u}) {
    Random rng(42 + n);
    const auto frame = pictdb::workload::PaperFrame();
    auto make_rects = [&rng, &frame](size_t count) {
      std::vector<Rect> out;
      for (size_t i = 0; i < count; ++i) {
        const double x = rng.UniformDouble(frame.lo.x, frame.hi.x - 15);
        const double y = rng.UniformDouble(frame.lo.y, frame.hi.y - 15);
        out.push_back(Rect(x, y, x + rng.UniformDouble(1, 15),
                           y + rng.UniformDouble(1, 15)));
      }
      return out;
    };
    const auto lhs = make_rects(n);
    const auto rhs = make_rects(n);

    pictdb::rtree::RTreeOptions opts;  // page-derived branching
    TreeEnv left = TreeEnv::Make(opts, 4096);
    TreeEnv right = TreeEnv::Make(opts, 4096);
    PICTDB_CHECK_OK(
        pictdb::pack::PackStr(left.tree.get(), RectEntries(lhs)));
    PICTDB_CHECK_OK(
        pictdb::pack::PackStr(right.tree.get(), RectEntries(rhs)));

    size_t tree_results = 0;
    pictdb::rtree::JoinStats tree_stats;
    auto start = std::chrono::steady_clock::now();
    PICTDB_CHECK_OK(pictdb::rtree::SpatialJoin(
        *left.tree, *right.tree,
        [&tree_results](const auto&, const auto&) { ++tree_results; },
        &tree_stats));
    const double tree_ms = MsSince(start);

    size_t nested_results = 0;
    pictdb::rtree::JoinStats nested_stats;
    start = std::chrono::steady_clock::now();
    PICTDB_CHECK_OK(pictdb::rtree::NestedLoopJoin(
        *left.tree, *right.tree,
        [&nested_results](const auto&, const auto&) { ++nested_results; },
        &nested_stats));
    const double nested_ms = MsSince(start);

    PICTDB_CHECK(tree_results == nested_results);
    std::printf("%8zu %8zu | %12zu %12llu %10.2f | %12llu %12.2f\n", n, n,
                tree_results,
                static_cast<unsigned long long>(tree_stats.pairs_tested),
                tree_ms,
                static_cast<unsigned long long>(nested_stats.pairs_tested),
                nested_ms);
  }

  // The paper's PSQL-level juxtaposition.
  std::printf("\nPSQL juxtaposition (cities x time-zones, §2.2):\n");
  pictdb::storage::InMemoryDiskManager disk(1024);
  pictdb::storage::BufferPool pool(&disk, 1 << 14);
  pictdb::rel::Catalog catalog(&pool);
  PICTDB_CHECK_OK(pictdb::workload::BuildUsCatalog(&catalog));
  pictdb::psql::Executor exec(&catalog);
  const auto start = std::chrono::steady_clock::now();
  auto result = exec.Query(
      "select city,zone from cities,time-zones on us-map,time-zone-map "
      "at cities.loc covered-by time-zones.loc");
  PICTDB_CHECK(result.ok());
  std::printf("  %llu rows in %.2f ms via simultaneous traversal "
              "(%llu R-tree nodes touched)\n",
              static_cast<unsigned long long>(result->stats.rows_emitted),
              MsSince(start),
              static_cast<unsigned long long>(
                  result->stats.rtree_nodes_visited));
  return 0;
}
