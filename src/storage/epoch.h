#ifndef PICTDB_STORAGE_EPOCH_H_
#define PICTDB_STORAGE_EPOCH_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>

namespace pictdb::storage {

/// Epoch-based deferred reclamation for pages unlinked from a live tree
/// while readers may still be traversing toward them.
///
/// Readers bracket each traversal with Enter(); the returned guard parks
/// the epoch observed at entry in a slot. A writer that unlinks a page
/// calls Advance() and records the returned epoch with the page; the
/// page may be physically freed once MinActive() exceeds that epoch —
/// every reader that could still hold a stale reference to it has left.
///
/// All operations are seq_cst atomics: the writer's "no active reader"
/// check and a reader's slot claim must be totally ordered against the
/// writer's structure update, otherwise a reader could claim its slot
/// after the check yet still observe the pre-unlink structure.
class EpochGate {
 public:
  static constexpr size_t kSlots = 64;

  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(EpochGate* gate, size_t slot) : gate_(gate), slot_(slot) {}
    ~ReadGuard() { Release(); }

    ReadGuard(ReadGuard&& other) noexcept
        : gate_(other.gate_), slot_(other.slot_) {
      other.gate_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = other.gate_;
        slot_ = other.slot_;
        other.gate_ = nullptr;
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    void Release() {
      if (gate_ != nullptr) {
        gate_->slots_[slot_].store(0);
        gate_ = nullptr;
      }
    }

   private:
    EpochGate* gate_ = nullptr;
    size_t slot_ = 0;
  };

  /// Pin the current epoch; blocks reclamation of anything retired at or
  /// after it until the guard is released. Spins only if every slot is
  /// taken (more than kSlots simultaneous readers).
  ReadGuard Enter() {
    for (;;) {
      const uint64_t epoch = global_.load();
      for (size_t i = 0; i < kSlots; ++i) {
        uint64_t expected = 0;
        if (slots_[i].compare_exchange_strong(expected, epoch)) {
          return ReadGuard(this, i);
        }
      }
    }
  }

  /// Bump the global epoch; returns the new value. A page unlinked just
  /// before this call is safe to free once MinActive() > returned value.
  uint64_t Advance() { return global_.fetch_add(1) + 1; }

  /// Smallest epoch pinned by an active reader; max() when idle.
  uint64_t MinActive() const {
    uint64_t min = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < kSlots; ++i) {
      const uint64_t e = slots_[i].load();
      if (e != 0 && e < min) min = e;
    }
    return min;
  }

 private:
  std::atomic<uint64_t> global_{1};
  std::array<std::atomic<uint64_t>, kSlots> slots_{};
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_EPOCH_H_
