#ifndef PICTDB_STORAGE_FAULT_INJECTION_H_
#define PICTDB_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <unordered_set>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pictdb::storage {

/// What to inject, and how often. Rates are per-operation probabilities
/// drawn from a PRNG seeded with `seed`, so a single-threaded workload
/// reproduces the exact same fault sequence on every run.
struct FaultPlan {
  uint64_t seed = 0x0f417u;

  /// ReadPage fails with IOError before touching the medium; the data is
  /// intact, so a retry succeeds (unless it rolls a fault again).
  double transient_read_error_rate = 0.0;

  /// WritePage fails with IOError before touching the medium.
  double transient_write_error_rate = 0.0;

  /// ReadPage succeeds but one random bit of the returned buffer is
  /// flipped — transient corruption (bus glitch); the medium is intact.
  double read_bit_flip_rate = 0.0;

  /// WritePage reports success but persists only a random prefix of the
  /// page, leaving the tail at its previous content — the classic torn
  /// write. Detected later by the page checksum, not at write time.
  double torn_write_rate = 0.0;
};

/// Plain-value image of the fault counters.
struct FaultStatsSnapshot {
  uint64_t transient_read_errors = 0;
  uint64_t transient_write_errors = 0;
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;
  uint64_t permanent_read_errors = 0;
};

/// Decorator that injects disk faults per a FaultPlan. Composes with the
/// other decorators — e.g. FaultInjectionDiskManager over
/// LatencyDiskManager over InMemoryDiskManager models a slow, flaky
/// disk. Thread-safe; the PRNG is guarded by a mutex.
class FaultInjectionDiskManager final : public DiskManager {
 public:
  FaultInjectionDiskManager(DiskManager* base, const FaultPlan& plan);

  uint32_t page_size() const override { return base_->page_size(); }
  PageId page_count() const override { return base_->page_count(); }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  PageId AllocatePage() override;
  void DeallocatePage(PageId id) override;
  Status Sync() override { return base_->Sync(); }

  /// Mark `id` permanently unreadable: every ReadPage fails with
  /// DataLoss, modelling a dead sector. Retries cannot absorb it.
  void AddPermanentReadFault(PageId id) EXCLUDES(mu_);

  /// Stop injecting everything (permanent faults included) — "repair the
  /// disk" so recovery paths can be exercised after a fault episode.
  void ClearFaults() EXCLUDES(mu_);

  /// Replace the plan's rates and re-arm the injector. The PRNG keeps
  /// its stream (it is part of the reproducible fault sequence), so a
  /// ClearFaults / SetPlan cycle replays deterministically.
  void SetPlan(const FaultPlan& plan) EXCLUDES(mu_);

  FaultStatsSnapshot fault_stats() const {
    FaultStatsSnapshot s;
    s.transient_read_errors =
        transient_read_errors_.load(std::memory_order_relaxed);
    s.transient_write_errors =
        transient_write_errors_.load(std::memory_order_relaxed);
    s.bit_flips = bit_flips_.load(std::memory_order_relaxed);
    s.torn_writes = torn_writes_.load(std::memory_order_relaxed);
    s.permanent_read_errors =
        permanent_read_errors_.load(std::memory_order_relaxed);
    return s;
  }

  DiskManager* base() const { return base_; }

 private:
  /// Draw one Bernoulli against the plan rate named by `rate`, reading
  /// the plan and the PRNG under the mutex (a raw double parameter
  /// would force callers to read `plan_` unlocked, racing SetPlan).
  bool Roll(double FaultPlan::*rate) EXCLUDES(mu_);
  uint64_t RollUniform(uint64_t n) EXCLUDES(mu_);

  DiskManager* base_;
  mutable Mutex mu_;
  FaultPlan plan_ GUARDED_BY(mu_);
  Random rng_ GUARDED_BY(mu_);
  bool armed_ GUARDED_BY(mu_) = true;
  std::unordered_set<PageId> permanent_read_faults_ GUARDED_BY(mu_);

  std::atomic<uint64_t> transient_read_errors_{0};
  std::atomic<uint64_t> transient_write_errors_{0};
  std::atomic<uint64_t> bit_flips_{0};
  std::atomic<uint64_t> torn_writes_{0};
  std::atomic<uint64_t> permanent_read_errors_{0};
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_FAULT_INJECTION_H_
