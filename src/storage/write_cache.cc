#include "storage/write_cache.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace pictdb::storage {

Status WriteCacheDiskManager::ReadPage(PageId id, char* out) {
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      std::memcpy(out, it->second.get(), page_size());
      stats_.reads.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return base_->ReadPage(id, out);
}

Status WriteCacheDiskManager::WritePage(PageId id, const char* data) {
  MutexLock lock(&mu_);
  auto it = cache_.find(id);
  if (it == cache_.end()) {
    it = cache_.emplace(id, std::make_unique<char[]>(page_size())).first;
  }
  std::memcpy(it->second.get(), data, page_size());
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void WriteCacheDiskManager::DeallocatePage(PageId id) {
  {
    MutexLock lock(&mu_);
    cache_.erase(id);
  }
  base_->DeallocatePage(id);
}

Status WriteCacheDiskManager::Sync() {
  MutexLock lock(&mu_);
  // Page-id order keeps fault injection below this layer deterministic
  // for a given seed (unordered_map iteration order is not).
  std::vector<PageId> ids;
  ids.reserve(cache_.size());
  for (const auto& [id, data] : cache_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const PageId id : ids) {
    const char* data = cache_.find(id)->second.get();
    Status written = Status::OK();
    // Bounded retry of transient base errors: callers treat a failed
    // barrier as a failed commit, so absorbing injector noise here
    // mirrors the buffer pool's own retry envelope.
    for (int attempt = 0; attempt < 8; ++attempt) {
      written = base_->WritePage(id, data);
      if (written.ok() || !written.IsIOError()) break;
    }
    if (!written.ok()) return written;
    cache_.erase(id);
    ++cache_stats_.flushed_pages;
  }
  ++cache_stats_.syncs;
  return base_->Sync();
}

void WriteCacheDiskManager::DropUnsynced() {
  MutexLock lock(&mu_);
  cache_stats_.dropped_pages += cache_.size();
  cache_.clear();
}

size_t WriteCacheDiskManager::unsynced_pages() const {
  MutexLock lock(&mu_);
  return cache_.size();
}

WriteCacheStatsSnapshot WriteCacheDiskManager::cache_stats() const {
  MutexLock lock(&mu_);
  return cache_stats_;
}

}  // namespace pictdb::storage
