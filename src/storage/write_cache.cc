#include "storage/write_cache.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace pictdb::storage {

Status WriteCacheDiskManager::ReadPage(PageId id, char* out) {
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      std::memcpy(out, it->second.get(), page_size());
      stats_.reads.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return base_->ReadPage(id, out);
}

Status WriteCacheDiskManager::WritePage(PageId id, const char* data) {
  MutexLock lock(&mu_);
  auto it = cache_.find(id);
  if (it == cache_.end()) {
    it = cache_.emplace(id, std::make_unique<char[]>(page_size())).first;
  }
  std::memcpy(it->second.get(), data, page_size());
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void WriteCacheDiskManager::DeallocatePage(PageId id) {
  {
    MutexLock lock(&mu_);
    cache_.erase(id);
  }
  base_->DeallocatePage(id);
}

Status WriteCacheDiskManager::Sync() {
  // Snapshot the dirty page ids under mu_, then flush without holding
  // it across base I/O: the sibling decorators (fault injection,
  // latency) drop their latch before delegating, and holding mu_ for
  // the whole barrier would both stall concurrent readers/writers and
  // nest this latch under the base manager's. The barrier covers every
  // write completed before Sync() was entered; writes that race with
  // the flush stay cached for the next barrier (erase-if-unchanged
  // below). A page deallocated mid-flight may get its stale bytes
  // written to the freed base slot — benign, since freed pages keep
  // their storage and allocation never trusts old content.
  const uint32_t ps = page_size();
  std::vector<PageId> ids;
  {
    MutexLock lock(&mu_);
    ids.reserve(cache_.size());
    for (const auto& [id, data] : cache_) ids.push_back(id);
  }
  // Page-id order keeps fault injection below this layer deterministic
  // for a given seed (unordered_map iteration order is not).
  std::sort(ids.begin(), ids.end());
  std::vector<char> shadow(ps);
  for (const PageId id : ids) {
    {
      MutexLock lock(&mu_);
      auto it = cache_.find(id);
      if (it == cache_.end()) continue;  // deallocated since the snapshot
      std::memcpy(shadow.data(), it->second.get(), ps);
    }
    if (flush_hook_) flush_hook_(id);
    Status written = Status::OK();
    // Bounded retry of transient base errors: callers treat a failed
    // barrier as a failed commit, so absorbing injector noise here
    // mirrors the buffer pool's own retry envelope.
    for (int attempt = 0; attempt < 8; ++attempt) {
      written = base_->WritePage(id, shadow.data());
      if (written.ok() || !written.IsIOError()) break;
    }
    if (!written.ok()) return written;
    MutexLock lock(&mu_);
    auto it = cache_.find(id);
    if (it != cache_.end() &&
        std::memcmp(it->second.get(), shadow.data(), ps) == 0) {
      cache_.erase(it);
    }
    ++cache_stats_.flushed_pages;
  }
  {
    MutexLock lock(&mu_);
    ++cache_stats_.syncs;
  }
  return base_->Sync();
}

void WriteCacheDiskManager::DropUnsynced() {
  MutexLock lock(&mu_);
  cache_stats_.dropped_pages += cache_.size();
  cache_.clear();
}

size_t WriteCacheDiskManager::unsynced_pages() const {
  MutexLock lock(&mu_);
  return cache_.size();
}

WriteCacheStatsSnapshot WriteCacheDiskManager::cache_stats() const {
  MutexLock lock(&mu_);
  return cache_stats_;
}

}  // namespace pictdb::storage
