#include "storage/spill_file.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace pictdb::storage {
namespace {

// Bounded retry for spill I/O, mirroring the buffer pool's policy:
// transient IOErrors (fault-injected or real) are retried with
// exponential backoff; CRC failures are retried too, since a bit flip
// on the wire can be transient while the medium still holds good bytes.
constexpr int kSpillIoAttempts = 6;
constexpr auto kSpillBackoffBase = std::chrono::microseconds(50);

void BackoffSleep(int attempt) {
  std::this_thread::sleep_for(kSpillBackoffBase * (1 << attempt));
}

constexpr uint32_t kSpillPageHeaderSize = 8;  // u32 record count + u32 pad

}  // namespace

uint32_t SpillRecordsPerPage(uint32_t page_size, uint32_t record_size) {
  PICTDB_CHECK(record_size > 0);
  PICTDB_CHECK(page_size > kSpillPageHeaderSize + kPageTrailerSize);
  return (page_size - kSpillPageHeaderSize - kPageTrailerSize) / record_size;
}

std::atomic<uint64_t> SpillFileManager::counter_{0};

SpillFile::~SpillFile() {
  // Drop the stdio handle before unlinking so the bytes are not pinned
  // by an open FILE on platforms where that matters.
  wrapper_.reset();
  base_.reset();
  std::remove(path_.c_str());
}

StatusOr<std::unique_ptr<SpillFile>> SpillFileManager::Create() {
  const uint64_t seq = counter_.fetch_add(1, std::memory_order_relaxed);
  std::string path = dir_ + "/pictdb-spill-" +
                     std::to_string(static_cast<long>(::getpid())) + "-" +
                     std::to_string(seq) + ".tmp";
  PICTDB_ASSIGN_OR_RETURN(auto base,
                          FileDiskManager::Open(path, page_size_,
                                                /*truncate=*/true));
  std::unique_ptr<DiskManager> wrapper;
  if (wrap_) wrapper = wrap_(base.get());
  return std::unique_ptr<SpillFile>(
      new SpillFile(std::move(path), std::move(base), std::move(wrapper)));
}

SpillRunWriter::SpillRunWriter(SpillFile* file, uint32_t record_size)
    : file_(file),
      record_size_(record_size),
      per_page_(SpillRecordsPerPage(file->page_size(), record_size)),
      page_(file->page_size(), 0) {
  PICTDB_CHECK(per_page_ > 0);
}

Status SpillRunWriter::FlushPage() {
  PICTDB_CHECK(in_page_ > 0);
  std::memcpy(page_.data(), &in_page_, sizeof(in_page_));
  StampPageTrailer(page_.data(), file_->page_size());
  const PageId id = file_->disk()->AllocatePage();
  if (run_.first_page == kInvalidPageId) {
    run_.first_page = id;
  } else {
    // Runs rely on contiguity: exactly one writer appends at a time, so
    // freshly allocated pages extend the current run.
    PICTDB_CHECK(id == run_.first_page + run_.page_count);
  }
  Status status;
  for (int attempt = 0; attempt < kSpillIoAttempts; ++attempt) {
    status = file_->disk()->WritePage(id, page_.data());
    if (status.ok()) break;
    if (attempt + 1 < kSpillIoAttempts) BackoffSleep(attempt);
  }
  PICTDB_RETURN_IF_ERROR(status);
  ++run_.page_count;
  ++pages_written_;
  std::memset(page_.data(), 0, page_.size());
  in_page_ = 0;
  return Status::OK();
}

Status SpillRunWriter::Append(const char* record) {
  PICTDB_CHECK(!finished_);
  std::memcpy(page_.data() + kSpillPageHeaderSize +
                  static_cast<size_t>(in_page_) * record_size_,
              record, record_size_);
  ++in_page_;
  ++run_.records;
  if (in_page_ == per_page_) return FlushPage();
  return Status::OK();
}

StatusOr<SpillRunHandle> SpillRunWriter::Finish() {
  PICTDB_CHECK(!finished_);
  finished_ = true;
  if (in_page_ > 0) PICTDB_RETURN_IF_ERROR(FlushPage());
  // Run boundary = durability barrier: merge readers must never observe
  // a run whose tail still sits in a write buffer.
  PICTDB_RETURN_IF_ERROR(file_->disk()->Sync());
  return run_;
}

SpillRunReader::SpillRunReader(SpillFile* file, const SpillRunHandle& run,
                               uint32_t record_size)
    : file_(file),
      run_(run),
      record_size_(record_size),
      per_page_(SpillRecordsPerPage(file->page_size(), record_size)),
      page_(file->page_size(), 0) {}

Status SpillRunReader::LoadPage(PageId id) {
  Status status;
  for (int attempt = 0; attempt < kSpillIoAttempts; ++attempt) {
    status = file_->disk()->ReadPage(id, page_.data());
    if (status.ok()) {
      status = VerifyPageTrailer(page_.data(), file_->page_size(), id);
    }
    if (status.ok()) break;
    if (attempt + 1 < kSpillIoAttempts) BackoffSleep(attempt);
  }
  PICTDB_RETURN_IF_ERROR(status);
  std::memcpy(&page_records_, page_.data(), sizeof(page_records_));
  // VerifyPageTrailer accepts all-zero pages (never-flushed allocations);
  // inside a finished run that means the write was torn away entirely.
  // A count beyond capacity can only be header corruption that the CRC
  // happened to cover (e.g. a stale page image) — reject both.
  if (page_records_ == 0 || page_records_ > per_page_) {
    return Status::DataLoss("spill page " + std::to_string(id) +
                            " lost or corrupt (record count " +
                            std::to_string(page_records_) + ")");
  }
  in_page_ = 0;
  ++pages_read_;
  return Status::OK();
}

StatusOr<bool> SpillRunReader::Next(char* out) {
  if (consumed_ == run_.records) return false;
  if (page_index_ == 0 || in_page_ == page_records_) {
    if (page_index_ == run_.page_count) {
      return Status::DataLoss("spill run at page " +
                              std::to_string(run_.first_page) +
                              " ended short of its record count");
    }
    PICTDB_RETURN_IF_ERROR(LoadPage(run_.first_page + page_index_));
    ++page_index_;
  }
  std::memcpy(out,
              page_.data() + kSpillPageHeaderSize +
                  static_cast<size_t>(in_page_) * record_size_,
              record_size_);
  ++in_page_;
  ++consumed_;
  return true;
}

}  // namespace pictdb::storage
