#include "storage/blob.h"

#include <cstring>

namespace pictdb::storage {

namespace {
constexpr size_t kBlobHeader = 8;  // next (4) + chunk length (4)
}  // namespace

StatusOr<PageId> WriteBlob(BufferPool* pool, const Slice& data) {
  const size_t chunk_capacity = pool->page_size() - kBlobHeader;
  PageId first = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t offset = 0;
  do {
    PICTDB_ASSIGN_OR_RETURN(PageGuard page, pool->NewPage());
    const uint32_t len = static_cast<uint32_t>(
        std::min(chunk_capacity, data.size() - offset));
    char* p = page.mutable_data();
    const PageId next = kInvalidPageId;  // patched when a successor exists
    std::memcpy(p, &next, 4);
    std::memcpy(p + 4, &len, 4);
    std::memcpy(p + kBlobHeader, data.data() + offset, len);
    offset += len;
    if (first == kInvalidPageId) {
      first = page.id();
    } else {
      PICTDB_ASSIGN_OR_RETURN(PageGuard prev_page, pool->FetchPage(prev));
      const PageId id = page.id();
      std::memcpy(prev_page.mutable_data(), &id, 4);
    }
    prev = page.id();
  } while (offset < data.size());
  return first;
}

StatusOr<std::string> ReadBlob(BufferPool* pool, PageId first) {
  std::string out;
  PageId id = first;
  while (id != kInvalidPageId) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard page, pool->FetchPage(id));
    PageId next;
    uint32_t len;
    std::memcpy(&next, page.data(), 4);
    std::memcpy(&len, page.data() + 4, 4);
    if (len > pool->page_size() - kBlobHeader) {
      return Status::Corruption("blob chunk length exceeds page capacity");
    }
    out.append(page.data() + kBlobHeader, len);
    id = next;
  }
  return out;
}

Status FreeBlob(BufferPool* pool, PageId first) {
  PageId id = first;
  while (id != kInvalidPageId) {
    PageId next;
    {
      PICTDB_ASSIGN_OR_RETURN(PageGuard page, pool->FetchPage(id));
      std::memcpy(&next, page.data(), 4);
    }
    PICTDB_RETURN_IF_ERROR(pool->FreePage(id));
    id = next;
  }
  return Status::OK();
}

}  // namespace pictdb::storage
