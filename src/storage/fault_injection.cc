#include "storage/fault_injection.h"

#include <cstring>
#include <string>
#include <vector>

namespace pictdb::storage {

FaultInjectionDiskManager::FaultInjectionDiskManager(DiskManager* base,
                                                     const FaultPlan& plan)
    : base_(base), plan_(plan), rng_(plan.seed) {}

bool FaultInjectionDiskManager::Roll(double FaultPlan::*rate) {
  MutexLock lock(&mu_);
  // Rate 0 must not consume a PRNG draw, so disarmed/zero-rate runs
  // keep the same fault stream as runs without the injector.
  const double r = plan_.*rate;
  if (r <= 0.0) return false;
  return armed_ && rng_.Bernoulli(r);
}

uint64_t FaultInjectionDiskManager::RollUniform(uint64_t n) {
  MutexLock lock(&mu_);
  return rng_.Uniform(n);
}

void FaultInjectionDiskManager::AddPermanentReadFault(PageId id) {
  MutexLock lock(&mu_);
  permanent_read_faults_.insert(id);
}

void FaultInjectionDiskManager::ClearFaults() {
  MutexLock lock(&mu_);
  armed_ = false;
  permanent_read_faults_.clear();
}

void FaultInjectionDiskManager::SetPlan(const FaultPlan& plan) {
  MutexLock lock(&mu_);
  plan_ = plan;
  armed_ = true;
}

Status FaultInjectionDiskManager::ReadPage(PageId id, char* out) {
  {
    MutexLock lock(&mu_);
    if (permanent_read_faults_.count(id) != 0) {
      permanent_read_errors_.fetch_add(1, std::memory_order_relaxed);
      return Status::DataLoss("injected permanent read fault on page " +
                              std::to_string(id));
    }
  }
  if (Roll(&FaultPlan::transient_read_error_rate)) {
    transient_read_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected transient read error on page " +
                           std::to_string(id));
  }
  PICTDB_RETURN_IF_ERROR(base_->ReadPage(id, out));
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  if (Roll(&FaultPlan::read_bit_flip_rate)) {
    const uint64_t bit = RollUniform(uint64_t{page_size()} * 8);
    out[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    bit_flips_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status FaultInjectionDiskManager::WritePage(PageId id, const char* data) {
  if (Roll(&FaultPlan::transient_write_error_rate)) {
    transient_write_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected transient write error on page " +
                           std::to_string(id));
  }
  if (Roll(&FaultPlan::torn_write_rate)) {
    // Persist only a prefix, keep the old tail — and report success, as
    // a real torn write would. The page checksum catches it on read.
    const uint32_t ps = page_size();
    const uint32_t keep = 1 + static_cast<uint32_t>(RollUniform(ps - 1));
    std::vector<char> merged(ps);
    PICTDB_RETURN_IF_ERROR(base_->ReadPage(id, merged.data()));
    std::memcpy(merged.data(), data, keep);
    PICTDB_RETURN_IF_ERROR(base_->WritePage(id, merged.data()));
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  PICTDB_RETURN_IF_ERROR(base_->WritePage(id, data));
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

PageId FaultInjectionDiskManager::AllocatePage() {
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  return base_->AllocatePage();
}

void FaultInjectionDiskManager::DeallocatePage(PageId id) {
  base_->DeallocatePage(id);
}

}  // namespace pictdb::storage
