#ifndef PICTDB_STORAGE_BLOB_H_
#define PICTDB_STORAGE_BLOB_H_

#include <string>

#include "common/slice.h"
#include "common/status_or.h"
#include "storage/buffer_pool.h"

namespace pictdb::storage {

/// Arbitrary-length byte blobs chained across pages; used for metadata
/// larger than one page (the persistent catalog image). Each page holds
/// { next PageId, u32 chunk length, data }.
StatusOr<PageId> WriteBlob(BufferPool* pool, const Slice& data);

/// Read a blob written by WriteBlob.
StatusOr<std::string> ReadBlob(BufferPool* pool, PageId first);

/// Release the blob's pages back to the allocator.
Status FreeBlob(BufferPool* pool, PageId first);

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_BLOB_H_
