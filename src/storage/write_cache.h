#ifndef PICTDB_STORAGE_WRITE_CACHE_H_
#define PICTDB_STORAGE_WRITE_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/disk_manager.h"

namespace pictdb::storage {

/// Counters specific to the write cache (the inherited DiskStats count
/// the caller-facing operations).
struct WriteCacheStatsSnapshot {
  uint64_t flushed_pages = 0;
  uint64_t dropped_pages = 0;
  uint64_t syncs = 0;
};

/// Decorator that models a volatile write-back cache in front of a
/// durable store — the OS page cache / drive cache that a crash wipes.
///
/// WritePage lands in RAM only; Sync() flushes every buffered page to
/// the base manager (in page-id order, so fault injection below stays
/// deterministic) and then syncs the base. DropUnsynced() discards all
/// unflushed writes, simulating power loss at that instant: everything
/// acknowledged before the last successful Sync() survives, everything
/// after vanishes. This is what makes a missing Sync() in a commit
/// protocol *testable* — against a plain InMemoryDiskManager every
/// write is durable immediately and a forgotten barrier can never
/// surface.
///
/// Page allocation is forwarded straight to the base store so page ids
/// (tree meta page, WAL anchor) remain stable across a simulated crash.
class WriteCacheDiskManager final : public DiskManager {
 public:
  explicit WriteCacheDiskManager(DiskManager* base) : base_(base) {}

  uint32_t page_size() const override { return base_->page_size(); }
  PageId page_count() const override { return base_->page_count(); }

  Status ReadPage(PageId id, char* out) override EXCLUDES(mu_);
  Status WritePage(PageId id, const char* data) override EXCLUDES(mu_);
  PageId AllocatePage() override { return base_->AllocatePage(); }
  void DeallocatePage(PageId id) override EXCLUDES(mu_);

  /// Flush buffered pages to the base store and sync it. Transient
  /// IOErrors from the base (fault injection) are retried a bounded
  /// number of times per page; a persistent failure keeps the page
  /// buffered and fails the barrier. mu_ is not held across base I/O,
  /// so reads and writes keep flowing during the barrier; a write that
  /// races with the flush is simply carried to the next barrier.
  Status Sync() override EXCLUDES(mu_);

  /// Test-only: invoked (unlocked) with each page id just before it is
  /// written to the base store, so tests can deterministically race a
  /// WritePage/DeallocatePage against an in-progress flush.
  void SetFlushHookForTest(std::function<void(PageId)> hook) {
    flush_hook_ = std::move(hook);
  }

  /// Simulate power loss: every write since the last successful Sync()
  /// is gone. Reads then serve the base store's (possibly stale, possibly
  /// torn) content.
  void DropUnsynced() EXCLUDES(mu_);

  size_t unsynced_pages() const EXCLUDES(mu_);
  WriteCacheStatsSnapshot cache_stats() const EXCLUDES(mu_);

 private:
  DiskManager* base_;
  mutable Mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<char[]>> cache_ GUARDED_BY(mu_);
  WriteCacheStatsSnapshot cache_stats_ GUARDED_BY(mu_);
  std::function<void(PageId)> flush_hook_;  // set before use, test-only
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_WRITE_CACHE_H_
