#ifndef PICTDB_STORAGE_DISK_MANAGER_H_
#define PICTDB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/status_or.h"
#include "storage/page.h"

namespace pictdb::storage {

/// Plain-value image of the I/O counters.
struct DiskStatsSnapshot {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
};

/// Counters exposed by every disk manager; benchmarks report these to show
/// the physical I/O difference between packed and unpacked trees. Atomic
/// so concurrent queries can issue page I/O without racing on accounting.
struct DiskStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> allocations{0};

  DiskStatsSnapshot Snapshot() const {
    DiskStatsSnapshot s;
    s.reads = reads.load(std::memory_order_relaxed);
    s.writes = writes.load(std::memory_order_relaxed);
    s.allocations = allocations.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    reads.store(0, std::memory_order_relaxed);
    writes.store(0, std::memory_order_relaxed);
    allocations.store(0, std::memory_order_relaxed);
  }
};

/// Backing store of fixed-size pages. Implementations must support random
/// page reads/writes and appending fresh pages, and must be safe to call
/// from multiple threads (the buffer pool issues page I/O concurrently).
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Bytes per page; constant over the manager's lifetime.
  virtual uint32_t page_size() const = 0;

  /// Number of pages ever allocated (page ids are dense in [0, count)).
  virtual PageId page_count() const = 0;

  /// Copy page `id` into `out` (page_size bytes).
  virtual Status ReadPage(PageId id, char* out) = 0;

  /// Persist page `id` from `data` (page_size bytes).
  virtual Status WritePage(PageId id, const char* data) = 0;

  /// Append a zero-initialized page; returns its id.
  virtual PageId AllocatePage() = 0;

  /// Return a page to the free list; it may be handed out again by
  /// AllocatePage. Freed pages keep their storage. Out-of-range ids and
  /// double frees are logged and ignored (never corrupt the free list).
  virtual void DeallocatePage(PageId id) = 0;

  /// Durability barrier: after Sync() returns OK, every completed
  /// WritePage is visible to other readers of the same backing store
  /// (e.g. replica processes sharing one page file). No-op for stores
  /// without writer-side buffering.
  [[nodiscard]] virtual Status Sync() { return Status::OK(); }

  const DiskStats& stats() const { return stats_; }
  DiskStatsSnapshot StatsSnapshot() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

 protected:
  DiskStats stats_;
};

/// Pages held in RAM. The default substrate for experiments: the paper's
/// metrics (nodes visited, coverage, overlap) are I/O-model metrics, so a
/// memory store reproduces them exactly while staying fast. Page content
/// access takes a shared lock; allocation takes an exclusive one.
class InMemoryDiskManager final : public DiskManager {
 public:
  explicit InMemoryDiskManager(uint32_t page_size = kDefaultPageSize);

  uint32_t page_size() const override { return page_size_; }
  PageId page_count() const override EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return static_cast<PageId>(pages_.size());
  }
  Status ReadPage(PageId id, char* out) override EXCLUDES(mu_);
  Status WritePage(PageId id, const char* data) override EXCLUDES(mu_);
  PageId AllocatePage() override EXCLUDES(mu_);
  void DeallocatePage(PageId id) override EXCLUDES(mu_);

 private:
  uint32_t page_size_;
  mutable SharedMutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_ GUARDED_BY(mu_);
  std::vector<PageId> free_list_ GUARDED_BY(mu_);
  // Mirrors free_list_ for O(1) double-free detection.
  std::unordered_set<PageId> free_set_ GUARDED_BY(mu_);
};

/// Pages stored in a file on disk, for durability demonstrations and for
/// measuring real I/O. A single mutex serializes all file access (stdio
/// seek+read pairs are not thread-safe).
class FileDiskManager final : public DiskManager {
 public:
  /// Creates or opens `path`. A new file is truncated to zero pages.
  static StatusOr<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize,
      bool truncate = true);

  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  uint32_t page_size() const override { return page_size_; }
  PageId page_count() const override EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return page_count_;
  }
  Status ReadPage(PageId id, char* out) override EXCLUDES(mu_);
  Status WritePage(PageId id, const char* data) override EXCLUDES(mu_);
  PageId AllocatePage() override EXCLUDES(mu_);
  void DeallocatePage(PageId id) override EXCLUDES(mu_);
  /// Flushes stdio buffers so concurrently opened handles on the same
  /// path observe every written page. Without this a freshly packed
  /// tree's tail pages can still sit in this process's FILE buffer
  /// while a replica reads the (zero-filled) allocation image.
  Status Sync() override EXCLUDES(mu_);

 private:
  FileDiskManager(std::FILE* file, uint32_t page_size, PageId page_count)
      : file_(file), page_size_(page_size), page_count_(page_count) {}

  mutable Mutex mu_;
  std::FILE* file_ GUARDED_BY(mu_);  // stdio seek+read is not atomic
  uint32_t page_size_;
  PageId page_count_ GUARDED_BY(mu_);
  std::vector<PageId> free_list_ GUARDED_BY(mu_);
  // Mirrors free_list_ for O(1) double-free detection.
  std::unordered_set<PageId> free_set_ GUARDED_BY(mu_);
};

/// Decorator that adds a fixed latency to every page read/write of an
/// underlying manager. Models the paper's disk-resident setting (a page
/// touch costs a seek) so concurrency experiments observe realistic I/O
/// stalls: threads blocked on simulated seeks overlap, which is exactly
/// the win a concurrent query service extracts from a disk array.
class LatencyDiskManager final : public DiskManager {
 public:
  LatencyDiskManager(DiskManager* base,
                     std::chrono::microseconds read_latency,
                     std::chrono::microseconds write_latency);

  uint32_t page_size() const override { return base_->page_size(); }
  PageId page_count() const override { return base_->page_count(); }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  PageId AllocatePage() override;
  void DeallocatePage(PageId id) override;
  Status Sync() override { return base_->Sync(); }

 private:
  DiskManager* base_;
  std::chrono::microseconds read_latency_;
  std::chrono::microseconds write_latency_;
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_DISK_MANAGER_H_
