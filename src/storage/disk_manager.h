#ifndef PICTDB_STORAGE_DISK_MANAGER_H_
#define PICTDB_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "storage/page.h"

namespace pictdb::storage {

/// Counters exposed by every disk manager; benchmarks report these to show
/// the physical I/O difference between packed and unpacked trees.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
};

/// Backing store of fixed-size pages. Implementations must support random
/// page reads/writes and appending fresh pages.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Bytes per page; constant over the manager's lifetime.
  virtual uint32_t page_size() const = 0;

  /// Number of pages ever allocated (page ids are dense in [0, count)).
  virtual PageId page_count() const = 0;

  /// Copy page `id` into `out` (page_size bytes).
  virtual Status ReadPage(PageId id, char* out) = 0;

  /// Persist page `id` from `data` (page_size bytes).
  virtual Status WritePage(PageId id, const char* data) = 0;

  /// Append a zero-initialized page; returns its id.
  virtual PageId AllocatePage() = 0;

  /// Return a page to the free list; it may be handed out again by
  /// AllocatePage. Freed pages keep their storage.
  virtual void DeallocatePage(PageId id) = 0;

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }

 protected:
  DiskStats stats_;
};

/// Pages held in RAM. The default substrate for experiments: the paper's
/// metrics (nodes visited, coverage, overlap) are I/O-model metrics, so a
/// memory store reproduces them exactly while staying fast.
class InMemoryDiskManager final : public DiskManager {
 public:
  explicit InMemoryDiskManager(uint32_t page_size = kDefaultPageSize);

  uint32_t page_size() const override { return page_size_; }
  PageId page_count() const override {
    return static_cast<PageId>(pages_.size());
  }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  PageId AllocatePage() override;
  void DeallocatePage(PageId id) override;

 private:
  uint32_t page_size_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<PageId> free_list_;
};

/// Pages stored in a file on disk, for durability demonstrations and for
/// measuring real I/O.
class FileDiskManager final : public DiskManager {
 public:
  /// Creates or opens `path`. A new file is truncated to zero pages.
  static StatusOr<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize,
      bool truncate = true);

  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  uint32_t page_size() const override { return page_size_; }
  PageId page_count() const override { return page_count_; }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  PageId AllocatePage() override;
  void DeallocatePage(PageId id) override;

 private:
  FileDiskManager(std::FILE* file, uint32_t page_size, PageId page_count)
      : file_(file), page_size_(page_size), page_count_(page_count) {}

  std::FILE* file_;
  uint32_t page_size_;
  PageId page_count_;
  std::vector<PageId> free_list_;
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_DISK_MANAGER_H_
