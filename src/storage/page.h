#ifndef PICTDB_STORAGE_PAGE_H_
#define PICTDB_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace pictdb::storage {

/// Identifier of a fixed-size page within a database file.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Default page size. The R-tree derives its branching factor from this
/// unless an explicit cap is set (the paper's experiments cap it at 4).
inline constexpr uint32_t kDefaultPageSize = 4096;

// --- Page trailer (corruption detection) -----------------------------------
//
// The last kPageTrailerSize bytes of every on-disk page hold
//   { uint32 magic; uint32 crc32 }
// where the CRC covers the payload bytes [0, page_size - trailer). The
// buffer pool stamps the trailer on every flush and verifies it on every
// miss read, so torn writes and bit rot surface as Status::DataLoss
// instead of silent wrong answers. Page consumers address only the
// payload area (BufferPool::page_size() excludes the trailer).

inline constexpr uint32_t kPageTrailerSize = 8;
inline constexpr uint32_t kPageMagic = 0x50444231u;  // "PDB1"

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `n` bytes.
uint32_t Crc32(const char* data, size_t n);

/// Write the trailer over the last kPageTrailerSize bytes of `page`.
void StampPageTrailer(char* page, uint32_t page_size);

/// Check the trailer. OK for a stamped page whose CRC matches and for an
/// all-zero page (a freshly allocated page that was never flushed);
/// DataLoss otherwise. `page_id` only labels the error message.
Status VerifyPageTrailer(const char* page, uint32_t page_size,
                         PageId page_id = kInvalidPageId);

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_PAGE_H_
