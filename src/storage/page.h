#ifndef PICTDB_STORAGE_PAGE_H_
#define PICTDB_STORAGE_PAGE_H_

#include <cstdint>

namespace pictdb::storage {

/// Identifier of a fixed-size page within a database file.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Default page size. The R-tree derives its branching factor from this
/// unless an explicit cap is set (the paper's experiments cap it at 4).
inline constexpr uint32_t kDefaultPageSize = 4096;

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_PAGE_H_
