#ifndef PICTDB_STORAGE_BUFFER_POOL_H_
#define PICTDB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/status_or.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pictdb::storage {

/// Plain-value image of the pool counters, safe to copy and compare.
struct BufferPoolStatsSnapshot {
  uint64_t fetches = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
  uint64_t read_retries = 0;
  uint64_t write_retries = 0;
  uint64_t checksum_failures = 0;
  uint64_t pin_leaks = 0;
};

/// Counters for cache behaviour; the difference between `fetches` and
/// `misses` shows how well the LRU pool absorbs a workload's page touches.
/// Counters are atomic so concurrent readers never race with fetches;
/// use Snapshot() to read a consistent plain-struct copy.
struct BufferPoolStats {
  std::atomic<uint64_t> fetches{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> flushes{0};
  /// Transient I/O errors and checksum failures absorbed by re-reading.
  std::atomic<uint64_t> read_retries{0};
  /// Transient I/O errors absorbed by re-writing (flush / eviction).
  std::atomic<uint64_t> write_retries{0};
  /// Miss reads whose page trailer failed verification (pre-retry).
  std::atomic<uint64_t> checksum_failures{0};
  /// Pins still held when the pool was destroyed (gauge, set once).
  std::atomic<uint64_t> pin_leaks{0};

  BufferPoolStatsSnapshot Snapshot() const {
    BufferPoolStatsSnapshot s;
    s.fetches = fetches.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.flushes = flushes.load(std::memory_order_relaxed);
    s.read_retries = read_retries.load(std::memory_order_relaxed);
    s.write_retries = write_retries.load(std::memory_order_relaxed);
    s.checksum_failures = checksum_failures.load(std::memory_order_relaxed);
    s.pin_leaks = pin_leaks.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    fetches.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    flushes.store(0, std::memory_order_relaxed);
    read_retries.store(0, std::memory_order_relaxed);
    write_retries.store(0, std::memory_order_relaxed);
    checksum_failures.store(0, std::memory_order_relaxed);
    pin_leaks.store(0, std::memory_order_relaxed);
  }
};

/// Fault-tolerance knobs. The defaults give every pool page checksums
/// and a short bounded retry envelope; tests tune them down (or off) to
/// exercise specific failure modes.
struct BufferPoolOptions {
  /// Reserve the last kPageTrailerSize bytes of each page for a
  /// magic+CRC32 trailer, stamped on flush and verified on miss reads.
  /// page_size() excludes the trailer, so consumers shrink accordingly.
  bool checksum_pages = true;

  /// Retries after the first failed attempt of a miss read (transient
  /// IOError or checksum failure) / of a flush write (IOError). 0
  /// disables retrying.
  int max_read_retries = 4;
  int max_write_retries = 4;

  /// Exponential backoff between attempts: sleep Uniform(0, min(base <<
  /// attempt, cap)) — full jitter, deterministic per pool (seeded).
  std::chrono::microseconds retry_backoff_base{50};
  std::chrono::microseconds retry_backoff_cap{2000};
  uint64_t retry_jitter_seed = 0x9e3779b9u;

  /// Destruction with live pins trips a debug assertion unless set.
  /// (The pin-leak test sets it and observes the gauge instead.)
  bool tolerate_pin_leaks = false;

  /// Optional external gauge also incremented by leaked-pin detection at
  /// destruction (the pool's own stats die with it).
  std::atomic<uint64_t>* pin_leak_gauge = nullptr;
};

class BufferPool;

/// RAII pin on a buffered page. While alive the frame cannot be evicted;
/// mutation must go through mutable_data(), which marks the page dirty.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, char* data,
            std::atomic<bool>* dirty_flag, size_t frame_idx);
  ~PageGuard();

  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const { return data_; }
  char* mutable_data() {
    dirty_flag_->store(true, std::memory_order_relaxed);
    return data_;
  }

  /// Unpin early (before destruction).
  void Release();

  /// Index of the pinned frame; key for BufferPool::LatchFor.
  size_t frame_index() const { return frame_idx_; }

  /// Abandon the pin WITHOUT unpinning — the frame stays pinned forever.
  /// Only for tests of the pool's leak detection and for crash paths
  /// that must not touch a possibly-dead pool.
  void Leak() { pool_ = nullptr; }

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  std::atomic<bool>* dirty_flag_ = nullptr;
  size_t frame_idx_ = 0;
};

/// Fixed-capacity page cache over a DiskManager with LRU replacement.
///
/// Thread-safe: the frame table is split into `shards` independent
/// mini-pools (page id -> shard by modulo), each with its own mutex,
/// page table, LRU list and free list. Pin counts are atomic; a miss
/// performs its disk read outside the shard lock (the frame is pinned
/// and flagged as loading, so concurrent fetchers of the same page wait
/// on the shard's condition variable while other pages proceed).
/// With shards == 1 (the default) eviction order is byte-identical to
/// the historical single-threaded pool.
///
/// Fault tolerance: pages carry a CRC32 trailer stamped on flush and
/// verified on miss reads (torn writes and bit rot surface as
/// Status::DataLoss); transient read/write errors are absorbed by a
/// bounded exponential-backoff retry loop; permanent errors propagate
/// to the caller as the failing Status.
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory; `shards`
  /// the number of independently locked partitions (clamped to
  /// capacity).
  BufferPool(DiskManager* disk, size_t capacity, size_t shards = 1,
             const BufferPoolOptions& options = {});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pin page `id`, reading it from disk on a miss.
  StatusOr<PageGuard> FetchPage(PageId id);

  /// FetchPage variant for recovery paths that are about to rewrite the
  /// page wholesale: a miss read that fails with a data error (torn
  /// write, bit rot, transient I/O) yields a zero-filled dirty frame
  /// instead of failing the fetch. Never use it to *read* a page — the
  /// zeroed content is only meaningful to a caller that overwrites it.
  StatusOr<PageGuard> FetchPageForOverwrite(PageId id);

  /// Allocate a fresh zeroed page and pin it.
  StatusOr<PageGuard> NewPage();

  /// Drop the page from the pool (without writing it back) and return it
  /// to the disk manager's free list. The page must not be pinned.
  Status FreePage(PageId id);

  /// Write all dirty frames back to disk.
  Status FlushAll();

  /// Issue software prefetches for the frames of any of `ids` that are
  /// already resident. Purely advisory: misses are skipped (never
  /// faulted in), a racing eviction only wastes the hint, and the
  /// frames are not pinned or touched logically (no LRU update, no
  /// stats). The R-tree descent calls this on the next few stack
  /// entries so a child's page bytes are in cache by the time its
  /// SIMD scan starts. Compiles to nothing without PICTDB_PREFETCH.
  void PrefetchResident(std::span<const PageId> ids);

  DiskManager* disk() const { return disk_; }

  /// Bytes of each page usable by consumers — the disk page size minus
  /// the checksum trailer (when enabled).
  uint32_t page_size() const {
    return disk_->page_size() -
           (options_.checksum_pages ? kPageTrailerSize : 0);
  }

  size_t capacity() const { return capacity_; }
  size_t shards() const { return shards_.size(); }
  const BufferPoolOptions& options() const { return options_; }
  const BufferPoolStats& stats() const { return stats_; }
  BufferPoolStatsSnapshot StatsSnapshot() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// Number of currently pinned frames (for tests / leak detection).
  size_t pinned_frames() const;

  /// Reader/writer latch of the frame pinned by `guard`. Writers that
  /// mutate page bytes while concurrent readers may be copying them
  /// (the R-tree's online mutation path) take it exclusive around the
  /// byte write; readers take it shared around the copy. The latch
  /// belongs to the frame — hold it only while the pin is alive, and
  /// never across a fetch of another page (latches are leaf locks in
  /// the DESIGN.md §10 hierarchy).
  SharedMutex* LatchFor(const PageGuard& guard) {
    return &frames_[guard.frame_index()].latch;
  }

 private:
  friend class PageGuard;

  /// Non-atomic Frame fields (page_id, loading, lru_pos, in_lru) are
  /// guarded by the owning shard's mutex. That guard rotates with the
  /// frame index, so it cannot be named in a GUARDED_BY annotation —
  /// the per-shard containers below carry the static annotations, and
  /// TSan covers the frame fields dynamically.
  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    std::atomic<int> pin_count{0};
    std::atomic<bool> dirty{false};
    /// True while a miss is reading this frame's page from disk outside
    /// the shard lock.
    bool loading = false;
    // Position in the shard's lru when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
    /// Guards the page *bytes* against concurrent read/write while the
    /// frame is pinned (see LatchFor). Orthogonal to the shard mutex,
    /// which guards the mapping, not the content.
    SharedMutex latch;
  };

  struct Shard {
    mutable Mutex mu;
    CondVar load_cv;  // signalled when `loading` clears
    std::unordered_map<PageId, size_t> page_table GUARDED_BY(mu);
    std::list<size_t> lru GUARDED_BY(mu);  // front = least recently used
    std::vector<size_t> free_frames GUARDED_BY(mu);
  };

  Shard& ShardForPage(PageId id) { return shards_[id % shards_.size()]; }
  Shard& ShardForFrame(size_t frame_idx) {
    return shards_[frame_idx % shards_.size()];
  }

  void Unpin(size_t frame_idx);
  /// May write a dirty victim back to disk.
  StatusOr<size_t> GetVictimFrame(Shard& shard) REQUIRES(shard.mu);
  /// Frame must hold a valid resident page.
  PageGuard PinFrame(Shard& shard, size_t frame_idx) REQUIRES(shard.mu);
  /// Claim a victim for `id`, pinned and marked loading.
  StatusOr<size_t> ClaimFrameLocked(Shard& shard, PageId id)
      REQUIRES(shard.mu);

  StatusOr<PageGuard> FetchPageImpl(PageId id, bool overwrite_on_error);

  /// Miss-path read with checksum verification and bounded
  /// exponential-backoff retry of transient failures.
  Status ReadPageWithRetry(PageId id, char* out);
  /// Flush-path write: stamps the trailer, retries transient IOErrors.
  Status WritePageWithRetry(PageId id, char* data);
  /// Sleep the backoff interval for `attempt` (0-based), with jitter.
  void Backoff(int attempt) EXCLUDES(jitter_mu_);

  DiskManager* disk_;
  size_t capacity_;
  BufferPoolOptions options_;
  std::unique_ptr<Frame[]> frames_;
  std::vector<Shard> shards_;
  BufferPoolStats stats_;
  Mutex jitter_mu_;
  Random jitter_rng_ GUARDED_BY(jitter_mu_);
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_BUFFER_POOL_H_
