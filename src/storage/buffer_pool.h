#ifndef PICTDB_STORAGE_BUFFER_POOL_H_
#define PICTDB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pictdb::storage {

/// Plain-value image of the pool counters, safe to copy and compare.
struct BufferPoolStatsSnapshot {
  uint64_t fetches = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
};

/// Counters for cache behaviour; the difference between `fetches` and
/// `misses` shows how well the LRU pool absorbs a workload's page touches.
/// Counters are atomic so concurrent readers never race with fetches;
/// use Snapshot() to read a consistent plain-struct copy.
struct BufferPoolStats {
  std::atomic<uint64_t> fetches{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> flushes{0};

  BufferPoolStatsSnapshot Snapshot() const {
    BufferPoolStatsSnapshot s;
    s.fetches = fetches.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.flushes = flushes.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    fetches.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    flushes.store(0, std::memory_order_relaxed);
  }
};

class BufferPool;

/// RAII pin on a buffered page. While alive the frame cannot be evicted;
/// mutation must go through mutable_data(), which marks the page dirty.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, char* data,
            std::atomic<bool>* dirty_flag, size_t frame_idx);
  ~PageGuard();

  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const { return data_; }
  char* mutable_data() {
    dirty_flag_->store(true, std::memory_order_relaxed);
    return data_;
  }

  /// Unpin early (before destruction).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  std::atomic<bool>* dirty_flag_ = nullptr;
  size_t frame_idx_ = 0;
};

/// Fixed-capacity page cache over a DiskManager with LRU replacement.
///
/// Thread-safe: the frame table is split into `shards` independent
/// mini-pools (page id -> shard by modulo), each with its own mutex,
/// page table, LRU list and free list. Pin counts are atomic; a miss
/// performs its disk read outside the shard lock (the frame is pinned
/// and flagged as loading, so concurrent fetchers of the same page wait
/// on the shard's condition variable while other pages proceed).
/// With shards == 1 (the default) eviction order is byte-identical to
/// the historical single-threaded pool.
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory; `shards`
  /// the number of independently locked partitions (clamped to
  /// capacity).
  BufferPool(DiskManager* disk, size_t capacity, size_t shards = 1);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pin page `id`, reading it from disk on a miss.
  StatusOr<PageGuard> FetchPage(PageId id);

  /// Allocate a fresh zeroed page and pin it.
  StatusOr<PageGuard> NewPage();

  /// Drop the page from the pool (without writing it back) and return it
  /// to the disk manager's free list. The page must not be pinned.
  Status FreePage(PageId id);

  /// Write all dirty frames back to disk.
  Status FlushAll();

  DiskManager* disk() const { return disk_; }
  uint32_t page_size() const { return disk_->page_size(); }
  size_t capacity() const { return capacity_; }
  size_t shards() const { return shards_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  BufferPoolStatsSnapshot StatsSnapshot() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// Number of currently pinned frames (for tests / leak detection).
  size_t pinned_frames() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    std::atomic<int> pin_count{0};
    std::atomic<bool> dirty{false};
    /// True while a miss is reading this frame's page from disk outside
    /// the shard lock. Guarded by the owning shard's mutex.
    bool loading = false;
    // Position in the shard's lru when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable load_cv;  // signalled when `loading` clears
    std::unordered_map<PageId, size_t> page_table;
    std::list<size_t> lru;  // front = least recently used
    std::vector<size_t> free_frames;
  };

  Shard& ShardForPage(PageId id) { return shards_[id % shards_.size()]; }
  Shard& ShardForFrame(size_t frame_idx) {
    return shards_[frame_idx % shards_.size()];
  }

  void Unpin(size_t frame_idx);
  /// Requires `shard.mu` held. May write a dirty victim back to disk.
  StatusOr<size_t> GetVictimFrame(Shard& shard);
  /// Requires `shard.mu` held; frame must hold a valid resident page.
  PageGuard PinFrame(Shard& shard, size_t frame_idx);
  /// Claim a victim for `id`, pinned and marked loading. Requires lock.
  StatusOr<size_t> ClaimFrameLocked(Shard& shard, PageId id);

  DiskManager* disk_;
  size_t capacity_;
  std::unique_ptr<Frame[]> frames_;
  std::vector<Shard> shards_;
  BufferPoolStats stats_;
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_BUFFER_POOL_H_
