#ifndef PICTDB_STORAGE_BUFFER_POOL_H_
#define PICTDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pictdb::storage {

/// Counters for cache behaviour; the difference between `fetches` and
/// `misses` shows how well the LRU pool absorbs a workload's page touches.
struct BufferPoolStats {
  uint64_t fetches = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
};

class BufferPool;

/// RAII pin on a buffered page. While alive the frame cannot be evicted;
/// mutation must go through mutable_data(), which marks the page dirty.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, char* data, bool* dirty_flag);
  ~PageGuard();

  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const { return data_; }
  char* mutable_data() {
    *dirty_flag_ = true;
    return data_;
  }

  /// Unpin early (before destruction).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool* dirty_flag_ = nullptr;
};

/// Fixed-capacity page cache over a DiskManager with LRU replacement.
/// Single-threaded by design (the library's execution model is one query
/// at a time, as in the paper's system).
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory.
  BufferPool(DiskManager* disk, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pin page `id`, reading it from disk on a miss.
  StatusOr<PageGuard> FetchPage(PageId id);

  /// Allocate a fresh zeroed page and pin it.
  StatusOr<PageGuard> NewPage();

  /// Drop the page from the pool (without writing it back) and return it
  /// to the disk manager's free list. The page must not be pinned.
  Status FreePage(PageId id);

  /// Write all dirty frames back to disk.
  Status FlushAll();

  DiskManager* disk() const { return disk_; }
  uint32_t page_size() const { return disk_->page_size(); }
  size_t capacity() const { return capacity_; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

  /// Number of currently pinned frames (for tests / leak detection).
  size_t pinned_frames() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    int pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id);
  StatusOr<size_t> GetVictimFrame();  // frame ready for reuse
  StatusOr<PageGuard> PinFrame(size_t frame_idx);

  DiskManager* disk_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front = least recently used
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_BUFFER_POOL_H_
