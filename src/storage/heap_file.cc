#include "storage/heap_file.h"

#include <cstring>

#include "common/logging.h"

namespace pictdb::storage {

namespace {

/// On-page layout. Slot directory grows up from the header; record bytes
/// grow down from the page end.
struct HeapPageHeader {
  PageId next_page;
  uint16_t slot_count;
  uint16_t free_end;  // offset one past the usable data region
};

struct SlotEntry {
  uint16_t offset;  // kTombstoneOffset when deleted
  uint16_t size;
};

constexpr uint16_t kTombstoneOffset = 0xFFFF;

HeapPageHeader* Header(char* page) {
  return reinterpret_cast<HeapPageHeader*>(page);
}
const HeapPageHeader* Header(const char* page) {
  return reinterpret_cast<const HeapPageHeader*>(page);
}

SlotEntry* Slots(char* page) {
  return reinterpret_cast<SlotEntry*>(page + sizeof(HeapPageHeader));
}
const SlotEntry* Slots(const char* page) {
  return reinterpret_cast<const SlotEntry*>(page + sizeof(HeapPageHeader));
}

size_t FreeSpace(const char* page) {
  const HeapPageHeader* h = Header(page);
  const size_t used_front =
      sizeof(HeapPageHeader) + h->slot_count * sizeof(SlotEntry);
  return h->free_end - used_front;
}

void InitPage(char* page, uint32_t page_size) {
  HeapPageHeader* h = Header(page);
  h->next_page = kInvalidPageId;
  h->slot_count = 0;
  h->free_end = static_cast<uint16_t>(page_size);
}

}  // namespace

StatusOr<HeapFile> HeapFile::Create(BufferPool* pool) {
  PICTDB_CHECK(pool->page_size() <= 0xFFFF)
      << "heap pages use 16-bit offsets";
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPage());
  InitPage(guard.mutable_data(), pool->page_size());
  return HeapFile(pool, guard.id());
}

HeapFile HeapFile::Open(BufferPool* pool, PageId first_page) {
  return HeapFile(pool, first_page);
}

StatusOr<Rid> HeapFile::Insert(const Slice& record) {
  const size_t needed = record.size() + sizeof(SlotEntry);
  const size_t max_record =
      pool_->page_size() - sizeof(HeapPageHeader) - sizeof(SlotEntry);
  if (record.size() > max_record) {
    return Status::InvalidArgument("record larger than page capacity");
  }

  // Walk to the last page (first-fit on the tail; interior free space is
  // reclaimed only by compaction, which this library does not need).
  PageId page_id = first_page_;
  for (;;) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    const HeapPageHeader* h = Header(guard.data());
    if (FreeSpace(guard.data()) >= needed) {
      char* page = guard.mutable_data();
      HeapPageHeader* mh = Header(page);
      const uint16_t offset =
          static_cast<uint16_t>(mh->free_end - record.size());
      std::memcpy(page + offset, record.data(), record.size());
      SlotEntry* slot = Slots(page) + mh->slot_count;
      slot->offset = offset;
      slot->size = static_cast<uint16_t>(record.size());
      mh->free_end = offset;
      const uint16_t slot_idx = mh->slot_count++;
      return Rid{page_id, slot_idx};
    }
    if (h->next_page != kInvalidPageId) {
      page_id = h->next_page;
      continue;
    }
    // Tail is full: chain a fresh page.
    PICTDB_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
    InitPage(fresh.mutable_data(), pool_->page_size());
    Header(guard.mutable_data())->next_page = fresh.id();
    page_id = fresh.id();
  }
}

StatusOr<std::string> HeapFile::Get(const Rid& rid) const {
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page_id));
  const HeapPageHeader* h = Header(guard.data());
  if (rid.slot >= h->slot_count) {
    return Status::NotFound("no such slot");
  }
  const SlotEntry& slot = Slots(guard.data())[rid.slot];
  if (slot.offset == kTombstoneOffset) {
    return Status::NotFound("record deleted");
  }
  return std::string(guard.data() + slot.offset, slot.size);
}

Status HeapFile::Delete(const Rid& rid) {
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page_id));
  const HeapPageHeader* h = Header(guard.data());
  if (rid.slot >= h->slot_count) {
    return Status::NotFound("no such slot");
  }
  SlotEntry* slot = Slots(guard.mutable_data()) + rid.slot;
  if (slot->offset == kTombstoneOffset) {
    return Status::NotFound("record already deleted");
  }
  slot->offset = kTombstoneOffset;
  slot->size = 0;
  return Status::OK();
}

StatusOr<Rid> HeapFile::Update(const Rid& rid, const Slice& record) {
  {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page_id));
    const HeapPageHeader* h = Header(guard.data());
    if (rid.slot >= h->slot_count) {
      return Status::NotFound("no such slot");
    }
    SlotEntry* slot = Slots(guard.mutable_data()) + rid.slot;
    if (slot->offset == kTombstoneOffset) {
      return Status::NotFound("record deleted");
    }
    if (record.size() <= slot->size) {
      char* page = guard.mutable_data();
      std::memcpy(page + slot->offset, record.data(), record.size());
      slot->size = static_cast<uint16_t>(record.size());
      return rid;
    }
  }
  PICTDB_RETURN_IF_ERROR(Delete(rid));
  return Insert(record);
}

StatusOr<Rid> HeapFile::FindFrom(PageId page, uint16_t slot) const {
  PageId page_id = page;
  uint16_t slot_idx = slot;
  while (page_id != kInvalidPageId) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    const HeapPageHeader* h = Header(guard.data());
    const SlotEntry* slots = Slots(guard.data());
    for (; slot_idx < h->slot_count; ++slot_idx) {
      if (slots[slot_idx].offset != kTombstoneOffset) {
        return Rid{page_id, slot_idx};
      }
    }
    page_id = h->next_page;
    slot_idx = 0;
  }
  return Rid{};  // invalid: end of file
}

StatusOr<Rid> HeapFile::First() const { return FindFrom(first_page_, 0); }

StatusOr<Rid> HeapFile::Next(const Rid& rid) const {
  if (!rid.IsValid()) return Rid{};
  if (rid.slot == 0xFFFF) {
    return Status::InvalidArgument("slot overflow in Next");
  }
  return FindFrom(rid.page_id, static_cast<uint16_t>(rid.slot + 1));
}

StatusOr<uint64_t> HeapFile::Count() const {
  uint64_t n = 0;
  PICTDB_ASSIGN_OR_RETURN(Rid rid, First());
  while (rid.IsValid()) {
    ++n;
    PICTDB_ASSIGN_OR_RETURN(rid, Next(rid));
  }
  return n;
}

}  // namespace pictdb::storage
