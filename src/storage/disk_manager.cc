#include "storage/disk_manager.h"

#include <cstring>

#include "common/logging.h"

namespace pictdb::storage {

InMemoryDiskManager::InMemoryDiskManager(uint32_t page_size)
    : page_size_(page_size) {
  PICTDB_CHECK(page_size_ >= 64) << "page size too small: " << page_size_;
}

Status InMemoryDiskManager::ReadPage(PageId id, char* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  std::memcpy(out, pages_[id].get(), page_size_);
  ++stats_.reads;
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId id, const char* data) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  std::memcpy(pages_[id].get(), data, page_size_);
  ++stats_.writes;
  return Status::OK();
}

PageId InMemoryDiskManager::AllocatePage() {
  ++stats_.allocations;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    std::memset(pages_[id].get(), 0, page_size_);
    return id;
  }
  auto buf = std::make_unique<char[]>(page_size_);
  std::memset(buf.get(), 0, page_size_);
  pages_.push_back(std::move(buf));
  return static_cast<PageId>(pages_.size() - 1);
}

void InMemoryDiskManager::DeallocatePage(PageId id) {
  PICTDB_CHECK(id < pages_.size());
  free_list_.push_back(id);
}

StatusOr<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path, uint32_t page_size, bool truncate) {
  PICTDB_CHECK(page_size >= 64);
  std::FILE* f = nullptr;
  PageId page_count = 0;
  if (truncate) {
    f = std::fopen(path.c_str(), "wb+");
  } else {
    f = std::fopen(path.c_str(), "rb+");
    if (f == nullptr) f = std::fopen(path.c_str(), "wb+");
  }
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek " + path);
  }
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot tell " + path);
  }
  page_count = static_cast<PageId>(static_cast<uint64_t>(size) / page_size);
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(f, page_size, page_count));
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  if (id >= page_count_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fread(out, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short read of page " + std::to_string(id));
  }
  ++stats_.reads;
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const char* data) {
  if (id >= page_count_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(data, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write of page " + std::to_string(id));
  }
  ++stats_.writes;
  return Status::OK();
}

PageId FileDiskManager::AllocatePage() {
  ++stats_.allocations;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  const PageId id = page_count_++;
  // Extend the file with a zero page so subsequent reads succeed.
  std::vector<char> zeros(page_size_, 0);
  std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET);
  std::fwrite(zeros.data(), 1, page_size_, file_);
  return id;
}

void FileDiskManager::DeallocatePage(PageId id) {
  PICTDB_CHECK(id < page_count_);
  free_list_.push_back(id);
}

}  // namespace pictdb::storage
