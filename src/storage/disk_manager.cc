#include "storage/disk_manager.h"

#include <unistd.h>

#include <cstring>
#include <thread>

#include "common/logging.h"

namespace pictdb::storage {

InMemoryDiskManager::InMemoryDiskManager(uint32_t page_size)
    : page_size_(page_size) {
  PICTDB_CHECK(page_size_ >= 64) << "page size too small: " << page_size_;
}

Status InMemoryDiskManager::ReadPage(PageId id, char* out) {
  ReaderMutexLock lock(&mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  std::memcpy(out, pages_[id].get(), page_size_);
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId id, const char* data) {
  // Shared lock: distinct pages may be written concurrently (the buffer
  // pool never writes the same page from two threads), and writes must
  // not block readers of other pages.
  ReaderMutexLock lock(&mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  std::memcpy(pages_[id].get(), data, page_size_);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

PageId InMemoryDiskManager::AllocatePage() {
  WriterMutexLock lock(&mu_);
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(id);
    std::memset(pages_[id].get(), 0, page_size_);
    return id;
  }
  auto buf = std::make_unique<char[]>(page_size_);
  std::memset(buf.get(), 0, page_size_);
  pages_.push_back(std::move(buf));
  return static_cast<PageId>(pages_.size() - 1);
}

void InMemoryDiskManager::DeallocatePage(PageId id) {
  WriterMutexLock lock(&mu_);
  if (id >= pages_.size()) {
    PICTDB_LOG_WARN() << "deallocate of unallocated page " << id
                      << " (page count " << pages_.size() << "); ignored";
    return;
  }
  if (!free_set_.insert(id).second) {
    PICTDB_LOG_WARN() << "double free of page " << id << "; ignored";
    return;
  }
  free_list_.push_back(id);
}

StatusOr<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path, uint32_t page_size, bool truncate) {
  PICTDB_CHECK(page_size >= 64);
  std::FILE* f = nullptr;
  PageId page_count = 0;
  if (truncate) {
    f = std::fopen(path.c_str(), "wb+");
  } else {
    f = std::fopen(path.c_str(), "rb+");
    if (f == nullptr) f = std::fopen(path.c_str(), "wb+");
  }
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    (void)std::fclose(f);  // already failing; nothing readable was written
    return Status::IOError("cannot seek " + path);
  }
  const long size = std::ftell(f);
  if (size < 0) {
    (void)std::fclose(f);  // already failing; nothing readable was written
    return Status::IOError("cannot tell " + path);
  }
  page_count = static_cast<PageId>(static_cast<uint64_t>(size) / page_size);
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(f, page_size, page_count));
}

FileDiskManager::~FileDiskManager() {
  MutexLock lock(&mu_);
  if (file_ != nullptr && std::fclose(file_) != 0) {
    // A failed close can lose buffered page writes; teardown cannot
    // propagate, but it must not be silent.
    PICTDB_LOG_WARN() << "fclose failed at disk manager destruction; "
                         "buffered writes may be lost";
  }
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  MutexLock lock(&mu_);
  if (id >= page_count_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fread(out, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short read of page " + std::to_string(id));
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const char* data) {
  MutexLock lock(&mu_);
  if (id >= page_count_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(data, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write of page " + std::to_string(id));
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileDiskManager::Sync() {
  MutexLock lock(&mu_);
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed");
  }
  // fflush only moves bytes into the kernel; a WAL commit barrier needs
  // them on the medium before the commit is acknowledged.
  if (::fsync(fileno(file_)) != 0) {
    return Status::IOError("fsync failed");
  }
  return Status::OK();
}

PageId FileDiskManager::AllocatePage() {
  MutexLock lock(&mu_);
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(id);
    return id;
  }
  const PageId id = page_count_++;
  // Extend the file with a zero page so subsequent reads succeed. The
  // interface cannot report allocation I/O errors, but swallowing them
  // silently turned up as unreadable pages much later — log here so the
  // failure is attributable.
  std::vector<char> zeros(page_size_, 0);
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_size_, file_) != page_size_) {
    PICTDB_LOG_WARN() << "failed to extend file for page " << id
                      << "; reads of it will fail until it is written";
  }
  return id;
}

void FileDiskManager::DeallocatePage(PageId id) {
  MutexLock lock(&mu_);
  if (id >= page_count_) {
    PICTDB_LOG_WARN() << "deallocate of unallocated page " << id
                      << " (page count " << page_count_ << "); ignored";
    return;
  }
  if (!free_set_.insert(id).second) {
    PICTDB_LOG_WARN() << "double free of page " << id << "; ignored";
    return;
  }
  free_list_.push_back(id);
}

LatencyDiskManager::LatencyDiskManager(
    DiskManager* base, std::chrono::microseconds read_latency,
    std::chrono::microseconds write_latency)
    : base_(base),
      read_latency_(read_latency),
      write_latency_(write_latency) {}

Status LatencyDiskManager::ReadPage(PageId id, char* out) {
  if (read_latency_.count() > 0) std::this_thread::sleep_for(read_latency_);
  PICTDB_RETURN_IF_ERROR(base_->ReadPage(id, out));
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LatencyDiskManager::WritePage(PageId id, const char* data) {
  if (write_latency_.count() > 0) {
    std::this_thread::sleep_for(write_latency_);
  }
  PICTDB_RETURN_IF_ERROR(base_->WritePage(id, data));
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

PageId LatencyDiskManager::AllocatePage() {
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  return base_->AllocatePage();
}

void LatencyDiskManager::DeallocatePage(PageId id) {
  base_->DeallocatePage(id);
}

}  // namespace pictdb::storage
