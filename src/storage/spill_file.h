#ifndef PICTDB_STORAGE_SPILL_FILE_H_
#define PICTDB_STORAGE_SPILL_FILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pictdb::storage {

/// One run of fixed-size records inside a spill file: `page_count`
/// consecutive pages starting at `first_page`, holding `records`
/// records in sorted order. Runs are append-only and never reclaimed —
/// spill files are ephemeral (deleted when the SpillFile is destroyed).
struct SpillRunHandle {
  PageId first_page = kInvalidPageId;
  uint32_t page_count = 0;
  uint64_t records = 0;
};

/// An ephemeral on-disk scratch file for external sorting, owned by its
/// SpillFileManager handle: the backing file is created on demand and
/// unlinked when this object is destroyed. All I/O goes through the
/// DiskManager abstraction so the fault-injection decorator and page
/// CRC framing compose exactly as they do for database pages.
class SpillFile {
 public:
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// The manager spill I/O goes through (the test wrapper when one is
  /// installed, else the backing file manager).
  DiskManager* disk() const { return active_; }
  const std::string& path() const { return path_; }
  uint32_t page_size() const { return active_->page_size(); }

 private:
  friend class SpillFileManager;
  SpillFile(std::string path, std::unique_ptr<DiskManager> base,
            std::unique_ptr<DiskManager> wrapper)
      : path_(std::move(path)),
        base_(std::move(base)),
        wrapper_(std::move(wrapper)),
        active_(wrapper_ != nullptr ? wrapper_.get() : base_.get()) {}

  std::string path_;
  std::unique_ptr<DiskManager> base_;
  std::unique_ptr<DiskManager> wrapper_;  // optional decorator over base_
  DiskManager* active_;
};

/// Factory for spill files. ALL temp-file creation in the library goes
/// through this class (tools/pictdb_lint.py's SPILL-TEMP rule enforces
/// it): paths are generated from pid + a process-wide counter inside
/// `dir`, files are unlinked on SpillFile destruction, and a test hook
/// can wrap every created DiskManager (e.g. in a
/// FaultInjectionDiskManager) to exercise torn spill writes.
class SpillFileManager {
 public:
  explicit SpillFileManager(std::string dir = ".",
                            uint32_t page_size = kDefaultPageSize)
      : dir_(std::move(dir)), page_size_(page_size) {}

  /// Create a fresh spill file at a unique path under dir().
  StatusOr<std::unique_ptr<SpillFile>> Create();

  /// Wrap the DiskManager of every subsequently created spill file.
  /// `wrap` receives the (owned-by-SpillFile) base manager and returns
  /// a decorator that the SpillFile will also own and route I/O through.
  void SetDiskWrapperForTesting(
      std::function<std::unique_ptr<DiskManager>(DiskManager*)> wrap) {
    wrap_ = std::move(wrap);
  }

  const std::string& dir() const { return dir_; }
  uint32_t page_size() const { return page_size_; }

 private:
  std::string dir_;
  uint32_t page_size_;
  std::function<std::unique_ptr<DiskManager>(DiskManager*)> wrap_;
  static std::atomic<uint64_t> counter_;
};

/// Appends fixed-size records to a spill file as one run. Pages are
/// framed like database pages — a small header (record count) plus a
/// CRC32 trailer — so torn writes and bit rot surface as DataLoss on
/// read instead of silently corrupting the sort. Writes retry transient
/// IOErrors with bounded exponential backoff (same policy as the buffer
/// pool). Finish() flushes the tail page and issues a Sync durability
/// barrier so a completed run is fully on the medium before its pages
/// are read back during the merge.
class SpillRunWriter {
 public:
  SpillRunWriter(SpillFile* file, uint32_t record_size);

  Status Append(const char* record);
  StatusOr<SpillRunHandle> Finish();

  uint64_t pages_written() const { return pages_written_; }

 private:
  Status FlushPage();

  SpillFile* file_;
  uint32_t record_size_;
  uint32_t per_page_;
  std::vector<char> page_;
  uint32_t in_page_ = 0;
  bool finished_ = false;
  uint64_t pages_written_ = 0;
  SpillRunHandle run_;
};

/// Streams a run's records back in order, verifying each page's CRC
/// trailer (retrying transient read errors) before trusting any byte of
/// it. An all-zero page inside a run means the medium never saw the
/// write (a fully torn page) and is reported as DataLoss.
class SpillRunReader {
 public:
  SpillRunReader(SpillFile* file, const SpillRunHandle& run,
                 uint32_t record_size);

  /// Copy the next record into `out` (record_size bytes); false at the
  /// end of the run.
  StatusOr<bool> Next(char* out);

  uint64_t pages_read() const { return pages_read_; }

 private:
  Status LoadPage(PageId id);

  SpillFile* file_;
  SpillRunHandle run_;
  uint32_t record_size_;
  uint32_t per_page_;
  std::vector<char> page_;
  uint32_t page_index_ = 0;     // next page of the run to load
  uint32_t in_page_ = 0;        // records consumed from the loaded page
  uint32_t page_records_ = 0;   // records held by the loaded page
  uint64_t consumed_ = 0;
  uint64_t pages_read_ = 0;
};

/// Records per spill page for the given page and record sizes (pages
/// carry an 8-byte header and the CRC trailer).
uint32_t SpillRecordsPerPage(uint32_t page_size, uint32_t record_size);

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_SPILL_FILE_H_
