#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace pictdb::storage {

PageGuard::PageGuard(BufferPool* pool, PageId id, char* data,
                     bool* dirty_flag)
    : pool_(pool), id_(id), data_(data), dirty_flag_(dirty_flag) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      id_(other.id_),
      data_(other.data_),
      dirty_flag_(other.dirty_flag_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_flag_ = other.dirty_flag_;
    other.pool_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity) {
  PICTDB_CHECK(capacity_ >= 1);
  frames_.resize(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<char[]>(disk_->page_size());
    free_frames_.push_back(capacity_ - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors at teardown have nowhere to go.
  (void)FlushAll();
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.pin_count > 0) ++n;
  }
  return n;
}

void BufferPool::Unpin(PageId id) {
  auto it = page_table_.find(id);
  PICTDB_CHECK(it != page_table_.end()) << "unpin of unknown page " << id;
  Frame& frame = frames_[it->second];
  PICTDB_CHECK(frame.pin_count > 0) << "unpin of unpinned page " << id;
  if (--frame.pin_count == 0) {
    lru_.push_back(it->second);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

StatusOr<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames pinned");
  }
  const size_t idx = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[idx];
  frame.in_lru = false;
  ++stats_.evictions;
  if (frame.dirty) {
    PICTDB_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, frame.data.get()));
    ++stats_.flushes;
    frame.dirty = false;
  }
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  return idx;
}

StatusOr<PageGuard> BufferPool::PinFrame(size_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  if (frame.pin_count == 0 && frame.in_lru) {
    lru_.erase(frame.lru_pos);
    frame.in_lru = false;
  }
  ++frame.pin_count;
  return PageGuard(this, frame.page_id, frame.data.get(), &frame.dirty);
}

StatusOr<PageGuard> BufferPool::FetchPage(PageId id) {
  ++stats_.fetches;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    return PinFrame(it->second);
  }
  ++stats_.misses;
  PICTDB_ASSIGN_OR_RETURN(const size_t idx, GetVictimFrame());
  Frame& frame = frames_[idx];
  PICTDB_RETURN_IF_ERROR(disk_->ReadPage(id, frame.data.get()));
  frame.page_id = id;
  frame.dirty = false;
  page_table_[id] = idx;
  return PinFrame(idx);
}

StatusOr<PageGuard> BufferPool::NewPage() {
  const PageId id = disk_->AllocatePage();
  PICTDB_ASSIGN_OR_RETURN(const size_t idx, GetVictimFrame());
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, disk_->page_size());
  frame.page_id = id;
  frame.dirty = true;  // must reach disk even if never written again
  page_table_[id] = idx;
  return PinFrame(idx);
}

Status BufferPool::FreePage(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    const size_t idx = it->second;
    Frame& frame = frames_[idx];
    if (frame.pin_count > 0) {
      return Status::InvalidArgument("freeing pinned page " +
                                     std::to_string(id));
    }
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.page_id = kInvalidPageId;
    frame.dirty = false;
    page_table_.erase(it);
    free_frames_.push_back(idx);
  }
  disk_->DeallocatePage(id);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      PICTDB_RETURN_IF_ERROR(
          disk_->WritePage(frame.page_id, frame.data.get()));
      frame.dirty = false;
      ++stats_.flushes;
    }
  }
  return Status::OK();
}

}  // namespace pictdb::storage
