#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace pictdb::storage {

PageGuard::PageGuard(BufferPool* pool, PageId id, char* data,
                     std::atomic<bool>* dirty_flag, size_t frame_idx)
    : pool_(pool),
      id_(id),
      data_(data),
      dirty_flag_(dirty_flag),
      frame_idx_(frame_idx) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      id_(other.id_),
      data_(other.data_),
      dirty_flag_(other.dirty_flag_),
      frame_idx_(other.frame_idx_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_flag_ = other.dirty_flag_;
    frame_idx_ = other.frame_idx_;
    other.pool_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_idx_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity, size_t shards,
                       const BufferPoolOptions& options)
    : disk_(disk),
      capacity_(capacity),
      options_(options),
      shards_(std::max<size_t>(1, std::min(shards, capacity))),
      jitter_rng_(options.retry_jitter_seed) {
  PICTDB_CHECK(capacity_ >= 1);
  PICTDB_CHECK(!options_.checksum_pages ||
               disk_->page_size() > 2 * kPageTrailerSize)
      << "page size too small for a checksum trailer";
  frames_ = std::make_unique<Frame[]>(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<char[]>(disk_->page_size());
  }
  // Each shard's free list hands out its frames in increasing index
  // order (so with one shard the allocation order matches the
  // historical single-threaded pool exactly). The locks are not yet
  // contended, but Shard's guarded members are owned by Shard, not by
  // the pool, so the constructor still acquires them.
  for (size_t i = 0; i < capacity_; ++i) {
    const size_t idx = capacity_ - 1 - i;
    Shard& shard = shards_[idx % shards_.size()];
    MutexLock lock(&shard.mu);
    shard.free_frames.push_back(idx);
  }
}

BufferPool::~BufferPool() {
  // Pin-leak check: every guard must have been released (or explicitly
  // leaked) by now; a live pin here means some caller lost track of a
  // page reference.
  const size_t leaked = pinned_frames();
  if (leaked > 0) {
    stats_.pin_leaks.store(leaked, std::memory_order_relaxed);
    if (options_.pin_leak_gauge != nullptr) {
      options_.pin_leak_gauge->fetch_add(leaked, std::memory_order_relaxed);
    }
    PICTDB_LOG_WARN() << leaked
                      << " page pin(s) still held at buffer pool "
                         "destruction";
    PICTDB_DCHECK(options_.tolerate_pin_leaks)
        << "buffer pool destroyed with " << leaked << " live pins";
  }
  // Best-effort flush; errors at teardown have nowhere to propagate,
  // but a failed final flush is dirty data that never reached disk —
  // silently swallowing it would hide real data loss, so log it.
  const Status flushed = FlushAll();
  if (!flushed.ok()) {
    PICTDB_LOG_WARN() << "final flush failed at buffer pool destruction: "
                      << flushed.ToString();
  }
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    MutexLock lock(&shards_[s].mu);
    for (size_t i = s; i < capacity_; i += shards_.size()) {
      const Frame& f = frames_[i];
      if (f.page_id != kInvalidPageId &&
          f.pin_count.load(std::memory_order_relaxed) > 0) {
        ++n;
      }
    }
  }
  return n;
}

void BufferPool::Unpin(size_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  Shard& shard = ShardForFrame(frame_idx);
  MutexLock lock(&shard.mu);
  const int prev = frame.pin_count.fetch_sub(1, std::memory_order_relaxed);
  PICTDB_CHECK(prev > 0) << "unpin of unpinned page " << frame.page_id;
  if (prev == 1) {
    shard.lru.push_back(frame_idx);
    frame.lru_pos = std::prev(shard.lru.end());
    frame.in_lru = true;
  }
}

void BufferPool::Backoff(int attempt) {
  const auto base = options_.retry_backoff_base.count();
  if (base <= 0) return;
  auto window = base << std::min(attempt, 20);
  window = std::min<decltype(window)>(window,
                                      options_.retry_backoff_cap.count());
  uint64_t jitter;
  {
    MutexLock lock(&jitter_mu_);
    jitter = jitter_rng_.Uniform(static_cast<uint64_t>(window) + 1);
  }
  if (jitter > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(jitter));
  }
}

Status BufferPool::ReadPageWithRetry(PageId id, char* out) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_read_retries; ++attempt) {
    if (attempt > 0) {
      stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
      Backoff(attempt - 1);
    }
    last = disk_->ReadPage(id, out);
    if (last.ok()) {
      if (!options_.checksum_pages) return Status::OK();
      last = VerifyPageTrailer(out, disk_->page_size(), id);
      if (last.ok()) return Status::OK();
      // A checksum failure may be a transient in-flight bit flip:
      // re-reading can clear it. Persistent corruption exhausts the
      // retry budget and propagates as DataLoss.
      stats_.checksum_failures.fetch_add(1, std::memory_order_relaxed);
    } else if (!last.IsIOError() && !last.IsDataLoss()) {
      return last;  // not transient by contract (e.g. OutOfRange)
    }
  }
  return last;
}

Status BufferPool::WritePageWithRetry(PageId id, char* data) {
  if (options_.checksum_pages) {
    StampPageTrailer(data, disk_->page_size());
  }
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_write_retries; ++attempt) {
    if (attempt > 0) {
      stats_.write_retries.fetch_add(1, std::memory_order_relaxed);
      Backoff(attempt - 1);
    }
    last = disk_->WritePage(id, data);
    if (last.ok() || !last.IsIOError()) return last;
  }
  return last;
}

StatusOr<size_t> BufferPool::GetVictimFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    const size_t idx = shard.free_frames.back();
    shard.free_frames.pop_back();
    return idx;
  }
  if (shard.lru.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames of the shard pinned");
  }
  const size_t idx = shard.lru.front();
  shard.lru.pop_front();
  Frame& frame = frames_[idx];
  frame.in_lru = false;
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  if (frame.dirty.load(std::memory_order_relaxed)) {
    // Written back under the shard lock: the victim must not be readable
    // from disk in its stale form once it leaves the page table.
    PICTDB_RETURN_IF_ERROR(
        WritePageWithRetry(frame.page_id, frame.data.get()));
    stats_.flushes.fetch_add(1, std::memory_order_relaxed);
    frame.dirty.store(false, std::memory_order_relaxed);
  }
  shard.page_table.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  return idx;
}

PageGuard BufferPool::PinFrame(Shard& shard, size_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  if (frame.pin_count.load(std::memory_order_relaxed) == 0 &&
      frame.in_lru) {
    shard.lru.erase(frame.lru_pos);
    frame.in_lru = false;
  }
  frame.pin_count.fetch_add(1, std::memory_order_relaxed);
  return PageGuard(this, frame.page_id, frame.data.get(), &frame.dirty,
                   frame_idx);
}

StatusOr<size_t> BufferPool::ClaimFrameLocked(Shard& shard, PageId id) {
  PICTDB_ASSIGN_OR_RETURN(const size_t idx, GetVictimFrame(shard));
  Frame& frame = frames_[idx];
  frame.page_id = id;
  frame.pin_count.store(1, std::memory_order_relaxed);
  shard.page_table[id] = idx;
  return idx;
}

StatusOr<PageGuard> BufferPool::FetchPageImpl(PageId id,
                                              bool overwrite_on_error) {
  Shard& shard = ShardForPage(id);
  // Explicit Lock/Unlock (not an RAII guard): the miss path hands the
  // lock back around its disk read, and the analysis checks that every
  // return below balances the acquire.
  shard.mu.Lock();
  stats_.fetches.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    auto it = shard.page_table.find(id);
    if (it == shard.page_table.end()) break;
    Frame& frame = frames_[it->second];
    if (frame.loading) {
      // Another thread is reading this page in; wait and re-probe (the
      // load may fail, in which case the entry disappears).
      shard.load_cv.Wait(&shard.mu);
      continue;
    }
    PageGuard guard = PinFrame(shard, it->second);
    shard.mu.Unlock();
    return guard;
  }

  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  StatusOr<size_t> claimed = ClaimFrameLocked(shard, id);
  if (!claimed.ok()) {
    shard.mu.Unlock();
    return std::move(claimed).status();
  }
  const size_t idx = claimed.value();
  Frame& frame = frames_[idx];
  frame.loading = true;
  shard.mu.Unlock();
  // The frame is pinned and flagged, so it cannot be evicted or handed
  // out while the read runs without the lock.
  const Status read = ReadPageWithRetry(id, frame.data.get());
  shard.mu.Lock();
  frame.loading = false;
  if (!read.ok()) {
    if (overwrite_on_error &&
        (read.IsDataLoss() || read.IsCorruption() || read.IsIOError())) {
      // Recovery caller will rewrite the whole page; hand out a zeroed
      // dirty frame instead of surfacing the torn/rotten on-disk image.
      std::memset(frame.data.get(), 0, disk_->page_size());
      frame.dirty.store(true, std::memory_order_relaxed);
      shard.load_cv.NotifyAll();
      shard.mu.Unlock();
      return PageGuard(this, id, frame.data.get(), &frame.dirty, idx);
    }
    shard.page_table.erase(id);
    frame.page_id = kInvalidPageId;
    frame.pin_count.store(0, std::memory_order_relaxed);
    shard.free_frames.push_back(idx);
    shard.load_cv.NotifyAll();
    shard.mu.Unlock();
    return read;
  }
  frame.dirty.store(false, std::memory_order_relaxed);
  shard.load_cv.NotifyAll();
  shard.mu.Unlock();
  return PageGuard(this, id, frame.data.get(), &frame.dirty, idx);
}

StatusOr<PageGuard> BufferPool::FetchPage(PageId id) {
  return FetchPageImpl(id, /*overwrite_on_error=*/false);
}

StatusOr<PageGuard> BufferPool::FetchPageForOverwrite(PageId id) {
  return FetchPageImpl(id, /*overwrite_on_error=*/true);
}

StatusOr<PageGuard> BufferPool::NewPage() {
  const PageId id = disk_->AllocatePage();
  Shard& shard = ShardForPage(id);
  MutexLock lock(&shard.mu);
  PICTDB_ASSIGN_OR_RETURN(const size_t idx, ClaimFrameLocked(shard, id));
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, disk_->page_size());
  // Must reach disk even if never written again.
  frame.dirty.store(true, std::memory_order_relaxed);
  return PageGuard(this, id, frame.data.get(), &frame.dirty, idx);
}

Status BufferPool::FreePage(PageId id) {
  Shard& shard = ShardForPage(id);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.page_table.find(id);
    if (it != shard.page_table.end()) {
      const size_t idx = it->second;
      Frame& frame = frames_[idx];
      if (frame.pin_count.load(std::memory_order_relaxed) > 0) {
        return Status::InvalidArgument("freeing pinned page " +
                                       std::to_string(id));
      }
      if (frame.in_lru) {
        shard.lru.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      frame.page_id = kInvalidPageId;
      frame.dirty.store(false, std::memory_order_relaxed);
      shard.page_table.erase(it);
      shard.free_frames.push_back(idx);
    }
  }
  disk_->DeallocatePage(id);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    MutexLock lock(&shards_[s].mu);
    for (size_t i = s; i < capacity_; i += shards_.size()) {
      Frame& frame = frames_[i];
      if (frame.page_id != kInvalidPageId &&
          frame.dirty.load(std::memory_order_relaxed)) {
        PICTDB_RETURN_IF_ERROR(
            WritePageWithRetry(frame.page_id, frame.data.get()));
        frame.dirty.store(false, std::memory_order_relaxed);
        stats_.flushes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

void BufferPool::PrefetchResident(std::span<const PageId> ids) {
#ifdef PICTDB_PREFETCH
  for (const PageId id : ids) {
    Shard& shard = ShardForPage(id);
    const char* data = nullptr;
    {
      MutexLock lock(&shard.mu);
      auto it = shard.page_table.find(id);
      if (it == shard.page_table.end()) continue;
      Frame& frame = frames_[it->second];
      if (frame.loading) continue;  // bytes not valid yet
      data = frame.data.get();
    }
    // Outside the shard lock: the frame may be evicted concurrently,
    // but its allocation is stable for the pool's lifetime, so at
    // worst the hint warms the wrong page's bytes. Cover the SoA node
    // header and the front of the rect columns; the sequential SIMD
    // scan's hardware prefetcher takes over from there.
    for (size_t off = 0; off < 256; off += 64) {
      __builtin_prefetch(data + off, /*rw=*/0, /*locality=*/2);
    }
  }
#else
  (void)ids;
#endif
}

}  // namespace pictdb::storage
