#ifndef PICTDB_STORAGE_HEAP_FILE_H_
#define PICTDB_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/status_or.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace pictdb::storage {

/// Record identifier: page + slot. This is the "tuple-identifier" stored
/// in R-tree leaf entries (the paper's backward pointer from picture to
/// relation tuple).
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool IsValid() const { return page_id != kInvalidPageId; }

  friend bool operator==(const Rid& a, const Rid& b) {
    return a.page_id == b.page_id && a.slot == b.slot;
  }
  friend bool operator<(const Rid& a, const Rid& b) {
    return a.page_id < b.page_id ||
           (a.page_id == b.page_id && a.slot < b.slot);
  }
};

/// Unordered collection of variable-length records in slotted pages,
/// chained into a linked list of pages. Records keep a stable Rid until
/// deleted. Backing store for relations.
class HeapFile {
 public:
  /// Create a new heap file in `pool`, allocating its first page.
  static StatusOr<HeapFile> Create(BufferPool* pool);

  /// Reattach to an existing heap file by its first page id.
  static HeapFile Open(BufferPool* pool, PageId first_page);

  /// Insert a record; returns its Rid.
  StatusOr<Rid> Insert(const Slice& record);

  /// Fetch a record's bytes.
  StatusOr<std::string> Get(const Rid& rid) const;

  /// Remove a record. Its slot becomes a tombstone (Rids are never
  /// recycled within a page, keeping external references unambiguous).
  Status Delete(const Rid& rid);

  /// Replace a record in place when it fits, else delete + reinsert
  /// (returning the possibly-new Rid).
  StatusOr<Rid> Update(const Rid& rid, const Slice& record);

  /// Rid of the first record at or after `prev` in file order, or an
  /// invalid Rid at the end. Pass a default Rid{first_page(),0} start via
  /// First().
  StatusOr<Rid> First() const;
  StatusOr<Rid> Next(const Rid& rid) const;

  /// Number of live (non-deleted) records.
  StatusOr<uint64_t> Count() const;

  PageId first_page() const { return first_page_; }

 private:
  HeapFile(BufferPool* pool, PageId first_page)
      : pool_(pool), first_page_(first_page) {}

  /// Scan from (page,slot) inclusive for the next live record.
  StatusOr<Rid> FindFrom(PageId page, uint16_t slot) const;

  BufferPool* pool_;
  PageId first_page_;
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_HEAP_FILE_H_
