#ifndef PICTDB_STORAGE_QUARANTINE_H_
#define PICTDB_STORAGE_QUARANTINE_H_

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "storage/page.h"

namespace pictdb::storage {

/// Thread-safe set of page ids known to be unreadable or corrupt.
/// Degraded-mode searches record the pages they had to skip here; the
/// ScrubAndRepack recovery routine reads it to keep those pages out of
/// the rebuilt tree (a quarantined id is never returned to the free
/// list, so the bad medium is never written to again).
class PageQuarantine {
 public:
  void Add(PageId id) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    pages_.insert(id);
  }

  bool Contains(PageId id) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pages_.count(id) != 0;
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pages_.size();
  }

  bool empty() const { return size() == 0; }

  /// Sorted copy, for reporting.
  std::vector<PageId> Snapshot() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    std::vector<PageId> out(pages_.begin(), pages_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  void Clear() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    pages_.clear();
  }

 private:
  mutable Mutex mu_;
  std::unordered_set<PageId> pages_ GUARDED_BY(mu_);
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_QUARANTINE_H_
