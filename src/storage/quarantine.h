#ifndef PICTDB_STORAGE_QUARANTINE_H_
#define PICTDB_STORAGE_QUARANTINE_H_

#include <algorithm>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "storage/page.h"

namespace pictdb::storage {

/// Thread-safe set of page ids known to be unreadable or corrupt.
/// Degraded-mode searches record the pages they had to skip here; the
/// ScrubAndRepack recovery routine reads it to keep those pages out of
/// the rebuilt tree (a quarantined id is never returned to the free
/// list, so the bad medium is never written to again).
class PageQuarantine {
 public:
  void Add(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    pages_.insert(id);
  }

  bool Contains(PageId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return pages_.count(id) != 0;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pages_.size();
  }

  bool empty() const { return size() == 0; }

  /// Sorted copy, for reporting.
  std::vector<PageId> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PageId> out(pages_.begin(), pages_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    pages_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_set<PageId> pages_;
};

}  // namespace pictdb::storage

#endif  // PICTDB_STORAGE_QUARANTINE_H_
