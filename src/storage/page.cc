#include "storage/page.h"

#include <array>
#include <cstring>
#include <string>

namespace pictdb::storage {

namespace {

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32(const char* data, size_t n) {
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = kCrcTable[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void StampPageTrailer(char* page, uint32_t page_size) {
  const uint32_t payload = page_size - kPageTrailerSize;
  const uint32_t crc = Crc32(page, payload);
  std::memcpy(page + payload, &kPageMagic, 4);
  std::memcpy(page + payload + 4, &crc, 4);
}

Status VerifyPageTrailer(const char* page, uint32_t page_size,
                         PageId page_id) {
  const uint32_t payload = page_size - kPageTrailerSize;
  uint32_t magic, stored_crc;
  std::memcpy(&magic, page + payload, 4);
  std::memcpy(&stored_crc, page + payload + 4, 4);
  if (magic == kPageMagic) {
    const uint32_t actual = Crc32(page, payload);
    if (actual == stored_crc) return Status::OK();
    return Status::DataLoss("checksum mismatch on page " +
                            std::to_string(page_id));
  }
  // A page that was allocated but never flushed is all zeros; accept it.
  for (uint32_t i = 0; i < page_size; ++i) {
    if (page[i] != 0) {
      return Status::DataLoss("unrecognized page trailer on page " +
                              std::to_string(page_id));
    }
  }
  return Status::OK();
}

}  // namespace pictdb::storage
