#ifndef PICTDB_WORKLOAD_US_CATALOG_H_
#define PICTDB_WORKLOAD_US_CATALOG_H_

#include "common/status.h"
#include "rel/catalog.h"

namespace pictdb::workload {

/// Materializes the paper's running example database into `catalog`:
///
///   cities(city, state, population, loc)       points, on us-map
///   states(state, population-density, loc)     regions, on state-map
///   time-zones(zone, hour-diff, loc)           regions, on time-zone-map
///   lakes(lake, area, volume, loc)             regions, on lake-map
///   highways(hwy-name, hwy-section, loc)       segments, on us-map
///
/// All five pictures share the continental-US lon/lat frame, so
/// juxtaposition ("geographic join") across them is meaningful. Spatial
/// indexes are PACK-built with the given branching factor; alphanumeric
/// indexes are created on cities.population and states.state.
Status BuildUsCatalog(rel::Catalog* catalog, size_t branching_factor = 8);

}  // namespace pictdb::workload

#endif  // PICTDB_WORKLOAD_US_CATALOG_H_
