#ifndef PICTDB_WORKLOAD_QUERIES_H_
#define PICTDB_WORKLOAD_QUERIES_H_

#include <vector>

#include "common/random.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace pictdb::workload {

/// The paper's Table 1 queries: "Is point (x,y) contained in the
/// database?" at uniformly random locations.
std::vector<geom::Point> RandomPointQueries(Random* rng, size_t n,
                                            const geom::Rect& frame);

/// Window queries whose area is `selectivity` of the frame's area, with
/// aspect ratio drawn in [0.5, 2]; clamped to the frame.
std::vector<geom::Rect> RandomWindowQueries(Random* rng, size_t n,
                                            double selectivity,
                                            const geom::Rect& frame);

}  // namespace pictdb::workload

#endif  // PICTDB_WORKLOAD_QUERIES_H_
