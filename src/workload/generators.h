#ifndef PICTDB_WORKLOAD_GENERATORS_H_
#define PICTDB_WORKLOAD_GENERATORS_H_

#include <vector>

#include "common/random.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace pictdb::workload {

/// The paper's experimental frame: coordinates in [0,1000]².
inline geom::Rect PaperFrame() { return geom::Rect(0, 0, 1000, 1000); }

/// `n` points uniform in `frame` — the paper's data distribution
/// ("randomly generated with a uniform distribution in the plane").
std::vector<geom::Point> UniformPoints(Random* rng, size_t n,
                                       const geom::Rect& frame);

/// Points drawn around `clusters` Gaussian centers (centers themselves
/// uniform in the frame); spread is `sigma` in frame units. Points are
/// clamped into the frame.
std::vector<geom::Point> ClusteredPoints(Random* rng, size_t n,
                                         size_t clusters, double sigma,
                                         const geom::Rect& frame);

/// Skewed marginal: x ~ frame width * U^alpha (alpha>1 piles points
/// toward the left edge), y uniform. Models the "dead space" maps the
/// paper worries about.
std::vector<geom::Point> SkewedPoints(Random* rng, size_t n, double alpha,
                                      const geom::Rect& frame);

/// Points on a jittered rows×cols lattice covering the frame.
std::vector<geom::Point> GridPoints(Random* rng, size_t rows, size_t cols,
                                    double jitter, const geom::Rect& frame);

/// `n` pairwise-disjoint axis-aligned rectangles: the frame is cut into a
/// lattice and each chosen cell hosts one random sub-rectangle, so
/// disjointness is structural. Models region objects (states, lakes).
std::vector<geom::Rect> DisjointRegions(Random* rng, size_t n,
                                        const geom::Rect& frame);

/// `n` random segments with length at most `max_len` (highway sections).
std::vector<geom::Segment> RandomSegments(Random* rng, size_t n,
                                          double max_len,
                                          const geom::Rect& frame);

}  // namespace pictdb::workload

#endif  // PICTDB_WORKLOAD_GENERATORS_H_
