#include "workload/queries.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pictdb::workload {

std::vector<geom::Point> RandomPointQueries(Random* rng, size_t n,
                                            const geom::Rect& frame) {
  std::vector<geom::Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(geom::Point{rng->UniformDouble(frame.lo.x, frame.hi.x),
                              rng->UniformDouble(frame.lo.y, frame.hi.y)});
  }
  return out;
}

std::vector<geom::Rect> RandomWindowQueries(Random* rng, size_t n,
                                            double selectivity,
                                            const geom::Rect& frame) {
  PICTDB_CHECK(selectivity > 0 && selectivity <= 1);
  std::vector<geom::Rect> out;
  out.reserve(n);
  const double area = selectivity * frame.Area();
  for (size_t i = 0; i < n; ++i) {
    const double aspect = rng->UniformDouble(0.5, 2.0);
    double w = std::sqrt(area * aspect);
    double h = area / w;
    w = std::min(w, frame.Width());
    h = std::min(h, frame.Height());
    const double x = rng->UniformDouble(frame.lo.x, frame.hi.x - w);
    const double y = rng->UniformDouble(frame.lo.y, frame.hi.y - h);
    out.push_back(geom::Rect(x, y, x + w, y + h));
  }
  return out;
}

}  // namespace pictdb::workload
