#ifndef PICTDB_WORKLOAD_US_CITIES_H_
#define PICTDB_WORKLOAD_US_CITIES_H_

#include <string_view>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace pictdb::workload {

/// One row of the embedded US-cities dataset — the paper's running
/// example relation cities(city, state, population, loc). Coordinates are
/// real longitude/latitude (negative longitudes: west).
struct UsCity {
  std::string_view name;
  std::string_view state;
  int64_t population;  // approximate metro-core population
  double lon;
  double lat;

  geom::Point loc() const { return geom::Point{lon, lat}; }
};

/// The full embedded table (~130 cities across the continental US plus
/// Alaska/Hawaii).
const std::vector<UsCity>& UsCities();

/// Cities within the continental US bounding box only (the paper's us-map
/// picture excludes AK/HI).
std::vector<UsCity> ContinentalUsCities();

/// MBR of the continental US in lon/lat.
geom::Rect ContinentalUsFrame();

/// Rough time-zone bands of the continental US in lon/lat (Eastern,
/// Central, Mountain, Pacific) for the paper's juxtaposition example.
struct UsTimeZone {
  std::string_view zone;
  int hour_diff;  // offset from UTC (standard time)
  geom::Rect band;
};
const std::vector<UsTimeZone>& UsTimeZones();

}  // namespace pictdb::workload

#endif  // PICTDB_WORKLOAD_US_CITIES_H_
