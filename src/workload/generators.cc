#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pictdb::workload {

std::vector<geom::Point> UniformPoints(Random* rng, size_t n,
                                       const geom::Rect& frame) {
  std::vector<geom::Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(geom::Point{rng->UniformDouble(frame.lo.x, frame.hi.x),
                              rng->UniformDouble(frame.lo.y, frame.hi.y)});
  }
  return out;
}

std::vector<geom::Point> ClusteredPoints(Random* rng, size_t n,
                                         size_t clusters, double sigma,
                                         const geom::Rect& frame) {
  PICTDB_CHECK(clusters >= 1);
  const std::vector<geom::Point> centers =
      UniformPoints(rng, clusters, frame);
  std::vector<geom::Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Point& c = centers[rng->Uniform(clusters)];
    geom::Point p{c.x + sigma * rng->NextGaussian(),
                  c.y + sigma * rng->NextGaussian()};
    p.x = std::clamp(p.x, frame.lo.x, frame.hi.x);
    p.y = std::clamp(p.y, frame.lo.y, frame.hi.y);
    out.push_back(p);
  }
  return out;
}

std::vector<geom::Point> SkewedPoints(Random* rng, size_t n, double alpha,
                                      const geom::Rect& frame) {
  PICTDB_CHECK(alpha > 0);
  std::vector<geom::Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = std::pow(rng->NextDouble(), alpha);
    out.push_back(
        geom::Point{frame.lo.x + u * frame.Width(),
                    rng->UniformDouble(frame.lo.y, frame.hi.y)});
  }
  return out;
}

std::vector<geom::Point> GridPoints(Random* rng, size_t rows, size_t cols,
                                    double jitter, const geom::Rect& frame) {
  PICTDB_CHECK(rows >= 1 && cols >= 1);
  std::vector<geom::Point> out;
  out.reserve(rows * cols);
  const double dx = frame.Width() / static_cast<double>(cols);
  const double dy = frame.Height() / static_cast<double>(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double cx = frame.lo.x + (static_cast<double>(c) + 0.5) * dx;
      const double cy = frame.lo.y + (static_cast<double>(r) + 0.5) * dy;
      out.push_back(geom::Point{
          cx + jitter * dx * (rng->NextDouble() - 0.5),
          cy + jitter * dy * (rng->NextDouble() - 0.5)});
    }
  }
  return out;
}

std::vector<geom::Rect> DisjointRegions(Random* rng, size_t n,
                                        const geom::Rect& frame) {
  // Lattice with at least n cells; shuffle cell order, then carve one
  // strictly interior sub-rectangle per cell.
  const size_t side = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<size_t> cells(side * side);
  for (size_t i = 0; i < cells.size(); ++i) cells[i] = i;
  // Fisher-Yates.
  for (size_t i = cells.size(); i > 1; --i) {
    std::swap(cells[i - 1], cells[rng->Uniform(i)]);
  }

  const double dx = frame.Width() / static_cast<double>(side);
  const double dy = frame.Height() / static_cast<double>(side);
  std::vector<geom::Rect> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t cx = cells[i] % side;
    const size_t cy = cells[i] / side;
    const double x0 = frame.lo.x + static_cast<double>(cx) * dx;
    const double y0 = frame.lo.y + static_cast<double>(cy) * dy;
    // Keep a 5% margin so neighbours never touch.
    const double w = dx * rng->UniformDouble(0.2, 0.9);
    const double h = dy * rng->UniformDouble(0.2, 0.9);
    const double ox = rng->UniformDouble(0.05, 0.95 - w / dx) * dx;
    const double oy = rng->UniformDouble(0.05, 0.95 - h / dy) * dy;
    out.push_back(geom::Rect(x0 + ox, y0 + oy, x0 + ox + w, y0 + oy + h));
  }
  return out;
}

std::vector<geom::Segment> RandomSegments(Random* rng, size_t n,
                                          double max_len,
                                          const geom::Rect& frame) {
  std::vector<geom::Segment> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Point a{rng->UniformDouble(frame.lo.x, frame.hi.x),
                        rng->UniformDouble(frame.lo.y, frame.hi.y)};
    const double angle = rng->UniformDouble(0, 2 * M_PI);
    const double len = rng->UniformDouble(0, max_len);
    geom::Point b{a.x + len * std::cos(angle), a.y + len * std::sin(angle)};
    b.x = std::clamp(b.x, frame.lo.x, frame.hi.x);
    b.y = std::clamp(b.y, frame.lo.y, frame.hi.y);
    out.push_back(geom::Segment{a, b});
  }
  return out;
}

}  // namespace pictdb::workload
