#include "workload/us_catalog.h"

#include "workload/us_cities.h"

namespace pictdb::workload {

namespace {

using geom::Geometry;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Segment;
using rel::Column;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

/// Simplified state outlines (bounding boxes in lon/lat) for the states
/// the paper's examples touch; enough to exercise region search and the
/// nested lakes-in-eastern-states mapping.
struct StateBox {
  const char* name;
  double density;  // people per square mile, approximate
  Rect box;
};

const StateBox kStates[] = {
    {"New York", 428.7, Rect(-79.8, 40.5, -71.8, 45.0)},
    {"Pennsylvania", 290.6, Rect(-80.5, 39.7, -74.7, 42.3)},
    {"Ohio", 288.8, Rect(-84.8, 38.4, -80.5, 42.0)},
    {"Michigan", 177.7, Rect(-90.4, 41.7, -82.4, 48.3)},
    {"Illinois", 230.8, Rect(-91.5, 36.9, -87.0, 42.5)},
    {"Wisconsin", 108.8, Rect(-92.9, 42.5, -86.2, 47.1)},
    {"Minnesota", 71.7, Rect(-97.2, 43.5, -89.5, 49.4)},
    {"Florida", 401.4, Rect(-87.6, 24.5, -80.0, 31.0)},
    {"Texas", 111.6, Rect(-106.6, 25.8, -93.5, 36.5)},
    {"California", 253.7, Rect(-124.4, 32.5, -114.1, 42.0)},
    {"Nevada", 28.6, Rect(-120.0, 35.0, -114.0, 42.0)},
    {"Utah", 39.7, Rect(-114.1, 37.0, -109.0, 42.0)},
    {"Colorado", 55.7, Rect(-109.1, 37.0, -102.0, 41.0)},
    {"Washington", 115.9, Rect(-124.8, 45.5, -116.9, 49.0)},
    {"Oregon", 44.1, Rect(-124.6, 42.0, -116.5, 46.3)},
    {"Georgia", 185.2, Rect(-85.6, 30.4, -80.8, 35.0)},
    {"Virginia", 218.4, Rect(-83.7, 36.5, -75.2, 39.5)},
    {"North Carolina", 214.7, Rect(-84.3, 33.8, -75.5, 36.6)},
    {"Maine", 43.6, Rect(-71.1, 43.1, -66.9, 47.5)},
    {"Arizona", 64.9, Rect(-114.8, 31.3, -109.0, 37.0)},
};

/// The Great Lakes plus a few others, as bounding-box regions with
/// surface area (sq mi) and volume (cubic mi).
struct LakeBox {
  const char* name;
  double area;
  double volume;
  Rect box;
};

const LakeBox kLakes[] = {
    {"Lake Superior", 31700, 2900, Rect(-92.1, 46.4, -84.3, 49.0)},
    {"Lake Michigan", 22404, 1180, Rect(-88.1, 41.6, -85.5, 46.1)},
    {"Lake Huron", 23007, 850, Rect(-84.8, 43.0, -79.7, 46.3)},
    {"Lake Erie", 9910, 116, Rect(-83.5, 41.4, -78.9, 42.9)},
    {"Lake Ontario", 7340, 393, Rect(-79.8, 43.2, -76.0, 44.2)},
    {"Great Salt Lake", 1700, 4.5, Rect(-113.1, 40.7, -111.9, 41.7)},
    {"Lake Okeechobee", 734, 1.0, Rect(-81.1, 26.7, -80.6, 27.2)},
    {"Lake Champlain", 490, 6.2, Rect(-73.4, 43.5, -73.1, 44.9)},
    {"Lake Tahoe", 191, 36, Rect(-120.2, 38.9, -119.9, 39.3)},
    {"Lake Mead", 247, 7.0, Rect(-114.9, 36.0, -114.0, 36.5)},
};

/// Interstate-flavoured highway sections as segments between city pairs.
struct HighwaySeg {
  const char* name;
  int section;
  const char* from_city;
  const char* to_city;
};

const HighwaySeg kHighways[] = {
    {"I-95", 1, "Miami", "Jacksonville"},
    {"I-95", 2, "Jacksonville", "Richmond"},
    {"I-95", 3, "Richmond", "Washington"},
    {"I-95", 4, "Washington", "Philadelphia"},
    {"I-95", 5, "Philadelphia", "New York"},
    {"I-95", 6, "New York", "Boston"},
    {"I-80", 1, "San Francisco", "Reno"},
    {"I-80", 2, "Reno", "Salt Lake City"},
    {"I-80", 3, "Salt Lake City", "Cheyenne"},
    {"I-80", 4, "Cheyenne", "Omaha"},
    {"I-80", 5, "Omaha", "Chicago"},
    {"I-80", 6, "Chicago", "Toledo"},
    {"I-80", 7, "Toledo", "New York"},
    {"I-10", 1, "Los Angeles", "Phoenix"},
    {"I-10", 2, "Phoenix", "El Paso"},
    {"I-10", 3, "El Paso", "San Antonio"},
    {"I-10", 4, "San Antonio", "Houston"},
    {"I-10", 5, "Houston", "New Orleans"},
    {"I-10", 6, "New Orleans", "Tallahassee"},
    {"I-10", 7, "Tallahassee", "Jacksonville"},
    {"I-5", 1, "San Diego", "Los Angeles"},
    {"I-5", 2, "Los Angeles", "Sacramento"},
    {"I-5", 3, "Sacramento", "Portland"},
    {"I-5", 4, "Portland", "Seattle"},
    {"I-90", 1, "Seattle", "Spokane"},
    {"I-90", 2, "Spokane", "Billings"},
    {"I-90", 3, "Billings", "Sioux Falls"},
    {"I-90", 4, "Sioux Falls", "Madison"},
    {"I-90", 5, "Madison", "Chicago"},
    {"I-90", 6, "Chicago", "Cleveland"},
    {"I-90", 7, "Cleveland", "Buffalo"},
    {"I-90", 8, "Buffalo", "Boston"},
};

StatusOr<Point> CityLoc(const char* name) {
  for (const UsCity& c : UsCities()) {
    if (c.name == name) return c.loc();
  }
  return Status::NotFound(std::string("unknown city ") + name);
}

}  // namespace

Status BuildUsCatalog(rel::Catalog* catalog, size_t branching_factor) {
  const Rect frame = ContinentalUsFrame();
  rtree::RTreeOptions rtree_options;
  rtree_options.max_entries = branching_factor;

  // --- cities -------------------------------------------------------------
  PICTDB_RETURN_IF_ERROR(catalog->CreateRelation(
      "cities", Schema({{"city", ValueType::kString},
                        {"state", ValueType::kString},
                        {"population", ValueType::kInt},
                        {"loc", ValueType::kGeometry}})));
  {
    PICTDB_ASSIGN_OR_RETURN(rel::Relation * cities,
                            catalog->GetRelation("cities"));
    for (const UsCity& c : ContinentalUsCities()) {
      PICTDB_RETURN_IF_ERROR(
          cities
              ->Insert(Tuple({Value(std::string(c.name)),
                              Value(std::string(c.state)),
                              Value(c.population), Value(Geometry(c.loc()))}))
              .status());
    }
    PICTDB_RETURN_IF_ERROR(cities->CreateBTreeIndex("population"));
    PICTDB_RETURN_IF_ERROR(cities->CreateBTreeIndex("city"));
  }

  // --- states --------------------------------------------------------------
  PICTDB_RETURN_IF_ERROR(catalog->CreateRelation(
      "states", Schema({{"state", ValueType::kString},
                        {"population-density", ValueType::kDouble},
                        {"loc", ValueType::kGeometry}})));
  {
    PICTDB_ASSIGN_OR_RETURN(rel::Relation * states,
                            catalog->GetRelation("states"));
    for (const StateBox& s : kStates) {
      PICTDB_RETURN_IF_ERROR(
          states
              ->Insert(Tuple({Value(std::string(s.name)), Value(s.density),
                              Value(Geometry(Polygon::FromRect(s.box)))}))
              .status());
    }
    PICTDB_RETURN_IF_ERROR(states->CreateBTreeIndex("state"));
  }

  // --- time-zones ------------------------------------------------------------
  PICTDB_RETURN_IF_ERROR(catalog->CreateRelation(
      "time-zones", Schema({{"zone", ValueType::kString},
                            {"hour-diff", ValueType::kInt},
                            {"loc", ValueType::kGeometry}})));
  {
    PICTDB_ASSIGN_OR_RETURN(rel::Relation * zones,
                            catalog->GetRelation("time-zones"));
    for (const UsTimeZone& z : UsTimeZones()) {
      PICTDB_RETURN_IF_ERROR(
          zones
              ->Insert(Tuple({Value(std::string(z.zone)),
                              Value(static_cast<int64_t>(z.hour_diff)),
                              Value(Geometry(z.band))}))
              .status());
    }
  }

  // --- lakes -------------------------------------------------------------------
  PICTDB_RETURN_IF_ERROR(catalog->CreateRelation(
      "lakes", Schema({{"lake", ValueType::kString},
                       {"area", ValueType::kDouble},
                       {"volume", ValueType::kDouble},
                       {"loc", ValueType::kGeometry}})));
  {
    PICTDB_ASSIGN_OR_RETURN(rel::Relation * lakes,
                            catalog->GetRelation("lakes"));
    for (const LakeBox& l : kLakes) {
      PICTDB_RETURN_IF_ERROR(
          lakes
              ->Insert(Tuple({Value(std::string(l.name)), Value(l.area),
                              Value(l.volume), Value(Geometry(l.box))}))
              .status());
    }
  }

  // --- highways -------------------------------------------------------------------
  PICTDB_RETURN_IF_ERROR(catalog->CreateRelation(
      "highways", Schema({{"hwy-name", ValueType::kString},
                          {"hwy-section", ValueType::kInt},
                          {"loc", ValueType::kGeometry}})));
  {
    PICTDB_ASSIGN_OR_RETURN(rel::Relation * highways,
                            catalog->GetRelation("highways"));
    for (const HighwaySeg& h : kHighways) {
      PICTDB_ASSIGN_OR_RETURN(const Point a, CityLoc(h.from_city));
      PICTDB_ASSIGN_OR_RETURN(const Point b, CityLoc(h.to_city));
      PICTDB_RETURN_IF_ERROR(
          highways
              ->Insert(Tuple({Value(std::string(h.name)),
                              Value(static_cast<int64_t>(h.section)),
                              Value(Geometry(Segment{a, b}))}))
              .status());
    }
  }

  // --- pictures: packed R-trees per association ----------------------------------
  for (const char* picture : {"us-map", "state-map", "time-zone-map",
                              "lake-map"}) {
    PICTDB_RETURN_IF_ERROR(catalog->CreatePicture(picture, frame));
  }
  PICTDB_RETURN_IF_ERROR(
      catalog->Associate("us-map", "cities", "loc", rtree_options));
  PICTDB_RETURN_IF_ERROR(
      catalog->Associate("us-map", "highways", "loc", rtree_options));
  PICTDB_RETURN_IF_ERROR(
      catalog->Associate("state-map", "states", "loc", rtree_options));
  PICTDB_RETURN_IF_ERROR(catalog->Associate("time-zone-map", "time-zones",
                                            "loc", rtree_options));
  PICTDB_RETURN_IF_ERROR(
      catalog->Associate("lake-map", "lakes", "loc", rtree_options));
  return Status::OK();
}

}  // namespace pictdb::workload
