#ifndef PICTDB_SIMD_DISPATCH_H_
#define PICTDB_SIMD_DISPATCH_H_

#include "simd/rect_kernels.h"

namespace pictdb::simd {

/// The kernel family the search hot path should use, chosen once at
/// first call (thread-safe) by the rules in DESIGN.md §13:
///
///   1. built with -DPICTDB_DISABLE_SIMD=ON        -> scalar
///   2. env var PICTDB_DISABLE_SIMD set non-"0"    -> scalar
///   3. CPU supports AVX2                          -> avx2
///   4. x86-64 baseline                            -> sse2
///   5. anything else                              -> scalar
///
/// All families are bit-identical (enforced by tests/simd_kernel_test),
/// so the choice affects throughput only, never results.
const RectKernels& ActiveKernels();

/// True when ActiveKernels() resolved to a vector family.
bool SimdActive();

/// Test-only: force every subsequent ActiveKernels() call to return
/// `kernels` until destruction (nullptr restores the runtime choice).
/// The golden determinism tests use this to replay identical query
/// streams through the scalar and vector paths inside one process.
/// Not for concurrent use with live traffic.
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(const RectKernels* kernels);
  ~ScopedKernelOverride();

  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  const RectKernels* prev_;
};

}  // namespace pictdb::simd

#endif  // PICTDB_SIMD_DISPATCH_H_
