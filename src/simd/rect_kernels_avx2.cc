// AVX2 variants of the rect kernels, isolated in their own translation
// unit so the rest of the library never emits AVX instructions: these
// functions carry the `target("avx2")` attribute (no global -mavx2
// flag), and dispatch.cc only hands them out after a cpuid check.

#include "simd/rect_kernels.h"

#if defined(__x86_64__) && !defined(PICTDB_DISABLE_SIMD)

#include <immintrin.h>

#include <cstring>

namespace pictdb::simd {

namespace {

constexpr size_t kEntryStride = 40;  // 4 coordinate doubles + u64 payload

inline void ZeroMask(uint64_t* out, size_t count) {
  const size_t words = MaskWords(count);
  for (size_t w = 0; w < words; ++w) out[w] = 0;
}

inline void SetBit(uint64_t* out, size_t i) {
  out[i >> 6] |= uint64_t{1} << (i & 63);
}

// _CMP_LE_OQ / _CMP_GT_OQ return false when either operand is NaN,
// matching the scalar <= and > operators — see the NaN notes on the
// scalar kernels in rect_kernels.cc.

__attribute__((target("avx2"))) void Avx2Intersects(
    const RectSoa& soa, const geom::Rect& window, uint64_t* out) {
  ZeroMask(out, soa.count);
  if (window.IsEmpty()) return;  // empty windows intersect nothing
  const __m256d wlox = _mm256_set1_pd(window.lo.x);
  const __m256d wloy = _mm256_set1_pd(window.lo.y);
  const __m256d whix = _mm256_set1_pd(window.hi.x);
  const __m256d whiy = _mm256_set1_pd(window.hi.y);
  size_t i = 0;
  for (; i + 4 <= soa.count; i += 4) {
    const __m256d xmin = _mm256_loadu_pd(soa.xmin + i);
    const __m256d ymin = _mm256_loadu_pd(soa.ymin + i);
    const __m256d xmax = _mm256_loadu_pd(soa.xmax + i);
    const __m256d ymax = _mm256_loadu_pd(soa.ymax + i);
    // Non-empty rect AND 4-way closed-interval overlap with the window.
    __m256d m = _mm256_cmp_pd(xmin, xmax, _CMP_LE_OQ);
    m = _mm256_and_pd(m, _mm256_cmp_pd(ymin, ymax, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(xmin, whix, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(wlox, xmax, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(ymin, whiy, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(wloy, ymax, _CMP_LE_OQ));
    const uint64_t bits =
        static_cast<uint64_t>(static_cast<uint32_t>(_mm256_movemask_pd(m)));
    out[i >> 6] |= bits << (i & 63);
  }
  for (; i < soa.count; ++i) {
    if (LaneRect(soa, i).Intersects(window)) SetBit(out, i);
  }
}

__attribute__((target("avx2"))) void Avx2ContainedIn(
    const RectSoa& soa, const geom::Rect& window, uint64_t* out) {
  ZeroMask(out, soa.count);
  const bool window_nonempty = !window.IsEmpty();
  const __m256d wlox = _mm256_set1_pd(window.lo.x);
  const __m256d wloy = _mm256_set1_pd(window.lo.y);
  const __m256d whix = _mm256_set1_pd(window.hi.x);
  const __m256d whiy = _mm256_set1_pd(window.hi.y);
  size_t i = 0;
  for (; i + 4 <= soa.count; i += 4) {
    const __m256d xmin = _mm256_loadu_pd(soa.xmin + i);
    const __m256d ymin = _mm256_loadu_pd(soa.ymin + i);
    const __m256d xmax = _mm256_loadu_pd(soa.xmax + i);
    const __m256d ymax = _mm256_loadu_pd(soa.ymax + i);
    // Rect::Contains: an empty operand is contained in anything;
    // otherwise the window must be non-empty and bound it on all sides.
    const __m256d empty =
        _mm256_or_pd(_mm256_cmp_pd(xmin, xmax, _CMP_GT_OQ),
                     _mm256_cmp_pd(ymin, ymax, _CMP_GT_OQ));
    __m256d m = empty;
    if (window_nonempty) {
      __m256d inside = _mm256_cmp_pd(wlox, xmin, _CMP_LE_OQ);
      inside = _mm256_and_pd(inside, _mm256_cmp_pd(xmax, whix, _CMP_LE_OQ));
      inside = _mm256_and_pd(inside, _mm256_cmp_pd(wloy, ymin, _CMP_LE_OQ));
      inside = _mm256_and_pd(inside, _mm256_cmp_pd(ymax, whiy, _CMP_LE_OQ));
      m = _mm256_or_pd(empty, inside);
    }
    const uint64_t bits =
        static_cast<uint64_t>(static_cast<uint32_t>(_mm256_movemask_pd(m)));
    out[i >> 6] |= bits << (i & 63);
  }
  for (; i < soa.count; ++i) {
    if (window.Contains(LaneRect(soa, i))) SetBit(out, i);
  }
}

__attribute__((target("avx2"))) void Avx2ContainsPoint(
    const RectSoa& soa, const geom::Point& p, uint64_t* out) {
  ZeroMask(out, soa.count);
  const __m256d px = _mm256_set1_pd(p.x);
  const __m256d py = _mm256_set1_pd(p.y);
  size_t i = 0;
  for (; i + 4 <= soa.count; i += 4) {
    const __m256d xmin = _mm256_loadu_pd(soa.xmin + i);
    const __m256d ymin = _mm256_loadu_pd(soa.ymin + i);
    const __m256d xmax = _mm256_loadu_pd(soa.xmax + i);
    const __m256d ymax = _mm256_loadu_pd(soa.ymax + i);
    // The two-sided interval test subsumes Rect::Contains(Point)'s
    // IsEmpty check (<= is transitive on non-NaN operands).
    __m256d m = _mm256_cmp_pd(xmin, px, _CMP_LE_OQ);
    m = _mm256_and_pd(m, _mm256_cmp_pd(px, xmax, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(ymin, py, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(py, ymax, _CMP_LE_OQ));
    const uint64_t bits =
        static_cast<uint64_t>(static_cast<uint32_t>(_mm256_movemask_pd(m)));
    out[i >> 6] |= bits << (i & 63);
  }
  for (; i < soa.count; ++i) {
    if (LaneRect(soa, i).Contains(p)) SetBit(out, i);
  }
}

__attribute__((target("avx2"))) void Avx2Transpose(
    const char* entries, size_t count, double* xmin, double* ymin,
    double* xmax, double* ymax, uint64_t* payloads) {
  // Classic 4x4 double transpose: four entries' coordinate rows in,
  // four coordinate columns out. Loads/unpacks/permutes are
  // bit-preserving, so NaN and denormal lanes survive verbatim.
  size_t i = 0;
  const char* p = entries;
  for (; i + 4 <= count; i += 4, p += 4 * kEntryStride) {
    const __m256d r0 =
        _mm256_loadu_pd(reinterpret_cast<const double*>(p));
    const __m256d r1 =
        _mm256_loadu_pd(reinterpret_cast<const double*>(p + kEntryStride));
    const __m256d r2 = _mm256_loadu_pd(
        reinterpret_cast<const double*>(p + 2 * kEntryStride));
    const __m256d r3 = _mm256_loadu_pd(
        reinterpret_cast<const double*>(p + 3 * kEntryStride));
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // xmin0 xmin1 | xmax0 xmax1
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // ymin0 ymin1 | ymax0 ymax1
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    _mm256_storeu_pd(xmin + i, _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(ymin + i, _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(xmax + i, _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(ymax + i, _mm256_permute2f128_pd(t1, t3, 0x31));
    std::memcpy(payloads + i, p + 32, 8);
    std::memcpy(payloads + i + 1, p + kEntryStride + 32, 8);
    std::memcpy(payloads + i + 2, p + 2 * kEntryStride + 32, 8);
    std::memcpy(payloads + i + 3, p + 3 * kEntryStride + 32, 8);
  }
  for (; i < count; ++i, p += kEntryStride) {
    std::memcpy(xmin + i, p, 8);
    std::memcpy(ymin + i, p + 8, 8);
    std::memcpy(xmax + i, p + 16, 8);
    std::memcpy(ymax + i, p + 24, 8);
    std::memcpy(payloads + i, p + 32, 8);
  }
}

}  // namespace

const RectKernels* Avx2Kernels() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  if (!supported) return nullptr;
  static constexpr RectKernels kAvx2{"avx2", &Avx2Intersects,
                                     &Avx2ContainedIn, &Avx2ContainsPoint,
                                     &Avx2Transpose};
  return &kAvx2;
}

}  // namespace pictdb::simd

#else  // !x86-64 or PICTDB_DISABLE_SIMD

namespace pictdb::simd {

const RectKernels* Avx2Kernels() { return nullptr; }

}  // namespace pictdb::simd

#endif
