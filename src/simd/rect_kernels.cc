#include "simd/rect_kernels.h"

#include <cstring>

#if defined(__x86_64__) && !defined(PICTDB_DISABLE_SIMD)
#include <emmintrin.h>
#define PICTDB_HAVE_SSE2 1
#endif

namespace pictdb::simd {

namespace {

// On-disk entry stride: 4 coordinate doubles + the 64-bit payload.
constexpr size_t kEntryStride = 40;

inline void ZeroMask(uint64_t* out, size_t count) {
  const size_t words = MaskWords(count);
  for (size_t w = 0; w < words; ++w) out[w] = 0;
}

inline void SetBit(uint64_t* out, size_t i) {
  out[i >> 6] |= uint64_t{1} << (i & 63);
}

// --- Scalar reference kernels ------------------------------------------
// Deliberately phrased as calls into geom::Rect so the scalar kernel IS
// the Rect semantics — there is no second scalar implementation to
// drift.

void ScalarIntersects(const RectSoa& soa, const geom::Rect& window,
                      uint64_t* out) {
  ZeroMask(out, soa.count);
  for (size_t i = 0; i < soa.count; ++i) {
    if (LaneRect(soa, i).Intersects(window)) SetBit(out, i);
  }
}

void ScalarContainedIn(const RectSoa& soa, const geom::Rect& window,
                       uint64_t* out) {
  ZeroMask(out, soa.count);
  for (size_t i = 0; i < soa.count; ++i) {
    if (window.Contains(LaneRect(soa, i))) SetBit(out, i);
  }
}

void ScalarContainsPoint(const RectSoa& soa, const geom::Point& p,
                         uint64_t* out) {
  ZeroMask(out, soa.count);
  for (size_t i = 0; i < soa.count; ++i) {
    if (LaneRect(soa, i).Contains(p)) SetBit(out, i);
  }
}

void ScalarTranspose(const char* entries, size_t count, double* xmin,
                     double* ymin, double* xmax, double* ymax,
                     uint64_t* payloads) {
  const char* p = entries;
  for (size_t i = 0; i < count; ++i, p += kEntryStride) {
    std::memcpy(xmin + i, p, 8);
    std::memcpy(ymin + i, p + 8, 8);
    std::memcpy(xmax + i, p + 16, 8);
    std::memcpy(ymax + i, p + 24, 8);
    std::memcpy(payloads + i, p + 32, 8);
  }
}

#ifdef PICTDB_HAVE_SSE2

// --- SSE2 kernels (2 doubles per vector) -------------------------------
// All comparisons use the cmple/cmpgt forms whose NaN behaviour (any
// NaN operand -> false) matches the scalar <= and > operators, so NaN
// lanes fall out of every predicate exactly as they do in geom::Rect.

void Sse2Intersects(const RectSoa& soa, const geom::Rect& window,
                    uint64_t* out) {
  ZeroMask(out, soa.count);
  if (window.IsEmpty()) return;  // empty windows intersect nothing
  const __m128d wlox = _mm_set1_pd(window.lo.x);
  const __m128d wloy = _mm_set1_pd(window.lo.y);
  const __m128d whix = _mm_set1_pd(window.hi.x);
  const __m128d whiy = _mm_set1_pd(window.hi.y);
  size_t i = 0;
  for (; i + 2 <= soa.count; i += 2) {
    const __m128d xmin = _mm_loadu_pd(soa.xmin + i);
    const __m128d ymin = _mm_loadu_pd(soa.ymin + i);
    const __m128d xmax = _mm_loadu_pd(soa.xmax + i);
    const __m128d ymax = _mm_loadu_pd(soa.ymax + i);
    // Non-empty rect (xmin<=xmax && ymin<=ymax) AND the 4-way closed
    // interval overlap against the window.
    __m128d m = _mm_cmple_pd(xmin, xmax);
    m = _mm_and_pd(m, _mm_cmple_pd(ymin, ymax));
    m = _mm_and_pd(m, _mm_cmple_pd(xmin, whix));
    m = _mm_and_pd(m, _mm_cmple_pd(wlox, xmax));
    m = _mm_and_pd(m, _mm_cmple_pd(ymin, whiy));
    m = _mm_and_pd(m, _mm_cmple_pd(wloy, ymax));
    const uint64_t bits = static_cast<uint64_t>(_mm_movemask_pd(m));
    out[i >> 6] |= bits << (i & 63);
  }
  for (; i < soa.count; ++i) {
    if (LaneRect(soa, i).Intersects(window)) SetBit(out, i);
  }
}

void Sse2ContainedIn(const RectSoa& soa, const geom::Rect& window,
                     uint64_t* out) {
  ZeroMask(out, soa.count);
  const bool window_nonempty = !window.IsEmpty();
  const __m128d wlox = _mm_set1_pd(window.lo.x);
  const __m128d wloy = _mm_set1_pd(window.lo.y);
  const __m128d whix = _mm_set1_pd(window.hi.x);
  const __m128d whiy = _mm_set1_pd(window.hi.y);
  size_t i = 0;
  for (; i + 2 <= soa.count; i += 2) {
    const __m128d xmin = _mm_loadu_pd(soa.xmin + i);
    const __m128d ymin = _mm_loadu_pd(soa.ymin + i);
    const __m128d xmax = _mm_loadu_pd(soa.xmax + i);
    const __m128d ymax = _mm_loadu_pd(soa.ymax + i);
    // Rect::Contains: an empty operand is contained in anything (even
    // an empty window); otherwise the window must be non-empty and
    // bound it on all four sides.
    const __m128d empty = _mm_or_pd(_mm_cmpgt_pd(xmin, xmax),
                                    _mm_cmpgt_pd(ymin, ymax));
    __m128d m = empty;
    if (window_nonempty) {
      __m128d inside = _mm_cmple_pd(wlox, xmin);
      inside = _mm_and_pd(inside, _mm_cmple_pd(xmax, whix));
      inside = _mm_and_pd(inside, _mm_cmple_pd(wloy, ymin));
      inside = _mm_and_pd(inside, _mm_cmple_pd(ymax, whiy));
      m = _mm_or_pd(empty, inside);
    }
    const uint64_t bits = static_cast<uint64_t>(_mm_movemask_pd(m));
    out[i >> 6] |= bits << (i & 63);
  }
  for (; i < soa.count; ++i) {
    if (window.Contains(LaneRect(soa, i))) SetBit(out, i);
  }
}

void Sse2ContainsPoint(const RectSoa& soa, const geom::Point& p,
                       uint64_t* out) {
  ZeroMask(out, soa.count);
  const __m128d px = _mm_set1_pd(p.x);
  const __m128d py = _mm_set1_pd(p.y);
  size_t i = 0;
  for (; i + 2 <= soa.count; i += 2) {
    const __m128d xmin = _mm_loadu_pd(soa.xmin + i);
    const __m128d ymin = _mm_loadu_pd(soa.ymin + i);
    const __m128d xmax = _mm_loadu_pd(soa.xmax + i);
    const __m128d ymax = _mm_loadu_pd(soa.ymax + i);
    // xmin<=px<=xmax && ymin<=py<=ymax implies the rect is non-empty
    // (IEEE <= is transitive on non-NaN), so the explicit IsEmpty test
    // in Rect::Contains(Point) is subsumed.
    __m128d m = _mm_cmple_pd(xmin, px);
    m = _mm_and_pd(m, _mm_cmple_pd(px, xmax));
    m = _mm_and_pd(m, _mm_cmple_pd(ymin, py));
    m = _mm_and_pd(m, _mm_cmple_pd(py, ymax));
    const uint64_t bits = static_cast<uint64_t>(_mm_movemask_pd(m));
    out[i >> 6] |= bits << (i & 63);
  }
  for (; i < soa.count; ++i) {
    if (LaneRect(soa, i).Contains(p)) SetBit(out, i);
  }
}

void Sse2Transpose(const char* entries, size_t count, double* xmin,
                   double* ymin, double* xmax, double* ymax,
                   uint64_t* payloads) {
  // Pairwise 2x2 transposes of the coordinate columns; movupd/unpck are
  // bit-preserving, so NaN and denormal lanes survive verbatim.
  size_t i = 0;
  const char* p = entries;
  for (; i + 2 <= count; i += 2, p += 2 * kEntryStride) {
    const __m128d lo0 =
        _mm_loadu_pd(reinterpret_cast<const double*>(p));  // x0 y0 (lo)
    const __m128d hi0 =
        _mm_loadu_pd(reinterpret_cast<const double*>(p + 16));
    const __m128d lo1 =
        _mm_loadu_pd(reinterpret_cast<const double*>(p + kEntryStride));
    const __m128d hi1 =
        _mm_loadu_pd(reinterpret_cast<const double*>(p + kEntryStride + 16));
    _mm_storeu_pd(xmin + i, _mm_unpacklo_pd(lo0, lo1));
    _mm_storeu_pd(ymin + i, _mm_unpackhi_pd(lo0, lo1));
    _mm_storeu_pd(xmax + i, _mm_unpacklo_pd(hi0, hi1));
    _mm_storeu_pd(ymax + i, _mm_unpackhi_pd(hi0, hi1));
    std::memcpy(payloads + i, p + 32, 8);
    std::memcpy(payloads + i + 1, p + kEntryStride + 32, 8);
  }
  if (i < count) {
    ScalarTranspose(p, count - i, xmin + i, ymin + i, xmax + i, ymax + i,
                    payloads + i);
  }
}

#endif  // PICTDB_HAVE_SSE2

}  // namespace

const RectKernels& ScalarKernels() {
  static constexpr RectKernels kScalar{"scalar", &ScalarIntersects,
                                       &ScalarContainedIn,
                                       &ScalarContainsPoint,
                                       &ScalarTranspose};
  return kScalar;
}

const RectKernels* Sse2Kernels() {
#ifdef PICTDB_HAVE_SSE2
  static constexpr RectKernels kSse2{"sse2", &Sse2Intersects,
                                     &Sse2ContainedIn, &Sse2ContainsPoint,
                                     &Sse2Transpose};
  return &kSse2;
#else
  return nullptr;
#endif
}

}  // namespace pictdb::simd
