#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>

namespace pictdb::simd {

namespace {

std::atomic<const RectKernels*> g_override{nullptr};

const RectKernels* PickKernels() {
  // The env var mirrors the CMake option for binaries already built
  // with vector kernels: CI's scalar-fallback leg uses the option, but
  // operators can force a production binary scalar without a rebuild.
  const char* env = std::getenv("PICTDB_DISABLE_SIMD");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    return &ScalarKernels();
  }
  if (const RectKernels* k = Avx2Kernels()) return k;
  if (const RectKernels* k = Sse2Kernels()) return k;
  return &ScalarKernels();
}

const RectKernels& RuntimeKernels() {
  static const RectKernels* chosen = PickKernels();
  return *chosen;
}

}  // namespace

const RectKernels& ActiveKernels() {
  const RectKernels* forced = g_override.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  return RuntimeKernels();
}

bool SimdActive() { return &ActiveKernels() != &ScalarKernels(); }

ScopedKernelOverride::ScopedKernelOverride(const RectKernels* kernels)
    : prev_(g_override.exchange(kernels, std::memory_order_acq_rel)) {}

ScopedKernelOverride::~ScopedKernelOverride() {
  g_override.store(prev_, std::memory_order_release);
}

}  // namespace pictdb::simd
