#ifndef PICTDB_SIMD_RECT_KERNELS_H_
#define PICTDB_SIMD_RECT_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "geom/point.h"
#include "geom/rect.h"

namespace pictdb::simd {

/// Struct-of-arrays view of `count` rectangles: four contiguous
/// coordinate lanes. No alignment requirement — kernels use unaligned
/// loads, so callers may point straight into std::vector storage.
struct RectSoa {
  const double* xmin = nullptr;
  const double* ymin = nullptr;
  const double* xmax = nullptr;
  const double* ymax = nullptr;
  size_t count = 0;
};

/// 64-bit words needed to hold one verdict bit per rectangle.
constexpr size_t MaskWords(size_t count) { return (count + 63) / 64; }

/// Reassemble lane `i` as a geom::Rect WITHOUT the normalizing
/// constructor (which would silently un-invert an empty rect and change
/// predicate semantics).
inline geom::Rect LaneRect(const RectSoa& soa, size_t i) {
  geom::Rect r;
  r.lo.x = soa.xmin[i];
  r.lo.y = soa.ymin[i];
  r.hi.x = soa.xmax[i];
  r.hi.y = soa.ymax[i];
  return r;
}

/// Ascending-index iteration over a verdict bitmask. Visiting set bits
/// from bit 0 upward reproduces the entry order a scalar loop scans in,
/// which is what keeps kernel-driven traversals ordered identically to
/// their per-entry predecessors.
template <typename Fn>
void ForEachSetBit(const uint64_t* mask, size_t count, Fn fn) {
  const size_t words = MaskWords(count);
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      fn(w * 64 + static_cast<size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}

/// A family of rectangle-predicate kernels over SoA lanes. Each call
/// writes one verdict bit per rectangle into `out` (bit i of out[i/64]
/// set iff rect i satisfies the predicate; trailing bits of the last
/// word are zero; `out` must hold MaskWords(soa.count) words).
///
/// Every implementation must be bit-identical to the geom::Rect member
/// functions — including the empty-rect and NaN edge cases:
///   intersects:     rect.Intersects(window)   closed boundaries; empty
///                                             rects intersect nothing
///   contained_in:   window.Contains(rect)     an EMPTY rect is
///                                             contained in anything
///   contains_point: rect.Contains(p)          false for empty rects
/// tests/simd_kernel_test.cc enforces the equivalence adversarially.
struct RectKernels {
  const char* name;
  void (*intersects)(const RectSoa& soa, const geom::Rect& window,
                     uint64_t* out);
  void (*contained_in)(const RectSoa& soa, const geom::Rect& window,
                       uint64_t* out);
  void (*contains_point)(const RectSoa& soa, const geom::Point& p,
                         uint64_t* out);
  /// Decode `count` packed on-disk node entries — 40-byte stride of
  /// { double xmin, ymin, xmax, ymax; u64 payload } — into the five SoA
  /// lanes. Pure data movement (loads and shuffles, no arithmetic), so
  /// every family is bit-preserving by construction, NaNs and denormals
  /// included; it lives in the kernel table because the strided
  /// transpose dominates per-node decode cost (`search_micro --json`
  /// reports it as decode_ns_per_node).
  void (*transpose)(const char* entries, size_t count, double* xmin,
                    double* ymin, double* xmax, double* ymax,
                    uint64_t* payloads);
};

/// Portable reference kernels built directly on the geom::Rect
/// predicates — the semantic source of truth every vector implementation
/// must match bit-for-bit (DESIGN.md §13).
const RectKernels& ScalarKernels();

/// AVX2 kernels (4 doubles per lane op), or nullptr when the binary was
/// built with PICTDB_DISABLE_SIMD, the target is not x86-64, or this CPU
/// lacks AVX2.
const RectKernels* Avx2Kernels();

/// SSE2 kernels (2 doubles per lane op; baseline on x86-64), or nullptr
/// off x86-64 / when compiled out.
const RectKernels* Sse2Kernels();

}  // namespace pictdb::simd

#endif  // PICTDB_SIMD_RECT_KERNELS_H_
