#ifndef PICTDB_PACK_HILBERT_H_
#define PICTDB_PACK_HILBERT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "pack/pack.h"
#include "rtree/rtree.h"

namespace pictdb::pack {

/// Index of (x, y) along the Hilbert curve of order `order` (a 2^order ×
/// 2^order grid). Coordinates must be < 2^order.
uint64_t HilbertXyToD(uint32_t order, uint32_t x, uint32_t y);

/// Inverse of HilbertXyToD.
void HilbertDToXy(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y);

/// Hilbert value of a point within `frame`, discretized to a 2^16 grid.
uint64_t HilbertValue(const geom::Point& p, const geom::Rect& frame);

/// Process-wide count of HilbertValue invocations. Regression hook for
/// the packers: keys must be materialized once per entry, never
/// recomputed inside a sort comparator (which costs O(n log n)
/// curve walks).
uint64_t HilbertValueComputeCountForTesting();

/// Hilbert-packed R-tree (Kamel & Faloutsos' descendant of this paper's
/// PACK): sort leaf items by the Hilbert value of their MBR center, chunk
/// into full nodes, recurse. Often the best space-filling-curve packer;
/// included as the extension baseline. A thin wrapper over
/// PackSortChunk with the Hilbert criterion forced; `options.criterion`
/// is ignored.
Status PackHilbert(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items,
                   const PackOptions& options = {});

}  // namespace pictdb::pack

#endif  // PICTDB_PACK_HILBERT_H_
