#include "pack/hilbert.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "pack/pack.h"

namespace pictdb::pack {
namespace {

std::atomic<uint64_t> hilbert_value_computes{0};

}  // namespace

uint64_t HilbertValueComputeCountForTesting() {
  return hilbert_value_computes.load(std::memory_order_relaxed);
}

uint64_t HilbertXyToD(uint32_t order, uint32_t x, uint32_t y) {
  PICTDB_DCHECK(order <= 31);
  uint64_t d = 0;
  for (uint32_t s = (1u << order) >> 1; s > 0; s >>= 1) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

void HilbertDToXy(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y) {
  PICTDB_DCHECK(order <= 31);
  uint32_t rx, ry;
  uint64_t t = d;
  *x = *y = 0;
  for (uint32_t s = 1; s < (1u << order); s <<= 1) {
    rx = 1 & static_cast<uint32_t>(t / 2);
    ry = 1 & static_cast<uint32_t>(t ^ rx);
    if (ry == 0) {
      if (rx == 1) {
        *x = s - 1 - *x;
        *y = s - 1 - *y;
      }
      std::swap(*x, *y);
    }
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

uint64_t HilbertValue(const geom::Point& p, const geom::Rect& frame) {
  hilbert_value_computes.fetch_add(1, std::memory_order_relaxed);
  constexpr uint32_t kOrder = 16;
  constexpr uint32_t kMax = (1u << kOrder) - 1;
  const double w = std::max(frame.Width(), 1e-12);
  const double h = std::max(frame.Height(), 1e-12);
  const double fx = (p.x - frame.lo.x) / w;
  const double fy = (p.y - frame.lo.y) / h;
  const uint32_t gx = static_cast<uint32_t>(
      std::clamp(fx * kMax, 0.0, static_cast<double>(kMax)));
  const uint32_t gy = static_cast<uint32_t>(
      std::clamp(fy * kMax, 0.0, static_cast<double>(kMax)));
  return HilbertXyToD(kOrder, gx, gy);
}

Status PackHilbert(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items,
                   const PackOptions& options) {
  PackOptions opts = options;
  opts.criterion = SortCriterion::kHilbert;
  return PackSortChunk(tree, std::move(leaf_items), opts);
}

}  // namespace pictdb::pack
