#include "pack/hilbert.h"

#include <algorithm>

#include "common/logging.h"
#include "pack/pack.h"

namespace pictdb::pack {

uint64_t HilbertXyToD(uint32_t order, uint32_t x, uint32_t y) {
  PICTDB_DCHECK(order <= 31);
  uint64_t d = 0;
  for (uint32_t s = (1u << order) >> 1; s > 0; s >>= 1) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

void HilbertDToXy(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y) {
  PICTDB_DCHECK(order <= 31);
  uint32_t rx, ry;
  uint64_t t = d;
  *x = *y = 0;
  for (uint32_t s = 1; s < (1u << order); s <<= 1) {
    rx = 1 & static_cast<uint32_t>(t / 2);
    ry = 1 & static_cast<uint32_t>(t ^ rx);
    if (ry == 0) {
      if (rx == 1) {
        *x = s - 1 - *x;
        *y = s - 1 - *y;
      }
      std::swap(*x, *y);
    }
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

uint64_t HilbertValue(const geom::Point& p, const geom::Rect& frame) {
  constexpr uint32_t kOrder = 16;
  constexpr uint32_t kMax = (1u << kOrder) - 1;
  const double w = std::max(frame.Width(), 1e-12);
  const double h = std::max(frame.Height(), 1e-12);
  const double fx = (p.x - frame.lo.x) / w;
  const double fy = (p.y - frame.lo.y) / h;
  const uint32_t gx = static_cast<uint32_t>(
      std::clamp(fx * kMax, 0.0, static_cast<double>(kMax)));
  const uint32_t gy = static_cast<uint32_t>(
      std::clamp(fy * kMax, 0.0, static_cast<double>(kMax)));
  return HilbertXyToD(kOrder, gx, gy);
}

Status PackHilbert(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items) {
  // Sort once at the leaf level by Hilbert value of the MBR center, then
  // chunk each level in the resulting order.
  geom::Rect frame;
  for (const rtree::Entry& e : leaf_items) frame.ExpandToInclude(e.mbr);
  std::stable_sort(leaf_items.begin(), leaf_items.end(),
                   [&frame](const rtree::Entry& a, const rtree::Entry& b) {
                     return HilbertValue(a.mbr.Center(), frame) <
                            HilbertValue(b.mbr.Center(), frame);
                   });
  return BulkLoad(tree, std::move(leaf_items),
                  [](const std::vector<rtree::Entry>& items, size_t max) {
                    std::vector<std::vector<rtree::Entry>> groups;
                    for (size_t i = 0; i < items.size(); i += max) {
                      const size_t end = std::min(items.size(), i + max);
                      groups.emplace_back(items.begin() + i,
                                          items.begin() + end);
                    }
                    return groups;
                  });
}

}  // namespace pictdb::pack
