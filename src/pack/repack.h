#ifndef PICTDB_PACK_REPACK_H_
#define PICTDB_PACK_REPACK_H_

#include <vector>

#include "common/status_or.h"
#include "geom/rect.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "storage/quarantine.h"

namespace pictdb::pack {

/// Full reorganization: collect every leaf entry, free all nodes, and
/// bulk-load the same entries with the packer selected by
/// `options.strategy` (default: the paper's PACK). Restores the
/// freshly-packed quality after heavy churn (§3.4 / §4 of the paper).
Status Repack(rtree::RTree* tree, const PackOptions& options = {});

/// The paper's §4 future-work item made concrete: "dynamic invocation of
/// the PACK algorithm during insertions and deletions to efficiently
/// perform a local reorganization". Removes the leaf entries whose MBRs
/// intersect `region`, regroups them with PACK's nearest-neighbour
/// criterion into full leaves, and grafts those leaves back as subtrees.
/// Returns the number of entries repacked. Falls back to per-entry
/// re-insertion when the tree is too shallow to host subtrees.
StatusOr<size_t> RepackRegion(rtree::RTree* tree, const geom::Rect& region,
                              const PackOptions& options = {});

/// Outcome of a ScrubAndRepack pass.
struct ScrubReport {
  /// Leaf entries salvaged from still-readable leaves during the scrub.
  uint64_t entries_recovered = 0;
  /// Unreadable pages discovered (added to the quarantine, never reused).
  uint64_t pages_quarantined = 0;
  /// Readable old-tree pages returned to the free list.
  uint64_t pages_freed = 0;
  /// True when the rebuild used caller-supplied base entries rather than
  /// the salvaged set.
  bool rebuilt_from_base = false;
};

/// Recovery path for a tree with unreadable (corrupt / permanently
/// failing) pages: scrub the tree in degraded mode — salvaging every
/// leaf entry reachable through readable pages and quarantining the
/// rest — then rebuild from scratch with the packer selected by
/// `options.strategy`. When `base_entries` is
/// non-null it is treated as the authoritative record of the indexed
/// objects (e.g. re-derived from the heap file) and the rebuild uses it
/// instead of the salvaged set, restoring the full pre-corruption
/// answer. Quarantined pages are never freed, so permanently bad media
/// is never reused.
StatusOr<ScrubReport> ScrubAndRepack(
    rtree::RTree* tree, storage::PageQuarantine* quarantine,
    const std::vector<rtree::Entry>* base_entries = nullptr,
    const PackOptions& options = {});

/// Simple churn monitor implementing a repack policy: count updates and
/// recommend a full re-PACK once they exceed `threshold_fraction` of the
/// tree's size (the "relatively static" regime of the paper makes this
/// rare).
class RepackPolicy {
 public:
  explicit RepackPolicy(double threshold_fraction = 0.25)
      : threshold_(threshold_fraction) {}

  void RecordUpdate(uint64_t count = 1) { updates_ += count; }

  bool ShouldRepack(const rtree::RTree& tree) const {
    if (tree.Size() == 0) return false;
    return static_cast<double>(updates_) >=
           threshold_ * static_cast<double>(tree.Size());
  }

  /// Repack if due; resets the counter when it fires.
  StatusOr<bool> MaybeRepack(rtree::RTree* tree,
                             const PackOptions& options = {}) {
    if (!ShouldRepack(*tree)) return false;
    PICTDB_RETURN_IF_ERROR(Repack(tree, options));
    updates_ = 0;
    return true;
  }

  uint64_t updates() const { return updates_; }

 private:
  double threshold_;
  uint64_t updates_ = 0;
};

}  // namespace pictdb::pack

#endif  // PICTDB_PACK_REPACK_H_
