#include "pack/str.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "pack/pack.h"

namespace pictdb::pack {

using rtree::Entry;

std::vector<std::vector<Entry>> GroupStr(const std::vector<Entry>& items,
                                         size_t max_per_node) {
  PICTDB_CHECK(max_per_node >= 1);
  const size_t n = items.size();
  const size_t node_count =
      (n + max_per_node - 1) / max_per_node;  // P = ceil(n/B)
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(node_count))));  // S
  const size_t slab_size = slabs * max_per_node;  // items per vertical slab

  std::vector<Entry> sorted = items;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.mbr.Center().x < b.mbr.Center().x;
                   });

  std::vector<std::vector<Entry>> groups;
  for (size_t s = 0; s < sorted.size(); s += slab_size) {
    const size_t end = std::min(sorted.size(), s + slab_size);
    std::stable_sort(sorted.begin() + s, sorted.begin() + end,
                     [](const Entry& a, const Entry& b) {
                       return a.mbr.Center().y < b.mbr.Center().y;
                     });
    for (size_t i = s; i < end; i += max_per_node) {
      const size_t gend = std::min(end, i + max_per_node);
      groups.emplace_back(sorted.begin() + i, sorted.begin() + gend);
    }
  }
  return groups;
}

Status PackStr(rtree::RTree* tree, std::vector<Entry> leaf_items,
               const PackOptions& /*options*/) {
  return BulkLoad(tree, std::move(leaf_items),
                  [](const std::vector<Entry>& items, size_t max) {
                    return GroupStr(items, max);
                  });
}

}  // namespace pictdb::pack
