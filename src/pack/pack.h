#ifndef PICTDB_PACK_PACK_H_
#define PICTDB_PACK_PACK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "rtree/rtree.h"
#include "storage/heap_file.h"

namespace pictdb::pack {

/// The paper's "Order objects of DLIST by some spatial criterion" — the
/// criterion is pluggable; ascending x is the paper's example and the
/// default.
enum class SortCriterion {
  kAscendingX,
  kAscendingY,
  kHilbert,
};

/// Which packing algorithm arranges the ordered entries into nodes.
enum class PackStrategy {
  kNearestNeighbor,  // the paper's PACK (§3.3): seed + B-1 nearest
  kSortChunk,        // sort by criterion, cut runs of B ("lowx")
  kStr,              // Sort-Tile-Recursive (x-slabs, y-sorted tiles)
  kHilbert,          // kSortChunk with the Hilbert criterion forced
};

struct PackOptions {
  SortCriterion criterion = SortCriterion::kAscendingX;
  PackStrategy strategy = PackStrategy::kNearestNeighbor;
  /// When non-zero, Pack() routes sort-chunk strategies through the
  /// external-sort loader (src/pack/external.h): the entry list is
  /// key-sorted in buffers of at most this many bytes, spilled as
  /// CRC-framed runs, and merged straight into packed leaves. Zero
  /// means sort fully in memory.
  uint64_t memory_budget_bytes = 0;
  /// Directory for spill files when the external path runs.
  std::string spill_dir = ".";
};

/// Groups one level's entries into nodes of at most `max_per_node`.
/// Every group must be non-empty, and more than one group must be
/// produced when entries.size() > max_per_node.
using GroupingFn = std::function<std::vector<std::vector<rtree::Entry>>(
    const std::vector<rtree::Entry>&, size_t max_per_node)>;

/// Rejects entries no packer can order: every MBR coordinate must be
/// finite and the rect non-empty (lo <= hi). NaN coordinates violate
/// strict weak ordering inside std::stable_sort (UB), and an all-empty
/// input leaves the Hilbert frame inverted (inf - inf = NaN feeding an
/// undefined NaN→uint32 cast) — so every Pack* entry point calls this
/// before touching the tree and surfaces InvalidArgument instead.
[[nodiscard]] Status ValidatePackEntry(const rtree::Entry& entry);
[[nodiscard]] Status ValidatePackEntries(
    const std::vector<rtree::Entry>& entries);

/// Order-preserving bijection from double to uint64: a < b (as doubles,
/// no NaNs) iff MonotoneBits(a) < MonotoneBits(b). -0.0 maps below +0.0.
uint64_t MonotoneBits(double value);

/// The 64-bit sort key all packers order by: MonotoneBits of the MBR
/// center's leading coordinate for the ascending criteria, the Hilbert
/// value of the center within `hilbert_frame` for kHilbert. Materalized
/// once per entry (never recomputed inside a comparator) and identical
/// to the key the external loader writes into spill records — the
/// in-memory sort is the golden reference for the external path.
uint64_t SortKey(const rtree::Entry& entry, SortCriterion criterion,
                 const geom::Rect& hilbert_frame);

/// The frame the Hilbert criterion quantizes against: the union of all
/// entry MBRs.
geom::Rect HilbertFrameOf(const std::vector<rtree::Entry>& entries);

/// Shared bottom-up construction: applies `grouping` per level until the
/// remaining entries fit into a single root node. The target tree must be
/// freshly created (empty). Validates entries (see ValidatePackEntries).
Status BulkLoad(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items,
                const GroupingFn& grouping);

/// BulkLoad's upper half, exposed for loaders that write leaves
/// themselves (the external-sort path): `items` are the entries of
/// level `level` (already written when level > 0), `leaf_count` is the
/// tree's final Size(). Performs no input validation.
Status BulkLoadFromLevel(rtree::RTree* tree, std::vector<rtree::Entry> items,
                         uint16_t level, uint64_t leaf_count,
                         const GroupingFn& grouping);

/// Single entry point dispatching on options.strategy (and, when
/// options.memory_budget_bytes > 0 and the strategy is a sort-chunk
/// family, through the external-sort loader). The named Pack* functions
/// below remain as thin wrappers.
Status Pack(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items,
            const PackOptions& options);

/// Algorithm PACK from §3.3 of the paper: order the items by the spatial
/// criterion, then repeatedly take the first remaining item and its B-1
/// nearest neighbours (by MBR center distance) to form a full node;
/// recurse on the node MBRs.
Status PackNearestNeighbor(rtree::RTree* tree,
                           std::vector<rtree::Entry> leaf_items,
                           const PackOptions& options = {});

/// Sort-and-chunk packing (what the literature later called the "lowx
/// packed R-tree"): order by the criterion and cut into consecutive runs
/// of B. This is also the exact construction used in the proof of
/// Theorem 3.2.
Status PackSortChunk(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items,
                     const PackOptions& options = {});

/// Convenience: wrap points+rids into leaf entries.
std::vector<rtree::Entry> MakeLeafEntries(
    const std::vector<geom::Point>& points,
    const std::vector<storage::Rid>& rids);
std::vector<rtree::Entry> MakeLeafEntries(
    const std::vector<geom::Rect>& rects,
    const std::vector<storage::Rid>& rids);

/// The grouping functions behind the loaders, exposed for tests and for
/// composing custom loaders.
std::vector<std::vector<rtree::Entry>> GroupNearestNeighbor(
    const std::vector<rtree::Entry>& items, size_t max_per_node,
    SortCriterion criterion);
std::vector<std::vector<rtree::Entry>> GroupSortChunk(
    const std::vector<rtree::Entry>& items, size_t max_per_node,
    SortCriterion criterion);

}  // namespace pictdb::pack

#endif  // PICTDB_PACK_PACK_H_
