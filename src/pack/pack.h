#ifndef PICTDB_PACK_PACK_H_
#define PICTDB_PACK_PACK_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "rtree/rtree.h"
#include "storage/heap_file.h"

namespace pictdb::pack {

/// The paper's "Order objects of DLIST by some spatial criterion" — the
/// criterion is pluggable; ascending x is the paper's example and the
/// default.
enum class SortCriterion {
  kAscendingX,
  kAscendingY,
  kHilbert,
};

struct PackOptions {
  SortCriterion criterion = SortCriterion::kAscendingX;
};

/// Groups one level's entries into nodes of at most `max_per_node`.
/// Every group must be non-empty, and more than one group must be
/// produced when entries.size() > max_per_node.
using GroupingFn = std::function<std::vector<std::vector<rtree::Entry>>(
    const std::vector<rtree::Entry>&, size_t max_per_node)>;

/// Shared bottom-up construction: applies `grouping` per level until the
/// remaining entries fit into a single root node. The target tree must be
/// freshly created (empty).
Status BulkLoad(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items,
                const GroupingFn& grouping);

/// Algorithm PACK from §3.3 of the paper: order the items by the spatial
/// criterion, then repeatedly take the first remaining item and its B-1
/// nearest neighbours (by MBR center distance) to form a full node;
/// recurse on the node MBRs.
Status PackNearestNeighbor(rtree::RTree* tree,
                           std::vector<rtree::Entry> leaf_items,
                           const PackOptions& options = {});

/// Sort-and-chunk packing (what the literature later called the "lowx
/// packed R-tree"): order by the criterion and cut into consecutive runs
/// of B. This is also the exact construction used in the proof of
/// Theorem 3.2.
Status PackSortChunk(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items,
                     const PackOptions& options = {});

/// Convenience: wrap points+rids into leaf entries.
std::vector<rtree::Entry> MakeLeafEntries(
    const std::vector<geom::Point>& points,
    const std::vector<storage::Rid>& rids);
std::vector<rtree::Entry> MakeLeafEntries(
    const std::vector<geom::Rect>& rects,
    const std::vector<storage::Rid>& rids);

/// The grouping functions behind the loaders, exposed for tests and for
/// composing custom loaders.
std::vector<std::vector<rtree::Entry>> GroupNearestNeighbor(
    const std::vector<rtree::Entry>& items, size_t max_per_node,
    SortCriterion criterion);
std::vector<std::vector<rtree::Entry>> GroupSortChunk(
    const std::vector<rtree::Entry>& items, size_t max_per_node,
    SortCriterion criterion);

}  // namespace pictdb::pack

#endif  // PICTDB_PACK_PACK_H_
