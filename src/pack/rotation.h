#ifndef PICTDB_PACK_ROTATION_H_
#define PICTDB_PACK_ROTATION_H_

#include <vector>

#include "common/status_or.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "geom/transform.h"
#include "rtree/rtree.h"
#include "storage/heap_file.h"

namespace pictdb::pack {

/// Constructive content of Theorem 3.2: rotate the point set until all
/// x-coordinates are distinct (Lemma 3.1), sort by rotated x, and chunk
/// into runs of `group_size`. The returned leaf MBRs — in the rotated
/// frame — are pairwise disjoint.
struct RotationPacking {
  double angle = 0.0;                    // applied CCW rotation
  std::vector<geom::Point> rotated;      // points in the rotated frame
  std::vector<geom::Rect> leaf_mbrs;     // disjoint MBRs (rotated frame)
};

StatusOr<RotationPacking> ComputeRotationPacking(
    const std::vector<geom::Point>& points, size_t group_size);

/// Build an R-tree over the *rotated* coordinates using sort-chunk
/// packing, achieving zero leaf overlap. Queries against this tree must
/// first be transformed by `transform_out` (the rotation used); this is
/// the paper's objection (1) to rotation in practice, reproduced here for
/// the Theorem 3.2 experiments.
Status PackWithRotation(rtree::RTree* tree,
                        const std::vector<geom::Point>& points,
                        const std::vector<storage::Rid>& rids,
                        geom::Transform* transform_out);

}  // namespace pictdb::pack

#endif  // PICTDB_PACK_ROTATION_H_
