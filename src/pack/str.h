#ifndef PICTDB_PACK_STR_H_
#define PICTDB_PACK_STR_H_

#include <vector>

#include "common/status.h"
#include "pack/pack.h"
#include "rtree/rtree.h"

namespace pictdb::pack {

/// Sort-Tile-Recursive packing (Leutenegger et al., the best-known
/// descendant of this paper's PACK): sort by x-center, cut into ~sqrt(P)
/// vertical slabs, sort each slab by y-center, chunk into full nodes.
/// Applied level by level. `options` is accepted for uniformity with the
/// other packers; STR's slab construction fixes its own ordering, so
/// only validation behavior is shared.
Status PackStr(rtree::RTree* tree, std::vector<rtree::Entry> leaf_items,
               const PackOptions& options = {});

/// The per-level STR grouping, exposed for tests.
std::vector<std::vector<rtree::Entry>> GroupStr(
    const std::vector<rtree::Entry>& items, size_t max_per_node);

}  // namespace pictdb::pack

#endif  // PICTDB_PACK_STR_H_
