#include "pack/external.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "geom/rect.h"

namespace pictdb::pack {
namespace {

using rtree::Entry;
using rtree::RTree;
using storage::SpillFile;
using storage::SpillFileManager;
using storage::SpillRunHandle;
using storage::SpillRunReader;
using storage::SpillRunWriter;

static_assert(std::is_trivially_copyable_v<Entry>,
              "spill records memcpy entries");
static_assert(kSpillRecordSize == 8 + 4 * sizeof(double) + 8,
              "spill record = key + 4 MBR coords + payload, no padding");

/// The unit of the in-memory sort buffer; memory_budget_bytes is
/// accounted in these.
struct KeyedEntry {
  uint64_t key;
  Entry entry;
};

void EncodeSpillRecord(uint64_t key, const Entry& e, char* out) {
  std::memcpy(out, &key, sizeof(key));
  std::memcpy(out + sizeof(key), &e, sizeof(e));
}

void DecodeSpillRecord(const char* in, uint64_t* key, Entry* e) {
  std::memcpy(key, in, sizeof(*key));
  std::memcpy(e, in + sizeof(*key), sizeof(*e));
}

/// One run under merge: its reader plus the buffered head record.
struct MergeSource {
  MergeSource(SpillFile* file, const SpillRunHandle& run)
      : reader(file, run, kSpillRecordSize) {}

  Status Advance() {
    char rec[kSpillRecordSize];
    PICTDB_ASSIGN_OR_RETURN(const bool more, reader.Next(rec));
    exhausted = !more;
    if (more) DecodeSpillRecord(rec, &key, &entry);
    return Status::OK();
  }

  SpillRunReader reader;
  uint64_t key = 0;
  Entry entry;
  bool exhausted = false;
};

/// Classic array loser tree over the merge sources. Internal nodes
/// store the loser of the subtree match; the overall winner sits in
/// `winner_`. Leaf s lives at array position k + s, so its parent is
/// (k + s) / 2 and Replay() walks one root path per pop — O(log k)
/// key comparisons per merged record.
///
/// Ordering: smaller key wins; ties go to the lower source index. The
/// run list is in input order (runs are consecutive input chunks, and
/// cascaded merges put their output back at the front), so this
/// tie-break reproduces the stable sort's input-order tie handling.
class LoserTree {
 public:
  explicit LoserTree(std::vector<MergeSource>* sources)
      : sources_(sources),
        k_(sources->size()),
        tree_(std::max<size_t>(k_, 1), -1) {
    PICTDB_CHECK(k_ >= 1);
    // Bottom-up init: compute each internal node's match from the
    // winners of its children; leaves are the sources themselves.
    std::vector<int> winner_at(2 * k_, -1);
    for (size_t i = k_; i < 2 * k_; ++i) {
      winner_at[i] = static_cast<int>(i - k_);
    }
    for (size_t n = k_ - 1; n >= 1; --n) {
      const int a = winner_at[2 * n];
      const int b = winner_at[2 * n + 1];
      if (Beats(a, b)) {
        winner_at[n] = a;
        tree_[n] = b;
      } else {
        winner_at[n] = b;
        tree_[n] = a;
      }
    }
    winner_ = k_ == 1 ? 0 : winner_at[1];
  }

  int winner() const { return winner_; }

  /// After the winner consumed a record (or exhausted), replay its
  /// leaf-to-root path against the stored losers.
  void Replay() {
    int cur = winner_;
    for (size_t node = (static_cast<size_t>(cur) + k_) / 2; node >= 1;
         node /= 2) {
      if (Beats(tree_[node], cur)) std::swap(cur, tree_[node]);
    }
    winner_ = cur;
  }

 private:
  /// Strict "source a outranks source b". Exhausted sources always
  /// lose, so the tournament winner is exhausted only when every source
  /// is — that is the merge's termination test.
  bool Beats(int a, int b) const {
    if (a < 0) return false;
    if (b < 0) return true;
    const MergeSource& sa = (*sources_)[static_cast<size_t>(a)];
    const MergeSource& sb = (*sources_)[static_cast<size_t>(b)];
    if (sa.exhausted) return false;
    if (sb.exhausted) return true;
    return sa.key < sb.key || (sa.key == sb.key && a < b);
  }

  std::vector<MergeSource>* sources_;
  size_t k_;
  std::vector<int> tree_;
  int winner_ = -1;
};

/// k-way merge of `runs`, emitting records in (key, run position)
/// order through `emit(key, entry)`.
template <typename Emit>
Status MergeRuns(SpillFile* file, const std::vector<SpillRunHandle>& runs,
                 uint64_t* pages_read, Emit&& emit) {
  std::vector<MergeSource> sources;
  sources.reserve(runs.size());
  for (const SpillRunHandle& r : runs) sources.emplace_back(file, r);
  Status status = Status::OK();
  for (MergeSource& s : sources) {
    status = s.Advance();
    if (!status.ok()) break;
  }
  if (status.ok()) {
    LoserTree lt(&sources);
    while (true) {
      const int w = lt.winner();
      if (w < 0 || sources[static_cast<size_t>(w)].exhausted) break;
      MergeSource& src = sources[static_cast<size_t>(w)];
      status = emit(src.key, src.entry);
      if (status.ok()) status = src.Advance();
      if (!status.ok()) break;
      lt.Replay();
    }
  }
  for (const MergeSource& s : sources) *pages_read += s.reader.pages_read();
  return status;
}

}  // namespace

Status PackExternal(RTree* tree, EntrySource* source,
                    const PackOptions& options, ExternalPackStats* stats_out,
                    SpillFileManager* spill_manager) {
  if (tree->Size() != 0) {
    return Status::InvalidArgument("bulk load target tree is not empty");
  }
  SortCriterion criterion;
  switch (options.strategy) {
    case PackStrategy::kSortChunk:
      criterion = options.criterion;
      break;
    case PackStrategy::kHilbert:
      criterion = SortCriterion::kHilbert;
      break;
    default:
      return Status::NotSupported(
          "external pack supports only the sort-chunk strategies "
          "(kSortChunk / kHilbert); nearest-neighbor and STR groupings "
          "need random access to a full level");
  }

  constexpr uint64_t kDefaultBudget = 64ull << 20;
  const uint64_t budget = options.memory_budget_bytes != 0
                              ? options.memory_budget_bytes
                              : kDefaultBudget;
  ExternalPackStats stats;
  stats.run_capacity_entries =
      std::max<uint64_t>(1, budget / sizeof(KeyedEntry));
  const size_t run_capacity = static_cast<size_t>(stats.run_capacity_entries);

  // The Hilbert key quantizes against the union of every MBR, which a
  // one-pass stream cannot know up front — learn the frame (and reject
  // invalid entries before any I/O) in a dedicated pass, then rewind.
  geom::Rect frame;
  if (criterion == SortCriterion::kHilbert) {
    Entry e;
    while (true) {
      PICTDB_ASSIGN_OR_RETURN(const bool more, source->Next(&e));
      if (!more) break;
      PICTDB_RETURN_IF_ERROR(ValidatePackEntry(e));
      frame.ExpandToInclude(e.mbr);
    }
    PICTDB_RETURN_IF_ERROR(source->Rewind());
  }

  SpillFileManager local_manager(options.spill_dir);
  SpillFileManager* manager =
      spill_manager != nullptr ? spill_manager : &local_manager;
  std::unique_ptr<SpillFile> spill;
  std::vector<SpillRunHandle> runs;

  // --- Run formation: budget-sized buffers, stable-sorted by key -----
  {
    std::vector<KeyedEntry> buffer;
    buffer.reserve(run_capacity);
    char rec[kSpillRecordSize];
    auto flush_run = [&]() -> Status {
      if (buffer.empty()) return Status::OK();
      std::stable_sort(buffer.begin(), buffer.end(),
                       [](const KeyedEntry& a, const KeyedEntry& b) {
                         return a.key < b.key;
                       });
      if (spill == nullptr) {
        PICTDB_ASSIGN_OR_RETURN(spill, manager->Create());
      }
      SpillRunWriter writer(spill.get(), kSpillRecordSize);
      for (const KeyedEntry& ke : buffer) {
        EncodeSpillRecord(ke.key, ke.entry, rec);
        PICTDB_RETURN_IF_ERROR(writer.Append(rec));
      }
      PICTDB_ASSIGN_OR_RETURN(const SpillRunHandle run, writer.Finish());
      stats.spill_pages_written += writer.pages_written();
      runs.push_back(run);
      buffer.clear();
      return Status::OK();
    };

    Entry e;
    while (true) {
      PICTDB_ASSIGN_OR_RETURN(const bool more, source->Next(&e));
      if (!more) break;
      PICTDB_RETURN_IF_ERROR(ValidatePackEntry(e));
      buffer.push_back(KeyedEntry{SortKey(e, criterion, frame), e});
      ++stats.entries;
      if (buffer.size() == run_capacity) PICTDB_RETURN_IF_ERROR(flush_run());
    }
    PICTDB_RETURN_IF_ERROR(flush_run());
  }  // sort buffer released before the merge stage allocates its pages

  stats.spill_runs = runs.size();
  const uint64_t total = stats.entries;
  if (total == 0) {
    if (stats_out != nullptr) *stats_out = stats;
    return Status::OK();
  }

  // --- Cascaded merges when the run count exceeds the fan-in ---------
  // Always merge the FIRST kSpillMergeMaxFanIn runs and put the result
  // back at the front: run-list position encodes input order, which the
  // loser tree's tie-break depends on for stability.
  while (runs.size() > kSpillMergeMaxFanIn) {
    const std::vector<SpillRunHandle> head(
        runs.begin(), runs.begin() + kSpillMergeMaxFanIn);
    SpillRunWriter writer(spill.get(), kSpillRecordSize);
    char rec[kSpillRecordSize];
    PICTDB_RETURN_IF_ERROR(MergeRuns(
        spill.get(), head, &stats.spill_pages_read,
        [&writer, &rec](uint64_t key, const Entry& entry) -> Status {
          EncodeSpillRecord(key, entry, rec);
          return writer.Append(rec);
        }));
    PICTDB_ASSIGN_OR_RETURN(const SpillRunHandle merged, writer.Finish());
    stats.spill_pages_written += writer.pages_written();
    ++stats.merge_passes;
    std::vector<SpillRunHandle> next;
    next.reserve(runs.size() - kSpillMergeMaxFanIn + 1);
    next.push_back(merged);
    next.insert(next.end(), runs.begin() + kSpillMergeMaxFanIn, runs.end());
    runs = std::move(next);
  }

  // --- Final merge, streamed straight into packed leaves -------------
  // Mirrors BulkLoad exactly: when everything fits in one node the
  // merged stream IS the root; otherwise consecutive chunks of B become
  // leaves and the (B-times-smaller) parent entries finish in memory
  // through the shared sort-chunk grouping.
  const size_t max = tree->options().max_entries;
  std::vector<Entry> group;
  group.reserve(std::min<uint64_t>(total, max));
  std::vector<Entry> parents;
  if (total > max) {
    parents.reserve(static_cast<size_t>((total + max - 1) / max));
  }
  PICTDB_RETURN_IF_ERROR(MergeRuns(
      spill.get(), runs, &stats.spill_pages_read,
      [&](uint64_t /*key*/, const Entry& entry) -> Status {
        group.push_back(entry);
        if (total > max && group.size() == max) {
          PICTDB_ASSIGN_OR_RETURN(const storage::PageId page,
                                  tree->BulkWriteNode(0, group));
          Entry parent;
          for (const Entry& ge : group) parent.mbr.ExpandToInclude(ge.mbr);
          parent.payload = Entry::PayloadFromChild(page);
          parents.push_back(parent);
          group.clear();
        }
        return Status::OK();
      }));
  ++stats.merge_passes;
  spill.reset();  // unlink the scratch file before the tail build

  Status finish = Status::OK();
  if (total <= max) {
    PICTDB_CHECK(group.size() == total);
    PICTDB_ASSIGN_OR_RETURN(const storage::PageId root,
                            tree->BulkWriteNode(0, group));
    finish = tree->BulkSetRoot(root, 1, total);
  } else {
    if (!group.empty()) {
      PICTDB_ASSIGN_OR_RETURN(const storage::PageId page,
                              tree->BulkWriteNode(0, group));
      Entry parent;
      for (const Entry& ge : group) parent.mbr.ExpandToInclude(ge.mbr);
      parent.payload = Entry::PayloadFromChild(page);
      parents.push_back(parent);
    }
    finish = BulkLoadFromLevel(
        tree, std::move(parents), 1, total,
        [criterion](const std::vector<Entry>& items, size_t m) {
          return GroupSortChunk(items, m, criterion);
        });
  }
  PICTDB_RETURN_IF_ERROR(finish);
  if (stats_out != nullptr) *stats_out = stats;
  return Status::OK();
}

}  // namespace pictdb::pack
