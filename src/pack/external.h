#ifndef PICTDB_PACK_EXTERNAL_H_
#define PICTDB_PACK_EXTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "pack/pack.h"
#include "rtree/rtree.h"
#include "storage/spill_file.h"

namespace pictdb::pack {

/// Streaming supplier of leaf entries for the external loader: the whole
/// point of the out-of-core path is that the caller never has to hold
/// the full entry list, so input arrives as a pull stream that can be
/// rewound (the Hilbert criterion needs one extra pass to learn the
/// quantization frame before keys can be computed).
class EntrySource {
 public:
  virtual ~EntrySource() = default;

  /// Copy the next entry into `out`; returns false at end of stream.
  virtual StatusOr<bool> Next(rtree::Entry* out) = 0;

  /// Restart the stream from the beginning, yielding the same entries
  /// in the same order.
  virtual Status Rewind() = 0;
};

/// Adapter over an in-memory entry vector (not owned).
class VectorEntrySource final : public EntrySource {
 public:
  explicit VectorEntrySource(const std::vector<rtree::Entry>* entries)
      : entries_(entries) {}

  StatusOr<bool> Next(rtree::Entry* out) override {
    if (index_ == entries_->size()) return false;
    *out = (*entries_)[index_++];
    return true;
  }

  Status Rewind() override {
    index_ = 0;
    return Status::OK();
  }

 private:
  const std::vector<rtree::Entry>* entries_;
  size_t index_ = 0;
};

/// How the external pack spent its I/O; reported by bench/build_micro
/// and asserted by tests (e.g. "a 64 MiB budget over 5M entries really
/// did spill multiple runs").
struct ExternalPackStats {
  uint64_t entries = 0;
  uint64_t spill_runs = 0;     // initial sorted runs formed
  uint64_t merge_passes = 0;   // cascade merges + the final merge
  uint64_t spill_pages_written = 0;
  uint64_t spill_pages_read = 0;
  uint64_t run_capacity_entries = 0;  // entries per in-memory sort buffer
};

/// Fan-in of one merge pass. More runs than this triggers cascaded
/// merges (earliest runs first, so the stable tie-break by run position
/// survives the cascade).
inline constexpr size_t kSpillMergeMaxFanIn = 64;

/// Bytes of one spill record: the 64-bit sort key followed by the raw
/// entry (4 MBR doubles + payload). Keys are precomputed at run
/// formation, so merges never re-derive them.
inline constexpr size_t kSpillRecordSize = 8 + sizeof(rtree::Entry);

/// Out-of-core bulk load: sort `source` by the options' criterion in
/// buffers of at most `options.memory_budget_bytes` (0 → 64 MiB),
/// spill each buffer as a CRC-framed sorted run, k-way merge the runs
/// with a loser tree, and stream the merged order directly into packed
/// leaves (`RTree::BulkWriteNode`); upper levels are built from the
/// B-times-smaller parent stream in memory. Only the sort-chunk
/// strategies are supported (kSortChunk with any criterion, or kHilbert
/// which forces the Hilbert criterion) — the nearest-neighbor and STR
/// groupings need random access to the full level.
///
/// The result is byte-identical to the in-memory
/// `PackSortChunk(tree, items, options)` of the same entry stream:
/// runs are consecutive input chunks, each stable-sorted by key, and
/// the merge breaks key ties by run position, which reproduces the
/// global stable sort exactly.
///
/// `spill_manager` overrides where scratch runs live (tests inject a
/// fault-wrapped manager); nullptr uses `options.spill_dir`. On any
/// failure the tree is left empty (the root is only set after the last
/// node page is written).
Status PackExternal(rtree::RTree* tree, EntrySource* source,
                    const PackOptions& options,
                    ExternalPackStats* stats = nullptr,
                    storage::SpillFileManager* spill_manager = nullptr);

}  // namespace pictdb::pack

#endif  // PICTDB_PACK_EXTERNAL_H_
