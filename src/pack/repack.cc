#include "pack/repack.h"

#include "common/logging.h"

namespace pictdb::pack {

using rtree::Entry;
using rtree::LeafHit;
using rtree::RTree;

Status Repack(RTree* tree, const PackOptions& options) {
  PICTDB_ASSIGN_OR_RETURN(const std::vector<LeafHit> hits,
                          tree->CollectAllEntries());
  std::vector<Entry> items;
  items.reserve(hits.size());
  for (const LeafHit& hit : hits) {
    Entry e;
    e.mbr = hit.mbr;
    e.payload = Entry::PayloadFromRid(hit.rid);
    items.push_back(e);
  }
  PICTDB_RETURN_IF_ERROR(tree->Clear());
  return Pack(tree, std::move(items), options);
}

StatusOr<ScrubReport> ScrubAndRepack(RTree* tree,
                                     storage::PageQuarantine* quarantine,
                                     const std::vector<Entry>* base_entries,
                                     const PackOptions& options) {
  PICTDB_CHECK(quarantine != nullptr);
  ScrubReport report;
  rtree::SearchOptions degrade;
  degrade.degraded_ok = true;
  degrade.quarantine = quarantine;

  // Scrub: walk whatever is still reachable, salvaging leaf entries and
  // remembering which old pages can safely be freed. Unreadable pages go
  // to the quarantine (directly, not via SearchOptions — this loop needs
  // the page ids of the *readable* set too).
  std::vector<storage::PageId> readable;
  std::vector<Entry> salvaged;
  std::vector<storage::PageId> stack{tree->root()};
  while (!stack.empty()) {
    const storage::PageId id = stack.back();
    stack.pop_back();
    auto loaded = tree->ReadNodePage(id);
    if (!loaded.ok()) {
      if (!degrade.ShouldDegrade(loaded.status())) return loaded.status();
      quarantine->Add(id);
      ++report.pages_quarantined;
      continue;
    }
    readable.push_back(id);
    const rtree::Node node = std::move(loaded).value();
    if (node.is_leaf()) {
      salvaged.insert(salvaged.end(), node.entries.begin(),
                      node.entries.end());
    } else {
      for (const Entry& e : node.entries) stack.push_back(e.AsChild());
    }
  }
  report.entries_recovered = salvaged.size();

  // Reset to a fresh empty root without touching the old (partially
  // unreadable) node chain, then return the readable old pages to the
  // free list. Quarantined pages stay allocated forever.
  PICTDB_RETURN_IF_ERROR(tree->ResetForRebuild());
  for (const storage::PageId id : readable) {
    PICTDB_RETURN_IF_ERROR(tree->pool()->FreePage(id));
    ++report.pages_freed;
  }

  std::vector<Entry> items;
  if (base_entries != nullptr) {
    report.rebuilt_from_base = true;
    items = *base_entries;
  } else {
    items = std::move(salvaged);
  }
  PICTDB_RETURN_IF_ERROR(Pack(tree, std::move(items), options));
  return report;
}

StatusOr<size_t> RepackRegion(RTree* tree, const geom::Rect& region,
                              const PackOptions& options) {
  PICTDB_ASSIGN_OR_RETURN(const std::vector<LeafHit> hits,
                          tree->SearchIntersects(region));
  if (hits.size() < 2) return size_t{0};  // nothing to regroup

  // Detach the region's entries.
  for (const LeafHit& hit : hits) {
    PICTDB_RETURN_IF_ERROR(tree->Delete(hit.mbr, hit.rid));
  }

  std::vector<Entry> items;
  items.reserve(hits.size());
  for (const LeafHit& hit : hits) {
    Entry e;
    e.mbr = hit.mbr;
    e.payload = Entry::PayloadFromRid(hit.rid);
    items.push_back(e);
  }

  const size_t max = tree->options().max_entries;
  if (tree->Height() < 2 || items.size() < max) {
    // Too shallow (or too few entries to fill a leaf): plain re-insert.
    for (const Entry& e : items) {
      PICTDB_RETURN_IF_ERROR(tree->Insert(e.mbr, e.AsRid()));
    }
    return items.size();
  }

  // Regroup into full leaves with the PACK criterion and graft each leaf
  // back as a subtree. A trailing underfull group is re-inserted entry by
  // entry so no leaf violates the minimum fill under later deletes.
  const auto groups = GroupNearestNeighbor(items, max, options.criterion);
  const size_t min_fill = tree->options().min_entries;
  size_t repacked = 0;
  for (const auto& group : groups) {
    if (group.size() < std::max<size_t>(min_fill, 1)) {
      for (const Entry& e : group) {
        PICTDB_RETURN_IF_ERROR(tree->Insert(e.mbr, e.AsRid()));
        ++repacked;
      }
      continue;
    }
    geom::Rect mbr;
    for (const Entry& e : group) mbr.ExpandToInclude(e.mbr);
    PICTDB_ASSIGN_OR_RETURN(const storage::PageId page,
                            tree->BulkWriteNode(0, group));
    PICTDB_RETURN_IF_ERROR(
        tree->InsertSubtree(page, mbr, /*subtree_level=*/0, group.size()));
    repacked += group.size();
  }
  return repacked;
}

}  // namespace pictdb::pack
