#include "pack/pack.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "pack/hilbert.h"
#include "pack/nn_grid.h"

namespace pictdb::pack {

using rtree::Entry;
using rtree::RTree;

namespace {

/// Indices of `items` ordered by the chosen spatial criterion applied to
/// the MBR centers.
std::vector<size_t> OrderBy(const std::vector<Entry>& items,
                            SortCriterion criterion) {
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), size_t{0});
  switch (criterion) {
    case SortCriterion::kAscendingX:
      std::stable_sort(order.begin(), order.end(),
                       [&items](size_t a, size_t b) {
                         const auto ca = items[a].mbr.Center();
                         const auto cb = items[b].mbr.Center();
                         return ca.x < cb.x || (ca.x == cb.x && ca.y < cb.y);
                       });
      break;
    case SortCriterion::kAscendingY:
      std::stable_sort(order.begin(), order.end(),
                       [&items](size_t a, size_t b) {
                         const auto ca = items[a].mbr.Center();
                         const auto cb = items[b].mbr.Center();
                         return ca.y < cb.y || (ca.y == cb.y && ca.x < cb.x);
                       });
      break;
    case SortCriterion::kHilbert: {
      geom::Rect frame;
      for (const Entry& e : items) frame.ExpandToInclude(e.mbr);
      std::stable_sort(order.begin(), order.end(),
                       [&items, &frame](size_t a, size_t b) {
                         return HilbertValue(items[a].mbr.Center(), frame) <
                                HilbertValue(items[b].mbr.Center(), frame);
                       });
      break;
    }
  }
  return order;
}

}  // namespace

std::vector<std::vector<Entry>> GroupNearestNeighbor(
    const std::vector<Entry>& items, size_t max_per_node,
    SortCriterion criterion) {
  PICTDB_CHECK(max_per_node >= 1);
  const std::vector<size_t> order = OrderBy(items, criterion);

  std::vector<geom::Point> centers;
  centers.reserve(items.size());
  for (const Entry& e : items) centers.push_back(e.mbr.Center());
  NearestNeighborGrid grid(centers);

  std::vector<std::vector<Entry>> groups;
  size_t cursor = 0;  // next candidate in criterion order
  while (grid.remaining() > 0) {
    // I1 := first object of DLIST (in criterion order, still unassigned).
    while (cursor < order.size() && !grid.Contains(order[cursor])) ++cursor;
    PICTDB_CHECK(cursor < order.size());
    const size_t seed = order[cursor];
    grid.Remove(seed);

    std::vector<Entry> group;
    group.push_back(items[seed]);
    // I2..IB := NN(DLIST, I1) — each call returns the remaining item
    // closest to I1 and deletes it from DLIST.
    while (group.size() < max_per_node && grid.remaining() > 0) {
      const auto nn = grid.Nearest(centers[seed]);
      PICTDB_CHECK(nn.has_value());
      grid.Remove(*nn);
      group.push_back(items[*nn]);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<std::vector<Entry>> GroupSortChunk(
    const std::vector<Entry>& items, size_t max_per_node,
    SortCriterion criterion) {
  PICTDB_CHECK(max_per_node >= 1);
  const std::vector<size_t> order = OrderBy(items, criterion);
  std::vector<std::vector<Entry>> groups;
  for (size_t i = 0; i < order.size(); i += max_per_node) {
    std::vector<Entry> group;
    const size_t end = std::min(order.size(), i + max_per_node);
    for (size_t j = i; j < end; ++j) group.push_back(items[order[j]]);
    groups.push_back(std::move(group));
  }
  return groups;
}

Status BulkLoad(RTree* tree, std::vector<Entry> leaf_items,
                const GroupingFn& grouping) {
  if (tree->Size() != 0) {
    return Status::InvalidArgument("bulk load target tree is not empty");
  }
  if (leaf_items.empty()) return Status::OK();

  const size_t max = tree->options().max_entries;
  const uint64_t size = leaf_items.size();
  std::vector<Entry> items = std::move(leaf_items);
  uint16_t level = 0;

  while (items.size() > max) {
    const std::vector<std::vector<Entry>> groups = grouping(items, max);
    PICTDB_CHECK(groups.size() > 1) << "grouping must make progress";
    std::vector<Entry> parents;
    parents.reserve(groups.size());
    for (const std::vector<Entry>& g : groups) {
      PICTDB_CHECK(!g.empty() && g.size() <= max);
      PICTDB_ASSIGN_OR_RETURN(const storage::PageId page,
                              tree->BulkWriteNode(level, g));
      Entry parent;
      for (const Entry& e : g) parent.mbr.ExpandToInclude(e.mbr);
      parent.payload = Entry::PayloadFromChild(page);
      parents.push_back(parent);
    }
    items = std::move(parents);
    ++level;
  }

  PICTDB_ASSIGN_OR_RETURN(const storage::PageId root,
                          tree->BulkWriteNode(level, items));
  return tree->BulkSetRoot(root, level + 1u, size);
}

Status PackNearestNeighbor(RTree* tree, std::vector<Entry> leaf_items,
                           const PackOptions& options) {
  return BulkLoad(tree, std::move(leaf_items),
                  [&options](const std::vector<Entry>& items, size_t max) {
                    return GroupNearestNeighbor(items, max,
                                                options.criterion);
                  });
}

Status PackSortChunk(RTree* tree, std::vector<Entry> leaf_items,
                     const PackOptions& options) {
  return BulkLoad(tree, std::move(leaf_items),
                  [&options](const std::vector<Entry>& items, size_t max) {
                    return GroupSortChunk(items, max, options.criterion);
                  });
}

std::vector<Entry> MakeLeafEntries(const std::vector<geom::Point>& points,
                                   const std::vector<storage::Rid>& rids) {
  PICTDB_CHECK(points.size() == rids.size());
  std::vector<Entry> out;
  out.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    Entry e;
    e.mbr = geom::Rect::FromPoint(points[i]);
    e.payload = Entry::PayloadFromRid(rids[i]);
    out.push_back(e);
  }
  return out;
}

std::vector<Entry> MakeLeafEntries(const std::vector<geom::Rect>& rects,
                                   const std::vector<storage::Rid>& rids) {
  PICTDB_CHECK(rects.size() == rids.size());
  std::vector<Entry> out;
  out.reserve(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    Entry e;
    e.mbr = rects[i];
    e.payload = Entry::PayloadFromRid(rids[i]);
    out.push_back(e);
  }
  return out;
}

}  // namespace pictdb::pack
