#include "pack/pack.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "pack/external.h"
#include "pack/hilbert.h"
#include "pack/nn_grid.h"
#include "pack/str.h"

namespace pictdb::pack {

using rtree::Entry;
using rtree::RTree;

Status ValidatePackEntry(const Entry& entry) {
  const geom::Rect& r = entry.mbr;
  if (!std::isfinite(r.lo.x) || !std::isfinite(r.lo.y) ||
      !std::isfinite(r.hi.x) || !std::isfinite(r.hi.y)) {
    return Status::InvalidArgument("pack entry MBR has non-finite coordinate");
  }
  if (r.IsEmpty()) {
    return Status::InvalidArgument("pack entry MBR is empty (lo > hi)");
  }
  return Status::OK();
}

Status ValidatePackEntries(const std::vector<Entry>& entries) {
  for (size_t i = 0; i < entries.size(); ++i) {
    Status s = ValidatePackEntry(entries[i]);
    if (!s.ok()) {
      return Status::InvalidArgument(s.message() + " (entry " +
                                     std::to_string(i) + ")");
    }
  }
  return Status::OK();
}

uint64_t MonotoneBits(double value) {
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  // Positive doubles already sort by their bit pattern; flipping the sign
  // bit lifts them above every negative, and complementing negatives
  // reverses their (descending-magnitude) bit order.
  return (bits & (uint64_t{1} << 63)) != 0 ? ~bits
                                           : bits | (uint64_t{1} << 63);
}

uint64_t SortKey(const Entry& entry, SortCriterion criterion,
                 const geom::Rect& hilbert_frame) {
  const geom::Point c = entry.mbr.Center();
  switch (criterion) {
    case SortCriterion::kAscendingX:
      return MonotoneBits(c.x);
    case SortCriterion::kAscendingY:
      return MonotoneBits(c.y);
    case SortCriterion::kHilbert:
      return HilbertValue(c, hilbert_frame);
  }
  PICTDB_CHECK(false) << "unknown SortCriterion";
  return 0;
}

geom::Rect HilbertFrameOf(const std::vector<Entry>& entries) {
  geom::Rect frame;
  for (const Entry& e : entries) frame.ExpandToInclude(e.mbr);
  return frame;
}

namespace {

/// Indices of `items` ordered by the chosen spatial criterion applied to
/// the MBR centers. Keys are materialized once per entry — the sort
/// itself only compares uint64s (the old comparators recomputed
/// HilbertValue O(n log n) times), and ties keep input order, so the
/// result is exactly "stable sort by key". This is the ordering contract
/// the external loader's run-merge reproduces.
std::vector<size_t> OrderBy(const std::vector<Entry>& items,
                            SortCriterion criterion) {
  const geom::Rect frame = criterion == SortCriterion::kHilbert
                               ? HilbertFrameOf(items)
                               : geom::Rect{};
  std::vector<uint64_t> keys;
  keys.reserve(items.size());
  for (const Entry& e : items) keys.push_back(SortKey(e, criterion, frame));
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  return order;
}

}  // namespace

std::vector<std::vector<Entry>> GroupNearestNeighbor(
    const std::vector<Entry>& items, size_t max_per_node,
    SortCriterion criterion) {
  PICTDB_CHECK(max_per_node >= 1);
  const std::vector<size_t> order = OrderBy(items, criterion);

  std::vector<geom::Point> centers;
  centers.reserve(items.size());
  for (const Entry& e : items) centers.push_back(e.mbr.Center());
  NearestNeighborGrid grid(centers);

  std::vector<std::vector<Entry>> groups;
  size_t cursor = 0;  // next candidate in criterion order
  while (grid.remaining() > 0) {
    // I1 := first object of DLIST (in criterion order, still unassigned).
    while (cursor < order.size() && !grid.Contains(order[cursor])) ++cursor;
    PICTDB_CHECK(cursor < order.size());
    const size_t seed = order[cursor];
    grid.Remove(seed);

    std::vector<Entry> group;
    group.push_back(items[seed]);
    // I2..IB := NN(DLIST, I1) — each call returns the remaining item
    // closest to I1 and deletes it from DLIST.
    while (group.size() < max_per_node && grid.remaining() > 0) {
      const auto nn = grid.Nearest(centers[seed]);
      PICTDB_CHECK(nn.has_value());
      grid.Remove(*nn);
      group.push_back(items[*nn]);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<std::vector<Entry>> GroupSortChunk(
    const std::vector<Entry>& items, size_t max_per_node,
    SortCriterion criterion) {
  PICTDB_CHECK(max_per_node >= 1);
  const std::vector<size_t> order = OrderBy(items, criterion);
  std::vector<std::vector<Entry>> groups;
  for (size_t i = 0; i < order.size(); i += max_per_node) {
    std::vector<Entry> group;
    const size_t end = std::min(order.size(), i + max_per_node);
    for (size_t j = i; j < end; ++j) group.push_back(items[order[j]]);
    groups.push_back(std::move(group));
  }
  return groups;
}

Status BulkLoadFromLevel(RTree* tree, std::vector<Entry> items, uint16_t level,
                         uint64_t leaf_count, const GroupingFn& grouping) {
  const size_t max = tree->options().max_entries;

  while (items.size() > max) {
    const std::vector<std::vector<Entry>> groups = grouping(items, max);
    PICTDB_CHECK(groups.size() > 1) << "grouping must make progress";
    std::vector<Entry> parents;
    parents.reserve(groups.size());
    for (const std::vector<Entry>& g : groups) {
      PICTDB_CHECK(!g.empty() && g.size() <= max);
      PICTDB_ASSIGN_OR_RETURN(const storage::PageId page,
                              tree->BulkWriteNode(level, g));
      Entry parent;
      for (const Entry& e : g) parent.mbr.ExpandToInclude(e.mbr);
      parent.payload = Entry::PayloadFromChild(page);
      parents.push_back(parent);
    }
    items = std::move(parents);
    ++level;
  }

  PICTDB_ASSIGN_OR_RETURN(const storage::PageId root,
                          tree->BulkWriteNode(level, items));
  return tree->BulkSetRoot(root, level + 1u, leaf_count);
}

Status BulkLoad(RTree* tree, std::vector<Entry> leaf_items,
                const GroupingFn& grouping) {
  if (tree->Size() != 0) {
    return Status::InvalidArgument("bulk load target tree is not empty");
  }
  PICTDB_RETURN_IF_ERROR(ValidatePackEntries(leaf_items));
  if (leaf_items.empty()) return Status::OK();
  const uint64_t size = leaf_items.size();
  const size_t max = tree->options().max_entries;
  if (leaf_items.size() <= max) {
    // Everything fits in the root leaf. Still order it through the
    // grouping so a one-node tree reflects the packer's criterion —
    // and so the external loader's merged (sorted) stream produces the
    // identical page.
    std::vector<std::vector<Entry>> groups = grouping(leaf_items, max);
    PICTDB_CHECK(groups.size() == 1);
    leaf_items = std::move(groups[0]);
  }
  return BulkLoadFromLevel(tree, std::move(leaf_items), 0, size, grouping);
}

Status Pack(RTree* tree, std::vector<Entry> leaf_items,
            const PackOptions& options) {
  if (options.memory_budget_bytes > 0) {
    VectorEntrySource source(&leaf_items);
    return PackExternal(tree, &source, options);
  }
  switch (options.strategy) {
    case PackStrategy::kNearestNeighbor:
      return PackNearestNeighbor(tree, std::move(leaf_items), options);
    case PackStrategy::kSortChunk:
      return PackSortChunk(tree, std::move(leaf_items), options);
    case PackStrategy::kStr:
      return PackStr(tree, std::move(leaf_items), options);
    case PackStrategy::kHilbert:
      return PackHilbert(tree, std::move(leaf_items), options);
  }
  return Status::InvalidArgument("unknown PackStrategy");
}

Status PackNearestNeighbor(RTree* tree, std::vector<Entry> leaf_items,
                           const PackOptions& options) {
  return BulkLoad(tree, std::move(leaf_items),
                  [&options](const std::vector<Entry>& items, size_t max) {
                    return GroupNearestNeighbor(items, max,
                                                options.criterion);
                  });
}

Status PackSortChunk(RTree* tree, std::vector<Entry> leaf_items,
                     const PackOptions& options) {
  return BulkLoad(tree, std::move(leaf_items),
                  [&options](const std::vector<Entry>& items, size_t max) {
                    return GroupSortChunk(items, max, options.criterion);
                  });
}

std::vector<Entry> MakeLeafEntries(const std::vector<geom::Point>& points,
                                   const std::vector<storage::Rid>& rids) {
  PICTDB_CHECK(points.size() == rids.size());
  std::vector<Entry> out;
  out.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    Entry e;
    e.mbr = geom::Rect::FromPoint(points[i]);
    e.payload = Entry::PayloadFromRid(rids[i]);
    out.push_back(e);
  }
  return out;
}

std::vector<Entry> MakeLeafEntries(const std::vector<geom::Rect>& rects,
                                   const std::vector<storage::Rid>& rids) {
  PICTDB_CHECK(rects.size() == rids.size());
  std::vector<Entry> out;
  out.reserve(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    Entry e;
    e.mbr = rects[i];
    e.payload = Entry::PayloadFromRid(rids[i]);
    out.push_back(e);
  }
  return out;
}

}  // namespace pictdb::pack
