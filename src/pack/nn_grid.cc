#include "pack/nn_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace pictdb::pack {

NearestNeighborGrid::NearestNeighborGrid(
    const std::vector<geom::Point>& points)
    : points_(points), alive_(points.size(), true), remaining_(points.size()) {
  for (const geom::Point& p : points_) bounds_.ExpandToInclude(p);
  if (points_.empty()) return;

  // Aim for ~1 point per cell on a square-ish grid.
  const size_t target = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(static_cast<double>(points_.size()))));
  cols_ = target;
  rows_ = target;
  cell_w_ = std::max(bounds_.Width() / static_cast<double>(cols_), 1e-12);
  cell_h_ = std::max(bounds_.Height() / static_cast<double>(rows_), 1e-12);
  cells_.resize(cols_ * rows_);
  for (size_t i = 0; i < points_.size(); ++i) {
    cells_[CellOf(points_[i])].push_back(static_cast<uint32_t>(i));
  }
}

size_t NearestNeighborGrid::CellOf(const geom::Point& p) const {
  auto clamp_idx = [](double v, size_t n) {
    if (v < 0) return size_t{0};
    const size_t i = static_cast<size_t>(v);
    return i >= n ? n - 1 : i;
  };
  const size_t cx = clamp_idx((p.x - bounds_.lo.x) / cell_w_, cols_);
  const size_t cy = clamp_idx((p.y - bounds_.lo.y) / cell_h_, rows_);
  return cy * cols_ + cx;
}

void NearestNeighborGrid::Remove(size_t idx) {
  PICTDB_CHECK(idx < alive_.size() && alive_[idx]);
  alive_[idx] = false;
  --remaining_;
  auto& cell = cells_[CellOf(points_[idx])];
  auto it = std::find(cell.begin(), cell.end(), static_cast<uint32_t>(idx));
  PICTDB_CHECK(it != cell.end());
  cell.erase(it);
}

std::optional<size_t> NearestNeighborGrid::Nearest(
    const geom::Point& q) const {
  if (remaining_ == 0) return std::nullopt;

  const long qcx = std::clamp<long>(
      static_cast<long>((q.x - bounds_.lo.x) / cell_w_), 0,
      static_cast<long>(cols_) - 1);
  const long qcy = std::clamp<long>(
      static_cast<long>((q.y - bounds_.lo.y) / cell_h_), 0,
      static_cast<long>(rows_) - 1);

  size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  bool found = false;

  const long max_ring = static_cast<long>(std::max(cols_, rows_));
  for (long ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate is known, stop as soon as the nearest possible
    // point in the ring is farther than the candidate.
    if (found) {
      const double ring_min =
          (static_cast<double>(ring) - 1.0) * std::min(cell_w_, cell_h_);
      if (ring_min > 0 && ring_min * ring_min > best_d2) break;
    }
    const long x0 = qcx - ring, x1 = qcx + ring;
    const long y0 = qcy - ring, y1 = qcy + ring;
    for (long cy = y0; cy <= y1; ++cy) {
      if (cy < 0 || cy >= static_cast<long>(rows_)) continue;
      for (long cx = x0; cx <= x1; ++cx) {
        if (cx < 0 || cx >= static_cast<long>(cols_)) continue;
        // Perimeter of the ring only.
        if (ring > 0 && cx != x0 && cx != x1 && cy != y0 && cy != y1) {
          continue;
        }
        for (const uint32_t idx : cells_[cy * cols_ + cx]) {
          const double d2 = geom::DistanceSquared(points_[idx], q);
          if (d2 < best_d2 || (d2 == best_d2 && found && idx < best)) {
            best_d2 = d2;
            best = idx;
            found = true;
          }
        }
      }
    }
  }
  PICTDB_CHECK(found);
  return best;
}

}  // namespace pictdb::pack
