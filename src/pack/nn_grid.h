#ifndef PICTDB_PACK_NN_GRID_H_
#define PICTDB_PACK_NN_GRID_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace pictdb::pack {

/// Deletable nearest-neighbour structure over a fixed set of points,
/// backing the paper's NN(DLIST, I) primitive: "return the item in DLIST
/// which is spatially closest to item I and delete it from DLIST".
/// Uniform grid with ring-expansion queries: near-O(1) per query on
/// roughly uniform data, O(n) worst case — far better than the naive
/// O(n²) scan for large loads.
class NearestNeighborGrid {
 public:
  explicit NearestNeighborGrid(const std::vector<geom::Point>& points);

  /// Number of points still present.
  size_t remaining() const { return remaining_; }

  bool Contains(size_t idx) const { return alive_[idx]; }

  /// Remove point `idx` from the structure.
  void Remove(size_t idx);

  /// Index of the nearest remaining point to `q` (ties by lower index);
  /// nullopt when empty.
  std::optional<size_t> Nearest(const geom::Point& q) const;

 private:
  size_t CellOf(const geom::Point& p) const;

  std::vector<geom::Point> points_;
  std::vector<bool> alive_;
  size_t remaining_ = 0;

  geom::Rect bounds_;
  size_t cols_ = 1;
  size_t rows_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  std::vector<std::vector<uint32_t>> cells_;
};

}  // namespace pictdb::pack

#endif  // PICTDB_PACK_NN_GRID_H_
