#include "pack/rotation.h"

#include <algorithm>

#include "common/logging.h"
#include "pack/pack.h"

namespace pictdb::pack {

StatusOr<RotationPacking> ComputeRotationPacking(
    const std::vector<geom::Point>& points, size_t group_size) {
  if (group_size < 1) {
    return Status::InvalidArgument("group size must be positive");
  }
  RotationPacking out;
  if (points.empty()) return out;

  out.angle = geom::FindDistinctXRotation(points);
  out.rotated = geom::Transform::Rotation(out.angle).Apply(points);

  std::vector<geom::Point> sorted = out.rotated;
  std::sort(sorted.begin(), sorted.end(),
            [](const geom::Point& a, const geom::Point& b) {
              return a.x < b.x || (a.x == b.x && a.y < b.y);
            });
  for (size_t i = 0; i < sorted.size(); i += group_size) {
    geom::Rect mbr;
    const size_t end = std::min(sorted.size(), i + group_size);
    for (size_t j = i; j < end; ++j) mbr.ExpandToInclude(sorted[j]);
    out.leaf_mbrs.push_back(mbr);
  }
  return out;
}

Status PackWithRotation(rtree::RTree* tree,
                        const std::vector<geom::Point>& points,
                        const std::vector<storage::Rid>& rids,
                        geom::Transform* transform_out) {
  PICTDB_CHECK(points.size() == rids.size());
  if (points.empty()) {
    if (transform_out != nullptr) *transform_out = geom::Transform();
    return Status::OK();
  }
  const double angle = geom::FindDistinctXRotation(points);
  const geom::Transform rot = geom::Transform::Rotation(angle);
  if (transform_out != nullptr) *transform_out = rot;
  const std::vector<geom::Point> rotated = rot.Apply(points);
  return PackSortChunk(tree, MakeLeafEntries(rotated, rids));
}

}  // namespace pictdb::pack
