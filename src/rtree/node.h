#ifndef PICTDB_RTREE_NODE_H_
#define PICTDB_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "geom/rect.h"
#include "simd/rect_kernels.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace pictdb::rtree {

/// One slot of an R-tree node, the paper's
///   (I, tuple-identifier)  — leaf entries, payload is a Rid
///   (I, child-pointer)     — non-leaf entries, payload is a PageId
/// `I` is the minimal bounding rectangle of everything below the entry.
struct Entry {
  geom::Rect mbr;
  uint64_t payload = 0;

  static uint64_t PayloadFromRid(const storage::Rid& rid) {
    // The packed form is (page_id << 16) | slot; a page id wider than
    // 48 bits would shift into oblivion and alias another tuple.
    PICTDB_CHECK((static_cast<uint64_t>(rid.page_id) >> 48) == 0)
        << "rid page id " << rid.page_id << " does not fit in 48 bits";
    return (static_cast<uint64_t>(rid.page_id) << 16) | rid.slot;
  }
  static uint64_t PayloadFromChild(storage::PageId child) { return child; }

  storage::Rid AsRid() const {
    return storage::Rid{static_cast<storage::PageId>(payload >> 16),
                        static_cast<uint16_t>(payload & 0xFFFF)};
  }
  storage::PageId AsChild() const {
    return static_cast<storage::PageId>(payload);
  }
};

/// In-memory image of an R-tree node. Nodes are read from / written to
/// fixed-size pages; manipulating a decoded copy keeps the algorithms free
/// of offset arithmetic. Level 0 is the leaf level (the paper's CLASS
/// field); `entries.size()` is the paper's VALID counter.
struct Node {
  uint16_t level = 0;
  std::vector<Entry> entries;

  bool is_leaf() const { return level == 0; }

  /// Minimal rectangle bounding all entries. Recomputed on every call
  /// (entries are public and freely mutated by the update algorithms,
  /// so the node cannot memoize safely) — callers in loops must hoist
  /// the result instead of re-calling; MbrComputeCountForTesting() lets
  /// tests pin that down.
  geom::Rect Mbr() const;
};

/// Total Node::Mbr() invocations in this process. The regression test
/// for the "Mbr recomputed in hot loops" fix diffs this around
/// traversals to prove each node's bound is computed at most once.
uint64_t MbrComputeCountForTesting();

/// Struct-of-arrays image of one node: the same entries as `Node`, but
/// with each coordinate in its own contiguous lane so the simd rect
/// kernels can test a whole node per call. Decoded from the identical
/// on-disk page layout (the disk format is entry-major and unchanged —
/// the transpose happens at decode, once per node visit).
///
/// Reuse one instance across decodes: ReadNodeSoa only resize()s the
/// lane vectors, so after the first full-capacity node no traversal
/// allocates.
struct SoaNode {
  uint16_t level = 0;
  std::vector<double> xmin;
  std::vector<double> ymin;
  std::vector<double> xmax;
  std::vector<double> ymax;
  std::vector<uint64_t> payloads;

  size_t count() const { return payloads.size(); }
  bool is_leaf() const { return level == 0; }

  simd::RectSoa rects() const {
    return simd::RectSoa{xmin.data(), ymin.data(), xmax.data(), ymax.data(),
                         payloads.size()};
  }

  geom::Rect RectAt(size_t i) const {
    return simd::LaneRect(rects(), i);
  }
  storage::Rid RidAt(size_t i) const {
    return storage::Rid{static_cast<storage::PageId>(payloads[i] >> 16),
                        static_cast<uint16_t>(payloads[i] & 0xFFFF)};
  }
  storage::PageId ChildAt(size_t i) const {
    return static_cast<storage::PageId>(payloads[i]);
  }

  /// Minimal rectangle bounding all (non-empty) entries — same result
  /// as Node::Mbr(). Hoist in loops, as with Node::Mbr().
  geom::Rect Mbr() const;
};

/// Maximum entries that fit in a page of the given size.
size_t NodePageCapacity(uint32_t page_size);

/// Decode a node from its page image.
Node ReadNode(const char* page, uint32_t page_size);

/// Decode a node from its page image into SoA lanes, reusing `out`'s
/// storage. CHECKs on a corrupt count like ReadNode.
void ReadNodeSoa(const char* page, uint32_t page_size, SoaNode* out);

/// Encode a node onto a page image. CHECKs that it fits.
void WriteNode(const Node& node, char* page, uint32_t page_size);

}  // namespace pictdb::rtree

#endif  // PICTDB_RTREE_NODE_H_
