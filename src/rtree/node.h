#ifndef PICTDB_RTREE_NODE_H_
#define PICTDB_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "geom/rect.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace pictdb::rtree {

/// One slot of an R-tree node, the paper's
///   (I, tuple-identifier)  — leaf entries, payload is a Rid
///   (I, child-pointer)     — non-leaf entries, payload is a PageId
/// `I` is the minimal bounding rectangle of everything below the entry.
struct Entry {
  geom::Rect mbr;
  uint64_t payload = 0;

  static uint64_t PayloadFromRid(const storage::Rid& rid) {
    // The packed form is (page_id << 16) | slot; a page id wider than
    // 48 bits would shift into oblivion and alias another tuple.
    PICTDB_CHECK((static_cast<uint64_t>(rid.page_id) >> 48) == 0)
        << "rid page id " << rid.page_id << " does not fit in 48 bits";
    return (static_cast<uint64_t>(rid.page_id) << 16) | rid.slot;
  }
  static uint64_t PayloadFromChild(storage::PageId child) { return child; }

  storage::Rid AsRid() const {
    return storage::Rid{static_cast<storage::PageId>(payload >> 16),
                        static_cast<uint16_t>(payload & 0xFFFF)};
  }
  storage::PageId AsChild() const {
    return static_cast<storage::PageId>(payload);
  }
};

/// In-memory image of an R-tree node. Nodes are read from / written to
/// fixed-size pages; manipulating a decoded copy keeps the algorithms free
/// of offset arithmetic. Level 0 is the leaf level (the paper's CLASS
/// field); `entries.size()` is the paper's VALID counter.
struct Node {
  uint16_t level = 0;
  std::vector<Entry> entries;

  bool is_leaf() const { return level == 0; }

  /// Minimal rectangle bounding all entries.
  geom::Rect Mbr() const {
    geom::Rect r;
    for (const Entry& e : entries) r.ExpandToInclude(e.mbr);
    return r;
  }
};

/// Maximum entries that fit in a page of the given size.
size_t NodePageCapacity(uint32_t page_size);

/// Decode a node from its page image.
Node ReadNode(const char* page, uint32_t page_size);

/// Encode a node onto a page image. CHECKs that it fits.
void WriteNode(const Node& node, char* page, uint32_t page_size);

}  // namespace pictdb::rtree

#endif  // PICTDB_RTREE_NODE_H_
