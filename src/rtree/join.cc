#include "rtree/join.h"

#include "common/logging.h"
#include "simd/dispatch.h"

namespace pictdb::rtree {

namespace {

/// Reusable SoA transpose of one node's entry rects plus a verdict
/// mask, shared down the recursion (only leaf-level frames use it, and
/// leaves never recurse, so one instance is safe).
struct JoinScratch {
  std::vector<double> xmin;
  std::vector<double> ymin;
  std::vector<double> xmax;
  std::vector<double> ymax;
  std::vector<uint64_t> mask;

  simd::RectSoa Transpose(const Node& node) {
    const size_t n = node.entries.size();
    xmin.resize(n);
    ymin.resize(n);
    xmax.resize(n);
    ymax.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const geom::Rect& r = node.entries[i].mbr;
      xmin[i] = r.lo.x;
      ymin[i] = r.lo.y;
      xmax[i] = r.hi.x;
      ymax[i] = r.hi.y;
    }
    mask.resize(simd::MaskWords(n));
    return simd::RectSoa{xmin.data(), ymin.data(), xmax.data(),
                         ymax.data(), n};
  }
};

/// Load one side of a join pair; on an unreadable page in degraded mode
/// the pair is skipped (quarantining the page) instead of failing the
/// whole join. Sets `*skip` when the caller should drop the pair.
StatusOr<Node> LoadJoinNode(const RTree& tree, storage::PageId id,
                            JoinStats* stats, const SearchOptions& options,
                            bool* skip) {
  auto loaded = tree.ReadNodePage(id);
  if (loaded.ok()) return loaded;
  if (!options.ShouldDegrade(loaded.status())) return loaded;
  if (options.quarantine != nullptr) options.quarantine->Add(id);
  if (stats != nullptr) {
    ++stats->skipped_subtrees;
    stats->degraded = true;
  }
  *skip = true;
  return Node{};
}

Status JoinRec(const RTree& left, const RTree& right, storage::PageId lid,
               storage::PageId rid, const JoinCallback& callback,
               JoinStats* stats, const SearchOptions& options,
               JoinScratch* scratch) {
  PICTDB_RETURN_IF_ERROR(options.CheckRunnable());
  bool skip = false;
  PICTDB_ASSIGN_OR_RETURN(const Node lnode,
                          LoadJoinNode(left, lid, stats, options, &skip));
  if (skip) return Status::OK();
  PICTDB_ASSIGN_OR_RETURN(const Node rnode,
                          LoadJoinNode(right, rid, stats, options, &skip));
  if (skip) return Status::OK();
  if (stats != nullptr) stats->nodes_visited += 2;

  // Unequal levels: descend the taller side against the whole other
  // node (its MBR hoisted — one computation per visit, not per entry).
  if (lnode.level > rnode.level) {
    const geom::Rect rmbr = rnode.Mbr();
    for (const Entry& le : lnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (le.mbr.Intersects(rmbr)) {
        PICTDB_RETURN_IF_ERROR(JoinRec(left, right, le.AsChild(), rid,
                                       callback, stats, options, scratch));
      }
    }
    return Status::OK();
  }
  if (rnode.level > lnode.level) {
    const geom::Rect lmbr = lnode.Mbr();
    for (const Entry& re : rnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (re.mbr.Intersects(lmbr)) {
        PICTDB_RETURN_IF_ERROR(JoinRec(left, right, lid, re.AsChild(),
                                       callback, stats, options, scratch));
      }
    }
    return Status::OK();
  }

  // Equal leaf levels: the all-pairs test is the join's hot loop —
  // transpose the right node once and let the rect kernels test every
  // right entry against each left entry in one call. Ascending bit
  // order keeps the (le, re) callback order identical to the scalar
  // nested loop.
  if (lnode.is_leaf()) {
    const simd::RectSoa rsoa = scratch->Transpose(rnode);
    const simd::RectKernels& kernels = simd::ActiveKernels();
    for (const Entry& le : lnode.entries) {
      if (stats != nullptr) stats->pairs_tested += rsoa.count;
      kernels.intersects(rsoa, le.mbr, scratch->mask.data());
      simd::ForEachSetBit(scratch->mask.data(), rsoa.count, [&](size_t i) {
        if (stats != nullptr) ++stats->results;
        const Entry& re = rnode.entries[i];
        callback(LeafHit{le.mbr, le.AsRid()}, LeafHit{re.mbr, re.AsRid()});
      });
    }
    return Status::OK();
  }

  // Equal interior levels: pairwise test, descending on intersection.
  for (const Entry& le : lnode.entries) {
    for (const Entry& re : rnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (!le.mbr.Intersects(re.mbr)) continue;
      PICTDB_RETURN_IF_ERROR(JoinRec(left, right, le.AsChild(), re.AsChild(),
                                     callback, stats, options, scratch));
    }
  }
  return Status::OK();
}

}  // namespace

Status SpatialJoin(const RTree& left, const RTree& right,
                   const JoinCallback& callback, JoinStats* stats,
                   const SearchOptions& options) {
  if (left.Size() == 0 || right.Size() == 0) return Status::OK();
  JoinScratch scratch;
  return JoinRec(left, right, left.root(), right.root(), callback, stats,
                 options, &scratch);
}

Status NestedLoopJoin(const RTree& left, const RTree& right,
                      const JoinCallback& callback, JoinStats* stats) {
  PICTDB_ASSIGN_OR_RETURN(const std::vector<LeafHit> lhits,
                          left.CollectAllEntries());
  PICTDB_ASSIGN_OR_RETURN(const std::vector<LeafHit> rhits,
                          right.CollectAllEntries());
  for (const LeafHit& lh : lhits) {
    for (const LeafHit& rh : rhits) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (lh.mbr.Intersects(rh.mbr)) {
        if (stats != nullptr) ++stats->results;
        callback(lh, rh);
      }
    }
  }
  return Status::OK();
}

}  // namespace pictdb::rtree
