#include "rtree/join.h"

#include "common/logging.h"

namespace pictdb::rtree {

namespace {

Status JoinRec(const RTree& left, const RTree& right, storage::PageId lid,
               storage::PageId rid, const JoinCallback& callback,
               JoinStats* stats) {
  PICTDB_ASSIGN_OR_RETURN(const Node lnode, left.ReadNodePage(lid));
  PICTDB_ASSIGN_OR_RETURN(const Node rnode, right.ReadNodePage(rid));
  if (stats != nullptr) stats->nodes_visited += 2;

  // Unequal levels: descend the taller side against the whole other node.
  if (lnode.level > rnode.level) {
    const geom::Rect rmbr = rnode.Mbr();
    for (const Entry& le : lnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (le.mbr.Intersects(rmbr)) {
        PICTDB_RETURN_IF_ERROR(
            JoinRec(left, right, le.AsChild(), rid, callback, stats));
      }
    }
    return Status::OK();
  }
  if (rnode.level > lnode.level) {
    const geom::Rect lmbr = lnode.Mbr();
    for (const Entry& re : rnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (re.mbr.Intersects(lmbr)) {
        PICTDB_RETURN_IF_ERROR(
            JoinRec(left, right, lid, re.AsChild(), callback, stats));
      }
    }
    return Status::OK();
  }

  // Equal levels: pairwise test.
  for (const Entry& le : lnode.entries) {
    for (const Entry& re : rnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (!le.mbr.Intersects(re.mbr)) continue;
      if (lnode.is_leaf()) {
        if (stats != nullptr) ++stats->results;
        callback(LeafHit{le.mbr, le.AsRid()}, LeafHit{re.mbr, re.AsRid()});
      } else {
        PICTDB_RETURN_IF_ERROR(JoinRec(left, right, le.AsChild(),
                                       re.AsChild(), callback, stats));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status SpatialJoin(const RTree& left, const RTree& right,
                   const JoinCallback& callback, JoinStats* stats) {
  if (left.Size() == 0 || right.Size() == 0) return Status::OK();
  return JoinRec(left, right, left.root(), right.root(), callback, stats);
}

Status NestedLoopJoin(const RTree& left, const RTree& right,
                      const JoinCallback& callback, JoinStats* stats) {
  PICTDB_ASSIGN_OR_RETURN(const std::vector<LeafHit> lhits,
                          left.CollectAllEntries());
  PICTDB_ASSIGN_OR_RETURN(const std::vector<LeafHit> rhits,
                          right.CollectAllEntries());
  for (const LeafHit& lh : lhits) {
    for (const LeafHit& rh : rhits) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (lh.mbr.Intersects(rh.mbr)) {
        if (stats != nullptr) ++stats->results;
        callback(lh, rh);
      }
    }
  }
  return Status::OK();
}

}  // namespace pictdb::rtree
