#include "rtree/join.h"

#include "common/logging.h"

namespace pictdb::rtree {

namespace {

/// Load one side of a join pair; on an unreadable page in degraded mode
/// the pair is skipped (quarantining the page) instead of failing the
/// whole join. Sets `*skip` when the caller should drop the pair.
StatusOr<Node> LoadJoinNode(const RTree& tree, storage::PageId id,
                            JoinStats* stats, const SearchOptions& options,
                            bool* skip) {
  auto loaded = tree.ReadNodePage(id);
  if (loaded.ok()) return loaded;
  if (!options.ShouldDegrade(loaded.status())) return loaded;
  if (options.quarantine != nullptr) options.quarantine->Add(id);
  if (stats != nullptr) {
    ++stats->skipped_subtrees;
    stats->degraded = true;
  }
  *skip = true;
  return Node{};
}

Status JoinRec(const RTree& left, const RTree& right, storage::PageId lid,
               storage::PageId rid, const JoinCallback& callback,
               JoinStats* stats, const SearchOptions& options) {
  PICTDB_RETURN_IF_ERROR(options.CheckRunnable());
  bool skip = false;
  PICTDB_ASSIGN_OR_RETURN(const Node lnode,
                          LoadJoinNode(left, lid, stats, options, &skip));
  if (skip) return Status::OK();
  PICTDB_ASSIGN_OR_RETURN(const Node rnode,
                          LoadJoinNode(right, rid, stats, options, &skip));
  if (skip) return Status::OK();
  if (stats != nullptr) stats->nodes_visited += 2;

  // Unequal levels: descend the taller side against the whole other node.
  if (lnode.level > rnode.level) {
    const geom::Rect rmbr = rnode.Mbr();
    for (const Entry& le : lnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (le.mbr.Intersects(rmbr)) {
        PICTDB_RETURN_IF_ERROR(
            JoinRec(left, right, le.AsChild(), rid, callback, stats, options));
      }
    }
    return Status::OK();
  }
  if (rnode.level > lnode.level) {
    const geom::Rect lmbr = lnode.Mbr();
    for (const Entry& re : rnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (re.mbr.Intersects(lmbr)) {
        PICTDB_RETURN_IF_ERROR(
            JoinRec(left, right, lid, re.AsChild(), callback, stats, options));
      }
    }
    return Status::OK();
  }

  // Equal levels: pairwise test.
  for (const Entry& le : lnode.entries) {
    for (const Entry& re : rnode.entries) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (!le.mbr.Intersects(re.mbr)) continue;
      if (lnode.is_leaf()) {
        if (stats != nullptr) ++stats->results;
        callback(LeafHit{le.mbr, le.AsRid()}, LeafHit{re.mbr, re.AsRid()});
      } else {
        PICTDB_RETURN_IF_ERROR(JoinRec(left, right, le.AsChild(),
                                       re.AsChild(), callback, stats,
                                       options));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status SpatialJoin(const RTree& left, const RTree& right,
                   const JoinCallback& callback, JoinStats* stats,
                   const SearchOptions& options) {
  if (left.Size() == 0 || right.Size() == 0) return Status::OK();
  return JoinRec(left, right, left.root(), right.root(), callback, stats,
                 options);
}

Status NestedLoopJoin(const RTree& left, const RTree& right,
                      const JoinCallback& callback, JoinStats* stats) {
  PICTDB_ASSIGN_OR_RETURN(const std::vector<LeafHit> lhits,
                          left.CollectAllEntries());
  PICTDB_ASSIGN_OR_RETURN(const std::vector<LeafHit> rhits,
                          right.CollectAllEntries());
  for (const LeafHit& lh : lhits) {
    for (const LeafHit& rh : rhits) {
      if (stats != nullptr) ++stats->pairs_tested;
      if (lh.mbr.Intersects(rh.mbr)) {
        if (stats != nullptr) ++stats->results;
        callback(lh, rh);
      }
    }
  }
  return Status::OK();
}

}  // namespace pictdb::rtree
