#include "rtree/rtree.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "simd/dispatch.h"

namespace pictdb::rtree {

using geom::Enlargement;
using geom::Rect;
using storage::BufferPool;
using storage::kInvalidPageId;
using storage::PageGuard;
using storage::PageId;
using storage::Rid;

namespace {

// Meta page layout.
struct MetaImage {
  PageId root;
  uint32_t height;
  uint64_t size;
  uint16_t max_entries;
  uint16_t min_entries;
  uint8_t split;
  uint8_t forced_reinsert;
};

MetaImage ReadMeta(const char* page) {
  MetaImage m;
  std::memcpy(&m.root, page, 4);
  std::memcpy(&m.height, page + 4, 4);
  std::memcpy(&m.size, page + 8, 8);
  std::memcpy(&m.max_entries, page + 16, 2);
  std::memcpy(&m.min_entries, page + 18, 2);
  std::memcpy(&m.split, page + 20, 1);
  std::memcpy(&m.forced_reinsert, page + 21, 1);
  return m;
}

void WriteMeta(const MetaImage& m, char* page) {
  std::memcpy(page, &m.root, 4);
  std::memcpy(page + 4, &m.height, 4);
  std::memcpy(page + 8, &m.size, 8);
  std::memcpy(page + 16, &m.max_entries, 2);
  std::memcpy(page + 18, &m.min_entries, 2);
  std::memcpy(page + 20, &m.split, 1);
  std::memcpy(page + 21, &m.forced_reinsert, 1);
}

/// Guttman's ChooseSubtree criterion: least enlargement, ties by smaller
/// area, then fewer entries is unknowable here so first wins.
size_t ChooseSubtree(const Node& node, const Rect& mbr) {
  size_t best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const double enlargement = Enlargement(node.entries[i].mbr, mbr);
    const double area = node.entries[i].mbr.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best_enlargement = enlargement;
      best_area = area;
      best = i;
    }
  }
  return best;
}

/// Shared option validation/derivation for Create and CreateAt.
StatusOr<RTreeOptions> NormalizeOptions(const RTreeOptions& options,
                                        uint32_t page_size) {
  RTreeOptions opts = options;
  const size_t cap = NodePageCapacity(page_size);
  if (opts.max_entries == 0) opts.max_entries = cap;
  if (opts.max_entries < 2 || opts.max_entries > cap) {
    return Status::InvalidArgument("max_entries out of range for page size");
  }
  if (opts.min_entries == 0) opts.min_entries = opts.max_entries / 2;
  if (opts.min_entries < 1 || 2 * opts.min_entries > opts.max_entries) {
    return Status::InvalidArgument("min_entries must satisfy 1 <= m <= M/2");
  }
  return opts;
}

}  // namespace

size_t RTree::MaxEntries() const {
  return options_.max_entries != 0 ? options_.max_entries
                                   : NodePageCapacity(pool_->page_size());
}

size_t RTree::MinEntries() const {
  return options_.min_entries != 0 ? options_.min_entries : MaxEntries() / 2;
}

StatusOr<RTree> RTree::Create(BufferPool* pool, const RTreeOptions& options) {
  PICTDB_ASSIGN_OR_RETURN(const RTreeOptions opts,
                          NormalizeOptions(options, pool->page_size()));

  PICTDB_ASSIGN_OR_RETURN(PageGuard meta, pool->NewPage());
  PICTDB_ASSIGN_OR_RETURN(PageGuard root, pool->NewPage());
  Node empty_root;
  empty_root.level = 0;
  WriteNode(empty_root, root.mutable_data(), pool->page_size());

  MetaImage m;
  m.root = root.id();
  m.height = 1;
  m.size = 0;
  m.max_entries = static_cast<uint16_t>(opts.max_entries);
  m.min_entries = static_cast<uint16_t>(opts.min_entries);
  m.split = static_cast<uint8_t>(opts.split);
  m.forced_reinsert = opts.forced_reinsert ? 1 : 0;
  WriteMeta(m, meta.mutable_data());

  return RTree(pool, meta.id(), root.id(), 1, 0, opts);
}

StatusOr<RTree> RTree::CreateAt(BufferPool* pool, PageId meta_page,
                                const RTreeOptions& options) {
  PICTDB_ASSIGN_OR_RETURN(const RTreeOptions opts,
                          NormalizeOptions(options, pool->page_size()));

  // The old meta image may be torn after a crash — fetch for overwrite
  // so an unreadable page comes back zeroed instead of failing recovery.
  PICTDB_ASSIGN_OR_RETURN(PageGuard meta,
                          pool->FetchPageForOverwrite(meta_page));
  PICTDB_ASSIGN_OR_RETURN(PageGuard root, pool->NewPage());
  Node empty_root;
  empty_root.level = 0;
  WriteNode(empty_root, root.mutable_data(), pool->page_size());

  MetaImage m;
  m.root = root.id();
  m.height = 1;
  m.size = 0;
  m.max_entries = static_cast<uint16_t>(opts.max_entries);
  m.min_entries = static_cast<uint16_t>(opts.min_entries);
  m.split = static_cast<uint8_t>(opts.split);
  m.forced_reinsert = opts.forced_reinsert ? 1 : 0;
  WriteMeta(m, meta.mutable_data());

  return RTree(pool, meta_page, root.id(), 1, 0, opts);
}

StatusOr<RTree> RTree::Open(BufferPool* pool, PageId meta_page) {
  PICTDB_ASSIGN_OR_RETURN(PageGuard meta, pool->FetchPage(meta_page));
  const MetaImage m = ReadMeta(meta.data());
  RTreeOptions opts;
  opts.max_entries = m.max_entries;
  opts.min_entries = m.min_entries;
  opts.split = static_cast<SplitAlgorithm>(m.split);
  opts.forced_reinsert = m.forced_reinsert != 0;
  return RTree(pool, meta_page, m.root, m.height, m.size, opts);
}

StatusOr<Node> RTree::LoadNode(PageId id) const {
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  // Copy-then-release under a shared frame latch: readers never hold a
  // latch across a child fetch, so they cannot deadlock with the
  // bottom-up writer (which latches one frame at a time, exclusive).
  if (concurrent_reads_.load(std::memory_order_relaxed)) {
    ReaderMutexLock latch(pool_->LatchFor(guard));
    return ReadNode(guard.data(), pool_->page_size());
  }
  return ReadNode(guard.data(), pool_->page_size());
}

Status RTree::LoadNodeSoa(PageId id, SoaNode* out) const {
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  // Same copy-then-release latch discipline as LoadNode.
  if (concurrent_reads_.load(std::memory_order_relaxed)) {
    ReaderMutexLock latch(pool_->LatchFor(guard));
    ReadNodeSoa(guard.data(), pool_->page_size(), out);
    return Status::OK();
  }
  ReadNodeSoa(guard.data(), pool_->page_size(), out);
  return Status::OK();
}

Status RTree::StoreNode(PageId id, const Node& node) {
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
  if (concurrent_reads_.load(std::memory_order_relaxed)) {
    WriterMutexLock latch(pool_->LatchFor(guard));
    WriteNode(node, guard.mutable_data(), pool_->page_size());
    return Status::OK();
  }
  WriteNode(node, guard.mutable_data(), pool_->page_size());
  return Status::OK();
}

Status RTree::RetirePage(PageId id) {
  if (retire_hook_) return retire_hook_(id);
  return pool_->FreePage(id);
}

Status RTree::PersistMeta() {
  PICTDB_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  MetaImage m;
  m.root = root();
  m.height = Height();
  m.size = Size();
  m.max_entries = static_cast<uint16_t>(options_.max_entries);
  m.min_entries = static_cast<uint16_t>(options_.min_entries);
  m.split = static_cast<uint8_t>(options_.split);
  m.forced_reinsert = options_.forced_reinsert ? 1 : 0;
  WriteMeta(m, meta.mutable_data());
  return Status::OK();
}

StatusOr<RTree::InsertResult> RTree::InsertRec(PageId node_id,
                                               const Entry& entry,
                                               uint16_t target_level,
                                               uint16_t node_level,
                                               InsertContext* ctx) {
  PICTDB_ASSIGN_OR_RETURN(Node node, LoadNode(node_id));
  PICTDB_CHECK(node.level == node_level);

  if (node_level != target_level) {
    // Descend into the subtree needing the least enlargement.
    const size_t child_idx = ChooseSubtree(node, entry.mbr);
    PICTDB_ASSIGN_OR_RETURN(
        const InsertResult child_result,
        InsertRec(node.entries[child_idx].AsChild(), entry, target_level,
                  static_cast<uint16_t>(node_level - 1), ctx));
    node.entries[child_idx].mbr = child_result.mbr;
    if (child_result.split) {
      Entry sibling;
      sibling.mbr = child_result.split_mbr;
      sibling.payload = Entry::PayloadFromChild(child_result.split_page);
      node.entries.push_back(sibling);
    }
  } else {
    node.entries.push_back(entry);
  }

  InsertResult result;
  if (node.entries.size() <= MaxEntries()) {
    PICTDB_RETURN_IF_ERROR(StoreNode(node_id, node));
    result.mbr = node.Mbr();
    return result;
  }

  // Overflow. R*-style forced reinsertion first, if enabled and this is
  // the level's first overflow of the insertion (and not the root).
  if (options_.forced_reinsert && ctx != nullptr && node_id != root() &&
      node_level < ctx->reinserted_at_level.size() &&
      !ctx->reinserted_at_level[node_level]) {
    ctx->reinserted_at_level[node_level] = true;
    // Closest-to-center entries stay; the farthest ~30% are evicted for
    // re-insertion (they are the ones stretching the node).
    const geom::Point center = node.Mbr().Center();
    std::stable_sort(node.entries.begin(), node.entries.end(),
                     [&center](const Entry& a, const Entry& b) {
                       return geom::DistanceSquared(a.mbr.Center(), center) <
                              geom::DistanceSquared(b.mbr.Center(), center);
                     });
    const size_t evict =
        std::max<size_t>(1, (node.entries.size() * 3) / 10);
    // Keep at least MinEntries so the node stays legal.
    const size_t keep = std::max(MinEntries(),
                                 node.entries.size() - evict);
    for (size_t i = keep; i < node.entries.size(); ++i) {
      ctx->pending.emplace_back(node_level, node.entries[i]);
    }
    node.entries.resize(keep);
    PICTDB_RETURN_IF_ERROR(StoreNode(node_id, node));
    result.mbr = node.Mbr();
    return result;
  }

  // Split this node (Guttman's SplitNode + AdjustTree step).
  auto [group1, group2] =
      SplitEntries(std::move(node.entries), MinEntries(), options_.split);
  Node left;
  left.level = node.level;
  left.entries = std::move(group1);
  Node right;
  right.level = node.level;
  right.entries = std::move(group2);

  PICTDB_ASSIGN_OR_RETURN(PageGuard right_page, pool_->NewPage());
  WriteNode(right, right_page.mutable_data(), pool_->page_size());
  PICTDB_RETURN_IF_ERROR(StoreNode(node_id, left));

  result.mbr = left.Mbr();
  result.split = true;
  result.split_mbr = right.Mbr();
  result.split_page = right_page.id();
  return result;
}

Status RTree::InsertAtLevel(const Entry& entry, uint16_t target_level) {
  PICTDB_CHECK(target_level < Height());
  InsertContext ctx;
  ctx.reinserted_at_level.assign(Height(), false);

  // The initial entry plus any forced-reinsertion evictions. Each pass
  // may grow the tree or queue further evictions (at levels that then
  // split instead, so the loop terminates).
  std::vector<std::pair<uint16_t, Entry>> work = {{target_level, entry}};
  while (!work.empty()) {
    const auto [level, item] = work.back();
    work.pop_back();
    PICTDB_ASSIGN_OR_RETURN(
        const InsertResult result,
        InsertRec(root(), item, level, static_cast<uint16_t>(Height() - 1),
                  &ctx));
    if (result.split) {
      // Grow the tree: new root over the two halves.
      Node new_root;
      new_root.level = static_cast<uint16_t>(Height());
      Entry left;
      left.mbr = result.mbr;
      left.payload = Entry::PayloadFromChild(root());
      Entry right;
      right.mbr = result.split_mbr;
      right.payload = Entry::PayloadFromChild(result.split_page);
      new_root.entries = {left, right};
      PICTDB_ASSIGN_OR_RETURN(PageGuard root_page, pool_->NewPage());
      WriteNode(new_root, root_page.mutable_data(), pool_->page_size());
      // Publish only after the new root's bytes exist.
      SetRootHeight(root_page.id(), Height() + 1);
      ctx.reinserted_at_level.resize(Height(), false);
    }
    for (auto& evicted : ctx.pending) {
      work.push_back(std::move(evicted));
    }
    ctx.pending.clear();
  }
  return Status::OK();
}

Status RTree::Insert(const Rect& mbr, const Rid& rid) {
  if (mbr.IsEmpty()) {
    return Status::InvalidArgument("cannot index an empty rectangle");
  }
  Entry entry;
  entry.mbr = mbr;
  entry.payload = Entry::PayloadFromRid(rid);
  PICTDB_RETURN_IF_ERROR(InsertAtLevel(entry, 0));
  size_.fetch_add(1);
  return PersistMeta();
}

StatusOr<RTree::DeleteResult> RTree::DeleteRec(
    PageId node_id, uint16_t node_level, const Rect& mbr, const Rid& rid,
    std::vector<std::pair<uint16_t, Entry>>* orphans) {
  PICTDB_ASSIGN_OR_RETURN(Node node, LoadNode(node_id));
  PICTDB_CHECK(node.level == node_level);
  DeleteResult result;

  if (node.is_leaf()) {
    const uint64_t payload = Entry::PayloadFromRid(rid);
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].payload == payload &&
          node.entries[i].mbr == mbr) {
        node.entries.erase(node.entries.begin() + i);
        PICTDB_RETURN_IF_ERROR(StoreNode(node_id, node));
        result.found = true;
        result.drop_child = node.entries.size() < MinEntries();
        result.mbr = node.Mbr();
        return result;
      }
    }
    return result;  // not found in this leaf
  }

  // FindLeaf: descend every subtree whose rectangle contains the target.
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (!node.entries[i].mbr.Contains(mbr)) continue;
    const PageId child_id = node.entries[i].AsChild();
    PICTDB_ASSIGN_OR_RETURN(
        const DeleteResult child_result,
        DeleteRec(child_id, static_cast<uint16_t>(node_level - 1), mbr, rid,
                  orphans));
    if (!child_result.found) continue;

    if (child_result.drop_child) {
      // CondenseTree: dissolve the underfull child; queue its remaining
      // entries for re-insertion at their original level.
      PICTDB_ASSIGN_OR_RETURN(const Node child, LoadNode(child_id));
      for (const Entry& e : child.entries) {
        orphans->emplace_back(child.level, e);
      }
      node.entries.erase(node.entries.begin() + i);
    } else {
      node.entries[i].mbr = child_result.mbr;
    }
    PICTDB_RETURN_IF_ERROR(StoreNode(node_id, node));
    if (child_result.drop_child) {
      // Unlink first (StoreNode above), then retire: a concurrent reader
      // that saw the old parent is protected by the epoch gate.
      PICTDB_RETURN_IF_ERROR(RetirePage(child_id));
    }
    result.found = true;
    result.drop_child = node.entries.size() < MinEntries();
    result.mbr = node.Mbr();
    return result;
  }
  return result;
}

Status RTree::Delete(const Rect& mbr, const Rid& rid) {
  std::vector<std::pair<uint16_t, Entry>> orphans;
  PICTDB_ASSIGN_OR_RETURN(
      const DeleteResult result,
      DeleteRec(root(), static_cast<uint16_t>(Height() - 1), mbr, rid,
                &orphans));
  if (!result.found) {
    return Status::NotFound("entry not in R-tree");
  }
  size_.fetch_sub(1);

  // Re-insert orphaned entries at their recorded levels. Later root
  // collapses cannot strand them: orphan levels are below the root level.
  for (const auto& [level, entry] : orphans) {
    PICTDB_RETURN_IF_ERROR(InsertAtLevel(entry, level));
  }

  // Collapse the root while it is an internal node with a single child.
  for (;;) {
    PICTDB_ASSIGN_OR_RETURN(const Node root_node, LoadNode(root()));
    if (root_node.is_leaf() || root_node.entries.size() != 1) break;
    const PageId old_root = root();
    const PageId only_child = root_node.entries[0].AsChild();
    // Publish the shrunken shape before retiring the old root.
    SetRootHeight(only_child, Height() - 1);
    PICTDB_RETURN_IF_ERROR(RetirePage(old_root));
  }
  return PersistMeta();
}

Status RTree::Update(const Rect& old_mbr, const Rid& old_rid,
                     const Rect& new_mbr, const Rid& new_rid) {
  if (new_mbr.IsEmpty()) {
    return Status::InvalidArgument("cannot index an empty rectangle");
  }
  PICTDB_RETURN_IF_ERROR(Delete(old_mbr, old_rid));
  const Status inserted = Insert(new_mbr, new_rid);
  if (!inserted.ok()) {
    // Best-effort rollback: losing the old entry on a failed insert
    // would turn one error into silent data loss.
    const Status restored = Insert(old_mbr, old_rid);
    if (!restored.ok()) {
      PICTDB_LOG_WARN() << "Update rollback failed, entry lost: "
                        << restored.ToString();
    }
  }
  return inserted;
}

StatusOr<bool> RTree::Contains(const Rect& mbr, const Rid& rid) const {
  PICTDB_ASSIGN_OR_RETURN(
      const std::vector<LeafHit> hits,
      SearchCustom([&mbr](const Rect& r) { return r.Contains(mbr); },
                   [&mbr](const Rect& r) { return r == mbr; }));
  for (const LeafHit& hit : hits) {
    if (hit.rid == rid) return true;
  }
  return false;
}

Status RTree::SearchRec(PageId node_id,
                        const std::function<bool(const Rect&)>& prune,
                        const std::function<bool(const Rect&)>& accept,
                        std::vector<LeafHit>* out, SearchStats* stats,
                        const SearchOptions& options) const {
  PICTDB_RETURN_IF_ERROR(options.CheckRunnable());
  auto loaded = LoadNode(node_id);
  if (!loaded.ok()) {
    if (options.ShouldDegrade(loaded.status())) {
      // Quarantine the bad page and carry on with the rest of the tree:
      // a partial answer flagged degraded beats no answer.
      if (options.quarantine != nullptr) options.quarantine->Add(node_id);
      if (stats != nullptr) {
        ++stats->skipped_subtrees;
        stats->degraded = true;
      }
      return Status::OK();
    }
    return loaded.status();
  }
  const Node node = std::move(loaded).value();
  if (stats != nullptr) ++stats->nodes_visited;

  if (node.is_leaf()) {
    for (const Entry& e : node.entries) {
      if (stats != nullptr) ++stats->entries_tested;
      if (accept(e.mbr)) {
        out->push_back(LeafHit{e.mbr, e.AsRid()});
        if (stats != nullptr) ++stats->results;
      }
    }
    return Status::OK();
  }
  for (const Entry& e : node.entries) {
    if (stats != nullptr) ++stats->entries_tested;
    if (prune(e.mbr)) {
      PICTDB_RETURN_IF_ERROR(
          SearchRec(e.AsChild(), prune, accept, out, stats, options));
    }
  }
  return Status::OK();
}

StatusOr<std::vector<LeafHit>> RTree::SearchCustom(
    const std::function<bool(const Rect&)>& prune,
    const std::function<bool(const Rect&)>& accept, SearchStats* stats,
    const SearchOptions& options) const {
  std::vector<LeafHit> out;
  // Degraded-mode accounting must have somewhere to live even when the
  // caller did not ask for stats.
  SearchStats local;
  SearchStats* s = stats != nullptr ? stats : &local;
  PICTDB_RETURN_IF_ERROR(SearchRec(root(), prune, accept, &out, s, options));
  return out;
}

namespace {

using simd::ForEachSetBit;

/// Shared degraded-mode bookkeeping for a failed node load during the
/// kernel-driven traversals (mirrors the inline block in SearchRec).
bool DegradeOrFail(const Status& st, PageId id, SearchStats* stats,
                   const SearchOptions& options) {
  if (!options.ShouldDegrade(st)) return false;
  if (options.quarantine != nullptr) options.quarantine->Add(id);
  if (stats != nullptr) {
    ++stats->skipped_subtrees;
    stats->degraded = true;
  }
  return true;
}

}  // namespace

void RTree::PrefetchUpcoming(const std::vector<PageId>& stack) const {
#ifdef PICTDB_PREFETCH
  // The next few pops are the stack tail; deeper entries will be
  // re-hinted when their turn approaches.
  constexpr size_t kPrefetchDepth = 4;
  const size_t n = std::min(stack.size(), kPrefetchDepth);
  pool_->PrefetchResident(
      std::span<const PageId>(stack.data() + (stack.size() - n), n));
#else
  (void)stack;
#endif
}

Status RTree::SearchWindowFast(const Rect& window, WindowMode mode,
                               std::vector<LeafHit>* out, SearchStats* stats,
                               const SearchOptions& options) const {
  const simd::RectKernels& kernels = simd::ActiveKernels();
  SoaNode node;  // reused across every node visit
  std::vector<uint64_t> mask;
  std::vector<PageId> stack = {root()};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    PICTDB_RETURN_IF_ERROR(options.CheckRunnable());
    const Status loaded = LoadNodeSoa(id, &node);
    if (!loaded.ok()) {
      if (DegradeOrFail(loaded, id, stats, options)) continue;
      return loaded;
    }
    if (stats != nullptr) {
      ++stats->nodes_visited;
      stats->entries_tested += node.count();
    }
    mask.resize(simd::MaskWords(node.count()));
    if (node.is_leaf()) {
      if (mode == WindowMode::kContainedIn) {
        kernels.contained_in(node.rects(), window, mask.data());
      } else {
        kernels.intersects(node.rects(), window, mask.data());
      }
      ForEachSetBit(mask.data(), node.count(), [&](size_t i) {
        out->push_back(LeafHit{node.RectAt(i), node.RidAt(i)});
        if (stats != nullptr) ++stats->results;
      });
      continue;
    }
    // Both modes prune interior entries by intersection. Children are
    // pushed in REVERSE entry order so the pop order — and therefore
    // the hit order — matches SearchRec's entry-order recursion.
    kernels.intersects(node.rects(), window, mask.data());
    const size_t first_child = stack.size();
    ForEachSetBit(mask.data(), node.count(),
                  [&](size_t i) { stack.push_back(node.ChildAt(i)); });
    std::reverse(stack.begin() + static_cast<ptrdiff_t>(first_child),
                 stack.end());
    PrefetchUpcoming(stack);
  }
  return Status::OK();
}

Status RTree::SearchPointFast(const geom::Point& p, std::vector<LeafHit>* out,
                              SearchStats* stats,
                              const SearchOptions& options) const {
  const simd::RectKernels& kernels = simd::ActiveKernels();
  SoaNode node;
  std::vector<uint64_t> mask;
  std::vector<PageId> stack = {root()};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    PICTDB_RETURN_IF_ERROR(options.CheckRunnable());
    const Status loaded = LoadNodeSoa(id, &node);
    if (!loaded.ok()) {
      if (DegradeOrFail(loaded, id, stats, options)) continue;
      return loaded;
    }
    if (stats != nullptr) {
      ++stats->nodes_visited;
      stats->entries_tested += node.count();
    }
    mask.resize(simd::MaskWords(node.count()));
    kernels.contains_point(node.rects(), p, mask.data());
    if (node.is_leaf()) {
      ForEachSetBit(mask.data(), node.count(), [&](size_t i) {
        out->push_back(LeafHit{node.RectAt(i), node.RidAt(i)});
        if (stats != nullptr) ++stats->results;
      });
      continue;
    }
    const size_t first_child = stack.size();
    ForEachSetBit(mask.data(), node.count(),
                  [&](size_t i) { stack.push_back(node.ChildAt(i)); });
    std::reverse(stack.begin() + static_cast<ptrdiff_t>(first_child),
                 stack.end());
    PrefetchUpcoming(stack);
  }
  return Status::OK();
}

StatusOr<std::vector<LeafHit>> RTree::SearchIntersects(
    const Rect& window, SearchStats* stats,
    const SearchOptions& options) const {
  std::vector<LeafHit> out;
  PICTDB_RETURN_IF_ERROR(SearchWindowFast(window, WindowMode::kIntersects,
                                          &out, stats, options));
  return out;
}

StatusOr<std::vector<LeafHit>> RTree::SearchContainedIn(
    const Rect& window, SearchStats* stats,
    const SearchOptions& options) const {
  std::vector<LeafHit> out;
  PICTDB_RETURN_IF_ERROR(SearchWindowFast(window, WindowMode::kContainedIn,
                                          &out, stats, options));
  return out;
}

StatusOr<std::vector<LeafHit>> RTree::SearchPoint(
    const geom::Point& p, SearchStats* stats,
    const SearchOptions& options) const {
  std::vector<LeafHit> out;
  PICTDB_RETURN_IF_ERROR(SearchPointFast(p, &out, stats, options));
  return out;
}

StatusOr<std::vector<BatchHits>> RTree::SearchBatch(
    std::span<const geom::Rect> windows, bool contained_only,
    SearchStats* stats, const SearchOptions& options) const {
  std::vector<BatchHits> results(windows.size());
  if (windows.empty()) return results;

  const simd::RectKernels& kernels = simd::ActiveKernels();
  // One DFS frame per node the batch still has to visit, with the
  // subset of windows that reached it. Active lists stay sorted
  // ascending by construction (built by in-order scans), so per-window
  // work happens in a deterministic order.
  struct Frame {
    PageId id;
    std::vector<uint32_t> active;
  };
  std::vector<Frame> stack;
  Frame root_frame;
  root_frame.id = root();
  root_frame.active.resize(windows.size());
  std::iota(root_frame.active.begin(), root_frame.active.end(), 0u);
  stack.push_back(std::move(root_frame));

  SoaNode node;
  std::vector<uint64_t> mask;
  while (!stack.empty()) {
    const Frame frame = std::move(stack.back());
    stack.pop_back();
    PICTDB_RETURN_IF_ERROR(options.CheckRunnable());
    const Status loaded = LoadNodeSoa(frame.id, &node);
    if (!loaded.ok()) {
      if (DegradeOrFail(loaded, frame.id, stats, options)) {
        // Only the windows that were still active on this subtree are
        // missing answers.
        for (const uint32_t q : frame.active) results[q].degraded = true;
        continue;
      }
      return loaded;
    }
    if (stats != nullptr) {
      ++stats->nodes_visited;
      stats->entries_tested += node.count() * frame.active.size();
    }
    mask.resize(simd::MaskWords(node.count()));
    if (node.is_leaf()) {
      for (const uint32_t q : frame.active) {
        if (contained_only) {
          kernels.contained_in(node.rects(), windows[q], mask.data());
        } else {
          kernels.intersects(node.rects(), windows[q], mask.data());
        }
        ForEachSetBit(mask.data(), node.count(), [&](size_t i) {
          results[q].hits.push_back(LeafHit{node.RectAt(i), node.RidAt(i)});
          if (stats != nullptr) ++stats->results;
        });
      }
      continue;
    }
    // Interior node: each window prunes by intersection exactly as its
    // single-window search would, so the subsequence of nodes where a
    // window stays active is precisely that window's own DFS.
    std::vector<std::vector<uint32_t>> child_active(node.count());
    for (const uint32_t q : frame.active) {
      kernels.intersects(node.rects(), windows[q], mask.data());
      ForEachSetBit(mask.data(), node.count(),
                    [&](size_t i) { child_active[i].push_back(q); });
    }
    // Reverse entry order on the stack = entry-order traversal.
    for (size_t e = node.count(); e-- > 0;) {
      if (!child_active[e].empty()) {
        stack.push_back(
            Frame{node.ChildAt(e), std::move(child_active[e])});
      }
    }
#ifdef PICTDB_PREFETCH
    {
      PageId next[4];
      size_t n = 0;
      for (size_t f = stack.size(); f-- > 0 && n < 4;) {
        next[n++] = stack[f].id;
      }
      pool_->PrefetchResident(std::span<const PageId>(next, n));
    }
#endif
  }
  return results;
}

StatusOr<uint64_t> RTree::CountNodes() const {
  uint64_t count = 0;
  std::vector<PageId> stack = {root()};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    ++count;
    PICTDB_ASSIGN_OR_RETURN(const Node node, LoadNode(id));
    if (!node.is_leaf()) {
      for (const Entry& e : node.entries) stack.push_back(e.AsChild());
    }
  }
  return count;
}

StatusOr<std::vector<Rect>> RTree::CollectLeafNodeMbrs() const {
  return CollectNodeMbrsAtLevel(0);
}

StatusOr<std::vector<Rect>> RTree::CollectNodeMbrsAtLevel(
    uint16_t level) const {
  std::vector<Rect> out;
  std::vector<PageId> stack = {root()};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    PICTDB_ASSIGN_OR_RETURN(const Node node, LoadNode(id));
    if (node.level == level) {
      if (!node.entries.empty()) out.push_back(node.Mbr());
    } else if (node.level > level && !node.is_leaf()) {
      for (const Entry& e : node.entries) stack.push_back(e.AsChild());
    }
  }
  return out;
}

StatusOr<std::vector<LeafHit>> RTree::CollectAllEntries() const {
  return SearchCustom([](const Rect&) { return true; },
                      [](const Rect&) { return true; });
}

Status RTree::ValidateRec(PageId node_id, uint16_t expected_level,
                          const Rect* parent_mbr, uint64_t* leaf_entries,
                          bool is_root) const {
  PICTDB_ASSIGN_OR_RETURN(const Node node, LoadNode(node_id));
  if (node.level != expected_level) {
    return Status::Corruption("node level mismatch");
  }
  if (node.entries.size() > MaxEntries()) {
    return Status::Corruption("node overfull");
  }
  if (!is_root && node.entries.size() < 1) {
    return Status::Corruption("empty non-root node");
  }
  if (parent_mbr != nullptr && !(node.Mbr() == *parent_mbr)) {
    return Status::Corruption("parent MBR is not the minimal bound");
  }
  if (node.is_leaf()) {
    *leaf_entries += node.entries.size();
    return Status::OK();
  }
  for (const Entry& e : node.entries) {
    PICTDB_RETURN_IF_ERROR(
        ValidateRec(e.AsChild(), static_cast<uint16_t>(expected_level - 1),
                    &e.mbr, leaf_entries, /*is_root=*/false));
  }
  return Status::OK();
}

Status RTree::Validate() const {
  // One load so root and height come from the same tree shape.
  const uint64_t rh = root_height_.load();
  const PageId root_id = static_cast<PageId>(rh & 0xFFFFFFFFu);
  const uint32_t height = static_cast<uint32_t>(rh >> 32);
  uint64_t leaf_entries = 0;
  PICTDB_RETURN_IF_ERROR(ValidateRec(
      root_id, static_cast<uint16_t>(height - 1), nullptr, &leaf_entries,
      /*is_root=*/true));
  if (leaf_entries != Size()) {
    return Status::Corruption("recorded size does not match leaf entries");
  }
  return Status::OK();
}

StatusOr<PageId> RTree::BulkWriteNode(uint16_t level,
                                      const std::vector<Entry>& entries) {
  if (entries.empty() || entries.size() > MaxEntries()) {
    return Status::InvalidArgument("bulk node size out of range");
  }
  Node node;
  node.level = level;
  node.entries = entries;
  PICTDB_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  WriteNode(node, page.mutable_data(), pool_->page_size());
  return page.id();
}

Status RTree::Clear() {
  std::vector<PageId> stack = {root()};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    PICTDB_ASSIGN_OR_RETURN(const Node node, LoadNode(id));
    if (!node.is_leaf()) {
      for (const Entry& e : node.entries) stack.push_back(e.AsChild());
    }
    PICTDB_RETURN_IF_ERROR(pool_->FreePage(id));
  }
  PICTDB_ASSIGN_OR_RETURN(PageGuard root_page, pool_->NewPage());
  Node empty_root;
  empty_root.level = 0;
  WriteNode(empty_root, root_page.mutable_data(), pool_->page_size());
  SetRootHeight(root_page.id(), 1);
  size_.store(0);
  return PersistMeta();
}

Status RTree::ResetForRebuild() {
  PICTDB_ASSIGN_OR_RETURN(PageGuard root_page, pool_->NewPage());
  Node empty_root;
  empty_root.level = 0;
  WriteNode(empty_root, root_page.mutable_data(), pool_->page_size());
  SetRootHeight(root_page.id(), 1);
  size_.store(0);
  return PersistMeta();
}

Status RTree::InsertSubtree(PageId subtree_root, const Rect& mbr,
                            uint16_t subtree_level,
                            uint64_t leaf_entry_count) {
  if (Height() < subtree_level + 2u) {
    return Status::InvalidArgument(
        "tree too shallow to host the subtree; insert entries directly");
  }
  Entry entry;
  entry.mbr = mbr;
  entry.payload = Entry::PayloadFromChild(subtree_root);
  PICTDB_RETURN_IF_ERROR(
      InsertAtLevel(entry, static_cast<uint16_t>(subtree_level + 1)));
  size_.fetch_add(leaf_entry_count);
  return PersistMeta();
}

Status RTree::BulkSetRoot(PageId new_root, uint32_t height, uint64_t size) {
  if (Size() == 0 && Height() == 1 && root() != new_root) {
    // Discard the placeholder root allocated by Create.
    PICTDB_RETURN_IF_ERROR(pool_->FreePage(root()));
  }
  SetRootHeight(new_root, height);
  size_.store(size);
  return PersistMeta();
}

}  // namespace pictdb::rtree
