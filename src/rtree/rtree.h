#ifndef PICTDB_RTREE_RTREE_H_
#define PICTDB_RTREE_RTREE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "geom/rect.h"
#include "rtree/node.h"
#include "rtree/split.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/quarantine.h"

namespace pictdb::rtree {

/// Construction-time knobs.
struct RTreeOptions {
  /// Maximum entries per node (the paper's branching factor). 0 derives it
  /// from the page size; the paper's experiments use 4.
  size_t max_entries = 0;

  /// Minimum fill for non-root nodes under dynamic updates; Guttman
  /// requires m <= M/2. 0 means max_entries / 2.
  size_t min_entries = 0;

  /// Heuristic used when a node overflows during INSERT.
  SplitAlgorithm split = SplitAlgorithm::kQuadratic;

  /// R*-style forced reinsertion: on the first overflow at each level
  /// per insertion, evict the ~30% of entries whose centers sit farthest
  /// from the node's center and re-insert them instead of splitting.
  /// Improves dynamic-tree quality at some insert cost.
  bool forced_reinsert = false;
};

/// Per-query search accounting — yields the paper's "average number of
/// nodes visited" column directly. The degraded fields report fault
/// handling: subtrees skipped because their root page was unreadable.
struct SearchStats {
  uint64_t nodes_visited = 0;
  uint64_t entries_tested = 0;
  uint64_t results = 0;
  /// Subtrees skipped over unreadable/corrupt pages (degraded mode).
  uint64_t skipped_subtrees = 0;
  /// True iff any subtree was skipped: the result set may be partial.
  bool degraded = false;
};

/// Per-query execution controls: a cooperative deadline and cancel flag
/// checked once per visited node, and a degraded mode that skips corrupt
/// subtrees (recording them in `quarantine`) instead of failing the
/// whole query.
struct SearchOptions {
  /// Absolute deadline; expiry surfaces as Status::DeadlineExceeded with
  /// whatever had been found so far discarded. max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Externally owned cancel flag, polled per node; a set flag surfaces
  /// as DeadlineExceeded("query cancelled").
  const std::atomic<bool>* cancel = nullptr;

  /// On an unreadable/corrupt page: skip that subtree, flag the result
  /// degraded, and keep searching — instead of propagating the error.
  bool degraded_ok = false;

  /// When set (and degraded_ok), skipped page ids are recorded here for
  /// later ScrubAndRepack recovery.
  storage::PageQuarantine* quarantine = nullptr;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }

  /// Deadline/cancel poll shared by every traversal loop.
  Status CheckRunnable() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("query cancelled");
    }
    if (has_deadline() && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("query deadline expired");
    }
    return Status::OK();
  }

  /// True when `st` (a failed page load) should degrade the search
  /// rather than abort it.
  bool ShouldDegrade(const Status& st) const {
    return degraded_ok &&
           (st.IsDataLoss() || st.IsCorruption() || st.IsIOError() ||
            st.IsOutOfRange());
  }
};

/// A qualifying leaf entry returned by search.
struct LeafHit {
  geom::Rect mbr;
  storage::Rid rid;
};

/// Per-window outcome of a batched search. `hits` is in exactly the
/// order the equivalent single-window search would produce; `degraded`
/// is per-window (a skipped subtree degrades only the windows that
/// were still active on that subtree's edge).
struct BatchHits {
  std::vector<LeafHit> hits;
  bool degraded = false;
};

/// Disk-resident R-tree over a buffer pool: Guttman's dynamic structure
/// (INSERT / DELETE / SEARCH) plus a bulk interface used by the PACK
/// loaders in src/pack/. Leaf entries carry Rids into a heap file (the
/// paper's pointers from picture objects to relation tuples).
class RTree {
 public:
  /// Create an empty tree.
  static StatusOr<RTree> Create(storage::BufferPool* pool,
                                const RTreeOptions& options = {});

  /// Create an empty tree on an ALREADY-ALLOCATED meta page, overwriting
  /// whatever it held — even if the old image is torn or unreadable. The
  /// WAL recovery path uses this to rebuild in place so the externally
  /// remembered meta page id stays valid across a crash.
  static StatusOr<RTree> CreateAt(storage::BufferPool* pool,
                                  storage::PageId meta_page,
                                  const RTreeOptions& options = {});

  /// Reattach to an existing tree by its meta page (options are persisted
  /// in the meta page).
  static StatusOr<RTree> Open(storage::BufferPool* pool,
                              storage::PageId meta_page);

  RTree(RTree&& other) noexcept
      : pool_(other.pool_),
        meta_page_(other.meta_page_),
        root_height_(other.root_height_.load()),
        size_(other.size_.load()),
        options_(other.options_),
        concurrent_reads_(other.concurrent_reads_.load()),
        retire_hook_(std::move(other.retire_hook_)) {}
  RTree& operator=(RTree&& other) noexcept {
    if (this != &other) {
      pool_ = other.pool_;
      meta_page_ = other.meta_page_;
      root_height_.store(other.root_height_.load());
      size_.store(other.size_.load());
      options_ = other.options_;
      concurrent_reads_.store(other.concurrent_reads_.load());
      retire_hook_ = std::move(other.retire_hook_);
    }
    return *this;
  }
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // --- Dynamic updates (Guttman 1984) -----------------------------------

  /// Insert a spatial object with bounding box `mbr` referencing `rid`.
  Status Insert(const geom::Rect& mbr, const storage::Rid& rid);

  /// Remove the entry with exactly this (mbr, rid); NotFound if absent.
  /// Underfull nodes are condensed and their entries re-inserted.
  Status Delete(const geom::Rect& mbr, const storage::Rid& rid);

  /// Move an entry: Delete(old) followed by Insert(new), with a
  /// best-effort re-insert of the old entry if the insert fails so the
  /// object is not silently lost. NOT atomic at this layer — the WAL
  /// layer (wal::DurableRTree) makes it a single logged record.
  Status Update(const geom::Rect& old_mbr, const storage::Rid& old_rid,
                const geom::Rect& new_mbr, const storage::Rid& new_rid);

  /// Exact-match membership probe (FindLeaf without the delete): true iff
  /// some leaf holds exactly (mbr, rid).
  StatusOr<bool> Contains(const geom::Rect& mbr,
                          const storage::Rid& rid) const;

  // --- Search (§3.1) ------------------------------------------------------

  /// All leaf entries whose MBR intersects `window` (the paper's
  /// INTERSECTS pruning with WITHIN replaced by intersection at the leaf —
  /// callers needing strict containment use SearchContainedIn).
  StatusOr<std::vector<LeafHit>> SearchIntersects(
      const geom::Rect& window, SearchStats* stats = nullptr,
      const SearchOptions& options = {}) const;

  /// All leaf entries whose MBR lies entirely within `window` — the
  /// paper's SEARCH procedure (INTERSECTS to prune, WITHIN to qualify).
  StatusOr<std::vector<LeafHit>> SearchContainedIn(
      const geom::Rect& window, SearchStats* stats = nullptr,
      const SearchOptions& options = {}) const;

  /// Leaf entries whose MBR contains the query point — the Table 1 query
  /// "Is point (x,y) contained in the database?".
  StatusOr<std::vector<LeafHit>> SearchPoint(
      const geom::Point& p, SearchStats* stats = nullptr,
      const SearchOptions& options = {}) const;

  /// Batched window search: every window is answered in ONE descent,
  /// amortizing pin/unpin and node decode across the batch. A node is
  /// visited once if ANY window reaches it; at each visited node the
  /// simd kernels test all entries against each still-active window
  /// and only windows that intersect an entry descend into its child.
  /// Result `out[i]` is bit-identical (hits and order) to
  /// SearchIntersects(windows[i]) — or SearchContainedIn when
  /// `contained_only` — run back to back on a quiesced tree.
  ///
  /// `stats` aggregates over the whole batch: nodes_visited counts
  /// distinct node visits (the amortization being bought),
  /// entries_tested and results sum over windows.
  StatusOr<std::vector<BatchHits>> SearchBatch(
      std::span<const geom::Rect> windows, bool contained_only = false,
      SearchStats* stats = nullptr, const SearchOptions& options = {}) const;

  /// General traversal: `prune(node_mbr)` decides whether to descend;
  /// `accept(leaf_mbr)` decides whether a leaf entry qualifies.
  StatusOr<std::vector<LeafHit>> SearchCustom(
      const std::function<bool(const geom::Rect&)>& prune,
      const std::function<bool(const geom::Rect&)>& accept,
      SearchStats* stats = nullptr, const SearchOptions& options = {}) const;

  // --- Introspection ------------------------------------------------------

  /// Height of the tree; 1 means the root is a leaf. (The paper's "depth"
  /// column counts edges: depth = Height() - 1.) Packed with root() in
  /// one atomic so a concurrent reader never observes a root page from
  /// one tree shape with the height of another.
  uint32_t Height() const {
    return static_cast<uint32_t>(root_height_.load() >> 32);
  }

  /// Number of leaf entries (spatial objects).
  uint64_t Size() const { return size_.load(); }

  /// Total nodes in the tree (the paper's N column).
  StatusOr<uint64_t> CountNodes() const;

  /// MBRs of all leaf nodes (not leaf entries) — inputs to the coverage
  /// and overlap metrics.
  StatusOr<std::vector<geom::Rect>> CollectLeafNodeMbrs() const;

  /// MBRs of all nodes at `level` (0 = leaves).
  StatusOr<std::vector<geom::Rect>> CollectNodeMbrsAtLevel(
      uint16_t level) const;

  /// All leaf entries in tree order.
  StatusOr<std::vector<LeafHit>> CollectAllEntries() const;

  /// Check structural invariants: parent MBRs minimally bound children,
  /// node counts within [min,max] (root exempt), uniform leaf depth,
  /// recorded size matches. Corruption status on violation.
  Status Validate() const;

  const RTreeOptions& options() const { return options_; }
  storage::PageId meta_page() const { return meta_page_; }
  storage::PageId root() const {
    return static_cast<storage::PageId>(root_height_.load() & 0xFFFFFFFFu);
  }
  storage::BufferPool* pool() const { return pool_; }

  // --- Online-mutation support (used by wal::DurableRTree) ---------------

  /// Latch node reads/writes on the buffer pool's per-frame latches so
  /// queries may run concurrently with a (single, externally serialized)
  /// mutator. Off by default: the flag costs a shared-latch round trip
  /// per node visit, which offline builds and benches need not pay. Set
  /// it before concurrent traffic starts.
  void EnableConcurrentReads(bool on) { concurrent_reads_.store(on); }

  /// Divert page frees from the mutation paths (CondenseTree, root
  /// collapse) to `hook` instead of pool()->FreePage. The WAL layer uses
  /// this for epoch-deferred reclamation: a page a concurrent reader may
  /// still reach must not be reused until every such reader has left.
  /// Bulk paths (Clear, BulkSetRoot, re-PACK) still free directly — they
  /// require quiesced readers regardless.
  void SetPageRetireHook(std::function<Status(storage::PageId)> hook) {
    retire_hook_ = std::move(hook);
  }

  /// Decode the node stored at `id`. Low-level access for traversals that
  /// live outside the class (spatial join, visualization).
  StatusOr<Node> ReadNodePage(storage::PageId id) const {
    return LoadNode(id);
  }

  /// SoA variant of ReadNodePage for kernel-driven external traversals
  /// (spatial join, kNN, cursors): decodes into caller-owned scratch so
  /// a traversal that reuses one SoaNode never allocates per node.
  Status ReadNodePageSoa(storage::PageId id, SoaNode* out) const {
    return LoadNodeSoa(id, out);
  }

  // --- Bulk-load interface (used by src/pack/) ---------------------------

  /// Write a fully-formed node; returns its page id. Entries must not
  /// exceed max_entries.
  StatusOr<storage::PageId> BulkWriteNode(uint16_t level,
                                          const std::vector<Entry>& entries);

  /// Point the tree at a bulk-built root. `height` counts levels,
  /// `size` the number of leaf entries. Frees the previous root chain
  /// only if the tree was empty (the normal bulk-load case).
  Status BulkSetRoot(storage::PageId root, uint32_t height, uint64_t size);

  /// Free every node and reset to an empty tree (used by re-PACK).
  Status Clear();

  /// Reset to an empty tree WITHOUT traversing (and thus without
  /// reading) the old nodes — the recovery path when the old tree is
  /// partially unreadable. The caller is responsible for freeing
  /// whatever old pages are still readable (ScrubAndRepack does).
  Status ResetForRebuild();

  /// Attach a prebuilt subtree whose root node sits at `subtree_root`
  /// with level `subtree_level` and bounding box `mbr`, containing
  /// `leaf_entry_count` leaf entries. The entry is placed one level
  /// above the subtree root (splitting on overflow as usual). Requires
  /// Height() >= subtree_level + 2. Backbone of the paper's §4 "local
  /// reorganization" extension.
  Status InsertSubtree(storage::PageId subtree_root, const geom::Rect& mbr,
                       uint16_t subtree_level, uint64_t leaf_entry_count);

 private:
  RTree(storage::BufferPool* pool, storage::PageId meta_page,
        storage::PageId root, uint32_t height, uint64_t size,
        const RTreeOptions& options)
      : pool_(pool),
        meta_page_(meta_page),
        root_height_(Pack(root, height)),
        size_(size),
        options_(options) {}

  static uint64_t Pack(storage::PageId root, uint32_t height) {
    return (static_cast<uint64_t>(height) << 32) | root;
  }
  /// Publish a new root/height pair. Must happen AFTER the new root's
  /// bytes are written (the seq_cst store orders them for readers) and
  /// BEFORE any page unlinked by the same structural change is retired.
  void SetRootHeight(storage::PageId root, uint32_t height) {
    root_height_.store(Pack(root, height));
  }

  struct InsertResult {
    geom::Rect mbr;                 // updated MBR of the visited child
    bool split = false;
    geom::Rect split_mbr;           // MBR of the new sibling
    storage::PageId split_page = storage::kInvalidPageId;
  };

  /// Per-insertion state for forced reinsertion: which levels already
  /// reinserted (they split on the next overflow) and the evicted
  /// entries awaiting re-insertion.
  struct InsertContext {
    std::vector<bool> reinserted_at_level;
    std::vector<std::pair<uint16_t, Entry>> pending;
  };

  StatusOr<Node> LoadNode(storage::PageId id) const;
  /// SoA decode into caller-owned scratch (no per-node allocation after
  /// warm-up); same frame-latch discipline as LoadNode.
  Status LoadNodeSoa(storage::PageId id, SoaNode* out) const;
  Status StoreNode(storage::PageId id, const Node& node);
  Status PersistMeta();

  StatusOr<InsertResult> InsertRec(storage::PageId node_id,
                                   const Entry& entry, uint16_t target_level,
                                   uint16_t node_level, InsertContext* ctx);

  /// Insert an entry that must live at `target_level` (0 for leaf
  /// entries; >0 when re-inserting orphaned subtrees during condense).
  Status InsertAtLevel(const Entry& entry, uint16_t target_level);

  struct DeleteResult {
    bool found = false;
    bool drop_child = false;  // child became underfull and was dissolved
    geom::Rect mbr;           // updated MBR of the visited child
  };

  StatusOr<DeleteResult> DeleteRec(storage::PageId node_id,
                                   uint16_t node_level,
                                   const geom::Rect& mbr,
                                   const storage::Rid& rid,
                                   std::vector<std::pair<uint16_t, Entry>>*
                                       orphans);

  Status SearchRec(storage::PageId node_id,
                   const std::function<bool(const geom::Rect&)>& prune,
                   const std::function<bool(const geom::Rect&)>& accept,
                   std::vector<LeafHit>* out, SearchStats* stats,
                   const SearchOptions& options) const;

  /// Kernel-driven traversal behind SearchIntersects / SearchContainedIn
  /// / SearchPoint: iterative DFS in entry order (preorder identical to
  /// SearchRec), SoA decode once per node, one kernel call per node
  /// instead of one predicate call per entry.
  enum class WindowMode { kIntersects, kContainedIn };
  Status SearchWindowFast(const geom::Rect& window, WindowMode mode,
                          std::vector<LeafHit>* out, SearchStats* stats,
                          const SearchOptions& options) const;
  Status SearchPointFast(const geom::Point& p, std::vector<LeafHit>* out,
                         SearchStats* stats,
                         const SearchOptions& options) const;

  /// Hint the buffer pool about the nodes the DFS will pop next (the
  /// tail of `stack`), so a resident child's bytes are warming in
  /// cache while the current node is scanned. No-op unless built with
  /// PICTDB_PREFETCH.
  void PrefetchUpcoming(const std::vector<storage::PageId>& stack) const;

  Status ValidateRec(storage::PageId node_id, uint16_t expected_level,
                     const geom::Rect* parent_mbr, uint64_t* leaf_entries,
                     bool is_root) const;

  size_t MaxEntries() const;
  size_t MinEntries() const;

  /// Free `id` through the retire hook when set, else immediately.
  Status RetirePage(storage::PageId id);

  storage::BufferPool* pool_;
  storage::PageId meta_page_;
  /// (height << 32) | root, read together by concurrent queries.
  std::atomic<uint64_t> root_height_;
  std::atomic<uint64_t> size_;
  RTreeOptions options_;
  std::atomic<bool> concurrent_reads_{false};
  std::function<Status(storage::PageId)> retire_hook_;
};

}  // namespace pictdb::rtree

#endif  // PICTDB_RTREE_RTREE_H_
