#include "rtree/knn.h"

#include <algorithm>
#include <queue>

#include "geom/distance.h"

namespace pictdb::rtree {

namespace {

/// Priority-queue element: an unexpanded node, an MBR-level candidate
/// entry, or a refined (exact-distance) entry; keyed by distance.
struct QueueItem {
  double distance;
  enum class Kind { kNode, kEntry, kRefined } kind = Kind::kNode;
  storage::PageId node;    // kNode
  LeafHit hit;             // kEntry / kRefined

  friend bool operator>(const QueueItem& a, const QueueItem& b) {
    return a.distance > b.distance;
  }
};

/// Shared degraded-mode handling for a failed node read during a
/// best-first traversal: quarantine + account, or propagate.
Status HandleNodeReadFailure(const Status& st, storage::PageId node,
                             SearchStats* stats,
                             const SearchOptions& options) {
  if (!options.ShouldDegrade(st)) return st;
  if (options.quarantine != nullptr) options.quarantine->Add(node);
  if (stats != nullptr) {
    ++stats->skipped_subtrees;
    stats->degraded = true;
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<Neighbor>> SearchNearest(const RTree& tree,
                                              const geom::Point& query,
                                              size_t k, SearchStats* stats,
                                              const SearchOptions& options) {
  std::vector<Neighbor> result;
  if (k == 0 || tree.Size() == 0) return result;

  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      frontier;
  frontier.push(QueueItem{0.0, QueueItem::Kind::kNode, tree.root(), {}});

  // Best-first expansion never holds two nodes at once, so one SoA
  // image is reused for every decode (no per-node allocation).
  SoaNode node;
  while (!frontier.empty()) {
    PICTDB_RETURN_IF_ERROR(options.CheckRunnable());
    const QueueItem item = frontier.top();
    frontier.pop();

    if (item.kind == QueueItem::Kind::kEntry) {
      // Entries pop in exact distance order relative to everything still
      // queued, so this is the next nearest neighbour.
      result.push_back(Neighbor{item.hit, item.distance});
      if (result.size() == k) break;
      continue;
    }

    const Status loaded = tree.ReadNodePageSoa(item.node, &node);
    if (!loaded.ok()) {
      PICTDB_RETURN_IF_ERROR(
          HandleNodeReadFailure(loaded, item.node, stats, options));
      continue;
    }
    if (stats != nullptr) ++stats->nodes_visited;
    for (size_t i = 0; i < node.count(); ++i) {
      if (stats != nullptr) ++stats->entries_tested;
      const geom::Rect mbr = node.RectAt(i);
      const double d = geom::MinDistance(mbr, query);
      if (node.is_leaf()) {
        frontier.push(QueueItem{d, QueueItem::Kind::kEntry,
                                storage::kInvalidPageId,
                                LeafHit{mbr, node.RidAt(i)}});
      } else {
        frontier.push(
            QueueItem{d, QueueItem::Kind::kNode, node.ChildAt(i), {}});
      }
    }
  }
  if (stats != nullptr) stats->results = result.size();
  return result;
}

StatusOr<std::vector<Neighbor>> SearchNearestExact(
    const RTree& tree, const geom::Point& query, size_t k,
    const GeometryResolver& resolver, SearchStats* stats,
    const SearchOptions& options) {
  std::vector<Neighbor> result;
  if (k == 0 || tree.Size() == 0) return result;

  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      frontier;
  frontier.push(QueueItem{0.0, QueueItem::Kind::kNode, tree.root(), {}});

  SoaNode node;
  while (!frontier.empty()) {
    PICTDB_RETURN_IF_ERROR(options.CheckRunnable());
    const QueueItem item = frontier.top();
    frontier.pop();

    switch (item.kind) {
      case QueueItem::Kind::kRefined:
        // Exact distance known and no queued item can beat it.
        result.push_back(Neighbor{item.hit, item.distance});
        if (result.size() == k) return result;
        break;
      case QueueItem::Kind::kEntry: {
        // MBR-level candidate: refine to the exact object distance and
        // re-queue (exact >= MBR MINDIST, so ordering stays correct).
        PICTDB_ASSIGN_OR_RETURN(const geom::Geometry g,
                                resolver(item.hit.rid));
        frontier.push(QueueItem{geom::DistanceTo(g, query),
                                QueueItem::Kind::kRefined,
                                storage::kInvalidPageId, item.hit});
        break;
      }
      case QueueItem::Kind::kNode: {
        const Status loaded = tree.ReadNodePageSoa(item.node, &node);
        if (!loaded.ok()) {
          PICTDB_RETURN_IF_ERROR(
              HandleNodeReadFailure(loaded, item.node, stats, options));
          break;
        }
        if (stats != nullptr) ++stats->nodes_visited;
        for (size_t i = 0; i < node.count(); ++i) {
          if (stats != nullptr) ++stats->entries_tested;
          const geom::Rect mbr = node.RectAt(i);
          const double d = geom::MinDistance(mbr, query);
          frontier.push(QueueItem{
              d,
              node.is_leaf() ? QueueItem::Kind::kEntry
                             : QueueItem::Kind::kNode,
              node.is_leaf() ? storage::kInvalidPageId : node.ChildAt(i),
              node.is_leaf() ? LeafHit{mbr, node.RidAt(i)} : LeafHit{}});
        }
        break;
      }
    }
  }
  if (stats != nullptr) stats->results = result.size();
  return result;
}

}  // namespace pictdb::rtree
