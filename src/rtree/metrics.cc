#include "rtree/metrics.h"

#include <sstream>

#include "geom/measure.h"

namespace pictdb::rtree {

StatusOr<TreeQuality> MeasureTree(const RTree& tree) {
  TreeQuality q;
  PICTDB_ASSIGN_OR_RETURN(const std::vector<geom::Rect> leaves,
                          tree.CollectLeafNodeMbrs());
  q.coverage = geom::TotalArea(leaves);
  q.overlap = geom::AreaCoveredAtLeast(leaves, 2);
  q.depth = tree.Height() - 1;
  PICTDB_ASSIGN_OR_RETURN(q.nodes, tree.CountNodes());
  q.size = tree.Size();
  return q;
}

StatusOr<double> AverageNodesVisited(
    const RTree& tree, const std::vector<geom::Point>& queries) {
  if (queries.empty()) return 0.0;
  uint64_t total = 0;
  for (const geom::Point& p : queries) {
    SearchStats stats;
    PICTDB_RETURN_IF_ERROR(tree.SearchPoint(p, &stats).status());
    total += stats.nodes_visited;
  }
  return static_cast<double>(total) / static_cast<double>(queries.size());
}

std::string ToString(const TreeQuality& q) {
  std::ostringstream os;
  os << "C=" << q.coverage << " O=" << q.overlap << " D=" << q.depth
     << " N=" << q.nodes << " J=" << q.size;
  return os.str();
}

}  // namespace pictdb::rtree
