#ifndef PICTDB_RTREE_JOIN_H_
#define PICTDB_RTREE_JOIN_H_

#include <functional>

#include "common/status.h"
#include "rtree/rtree.h"

namespace pictdb::rtree {

/// Accounting for join benchmarks.
struct JoinStats {
  uint64_t nodes_visited = 0;
  uint64_t pairs_tested = 0;
  uint64_t results = 0;
  /// Node pairs skipped over unreadable/corrupt pages (degraded mode).
  uint64_t skipped_subtrees = 0;
  /// True iff any pair was skipped: the join output may be partial.
  bool degraded = false;
};

/// Called for every pair of leaf entries whose MBRs intersect.
using JoinCallback =
    std::function<void(const LeafHit& left, const LeafHit& right)>;

/// The paper's juxtaposition engine: "simultaneous search on the two
/// spatial organizations which correspond to the same area". Performs a
/// synchronized depth-first traversal of both R-trees, descending only
/// into pairs of subtrees whose MBRs intersect. Trees of different
/// heights are handled by descending the taller side first.
Status SpatialJoin(const RTree& left, const RTree& right,
                   const JoinCallback& callback, JoinStats* stats = nullptr,
                   const SearchOptions& options = {});

/// Baseline for the juxtaposition benchmark: test all |L|x|R| leaf pairs.
Status NestedLoopJoin(const RTree& left, const RTree& right,
                      const JoinCallback& callback,
                      JoinStats* stats = nullptr);

}  // namespace pictdb::rtree

#endif  // PICTDB_RTREE_JOIN_H_
