#ifndef PICTDB_RTREE_SPLIT_H_
#define PICTDB_RTREE_SPLIT_H_

#include <utility>
#include <vector>

#include "rtree/node.h"

namespace pictdb::rtree {

/// Node splitting heuristics from Guttman's original paper. Exhaustive
/// search is exponential, so Guttman proposed the quadratic and linear
/// approximations; quadratic is the one his evaluation (and ours) uses by
/// default.
enum class SplitAlgorithm {
  kQuadratic,
  kLinear,
  /// The R*-tree split (Beckmann et al. 1990, a direct descendant of the
  /// structures this paper works with): choose the split axis by minimum
  /// total margin over all valid distributions, then the distribution on
  /// that axis with least overlap (ties: least total area).
  kRStar,
};

/// Distribute `entries` (an overflowing node's M+1 entries) into two
/// groups, each with at least `min_entries`, minimizing total area growth
/// per the chosen heuristic. Returns {group1, group2}; both non-empty.
std::pair<std::vector<Entry>, std::vector<Entry>> SplitEntries(
    std::vector<Entry> entries, size_t min_entries, SplitAlgorithm algorithm);

/// Guttman's PickSeeds (quadratic): the pair of entries wasting the most
/// area if placed together. Exposed for tests.
std::pair<size_t, size_t> QuadraticPickSeeds(const std::vector<Entry>& entries);

/// Guttman's LinearPickSeeds: entries with the greatest normalized
/// separation along either dimension. Exposed for tests.
std::pair<size_t, size_t> LinearPickSeeds(const std::vector<Entry>& entries);

}  // namespace pictdb::rtree

#endif  // PICTDB_RTREE_SPLIT_H_
