#ifndef PICTDB_RTREE_CURSOR_H_
#define PICTDB_RTREE_CURSOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/status_or.h"
#include "rtree/rtree.h"

namespace pictdb::rtree {

/// Streaming search over an R-tree: yields qualifying leaf entries one at
/// a time without materializing the full result set, so callers can stop
/// early (LIMIT-style consumption) or process results larger than memory.
/// The tree must not be modified while a cursor is open.
class SearchCursor {
 public:
  /// General form, mirroring RTree::SearchCustom. `options` carries the
  /// per-query deadline/cancel flag (polled once per expanded node) and
  /// the degraded-mode setting (unreadable subtrees are skipped and
  /// recorded in stats()).
  SearchCursor(const RTree* tree,
               std::function<bool(const geom::Rect&)> prune,
               std::function<bool(const geom::Rect&)> accept,
               const SearchOptions& options = {});

  /// Window-intersection cursor.
  static SearchCursor Intersects(const RTree* tree, const geom::Rect& window,
                                 const SearchOptions& options = {});

  /// Window-containment cursor (the paper's SEARCH semantics).
  static SearchCursor ContainedIn(const RTree* tree, const geom::Rect& window,
                                  const SearchOptions& options = {});

  /// Next qualifying entry, or nullopt at the end of the result stream.
  StatusOr<std::optional<LeafHit>> Next();

  /// Nodes visited / entries tested so far.
  const SearchStats& stats() const { return stats_; }

 private:
  /// Window cursors built by the Intersects/ContainedIn factories skip
  /// the per-entry std::function calls and run the simd rect kernels
  /// over an SoA node image instead; kGeneric keeps the caller-supplied
  /// predicates. Result streams are identical either way.
  enum class Mode { kGeneric, kIntersects, kContainedIn };

  SearchCursor(const RTree* tree, Mode mode, const geom::Rect& window,
               const SearchOptions& options);

  StatusOr<std::optional<LeafHit>> NextGeneric();
  StatusOr<std::optional<LeafHit>> NextWindow();

  const RTree* tree_;
  Mode mode_ = Mode::kGeneric;
  geom::Rect window_;  // kIntersects / kContainedIn only
  std::function<bool(const geom::Rect&)> prune_;
  std::function<bool(const geom::Rect&)> accept_;
  SearchOptions options_;
  std::vector<storage::PageId> pending_;  // nodes not yet expanded
  Node current_leaf_;
  /// Window-mode scratch: one SoA image reused for every decode (safe
  /// because a leaf is fully drained before the next node is loaded)
  /// and the accept verdicts for the active leaf.
  SoaNode soa_node_;
  std::vector<uint64_t> accept_mask_;
  size_t leaf_pos_ = 0;
  bool leaf_active_ = false;
  SearchStats stats_;
};

}  // namespace pictdb::rtree

#endif  // PICTDB_RTREE_CURSOR_H_
