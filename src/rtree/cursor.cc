#include "rtree/cursor.h"

namespace pictdb::rtree {

SearchCursor::SearchCursor(const RTree* tree,
                           std::function<bool(const geom::Rect&)> prune,
                           std::function<bool(const geom::Rect&)> accept,
                           const SearchOptions& options)
    : tree_(tree),
      prune_(std::move(prune)),
      accept_(std::move(accept)),
      options_(options) {
  if (tree_->Size() > 0) pending_.push_back(tree_->root());
}

SearchCursor SearchCursor::Intersects(const RTree* tree,
                                      const geom::Rect& window,
                                      const SearchOptions& options) {
  return SearchCursor(
      tree, [window](const geom::Rect& r) { return r.Intersects(window); },
      [window](const geom::Rect& r) { return r.Intersects(window); },
      options);
}

SearchCursor SearchCursor::ContainedIn(const RTree* tree,
                                       const geom::Rect& window,
                                       const SearchOptions& options) {
  return SearchCursor(
      tree, [window](const geom::Rect& r) { return r.Intersects(window); },
      [window](const geom::Rect& r) { return window.Contains(r); },
      options);
}

StatusOr<std::optional<LeafHit>> SearchCursor::Next() {
  for (;;) {
    // Drain the active leaf first.
    if (leaf_active_) {
      while (leaf_pos_ < current_leaf_.entries.size()) {
        const Entry& e = current_leaf_.entries[leaf_pos_++];
        ++stats_.entries_tested;
        if (accept_(e.mbr)) {
          ++stats_.results;
          return std::optional<LeafHit>(LeafHit{e.mbr, e.AsRid()});
        }
      }
      leaf_active_ = false;
    }
    if (pending_.empty()) return std::optional<LeafHit>();

    PICTDB_RETURN_IF_ERROR(options_.CheckRunnable());
    const storage::PageId id = pending_.back();
    pending_.pop_back();
    auto loaded = tree_->ReadNodePage(id);
    if (!loaded.ok()) {
      if (options_.ShouldDegrade(loaded.status())) {
        if (options_.quarantine != nullptr) options_.quarantine->Add(id);
        ++stats_.skipped_subtrees;
        stats_.degraded = true;
        continue;
      }
      return loaded.status();
    }
    Node node = std::move(loaded).value();
    ++stats_.nodes_visited;
    if (node.is_leaf()) {
      current_leaf_ = std::move(node);
      leaf_pos_ = 0;
      leaf_active_ = true;
      continue;
    }
    for (const Entry& e : node.entries) {
      ++stats_.entries_tested;
      if (prune_(e.mbr)) pending_.push_back(e.AsChild());
    }
  }
}

}  // namespace pictdb::rtree
