#include "rtree/cursor.h"

#include "simd/dispatch.h"

namespace pictdb::rtree {

SearchCursor::SearchCursor(const RTree* tree,
                           std::function<bool(const geom::Rect&)> prune,
                           std::function<bool(const geom::Rect&)> accept,
                           const SearchOptions& options)
    : tree_(tree),
      prune_(std::move(prune)),
      accept_(std::move(accept)),
      options_(options) {
  if (tree_->Size() > 0) pending_.push_back(tree_->root());
}

SearchCursor::SearchCursor(const RTree* tree, Mode mode,
                           const geom::Rect& window,
                           const SearchOptions& options)
    : tree_(tree), mode_(mode), window_(window), options_(options) {
  if (tree_->Size() > 0) pending_.push_back(tree_->root());
}

SearchCursor SearchCursor::Intersects(const RTree* tree,
                                      const geom::Rect& window,
                                      const SearchOptions& options) {
  return SearchCursor(tree, Mode::kIntersects, window, options);
}

SearchCursor SearchCursor::ContainedIn(const RTree* tree,
                                       const geom::Rect& window,
                                       const SearchOptions& options) {
  return SearchCursor(tree, Mode::kContainedIn, window, options);
}

StatusOr<std::optional<LeafHit>> SearchCursor::Next() {
  return mode_ == Mode::kGeneric ? NextGeneric() : NextWindow();
}

StatusOr<std::optional<LeafHit>> SearchCursor::NextGeneric() {
  for (;;) {
    // Drain the active leaf first.
    if (leaf_active_) {
      while (leaf_pos_ < current_leaf_.entries.size()) {
        const Entry& e = current_leaf_.entries[leaf_pos_++];
        ++stats_.entries_tested;
        if (accept_(e.mbr)) {
          ++stats_.results;
          return std::optional<LeafHit>(LeafHit{e.mbr, e.AsRid()});
        }
      }
      leaf_active_ = false;
    }
    if (pending_.empty()) return std::optional<LeafHit>();

    PICTDB_RETURN_IF_ERROR(options_.CheckRunnable());
    const storage::PageId id = pending_.back();
    pending_.pop_back();
    auto loaded = tree_->ReadNodePage(id);
    if (!loaded.ok()) {
      if (options_.ShouldDegrade(loaded.status())) {
        if (options_.quarantine != nullptr) options_.quarantine->Add(id);
        ++stats_.skipped_subtrees;
        stats_.degraded = true;
        continue;
      }
      return loaded.status();
    }
    Node node = std::move(loaded).value();
    ++stats_.nodes_visited;
    if (node.is_leaf()) {
      current_leaf_ = std::move(node);
      leaf_pos_ = 0;
      leaf_active_ = true;
      continue;
    }
    for (const Entry& e : node.entries) {
      ++stats_.entries_tested;
      if (prune_(e.mbr)) pending_.push_back(e.AsChild());
    }
  }
}

StatusOr<std::optional<LeafHit>> SearchCursor::NextWindow() {
  const simd::RectKernels& kernels = simd::ActiveKernels();
  for (;;) {
    // Drain the active leaf first. The accept verdicts were computed in
    // one kernel call when the leaf was loaded; entries_tested still
    // advances lazily with leaf_pos_, matching the generic cursor when
    // the caller abandons the stream mid-leaf.
    if (leaf_active_) {
      while (leaf_pos_ < soa_node_.count()) {
        const size_t i = leaf_pos_++;
        ++stats_.entries_tested;
        if ((accept_mask_[i / 64] >> (i % 64)) & 1u) {
          ++stats_.results;
          return std::optional<LeafHit>(
              LeafHit{soa_node_.RectAt(i), soa_node_.RidAt(i)});
        }
      }
      leaf_active_ = false;
    }
    if (pending_.empty()) return std::optional<LeafHit>();

    PICTDB_RETURN_IF_ERROR(options_.CheckRunnable());
    const storage::PageId id = pending_.back();
    pending_.pop_back();
    const Status loaded = tree_->ReadNodePageSoa(id, &soa_node_);
    if (!loaded.ok()) {
      if (options_.ShouldDegrade(loaded)) {
        if (options_.quarantine != nullptr) options_.quarantine->Add(id);
        ++stats_.skipped_subtrees;
        stats_.degraded = true;
        continue;
      }
      return loaded;
    }
    ++stats_.nodes_visited;
    const simd::RectSoa rects = soa_node_.rects();
    accept_mask_.resize(simd::MaskWords(soa_node_.count()));
    if (soa_node_.is_leaf()) {
      if (mode_ == Mode::kContainedIn) {
        kernels.contained_in(rects, window_, accept_mask_.data());
      } else {
        kernels.intersects(rects, window_, accept_mask_.data());
      }
      leaf_pos_ = 0;
      leaf_active_ = true;
      continue;
    }
    // Interior node: prune with window intersection. Ascending set-bit
    // order pushes children in entry order — the same forward order the
    // generic cursor uses, preserving the result stream exactly.
    stats_.entries_tested += soa_node_.count();
    kernels.intersects(rects, window_, accept_mask_.data());
    simd::ForEachSetBit(accept_mask_.data(), soa_node_.count(), [&](size_t i) {
      pending_.push_back(soa_node_.ChildAt(i));
    });
  }
}

}  // namespace pictdb::rtree
