#include "rtree/split.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace pictdb::rtree {

namespace {

using geom::Enlargement;
using geom::Rect;
using geom::UnionOf;

struct Group {
  std::vector<Entry> entries;
  Rect mbr;

  void Add(const Entry& e) {
    entries.push_back(e);
    mbr.ExpandToInclude(e.mbr);
  }
};

/// Guttman's PickNext (quadratic): the remaining entry with the greatest
/// preference for one group over the other.
size_t QuadraticPickNext(const std::vector<Entry>& remaining,
                         const Group& g1, const Group& g2) {
  size_t best = 0;
  double best_diff = -1.0;
  for (size_t i = 0; i < remaining.size(); ++i) {
    const double d1 = Enlargement(g1.mbr, remaining[i].mbr);
    const double d2 = Enlargement(g2.mbr, remaining[i].mbr);
    const double diff = std::fabs(d1 - d2);
    if (diff > best_diff) {
      best_diff = diff;
      best = i;
    }
  }
  return best;
}

/// Resolve ties per Guttman: smaller enlargement, then smaller area, then
/// fewer entries.
Group* ChooseGroup(const Entry& e, Group* g1, Group* g2) {
  const double d1 = Enlargement(g1->mbr, e.mbr);
  const double d2 = Enlargement(g2->mbr, e.mbr);
  if (d1 != d2) return d1 < d2 ? g1 : g2;
  const double a1 = g1->mbr.Area();
  const double a2 = g2->mbr.Area();
  if (a1 != a2) return a1 < a2 ? g1 : g2;
  return g1->entries.size() <= g2->entries.size() ? g1 : g2;
}

std::pair<std::vector<Entry>, std::vector<Entry>> Distribute(
    std::vector<Entry> entries, size_t min_entries, size_t seed1,
    size_t seed2, bool quadratic) {
  PICTDB_CHECK(seed1 != seed2);
  Group g1, g2;
  g1.Add(entries[seed1]);
  g2.Add(entries[seed2]);
  // Remove seeds (erase the larger index first).
  if (seed1 < seed2) std::swap(seed1, seed2);
  entries.erase(entries.begin() + seed1);
  entries.erase(entries.begin() + seed2);

  while (!entries.empty()) {
    // If one group must take everything left to reach the minimum, do so.
    const size_t left = entries.size();
    if (g1.entries.size() + left == min_entries) {
      for (const Entry& e : entries) g1.Add(e);
      break;
    }
    if (g2.entries.size() + left == min_entries) {
      for (const Entry& e : entries) g2.Add(e);
      break;
    }
    const size_t next =
        quadratic ? QuadraticPickNext(entries, g1, g2) : 0;
    const Entry e = entries[next];
    entries.erase(entries.begin() + next);
    ChooseGroup(e, &g1, &g2)->Add(e);
  }
  return {std::move(g1.entries), std::move(g2.entries)};
}

}  // namespace

std::pair<size_t, size_t> QuadraticPickSeeds(
    const std::vector<Entry>& entries) {
  PICTDB_CHECK(entries.size() >= 2);
  size_t best_i = 0, best_j = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = UnionOf(entries[i].mbr, entries[j].mbr).Area() -
                           entries[i].mbr.Area() - entries[j].mbr.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        best_i = i;
        best_j = j;
      }
    }
  }
  return {best_i, best_j};
}

std::pair<size_t, size_t> LinearPickSeeds(const std::vector<Entry>& entries) {
  PICTDB_CHECK(entries.size() >= 2);
  // For each dimension: the entry with the highest low side and the one
  // with the lowest high side, separation normalized by the total width.
  double best_sep = -std::numeric_limits<double>::infinity();
  size_t best_i = 0, best_j = 1;

  for (int dim = 0; dim < 2; ++dim) {
    auto lo_of = [dim](const Entry& e) {
      return dim == 0 ? e.mbr.lo.x : e.mbr.lo.y;
    };
    auto hi_of = [dim](const Entry& e) {
      return dim == 0 ? e.mbr.hi.x : e.mbr.hi.y;
    };
    size_t highest_lo = 0, lowest_hi = 0;
    double min_lo = lo_of(entries[0]), max_hi = hi_of(entries[0]);
    for (size_t i = 0; i < entries.size(); ++i) {
      if (lo_of(entries[i]) > lo_of(entries[highest_lo])) highest_lo = i;
      if (hi_of(entries[i]) < hi_of(entries[lowest_hi])) lowest_hi = i;
      min_lo = std::min(min_lo, lo_of(entries[i]));
      max_hi = std::max(max_hi, hi_of(entries[i]));
    }
    if (highest_lo == lowest_hi) continue;  // degenerate in this dimension
    const double width = max_hi - min_lo;
    const double sep =
        (lo_of(entries[highest_lo]) - hi_of(entries[lowest_hi])) /
        (width > 0 ? width : 1.0);
    if (sep > best_sep) {
      best_sep = sep;
      best_i = lowest_hi;
      best_j = highest_lo;
    }
  }
  if (best_i == best_j) best_j = best_i == 0 ? 1 : 0;
  return {best_i, best_j};
}

namespace {

/// R*-tree split: sort entries along each axis (by lo then hi), consider
/// every prefix/suffix distribution with both sides >= min_entries, pick
/// the axis with the smallest total margin sum, then the distribution on
/// that axis with the least overlap area (ties by total area).
std::pair<std::vector<Entry>, std::vector<Entry>> RStarSplit(
    std::vector<Entry> entries, size_t min_entries) {
  const size_t n = entries.size();

  auto sorted_by_axis = [&entries](int axis) {
    std::vector<Entry> sorted = entries;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [axis](const Entry& a, const Entry& b) {
                       const double alo = axis == 0 ? a.mbr.lo.x : a.mbr.lo.y;
                       const double blo = axis == 0 ? b.mbr.lo.x : b.mbr.lo.y;
                       if (alo != blo) return alo < blo;
                       const double ahi = axis == 0 ? a.mbr.hi.x : a.mbr.hi.y;
                       const double bhi = axis == 0 ? b.mbr.hi.x : b.mbr.hi.y;
                       return ahi < bhi;
                     });
    return sorted;
  };

  // Prefix/suffix MBRs make margin/overlap evaluation O(n) per axis.
  auto evaluate = [n, min_entries](const std::vector<Entry>& sorted,
                                   double* margin_sum, size_t* best_cut,
                                   double* best_overlap, double* best_area) {
    std::vector<Rect> prefix(n), suffix(n);
    Rect acc;
    for (size_t i = 0; i < n; ++i) {
      acc.ExpandToInclude(sorted[i].mbr);
      prefix[i] = acc;
    }
    acc = Rect();
    for (size_t i = n; i-- > 0;) {
      acc.ExpandToInclude(sorted[i].mbr);
      suffix[i] = acc;
    }
    *margin_sum = 0;
    *best_overlap = std::numeric_limits<double>::infinity();
    *best_area = std::numeric_limits<double>::infinity();
    *best_cut = min_entries;
    for (size_t cut = min_entries; cut + min_entries <= n; ++cut) {
      const Rect& left = prefix[cut - 1];
      const Rect& right = suffix[cut];
      *margin_sum += left.Margin() + right.Margin();
      const double overlap = geom::IntersectionOf(left, right).Area();
      const double area = left.Area() + right.Area();
      if (overlap < *best_overlap ||
          (overlap == *best_overlap && area < *best_area)) {
        *best_overlap = overlap;
        *best_area = area;
        *best_cut = cut;
      }
    }
  };

  double best_margin = std::numeric_limits<double>::infinity();
  std::vector<Entry> chosen;
  size_t chosen_cut = min_entries;
  for (int axis = 0; axis < 2; ++axis) {
    std::vector<Entry> sorted = sorted_by_axis(axis);
    double margin_sum, overlap, area;
    size_t cut;
    evaluate(sorted, &margin_sum, &cut, &overlap, &area);
    if (margin_sum < best_margin) {
      best_margin = margin_sum;
      chosen = std::move(sorted);
      chosen_cut = cut;
    }
  }
  std::vector<Entry> left(chosen.begin(), chosen.begin() + chosen_cut);
  std::vector<Entry> right(chosen.begin() + chosen_cut, chosen.end());
  return {std::move(left), std::move(right)};
}

}  // namespace

std::pair<std::vector<Entry>, std::vector<Entry>> SplitEntries(
    std::vector<Entry> entries, size_t min_entries,
    SplitAlgorithm algorithm) {
  PICTDB_CHECK(entries.size() >= 2);
  PICTDB_CHECK(min_entries >= 1 && 2 * min_entries <= entries.size());
  std::pair<size_t, size_t> seeds;
  switch (algorithm) {
    case SplitAlgorithm::kQuadratic:
      seeds = QuadraticPickSeeds(entries);
      break;
    case SplitAlgorithm::kLinear:
      seeds = LinearPickSeeds(entries);
      break;
    case SplitAlgorithm::kRStar:
      return RStarSplit(std::move(entries), min_entries);
  }
  return Distribute(std::move(entries), min_entries, seeds.first,
                    seeds.second, algorithm == SplitAlgorithm::kQuadratic);
}

}  // namespace pictdb::rtree
